package gpunoc_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"gpunoc"
	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
)

// TestNoCSimulationDeterminism runs the flit-level mesh sweep and the
// GPU request/reply simulation twice with identical seeds and demands
// identical results: the simulator must not leak map iteration order or
// global randomness into its outputs (the invariant noclint's
// determinism and orderedoutput analyzers guard statically).
func TestNoCSimulationDeterminism(t *testing.T) {
	llCfg := gpunoc.LoadLatencyConfig{
		Mesh:        gpunoc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: gpunoc.RoundRobin},
		PacketFlits: 2, Rates: []float64{0.05, 0.15, 0.3}, Cycles: 2000, Warmup: 200, Seed: 7,
	}
	first, err := gpunoc.RunLoadLatency(llCfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := gpunoc.RunLoadLatency(llCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("load-latency sweep differs between identical runs:\n%v\n%v", first, second)
	}

	gsCfg := gpunoc.GPUSimConfig{
		Mesh:             gpunoc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: gpunoc.RoundRobin},
		ReplyFlits:       2,
		WindowPerCompute: 4,
		MCServiceCycles:  4,
		MCQueue:          8,
		Cycles:           2000,
		Warmup:           200,
		UtilWindow:       200,
		Seed:             7,
	}
	g1, err := gpunoc.RunGPUSim(gsCfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gpunoc.RunGPUSim(gsCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1, g2) {
		t.Errorf("GPU sim differs between identical runs:\n%+v\n%+v", g1, g2)
	}
}

// TestReportDeterminism renders the full experiment report twice with a
// pinned timestamp and demands byte-identical output. Any map-ordered
// section or unseeded sampling anywhere in the experiment registry
// would show up here as a diff.
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment twice")
	}
	fixed := time.Date(2024, 11, 2, 12, 0, 0, 0, time.UTC)
	render := func() []byte {
		var buf bytes.Buffer
		if err := core.WriteReport(&buf, []gpu.Config{gpu.V100()}, true, fixed); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		a, b := string(first), string(second)
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("report differs at byte %d:\n...%q\nvs\n...%q", i, a[lo:i+40], b[lo:i+40])
			}
		}
		t.Fatalf("report lengths differ: %d vs %d", len(first), len(second))
	}
}

// TestReportObservedExtendsPlain proves metric collection is invisible
// until asked for: a report rendered with a registry attached must be
// the plain report byte-for-byte plus the metrics-summary footer, and
// two observed renders must agree byte-for-byte (instrument values are
// deterministic at fixed seeds). This is the report-level half of the
// nocchar stdout byte-identity smoke in ci.sh.
func TestReportObservedExtendsPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment several times")
	}
	fixed := time.Date(2024, 11, 2, 12, 0, 0, 0, time.UTC)
	render := func(reg *obs.Registry) []byte {
		var buf bytes.Buffer
		opts := core.ReportOptions{Quick: true, Now: fixed, Obs: reg}
		if err := core.WriteReportOptions(&buf, []gpu.Config{gpu.V100()}, opts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := render(nil)
	observed := render(obs.New())
	if !bytes.HasPrefix(observed, plain) {
		t.Error("observed report does not extend the plain report byte-for-byte")
	}
	footer := observed[len(plain):]
	if !bytes.Contains(footer, []byte("## Metrics summary")) {
		t.Error("observed report lacks the metrics-summary footer")
	}
	if !bytes.Contains(footer, []byte("fig21/V100/narrow/mc/served")) {
		t.Error("metrics footer lacks the fig21 MC served counter")
	}
	if again := render(obs.New()); !bytes.Equal(observed, again) {
		t.Error("observed report differs between identically-seeded renders")
	}
}

// TestReportParallelMatchesSequential renders the report with a
// single-worker pool and again with wide pools and demands byte-identical
// output: the parallel runner's index-addressed result slots must make
// goroutine scheduling invisible in every artifact.
func TestReportParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every experiment several times")
	}
	fixed := time.Date(2024, 11, 2, 12, 0, 0, 0, time.UTC)
	render := func(workers int) []byte {
		var buf bytes.Buffer
		opts := core.ReportOptions{Quick: true, Now: fixed, Workers: workers}
		if err := core.WriteReportOptions(&buf, []gpu.Config{gpu.V100()}, opts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := render(1)
	for _, workers := range []int{2, 8} {
		par := render(workers)
		if !bytes.Equal(sequential, par) {
			t.Fatalf("report with %d workers differs from sequential: %d vs %d bytes",
				workers, len(par), len(sequential))
		}
	}
}
