package gpunoc_test

import (
	"fmt"

	"gpunoc"
)

// The basic characterization loop: build a device and probe its NoC.
func ExampleNewDevice() {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		panic(err)
	}
	cfg := dev.Config()
	fmt.Println(cfg.SMs(), "SMs,", cfg.L2Slices, "L2 slices,", cfg.MPs, "memory partitions")
	// Output: 84 SMs, 32 L2 slices, 8 memory partitions
}

// Latency non-uniformity (Observation #1): the same SM sees very
// different round trips to different L2 slices.
func ExampleLatencyProfile() {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		panic(err)
	}
	near := dev.L2HitLatencyMean(24, 2)
	far := dev.L2HitLatencyMean(24, 7)
	fmt.Println(far-near > 30)
	// Output: true
}

// Bandwidth uniformity (Observation #8): once enough SMs drive a slice,
// the nearest and farthest slices deliver the same saturated bandwidth
// despite their latency difference.
func ExampleSliceBandwidth() {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		panic(err)
	}
	eng, err := gpunoc.NewBandwidthEngine(dev)
	if err != nil {
		panic(err)
	}
	sms := dev.SMsOfGPC(0)
	a, _ := gpunoc.SliceBandwidth(eng, sms, 2)
	b, _ := gpunoc.SliceBandwidth(eng, sms, 7)
	ratio := a / b
	fmt.Println(ratio > 0.97 && ratio < 1.03)
	// Output: true
}

// The network-wall check of Implication #5: an interconnect whose
// NoC-MEM interface cannot carry the memory bandwidth caps the system.
func ExampleAnalyzeNetworkWall() {
	points := []gpunoc.SimPoint{
		{Name: "starved", NoCClockGHz: 0.6, ChannelBytes: 16, MPs: 8, MemBWGBs: 900},
		{Name: "provisioned", NoCClockGHz: 1.4, ChannelBytes: 96, MPs: 8, MemBWGBs: 900},
	}
	reports, walled, err := gpunoc.AnalyzeNetworkWall(points)
	if err != nil {
		panic(err)
	}
	fmt.Println(walled, "of", len(reports), "walled")
	// Output: 1 of 2 walled
}

// Placement reverse engineering (Implication #1): SMs of the same column
// group cluster together from timing alone.
func ExampleClusterSMsByLatency() {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		panic(err)
	}
	// SM 0 and 6 share GPC0; SM 4 and 10 share GPC4.
	groups, err := gpunoc.ClusterSMsByLatency(dev, []int{0, 6, 4, 10}, 8, 0.95)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(groups), "groups:", groups)
	// Output: 2 groups: [[0 6] [4 10]]
}
