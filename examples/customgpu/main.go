// Customgpu: design-space exploration with the paper's methodology. We
// sketch a speculative next-generation GPU ("X200"), then ask the
// questions the paper says an architect must ask: is the NoC provisioned
// so that memory - not the interconnect - is the bottleneck (Implications
// #4/#5)? How much latency non-uniformity does the partitioned floorplan
// introduce (Observations #1/#6)? What bandwidth do single SMs and whole
// GPCs see (Observations #8/#9)?
package main

import (
	"fmt"
	"log"

	"gpunoc"
	"gpunoc/internal/stats"
)

func main() {
	spec := gpunoc.CustomSpec{
		Name:           "X200",
		GPCs:           10,
		TPCsPerGPC:     10,
		CPCsPerGPC:     5,
		Partitions:     2,
		L2Slices:       120,
		MPs:            12,
		MemBWGBs:       6000,
		L2FabricFactor: 3.5,
		LocalL2Caching: true,
	}
	dev, err := gpunoc.CustomDevice(spec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dev.Config()
	fmt.Printf("speculative %s: %d SMs, %d L2 slices, %.0f GB/s DRAM, local L2 caching\n\n",
		cfg.Name, cfg.SMs(), cfg.L2Slices, cfg.MemBWGBs)

	// 1. Bottleneck audit (Implication #5's design rule).
	stages, err := gpunoc.BandwidthHierarchy(dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bandwidth hierarchy:")
	for _, s := range stages {
		fmt.Printf("  %-20s %8.0f GB/s\n", s.Name, s.CapacityGBs)
	}
	ok, binding, err := gpunoc.MemoryBound(stages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  => series bottleneck: %s (memory bound: %v)\n\n", binding.Name, ok)

	// 2. Latency landscape.
	profile, err := gpunoc.LatencyProfile(dev, 0, 16)
	if err != nil {
		log.Fatal(err)
	}
	sum := stats.Summarize(profile)
	fmt.Printf("L2 hit latency from SM0: %.0f..%.0f cycles (mean %.0f)\n",
		sum.Min, sum.Max, sum.Mean)
	fmt.Println("  (local caching keeps all hits on SM0's partition)")

	// 3. Bandwidth checks via the derived profile.
	eng, err := gpunoc.NewBandwidthEngine(dev)
	if err != nil {
		log.Fatal(err)
	}
	single, err := gpunoc.SliceBandwidth(eng, []int{0}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fabric, err := gpunoc.AggregateFabricBandwidth(eng)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := gpunoc.MemoryBandwidth(eng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbandwidth: 1 SM->slice %.0f GB/s; fabric %.0f GB/s (%.2fx achievable memory %.0f)\n",
		single, fabric, fabric/mem, mem)

	if ok && fabric > mem {
		fmt.Println("\nverdict: the design follows the paper's provisioning rules.")
	} else {
		fmt.Println("\nverdict: REVISE - the interconnect bottlenecks the memory system.")
	}
}
