// Placement: reverse-engineer which SMs share a physical cluster purely
// from L2-latency timing, the paper's Implication #1. Modern drivers hide
// per-slice performance counters, but the NoC's non-uniform latency still
// leaks placement: SMs in the same cluster have near-identical latency
// profiles (Pearson r ~ 1), so correlation clustering recovers the
// floorplan - the co-location primitive GPU side channels need.
package main

import (
	"fmt"
	"log"

	"gpunoc"
)

func main() {
	for _, name := range []string{"v100", "a100", "h100"} {
		dev, err := gpunoc.NewDevice(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := dev.Config()

		// The attacker probes a handful of SMs: two per GPC.
		var sms []int
		for g := 0; g < cfg.GPCs; g++ {
			sms = append(sms, g, cfg.GPCs+g)
		}
		clusters, err := gpunoc.ClusterSMsByLatency(dev, sms, 16, 0.99)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s: %d probed SMs cluster into %d placement groups\n",
			cfg.Name, len(sms), len(clusters))
		for i, cl := range clusters {
			fmt.Printf("  group %d:", i)
			for _, sm := range cl {
				fmt.Printf(" SM%-3d(GPC%d", sm, dev.GPCOf(sm))
				if cpc := dev.CPCOf(sm); cpc >= 0 {
					fmt.Printf("/CPC%d", cpc)
				}
				fmt.Print(")")
			}
			fmt.Println()
		}

		// Verify against the ground-truth floorplan: no cluster mixes
		// GPU partitions.
		for _, cl := range clusters {
			part := dev.PartitionOfSM(cl[0])
			for _, sm := range cl {
				if dev.PartitionOfSM(sm) != part {
					fmt.Println("  WARNING: cluster crosses GPU partitions")
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("An attacker uses these groups to co-locate spy and victim kernels")
	fmt.Println("without any performance-counter access (paper Sec. V-A).")
}
