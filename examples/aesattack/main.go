// AES attack: recover AES-128 last-round key bytes from kernel timing
// (the paper's Sec. V-B.1, after Jiang et al. HPCA'16), then show the
// paper's defence - random(-seed) thread-block scheduling - destroying
// the same attack by letting the NoC's non-uniform latency decorrelate
// the timings (Implication #3).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gpunoc"
	"gpunoc/internal/kernel"
	"gpunoc/internal/sidechannel"
)

func main() {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		log.Fatal(err)
	}
	secret := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	const samples = 15000
	const nBytes = 4

	run := func(label string, sched gpunoc.Scheduler) {
		m, err := kernel.NewMachine(dev, sched, kernel.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		victim, err := sidechannel.NewAESVictim(m, secret)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s scheduling: collecting %d warp timings...\n", label, samples)
		obs, err := sidechannel.CollectAESSamples(victim, samples, rand.New(rand.NewSource(5)))
		if err != nil {
			log.Fatal(err)
		}
		truth := victim.Key().LastRoundKey()
		hits := 0
		for j := 0; j < nBytes; j++ {
			r, err := sidechannel.RecoverAESKeyByte(obs, j, 32)
			if err != nil {
				log.Fatal(err)
			}
			ok := r.Best == truth[j]
			if ok {
				hits++
			}
			fmt.Printf("  byte %d: guessed %02x, truth %02x, peak correlation %.3f -> %v\n",
				j, r.Best, truth[j], r.Correlations[r.Best], ok)
		}
		fmt.Printf("  => recovered %d/%d key bytes\n\n", hits, nBytes)
	}

	run("static", gpunoc.StaticScheduler{})

	rng := rand.New(rand.NewSource(9))
	run("random", gpunoc.RandomScheduler{Rand: rng.Uint64})

	fmt.Println("Static scheduling pins the victim to one SM, so the unique-sector")
	fmt.Println("timing signal survives; random-seed scheduling moves it across SMs")
	fmt.Println("whose NoC latencies differ, burying the signal (paper Fig. 18).")
}
