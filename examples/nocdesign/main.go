// NoC design: use the paper's Section VI methodology to audit an on-chip
// network design. First, the "network wall" check (Implication #5): the
// NoC-MEM interface bandwidth f_NoC * w * C must exceed the memory
// bandwidth, or the NoC - not DRAM - caps the system. Second, the
// flit-level mesh simulator shows the fairness cost of a multi-hop
// topology (Implication #6) and the reply-interface bottleneck that
// mis-modelled simulators exhibit (Implication #4).
package main

import (
	"fmt"
	"log"

	"gpunoc"
)

func main() {
	// --- A designer's candidate configurations -------------------------------
	candidates := []gpunoc.SimPoint{
		{Name: "candidate A: 1 GHz, 16B channels, 8 MPs", NoCClockGHz: 1.0, ChannelBytes: 16, MPs: 8, MemBWGBs: 900},
		{Name: "candidate B: 1.4 GHz, 32B channels, 8 MPs", NoCClockGHz: 1.4, ChannelBytes: 32, MPs: 8, MemBWGBs: 900},
		{Name: "candidate C: 2 GHz, 80B channels, 10 MPs", NoCClockGHz: 2.0, ChannelBytes: 80, MPs: 10, MemBWGBs: 1555},
	}
	reports, walled, err := gpunoc.AnalyzeNetworkWall(candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network-wall audit (%d of %d candidates walled):\n", walled, len(reports))
	for _, r := range reports {
		verdict := "OK: memory-bound, as a real GPU is"
		if r.Walled {
			verdict = "NETWORK WALL: the NoC caps bandwidth below DRAM"
		}
		fmt.Printf("  %-45s BW_NoC-MEM %5.0f vs BW_mem %5.0f -> %s\n",
			r.Point.Name, r.NoCMem, r.Point.MemBWGBs, verdict)
	}
	fmt.Println()

	// --- Fairness of a multi-hop mesh under the two arbiters ------------------
	fmt.Println("mesh fairness at saturation (6x6, 30 cores, 6 edge MCs):")
	runFair := func(label string, cfg gpunoc.FairnessConfig) {
		res, err := gpunoc.RunFairness(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s max/min per-core throughput ratio %.2fx\n", label, res.MaxMinRatio)
	}
	rr := gpunoc.FairnessConfig{
		Mesh:        gpunoc.MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: gpunoc.RoundRobin},
		PacketFlits: 1, InjectRate: 0.25, Warmup: 2000, Cycles: 20000, Seed: 42,
	}
	age := rr
	age.Mesh.Arbiter = gpunoc.AgeBased
	runFair("round-robin:", rr)
	runFair("age-based:", age)
	fmt.Println("  (paper Fig 23: RR up to 2.4x unfair; age-based restores fairness)")
	fmt.Println()

	// --- Reply-interface bottleneck ------------------------------------------
	fmt.Println("reply-network provisioning (Fig 21's pitfall):")
	for _, replyFlits := range []int{3, 1} {
		cfg := gpunoc.GPUSimConfig{
			Mesh:            gpunoc.MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: gpunoc.RoundRobin},
			ReplyFlits:      replyFlits,
			MCServiceCycles: 1, MCQueue: 16, WindowPerCompute: 16,
			Cycles: 20000, Warmup: 2000, UtilWindow: 200, Seed: 1,
		}
		res, err := gpunoc.RunGPUSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-flit replies: memory channels run at %.0f%% utilization\n",
			replyFlits, 100*res.MemUtilization)
	}
	fmt.Println("  => provision the reply interface for cache-line replies, or the")
	fmt.Println("     simulated 'memory-bound' GPU is actually network-bound.")
}
