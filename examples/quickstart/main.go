// Quickstart: measure the V100's non-uniform L2 latency and uniform
// bandwidth with the paper's two micro-benchmarks (Algorithms 1 and 2),
// end to end through the public API.
package main

import (
	"fmt"
	"log"

	"gpunoc"
	"gpunoc/internal/stats"
)

func main() {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		log.Fatal(err)
	}
	cfg := dev.Config()
	fmt.Printf("device: %s (%d SMs, %d L2 slices, %d MPs)\n\n",
		cfg.Name, cfg.SMs(), cfg.L2Slices, cfg.MPs)

	// Algorithm 1: one thread timing loads from SM 24 to every slice.
	fmt.Println("Observation #1 - L2 latency from SM 24 is non-uniform:")
	profile, err := gpunoc.LatencyProfile(dev, 24, 50)
	if err != nil {
		log.Fatal(err)
	}
	sum := stats.Summarize(profile)
	fmt.Printf("  min %.0f, mean %.0f, max %.0f cycles (paper: 175 / ~212 / 248)\n",
		sum.Min, sum.Mean, sum.Max)
	nearest, farthest := stats.Argsort(profile)[0], stats.Argsort(profile)[len(profile)-1]
	fmt.Printf("  nearest slice %d (%.0f cyc), farthest slice %d (%.0f cyc)\n\n",
		nearest, profile[nearest], farthest, profile[farthest])

	// Algorithm 2: streaming bandwidth.
	eng, err := gpunoc.NewBandwidthEngine(dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Observation #8 - bandwidth to slices is uniform:")
	var bws []float64
	for s := 0; s < cfg.L2Slices; s += 4 {
		bw, err := gpunoc.SliceBandwidth(eng, []int{24}, s)
		if err != nil {
			log.Fatal(err)
		}
		bws = append(bws, bw)
	}
	bsum := stats.Summarize(bws)
	fmt.Printf("  1 SM -> slice: %.1f GB/s with CV %.1f%% (paper: ~34 GB/s, sigma 0.147)\n\n",
		bsum.Mean, 100*bsum.StdDev/bsum.Mean)

	fmt.Println("Observation #7 - the L2 fabric outruns DRAM:")
	fabric, err := gpunoc.AggregateFabricBandwidth(eng)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := gpunoc.MemoryBandwidth(eng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  aggregate L2 fabric %.0f GB/s = %.2fx the %.0f GB/s achievable memory bandwidth\n",
		fabric, fabric/mem, mem)
	fmt.Printf("  (%.0f%% of the %.0f GB/s peak; paper: 85-90%%)\n",
		100*mem/float64(cfg.MemBWGBs), float64(cfg.MemBWGBs))
}
