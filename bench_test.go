// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating its data through the experiment registry) plus ablation
// benchmarks for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks report figure-of-merit metrics (latency spreads, bandwidth
// ratios, fairness ratios...) via b.ReportMetric so the bench output
// doubles as the reproduction's summary table.
package gpunoc_test

import (
	"math/rand"
	"testing"

	"gpunoc"
	"gpunoc/internal/bandwidth"
	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/microbench"
	"gpunoc/internal/noc"
	"gpunoc/internal/perfbench"
	"gpunoc/internal/rsa"
	"gpunoc/internal/sidechannel"
	"gpunoc/internal/stats"
)

// runExperiment executes a registry experiment b.N times in quick mode.
// It delegates to perfbench.ExperimentLoop, which builds a fresh
// core.Context inside the timed region each iteration: the old shared
// Context let state warmed by the first run (engine scratch, device
// tables) make every later iteration cheaper than the cold path
// production pays, and b.ReportAllocs was missing entirely.
func runExperiment(b *testing.B, id string, cfg gpu.Config) {
	b.Helper()
	perfbench.ExperimentLoop(b, id, cfg)
}

func BenchmarkTableI(b *testing.B)                { runExperiment(b, "table1", gpu.V100()) }
func BenchmarkFig01Latency(b *testing.B)          { runExperiment(b, "fig1", gpu.V100()) }
func BenchmarkFig02Histogram(b *testing.B)        { runExperiment(b, "fig2", gpu.V100()) }
func BenchmarkFig03SortedOrder(b *testing.B)      { runExperiment(b, "fig3", gpu.V100()) }
func BenchmarkFig04Floorplan(b *testing.B)        { runExperiment(b, "fig4", gpu.V100()) }
func BenchmarkFig05PlacementLatency(b *testing.B) { runExperiment(b, "fig5", gpu.V100()) }

func BenchmarkFig06Heatmap(b *testing.B) {
	for _, cfg := range gpu.AllConfigs() {
		b.Run(string(cfg.Name), func(b *testing.B) { runExperiment(b, "fig6", cfg) })
	}
}

func BenchmarkFig07CPC(b *testing.B) { runExperiment(b, "fig7", gpu.H100()) }

func BenchmarkFig08Partitions(b *testing.B) {
	for _, cfg := range gpu.AllConfigs() {
		b.Run(string(cfg.Name), func(b *testing.B) { runExperiment(b, "fig8", cfg) })
	}
}

func BenchmarkFig09Bandwidth(b *testing.B) {
	runExperiment(b, "fig9", gpu.V100())
	// Report the headline fabric-to-memory ratio.
	ctx, err := core.NewContext(gpu.V100(), true)
	if err != nil {
		b.Fatal(err)
	}
	fabric, err := microbench.AggregateFabricBandwidth(ctx.Engine)
	if err != nil {
		b.Fatal(err)
	}
	mem, err := microbench.MemoryBandwidth(ctx.Engine)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(fabric/mem, "fabric/mem")
}

func BenchmarkFig10Speedup(b *testing.B) {
	for _, cfg := range gpu.AllConfigs() {
		b.Run(string(cfg.Name), func(b *testing.B) { runExperiment(b, "fig10", cfg) })
	}
}

func BenchmarkFig11LinkTree(b *testing.B) { runExperiment(b, "fig11", gpu.V100()) }
func BenchmarkFig12NearFar(b *testing.B)  { runExperiment(b, "fig12", gpu.A100()) }

func BenchmarkFig13BWDistribution(b *testing.B) {
	for _, cfg := range []gpu.Config{gpu.A100(), gpu.H100()} {
		b.Run(string(cfg.Name), func(b *testing.B) { runExperiment(b, "fig13", cfg) })
	}
}

func BenchmarkFig14Saturation(b *testing.B) { runExperiment(b, "fig14", gpu.A100()) }
func BenchmarkFig15Placement(b *testing.B)  { runExperiment(b, "fig15", gpu.V100()) }
func BenchmarkFig16Traffic(b *testing.B)    { runExperiment(b, "fig16", gpu.V100()) }
func BenchmarkFig17Coalescing(b *testing.B) { runExperiment(b, "fig17", gpu.A100()) }
func BenchmarkFig18AES(b *testing.B)        { runExperiment(b, "fig18", gpu.V100()) }
func BenchmarkFig19RSA(b *testing.B)        { runExperiment(b, "fig19", gpu.A100()) }
func BenchmarkFig20Pattern(b *testing.B)    { runExperiment(b, "fig20", gpu.V100()) }

func BenchmarkFig21Backpressure(b *testing.B) {
	runExperiment(b, "fig21", gpu.V100())
	res, err := noc.RunGPUSim(noc.DefaultGPUSimConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MemUtilization, "mem-util")
}

func BenchmarkFig22NetworkWall(b *testing.B) { runExperiment(b, "fig22", gpu.V100()) }

func BenchmarkFig23MeshFairness(b *testing.B) {
	runExperiment(b, "fig23", gpu.V100())
	rr, err := noc.RunFairness(noc.DefaultFairnessConfig(noc.RoundRobin, 42))
	if err != nil {
		b.Fatal(err)
	}
	age, err := noc.RunFairness(noc.DefaultFairnessConfig(noc.AgeBased, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rr.MaxMinRatio, "rr-ratio")
	b.ReportMetric(age.MaxMinRatio, "age-ratio")
}

// --- Extension benchmarks ------------------------------------------------------

// Extension 1 (Sec. VI-C): hierarchical crossbar vs mesh fairness.
func BenchmarkExt1CrossbarFairness(b *testing.B) {
	runExperiment(b, "ext1", gpu.V100())
	xbar, err := noc.RunXbarFairness(noc.DefaultXbarFairnessConfig(noc.RoundRobin, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(xbar.MaxMinRatio, "xbar-rr-ratio")
}

// Extension 2 (Sec. V-A): slice-contention covert channel.
func BenchmarkExt2CovertChannel(b *testing.B) { runExperiment(b, "ext2", gpu.V100()) }

// Extension 3 (Sec. VI-B): series-bottleneck audit.
func BenchmarkExt3Bottleneck(b *testing.B) { runExperiment(b, "ext3", gpu.H100()) }

// Extension 4: working-set latency sweep with the residency-modelled L2.
func BenchmarkExt4WorkingSet(b *testing.B) { runExperiment(b, "ext4", gpu.V100()) }

// --- Ablation benchmarks (DESIGN.md) -----------------------------------------

// Ablation 1: floorplan-driven latency vs flat latency. With the wire
// term zeroed, the non-uniformity of Observation #1 vanishes.
func BenchmarkAblationFlatLatency(b *testing.B) {
	spread := func(cfg gpu.Config) float64 {
		dev, err := gpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var xs []float64
		for s := 0; s < cfg.L2Slices; s++ {
			xs = append(xs, float64(dev.L2HitLatencyMean(24, s)))
		}
		sum := stats.Summarize(xs)
		return sum.Max - sum.Min
	}
	base := gpu.V100()
	flat := gpu.V100()
	flat.Cal.WireRTT = 0
	var s1, s2 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, s2 = spread(base), spread(flat)
	}
	b.ReportMetric(s1, "spread-floorplan")
	b.ReportMetric(s2, "spread-flat")
}

// Ablation 2: Little's-law regime. With effectively unlimited MLP the
// near/far single-SM bandwidth gap of Fig. 14 disappears (capacity binds
// instead of latency).
func BenchmarkAblationLittlesLaw(b *testing.B) {
	dev, err := gpu.New(gpu.A100())
	if err != nil {
		b.Fatal(err)
	}
	gap := func(mutate func(*bandwidth.Profile)) float64 {
		prof, err := bandwidth.ProfileFor(dev.Config())
		if err != nil {
			b.Fatal(err)
		}
		if mutate != nil {
			mutate(&prof)
		}
		eng, err := bandwidth.NewEngineWithProfile(dev, prof)
		if err != nil {
			b.Fatal(err)
		}
		near, err := eng.Solve([]bandwidth.Flow{{SM: 0, Slices: []int{0}}})
		if err != nil {
			b.Fatal(err)
		}
		far, err := eng.Solve([]bandwidth.Flow{{SM: 0, Slices: []int{9}}})
		if err != nil {
			b.Fatal(err)
		}
		return 1 - float64(far.TotalGBs)/float64(near.TotalGBs)
	}
	var calibrated, deepMLP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calibrated = gap(nil)
		deepMLP = gap(func(p *bandwidth.Profile) {
			p.MLPLines, p.MLPWriteLines, p.MLPPerSliceLines = 100000, 100000, 100000
		})
	}
	b.ReportMetric(calibrated, "nearfar-gap")
	b.ReportMetric(deepMLP, "nearfar-gap-deep-mlp")
}

// Ablation 3: spatial GPC ports. Replacing the per-MP spatial ports with
// one fat port removes the +218%-style gain of Fig. 15(c).
func BenchmarkAblationSpatialGPCPorts(b *testing.B) {
	dev, err := gpu.New(gpu.V100())
	if err != nil {
		b.Fatal(err)
	}
	gain := func(mutate func(*bandwidth.Profile)) float64 {
		prof, err := bandwidth.ProfileFor(dev.Config())
		if err != nil {
			b.Fatal(err)
		}
		if mutate != nil {
			mutate(&prof)
		}
		eng, err := bandwidth.NewEngineWithProfile(dev, prof)
		if err != nil {
			b.Fatal(err)
		}
		run := func(nMPs int) float64 {
			var slices []int
			for mp := 0; mp < nMPs; mp++ {
				slices = append(slices, dev.SlicesOfMP(mp)...)
			}
			bw, err := microbench.SetBandwidth(eng, dev.SMsOfGPC(0), slices, false)
			if err != nil {
				b.Fatal(err)
			}
			return bw
		}
		return run(4)/run(1) - 1
	}
	var spatial, fat float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spatial = gain(nil)
		fat = gain(func(p *bandwidth.Profile) { p.GPCMPPortGBs = p.GPCTrunkGBs })
	}
	b.ReportMetric(100*spatial, "gain-%-spatial")
	b.ReportMetric(100*fat, "gain-%-fat-port")
}

// Ablation 4: arbitration policy (also covered by Fig 23); here as a
// small sweep over buffer depths.
func BenchmarkAblationArbitration(b *testing.B) {
	var rrRatio, ageRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := noc.RunFairness(noc.DefaultFairnessConfig(noc.RoundRobin, 7))
		if err != nil {
			b.Fatal(err)
		}
		age, err := noc.RunFairness(noc.DefaultFairnessConfig(noc.AgeBased, 7))
		if err != nil {
			b.Fatal(err)
		}
		rrRatio, ageRatio = rr.MaxMinRatio, age.MaxMinRatio
	}
	b.ReportMetric(rrRatio, "rr-ratio")
	b.ReportMetric(ageRatio, "age-ratio")
}

// Ablation 5: scheduling defence on the RSA channel: random-seed
// scheduling multiplies the attacker's inference error.
func BenchmarkAblationScheduling(b *testing.B) {
	dev, err := gpu.New(gpu.A100())
	if err != nil {
		b.Fatal(err)
	}
	mae := func(sched kernel.Scheduler) float64 {
		opts := kernel.DefaultOptions()
		opts.GridSync = true
		m, err := kernel.NewMachine(dev, sched, opts)
		if err != nil {
			b.Fatal(err)
		}
		timer := rsa.NewGPUTimer(m)
		rng := rand.New(rand.NewSource(3))
		ones := []int{8, 24, 40, 56}
		calib, err := sidechannel.CollectRSATimings(timer, 64, ones, 3, rng)
		if err != nil {
			b.Fatal(err)
		}
		test, err := sidechannel.CollectRSATimings(timer, 64, ones, 2, rng)
		if err != nil {
			b.Fatal(err)
		}
		_, e, err := sidechannel.EvaluateRSAAttack(calib, test)
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	var static, random float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static = mae(kernel.ListScheduler{SMs: []int{0, 8}})
		rng := rand.New(rand.NewSource(7))
		random = mae(kernel.RandomScheduler{Rand: rng.Uint64})
	}
	b.ReportMetric(static, "static-mae-bits")
	b.ReportMetric(random, "random-mae-bits")
}

// Ablation 6: H100 partition-local caching. Turning it off re-introduces
// A100-style per-GPC hit-latency spread.
func BenchmarkAblationLocalCaching(b *testing.B) {
	spread := func(local bool) float64 {
		cfg := gpu.H100()
		cfg.LocalL2Caching = local
		dev, err := gpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lat, err := microbench.GPCToMPLatency(dev, 0, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		return stats.Max(lat) - stats.Min(lat)
	}
	var on, off float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on, off = spread(true), spread(false)
	}
	b.ReportMetric(on, "spread-local-on")
	b.ReportMetric(off, "spread-local-off")
}

// A facade smoke benchmark: the public quick-start path.
func BenchmarkFacadeQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dev, err := gpunoc.NewDevice("v100")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gpunoc.LatencyProfile(dev, 24, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension 5 (Sec. IV-C): memory camping vs hashing on the mesh.
func BenchmarkExt5MemoryCamping(b *testing.B) { runExperiment(b, "ext5", gpu.V100()) }
