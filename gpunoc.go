// Package gpunoc reproduces "Uncovering Real GPU NoC Characteristics:
// Implications on Interconnect Architecture" (MICRO 2024) as a runnable
// library: a floorplan-driven model of the NVIDIA V100/A100/H100 on-chip
// networks, the paper's latency and bandwidth micro-benchmarks
// (Algorithms 1 and 2), a flit-level mesh NoC simulator, the AES/RSA
// timing side-channel attacks with the random-scheduling defence, and a
// registry of experiments regenerating every table and figure of the
// paper.
//
// This root package is the stable facade; the implementation lives in
// internal packages:
//
//	internal/gpu         device model (hierarchy, floorplan latency, hashing)
//	internal/bandwidth   closed-queueing-network bandwidth engine
//	internal/kernel      warp-granularity kernel runtime and block schedulers
//	internal/microbench  the paper's Algorithms 1 and 2
//	internal/noc         flit-level 2-D mesh simulator and NoC analytics
//	internal/sidechannel AES/RSA attacks, placement reverse engineering
//	internal/core        per-figure experiment registry
//
// Quick start:
//
//	dev, _ := gpunoc.NewDevice("v100")
//	lat, _ := gpunoc.MeasureL2Latency(dev, 24, 7, 100)
//	fmt.Println(lat.Summary) // non-uniform: compare across slices
package gpunoc

import (
	"gpunoc/internal/bandwidth"
	"gpunoc/internal/bottleneck"
	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/microbench"
	"gpunoc/internal/noc"
	"gpunoc/internal/sidechannel"
	"gpunoc/internal/units"
)

// Unit-safe quantity types used throughout the public API. Latencies are
// Cycles, bandwidths GBps, and sizes Bytes; convert to bare float64 only
// at measurement boundaries with an explicit float64(...) conversion (the
// noclint unitsafety analyzer flags unit-to-unit conversions).
type (
	// Cycles is a latency or duration in core clock cycles.
	Cycles = units.Cycles
	// GBps is a bandwidth in gigabytes per second.
	GBps = units.GBps
	// Bytes is a data size in bytes.
	Bytes = units.Bytes
)

// Device is a modelled GPU (see internal/gpu.Device for full docs).
type Device = gpu.Device

// Config describes a GPU generation.
type Config = gpu.Config

// Canonical generation configs.
var (
	V100 = gpu.V100
	A100 = gpu.A100
	H100 = gpu.H100
)

// NewDevice builds a device for a generation name ("v100", "a100",
// "h100").
func NewDevice(name string) (*Device, error) {
	cfg, err := gpu.ByName(name)
	if err != nil {
		return nil, err
	}
	return gpu.New(cfg)
}

// NewDeviceFromConfig builds a device from an explicit (possibly
// customized) configuration.
func NewDeviceFromConfig(cfg Config) (*Device, error) { return gpu.New(cfg) }

// CustomSpec describes a speculative GPU generation for design-space
// exploration; see internal/gpu.CustomSpec.
type CustomSpec = gpu.CustomSpec

// CustomDevice builds a device for a speculative generation. The
// bandwidth engine derives a capacity profile from the spec's headline
// numbers following the paper's provisioning rules.
func CustomDevice(spec CustomSpec) (*Device, error) {
	cfg, err := gpu.Custom(spec)
	if err != nil {
		return nil, err
	}
	return gpu.New(cfg)
}

// BandwidthHierarchy returns the series-system stages of a device's
// bandwidth hierarchy for bottleneck auditing (extension ext3).
func BandwidthHierarchy(dev *Device) ([]bottleneck.Stage, error) {
	prof, err := bandwidth.ProfileOrDerive(dev.Config())
	if err != nil {
		return nil, err
	}
	return bottleneck.Hierarchy(dev.Config(), prof)
}

// BottleneckStage is one stage of the bandwidth hierarchy.
type BottleneckStage = bottleneck.Stage

// MemoryBound reports whether DRAM is the hierarchy's series bottleneck
// (Implication #5's design rule) and names the binding stage.
var MemoryBound = bottleneck.MemoryBound

// LatencyResult is a latency measurement summary.
type LatencyResult = microbench.LatencyResult

// MeasureL2Latency runs the paper's Algorithm 1: a single pinned thread
// timing L1-bypassing loads from SM sm to L2 slice slice.
func MeasureL2Latency(dev *Device, sm, slice, iters int) (LatencyResult, error) {
	return microbench.MeasureL2Latency(dev, sm, slice, iters)
}

// LatencyProfile returns SM sm's mean latency to every L2 slice.
func LatencyProfile(dev *Device, sm, iters int) ([]float64, error) {
	return microbench.LatencyProfile(dev, sm, iters)
}

// CorrelationHeatmap computes the SM-by-SM Pearson matrix of latency
// profiles (the paper's Fig. 6). A nil sms slice covers every SM. The
// profile rows are measured on the deterministic parallel runner
// (internal/parallel) with the GOMAXPROCS-derived pool size; the result
// is byte-identical to a sequential sweep.
func CorrelationHeatmap(dev *Device, sms []int, iters int) ([][]float64, error) {
	return microbench.CorrelationHeatmap(dev, sms, iters, 0)
}

// BandwidthEngine solves steady-state bandwidth allocations.
type BandwidthEngine = bandwidth.Engine

// Flow is one SM streaming to a slice set.
type Flow = bandwidth.Flow

// NewBandwidthEngine builds the engine with the generation's calibrated
// capacity profile.
func NewBandwidthEngine(dev *Device) (*BandwidthEngine, error) {
	return bandwidth.NewEngine(dev)
}

// SliceBandwidth runs the paper's Algorithm 2 for one destination slice.
func SliceBandwidth(eng *BandwidthEngine, sms []int, slice int) (float64, error) {
	return microbench.SliceBandwidth(eng, sms, slice)
}

// AggregateFabricBandwidth measures total L2 fabric bandwidth (Fig. 9a).
func AggregateFabricBandwidth(eng *BandwidthEngine) (float64, error) {
	return microbench.AggregateFabricBandwidth(eng)
}

// MemoryBandwidth measures achievable off-chip bandwidth (Fig. 9a).
func MemoryBandwidth(eng *BandwidthEngine) (float64, error) {
	return microbench.MemoryBandwidth(eng)
}

// Kernel runtime types for writing custom micro-benchmarks.
type (
	// Machine executes kernels on a device under a block scheduler.
	Machine = kernel.Machine
	// Warp is the per-warp kernel context (Clock, SMID, LoadCG...).
	Warp = kernel.Warp
	// Scheduler assigns thread blocks to SMs.
	Scheduler = kernel.Scheduler
	// StaticScheduler is the deterministic production policy.
	StaticScheduler = kernel.StaticScheduler
	// RandomScheduler is the paper's random-seed defence.
	RandomScheduler = kernel.RandomScheduler
)

// NewMachine builds a kernel machine with default runtime options.
func NewMachine(dev *Device, sched Scheduler) (*Machine, error) {
	return kernel.NewMachine(dev, sched, kernel.DefaultOptions())
}

// ClusterSMsByLatency reverse-engineers SM placement from timing alone
// (Implication #1).
func ClusterSMsByLatency(dev *Device, sms []int, iters int, threshold float64) ([][]int, error) {
	return sidechannel.ClusterSMsByLatency(dev, sms, iters, threshold)
}

// Mesh simulation façade (Sec. VI).
type (
	// MeshConfig configures the flit-level mesh simulator.
	MeshConfig = noc.MeshConfig
	// FairnessConfig sets up the Fig. 23 arbitration-fairness study.
	FairnessConfig = noc.FairnessConfig
	// GPUSimConfig sets up the Fig. 21 request/reply bottleneck study.
	GPUSimConfig = noc.GPUSimConfig
	// SimPoint is a prior-work NoC configuration for the network-wall
	// analysis (Fig. 22).
	SimPoint = noc.SimPoint
)

// Arbitration policies for the mesh simulator.
const (
	RoundRobin = noc.RoundRobin
	AgeBased   = noc.AgeBased
)

// RunFairness executes the Fig. 23 experiment.
var RunFairness = noc.RunFairness

// RunGPUSim executes the Fig. 21 experiment.
var RunGPUSim = noc.RunGPUSim

// AnalyzeNetworkWall classifies NoC configurations against the paper's
// Fig. 22 network wall.
var AnalyzeNetworkWall = noc.AnalyzeNetworkWall

// Experiment registry: every table and figure of the paper.
type (
	// Experiment reproduces one table or figure.
	Experiment = core.Experiment
	// ExperimentContext carries the device and engine an experiment runs
	// against.
	ExperimentContext = core.Context
	// Artifact is a renderable experiment output.
	Artifact = core.Artifact
)

// Experiments returns the full registry in paper order.
func Experiments() []*Experiment { return core.All() }

// LookupExperiment finds an experiment by ID ("fig1".."fig23", "table1").
func LookupExperiment(id string) (*Experiment, error) { return core.Lookup(id) }

// NewExperimentContext prepares resources for running experiments on a
// generation; quick mode trades statistical depth for speed.
func NewExperimentContext(cfg Config, quick bool) (*ExperimentContext, error) {
	return core.NewContext(cfg, quick)
}

// CheckObservations evaluates the paper's Observations #1-#12 against the
// model.
var CheckObservations = core.CheckObservations

// CheckImplications evaluates the paper's Implications #1-#6 against the
// model.
var CheckImplications = core.CheckImplications

// WorkingSetPoint is one point of a working-set latency sweep.
type WorkingSetPoint = microbench.WorkingSetPoint

// WorkingSetSweep runs the pointer-chase capacity sweep with a real
// set-associative sectored L2 model attached: latency steps up once the
// working set exceeds the L2 (extension ext4).
func WorkingSetSweep(dev *Device, sm int, sizesBytes []int) ([]WorkingSetPoint, error) {
	return microbench.WorkingSetSweep(dev, sm, sizesBytes)
}

// CovertChannel is the L2-slice contention covert channel of extension
// ext2 (paper Sec. V-A).
type CovertChannel = sidechannel.CovertChannel

// NewCovertChannel builds a covert channel between disjoint trojan and
// spy SM sets over one L2 slice.
func NewCovertChannel(eng *BandwidthEngine, slice int, trojanSMs, spySMs []int) (*CovertChannel, error) {
	return sidechannel.NewCovertChannel(eng, slice, trojanSMs, spySMs)
}

// LocateVictimSlice recovers which L2 slice a victim is streaming to by
// probing for bandwidth contention (the [51]-style access-pattern attack).
var LocateVictimSlice = sidechannel.LocateVictimSlice

// Load-latency sweep over the mesh (the classic NoC characterization).
type (
	// LoadLatencyConfig configures the sweep.
	LoadLatencyConfig = noc.LoadLatencyConfig
	// LoadPoint is one (offered, accepted, latency) sample.
	LoadPoint = noc.LoadPoint
)

// RunLoadLatency executes the load-latency sweep.
var RunLoadLatency = noc.RunLoadLatency

// XbarFairnessConfig sets up the hierarchical-crossbar fairness study
// (extension ext1, paper Sec. VI-C).
type XbarFairnessConfig = noc.XbarFairnessConfig

// RunXbarFairness measures per-source throughput on the crossbar.
var RunXbarFairness = noc.RunXbarFairness
