#!/usr/bin/env sh
# ci.sh — the full verification gate, runnable locally or in CI.
# Mirrors .github/workflows/ci.yml exactly; keep the two in sync.
set -eu

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> noclint (determinism, unitsafety, orderedoutput, registry, errcheck)"
go run ./cmd/noclint ./...

echo "==> go test -race"
go test -race ./...

echo "==> nocchar -all parallel determinism smoke (race)"
# The parallel runner must make pool size invisible: stdout of a full
# quick sweep is byte-compared between one worker and a wide pool, with
# the race detector watching the fan-out. Timings go to stderr. The
# same sweeps collect metrics and traces, so the observability layer's
# own determinism contract - files byte-identical across pool sizes,
# stdout untouched by collection - is checked in the same pass.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -race -o "$tmpdir/nocchar" ./cmd/nocchar
"$tmpdir/nocchar" -gpu v100 -all -quick -parallel 1 \
	-metrics "$tmpdir/seq.metrics.json" -trace "$tmpdir/seq.trace.json" \
	>"$tmpdir/seq.out" 2>/dev/null
"$tmpdir/nocchar" -gpu v100 -all -quick -parallel 8 \
	-metrics "$tmpdir/par.metrics.json" -trace "$tmpdir/par.trace.json" \
	>"$tmpdir/par.out" 2>/dev/null
if ! cmp -s "$tmpdir/seq.out" "$tmpdir/par.out"; then
	echo "nocchar -all output differs between -parallel 1 and -parallel 8" >&2
	diff "$tmpdir/seq.out" "$tmpdir/par.out" | head -20 >&2
	exit 1
fi
"$tmpdir/nocchar" -gpu v100 -all -quick -parallel 8 >"$tmpdir/plain.out" 2>/dev/null
if ! cmp -s "$tmpdir/seq.out" "$tmpdir/plain.out"; then
	echo "nocchar -all stdout changes when -metrics/-trace are enabled" >&2
	exit 1
fi
if ! cmp -s "$tmpdir/seq.metrics.json" "$tmpdir/par.metrics.json"; then
	echo "nocchar -metrics output differs between -parallel 1 and -parallel 8" >&2
	exit 1
fi
if ! cmp -s "$tmpdir/seq.trace.json" "$tmpdir/par.trace.json"; then
	echo "nocchar -trace output differs between -parallel 1 and -parallel 8" >&2
	exit 1
fi

echo "==> tracecheck (trace-event JSON validity)"
go run ./cmd/tracecheck "$tmpdir/seq.trace.json"

echo "==> all checks passed"
