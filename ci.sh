#!/usr/bin/env sh
# ci.sh — the full verification gate, runnable locally or in CI.
# Mirrors .github/workflows/ci.yml exactly; keep the two in sync.
set -eu

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> noclint -baseline (per-package + interprocedural analyzers, ratchet)"
# The committed baseline is empty: every analyzer must run clean, and
# the ratchet fails both on new findings and on stale baseline entries.
go run ./cmd/noclint -baseline noclint.baseline.json ./...

echo "==> noclint seeded-violation smoke"
# Prove the gate actually bites: drop a file with a known violation into
# the tree, assert noclint -baseline exits non-zero, then remove it.
smokedir="internal/lintsmoke_$$"
mkdir "$smokedir"
trap 'rm -rf "$smokedir"' EXIT
cat > "$smokedir/bad.go" <<'EOF'
// Package lintsmoke is a transient CI fixture proving the noclint
// baseline gate fails on a seeded violation.
package lintsmoke

import "time"

// Stamp reads the wall clock inside the model: a seedflow violation.
func Stamp() time.Time { return time.Now() }
EOF
if go run ./cmd/noclint -baseline noclint.baseline.json ./... >/dev/null 2>&1; then
	echo "noclint -baseline passed with a seeded violation; the gate is dead" >&2
	exit 1
fi
rm -rf "$smokedir"
trap - EXIT

echo "==> go test -race -shuffle=on"
# -shuffle randomizes test (and subtest-group) execution order every
# run, so inter-test state dependencies fail in CI instead of lurking.
go test -race -shuffle=on ./...

echo "==> nocfuzz invariant sweep (race)"
# The differential oracles (zero-load latency, arbiter low-load
# equivalence, replay determinism) plus 64 seeded fuzz cases must clear
# the full invariant audit — flit conservation, occupancy bounds, no
# duplication, wormhole framing, latency >= Manhattan bound, monotone
# IDs, Drained()<=>ledger-empty — with the race detector watching.
go run -race ./cmd/nocfuzz -seeds 64 -budget 30s

echo "==> nocfuzz seeded-sabotage smoke"
# Prove the harness bites: -break-invariant audits a healthy mesh
# through a sabotaged tap (a double-counted tail flit) and must exit
# non-zero with conservation findings, or the invariant gate is dead.
if go run -race ./cmd/nocfuzz -break-invariant >/dev/null 2>&1; then
	echo "nocfuzz -break-invariant passed with sabotaged accounting; the invariant gate is dead" >&2
	exit 1
fi

echo "==> nocbench -check (perf ratchet vs bench.baseline.json)"
# The curated benchmark suite must stay inside each entry's noise
# budget relative to the committed baseline. -quick keeps the stage
# cheap; the budgets are generous (default 2.5x) because shared runners
# are noisy, but stale baseline entries and new unbaselined benchmarks
# fail exactly like noclint's ratchet.
go run ./cmd/nocbench -check -quick -baseline bench.baseline.json

echo "==> nocbench seeded-regression smoke"
# Prove the perf gate bites: a seeded 3x slowdown on mesh_step (via the
# -slow-by self-test hook) must make -check exit non-zero.
if go run ./cmd/nocbench -check -quick -bench mesh_step -slow-by mesh_step=3 -baseline bench.baseline.json >/dev/null 2>&1; then
	echo "nocbench -check passed with a seeded 3x regression; the perf gate is dead" >&2
	exit 1
fi

echo "==> nocchar -all parallel determinism smoke (race)"
# The parallel runner must make pool size invisible: stdout of a full
# quick sweep is byte-compared between one worker and a wide pool, with
# the race detector watching the fan-out. Timings go to stderr. The
# same sweeps collect metrics and traces, so the observability layer's
# own determinism contract - files byte-identical across pool sizes,
# stdout untouched by collection - is checked in the same pass.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -race -o "$tmpdir/nocchar" ./cmd/nocchar
"$tmpdir/nocchar" -gpu v100 -all -quick -parallel 1 \
	-metrics "$tmpdir/seq.metrics.json" -trace "$tmpdir/seq.trace.json" \
	>"$tmpdir/seq.out" 2>/dev/null
"$tmpdir/nocchar" -gpu v100 -all -quick -parallel 8 \
	-metrics "$tmpdir/par.metrics.json" -trace "$tmpdir/par.trace.json" \
	>"$tmpdir/par.out" 2>/dev/null
if ! cmp -s "$tmpdir/seq.out" "$tmpdir/par.out"; then
	echo "nocchar -all output differs between -parallel 1 and -parallel 8" >&2
	diff "$tmpdir/seq.out" "$tmpdir/par.out" | head -20 >&2
	exit 1
fi
"$tmpdir/nocchar" -gpu v100 -all -quick -parallel 8 >"$tmpdir/plain.out" 2>/dev/null
if ! cmp -s "$tmpdir/seq.out" "$tmpdir/plain.out"; then
	echo "nocchar -all stdout changes when -metrics/-trace are enabled" >&2
	exit 1
fi
if ! cmp -s "$tmpdir/seq.metrics.json" "$tmpdir/par.metrics.json"; then
	echo "nocchar -metrics output differs between -parallel 1 and -parallel 8" >&2
	exit 1
fi
if ! cmp -s "$tmpdir/seq.trace.json" "$tmpdir/par.trace.json"; then
	echo "nocchar -trace output differs between -parallel 1 and -parallel 8" >&2
	exit 1
fi

echo "==> tracecheck (trace-event JSON validity)"
go run ./cmd/tracecheck "$tmpdir/seq.trace.json"

echo "==> nocserve cache smoke (race)"
# Start the server on an ephemeral port, fetch the same figure twice,
# and check three contracts: the two responses are byte-identical, the
# second was a cache hit (via /metricz), and the body matches what the
# CLI prints for the same tuple (`nocchar -json` stdout minus its
# three-line experiment header). Then SIGTERM must drain cleanly.
go build -race -o "$tmpdir/nocserve" ./cmd/nocserve
"$tmpdir/nocserve" -addr 127.0.0.1:0 2>"$tmpdir/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
for _ in $(seq 1 100); do
	grep -q "listening on" "$tmpdir/serve.log" && break
	sleep 0.1
done
port=$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "$tmpdir/serve.log")
if [ -z "$port" ]; then
	echo "nocserve did not report a listening address:" >&2
	cat "$tmpdir/serve.log" >&2
	exit 1
fi
base="http://127.0.0.1:$port"
curl -sf "$base/v1/v100/fig1?quick=1" >"$tmpdir/serve1.json"
curl -sf "$base/v1/v100/fig1?quick=1" >"$tmpdir/serve2.json"
if ! cmp -s "$tmpdir/serve1.json" "$tmpdir/serve2.json"; then
	echo "nocserve served different bytes for the same key" >&2
	exit 1
fi
if ! curl -sf "$base/metricz" | grep -q '"resultstore/hit": 1'; then
	echo "second nocserve fetch was not a cache hit" >&2
	curl -sf "$base/metricz" >&2 || true
	exit 1
fi
"$tmpdir/nocchar" -gpu v100 -exp fig1 -quick -json 2>/dev/null | tail -n +4 >"$tmpdir/cli.json"
if ! cmp -s "$tmpdir/serve1.json" "$tmpdir/cli.json"; then
	echo "nocserve response differs from nocchar -json output" >&2
	diff "$tmpdir/serve1.json" "$tmpdir/cli.json" | head -20 >&2
	exit 1
fi
kill -TERM "$serve_pid"
wait "$serve_pid" || true
if ! grep -q "drained" "$tmpdir/serve.log"; then
	echo "nocserve did not drain on SIGTERM:" >&2
	cat "$tmpdir/serve.log" >&2
	exit 1
fi

echo "==> nocserve deadline smoke (504 without wedging, abandoned fill caches)"
# A cold full-fidelity request under a 1ms request budget must 504, tick
# the timeout counter, and leave the server responsive; the abandoned
# fill keeps computing in the background, so polling the same tuple
# eventually answers 200 from the cache — inside the same 1ms budget,
# because hits never wait.
"$tmpdir/nocserve" -addr 127.0.0.1:0 -request-timeout 1ms 2>"$tmpdir/deadline.log" &
deadline_pid=$!
trap 'kill "$serve_pid" "$deadline_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
for _ in $(seq 1 100); do
	grep -q "listening on" "$tmpdir/deadline.log" && break
	sleep 0.1
done
dport=$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "$tmpdir/deadline.log")
if [ -z "$dport" ]; then
	echo "deadline nocserve did not report a listening address:" >&2
	cat "$tmpdir/deadline.log" >&2
	exit 1
fi
dbase="http://127.0.0.1:$dport"
code=$(curl -s -o /dev/null -w '%{http_code}' "$dbase/v1/v100/fig1")
if [ "$code" != "504" ]; then
	echo "cold full-fidelity request under -request-timeout 1ms returned $code, want 504" >&2
	exit 1
fi
if ! curl -sf "$dbase/metricz" | grep -q '"http/timed_out": 1'; then
	echo "the 504 did not tick http/timed_out on /metricz" >&2
	curl -sf "$dbase/metricz" >&2 || true
	exit 1
fi
if ! curl -sf "$dbase/healthz" >/dev/null; then
	echo "nocserve wedged after a timed-out request" >&2
	exit 1
fi
served=""
for _ in $(seq 1 240); do
	code=$(curl -s -o /dev/null -w '%{http_code}' "$dbase/v1/v100/fig1")
	if [ "$code" = "200" ]; then
		served=1
		break
	fi
	sleep 0.5
done
if [ -z "$served" ]; then
	echo "the abandoned fill never surfaced as a cache hit" >&2
	curl -sf "$dbase/metricz" >&2 || true
	exit 1
fi
kill -TERM "$deadline_pid"
wait "$deadline_pid" || true
if ! grep -q "drained" "$tmpdir/deadline.log"; then
	echo "deadline nocserve did not drain on SIGTERM:" >&2
	cat "$tmpdir/deadline.log" >&2
	exit 1
fi

echo "==> nocserve 3-node cluster smoke (single-hop forwarding, one simulation cluster-wide)"
# Three sharded nodes on adjacent ports; the same tuple fetched once
# through each node must return byte-identical bodies, simulate exactly
# once across the cluster (resultstore/miss sums to 1), and forward
# exactly twice (the two non-owner entries). Then SIGTERM all three and
# require a clean drain.
cport=$((20000 + $$ % 20000))
c1="http://127.0.0.1:$cport"
c2="http://127.0.0.1:$((cport + 1))"
c3="http://127.0.0.1:$((cport + 2))"
cpeers="$c1,$c2,$c3"
i=1
for u in "$c1" "$c2" "$c3"; do
	"$tmpdir/nocserve" -addr "${u#http://}" -peers "$cpeers" -self "$u" \
		2>"$tmpdir/cluster$i.log" &
	eval "cpid$i=\$!"
	i=$((i + 1))
done
trap 'kill "$serve_pid" "$deadline_pid" "$cpid1" "$cpid2" "$cpid3" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
for i in 1 2 3; do
	for _ in $(seq 1 100); do
		grep -q "listening on" "$tmpdir/cluster$i.log" && break
		sleep 0.1
	done
	if ! grep -q "listening on" "$tmpdir/cluster$i.log"; then
		echo "cluster node $i did not start:" >&2
		cat "$tmpdir/cluster$i.log" >&2
		exit 1
	fi
done
i=1
for u in "$c1" "$c2" "$c3"; do
	if ! curl -sf -D "$tmpdir/cluster$i.hdr" "$u/v1/v100/fig1?quick=1" >"$tmpdir/cluster$i.json"; then
		echo "cluster fetch via node $i failed" >&2
		exit 1
	fi
	if ! grep -qi '^X-Cache: \(miss\|hit\|coalesced\|spill\)' "$tmpdir/cluster$i.hdr"; then
		echo "cluster response via node $i lacks an X-Cache outcome:" >&2
		cat "$tmpdir/cluster$i.hdr" >&2
		exit 1
	fi
	i=$((i + 1))
done
if ! cmp -s "$tmpdir/cluster1.json" "$tmpdir/cluster2.json" || ! cmp -s "$tmpdir/cluster1.json" "$tmpdir/cluster3.json"; then
	echo "cluster nodes served different bytes for one key" >&2
	exit 1
fi
miss_total=0
fwd_total=0
for u in "$c1" "$c2" "$c3"; do
	m=$(curl -sf "$u/metricz" | sed -n 's/.*"resultstore\/miss": \([0-9]*\).*/\1/p')
	f=$(curl -sf "$u/metricz" | sed -n 's/.*"cluster\/forwarded": \([0-9]*\).*/\1/p')
	miss_total=$((miss_total + ${m:-0}))
	fwd_total=$((fwd_total + ${f:-0}))
done
if [ "$miss_total" != "1" ]; then
	echo "cluster simulated the key $miss_total times, want exactly 1 cluster-wide" >&2
	exit 1
fi
if [ "$fwd_total" != "2" ]; then
	echo "cluster forwarded $fwd_total requests for 3 fetches of one key, want 2" >&2
	exit 1
fi
kill -TERM "$cpid1" "$cpid2" "$cpid3"
wait "$cpid1" "$cpid2" "$cpid3" || true
for i in 1 2 3; do
	if ! grep -q "drained" "$tmpdir/cluster$i.log"; then
		echo "cluster node $i did not drain on SIGTERM:" >&2
		cat "$tmpdir/cluster$i.log" >&2
		exit 1
	fi
done

echo "==> all checks passed"
