#!/usr/bin/env sh
# ci.sh — the full verification gate, runnable locally or in CI.
# Mirrors .github/workflows/ci.yml exactly; keep the two in sync.
set -eu

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> noclint (determinism, unitsafety, orderedoutput, registry, errcheck)"
go run ./cmd/noclint ./...

echo "==> go test -race"
go test -race ./...

echo "==> all checks passed"
