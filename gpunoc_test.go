package gpunoc_test

import (
	"testing"

	"gpunoc"
)

func TestFacadeDeviceConstruction(t *testing.T) {
	for _, name := range []string{"v100", "a100", "h100"} {
		dev, err := gpunoc.NewDevice(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dev.Config().SMs() == 0 {
			t.Errorf("%s: empty device", name)
		}
	}
	if _, err := gpunoc.NewDevice("k80"); err == nil {
		t.Error("unknown generation should fail")
	}
	cfg := gpunoc.V100()
	if _, err := gpunoc.NewDeviceFromConfig(cfg); err != nil {
		t.Error(err)
	}
}

func TestFacadeMeasurementPath(t *testing.T) {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		t.Fatal(err)
	}
	lat, err := gpunoc.MeasureL2Latency(dev, 24, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Summary.Mean < 150 || lat.Summary.Mean > 300 {
		t.Errorf("latency %v implausible", lat.Summary.Mean)
	}
	prof, err := gpunoc.LatencyProfile(dev, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 32 {
		t.Errorf("profile length %d", len(prof))
	}
	hm, err := gpunoc.CorrelationHeatmap(dev, []int{0, 1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hm) != 3 || hm[0][0] != 1 {
		t.Error("heatmap malformed")
	}
}

func TestFacadeBandwidthPath(t *testing.T) {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := gpunoc.NewBandwidthEngine(dev)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := gpunoc.SliceBandwidth(eng, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bw < 20 || bw > 45 {
		t.Errorf("slice bandwidth %v implausible", bw)
	}
	fabric, err := gpunoc.AggregateFabricBandwidth(eng)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := gpunoc.MemoryBandwidth(eng)
	if err != nil {
		t.Fatal(err)
	}
	if fabric <= mem {
		t.Error("fabric should exceed memory bandwidth")
	}
}

func TestFacadeKernelAndClustering(t *testing.T) {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		t.Fatal(err)
	}
	m, err := gpunoc.NewMachine(dev, gpunoc.StaticScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Launch(1, 32, func(w *gpunoc.Warp) { w.LoadCG([]uint64{0x1000}) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("launch produced no cycles")
	}
	groups, err := gpunoc.ClusterSMsByLatency(dev, []int{0, 6, 4, 10}, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Errorf("clusters = %v, want 2 groups", groups)
	}
}

func TestFacadeMeshAndExperiments(t *testing.T) {
	cfg := gpunoc.FairnessConfig{
		Mesh:        gpunoc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: gpunoc.AgeBased},
		PacketFlits: 1, InjectRate: 0.2, Warmup: 200, Cycles: 1000, Seed: 1,
	}
	res, err := gpunoc.RunFairness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Throughput) == 0 {
		t.Error("no throughput measured")
	}

	if len(gpunoc.Experiments()) < 24 {
		t.Errorf("registry too small: %d", len(gpunoc.Experiments()))
	}
	e, err := gpunoc.LookupExperiment("fig4")
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := gpunoc.NewExperimentContext(gpunoc.V100(), true)
	if err != nil {
		t.Fatal(err)
	}
	arts, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) == 0 || arts[0].Render() == "" {
		t.Error("fig4 produced nothing")
	}

	_, walled, err := gpunoc.AnalyzeNetworkWall([]gpunoc.SimPoint{
		{Name: "x", NoCClockGHz: 1, ChannelBytes: 8, MPs: 4, MemBWGBs: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if walled != 1 {
		t.Error("32 GB/s interface against 500 GB/s memory should be walled")
	}
}

func TestFacadeExtensions(t *testing.T) {
	dev, err := gpunoc.NewDevice("v100")
	if err != nil {
		t.Fatal(err)
	}
	// Working-set sweep through the facade.
	pts, err := gpunoc.WorkingSetSweep(dev, 0, []int{1 << 20, 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].MeanCycles <= pts[0].MeanCycles {
		t.Error("over-capacity working set should be slower")
	}
	// Covert channel through the facade.
	eng, err := gpunoc.NewBandwidthEngine(dev)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := gpunoc.NewCovertChannel(eng, 2, []int{0, 6, 12, 18}, []int{1, 7, 13, 19})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Calibrate(); err != nil {
		t.Fatal(err)
	}
	got, err := ch.Transmit([]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] || !got[2] {
		t.Errorf("decoded %v, want [true false true]", got)
	}
	// Victim slice location.
	victim := []gpunoc.Flow{{SM: 0, Slices: []int{9}}, {SM: 6, Slices: []int{9}}, {SM: 12, Slices: []int{9}}, {SM: 18, Slices: []int{9}}}
	if s, err := gpunoc.LocateVictimSlice(eng, victim, []int{1, 7, 13, 19}); err != nil || s != 9 {
		t.Errorf("located slice %d (err %v), want 9", s, err)
	}
	// Crossbar fairness + load-latency sweeps.
	xcfg := gpunoc.XbarFairnessConfig{}
	_ = xcfg // construction compiles; full runs are covered in internal/noc
	ll := gpunoc.LoadLatencyConfig{
		Mesh:        gpunoc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: gpunoc.RoundRobin},
		PacketFlits: 1, Rates: []float64{0.05}, Cycles: 500, Warmup: 100, Seed: 1,
	}
	lps, err := gpunoc.RunLoadLatency(ll)
	if err != nil || len(lps) != 1 {
		t.Fatalf("load latency: %v %v", lps, err)
	}
	if lps[0].AvgLatency <= 0 {
		t.Error("load-latency point should have positive latency")
	}
}

func TestFacadeCustomDevice(t *testing.T) {
	dev, err := gpunoc.CustomDevice(gpunoc.CustomSpec{
		Name: "toy", GPCs: 4, TPCsPerGPC: 4, Partitions: 1,
		L2Slices: 16, MPs: 4, MemBWGBs: 800, L2FabricFactor: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Config().SMs() != 32 {
		t.Errorf("SMs = %d, want 32", dev.Config().SMs())
	}
	stages, err := gpunoc.BandwidthHierarchy(dev)
	if err != nil {
		t.Fatal(err)
	}
	ok, binding, err := gpunoc.MemoryBound(stages)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("derived toy design should be memory bound, bottleneck %s", binding.Name)
	}
	if _, err := gpunoc.CustomDevice(gpunoc.CustomSpec{}); err == nil {
		t.Error("empty spec should fail")
	}
}
