// Package simcheck is the correctness harness for the NoC simulators:
// a reusable invariant auditor for Mesh and Xbar runs, differential
// oracles that cross-check the simulators against closed-form answers
// and against each other, and a deterministic fuzzer (driven by
// cmd/nocfuzz) that hunts for conservation bugs across randomized
// configurations and traffic patterns.
//
// The invariant catalogue (every entry has a unit test that would
// catch its violation; see DESIGN.md "simcheck"):
//
//	conservation   injected flits = delivered flits + flits buffered in
//	               router FIFOs/VOQs + flits waiting in source queues,
//	               every cycle. A delivery the ledger never saw injected
//	               also lands here.
//	occupancy      every FIFO/VOQ holds between 0 and its capacity. This
//	               is the credit-balance check: the mesh's credits are
//	               implicit (a link may send iff the downstream FIFO has
//	               a free slot), so a leaked or duplicated credit
//	               manifests exactly as occupancy outside [0, cap].
//	duplication    no packet delivers more flits than it has, no tail
//	               arrives twice, and packet IDs are never reused.
//	framing        a packet's tail arrives with exactly its Flits-th
//	               flit — never early, never skipped.
//	wormhole       flits of two packets never interleave at one
//	               ejection port mid-packet.
//	latency-bound  a packet's tail latency is at least its Manhattan
//	               hop count plus its flit count (the zero-load floor).
//	monotone-id    packet IDs strictly increase in injection order.
//	drained-ledger Drained() and "the ledger has no in-flight flits"
//	               agree, in both directions.
//	aggregate      the simulator's own AcceptedPackets/AcceptedFlits
//	               counters match the ledger's delivered totals.
//
// The auditors observe through read-only taps (Mesh.VisitFIFOs,
// Xbar.VisitVOQs, the Sink interface) and never perturb simulation
// state, so an audited run takes the exact same decisions as an
// unaudited one. The one deliberate exception is Sabotage, which
// plants a bookkeeping error on purpose so CI can prove the harness
// still detects violations (cmd/nocfuzz -break-invariant).
package simcheck

import "fmt"

// Violation is one detected invariant breach.
type Violation struct {
	// Invariant names the catalogue entry (see the package comment).
	Invariant string
	// Cycle is the simulator cycle the breach was detected on (-1 for
	// end-of-run reconciliation findings with no single cycle).
	Cycle int64
	// Detail is a human-readable account of the breach.
	Detail string
}

// String renders the violation for reports and reproducer output.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] cycle %d: %s", v.Invariant, v.Cycle, v.Detail)
}

// maxViolations caps how many violations one auditor accumulates. A
// single broken invariant (say, conservation) re-fires every cycle of
// a long drain; the cap keeps reports readable and shrinking fast. The
// suppressed count is reported by Summary.
const maxViolations = 100

// violationLog is the shared accumulator embedded by the auditors.
type violationLog struct {
	violations []Violation
	suppressed int
}

// violatef records one violation, honouring the cap.
func (l *violationLog) violatef(invariant string, cycle int64, format string, args ...any) {
	if len(l.violations) >= maxViolations {
		l.suppressed++
		return
	}
	l.violations = append(l.violations, Violation{
		Invariant: invariant,
		Cycle:     cycle,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Violations returns the breaches recorded so far, in detection order.
func (l *violationLog) Violations() []Violation { return l.violations }

// Ok reports whether no invariant was breached.
func (l *violationLog) Ok() bool { return len(l.violations) == 0 && l.suppressed == 0 }
