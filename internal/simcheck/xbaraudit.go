package simcheck

import "gpunoc/internal/noc"

// XbarAuditor checks the invariant catalogue over one Xbar run. The
// crossbar has no sink hook (ports drain VOQs directly into its
// aggregate counters), so the audit works at counter granularity:
// per-cycle VOQ occupancy bounds and flit conservation, plus
// end-of-run per-source packet reconciliation. Build it on a freshly
// constructed Xbar and route all injections through RecordInject.
type XbarAuditor struct {
	violationLog
	x   *noc.Xbar
	led ledger

	// perSrcPkts counts packets the ledger injected per source node,
	// reconciled against Xbar.AcceptedPackets once drained.
	perSrcPkts []int64

	lastID             uint64
	conservationBroken bool
	finalized          bool
}

// NewXbarAuditor builds an auditor over a freshly constructed Xbar.
func NewXbarAuditor(x *noc.Xbar) *XbarAuditor {
	return &XbarAuditor{x: x, led: newLedger(), perSrcPkts: make([]int64, x.Nodes())}
}

// RecordInject opens the ledger entry for a packet returned by
// Xbar.Inject. Call it immediately after every successful Inject.
func (a *XbarAuditor) RecordInject(p *noc.Packet) {
	if p.ID <= a.lastID {
		a.violatef("monotone-id", a.x.Cycle(),
			"packet ID %d injected after ID %d; IDs must strictly increase", p.ID, a.lastID)
	} else {
		a.lastID = p.ID
	}
	// The crossbar is single-hop: its zero-load floor is just the flit
	// count (unused here — no per-packet delivery tap — but recorded so
	// the ledger stays uniform).
	if !a.led.record(p, int64(p.Flits)) {
		a.violatef("duplication", a.x.Cycle(), "packet ID %d reused; ledger already has it", p.ID)
	}
	a.perSrcPkts[p.Src]++
}

// CheckCycle runs the per-cycle structural checks: VOQ occupancy
// within depth and flit conservation across source queues, VOQs, and
// the port drain counters. Call it after each Xbar.Step.
func (a *XbarAuditor) CheckCycle() {
	cycle := a.x.Cycle()
	queued := int64(0)
	a.x.VisitVOQs(func(cluster, port, occ, depth int) {
		a.checkVOQBound(cycle, cluster, port, occ, depth)
		queued += int64(occ)
	})
	pending := int64(0)
	for node := 0; node < a.x.Nodes(); node++ {
		pending += int64(a.x.PendingInjection(node))
	}
	drainedFlits := int64(0)
	for _, v := range a.x.AcceptedFlits {
		drainedFlits += v
	}
	if got := drainedFlits + queued + pending; got != a.led.injectedFlits && !a.conservationBroken {
		a.conservationBroken = true
		a.violatef("conservation", cycle,
			"injected %d flits but drained(%d) + queued(%d) + pending(%d) = %d",
			a.led.injectedFlits, drainedFlits, queued, pending, got)
	}
}

// checkVOQBound is the occupancy invariant for one virtual output
// queue: between 0 and its depth bound, always.
func (a *XbarAuditor) checkVOQBound(cycle int64, cluster, port, occ, depth int) {
	if occ < 0 || occ > depth {
		a.violatef("occupancy", cycle,
			"cluster %d port %d VOQ holds %d flits, depth %d", cluster, port, occ, depth)
	}
}

// CheckFinal reconciles the run: Drained() against the conservation
// balance, and per-source delivered packets against the ledger.
func (a *XbarAuditor) CheckFinal() {
	if a.finalized {
		return
	}
	a.finalized = true
	drainedFlits := int64(0)
	for _, v := range a.x.AcceptedFlits {
		drainedFlits += v
	}
	drained := a.x.Drained()
	balanced := drainedFlits == a.led.injectedFlits
	if drained && !balanced {
		a.violatef("drained-ledger", a.x.Cycle(),
			"Drained() is true but ports drained %d of %d injected flits", drainedFlits, a.led.injectedFlits)
	}
	if !drained && balanced {
		a.violatef("drained-ledger", a.x.Cycle(),
			"every injected flit drained but Drained() is false; the crossbar holds flits the ledger never saw")
	}
	if drained {
		for node := 0; node < a.x.Nodes(); node++ {
			if a.x.AcceptedPackets[node] != a.perSrcPkts[node] {
				a.violatef("aggregate", a.x.Cycle(),
					"node %d delivered %d packets but the ledger injected %d",
					node, a.x.AcceptedPackets[node], a.perSrcPkts[node])
			}
		}
	}
}

// Summary renders violation counts grouped by invariant.
func (a *XbarAuditor) Summary() string { return summarize(a.violations, a.suppressed) }
