package simcheck

import (
	"fmt"
	"sort"
	"strings"

	"gpunoc/internal/noc"
)

// Anomaly kinds noted on the delivery hot path. Each kind keeps a
// count and the first occurrence's facts; CheckFinal turns them into
// Violations off the hot path (building a Violation formats a string,
// which must not happen inside Accept — any method named Accept is
// reachable from Mesh.Step through the Sink interface, so the noclint
// hotpathalloc analyzer holds it to the same zero-allocation standard
// as the simulator's own per-cycle code).
const (
	anomUnknownPacket = iota // delivered but never recorded as injected
	anomWrongDestination
	anomOverDelivery
	anomDuplicateTail
	anomEarlyTail
	anomLateTail
	anomInterleave
	anomLatencyBound
	anomalyKinds
)

// anomalyInvariant maps an anomaly kind to its catalogue name.
var anomalyInvariant = [anomalyKinds]string{
	anomUnknownPacket:    "conservation",
	anomWrongDestination: "routing",
	anomOverDelivery:     "duplication",
	anomDuplicateTail:    "duplication",
	anomEarlyTail:        "framing",
	anomLateTail:         "framing",
	anomInterleave:       "wormhole",
	anomLatencyBound:     "latency-bound",
}

// anomalyWhat describes each kind for the materialized Violation.
var anomalyWhat = [anomalyKinds]string{
	anomUnknownPacket:    "sink accepted a packet the ledger never saw injected",
	anomWrongDestination: "packet ejected at a node other than its destination",
	anomOverDelivery:     "packet delivered more flits than it has",
	anomDuplicateTail:    "packet tail delivered twice",
	anomEarlyTail:        "tail flag arrived before the packet's flit count",
	anomLateTail:         "flit count reached without a tail flag",
	anomInterleave:       "two packets' flits interleaved at one ejection port",
	anomLatencyBound:     "tail latency below the Manhattan zero-load floor",
}

// anomalyRecord is the first occurrence of one anomaly kind: plain
// scalars only, so noting it allocates nothing.
type anomalyRecord struct {
	pktID     uint64
	node      int
	cycle     int64
	got, want int64
}

// Sabotage modes deliberately corrupt the auditor's own bookkeeping so
// a run provably trips the harness (cmd/nocfuzz -break-invariant; the
// simulator itself is never touched).
const (
	// SabotageNone audits honestly.
	SabotageNone = ""
	// SabotageDoubleTail books every tail flit twice: duplication,
	// framing, conservation, and aggregate all fire.
	SabotageDoubleTail = "double-tail"
	// SabotageDropRecord skips the ledger entry for every third
	// injection: the sinks then deliver packets the ledger never saw.
	SabotageDropRecord = "drop-record"
)

// MeshAuditor checks the invariant catalogue over one Mesh run. Build
// it with NewMeshAuditor on a freshly constructed mesh (the ledger
// must see every injection from cycle zero), route all injections
// through RecordInject, call CheckCycle after each Step, and
// CheckFinal once the run ends.
type MeshAuditor struct {
	violationLog
	m   *noc.Mesh
	led ledger

	// open[node] is the packet currently mid-ejection at a node's
	// local port (wormhole framing), or 0.
	open []uint64
	// lastID enforces monotone packet IDs at RecordInject.
	lastID uint64

	anomCount [anomalyKinds]int64
	anomFirst [anomalyKinds]anomalyRecord

	sabotage   string
	recordSkip int

	// conservation failures latch so the per-cycle check reports the
	// first breach instead of one violation per remaining cycle.
	conservationBroken bool
	finalized          bool
}

// NewMeshAuditor wraps every node's sink with an auditing wrapper that
// accepts all traffic. Use WrapSink to put a custom sink (e.g. a
// back-pressure model) behind the audit tap at selected nodes.
func NewMeshAuditor(m *noc.Mesh) *MeshAuditor {
	a := &MeshAuditor{m: m, led: newLedger(), open: make([]uint64, m.Nodes())}
	for node := 0; node < m.Nodes(); node++ {
		m.SetSink(node, &auditSink{a: a, node: node})
	}
	return a
}

// WrapSink installs inner behind the audit tap at node: the inner sink
// decides acceptance, the auditor books what was accepted.
func (a *MeshAuditor) WrapSink(node int, inner noc.Sink) {
	a.m.SetSink(node, &auditSink{a: a, node: node, inner: inner})
}

// SetSabotage arms a deliberate bookkeeping corruption (see the
// Sabotage constants). Unknown modes are rejected.
func (a *MeshAuditor) SetSabotage(mode string) error {
	switch mode {
	case SabotageNone, SabotageDoubleTail, SabotageDropRecord:
		a.sabotage = mode
		return nil
	}
	return fmt.Errorf("simcheck: unknown sabotage mode %q", mode)
}

// RecordInject opens the ledger entry for a packet returned by
// Mesh.Inject. Call it immediately after every successful Inject.
func (a *MeshAuditor) RecordInject(p *noc.Packet) {
	if p.ID <= a.lastID {
		a.violatef("monotone-id", a.m.Cycle(),
			"packet ID %d injected after ID %d; IDs must strictly increase", p.ID, a.lastID)
	} else {
		a.lastID = p.ID
	}
	if a.sabotage == SabotageDropRecord {
		a.recordSkip++
		if a.recordSkip%3 == 0 {
			return
		}
	}
	if !a.led.record(p, a.minLatency(p)) {
		a.violatef("duplication", a.m.Cycle(), "packet ID %d reused; ledger already has it", p.ID)
	}
}

// minLatency is the zero-load floor: with XY routing a packet crosses
// exactly its Manhattan hop count of links, spends one cycle entering
// the network, and ejects one flit per cycle, so the tail cannot
// arrive before CreatedAt + hops + Flits.
func (a *MeshAuditor) minLatency(p *noc.Packet) int64 {
	w := a.m.Config().Width
	sx, sy := p.Src%w, p.Src/w
	dx, dy := p.Dst%w, p.Dst/w
	hops := abs(sx-dx) + abs(sy-dy)
	return int64(hops + p.Flits)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// auditSink is the per-node Sink wrapper. Its Accept runs inside
// Mesh.Step's arbitration loop, so it is interface-dispatch
// hot-reachable: everything it does must be allocation-free (counter
// bumps, map reads, scalar field writes). Violations are materialized
// later, off the hot path.
type auditSink struct {
	a     *MeshAuditor
	node  int
	inner noc.Sink
}

// Accept defers to the inner sink's admission decision, then books the
// delivery when (and only when) it was accepted. A refused flit stays
// in the router, so the ledger must not move.
func (s *auditSink) Accept(p *noc.Packet, lastFlit bool, cycle int64) bool {
	if s.inner != nil && !s.inner.Accept(p, lastFlit, cycle) {
		return false
	}
	s.a.noteDelivery(s.node, p, lastFlit, cycle)
	if lastFlit && s.a.sabotage == SabotageDoubleTail {
		s.a.noteDelivery(s.node, p, lastFlit, cycle)
	}
	return true
}

// noteDelivery books one accepted flit. Hot-reachable via Accept: no
// allocation, no map iteration, no formatting.
func (a *MeshAuditor) noteDelivery(node int, p *noc.Packet, lastFlit bool, cycle int64) {
	e := a.led.lookup(p.ID)
	if e == nil {
		a.noteAnomaly(anomUnknownPacket, p.ID, node, cycle, 0, 0)
		a.led.deliveredFlits++ // keep the balance honest about what sinks saw
		if lastFlit {
			a.led.deliveredPkts++
		}
		return
	}
	if node != e.dst {
		a.noteAnomaly(anomWrongDestination, p.ID, node, cycle, int64(node), int64(e.dst))
	}
	if a.open[node] != 0 && a.open[node] != p.ID {
		a.noteAnomaly(anomInterleave, p.ID, node, cycle, int64(a.open[node]), int64(p.ID))
	}
	a.open[node] = p.ID
	e.delivered++
	a.led.deliveredFlits++
	if e.delivered > e.flits {
		a.noteAnomaly(anomOverDelivery, p.ID, node, cycle, int64(e.delivered), int64(e.flits))
	}
	if lastFlit {
		if e.doneAt >= 0 {
			a.noteAnomaly(anomDuplicateTail, p.ID, node, cycle, e.doneAt, cycle)
		}
		if e.delivered != e.flits {
			a.noteAnomaly(anomEarlyTail, p.ID, node, cycle, int64(e.delivered), int64(e.flits))
		}
		if lat := cycle - e.createdAt; lat < e.minLat {
			a.noteAnomaly(anomLatencyBound, p.ID, node, cycle, lat, e.minLat)
		}
		e.doneAt = cycle
		a.led.deliveredPkts++
		a.open[node] = 0
	} else if e.delivered >= e.flits {
		a.noteAnomaly(anomLateTail, p.ID, node, cycle, int64(e.delivered), int64(e.flits))
	}
}

// noteAnomaly bumps a kind's count and latches its first occurrence.
// Hot-reachable; scalar writes only.
func (a *MeshAuditor) noteAnomaly(kind int, pktID uint64, node int, cycle, got, want int64) {
	if a.anomCount[kind] == 0 {
		a.anomFirst[kind] = anomalyRecord{pktID: pktID, node: node, cycle: cycle, got: got, want: want}
	}
	a.anomCount[kind]++
}

// CheckCycle runs the per-cycle structural checks: FIFO occupancy
// within capacity (the credit-balance invariant) and flit
// conservation. Call it after each Mesh.Step; it reads the mesh
// through its audit taps and never mutates simulation state.
func (a *MeshAuditor) CheckCycle() {
	cycle := a.m.Cycle()
	buffered := int64(0)
	a.m.VisitFIFOs(func(node, port, occ, capacity int) {
		a.checkFIFOBound(cycle, node, port, occ, capacity)
		buffered += int64(occ)
	})
	pending := int64(0)
	for node := 0; node < a.m.Nodes(); node++ {
		pending += int64(a.m.PendingInjection(node))
	}
	if got := a.led.deliveredFlits + buffered + pending; got != a.led.injectedFlits && !a.conservationBroken {
		a.conservationBroken = true
		a.violatef("conservation", cycle,
			"injected %d flits but delivered(%d) + buffered(%d) + pending(%d) = %d",
			a.led.injectedFlits, a.led.deliveredFlits, buffered, pending, got)
	}
}

// checkFIFOBound is the occupancy (credit-balance) invariant for one
// FIFO: between 0 and capacity, always.
func (a *MeshAuditor) checkFIFOBound(cycle int64, node, port, occ, capacity int) {
	if occ < 0 || occ > capacity {
		a.violatef("occupancy", cycle,
			"node %d port %d holds %d flits, capacity %d", node, port, occ, capacity)
	}
}

// CheckFinal reconciles the run: materializes hot-path anomalies,
// checks Drained() against the ledger in both directions, and checks
// the mesh's own aggregate counters against the ledger's totals.
func (a *MeshAuditor) CheckFinal() {
	if a.finalized {
		return
	}
	a.finalized = true
	for kind := 0; kind < anomalyKinds; kind++ {
		if a.anomCount[kind] == 0 {
			continue
		}
		f := a.anomFirst[kind]
		a.violatef(anomalyInvariant[kind], f.cycle,
			"%s (packet %d at node %d, got %d want %d; %d occurrence(s))",
			anomalyWhat[kind], f.pktID, f.node, f.got, f.want, a.anomCount[kind])
	}
	drained := a.m.Drained()
	ledgerEmpty := a.led.inFlightFlits() == 0
	if drained && !ledgerEmpty {
		open, first := a.led.openEntries()
		detail := fmt.Sprintf("Drained() is true but the ledger holds %d in-flight flits across %d packets",
			a.led.inFlightFlits(), open)
		if first != nil {
			detail += fmt.Sprintf(" (first: packet %d %d->%d, %d/%d flits delivered)",
				first.id, first.src, first.dst, first.delivered, first.flits)
		}
		a.violatef("drained-ledger", a.m.Cycle(), "%s", detail)
	}
	if !drained && ledgerEmpty {
		a.violatef("drained-ledger", a.m.Cycle(),
			"ledger balances to zero in-flight flits but Drained() is false; the network holds flits the ledger never saw")
	}
	var accFlits, accPkts int64
	for _, v := range a.m.AcceptedFlits {
		accFlits += v
	}
	for _, v := range a.m.AcceptedPackets {
		accPkts += v
	}
	if accFlits != a.led.deliveredFlits {
		a.violatef("aggregate", a.m.Cycle(),
			"mesh AcceptedFlits total %d but the ledger booked %d delivered flits", accFlits, a.led.deliveredFlits)
	}
	if accPkts != a.led.deliveredPkts {
		a.violatef("aggregate", a.m.Cycle(),
			"mesh AcceptedPackets total %d but the ledger booked %d delivered packets", accPkts, a.led.deliveredPkts)
	}
}

// PacketLatency returns a completed packet's tail latency in cycles,
// or false if the packet is unknown or still in flight. The zero-load
// oracle uses it to check exact (not just bounded) latency.
func (a *MeshAuditor) PacketLatency(id uint64) (int64, bool) {
	e := a.led.lookup(id)
	if e == nil || e.doneAt < 0 {
		return 0, false
	}
	return e.doneAt - e.createdAt, true
}

// InFlightFlits exposes the conservation balance for tests.
func (a *MeshAuditor) InFlightFlits() int64 { return a.led.inFlightFlits() }

// Summary renders violation counts grouped by invariant, in sorted
// order (the collect-then-sort idiom the determinism analyzer
// sanctions for map walks in this package).
func (a *MeshAuditor) Summary() string {
	return summarize(a.violations, a.suppressed)
}

// summarize is the shared Summary implementation.
func summarize(violations []Violation, suppressed int) string {
	if len(violations) == 0 && suppressed == 0 {
		return "all invariants hold"
	}
	counts := map[string]int{}
	for _, v := range violations {
		counts[v.Invariant]++
	}
	var names []string
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s: %d\n", name, counts[name])
	}
	if suppressed > 0 {
		fmt.Fprintf(&b, "(%d further violations suppressed)\n", suppressed)
	}
	return b.String()
}
