package simcheck

import (
	"strings"
	"testing"

	"gpunoc/internal/noc"
)

// Every invariant in the catalogue gets a test that would catch its
// violation: each test drives the auditor into the broken state the
// invariant guards against (via sabotage hooks, fabricated deliveries,
// or direct counter tampering) and asserts the violation is reported.
// If someone deletes or inverts a check, the matching test here fails.

func hasInvariant(vs []Violation, name string) bool {
	for _, v := range vs {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

func smallMesh(t *testing.T, cfg noc.MeshConfig) *noc.Mesh {
	t.Helper()
	m, err := noc.NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runAudited drives a mesh until drained under audit, without the
// final reconciliation (tests tamper before calling CheckFinal).
func runAudited(t *testing.T, m *noc.Mesh, a *MeshAuditor, inject func()) {
	t.Helper()
	inject()
	for guard := 0; !m.Drained(); guard++ {
		if guard > 100000 {
			t.Fatal("mesh failed to drain")
		}
		m.Step()
		a.CheckCycle()
	}
}

// A real traffic mix over every pattern the auditor checks must run
// violation-free: the harness cannot cry wolf.
func TestCleanRunHasNoViolations(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 3, Height: 3, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	runAudited(t, m, a, func() {
		for src := 0; src < m.Nodes(); src++ {
			for dst := 0; dst < m.Nodes(); dst++ {
				p, err := m.Inject(src, dst, 1+(src+dst)%3, nil)
				if err != nil {
					t.Fatal(err)
				}
				a.RecordInject(p)
			}
		}
	})
	a.CheckFinal()
	if !a.Ok() {
		t.Fatalf("clean run reported violations:\n%s", a.Summary())
	}
	if got := a.Summary(); got != "all invariants hold" {
		t.Fatalf("Summary() = %q", got)
	}
}

// conservation: double-booking tails inflates delivered beyond
// injected; the per-cycle balance must notice.
func TestConservationViolationDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	if err := a.SetSabotage(SabotageDoubleTail); err != nil {
		t.Fatal(err)
	}
	runAudited(t, m, a, func() {
		p, err := m.Inject(0, 3, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		a.RecordInject(p)
	})
	a.CheckFinal()
	for _, inv := range []string{"conservation", "duplication", "aggregate"} {
		if !hasInvariant(a.Violations(), inv) {
			t.Errorf("double-tail sabotage did not trip %q; got:\n%s", inv, a.Summary())
		}
	}
}

// conservation (the other direction): deliveries the ledger never saw
// injected are flagged as unknown packets.
func TestUnrecordedDeliveryDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	if err := a.SetSabotage(SabotageDropRecord); err != nil {
		t.Fatal(err)
	}
	runAudited(t, m, a, func() {
		for i := 0; i < 6; i++ {
			p, err := m.Inject(i%4, (i+1)%4, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			a.RecordInject(p)
		}
	})
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "conservation") {
		t.Errorf("dropped ledger records did not trip conservation; got:\n%s", a.Summary())
	}
}

// occupancy: a FIFO reading outside [0, capacity] is a credit-balance
// breach (a leaked credit lets the upstream overfill the buffer).
func TestOccupancyViolationDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 1, BufferFlits: 4, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	a.checkFIFOBound(0, 1, 2, 5, 4)  // one flit over capacity
	a.checkFIFOBound(0, 0, 0, -1, 4) // negative: double-returned credit
	if got := len(a.Violations()); got != 2 || !hasInvariant(a.Violations(), "occupancy") {
		t.Fatalf("out-of-range occupancies produced %d violations:\n%s", got, a.Summary())
	}
	a.checkFIFOBound(0, 0, 0, 4, 4) // at capacity is legal
	if len(a.Violations()) != 2 {
		t.Fatal("full-but-legal FIFO flagged as occupancy violation")
	}
}

// routing: a flit ejected anywhere but its destination.
func TestWrongDestinationDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	p := &noc.Packet{ID: 1, Src: 0, Dst: 3, Flits: 1, CreatedAt: 0}
	a.RecordInject(p)
	a.noteDelivery(2, p, true, 5) // ejects at node 2, not 3
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "routing") {
		t.Fatalf("misrouted delivery not flagged:\n%s", a.Summary())
	}
}

// duplication: the same tail booked twice.
func TestDuplicateTailDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	p := &noc.Packet{ID: 1, Src: 0, Dst: 1, Flits: 1, CreatedAt: 0}
	a.RecordInject(p)
	a.noteDelivery(1, p, true, 2)
	a.noteDelivery(1, p, true, 3)
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "duplication") {
		t.Fatalf("duplicate tail not flagged:\n%s", a.Summary())
	}
}

// duplication: a reused packet ID is rejected at the ledger.
func TestReusedPacketIDDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	a.RecordInject(&noc.Packet{ID: 7, Src: 0, Dst: 1, Flits: 1})
	a.RecordInject(&noc.Packet{ID: 7, Src: 2, Dst: 3, Flits: 1})
	if !hasInvariant(a.Violations(), "duplication") {
		t.Fatalf("reused packet ID not flagged:\n%s", a.Summary())
	}
}

// framing: a tail flag before the packet's flit count, and a flit
// count reached without a tail flag.
func TestFramingViolationsDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	early := &noc.Packet{ID: 1, Src: 0, Dst: 1, Flits: 3, CreatedAt: 0}
	a.RecordInject(early)
	a.noteDelivery(1, early, true, 4) // tail after only 1 of 3 flits
	late := &noc.Packet{ID: 2, Src: 0, Dst: 2, Flits: 1, CreatedAt: 0}
	a.RecordInject(late)
	a.noteDelivery(2, late, false, 4) // 1st of 1 flits without tail
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "framing") {
		t.Fatalf("framing breaches not flagged:\n%s", a.Summary())
	}
}

// wormhole: two packets' flits interleaving at one ejection port.
func TestWormholeInterleaveDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	pa := &noc.Packet{ID: 1, Src: 0, Dst: 3, Flits: 2, CreatedAt: 0}
	pb := &noc.Packet{ID: 2, Src: 1, Dst: 3, Flits: 2, CreatedAt: 0}
	a.RecordInject(pa)
	a.RecordInject(pb)
	a.noteDelivery(3, pa, false, 4)
	a.noteDelivery(3, pb, false, 5) // pb cuts in before pa's tail
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "wormhole") {
		t.Fatalf("interleaved wormholes not flagged:\n%s", a.Summary())
	}
}

// latency-bound: a tail arriving before Manhattan hops + flits cycles
// is physically impossible in this mesh.
func TestLatencyBoundViolationDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 3, Height: 3, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	p := &noc.Packet{ID: 1, Src: 0, Dst: 8, Flits: 2, CreatedAt: 10}
	a.RecordInject(p)
	a.noteDelivery(8, p, false, 12)
	a.noteDelivery(8, p, true, 13) // lat 3 < hops(4) + flits(2)
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "latency-bound") {
		t.Fatalf("sub-physical latency not flagged:\n%s", a.Summary())
	}
}

// monotone-id: packet IDs must strictly increase in injection order.
func TestMonotoneIDViolationDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	a.RecordInject(&noc.Packet{ID: 5, Src: 0, Dst: 1, Flits: 1})
	a.RecordInject(&noc.Packet{ID: 3, Src: 1, Dst: 2, Flits: 1})
	if !hasInvariant(a.Violations(), "monotone-id") {
		t.Fatalf("non-monotone IDs not flagged:\n%s", a.Summary())
	}
}

// drained-ledger, direction 1: Drained() true while the ledger still
// holds an in-flight packet.
func TestDrainedButLedgerOpenDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	// Ledgered but never actually injected into the mesh: the mesh
	// drains trivially while the ledger waits forever.
	a.RecordInject(&noc.Packet{ID: 1, Src: 0, Dst: 1, Flits: 2, CreatedAt: 0})
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "drained-ledger") {
		t.Fatalf("drained-with-open-ledger not flagged:\n%s", a.Summary())
	}
}

// drained-ledger, direction 2: the ledger balances while the mesh
// still holds flits it never saw.
func TestLedgerEmptyButNotDrainedDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	if _, err := m.Inject(0, 3, 2, nil); err != nil { // injected behind the ledger's back
		t.Fatal(err)
	}
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "drained-ledger") {
		t.Fatalf("undrained-with-empty-ledger not flagged:\n%s", a.Summary())
	}
}

// aggregate: the mesh's own counters must reconcile with the ledger.
func TestAggregateMismatchDetected(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	runAudited(t, m, a, func() {
		p, err := m.Inject(0, 3, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		a.RecordInject(p)
	})
	m.AcceptedFlits[3]++ // tamper: the counter now over-reports
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "aggregate") {
		t.Fatalf("tampered AcceptedFlits not flagged:\n%s", a.Summary())
	}
}

// The violation cap must suppress, not grow without bound, and the
// summary must say so.
func TestViolationCapSuppresses(t *testing.T) {
	m := smallMesh(t, noc.MeshConfig{Width: 2, Height: 1, BufferFlits: 2, Arbiter: noc.RoundRobin})
	a := NewMeshAuditor(m)
	for i := 0; i < maxViolations+10; i++ {
		a.checkFIFOBound(int64(i), 0, 0, 99, 2)
	}
	if len(a.Violations()) != maxViolations {
		t.Fatalf("cap leaked: %d violations recorded", len(a.Violations()))
	}
	if !strings.Contains(a.Summary(), "suppressed") {
		t.Fatalf("summary hides suppression:\n%s", a.Summary())
	}
	if a.Ok() {
		t.Fatal("Ok() true with suppressed violations")
	}
}

// Satellite check: Drained() must account for both the source queues
// and partially-ejected multi-flit packets. This pins the adversarial
// shape the fuzzer hammered (multi-flit hotspot traffic under heavy
// sink refusal on a minimal-buffer mesh) as a regression test of the
// Drained <=> ledger-empty oracle; the sweep found no violation, and
// this documents that the invariant holds.
func TestDrainedLedgerOracleUnderRefusalRegression(t *testing.T) {
	c := Case{
		Seed: 97, Kind: "mesh",
		Mesh:        noc.MeshConfig{Width: 2, Height: 2, BufferFlits: 1, Arbiter: noc.RoundRobin},
		RefusePct:   60,
		DrainCycles: 20000,
	}
	// Every node fires 3-flit packets at node 3 back-to-back, so the
	// run ends with long injection backlogs and wormholes parked
	// mid-ejection whenever the sink refuses.
	for i := 0; i < 24; i++ {
		c.Injections = append(c.Injections, Injection{Cycle: i / 4, Src: i % 4, Dst: 3, Flits: 3})
	}
	rep, err := RunCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Fatal("regression case failed to drain")
	}
	if !rep.Ok() {
		t.Fatalf("Drained/ledger oracle violated:\n%v", rep.Violations)
	}
}
