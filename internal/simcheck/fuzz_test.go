package simcheck

import (
	"reflect"
	"strings"
	"testing"
)

// Case generation is a pure function of the seed: the reproducer
// contract depends on it.
func TestGenCaseDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := GenCase(seed), GenCase(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d generated two different cases", seed)
		}
		if a.Kind != "mesh" && a.Kind != "xbar" {
			t.Fatalf("seed %d generated kind %q", seed, a.Kind)
		}
		for i := 1; i < len(a.Injections); i++ {
			if a.Injections[i].Cycle < a.Injections[i-1].Cycle {
				t.Fatalf("seed %d schedule not sorted by cycle", seed)
			}
		}
	}
}

// A slice of the CI sweep runs inside the unit suite so `go test`
// alone exercises the fuzz path.
func TestFuzzSweepSmoke(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rep, err := RunCase(GenCase(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d violated invariants:\n%v", seed, rep.Violations)
		}
		if !rep.Drained {
			t.Fatalf("seed %d failed to drain", seed)
		}
	}
}

// Both sabotage modes must be caught — this is what -break-invariant
// stakes CI on.
func TestSabotageModesDetected(t *testing.T) {
	base := GenCase(1)
	for base.Kind != "mesh" {
		base = GenCase(base.Seed + 1)
	}
	for _, mode := range []string{SabotageDoubleTail, SabotageDropRecord} {
		c := base
		c.Sabotage = mode
		rep, err := RunCase(c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ok() {
			t.Errorf("sabotage %q went undetected", mode)
		}
	}
	if err := (&MeshAuditor{}).SetSabotage("nonsense"); err == nil {
		t.Error("unknown sabotage mode accepted")
	}
}

// Shrinking must preserve the failure while reducing the schedule,
// and never invent a failure on a passing case.
func TestShrinkMinimizesFailingCase(t *testing.T) {
	c := GenCase(2)
	for c.Kind != "mesh" || len(c.Injections) < 40 {
		c = GenCase(c.Seed + 1)
	}
	c.Sabotage = SabotageDoubleTail
	shrunk := Shrink(c)
	if len(shrunk.Injections) >= len(c.Injections) {
		t.Fatalf("shrink did not reduce: %d -> %d injections", len(c.Injections), len(shrunk.Injections))
	}
	rep, err := RunCase(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("shrunk case no longer fails")
	}

	clean := GenCase(1)
	if got := Shrink(clean); !reflect.DeepEqual(got, clean) {
		t.Fatal("shrink modified a passing case")
	}
}

// The reproducer must be a recognizable, complete snippet for the
// exact case.
func TestReproducerRendersCase(t *testing.T) {
	c := GenCase(3)
	for c.Kind != "mesh" {
		c = GenCase(c.Seed + 1)
	}
	c.RefusePct = 17
	src := Reproducer(c)
	for _, want := range []string{
		"simcheck.Case{", "noc.MeshConfig{", "RefusePct: 17",
		"simcheck.RunCase(c)", "Injections: []simcheck.Injection{",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("reproducer missing %q:\n%s", want, src)
		}
	}
	x := GenCase(1)
	for x.Kind != "xbar" {
		x = GenCase(x.Seed + 1)
	}
	if !strings.Contains(Reproducer(x), "noc.XbarConfig{") {
		t.Error("xbar reproducer missing its config")
	}
}

func TestRunCaseRejectsMalformedCases(t *testing.T) {
	if _, err := RunCase(Case{Kind: "ring"}); err == nil {
		t.Error("unknown kind accepted")
	}
	x := GenCase(1)
	for x.Kind != "xbar" {
		x = GenCase(x.Seed + 1)
	}
	x.Sabotage = SabotageDoubleTail
	if _, err := RunCase(x); err == nil {
		t.Error("xbar sabotage accepted despite having no delivery tap")
	}
}
