package simcheck

import (
	"testing"

	"gpunoc/internal/noc"
)

func gpuCfg() noc.GPUSimConfig {
	return noc.GPUSimConfig{
		Mesh:             noc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: noc.RoundRobin},
		ReplyFlits:       2,
		MCServiceCycles:  2,
		MCQueue:          4,
		WindowPerCompute: 4,
		Cycles:           1000,
		Warmup:           100,
		UtilWindow:       100,
		Seed:             7,
	}
}

// The real simulator must clear its own audit: deterministic across
// runs and inside the physical envelope.
func TestCheckGPUSimClean(t *testing.T) {
	v, err := CheckGPUSim(gpuCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("audit of a healthy run reported violations: %v", v)
	}
}

// determinism: each result field diverging between identical runs must
// be caught.
func TestGPUSimPairDivergenceDetected(t *testing.T) {
	base := func() *noc.GPUSimResult {
		return &noc.GPUSimResult{
			MemUtilization:            0.5,
			ReplyInterfaceUtilization: 0.4,
			RequestsServed:            100,
			UtilSeries:                []float64{0.5, 0.5},
		}
	}
	mutations := map[string]func(r *noc.GPUSimResult){
		"RequestsServed":            func(r *noc.GPUSimResult) { r.RequestsServed++ },
		"MemUtilization":            func(r *noc.GPUSimResult) { r.MemUtilization += 0.01 },
		"ReplyInterfaceUtilization": func(r *noc.GPUSimResult) { r.ReplyInterfaceUtilization += 0.01 },
		"UtilSeries value":          func(r *noc.GPUSimResult) { r.UtilSeries[1] += 0.01 },
		"UtilSeries length":         func(r *noc.GPUSimResult) { r.UtilSeries = r.UtilSeries[:1] },
	}
	for field, mutate := range mutations {
		var log violationLog
		b := base()
		mutate(b)
		checkGPUSimPair(&log, base(), b)
		if !hasInvariant(log.violations, "determinism") {
			t.Errorf("divergence in %s went undetected", field)
		}
	}
	var log violationLog
	checkGPUSimPair(&log, base(), base())
	if len(log.violations) != 0 {
		t.Errorf("identical results flagged: %v", log.violations)
	}
}

// bounds: every envelope check must fire on a fabricated out-of-range
// result.
func TestGPUSimBoundsViolationsDetected(t *testing.T) {
	cfg := gpuCfg()
	ok := &noc.GPUSimResult{
		MemUtilization:            0.5,
		ReplyInterfaceUtilization: 0.4,
		RequestsServed:            100,
		UtilSeries:                make([]float64, cfg.Cycles/cfg.UtilWindow),
	}
	for i := range ok.UtilSeries {
		ok.UtilSeries[i] = 0.5
	}
	var cleanLog violationLog
	checkGPUSimBounds(&cleanLog, cfg, ok)
	if len(cleanLog.violations) != 0 {
		t.Fatalf("in-envelope result flagged: %v", cleanLog.violations)
	}

	cases := map[string]func(r *noc.GPUSimResult){
		"util over 1":        func(r *noc.GPUSimResult) { r.MemUtilization = 1.2 },
		"util negative":      func(r *noc.GPUSimResult) { r.MemUtilization = -0.1 },
		"reply over cap":     func(r *noc.GPUSimResult) { r.ReplyInterfaceUtilization = 1.5 },
		"served negative":    func(r *noc.GPUSimResult) { r.RequestsServed = -1 },
		"served over peak":   func(r *noc.GPUSimResult) { r.RequestsServed = 1 << 40 },
		"series wrong len":   func(r *noc.GPUSimResult) { r.UtilSeries = r.UtilSeries[:3] },
		"series entry range": func(r *noc.GPUSimResult) { r.UtilSeries[0] = 1.7 },
		"series mean drift": func(r *noc.GPUSimResult) {
			for i := range r.UtilSeries {
				r.UtilSeries[i] = 0.9 // mean no longer decomposes MemUtilization
			}
		},
	}
	for name, mutate := range cases {
		var log violationLog
		r := &noc.GPUSimResult{
			MemUtilization:            ok.MemUtilization,
			ReplyInterfaceUtilization: ok.ReplyInterfaceUtilization,
			RequestsServed:            ok.RequestsServed,
			UtilSeries:                append([]float64(nil), ok.UtilSeries...),
		}
		mutate(r)
		checkGPUSimBounds(&log, cfg, r)
		if !hasInvariant(log.violations, "bounds") {
			t.Errorf("%s went undetected", name)
		}
	}
}

func TestGPUSimMCCountRule(t *testing.T) {
	cfg := gpuCfg()
	if got := gpuSimMCCount(cfg); got != cfg.Mesh.Width {
		t.Fatalf("default MC placement counted %d, want bottom row %d", got, cfg.Mesh.Width)
	}
	cfg.MCs = []int{1, 2, 3}
	if got := gpuSimMCCount(cfg); got != 3 {
		t.Fatalf("explicit MCs counted %d, want 3", got)
	}
}
