package simcheck

import (
	"fmt"
	"strconv"
	"strings"

	"gpunoc/internal/noc"
)

// This file holds the differential oracles: checks that compare a
// simulator against an independent source of truth — a closed-form
// answer, a differently-configured twin, or a second run of itself.

// ZeroLoadLatency checks the mesh against the analytical zero-load
// model: one packet alone in the network must arrive in EXACTLY
// Manhattan-hops + flits cycles (the auditor's latency-bound invariant
// only checks ">="; at zero load the bound is tight, so any slack is a
// pipeline bug). It injects one packet at a time for every (src, dst)
// pair and each flit count in flitSizes, draining between packets.
//
// Precondition: BufferFlits >= 2. With single-flit buffers the
// credit turnaround costs one bubble per flit on multi-hop paths (a
// head flit still occupies the downstream slot when the body flit's
// move is decided on pre-cycle state), so the tight equality does not
// hold there — only the ">=" bound does, and the fuzzer exercises
// that regime instead.
func ZeroLoadLatency(cfg noc.MeshConfig, flitSizes []int) ([]Violation, error) {
	if cfg.BufferFlits < 2 {
		return nil, fmt.Errorf("simcheck: the exact zero-load model needs BufferFlits >= 2 (got %d); single-flit buffers add a credit-turnaround bubble per flit", cfg.BufferFlits)
	}
	if len(flitSizes) == 0 {
		flitSizes = []int{1, 2, 4}
	}
	m, err := noc.NewMesh(cfg)
	if err != nil {
		return nil, err
	}
	a := NewMeshAuditor(m)
	for _, flits := range flitSizes {
		for src := 0; src < m.Nodes(); src++ {
			for dst := 0; dst < m.Nodes(); dst++ {
				p, err := m.Inject(src, dst, flits, nil)
				if err != nil {
					return nil, err
				}
				a.RecordInject(p)
				for guard := 0; !m.Drained(); guard++ {
					if guard > 16*(m.Nodes()+flits) {
						return nil, fmt.Errorf("simcheck: zero-load packet %d->%d (%d flits) failed to drain", src, dst, flits)
					}
					m.Step()
					a.CheckCycle()
				}
				lat, done := a.PacketLatency(p.ID)
				if !done {
					a.violatef("drained-ledger", m.Cycle(),
						"mesh drained but packet %d (%d->%d, %d flits) never completed", p.ID, src, dst, flits)
					continue
				}
				if want := a.minLatency(p); lat != want {
					a.violatef("latency-bound", m.Cycle(),
						"zero-load packet %d->%d (%d flits) took %d cycles, analytical model says exactly %d",
						src, dst, flits, lat, want)
				}
			}
		}
	}
	a.CheckFinal()
	return a.Violations(), nil
}

// ArbiterLowLoadEquivalence drives a round-robin mesh and an age-based
// mesh with an identical schedule that keeps at most one packet in
// flight (each injection waits for the previous to drain). With no
// contention the arbiter never breaks a tie, so the two policies must
// deliver identical per-source packet counts, per-destination flit
// counts, and per-packet latencies. Divergence means an arbiter
// influences uncontended traffic — a grant or credit bug.
func ArbiterLowLoadEquivalence(cfg noc.MeshConfig, seed int64, packets int) ([]Violation, error) {
	if packets <= 0 {
		packets = 64
	}
	build := func(arb noc.Arbiter) (*noc.Mesh, *MeshAuditor, error) {
		c := cfg
		c.Arbiter = arb
		m, err := noc.NewMesh(c)
		if err != nil {
			return nil, nil, err
		}
		return m, NewMeshAuditor(m), nil
	}
	mRR, aRR, err := build(noc.RoundRobin)
	if err != nil {
		return nil, err
	}
	mAge, aAge, err := build(noc.AgeBased)
	if err != nil {
		return nil, err
	}
	var log violationLog
	r := newRNG(seed)
	type sample struct{ src, dst, flits int }
	schedule := make([]sample, packets)
	for i := range schedule {
		schedule[i] = sample{
			src:   r.intn(mRR.Nodes()),
			dst:   r.intn(mRR.Nodes()),
			flits: 1 + r.intn(4),
		}
	}
	latRR := make([]int64, packets)
	latAge := make([]int64, packets)
	run := func(m *noc.Mesh, a *MeshAuditor, lats []int64) error {
		for i, s := range schedule {
			p, err := m.Inject(s.src, s.dst, s.flits, nil)
			if err != nil {
				return err
			}
			a.RecordInject(p)
			for guard := 0; !m.Drained(); guard++ {
				if guard > 16*(m.Nodes()+s.flits) {
					return fmt.Errorf("simcheck: low-load packet %d->%d failed to drain", s.src, s.dst)
				}
				m.Step()
				a.CheckCycle()
			}
			lat, done := a.PacketLatency(p.ID)
			if !done {
				return fmt.Errorf("simcheck: low-load packet %d never completed", p.ID)
			}
			lats[i] = lat
		}
		a.CheckFinal()
		return nil
	}
	if err := run(mRR, aRR, latRR); err != nil {
		return nil, err
	}
	if err := run(mAge, aAge, latAge); err != nil {
		return nil, err
	}
	log.violations = append(log.violations, aRR.Violations()...)
	log.violations = append(log.violations, aAge.Violations()...)
	for i := range schedule {
		if latRR[i] != latAge[i] {
			log.violatef("arbiter-equivalence", -1,
				"uncontended packet #%d (%d->%d, %d flits): round-robin latency %d, age-based %d",
				i, schedule[i].src, schedule[i].dst, schedule[i].flits, latRR[i], latAge[i])
		}
	}
	for n := 0; n < mRR.Nodes(); n++ {
		if mRR.AcceptedPackets[n] != mAge.AcceptedPackets[n] {
			log.violatef("arbiter-equivalence", -1,
				"node %d delivered %d packets under round-robin but %d under age-based at zero contention",
				n, mRR.AcceptedPackets[n], mAge.AcceptedPackets[n])
		}
		if mRR.AcceptedFlits[n] != mAge.AcceptedFlits[n] {
			log.violatef("arbiter-equivalence", -1,
				"node %d accepted %d flits under round-robin but %d under age-based at zero contention",
				n, mRR.AcceptedFlits[n], mAge.AcceptedFlits[n])
		}
	}
	return log.violations, nil
}

// ReplayDeterminism replays the same trace `runs` times through fresh
// meshes and demands identical per-step statistics every time.
// ReplayStepStats is a comparable struct, so "identical" is exact
// equality, not a tolerance.
func ReplayDeterminism(cfg noc.ReplayConfig, steps [][]uint64, runs int) ([]Violation, error) {
	if runs < 2 {
		runs = 2
	}
	base, err := noc.ReplayTrace(cfg, steps)
	if err != nil {
		return nil, err
	}
	var log violationLog
	for run := 1; run < runs; run++ {
		got, err := noc.ReplayTrace(cfg, steps)
		if err != nil {
			return nil, err
		}
		if len(got) != len(base) {
			log.violatef("determinism", -1,
				"replay run %d produced %d steps, run 0 produced %d", run, len(got), len(base))
			continue
		}
		for i := range base {
			if got[i] != base[i] {
				log.violatef("determinism", -1,
					"replay run %d step %d diverged: %+v vs %+v", run, i, got[i], base[i])
				break
			}
		}
	}
	return log.violations, nil
}

// TraceBytes serializes a replay trace (one timestep of addresses per
// line, lowercase hex, space-separated) deterministically: the same
// trace always yields the same bytes, so saved traces can be compared
// with cmp and ledgered in CI.
func TraceBytes(steps [][]uint64) []byte {
	var b strings.Builder
	for _, step := range steps {
		for i, addr := range step {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatUint(addr, 16))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseTrace inverts TraceBytes. A trailing newline is optional;
// blank lines are empty timesteps.
func ParseTrace(data []byte) ([][]uint64, error) {
	text := strings.TrimSuffix(string(data), "\n")
	if text == "" {
		return nil, nil
	}
	lines := strings.Split(text, "\n")
	steps := make([][]uint64, len(lines))
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		steps[i] = make([]uint64, len(fields))
		for j, f := range fields {
			addr, err := strconv.ParseUint(f, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("simcheck: trace line %d field %d: %w", i+1, j+1, err)
			}
			steps[i][j] = addr
		}
	}
	return steps, nil
}
