package simcheck

import (
	"fmt"

	"gpunoc/internal/noc"
)

// rng is a splitmix64 stream. The fuzzer cannot draw from math/rand's
// global source (the seedflow analyzer bans ambient entropy inside the
// model, and for good reason: a reproducer must replay bit-for-bit
// from its seed alone), and carrying a rand.Rand would be overkill for
// generating a few hundred integers.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	// Avoid the all-zero state and decorrelate small adjacent seeds.
	return &rng{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Injection is one scheduled packet of a fuzz case. For mesh cases Dst
// is a node; for xbar cases it is a memory port.
type Injection struct {
	Cycle, Src, Dst, Flits int
}

// Case is one self-contained fuzz scenario: a topology, a fully
// materialized injection schedule, and a back-pressure profile.
// Everything is plain data so a failing case shrinks mechanically and
// prints as a compilable reproducer (see Shrink and Reproducer).
type Case struct {
	Seed int64
	// Kind is "mesh" or "xbar".
	Kind string
	Mesh noc.MeshConfig
	Xbar noc.XbarConfig
	// Injections are replayed in order; entries must be sorted by
	// Cycle (GenCase guarantees it, Shrink preserves it).
	Injections []Injection
	// RefusePct is the percentage of (node, cycle) pairs whose sink
	// refuses delivery, hashed deterministically from Seed (mesh only;
	// the crossbar's ports have no refusal hook).
	RefusePct int
	// DrainCycles bounds how long RunCase waits for the network to
	// drain after the last scheduled injection before declaring a
	// deadlock violation.
	DrainCycles int
	// Sabotage arms a deliberate audit-bookkeeping corruption (see the
	// Sabotage constants); "" audits honestly.
	Sabotage string
}

// Report is one executed case's outcome.
type Report struct {
	Case       Case
	Violations []Violation
	Cycles     int64
	Drained    bool
}

// Ok reports whether the case ran clean.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// GenCase derives a fuzz case deterministically from a seed: small
// meshes (and every fourth seed a crossbar), mixed flit counts,
// uniform/transpose/hotspot traffic, and randomized sink back-pressure.
func GenCase(seed int64) Case {
	r := newRNG(seed)
	c := Case{Seed: seed, Kind: "mesh", DrainCycles: 20000}
	if r.intn(4) == 0 {
		c.Kind = "xbar"
		c.Xbar = noc.XbarConfig{
			Clusters:        1 + r.intn(4),
			NodesPerCluster: 1 + r.intn(4),
			MemPorts:        1 + r.intn(4),
			HubCapacity:     1 + r.intn(2),
			PortCapacity:    1 + r.intn(2),
			VOQDepth:        1 + r.intn(8),
			Arbiter:         noc.Arbiter(r.intn(2)),
		}
		nodes, ports := c.Xbar.Clusters*c.Xbar.NodesPerCluster, c.Xbar.MemPorts
		count := 16 + r.intn(145)
		cycle := 0
		for i := 0; i < count; i++ {
			c.Injections = append(c.Injections, Injection{
				Cycle: cycle, Src: r.intn(nodes), Dst: r.intn(ports), Flits: 1 + r.intn(4),
			})
			cycle += r.intn(3)
		}
		return c
	}
	c.Mesh = noc.MeshConfig{
		Width:       2 + r.intn(3),
		Height:      1 + r.intn(4),
		BufferFlits: 1 + r.intn(4),
		Arbiter:     noc.Arbiter(r.intn(2)),
	}
	if r.intn(2) == 0 {
		c.RefusePct = r.intn(61)
	}
	nodes := c.Mesh.Width * c.Mesh.Height
	pattern := r.intn(3)
	hotspot := r.intn(nodes)
	count := 16 + r.intn(145)
	cycle := 0
	for i := 0; i < count; i++ {
		src := r.intn(nodes)
		var dst int
		switch {
		case pattern == 1 && c.Mesh.Width == c.Mesh.Height:
			// Transpose: (x, y) -> (y, x), the classic adversarial
			// pattern for XY routing.
			x, y := src%c.Mesh.Width, src/c.Mesh.Width
			dst = x*c.Mesh.Width + y
		case pattern == 2:
			dst = hotspot
		default:
			dst = r.intn(nodes)
		}
		c.Injections = append(c.Injections, Injection{
			Cycle: cycle, Src: src, Dst: dst, Flits: 1 + r.intn(4),
		})
		cycle += r.intn(3)
	}
	return c
}

// refuseSink models a busy endpoint: it refuses a deterministic,
// seed-derived RefusePct of (node, cycle) slots. The hash varies per
// cycle, so under any pct < 100 every packet is eventually accepted
// and a case that fails to drain is a simulator bug, not a sink
// artifact. Accept is hot-reachable (Sink interface dispatch from
// Mesh.Step), hence pure integer mixing with no allocation.
type refuseSink struct {
	seed uint64
	node int
	pct  int
}

func (s *refuseSink) Accept(_ *noc.Packet, _ bool, cycle int64) bool {
	h := s.seed ^ uint64(cycle)*0x9e3779b97f4a7c15 ^ uint64(s.node)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return int(h%100) >= s.pct
}

// RunCase executes one case under full audit: every injection is
// ledgered, every cycle is checked, and the run ends with the final
// reconciliation. The error return is for malformed cases (bad
// config, out-of-range injection); simulator misbehavior lands in the
// report's Violations instead.
func RunCase(c Case) (*Report, error) {
	switch c.Kind {
	case "mesh":
		return runMeshCase(c)
	case "xbar":
		return runXbarCase(c)
	}
	return nil, fmt.Errorf("simcheck: unknown case kind %q", c.Kind)
}

func runMeshCase(c Case) (*Report, error) {
	m, err := noc.NewMesh(c.Mesh)
	if err != nil {
		return nil, err
	}
	a := NewMeshAuditor(m)
	if err := a.SetSabotage(c.Sabotage); err != nil {
		return nil, err
	}
	if c.RefusePct > 0 {
		for node := 0; node < m.Nodes(); node++ {
			a.WrapSink(node, &refuseSink{seed: uint64(c.Seed), node: node, pct: c.RefusePct})
		}
	}
	next := 0
	lastCycle := 0
	if n := len(c.Injections); n > 0 {
		lastCycle = c.Injections[n-1].Cycle
	}
	deadline := int64(lastCycle + c.DrainCycles)
	rep := &Report{Case: c}
	for {
		for next < len(c.Injections) && int64(c.Injections[next].Cycle) <= m.Cycle() {
			inj := c.Injections[next]
			p, err := m.Inject(inj.Src, inj.Dst, inj.Flits, nil)
			if err != nil {
				return nil, err
			}
			a.RecordInject(p)
			next++
		}
		m.Step()
		a.CheckCycle()
		if next == len(c.Injections) && m.Drained() {
			rep.Drained = true
			break
		}
		if m.Cycle() > deadline {
			a.violatef("drained-ledger", m.Cycle(),
				"network failed to drain within %d cycles of the last injection (%d flits still in flight)",
				c.DrainCycles, a.led.inFlightFlits())
			break
		}
	}
	a.CheckFinal()
	rep.Violations = a.Violations()
	rep.Cycles = m.Cycle()
	return rep, nil
}

func runXbarCase(c Case) (*Report, error) {
	if c.Sabotage != SabotageNone {
		return nil, fmt.Errorf("simcheck: sabotage is mesh-only (the crossbar has no delivery tap)")
	}
	x, err := noc.NewXbar(c.Xbar)
	if err != nil {
		return nil, err
	}
	a := NewXbarAuditor(x)
	next := 0
	lastCycle := 0
	if n := len(c.Injections); n > 0 {
		lastCycle = c.Injections[n-1].Cycle
	}
	deadline := int64(lastCycle + c.DrainCycles)
	rep := &Report{Case: c}
	for {
		for next < len(c.Injections) && int64(c.Injections[next].Cycle) <= x.Cycle() {
			inj := c.Injections[next]
			p, err := x.Inject(inj.Src, inj.Dst, inj.Flits)
			if err != nil {
				return nil, err
			}
			a.RecordInject(p)
			next++
		}
		x.Step()
		a.CheckCycle()
		if next == len(c.Injections) && x.Drained() {
			rep.Drained = true
			break
		}
		if x.Cycle() > deadline {
			a.violatef("drained-ledger", x.Cycle(),
				"crossbar failed to drain within %d cycles of the last injection", c.DrainCycles)
			break
		}
	}
	a.CheckFinal()
	rep.Violations = a.Violations()
	rep.Cycles = x.Cycle()
	return rep, nil
}
