package simcheck

import "gpunoc/internal/noc"

// ledgerEntry is one injected packet's lifetime record.
type ledgerEntry struct {
	id        uint64
	src, dst  int
	flits     int
	createdAt int64
	// minLat is the zero-load floor: Manhattan hops plus flit count.
	minLat int64
	// delivered counts flits the sinks have accepted so far.
	delivered int
	// doneAt is the cycle the tail was accepted, or -1 in flight.
	doneAt int64
}

// ledger is the flit-conservation book. Entries live in a slice in
// injection order; the id index exists only for O(1) lookup on the
// delivery path and is never ranged over (iteration always walks the
// slice), so no ledger read depends on map order.
type ledger struct {
	entries []ledgerEntry
	index   map[uint64]int

	injectedFlits  int64
	deliveredFlits int64
	injectedPkts   int64
	deliveredPkts  int64
}

func newLedger() ledger {
	return ledger{index: map[uint64]int{}}
}

// record opens an entry for a freshly injected packet and returns
// false if the packet ID is already on the books (an ID reuse).
func (l *ledger) record(p *noc.Packet, minLat int64) bool {
	if _, dup := l.index[p.ID]; dup {
		return false
	}
	l.entries = append(l.entries, ledgerEntry{
		id: p.ID, src: p.Src, dst: p.Dst, flits: p.Flits,
		createdAt: p.CreatedAt, minLat: minLat, doneAt: -1,
	})
	l.index[p.ID] = len(l.entries) - 1
	l.injectedFlits += int64(p.Flits)
	l.injectedPkts++
	return true
}

// lookup returns the entry for a packet ID, or nil. It is called from
// the delivery hot path and performs a single map read.
func (l *ledger) lookup(id uint64) *ledgerEntry {
	idx, ok := l.index[id]
	if !ok {
		return nil
	}
	return &l.entries[idx]
}

// inFlightFlits is the conservation balance: what went in minus what
// came out.
func (l *ledger) inFlightFlits() int64 { return l.injectedFlits - l.deliveredFlits }

// openEntries walks the slice (never the map) and returns how many
// packets have not completed, plus the first such entry for reporting.
func (l *ledger) openEntries() (count int, first *ledgerEntry) {
	for i := range l.entries {
		if l.entries[i].doneAt < 0 {
			if first == nil {
				first = &l.entries[i]
			}
			count++
		}
	}
	return count, first
}
