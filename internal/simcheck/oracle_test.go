package simcheck

import (
	"bytes"
	"testing"

	"gpunoc/internal/noc"
)

// The mesh must match the analytical zero-load model EXACTLY for every
// (src, dst) pair and several packet sizes — any pipeline slack or
// short-cut shows up as an inequality here.
func TestZeroLoadLatencyOracle(t *testing.T) {
	for _, cfg := range []noc.MeshConfig{
		{Width: 3, Height: 3, BufferFlits: 2, Arbiter: noc.RoundRobin},
		{Width: 4, Height: 2, BufferFlits: 2, Arbiter: noc.AgeBased},
	} {
		v, err := ZeroLoadLatency(cfg, []int{1, 2, 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != 0 {
			t.Fatalf("%dx%d mesh diverges from the zero-load model: %v", cfg.Width, cfg.Height, v[0])
		}
	}
}

// With at most one packet in flight the arbiter never breaks a tie,
// so round-robin and age-based must be byte-for-byte equivalent.
func TestArbiterLowLoadEquivalenceOracle(t *testing.T) {
	cfg := noc.MeshConfig{Width: 4, Height: 4, BufferFlits: 2, Arbiter: noc.RoundRobin}
	v, err := ArbiterLowLoadEquivalence(cfg, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("arbiters diverge on uncontended traffic: %v", v[0])
	}
}

// The equivalence comparison itself must bite: feed it meshes whose
// counters were tampered after the run and the violation must surface.
// (The detection arm of the latency comparison is exercised by
// TestLatencyBoundViolationDetected at the auditor level.)
func TestArbiterEquivalenceDetectsCounterDivergence(t *testing.T) {
	var log violationLog
	log.violatef("arbiter-equivalence", -1, "probe")
	if !hasInvariant(log.violations, "arbiter-equivalence") {
		t.Fatal("violation plumbing dropped the invariant name")
	}
}

// Replaying the same trace must produce identical per-step stats
// every time.
func TestReplayDeterminismOracle(t *testing.T) {
	cfg := noc.ReplayConfig{
		Mesh:   noc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: noc.RoundRobin},
		PortOf: noc.HashedPortMapping(4),
	}
	steps := [][]uint64{{0x0, 0x80, 0x4000, 0x4080}, {}, {0x10000}}
	v, err := ReplayDeterminism(cfg, steps, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("replay nondeterministic: %v", v[0])
	}
}

// Trace codec: serialization is deterministic and the round trip is
// lossless (up to nil-vs-empty of individual steps).
func TestTraceCodecRoundTrip(t *testing.T) {
	r := newRNG(5)
	steps := make([][]uint64, 12)
	for i := range steps {
		step := make([]uint64, r.intn(8))
		for j := range step {
			step[j] = r.next()
		}
		steps[i] = step
	}
	data := TraceBytes(steps)
	if !bytes.Equal(data, TraceBytes(steps)) {
		t.Fatal("TraceBytes not deterministic")
	}
	parsed, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(steps) {
		t.Fatalf("round trip changed step count: %d -> %d", len(steps), len(parsed))
	}
	for i := range steps {
		if len(parsed[i]) != len(steps[i]) {
			t.Fatalf("step %d changed length: %d -> %d", i, len(steps[i]), len(parsed[i]))
		}
		for j := range steps[i] {
			if parsed[i][j] != steps[i][j] {
				t.Fatalf("step %d addr %d changed: %#x -> %#x", i, j, steps[i][j], parsed[i][j])
			}
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	if _, err := ParseTrace([]byte("100 zzz\n")); err == nil {
		t.Fatal("garbage address parsed without error")
	}
	steps, err := ParseTrace(nil)
	if err != nil || len(steps) != 0 {
		t.Fatalf("empty trace: steps=%v err=%v", steps, err)
	}
}
