package simcheck

import (
	"testing"

	"gpunoc/internal/noc"
	"gpunoc/internal/parallel"
)

// Property tests for the replay layer (ISSUE 9 satellite 4): replay
// statistics must be byte-identical run to run, across worker-pool
// sizes, and across a save/load round trip of the trace.

func replayCfg() noc.ReplayConfig {
	return noc.ReplayConfig{
		Mesh:   noc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: noc.RoundRobin},
		PortOf: noc.HashedPortMapping(4),
	}
}

func replaySteps(seed int64) [][]uint64 {
	r := newRNG(seed)
	steps := make([][]uint64, 10)
	for i := range steps {
		step := make([]uint64, 4+r.intn(28))
		for j := range step {
			step[j] = r.next() % (1 << 30)
		}
		steps[i] = step
	}
	return steps
}

// Replays racing in a worker pool must each produce exactly the
// sequential answer: the replay path has no hidden shared state, and
// pool size is invisible in the results. ReplayStepStats is a
// comparable struct, so the comparison is exact equality.
func TestReplayStatsIdenticalAcrossPoolSizes(t *testing.T) {
	steps := replaySteps(21)
	base, err := noc.ReplayTrace(replayCfg(), steps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		runs, err := parallel.Map(workers, 6, func(i int) ([]noc.ReplayStepStats, error) {
			return noc.ReplayTrace(replayCfg(), steps)
		})
		if err != nil {
			t.Fatal(err)
		}
		for ri, got := range runs {
			if len(got) != len(base) {
				t.Fatalf("workers=%d run %d: %d steps, want %d", workers, ri, len(got), len(base))
			}
			for si := range base {
				if got[si] != base[si] {
					t.Fatalf("workers=%d run %d step %d: %+v, sequential says %+v",
						workers, ri, si, got[si], base[si])
				}
			}
		}
	}
}

// A trace that goes to disk and comes back must replay to identical
// statistics.
func TestReplaySaveLoadRoundTrip(t *testing.T) {
	steps := replaySteps(33)
	loaded, err := ParseTrace(TraceBytes(steps))
	if err != nil {
		t.Fatal(err)
	}
	want, err := noc.ReplayTrace(replayCfg(), steps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := noc.ReplayTrace(replayCfg(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped trace replayed %d steps, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d diverged after save/load: %+v vs %+v", i, got[i], want[i])
		}
	}
}
