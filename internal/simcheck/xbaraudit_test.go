package simcheck

import (
	"testing"

	"gpunoc/internal/noc"
)

func smallXbar(t *testing.T) *noc.Xbar {
	t.Helper()
	x, err := noc.NewXbar(noc.XbarConfig{
		Clusters: 2, NodesPerCluster: 2, MemPorts: 2,
		HubCapacity: 1, PortCapacity: 1, VOQDepth: 4, Arbiter: noc.RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func runXbarAudited(t *testing.T, x *noc.Xbar, a *XbarAuditor, inject func()) {
	t.Helper()
	inject()
	for guard := 0; !x.Drained(); guard++ {
		if guard > 100000 {
			t.Fatal("xbar failed to drain")
		}
		x.Step()
		a.CheckCycle()
	}
}

func TestXbarCleanRunHasNoViolations(t *testing.T) {
	x := smallXbar(t)
	a := NewXbarAuditor(x)
	runXbarAudited(t, x, a, func() {
		for node := 0; node < x.Nodes(); node++ {
			for port := 0; port < 2; port++ {
				p, err := x.Inject(node, port, 1+(node+port)%3)
				if err != nil {
					t.Fatal(err)
				}
				a.RecordInject(p)
			}
		}
	})
	a.CheckFinal()
	if !a.Ok() {
		t.Fatalf("clean crossbar run reported violations:\n%s", a.Summary())
	}
}

// occupancy: a VOQ over its depth bound means hub-side flow control
// leaked.
func TestXbarOccupancyViolationDetected(t *testing.T) {
	a := NewXbarAuditor(smallXbar(t))
	a.checkVOQBound(0, 1, 1, 5, 4)
	a.checkVOQBound(0, 0, 0, -2, 4)
	if len(a.Violations()) != 2 || !hasInvariant(a.Violations(), "occupancy") {
		t.Fatalf("out-of-range VOQs produced:\n%s", a.Summary())
	}
	a.checkVOQBound(0, 0, 1, 4, 4)
	if len(a.Violations()) != 2 {
		t.Fatal("full-but-legal VOQ flagged")
	}
}

// conservation: a ledgered injection the crossbar never saw unbalances
// the per-cycle book.
func TestXbarConservationViolationDetected(t *testing.T) {
	x := smallXbar(t)
	a := NewXbarAuditor(x)
	a.RecordInject(&noc.Packet{ID: 1, Src: 0, Dst: 0, Flits: 3}) // ledger-only
	x.Step()
	a.CheckCycle()
	if !hasInvariant(a.Violations(), "conservation") {
		t.Fatalf("phantom injection not flagged:\n%s", a.Summary())
	}
}

// drained-ledger, both directions.
func TestXbarDrainedLedgerViolationsDetected(t *testing.T) {
	// Direction 1: ledger open, crossbar drained.
	a := NewXbarAuditor(smallXbar(t))
	a.RecordInject(&noc.Packet{ID: 1, Src: 0, Dst: 1, Flits: 2})
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "drained-ledger") {
		t.Fatalf("drained-with-open-ledger not flagged:\n%s", a.Summary())
	}
	// Direction 2: traffic behind the ledger's back.
	x := smallXbar(t)
	b := NewXbarAuditor(x)
	if _, err := x.Inject(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	for !x.Drained() {
		x.Step()
	}
	b.CheckFinal()
	if !hasInvariant(b.Violations(), "drained-ledger") {
		t.Fatalf("unledgered drain not flagged:\n%s", b.Summary())
	}
}

// aggregate: per-source delivered packets must reconcile.
func TestXbarAggregateMismatchDetected(t *testing.T) {
	x := smallXbar(t)
	a := NewXbarAuditor(x)
	runXbarAudited(t, x, a, func() {
		p, err := x.Inject(2, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		a.RecordInject(p)
	})
	x.AcceptedPackets[2]++ // tamper
	a.CheckFinal()
	if !hasInvariant(a.Violations(), "aggregate") {
		t.Fatalf("tampered AcceptedPackets not flagged:\n%s", a.Summary())
	}
}

func TestXbarMonotoneIDViolationDetected(t *testing.T) {
	a := NewXbarAuditor(smallXbar(t))
	a.RecordInject(&noc.Packet{ID: 9, Src: 0, Dst: 0, Flits: 1})
	a.RecordInject(&noc.Packet{ID: 4, Src: 1, Dst: 1, Flits: 1})
	if !hasInvariant(a.Violations(), "monotone-id") {
		t.Fatalf("non-monotone IDs not flagged:\n%s", a.Summary())
	}
}
