package simcheck

import (
	"fmt"
	"strings"

	"gpunoc/internal/noc"
)

// shrinkBudget caps how many candidate cases one Shrink call executes.
// Each candidate is a full audited run; the cap keeps shrinking a
// pathological case bounded while still converging for realistic ones
// (ddmin needs O(n log n) runs on n injections).
const shrinkBudget = 400

// Shrink reduces a failing case to a (locally) minimal one that still
// violates an invariant: delta-debugging over the injection schedule,
// then flit-count reduction, then dropping the back-pressure profile.
// The input case is returned unchanged if it does not fail, so Shrink
// never invents a failure.
func Shrink(c Case) Case {
	budget := shrinkBudget
	fails := func(cand Case) bool {
		if budget <= 0 {
			return false
		}
		budget--
		rep, err := RunCase(cand)
		return err == nil && !rep.Ok()
	}
	if !fails(c) {
		return c
	}
	cur := c
	// ddmin over injections: try dropping chunks, halving the chunk
	// size when no chunk can be removed.
	for chunk := len(cur.Injections) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur.Injections); {
			cand := cur
			cand.Injections = make([]Injection, 0, len(cur.Injections)-chunk)
			cand.Injections = append(cand.Injections, cur.Injections[:start]...)
			cand.Injections = append(cand.Injections, cur.Injections[start+chunk:]...)
			if fails(cand) {
				cur = cand
				removed = true
				// Do not advance: the next chunk slid into place.
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		}
	}
	// Reduce flit counts one injection at a time.
	for i := range cur.Injections {
		for cur.Injections[i].Flits > 1 {
			cand := cur
			cand.Injections = append([]Injection(nil), cur.Injections...)
			cand.Injections[i].Flits--
			if !fails(cand) {
				break
			}
			cur = cand
		}
	}
	// Drop back-pressure if the failure survives without it.
	if cur.RefusePct > 0 {
		cand := cur
		cand.RefusePct = 0
		if fails(cand) {
			cur = cand
		}
	}
	return cur
}

// Reproducer renders a case as a compilable Go snippet that re-runs
// it under the harness — paste it into a _test.go next to this
// package and the failure replays exactly.
func Reproducer(c Case) string {
	var b strings.Builder
	b.WriteString("c := simcheck.Case{\n")
	fmt.Fprintf(&b, "\tSeed: %d,\n\tKind: %q,\n", c.Seed, c.Kind)
	switch c.Kind {
	case "xbar":
		fmt.Fprintf(&b, "\tXbar: noc.XbarConfig{Clusters: %d, NodesPerCluster: %d, MemPorts: %d, HubCapacity: %d, PortCapacity: %d, VOQDepth: %d, Arbiter: noc.%s},\n",
			c.Xbar.Clusters, c.Xbar.NodesPerCluster, c.Xbar.MemPorts,
			c.Xbar.HubCapacity, c.Xbar.PortCapacity, c.Xbar.VOQDepth, arbiterName(c.Xbar.Arbiter))
	default:
		fmt.Fprintf(&b, "\tMesh: noc.MeshConfig{Width: %d, Height: %d, BufferFlits: %d, Arbiter: noc.%s},\n",
			c.Mesh.Width, c.Mesh.Height, c.Mesh.BufferFlits, arbiterName(c.Mesh.Arbiter))
	}
	if c.RefusePct > 0 {
		fmt.Fprintf(&b, "\tRefusePct: %d,\n", c.RefusePct)
	}
	if c.Sabotage != SabotageNone {
		fmt.Fprintf(&b, "\tSabotage: %q,\n", c.Sabotage)
	}
	fmt.Fprintf(&b, "\tDrainCycles: %d,\n", c.DrainCycles)
	b.WriteString("\tInjections: []simcheck.Injection{\n")
	for _, inj := range c.Injections {
		fmt.Fprintf(&b, "\t\t{Cycle: %d, Src: %d, Dst: %d, Flits: %d},\n",
			inj.Cycle, inj.Src, inj.Dst, inj.Flits)
	}
	b.WriteString("\t},\n}\n")
	b.WriteString("rep, err := simcheck.RunCase(c)\n")
	b.WriteString("// expect err == nil && !rep.Ok()\n")
	return b.String()
}

// arbiterName renders the arbiter as its exported constant name.
func arbiterName(a noc.Arbiter) string {
	if a == noc.AgeBased {
		return "AgeBased"
	}
	return "RoundRobin"
}
