package simcheck

import (
	"math"

	"gpunoc/internal/noc"
)

// CheckGPUSim audits one RunGPUSim configuration: it runs the
// simulation twice and demands bit-identical results (the seeded RNG
// and the deterministic mesh leave no excuse for divergence), then
// checks the result against its physical envelope. The returned
// violations use the invariants "determinism" and "bounds".
func CheckGPUSim(cfg noc.GPUSimConfig) ([]Violation, error) {
	a, err := noc.RunGPUSim(cfg)
	if err != nil {
		return nil, err
	}
	b, err := noc.RunGPUSim(cfg)
	if err != nil {
		return nil, err
	}
	var log violationLog
	checkGPUSimPair(&log, a, b)
	checkGPUSimBounds(&log, cfg, a)
	return log.violations, nil
}

// checkGPUSimPair demands two runs of the same config agree exactly.
func checkGPUSimPair(log *violationLog, a, b *noc.GPUSimResult) {
	if a.RequestsServed != b.RequestsServed {
		log.violatef("determinism", -1,
			"RequestsServed diverged across identical runs: %d vs %d", a.RequestsServed, b.RequestsServed)
	}
	if a.MemUtilization != b.MemUtilization {
		log.violatef("determinism", -1,
			"MemUtilization diverged across identical runs: %v vs %v", a.MemUtilization, b.MemUtilization)
	}
	if a.ReplyInterfaceUtilization != b.ReplyInterfaceUtilization {
		log.violatef("determinism", -1,
			"ReplyInterfaceUtilization diverged across identical runs: %v vs %v",
			a.ReplyInterfaceUtilization, b.ReplyInterfaceUtilization)
	}
	if len(a.UtilSeries) != len(b.UtilSeries) {
		log.violatef("determinism", -1,
			"UtilSeries length diverged across identical runs: %d vs %d", len(a.UtilSeries), len(b.UtilSeries))
		return
	}
	for i := range a.UtilSeries {
		if a.UtilSeries[i] != b.UtilSeries[i] {
			log.violatef("determinism", -1,
				"UtilSeries[%d] diverged across identical runs: %v vs %v", i, a.UtilSeries[i], b.UtilSeries[i])
			return
		}
	}
}

// gpuSimMCCount mirrors RunGPUSim's MC placement rule: an empty MCs
// list means one MC per bottom-row node.
func gpuSimMCCount(cfg noc.GPUSimConfig) int {
	if len(cfg.MCs) > 0 {
		return len(cfg.MCs)
	}
	return cfg.Mesh.Width
}

// checkGPUSimBounds checks one result against its physical envelope:
// utilizations are fractions of capacity, the served count cannot
// exceed the channels' peak service rate, and the utilization series
// must average back to the headline number it decomposes.
func checkGPUSimBounds(log *violationLog, cfg noc.GPUSimConfig, r *noc.GPUSimResult) {
	if r.MemUtilization < 0 || r.MemUtilization > 1 {
		log.violatef("bounds", -1, "MemUtilization %v outside [0, 1]", r.MemUtilization)
	}
	// The reply interface injects at most one packet per ReplyFlits
	// cycles in steady state; a small transient overshoot is possible
	// because injection is booked at enqueue time while flits trickle
	// out later, so the bound carries slack.
	if r.ReplyInterfaceUtilization < 0 || r.ReplyInterfaceUtilization > 1.05 {
		log.violatef("bounds", -1, "ReplyInterfaceUtilization %v outside [0, 1.05]", r.ReplyInterfaceUtilization)
	}
	if r.RequestsServed < 0 {
		log.violatef("bounds", -1, "RequestsServed %d negative", r.RequestsServed)
	}
	mcs := gpuSimMCCount(cfg)
	svc := cfg.MCServiceCycles
	if svc < 1 {
		svc = 1
	}
	// Served counts the whole run including warmup; each channel
	// completes at most one request per MCServiceCycles (plus one in
	// flight at the end).
	peak := int64(mcs) * (int64(cfg.Warmup+cfg.Cycles)/int64(svc) + 1)
	if r.RequestsServed > peak {
		log.violatef("bounds", -1,
			"RequestsServed %d exceeds the channels' peak %d (%d MCs, %d cycles, %d-cycle service)",
			r.RequestsServed, peak, mcs, cfg.Warmup+cfg.Cycles, svc)
	}
	if cfg.UtilWindow > 0 {
		if want := cfg.Cycles / cfg.UtilWindow; len(r.UtilSeries) != want {
			log.violatef("bounds", -1,
				"UtilSeries has %d windows, want %d (%d cycles / %d window)",
				len(r.UtilSeries), want, cfg.Cycles, cfg.UtilWindow)
		}
	}
	sum := 0.0
	for i, u := range r.UtilSeries {
		if u < 0 || u > 1 {
			log.violatef("bounds", -1, "UtilSeries[%d] = %v outside [0, 1]", i, u)
		}
		sum += u
	}
	// When the windows tile the measurement exactly, their mean IS the
	// headline utilization (both divide the same busy-cycle total).
	if len(r.UtilSeries) > 0 && cfg.UtilWindow > 0 && cfg.Cycles%cfg.UtilWindow == 0 {
		mean := sum / float64(len(r.UtilSeries))
		if math.Abs(mean-r.MemUtilization) > 1e-9 {
			log.violatef("bounds", -1,
				"mean(UtilSeries) = %v but MemUtilization = %v; the series does not decompose the headline",
				mean, r.MemUtilization)
		}
	}
}
