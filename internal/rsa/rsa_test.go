package rsa

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
)

func TestGenerateKeyAndRoundTrip(t *testing.T) {
	k, err := GenerateKey(128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k.N.BitLen() < 120 {
		t.Errorf("modulus only %d bits", k.N.BitLen())
	}
	m := big.NewInt(123456789)
	c, err := k.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := k.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(m) != 0 {
		t.Errorf("decrypt(encrypt(m)) = %v, want %v", back, m)
	}
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(8, 1); err == nil {
		t.Error("tiny modulus should fail")
	}
	if _, err := GenerateKey(9999, 1); err == nil {
		t.Error("huge modulus should fail")
	}
}

// Property: ModExp agrees with math/big's Exp.
func TestModExpMatchesBig(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := new(big.Int).Rand(rng, big.NewInt(1<<32))
		exp := new(big.Int).Rand(rng, big.NewInt(1<<32))
		mod := new(big.Int).Add(new(big.Int).Rand(rng, big.NewInt(1<<32)), big.NewInt(2))
		got, err := ModExp(base, exp, mod, nil)
		if err != nil {
			return false
		}
		want := new(big.Int).Exp(base, exp, mod)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModExpValidation(t *testing.T) {
	if _, err := ModExp(big.NewInt(2), big.NewInt(3), big.NewInt(0), nil); err == nil {
		t.Error("zero modulus should fail")
	}
	if _, err := ModExp(big.NewInt(2), big.NewInt(-1), big.NewInt(5), nil); err == nil {
		t.Error("negative exponent should fail")
	}
}

// The op sequence is the attack's timing model: one square+reduce per
// bit, one extra multiply+reduce per 1-bit.
func TestModExpOpSequence(t *testing.T) {
	exp := big.NewInt(0b1011) // 4 bits, 3 ones
	var sq, mul, red int
	if _, err := ModExp(big.NewInt(3), exp, big.NewInt(1000003), func(op Op) {
		switch op {
		case OpSquare:
			sq++
		case OpMultiply:
			mul++
		case OpReduce:
			red++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if sq != 4 || mul != 3 || red != 7 {
		t.Errorf("ops = %d sq, %d mul, %d red; want 4, 3, 7", sq, mul, red)
	}
	wsq, wmul, wred := OpCounts(exp)
	if wsq != sq || wmul != mul || wred != red {
		t.Errorf("OpCounts = (%d, %d, %d), observed (%d, %d, %d)", wsq, wmul, wred, sq, mul, red)
	}
}

func TestOnesCount(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 1}, {0b1011, 3}, {1 << 40, 1}}
	for _, c := range cases {
		if got := OnesCount(big.NewInt(c.v)); got != c.want {
			t.Errorf("OnesCount(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpSquare.String() != "square" || OpMultiply.String() != "multiply" || OpReduce.String() != "reduce" {
		t.Error("op names")
	}
	if Op(9).String() == "" {
		t.Error("unknown op should render")
	}
}

func TestEncryptRangeChecks(t *testing.T) {
	k, err := GenerateKey(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Encrypt(k.N); err == nil {
		t.Error("message >= N should fail")
	}
	if _, err := k.Decrypt(new(big.Int).Neg(big.NewInt(1))); err == nil {
		t.Error("negative ciphertext should fail")
	}
}

func newTimer(t *testing.T, sms []int, sync bool) *GPUTimer {
	t.Helper()
	dev := gpu.MustNew(gpu.A100())
	opts := kernel.DefaultOptions()
	opts.GridSync = sync
	m, err := kernel.NewMachine(dev, kernel.ListScheduler{SMs: sms}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return NewGPUTimer(m)
}

func TestGPUTimerCorrectAndLinearInOnes(t *testing.T) {
	timer := newTimer(t, []int{0, 8}, false)
	mod := big.NewInt(1000003)
	base := big.NewInt(12345)
	timeFor := func(exp *big.Int) float64 {
		got, cycles, err := timer.ModExp(base, exp, mod)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(base, exp, mod)
		if got.Cmp(want) != 0 {
			t.Fatalf("GPU-timed ModExp wrong: %v != %v", got, want)
		}
		return cycles
	}
	// Same bit length, growing ones count -> growing time.
	sparse, _ := new(big.Int).SetString("8000000000000001", 16) // 2 ones
	mid, _ := new(big.Int).SetString("80000f0f0f0f0f01", 16)
	dense, _ := new(big.Int).SetString("ffffffffffffffff", 16) // 64 ones
	ts, tm, td := timeFor(sparse), timeFor(mid), timeFor(dense)
	if !(ts < tm && tm < td) {
		t.Errorf("time should grow with ones: %v %v %v", ts, tm, td)
	}
	// A 1-bit costs roughly twice a 0-bit: doubling ones over the same
	// bit width adds about (multiply+reduce+load) per extra 1.
	perOne := (td - ts) / 62
	if perOne <= 0 {
		t.Errorf("per-one cost %v must be positive", perOne)
	}
}

func TestGPUTimerPartitionSpread(t *testing.T) {
	// Fig. 17(b): the two-SM square kernel slows when its SMs span GPU
	// partitions (sync + far latency), by a noticeable factor.
	exp, _ := new(big.Int).SetString("f0f0f0f0f0f0f0f0", 16)
	mod := big.NewInt(1000033)
	same := newTimer(t, []int{0, 8}, true) // GPC0 twice (partition 0)
	span := newTimer(t, []int{0, 4}, true) // GPC0 + GPC4 (partition 1)
	_, tSame, err := same.ModExp(big.NewInt(7), exp, mod)
	if err != nil {
		t.Fatal(err)
	}
	_, tSpan, err := span.ModExp(big.NewInt(7), exp, mod)
	if err != nil {
		t.Fatal(err)
	}
	if tSpan <= tSame {
		t.Errorf("partition-spanning run %.0f should exceed co-located %.0f", tSpan, tSame)
	}
}

func TestTimedDecrypt(t *testing.T) {
	k, err := GenerateKey(64, 11)
	if err != nil {
		t.Fatal(err)
	}
	timer := newTimer(t, []int{0, 8}, false)
	m := big.NewInt(424242)
	c, err := k.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	back, cycles, err := timer.TimedDecrypt(k, c)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(m) != 0 {
		t.Errorf("timed decrypt wrong: %v != %v", back, m)
	}
	if cycles <= 0 {
		t.Error("cycles must be positive")
	}
	if _, _, err := timer.TimedDecrypt(k, k.N); err == nil {
		t.Error("out-of-range ciphertext should fail")
	}
}

func TestGPUTimerNilMachine(t *testing.T) {
	timer := &GPUTimer{}
	if _, _, err := timer.ModExp(big.NewInt(1), big.NewInt(1), big.NewInt(5)); err == nil {
		t.Error("nil machine should fail")
	}
}
