package rsa

import (
	"fmt"
	"math/big"

	"gpunoc/internal/kernel"
)

// GPUTimer executes the square-and-multiply loop on the kernel runtime so
// that its wall time includes the modelled NoC latency of the operand
// table loads each operation performs. This mirrors the CUDA RSA kernels
// of prior work [49], [50]: the square kernel spans two SMs (the machine's
// scheduler decides which), and the per-operation operand fetch is an
// L1-bypassing global load whose latency depends on the executing SM.
type GPUTimer struct {
	// Machine supplies the device, scheduler and sync model.
	Machine *kernel.Machine
	// SquareCycles / MultiplyCycles / ReduceCycles are the fixed ALU
	// costs; the paper's model has a 1-bit costing about twice a 0-bit,
	// which holds when Square+Reduce is about Multiply+Reduce.
	SquareCycles   float64
	MultiplyCycles float64
	ReduceCycles   float64
	// OperandAddrs are the line-aligned global-memory addresses of the
	// operand limb tables fetched by successive operations. Where these
	// lines live decides which SMs are "near" the data: pinning them to
	// one GPU partition reproduces the paper's Fig. 17(b) square-kernel
	// spread (up to ~1.7x) across SM placements.
	OperandAddrs []uint64
}

// NewGPUTimer builds a timer with representative per-op costs. On
// partitioned GPUs the operand lines are placed in partition 0, modelling
// an allocation that landed near one memory partition.
func NewGPUTimer(m *kernel.Machine) *GPUTimer {
	t := &GPUTimer{
		Machine:        m,
		SquareCycles:   120,
		MultiplyCycles: 120,
		ReduceCycles:   80,
	}
	if err := t.PinOperands(0); err != nil {
		// Every canonical device has partition-0 slices; fall back to a
		// fixed region if a custom one does not.
		t.OperandAddrs = []uint64{0x100000, 0x100080, 0x100100, 0x100180}
	}
	return t
}

// PinOperands places the four operand lines on slices of the given GPU
// partition.
func (t *GPUTimer) PinOperands(partition int) error {
	dev := t.Machine.Device()
	slices := dev.SlicesOfPartition(partition)
	if len(slices) == 0 {
		return fmt.Errorf("rsa: partition %d has no slices", partition)
	}
	addrs := make([]uint64, 0, 4)
	for i := 0; len(addrs) < 4 && i < 4; i++ {
		addr, ok := dev.AddressForSlice(slices[i%len(slices)], uint64(0x100000+i*0x10000), 1<<16)
		if !ok {
			return fmt.Errorf("rsa: no address found for slice %d", slices[i%len(slices)])
		}
		addrs = append(addrs, addr)
	}
	t.OperandAddrs = addrs
	return nil
}

// ModExp computes base^exp mod mod while executing the loop's operations
// on the GPU model. It returns the (functionally exact) result and the
// kernel's measured cycles.
func (t *GPUTimer) ModExp(base, exp, mod *big.Int) (*big.Int, float64, error) {
	if t.Machine == nil {
		return nil, 0, fmt.Errorf("rsa: GPUTimer without machine")
	}
	// Record the loop's operation sequence once, then replay it inside
	// each thread block (both SMs execute the full loop in lockstep, as
	// the two-SM square kernel does).
	var ops []Op
	result, err := ModExp(base, exp, mod, func(op Op) { ops = append(ops, op) })
	if err != nil {
		return nil, 0, err
	}
	if len(t.OperandAddrs) == 0 {
		return nil, 0, fmt.Errorf("rsa: GPUTimer without operand addresses")
	}
	res, err := t.Machine.Launch(2, kernel.WarpSize, func(w *kernel.Warp) {
		addrs := make([]uint64, kernel.WarpSize)
		for i, op := range ops {
			// Operand fetch: each lane loads one limb of the operand
			// line; fully coalesced, so latency is the NoC round trip to
			// the line's slice.
			base := t.OperandAddrs[i%len(t.OperandAddrs)]
			for lane := range addrs {
				addrs[lane] = base + uint64(lane)*4
			}
			w.LoadCG(addrs)
			switch op {
			case OpSquare:
				w.Compute(t.SquareCycles)
			case OpMultiply:
				w.Compute(t.MultiplyCycles)
			default:
				w.Compute(t.ReduceCycles)
			}
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return result, res.Cycles, nil
}

// TimedDecrypt runs a private-key operation under the timer.
func (t *GPUTimer) TimedDecrypt(k *Key, c *big.Int) (*big.Int, float64, error) {
	if c.Cmp(k.N) >= 0 || c.Sign() < 0 {
		return nil, 0, fmt.Errorf("rsa: ciphertext out of range")
	}
	return t.ModExp(c, k.D, k.N)
}
