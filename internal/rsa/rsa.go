// Package rsa provides a compact RSA implementation whose decryption is
// the classic left-to-right square-and-multiply loop, plus a GPU-timed
// variant that executes the loop on the kernel runtime so its duration
// reflects the modelled NoC. The paper's Sec. V-B.2 attack exploits that
// the loop performs square()+reduce() per exponent bit and an additional
// multiply()+reduce() per 1-bit, making execution time linear in the
// number of 1s - and that the line's slope and intercept shift with the
// SMs the kernel lands on.
//
// Key sizes here are toy-sized for experiment speed; this package must
// never be used to protect data.
package rsa

import (
	"fmt"
	"math/big"
	"math/rand"
)

// Key is an RSA key pair.
type Key struct {
	N *big.Int // modulus
	E *big.Int // public exponent
	D *big.Int // private exponent
}

// GenerateKey creates a toy RSA key with an n-bit modulus using a seeded
// generator (reproducible experiments; deliberately not crypto/rand).
func GenerateKey(bits int, seed int64) (*Key, error) {
	if bits < 16 || bits > 4096 {
		return nil, fmt.Errorf("rsa: modulus size %d out of range", bits)
	}
	rng := rand.New(rand.NewSource(seed))
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for attempt := 0; attempt < 1000; attempt++ {
		p := randomPrime(rng, bits/2)
		q := randomPrime(rng, bits-bits/2)
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		if new(big.Int).GCD(nil, nil, e, phi).Cmp(one) != 0 {
			continue
		}
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue
		}
		return &Key{N: n, E: e, D: d}, nil
	}
	return nil, fmt.Errorf("rsa: failed to generate %d-bit key", bits)
}

// randomPrime returns a probable prime of the requested bit length.
func randomPrime(rng *rand.Rand, bits int) *big.Int {
	for {
		candidate := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		candidate.SetBit(candidate, bits-1, 1) // full length
		candidate.SetBit(candidate, 0, 1)      // odd
		if candidate.ProbablyPrime(20) {
			return candidate
		}
	}
}

// Op identifies one step of the square-and-multiply loop.
type Op int

// Loop operations.
const (
	OpSquare Op = iota
	OpMultiply
	OpReduce
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpSquare:
		return "square"
	case OpMultiply:
		return "multiply"
	case OpReduce:
		return "reduce"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ModExp computes base^exp mod mod with left-to-right square-and-multiply,
// invoking hook (if non-nil) for every operation in loop order. mod must
// be positive; exp non-negative.
func ModExp(base, exp, mod *big.Int, hook func(Op)) (*big.Int, error) {
	if mod == nil || mod.Sign() <= 0 {
		return nil, fmt.Errorf("rsa: non-positive modulus")
	}
	if exp == nil || exp.Sign() < 0 {
		return nil, fmt.Errorf("rsa: negative exponent")
	}
	emit := func(op Op) {
		if hook != nil {
			hook(op)
		}
	}
	result := big.NewInt(1)
	result.Mod(result, mod)
	b := new(big.Int).Mod(base, mod)
	for i := exp.BitLen() - 1; i >= 0; i-- {
		result.Mul(result, result)
		emit(OpSquare)
		result.Mod(result, mod)
		emit(OpReduce)
		if exp.Bit(i) == 1 {
			result.Mul(result, b)
			emit(OpMultiply)
			result.Mod(result, mod)
			emit(OpReduce)
		}
	}
	return result, nil
}

// Encrypt computes m^E mod N.
func (k *Key) Encrypt(m *big.Int) (*big.Int, error) {
	if m.Cmp(k.N) >= 0 || m.Sign() < 0 {
		return nil, fmt.Errorf("rsa: message out of range")
	}
	return ModExp(m, k.E, k.N, nil)
}

// Decrypt computes c^D mod N.
func (k *Key) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Cmp(k.N) >= 0 || c.Sign() < 0 {
		return nil, fmt.Errorf("rsa: ciphertext out of range")
	}
	return ModExp(c, k.D, k.N, nil)
}

// OnesCount returns the number of 1-bits in the exponent, the quantity
// the timing attack infers.
func OnesCount(e *big.Int) int {
	count := 0
	for _, w := range e.Bits() {
		for ; w != 0; w &= w - 1 {
			count++
		}
	}
	return count
}

// OpCounts returns the number of squares, multiplies and reductions the
// square-and-multiply loop performs for an exponent.
func OpCounts(exp *big.Int) (squares, multiplies, reduces int) {
	bits := exp.BitLen()
	ones := OnesCount(exp)
	return bits, ones, bits + ones
}
