// Package profiler emulates the hardware-counter facilities the paper's
// methodology depends on: nvprof-style per-L2-slice traffic counters in
// "non-aggregated" mode (available on V100) and the aggregated-only mode
// of newer GPUs (A100/H100), where per-slice counters were withdrawn -
// partly in response to side-channel disclosures (Sec. V-A). When only
// aggregate counters exist, address-to-slice mapping must fall back to the
// contention-probe method implemented in package microbench.
package profiler

import (
	"errors"
	"fmt"
	"sync"

	"gpunoc/internal/gpu"
)

// ErrAggregatedOnly is returned when per-slice counters are requested from
// a profiler running in aggregated-only mode.
var ErrAggregatedOnly = errors.New("profiler: per-slice counters unavailable (aggregated mode only)")

// Profiler counts L2 traffic per slice for a device.
// It is safe for concurrent use.
type Profiler struct {
	dev *gpu.Device
	// aggregatedOnly hides per-slice detail, as on A100/H100.
	aggregatedOnly bool

	mu     sync.Mutex
	counts []uint64
	total  uint64
}

// New builds a profiler for the device. Per-slice ("non-aggregated")
// counters are exposed only on generations whose tooling supports them:
// V100 in this model.
func New(dev *gpu.Device) *Profiler {
	return &Profiler{
		dev:            dev,
		aggregatedOnly: dev.Config().Name != gpu.GenV100,
		counts:         make([]uint64, dev.Config().L2Slices),
	}
}

// NewWithMode builds a profiler with an explicit counter mode, for
// what-if studies.
func NewWithMode(dev *gpu.Device, aggregatedOnly bool) *Profiler {
	p := New(dev)
	p.aggregatedOnly = aggregatedOnly
	return p
}

// AggregatedOnly reports whether per-slice counters are hidden.
func (p *Profiler) AggregatedOnly() bool { return p.aggregatedOnly }

// RecordAccess counts one L2 access by SM sm to address addr, attributing
// it to the slice that actually serves it.
func (p *Profiler) RecordAccess(sm int, addr uint64) {
	slice := p.dev.ServingSlice(sm, addr)
	p.mu.Lock()
	p.counts[slice]++
	p.total++
	p.mu.Unlock()
}

// Total returns the aggregate access count, which every mode exposes.
func (p *Profiler) Total() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// SliceCounts returns a copy of the per-slice counters, or
// ErrAggregatedOnly when the mode hides them.
func (p *Profiler) SliceCounts() ([]uint64, error) {
	if p.aggregatedOnly {
		return nil, ErrAggregatedOnly
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, len(p.counts))
	copy(out, p.counts)
	return out, nil
}

// HottestSlice returns the slice with the highest count, or an error in
// aggregated mode or when no accesses were recorded. It is the primitive
// the paper's V100 methodology uses: access one address repeatedly and ask
// the profiler which slice's counter moved. Count ties resolve to the
// lowest slice index, deterministically.
func (p *Profiler) HottestSlice() (int, error) {
	counts, err := p.SliceCounts()
	if err != nil {
		return 0, err
	}
	// Deterministic argmax: strictly-greater keeps the lowest slice
	// index when two slices tie on count, so a probe that heats two
	// slices equally maps to the same slice on every run.
	best, bestCount := -1, uint64(0)
	for s, c := range counts {
		if c > bestCount {
			best, bestCount = s, c
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("profiler: no accesses recorded")
	}
	return best, nil
}

// Reset zeroes all counters.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.counts {
		p.counts[i] = 0
	}
	p.total = 0
}
