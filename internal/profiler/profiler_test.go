package profiler

import (
	"errors"
	"sync"
	"testing"

	"gpunoc/internal/gpu"
)

func TestModeByGeneration(t *testing.T) {
	if New(gpu.MustNew(gpu.V100())).AggregatedOnly() {
		t.Error("V100 profiler should expose per-slice counters")
	}
	if !New(gpu.MustNew(gpu.A100())).AggregatedOnly() {
		t.Error("A100 profiler should be aggregated-only")
	}
	if !New(gpu.MustNew(gpu.H100())).AggregatedOnly() {
		t.Error("H100 profiler should be aggregated-only")
	}
}

func TestRecordAndSliceCounts(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	p := New(dev)
	addr := uint64(0x8000)
	for i := 0; i < 5; i++ {
		p.RecordAccess(0, addr)
	}
	counts, err := p.SliceCounts()
	if err != nil {
		t.Fatal(err)
	}
	want := dev.ServingSlice(0, addr)
	if counts[want] != 5 {
		t.Errorf("slice %d count = %d, want 5", want, counts[want])
	}
	if p.Total() != 5 {
		t.Errorf("total = %d, want 5", p.Total())
	}
	hot, err := p.HottestSlice()
	if err != nil {
		t.Fatal(err)
	}
	if hot != want {
		t.Errorf("hottest = %d, want %d", hot, want)
	}
}

func TestAggregatedHidesSlices(t *testing.T) {
	p := New(gpu.MustNew(gpu.A100()))
	p.RecordAccess(0, 0x100)
	if _, err := p.SliceCounts(); !errors.Is(err, ErrAggregatedOnly) {
		t.Errorf("want ErrAggregatedOnly, got %v", err)
	}
	if _, err := p.HottestSlice(); !errors.Is(err, ErrAggregatedOnly) {
		t.Errorf("want ErrAggregatedOnly, got %v", err)
	}
	if p.Total() != 1 {
		t.Error("aggregate count must still work")
	}
}

func TestNewWithModeOverride(t *testing.T) {
	p := NewWithMode(gpu.MustNew(gpu.A100()), false)
	if p.AggregatedOnly() {
		t.Error("override should enable per-slice counters")
	}
	p.RecordAccess(0, 0)
	if _, err := p.SliceCounts(); err != nil {
		t.Errorf("per-slice counts should work: %v", err)
	}
}

func TestHottestSliceEmpty(t *testing.T) {
	p := New(gpu.MustNew(gpu.V100()))
	if _, err := p.HottestSlice(); err == nil {
		t.Error("empty profiler should error")
	}
}

func TestReset(t *testing.T) {
	p := New(gpu.MustNew(gpu.V100()))
	p.RecordAccess(0, 0x42)
	p.Reset()
	if p.Total() != 0 {
		t.Error("reset should zero totals")
	}
	counts, err := p.SliceCounts()
	if err != nil {
		t.Fatal(err)
	}
	for s, c := range counts {
		if c != 0 {
			t.Errorf("slice %d count %d after reset", s, c)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	p := New(dev)
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p.RecordAccess(w, uint64(i)*128)
			}
		}(w)
	}
	wg.Wait()
	if p.Total() != workers*each {
		t.Errorf("total = %d, want %d", p.Total(), workers*each)
	}
	counts, err := p.SliceCounts()
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != workers*each {
		t.Errorf("per-slice sum = %d, want %d", sum, workers*each)
	}
}

// TestHottestSliceTieBreak drives two slices to exactly equal counts and
// demands the lower-indexed one win. The contention-probe methodology
// asks "which counter moved most?" thousands of times; a tie broken
// nondeterministically would make slice maps differ run to run.
func TestHottestSliceTieBreak(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	p := New(dev)

	// Find addresses served by two distinct slices (scanning line-sized
	// strides from SM 0 covers the hash quickly), heat them equally.
	sliceA := dev.ServingSlice(0, 0)
	sliceB, addrB := -1, uint64(0)
	for a := uint64(128); a < 1<<20; a += 128 {
		if s := dev.ServingSlice(0, a); s != sliceA {
			sliceB, addrB = s, a
			break
		}
	}
	if sliceB < 0 {
		t.Fatal("could not find a second slice")
	}
	for i := 0; i < 4; i++ {
		p.RecordAccess(0, 0)
		p.RecordAccess(0, addrB)
	}
	hot, err := p.HottestSlice()
	if err != nil {
		t.Fatal(err)
	}
	want := sliceA
	if sliceB < sliceA {
		want = sliceB
	}
	if hot != want {
		t.Errorf("HottestSlice = %d, want the lowest tied index %d (tie between %d and %d)", hot, want, sliceA, sliceB)
	}

	// The same invariant holds when the tie is constructed directly on
	// the counters, independent of the address hash.
	p.Reset()
	p.mu.Lock()
	p.counts[5] = 9
	p.counts[2] = 9
	p.counts[7] = 4
	p.total = 22
	p.mu.Unlock()
	hot, err = p.HottestSlice()
	if err != nil {
		t.Fatal(err)
	}
	if hot != 2 {
		t.Errorf("HottestSlice = %d, want 2 (lowest index among tied counts)", hot)
	}
}
