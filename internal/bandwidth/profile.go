// Package bandwidth models the GPU's on-chip bandwidth hierarchy (the
// paper's Section IV and Fig. 11): per-SM memory-level parallelism, TPC /
// CPC / GPC input speedups, the GPC-to-NoC trunk with its per-slot buses
// and per-MP spatial ports, the inter-partition link, L2 slice ports, and
// DRAM channels.
//
// Steady-state bandwidth is computed with a multi-class closed
// queueing-network model solved by Schweitzer approximate Mean Value
// Analysis. Each SM's in-flight cache lines are the circulating customers,
// the round-trip NoC latency (from package gpu's floorplan model) is the
// think time, and every shared link is a queueing station. This single
// mechanism produces the paper's bandwidth observations: Little's-law
// limited single-SM bandwidth (Fig. 9b, 12), smooth slice saturation with
// SM count (Fig. 14), hierarchical input speedups including "speedup in
// space" (Fig. 10, 15), and near/far partition asymmetry (Fig. 12, 13).
package bandwidth

import (
	"fmt"

	"gpunoc/internal/gpu"
	"gpunoc/internal/units"
)

// Profile holds the capacity calibration of one GPU generation. All
// capacities are GB/s (1e9 bytes per second).
type Profile struct {
	// MLPLines and MLPWriteLines are the cache-line-sized requests one SM
	// keeps in flight for reads and writes (its MSHR/LSU depth). These are
	// the closed-network populations; dividing by round-trip latency gives
	// the latency-limited bandwidth of Little's law.
	MLPLines      int
	MLPWriteLines int

	// MLPPerSliceLines caps the in-flight lines one SM can direct at a
	// single L2 slice (per-target MSHR/queue slots). A flow's effective
	// population is min(MLPLines, MLPPerSliceLines * targets), which lets
	// spread traffic sustain more outstanding requests than single-slice
	// streams - the reason A100's aggregate per-SM bandwidth exceeds its
	// single-slice bandwidth in the paper's data (Fig. 9a vs Fig. 12).
	MLPPerSliceLines int

	// SMReadGBs / SMWriteGBs cap a single SM's reply (read) and request
	// (write) port.
	SMReadGBs, SMWriteGBs units.GBps

	// TPCReadGBs / TPCWriteGBs cap the shared TPC port. The ratio
	// TPCWriteGBs / single-SM write bandwidth is the paper's TPC write
	// speedup (1.09x on V100, 2x on A100/H100).
	TPCReadGBs, TPCWriteGBs units.GBps

	// CPCReadGBs / CPCWriteGBs cap the H100 CPC stage (0 disables it).
	// The paper finds CPC reads unconstrained but CPC writes limited to a
	// ~4.6x speedup out of the 6 SMs.
	CPCReadGBs, CPCWriteGBs units.GBps

	// SlotBusGBs caps one of the GPC's per-SM-slot ingress buses. SMs of
	// even local index share slot bus 0, odd share bus 1. This realizes
	// the paper's observation that some GPC speedup is provided "in space
	// (additional connectivity) and not entirely in time": one SM per TPC
	// rides a single bus, while using both SMs of each TPC engages both.
	SlotBusGBs      units.GBps
	SlotBusWriteGBs units.GBps

	// GPCTrunkGBs caps a GPC's total traffic into the NoC.
	GPCTrunkGBs units.GBps

	// GPCMPPortGBs caps the spatial port from one GPC toward one MP
	// (Fig. 15c: going from 1 to 4 destination MPs engages more ports).
	GPCMPPortGBs units.GBps

	// PartitionLinkGBs caps one direction of the inter-partition
	// interconnect (0 means no partitions / unlimited).
	PartitionLinkGBs units.GBps

	// MPPortGBs caps the NoC-to-MP input port (the L2 input speedup stage;
	// near-ideal per Fig. 15a).
	MPPortGBs units.GBps

	// SliceGBs caps one L2 slice's data port.
	SliceGBs units.GBps

	// MemChannelGBs caps one memory partition's DRAM channel, already
	// derated by achievable DRAM efficiency (the paper measures 85-90% of
	// peak; see MemEfficiency).
	MemChannelGBs units.GBps

	// MemEfficiency is the achievable fraction of peak DRAM bandwidth.
	MemEfficiency float64
}

// Validate checks that required capacities are positive.
func (p Profile) Validate() error {
	if p.MLPLines <= 0 || p.MLPWriteLines <= 0 || p.MLPPerSliceLines <= 0 {
		return fmt.Errorf("bandwidth: non-positive MLP")
	}
	for _, c := range []struct {
		name string
		v    units.GBps
	}{
		{"SMRead", p.SMReadGBs}, {"SMWrite", p.SMWriteGBs},
		{"TPCRead", p.TPCReadGBs}, {"TPCWrite", p.TPCWriteGBs},
		{"SlotBus", p.SlotBusGBs}, {"SlotBusWrite", p.SlotBusWriteGBs},
		{"GPCTrunk", p.GPCTrunkGBs}, {"GPCMPPort", p.GPCMPPortGBs},
		{"MPPort", p.MPPortGBs}, {"Slice", p.SliceGBs}, {"MemChannel", p.MemChannelGBs},
	} {
		if c.v <= 0 {
			return fmt.Errorf("bandwidth: non-positive capacity %s", c.name)
		}
	}
	if p.MemEfficiency <= 0 || p.MemEfficiency > 1 {
		return fmt.Errorf("bandwidth: MemEfficiency %v outside (0, 1]", p.MemEfficiency)
	}
	return nil
}

// ProfileFor returns the calibrated capacity profile of a generation.
// Calibration targets (see EXPERIMENTS.md): V100 single-SM-to-slice
// ~34 GB/s and GPC-to-slice ~85 GB/s; A100 near/far single-SM ~39.5/26
// GB/s; aggregate L2 fabric 2.4-3.5x off-chip bandwidth; memory
// utilization 85-90% of peak.
func ProfileFor(cfg gpu.Config) (Profile, error) {
	switch cfg.Name {
	case gpu.GenV100:
		return Profile{
			MLPLines: 42, MLPWriteLines: 40, MLPPerSliceLines: 42,
			SMReadGBs: 55, SMWriteGBs: 40,
			TPCReadGBs: 110, TPCWriteGBs: 29,
			SlotBusGBs: 185, SlotBusWriteGBs: 130,
			GPCTrunkGBs:  360,
			GPCMPPortGBs: 85,
			MPPortGBs:    340,
			SliceGBs:     85,
			// 900 GB/s peak over 8 channels at 88% efficiency.
			MemChannelGBs: 900.0 / 8 * 0.88,
			MemEfficiency: 0.88,
		}, nil
	case gpu.GenA100:
		return Profile{
			MLPLines: 80, MLPWriteLines: 64, MLPPerSliceLines: 48,
			SMReadGBs: 62, SMWriteGBs: 50,
			TPCReadGBs: 124, TPCWriteGBs: 100,
			SlotBusGBs: 300, SlotBusWriteGBs: 220,
			GPCTrunkGBs:      583,
			GPCMPPortGBs:     260,
			PartitionLinkGBs: 1200,
			MPPortGBs:        1000,
			SliceGBs:         240,
			MemChannelGBs:    1555.0 / 10 * 0.89,
			MemEfficiency:    0.89,
		}, nil
	case gpu.GenH100:
		return Profile{
			MLPLines: 128, MLPWriteLines: 96, MLPPerSliceLines: 80,
			SMReadGBs: 95, SMWriteGBs: 55,
			TPCReadGBs: 190, TPCWriteGBs: 110,
			CPCReadGBs: 580, CPCWriteGBs: 230, // write speedup ~4.6x of 6 SMs
			SlotBusGBs: 760, SlotBusWriteGBs: 520,
			GPCTrunkGBs:      1466,
			GPCMPPortGBs:     320,
			PartitionLinkGBs: 2000,
			MPPortGBs:        2400,
			SliceGBs:         300,
			MemChannelGBs:    3350.0 / 10 * 0.89,
			MemEfficiency:    0.89,
		}, nil
	}
	return Profile{}, fmt.Errorf("bandwidth: no profile for generation %q", cfg.Name)
}
