package bandwidth

import (
	"fmt"

	"gpunoc/internal/gpu"
)

// DeriveProfile synthesizes a capacity profile for a non-canonical (e.g.
// gpu.Custom) configuration from its headline numbers, applying the
// provisioning rules the paper's implications prescribe: the aggregate
// fabric is L2FabricFactor x memory bandwidth, split across GPC trunks;
// input speedup exists at every level; the NoC-MEM interface exceeds what
// the slices can sink; and DRAM is derated to achievable efficiency.
// Canonical generations should keep using their hand-calibrated
// ProfileFor values.
func DeriveProfile(cfg gpu.Config) (Profile, error) {
	if err := cfg.Validate(); err != nil {
		return Profile{}, err
	}
	fabric := cfg.MemBWGBs.Scale(cfg.L2FabricFactor)
	trunk := fabric.Scale(1 / float64(cfg.GPCs))
	slice := fabric.Scale(1.25 / float64(cfg.L2Slices))
	smRead := trunk.Scale(1.1 / float64(cfg.SMsPerGPC()))
	p := Profile{
		MLPLines: 96, MLPWriteLines: 72, MLPPerSliceLines: 48,
		SMReadGBs:  smRead,
		SMWriteGBs: 0.7 * smRead,
		TPCReadGBs: 2 * smRead, TPCWriteGBs: 1.4 * smRead,
		SlotBusGBs: 0.52 * trunk, SlotBusWriteGBs: 0.36 * trunk,
		GPCTrunkGBs:   trunk,
		GPCMPPortGBs:  trunk / 4,
		MPPortGBs:     slice.Scale(1.1 * float64(cfg.SlicesPerMP())),
		SliceGBs:      slice,
		MemChannelGBs: cfg.MemBWGBs.Scale(0.88 / float64(cfg.MPs)),
		MemEfficiency: 0.88,
	}
	if cfg.CPCsPerGPC > 0 {
		p.CPCReadGBs = 6.5 * smRead
		p.CPCWriteGBs = 4.6 * 0.7 * smRead
	}
	if cfg.Partitions > 1 {
		p.PartitionLinkGBs = fabric / 4
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("bandwidth: derived profile invalid: %w", err)
	}
	return p, nil
}

// ProfileOrDerive returns the hand-calibrated profile for canonical
// generations and a derived one otherwise.
func ProfileOrDerive(cfg gpu.Config) (Profile, error) {
	if p, err := ProfileFor(cfg); err == nil {
		return p, nil
	}
	return DeriveProfile(cfg)
}
