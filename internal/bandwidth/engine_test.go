package bandwidth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpunoc/internal/gpu"
	"gpunoc/internal/stats"
)

func engineFor(t *testing.T, cfg gpu.Config) *Engine {
	t.Helper()
	dev, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(dev)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func allSlices(cfg gpu.Config) []int {
	s := make([]int, cfg.L2Slices)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestProfileForAllGenerations(t *testing.T) {
	for _, cfg := range gpu.AllConfigs() {
		p, err := ProfileFor(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if _, err := ProfileFor(gpu.Config{Name: "T4"}); err == nil {
		t.Error("unknown generation should error")
	}
}

func TestProfileValidateRejectsBadValues(t *testing.T) {
	good, _ := ProfileFor(gpu.V100())
	muts := []func(*Profile){
		func(p *Profile) { p.MLPLines = 0 },
		func(p *Profile) { p.MLPPerSliceLines = 0 },
		func(p *Profile) { p.SMReadGBs = 0 },
		func(p *Profile) { p.SliceGBs = -1 },
		func(p *Profile) { p.MemEfficiency = 0 },
		func(p *Profile) { p.MemEfficiency = 1.5 },
	}
	for i, mut := range muts {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestSolveInputValidation(t *testing.T) {
	e := engineFor(t, gpu.V100())
	cases := []struct {
		name  string
		flows []Flow
	}{
		{"empty", nil},
		{"bad sm", []Flow{{SM: -1, Slices: []int{0}}}},
		{"sm range", []Flow{{SM: 999, Slices: []int{0}}}},
		{"no slices", []Flow{{SM: 0}}},
		{"bad slice", []Flow{{SM: 0, Slices: []int{99}}}},
	}
	for _, c := range cases {
		if _, err := e.Solve(c.flows); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// Fig. 9(b): a single V100 SM to a single L2 slice achieves ~34 GB/s
// (latency-limited), with a tight distribution across SM/slice pairs.
func TestV100SingleSMSliceBandwidth(t *testing.T) {
	e := engineFor(t, gpu.V100())
	var xs []float64
	for sm := 0; sm < 84; sm += 6 {
		for s := 0; s < 32; s += 4 {
			r, err := e.Solve([]Flow{{SM: sm, Slices: []int{s}}})
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, float64(r.TotalGBs))
		}
	}
	sum := stats.Summarize(xs)
	if sum.Mean < 28 || sum.Mean > 38 {
		t.Errorf("single SM->slice mean %.1f GB/s outside [28, 38] (paper ~34)", sum.Mean)
	}
	if sum.StdDev > 3 {
		t.Errorf("single SM->slice σ %.2f too wide (paper 0.147; bandwidth is near-uniform)", sum.StdDev)
	}
	if sum.StdDev/sum.Mean > 0.1 {
		t.Errorf("relative spread %.2f%% too wide for Observation #8", 100*sum.StdDev/sum.Mean)
	}
}

// Fig. 9(c): all 14 SMs of a V100 GPC to one slice achieve ~85 GB/s.
func TestV100GPCToSliceBandwidth(t *testing.T) {
	e := engineFor(t, gpu.V100())
	dev := e.Device()
	var xs []float64
	for gpc := 0; gpc < 6; gpc++ {
		var flows []Flow
		for _, sm := range dev.SMsOfGPC(gpc) {
			flows = append(flows, Flow{SM: sm, Slices: []int{7}})
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, float64(r.TotalGBs))
	}
	sum := stats.Summarize(xs)
	if sum.Mean < 78 || sum.Mean > 90 {
		t.Errorf("GPC->slice mean %.1f GB/s outside [78, 90] (paper ~85)", sum.Mean)
	}
	if sum.StdDev/sum.Mean > 0.05 {
		t.Errorf("GPC->slice relative spread %.2f%% too wide", 100*sum.StdDev/sum.Mean)
	}
}

// Fig. 9(c) corollary: saturating one V100 slice takes a minimum of ~4 SMs.
func TestV100SliceSaturationPoint(t *testing.T) {
	e := engineFor(t, gpu.V100())
	dev := e.Device()
	sms := dev.SMsOfGPC(0)
	bw := func(n int) float64 {
		flows := make([]Flow, n)
		for i := 0; i < n; i++ {
			flows[i] = Flow{SM: sms[i], Slices: []int{3}}
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalGBs)
	}
	sat := bw(8)
	if bw(2) > 0.85*sat {
		t.Errorf("2 SMs reach %.0f of %.0f; saturation should need ~4", bw(2), sat)
	}
	if bw(4) < 0.93*sat {
		t.Errorf("4 SMs reach only %.0f of %.0f; paper says 4 SMs saturate", bw(4), sat)
	}
	// Monotone in SM count.
	prev := 0.0
	for n := 1; n <= 8; n++ {
		cur := bw(n)
		if cur+1e-9 < prev {
			t.Errorf("bandwidth decreased adding SMs: n=%d %.1f < %.1f", n, cur, prev)
		}
		prev = cur
	}
}

// Observation #7 / Fig. 9(a): aggregate L2 fabric bandwidth exceeds
// off-chip memory bandwidth by 2.4x-3.5x, and memory utilization reaches
// 85-90% of peak.
func TestAggregateFabricVsMemory(t *testing.T) {
	want := map[gpu.Generation][2]float64{
		gpu.GenV100: {2.1, 2.6},
		gpu.GenA100: {2.7, 3.2},
		gpu.GenH100: {3.2, 3.6},
	}
	for _, cfg := range gpu.AllConfigs() {
		e := engineFor(t, cfg)
		slices := allSlices(cfg)
		flows := make([]Flow, cfg.SMs())
		for sm := range flows {
			flows[sm] = Flow{SM: sm, Slices: slices}
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		factor := float64(r.TotalGBs / cfg.MemBWGBs)
		w := want[cfg.Name]
		if factor < w[0] || factor > w[1] {
			t.Errorf("%s aggregate fabric %.0f GB/s = %.2fx mem, want [%.1f, %.1f]",
				cfg.Name, r.TotalGBs, factor, w[0], w[1])
		}

		for i := range flows {
			flows[i].DRAM = true
		}
		rm, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		frac := float64(rm.TotalGBs / cfg.MemBWGBs)
		if frac < 0.80 || frac > 0.95 {
			t.Errorf("%s memory utilization %.0f%% of peak, want 80-95%% (paper 85-90%%)", cfg.Name, frac*100)
		}
		if rm.TotalGBs >= r.TotalGBs {
			t.Errorf("%s memory BW %.0f should be below fabric BW %.0f", cfg.Name, rm.TotalGBs, r.TotalGBs)
		}
	}
}

// Fig. 10: hierarchical input speedups.
func TestInputSpeedups(t *testing.T) {
	for _, cfg := range gpu.AllConfigs() {
		e := engineFor(t, cfg)
		dev := e.Device()
		slices := allSlices(cfg)
		solve := func(fl []Flow) float64 {
			r, err := e.Solve(fl)
			if err != nil {
				t.Fatal(err)
			}
			return float64(r.TotalGBs)
		}
		speedup := func(sms []int, write bool) float64 {
			single := solve([]Flow{{SM: sms[0], Slices: slices, Write: write}})
			flows := make([]Flow, len(sms))
			for i, sm := range sms {
				flows[i] = Flow{SM: sm, Slices: slices, Write: write}
			}
			return solve(flows) / single
		}

		// TPC read speedup is ~2 on every generation.
		tpcSMs := dev.SMsOfTPC(0, 0)
		if s := speedup(tpcSMs, false); s < 1.85 || s > 2.05 {
			t.Errorf("%s TPC read speedup %.2f, want ~2", cfg.Name, s)
		}
		// TPC write speedup: ~1.1 on V100, ~2 on A100/H100.
		ws := speedup(tpcSMs, true)
		if cfg.Name == gpu.GenV100 {
			if ws < 1.0 || ws > 1.3 {
				t.Errorf("V100 TPC write speedup %.2f, want ~1.09", ws)
			}
		} else if ws < 1.7 {
			t.Errorf("%s TPC write speedup %.2f, want ~2", cfg.Name, ws)
		}

		// GPC-local (one SM per TPC) vs GPC-global (all SMs): global
		// provides additional speedup (Observation #9).
		var local, global []int
		for tpc := 0; tpc < cfg.TPCsPerGPC; tpc++ {
			local = append(local, dev.SMsOfTPC(0, tpc)[0])
		}
		global = dev.SMsOfGPC(0)
		ls, gs := speedup(local, false), speedup(global, false)
		if gs <= ls {
			t.Errorf("%s GPCg speedup %.2f should exceed GPCl %.2f", cfg.Name, gs, ls)
		}
		if ls >= float64(cfg.TPCsPerGPC) {
			t.Errorf("%s GPCl speedup %.2f should be below the full %d", cfg.Name, ls, cfg.TPCsPerGPC)
		}
	}
}

// Fig. 10 (H100): CPC reads are unconstrained, CPC writes cap near 4.6x.
func TestH100CPCSpeedup(t *testing.T) {
	e := engineFor(t, gpu.H100())
	dev := e.Device()
	cfg := dev.Config()
	slices := allSlices(cfg)
	sms := dev.SMsOfCPC(0, 0)
	run := func(write bool) float64 {
		single, err := e.Solve([]Flow{{SM: sms[0], Slices: slices, Write: write}})
		if err != nil {
			t.Fatal(err)
		}
		flows := make([]Flow, len(sms))
		for i, sm := range sms {
			flows[i] = Flow{SM: sm, Slices: slices, Write: write}
		}
		all, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		return float64(all.TotalGBs / single.TotalGBs)
	}
	if rs := run(false); rs < 5.3 {
		t.Errorf("H100 CPC read speedup %.2f; paper finds no read impact (~6)", rs)
	}
	ws := run(true)
	if ws < 3.8 || ws > 5.2 {
		t.Errorf("H100 CPC write speedup %.2f, want ~4.6", ws)
	}
}

// Fig. 12: A100 near-partition slices reach ~39.5 GB/s from one SM while
// far slices drop toward ~26 GB/s, and the pattern swaps across partitions.
func TestA100NearFarBandwidth(t *testing.T) {
	e := engineFor(t, gpu.A100())
	bw := func(sm, slice int) float64 {
		r, err := e.Solve([]Flow{{SM: sm, Slices: []int{slice}}})
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalGBs)
	}
	smLeft := 0  // GPC0, partition 0
	smRight := 4 // GPC4, partition 1
	nearL, farL := bw(smLeft, 0), bw(smLeft, 9)
	if nearL < 35 || nearL > 45 {
		t.Errorf("A100 near bandwidth %.1f outside [35, 45] (paper 39.5)", nearL)
	}
	if farL >= nearL*0.75 {
		t.Errorf("A100 far bandwidth %.1f not at least 25%% below near %.1f", farL, nearL)
	}
	// Swap for the other partition: SM4 (GPC4, leftmost column of
	// partition 1) mirrors SM0, so its nearest MP is MP5 (slice 5).
	nearR, farR := bw(smRight, 5), bw(smRight, 0)
	if nearR < 34 || farR >= nearR*0.75 {
		t.Errorf("A100 partition-1 SM should see mirrored near/far: near=%.1f far=%.1f", nearR, farR)
	}
}

// Fig. 13: single-slice bandwidth over all SMs is bimodal on A100 (near
// and far peaks) but unimodal on H100 (partition-local caching).
func TestSliceBandwidthModality(t *testing.T) {
	sample := func(cfg gpu.Config, slice int) []float64 {
		e := engineFor(t, cfg)
		var xs []float64
		for sm := 0; sm < cfg.SMs(); sm += 2 {
			r, err := e.Solve([]Flow{{SM: sm, Slices: []int{slice}}})
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, float64(r.TotalGBs))
		}
		return xs
	}
	// A100: two well-separated modes (near and far partitions) produce a
	// wide distribution with >= 2 histogram peaks.
	a := sample(gpu.A100(), 0)
	if cv := stats.StdDev(a) / stats.Mean(a); cv < 0.2 {
		t.Errorf("A100 slice-bandwidth CV %.2f too small for a bimodal split", cv)
	}
	if peaks := len(stats.HistogramOf(a, 12).Peaks(0.3)); peaks < 2 {
		t.Errorf("A100 slice-bandwidth distribution has %d peak(s), want bimodal", peaks)
	}
	// H100: partition-local caching keeps every SM near; one tight mode.
	h := sample(gpu.H100(), 0)
	if cv := stats.StdDev(h) / stats.Mean(h); cv > 0.1 {
		t.Errorf("H100 slice-bandwidth CV %.2f; local caching should keep it tight", cv)
	}
}

// Fig. 14: A100 slice bandwidth saturates around 8 SMs regardless of
// near/far, but at low SM counts far trails near (Little's law).
func TestA100SaturationCurve(t *testing.T) {
	e := engineFor(t, gpu.A100())
	dev := e.Device()
	sms := dev.SMsOfGPC(0)
	curve := func(slice int, n int) float64 {
		flows := make([]Flow, n)
		for i := 0; i < n; i++ {
			flows[i] = Flow{SM: sms[i], Slices: []int{slice}}
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalGBs)
	}
	nearSat := curve(0, 14)
	if n8 := curve(0, 8); n8 < 0.95*nearSat {
		t.Errorf("near: 8 SMs reach %.0f of %.0f; paper saturates ~8 SMs", n8, nearSat)
	}
	// Far trails near at 1-2 SMs by >= 25%.
	for n := 1; n <= 2; n++ {
		near, far := curve(0, n), curve(9, n)
		if far >= near*0.75 {
			t.Errorf("far bandwidth %.1f at n=%d not at least 25%% below near %.1f", far, n, near)
		}
	}
	// Far eventually converges to the same saturated value.
	farSat := curve(9, 16)
	if farSat < 0.9*nearSat {
		t.Errorf("far saturated %.0f should approach near saturated %.0f", farSat, nearSat)
	}
}

// Fig. 15: placement sweeps on V100.
func TestV100PlacementEffects(t *testing.T) {
	e := engineFor(t, gpu.V100())
	dev := e.Device()
	cfg := dev.Config()

	// (a) all SMs to N slices, contiguous (same MP) vs distributed
	// (across MPs): minimal difference (ideal L2 input speedup).
	allSMFlows := func(slices []int) float64 {
		flows := make([]Flow, cfg.SMs())
		for sm := range flows {
			flows[sm] = Flow{SM: sm, Slices: slices}
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalGBs)
	}
	contigMP := dev.SlicesOfMP(0)  // 4 slices, one MP
	distribMP := []int{0, 1, 2, 3} // 4 slices, four MPs
	c, d := allSMFlows(contigMP), allSMFlows(distribMP)
	if rel := (d - c) / d; rel > 0.25 || rel < -0.1 {
		t.Errorf("contiguous vs distributed MP differ by %.0f%%; paper finds minimal difference", rel*100)
	}

	// (b) N SMs to one MP: contiguous SMs (few GPCs) degrade versus
	// distributed SMs (all GPCs) - paper ~62% at 28 SMs.
	oneMP := dev.SlicesOfMP(0)
	nsm := 28
	contigSM := append(append([]int{}, dev.SMsOfGPC(0)...), dev.SMsOfGPC(1)...)
	var distribSM []int
	for i := 0; len(distribSM) < nsm; i++ {
		distribSM = append(distribSM, i)
	}
	run := func(sms []int) float64 {
		flows := make([]Flow, len(sms))
		for i, sm := range sms {
			flows[i] = Flow{SM: sm, Slices: oneMP}
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalGBs)
	}
	cb, db := run(contigSM[:nsm]), run(distribSM)
	if loss := 1 - cb/db; loss < 0.35 {
		t.Errorf("contiguous-SM degradation %.0f%%, want >= 35%% (paper ~62%%)", loss*100)
	}

	// (c) 14 contiguous SMs: widening from 1 MP to 4 MPs engages more
	// spatial ports (paper +218%); distributed SMs see a small effect.
	mps := func(n int) []int {
		var s []int
		for mp := 0; mp < n; mp++ {
			s = append(s, dev.SlicesOfMP(mp)...)
		}
		return s
	}
	run14 := func(sms []int, slices []int) float64 {
		flows := make([]Flow, 14)
		for i := 0; i < 14; i++ {
			flows[i] = Flow{SM: sms[i], Slices: slices}
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalGBs)
	}
	contig14 := dev.SMsOfGPC(0)
	gain := run14(contig14, mps(4))/run14(contig14, mps(1)) - 1
	if gain < 1.0 {
		t.Errorf("contiguous-SM gain from 1->4 MPs = +%.0f%%, want >= +100%% (paper +218%%)", gain*100)
	}
	distrib14 := distribSM[:14]
	dgain := run14(distrib14, mps(4))/run14(distrib14, mps(1)) - 1
	if dgain > gain/2 {
		t.Errorf("distributed-SM gain +%.0f%% should be well below contiguous +%.0f%%", dgain*100, gain*100)
	}
}

// Property: adding a flow never increases any existing flow's bandwidth
// beyond solver tolerance, and per-flow bandwidths are positive and capped
// by the SM port.
func TestSolvePropertySanity(t *testing.T) {
	e := engineFor(t, gpu.V100())
	cfg := e.Device().Config()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		flows := make([]Flow, n)
		for i := range flows {
			k := 1 + rng.Intn(4)
			slices := make([]int, k)
			for j := range slices {
				slices[j] = rng.Intn(cfg.L2Slices)
			}
			flows[i] = Flow{SM: rng.Intn(cfg.SMs()), Slices: slices, Write: rng.Intn(2) == 0}
		}
		r, err := e.Solve(flows)
		if err != nil {
			return false
		}
		for _, bw := range r.PerFlowGBs {
			if bw <= 0 || bw > e.Profile().SMReadGBs+1 {
				return false
			}
		}
		for _, u := range r.Utilization {
			if u < 0 || u > 1.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNewEngineWithProfileValidates(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	if _, err := NewEngineWithProfile(dev, Profile{}); err == nil {
		t.Error("empty profile should fail")
	}
}

func TestTopUtilized(t *testing.T) {
	e := engineFor(t, gpu.V100())
	r, err := e.Solve([]Flow{{SM: 0, Slices: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	top := r.TopUtilized(3)
	if len(top) != 3 {
		t.Fatalf("TopUtilized(3) returned %d entries", len(top))
	}
	if all := r.TopUtilized(1000); len(all) != len(r.Utilization) {
		t.Errorf("TopUtilized(1000) should clamp to %d", len(r.Utilization))
	}
}

// Property: raising any single capacity never lowers total bandwidth
// (the queueing model is monotone in capacities).
func TestSolvePropertyCapacityMonotone(t *testing.T) {
	dev, err := gpu.New(gpu.V100())
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{
		{SM: 0, Slices: []int{0, 1, 2}},
		{SM: 6, Slices: []int{0}},
		{SM: 1, Slices: []int{5, 9}, Write: true},
	}
	base, err := ProfileFor(dev.Config())
	if err != nil {
		t.Fatal(err)
	}
	solve := func(p Profile) float64 {
		e, err := NewEngineWithProfile(dev, p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.TotalGBs)
	}
	baseline := solve(base)
	bumps := []func(*Profile){
		func(p *Profile) { p.SMReadGBs *= 2 },
		func(p *Profile) { p.TPCReadGBs *= 2 },
		func(p *Profile) { p.SlotBusGBs *= 2 },
		func(p *Profile) { p.GPCTrunkGBs *= 2 },
		func(p *Profile) { p.SliceGBs *= 2 },
		func(p *Profile) { p.MLPLines *= 2; p.MLPPerSliceLines *= 2 },
	}
	for i, bump := range bumps {
		p := base
		bump(&p)
		if got := solve(p); got < baseline*0.999 {
			t.Errorf("bump %d lowered total bandwidth: %.2f -> %.2f", i, baseline, got)
		}
	}
}

// Property: adding a competing flow never increases the existing flows'
// aggregate bandwidth.
func TestSolvePropertyContentionMonotone(t *testing.T) {
	e := engineFor(t, gpu.V100())
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(5)
		flows := make([]Flow, n)
		for i := range flows {
			flows[i] = Flow{SM: rng.Intn(84), Slices: []int{rng.Intn(32)}}
		}
		before, err := e.Solve(flows)
		if err != nil {
			t.Fatal(err)
		}
		extra := append(append([]Flow{}, flows...), Flow{SM: rng.Intn(84), Slices: []int{flows[0].Slices[0]}})
		after, err := e.Solve(extra)
		if err != nil {
			t.Fatal(err)
		}
		var sumBefore, sumAfter float64
		for i := 0; i < n; i++ {
			sumBefore += float64(before.PerFlowGBs[i])
			sumAfter += float64(after.PerFlowGBs[i])
		}
		if sumAfter > sumBefore*1.01 {
			t.Errorf("trial %d: adding contention raised existing flows %.2f -> %.2f", trial, sumBefore, sumAfter)
		}
	}
}

// Property: no slice ever carries more than its port capacity.
func TestSolvePropertySliceCapRespected(t *testing.T) {
	e := engineFor(t, gpu.V100())
	dev := e.Device()
	var flows []Flow
	for _, sm := range dev.SMsOfGPC(0) {
		flows = append(flows, Flow{SM: sm, Slices: []int{4}})
	}
	for _, sm := range dev.SMsOfGPC(2) {
		flows = append(flows, Flow{SM: sm, Slices: []int{4}})
	}
	r, err := e.Solve(flows)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalGBs > e.Profile().SliceGBs*1.01 {
		t.Errorf("slice 4 carries %.1f GB/s, cap is %.1f", r.TotalGBs, e.Profile().SliceGBs)
	}
}

// A custom (non-canonical) generation gets a derived profile that keeps
// the paper's provisioning invariants: fabric exceeds memory, memory is
// ~88% achievable, slice bandwidth is near-uniform.
func TestDerivedProfileForCustomGeneration(t *testing.T) {
	cfg, err := gpu.Custom(gpu.CustomSpec{
		Name: "X200", GPCs: 10, TPCsPerGPC: 8, Partitions: 2,
		L2Slices: 100, MPs: 10, MemBWGBs: 5000, L2FabricFactor: 3.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileFor(cfg); err == nil {
		t.Fatal("custom generation should not have a canonical profile")
	}
	dev, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(dev) // falls back to DeriveProfile
	if err != nil {
		t.Fatal(err)
	}
	slices := allSlices(cfg)
	flows := make([]Flow, cfg.SMs())
	for sm := range flows {
		flows[sm] = Flow{SM: sm, Slices: slices}
	}
	fabric, err := e.Solve(flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		flows[i].DRAM = true
	}
	mem, err := e.Solve(flows)
	if err != nil {
		t.Fatal(err)
	}
	if fabric.TotalGBs < 1.5*mem.TotalGBs {
		t.Errorf("derived fabric %.0f should well exceed memory %.0f", fabric.TotalGBs, mem.TotalGBs)
	}
	if frac := float64(mem.TotalGBs / cfg.MemBWGBs); frac < 0.7 || frac > 0.95 {
		t.Errorf("derived memory utilization %.0f%% outside plausible band", frac*100)
	}
	// Per-slice uniformity still holds on the derived profile.
	a, err := e.Solve([]Flow{{SM: 0, Slices: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Solve([]Flow{{SM: 0, Slices: []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if r := float64(a.TotalGBs / b.TotalGBs); r < 0.8 || r > 1.25 {
		t.Errorf("near-slice bandwidths should be comparable: %.1f vs %.1f", a.TotalGBs, b.TotalGBs)
	}
}

func TestDeriveProfileValidation(t *testing.T) {
	if _, err := DeriveProfile(gpu.Config{}); err == nil {
		t.Error("invalid config should fail")
	}
	if p, err := ProfileOrDerive(gpu.V100()); err != nil || p.SliceGBs != 85 {
		t.Errorf("canonical generation should keep its hand calibration: %v %v", p.SliceGBs, err)
	}
}
