package bandwidth

import (
	"fmt"
	"math"
	"sort"

	"gpunoc/internal/gpu"
	"gpunoc/internal/units"
)

// Flow is one traffic class in the closed queueing network: a single SM
// streaming cache-line requests to a set of L2 slices, mirroring one
// thread block of the paper's Algorithm 2.
type Flow struct {
	// SM is the source streaming multiprocessor.
	SM int
	// Slices is the destination L2 slice set; accesses spread uniformly
	// over it. Must be nonempty.
	Slices []int
	// Write marks a write-streaming flow (request-side bandwidth binds).
	Write bool
	// DRAM marks a flow whose accesses miss in L2 and are serviced by the
	// home memory channel (for off-chip bandwidth measurements).
	DRAM bool
}

// Result reports the solved steady state.
type Result struct {
	// PerFlowGBs is the achieved bandwidth of each flow, in input order.
	PerFlowGBs []units.GBps
	// TotalGBs is the sum over flows.
	TotalGBs units.GBps
	// Utilization maps station names to utilization in [0, 1].
	Utilization map[string]float64
}

// Engine solves bandwidth allocations for one device and profile.
type Engine struct {
	dev  *gpu.Device
	prof Profile
}

// NewEngine builds an engine for the device using its generation's
// canonical profile, or a derived one for custom generations.
func NewEngine(dev *gpu.Device) (*Engine, error) {
	prof, err := ProfileOrDerive(dev.Config())
	if err != nil {
		return nil, err
	}
	return NewEngineWithProfile(dev, prof)
}

// NewEngineWithProfile builds an engine with an explicit profile (used by
// the ablation benchmarks to perturb single capacities).
func NewEngineWithProfile(dev *gpu.Device, prof Profile) (*Engine, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Engine{dev: dev, prof: prof}, nil
}

// Device returns the engine's device.
func (e *Engine) Device() *gpu.Device { return e.dev }

// Profile returns the engine's capacity profile.
func (e *Engine) Profile() Profile { return e.prof }

// station is one queueing resource.
type station struct {
	name string
	// perLine is the service time in seconds for one cache line.
	perLine float64
}

// demand is one flow's visit to a station: seconds of service per
// completed line of the flow (visit ratio folded in).
type demand struct {
	station int
	d       float64
}

// netModel is the assembled closed queueing network.
type netModel struct {
	stations []station
	// classes[f] holds flow f's demands; population[f] its customers;
	// think[f] its think time in seconds.
	classes    [][]demand
	population []float64
	think      []float64
}

// Solve computes the steady-state bandwidth of the given flows. It returns
// an error for empty or malformed flow sets.
func (e *Engine) Solve(flows []Flow) (Result, error) {
	if len(flows) == 0 {
		return Result{}, fmt.Errorf("bandwidth: no flows")
	}
	cfg := e.dev.Config()
	for i, f := range flows {
		if f.SM < 0 || f.SM >= cfg.SMs() {
			return Result{}, fmt.Errorf("bandwidth: flow %d: SM %d out of range", i, f.SM)
		}
		if len(f.Slices) == 0 {
			return Result{}, fmt.Errorf("bandwidth: flow %d: empty slice set", i)
		}
		for _, s := range f.Slices {
			if s < 0 || s >= cfg.L2Slices {
				return Result{}, fmt.Errorf("bandwidth: flow %d: slice %d out of range", i, s)
			}
		}
	}
	m := e.build(flows)
	x := solveAMVA(m)

	lineBytes := float64(cfg.CacheLineBytes)
	res := Result{
		PerFlowGBs:  make([]units.GBps, len(flows)),
		Utilization: make(map[string]float64, len(m.stations)),
	}
	for f := range flows {
		gbs := units.GBps(x[f] * lineBytes / 1e9)
		res.PerFlowGBs[f] = gbs
		res.TotalGBs += gbs
	}
	for si, st := range m.stations {
		var u float64
		for f := range m.classes {
			for _, dm := range m.classes[f] {
				if dm.station == si {
					u += x[f] * dm.d
				}
			}
		}
		_ = st
		if u > res.Utilization[m.stations[si].name] {
			res.Utilization[m.stations[si].name] = u
		}
	}
	return res, nil
}

// build assembles the queueing network for the flow set.
func (e *Engine) build(flows []Flow) *netModel {
	cfg := e.dev.Config()
	prof := e.prof
	clockHz := float64(cfg.CoreClockMHz) * 1e6
	lineBytes := float64(cfg.CacheLineBytes)

	m := &netModel{}
	index := map[string]int{}
	stationOf := func(name string, capGBs units.GBps) int {
		if i, ok := index[name]; ok {
			return i
		}
		i := len(m.stations)
		index[name] = i
		m.stations = append(m.stations, station{name: name, perLine: lineBytes / (float64(capGBs) * 1e9)})
		return i
	}

	for _, f := range flows {
		gpc := e.dev.GPCOf(f.SM)
		tpc := e.dev.TPCOf(f.SM)
		cpc := e.dev.CPCOf(f.SM)
		slot := e.dev.LocalIndex(f.SM) % cfg.SMsPerTPC
		srcPart := e.dev.PartitionOfSM(f.SM)

		smCap, tpcCap, slotCap := prof.SMReadGBs, prof.TPCReadGBs, prof.SlotBusGBs
		cpcCap := prof.CPCReadGBs
		pop := prof.MLPLines
		dir := "r"
		if f.Write {
			smCap, tpcCap, slotCap = prof.SMWriteGBs, prof.TPCWriteGBs, prof.SlotBusWriteGBs
			cpcCap = prof.CPCWriteGBs
			pop = prof.MLPWriteLines
			dir = "w"
		}
		// Per-target MSHR slots bound how deep a narrow stream can run.
		if cap := prof.MLPPerSliceLines * len(f.Slices); cap < pop {
			pop = cap
		}

		var dms []demand
		add := func(name string, capGBs units.GBps, visit float64) {
			if capGBs <= 0 || visit <= 0 {
				return
			}
			dms = append(dms, demand{station: stationOf(name, capGBs), d: visit * lineBytes / (float64(capGBs) * 1e9)})
		}

		// Source-side hierarchy, visited by every line.
		add(fmt.Sprintf("sm%d/%s", f.SM, dir), smCap, 1)
		add(fmt.Sprintf("tpc%d.%d/%s", gpc, tpc, dir), tpcCap, 1)
		if cpc >= 0 && cpcCap > 0 {
			add(fmt.Sprintf("cpc%d.%d/%s", gpc, cpc, dir), cpcCap, 1)
		}
		add(fmt.Sprintf("slot%d.%d/%s", gpc, slot, dir), slotCap, 1)
		add(fmt.Sprintf("gpctrunk%d", gpc), prof.GPCTrunkGBs, 1)

		// Destination-side, split by visit ratio across the slice set.
		// Partition-local caching (H100) redirects each slice to its local
		// serving slice, exactly as the latency model does.
		perSlice := 1 / float64(len(f.Slices))
		var think units.Cycles // averaged over destinations
		crossFrac := 0.0
		mpVisits := map[int]float64{}
		sliceVisits := map[int]float64{}
		for _, s := range f.Slices {
			serving := e.servingSlice(f.SM, s)
			sliceVisits[serving] += perSlice
			mpVisits[e.dev.MPOfSlice(serving)] += perSlice
			if e.dev.PartitionOfSlice(serving) != srcPart {
				crossFrac += perSlice
			}
			think += e.dev.L2HitLatencyMean(f.SM, s)
			if f.DRAM {
				think += e.dev.L2MissPenaltyMean(f.SM, e.dev.MPOfSlice(serving))
			}
		}
		think = think.Scale(perSlice)

		if crossFrac > 0 && prof.PartitionLinkGBs > 0 {
			add(fmt.Sprintf("xpart%d", srcPart), prof.PartitionLinkGBs, crossFrac)
		}
		// Station creation order must not depend on map iteration order:
		// it fixes the float-summation order inside the MVA solver, and
		// with it the low-order bits of every reported bandwidth.
		for _, mp := range sortedIntKeys(mpVisits) {
			v := mpVisits[mp]
			add(fmt.Sprintf("gpcmp%d.%d", gpc, mp), prof.GPCMPPortGBs, v)
			add(fmt.Sprintf("mpport%d", mp), prof.MPPortGBs, v)
			if f.DRAM {
				add(fmt.Sprintf("mem%d", mp), prof.MemChannelGBs, v)
			}
		}
		for _, s := range sortedIntKeys(sliceVisits) {
			add(fmt.Sprintf("slice%d", s), prof.SliceGBs, sliceVisits[s])
		}

		m.classes = append(m.classes, dms)
		m.population = append(m.population, float64(pop))
		m.think = append(m.think, float64(think)/clockHz)
	}
	return m
}

// sortedIntKeys returns m's keys in ascending order.
func sortedIntKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// servingSlice resolves which physical slice serves flow traffic to the
// addressed slice (identity except under H100 partition-local caching).
func (e *Engine) servingSlice(sm, slice int) int {
	return e.dev.ServingSliceID(sm, slice)
}

// solveAMVA runs multi-class Schweitzer approximate Mean Value Analysis to
// a fixed point and returns per-class throughput in lines per second.
func solveAMVA(m *netModel) []float64 {
	nClasses := len(m.classes)
	nStations := len(m.stations)
	// qcf[s][f]: mean number of class-f customers at station s.
	qcf := make([][]float64, nStations)
	for s := range qcf {
		qcf[s] = make([]float64, nClasses)
	}
	// Initialize customers spread evenly over each class's stations.
	for f, dms := range m.classes {
		if len(dms) == 0 {
			continue
		}
		each := m.population[f] / float64(len(dms)+1)
		for _, dm := range dms {
			qcf[dm.station][f] = each
		}
	}
	x := make([]float64, nClasses)
	qTot := make([]float64, nStations)
	const (
		maxIter = 2000
		tol     = 1e-10
		damp    = 0.5
	)
	for iter := 0; iter < maxIter; iter++ {
		for s := range qTot {
			qTot[s] = 0
			for f := 0; f < nClasses; f++ {
				qTot[s] += qcf[s][f]
			}
		}
		maxDelta := 0.0
		for f, dms := range m.classes {
			nf := m.population[f]
			r := m.think[f]
			rs := make([]float64, len(dms))
			for i, dm := range dms {
				// Schweitzer approximation: remove this class's fair share
				// of its own queue when estimating queue seen on arrival.
				seen := qTot[dm.station] - qcf[dm.station][f]/nf
				if seen < 0 {
					seen = 0
				}
				rs[i] = dm.d * (1 + seen)
				r += rs[i]
			}
			xf := nf / r
			x[f] = xf
			for i, dm := range dms {
				next := xf * rs[i]
				old := qcf[dm.station][f]
				upd := old*(1-damp) + next*damp
				if d := math.Abs(upd - old); d > maxDelta {
					maxDelta = d
				}
				qcf[dm.station][f] = upd
			}
		}
		if maxDelta < tol {
			break
		}
	}
	return x
}

// TopUtilized returns the n most utilized stations of a result, sorted
// descending, for bottleneck reports.
func (r Result) TopUtilized(n int) []string {
	type kv struct {
		name string
		u    float64
	}
	all := make([]kv, 0, len(r.Utilization))
	for k, v := range r.Utilization {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].u != all[j].u {
			return all[i].u > all[j].u
		}
		return all[i].name < all[j].name
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf("%s=%.0f%%", all[i].name, all[i].u*100)
	}
	return out
}
