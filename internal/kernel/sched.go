// Package kernel provides a warp-granularity GPU kernel runtime over the
// device model of package gpu: thread blocks are assigned to SMs by a
// pluggable thread-block scheduler, warps execute memory instructions whose
// latency comes from the floorplan-derived NoC model, and a per-warp cycle
// counter plays the role of CUDA's clock(). The paper's micro-benchmarks
// (Algorithms 1 and 2) and its side-channel kernels (AES, RSA) are written
// against this API.
package kernel

import "fmt"

// Scheduler assigns thread blocks to SMs. The paper observes that the
// production thread-block scheduler is effectively static - re-running a
// kernel lands blocks on the same SMs, making the non-uniform NoC latency
// repeatable and hence exploitable - and proposes random(-seed) scheduling
// as a defence (Implication #3).
type Scheduler interface {
	// Assign returns a slice of length numBlocks mapping each block index
	// to the SM that executes it. numSMs must be positive.
	Assign(numBlocks, numSMs int) []int
	// Name identifies the policy in reports.
	Name() string
}

// StaticScheduler models the deterministic production scheduler: blocks
// are dealt round-robin starting from SM 0 every launch.
type StaticScheduler struct{}

// Assign implements Scheduler.
func (StaticScheduler) Assign(numBlocks, numSMs int) []int {
	if numSMs <= 0 {
		panic(fmt.Sprintf("kernel: Assign with numSMs=%d", numSMs))
	}
	out := make([]int, numBlocks)
	for b := range out {
		out[b] = b % numSMs
	}
	return out
}

// Name implements Scheduler.
func (StaticScheduler) Name() string { return "static" }

// RandomScheduler is the paper's proposed defence: a random-seed scheduler
// that begins the round-robin assignment at a random SM on every launch,
// so repeated runs of the same kernel observe different (and hence
// non-correlatable) NoC latencies. It needs no extra hardware beyond a
// seed (Sec. V-C).
type RandomScheduler struct {
	// Rand returns the next raw random value; seeded by the caller so the
	// whole experiment is reproducible.
	Rand func() uint64
}

// Assign implements Scheduler.
func (r RandomScheduler) Assign(numBlocks, numSMs int) []int {
	if numSMs <= 0 {
		panic(fmt.Sprintf("kernel: Assign with numSMs=%d", numSMs))
	}
	if r.Rand == nil {
		panic("kernel: RandomScheduler without Rand source")
	}
	offset := int(r.Rand() % uint64(numSMs))
	out := make([]int, numBlocks)
	for b := range out {
		out[b] = (b + offset) % numSMs
	}
	return out
}

// Name implements Scheduler.
func (RandomScheduler) Name() string { return "random" }

// PinnedScheduler places every block on one fixed SM. The paper pins
// kernels to particular SMs via the smid register to map the NoC; this is
// the runtime's equivalent.
type PinnedScheduler struct {
	SM int
}

// Assign implements Scheduler.
func (p PinnedScheduler) Assign(numBlocks, numSMs int) []int {
	if p.SM < 0 || p.SM >= numSMs {
		panic(fmt.Sprintf("kernel: pinned SM %d out of range [0, %d)", p.SM, numSMs))
	}
	out := make([]int, numBlocks)
	for b := range out {
		out[b] = p.SM
	}
	return out
}

// Name implements Scheduler.
func (p PinnedScheduler) Name() string { return fmt.Sprintf("pinned(%d)", p.SM) }

// ListScheduler places block b on SMs[b % len(SMs)]; used to co-locate
// kernels on chosen SM sets (e.g. the two-SM RSA square kernel).
type ListScheduler struct {
	SMs []int
}

// Assign implements Scheduler.
func (l ListScheduler) Assign(numBlocks, numSMs int) []int {
	if len(l.SMs) == 0 {
		panic("kernel: ListScheduler with empty SM list")
	}
	out := make([]int, numBlocks)
	for b := range out {
		sm := l.SMs[b%len(l.SMs)]
		if sm < 0 || sm >= numSMs {
			panic(fmt.Sprintf("kernel: listed SM %d out of range [0, %d)", sm, numSMs))
		}
		out[b] = sm
	}
	return out
}

// Name implements Scheduler.
func (ListScheduler) Name() string { return "list" }
