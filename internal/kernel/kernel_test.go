package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpunoc/internal/gpu"
)

func machine(t *testing.T, sched Scheduler) *Machine {
	t.Helper()
	m, err := NewMachine(gpu.MustNew(gpu.V100()), sched, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// --- Coalescer ----------------------------------------------------------------

func TestCoalesceBasics(t *testing.T) {
	// All 32 lanes in one 128-byte line -> 1 transaction.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i*4)
	}
	if n := UniqueLines(addrs, 128); n != 1 {
		t.Errorf("fully coalesced access = %d lines, want 1", n)
	}
	// Stride of one line per lane -> 32 transactions.
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i*128)
	}
	if n := UniqueLines(addrs, 128); n != 32 {
		t.Errorf("fully divergent access = %d lines, want 32", n)
	}
}

func TestCoalescePreservesFirstTouchOrder(t *testing.T) {
	addrs := []uint64{0x300, 0x100, 0x310, 0x200}
	lines := Coalesce(addrs, 0x100)
	want := []uint64{0x300, 0x100, 0x200}
	if len(lines) != len(want) {
		t.Fatalf("lines = %x, want %x", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %x, want %x", lines, want)
		}
	}
}

// Property: the unique-line count is between 1 and len(addrs), invariant
// under permutation, and exactly the number of distinct line addresses.
func TestCoalescePropertyCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(16)) * 128
		}
		got := UniqueLines(addrs, 128)
		distinct := map[uint64]bool{}
		for _, a := range addrs {
			distinct[a/128] = true
		}
		if got != len(distinct) || got < 1 || got > n {
			return false
		}
		rng.Shuffle(n, func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
		return UniqueLines(addrs, 128) == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Schedulers -----------------------------------------------------------------

func TestStaticSchedulerDeterministic(t *testing.T) {
	s := StaticScheduler{}
	a := s.Assign(10, 4)
	b := s.Assign(10, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("static scheduler must be deterministic")
		}
		if a[i] != i%4 {
			t.Fatalf("static placement %v", a)
		}
	}
	if s.Name() != "static" {
		t.Error("name")
	}
}

func TestRandomSchedulerRotates(t *testing.T) {
	vals := []uint64{3, 3, 5}
	i := 0
	s := RandomScheduler{Rand: func() uint64 { v := vals[i%len(vals)]; i++; return v }}
	a := s.Assign(4, 8)
	if a[0] != 3 || a[1] != 4 || a[3] != 6 {
		t.Errorf("rotated placement = %v", a)
	}
	s.Assign(4, 8) // consumes second value
	c := s.Assign(4, 8)
	if c[0] != 5 {
		t.Errorf("third launch should start at SM5, got %v", c)
	}
	if s.Name() != "random" {
		t.Error("name")
	}
}

func TestRandomSchedulerCoversAllStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := RandomScheduler{Rand: rng.Uint64}
	starts := map[int]bool{}
	for i := 0; i < 400; i++ {
		starts[s.Assign(1, 8)[0]] = true
	}
	if len(starts) != 8 {
		t.Errorf("random scheduler reached %d of 8 start SMs", len(starts))
	}
}

func TestPinnedScheduler(t *testing.T) {
	s := PinnedScheduler{SM: 5}
	for _, sm := range s.Assign(3, 8) {
		if sm != 5 {
			t.Fatal("pinned scheduler must place everything on SM 5")
		}
	}
}

func TestListScheduler(t *testing.T) {
	s := ListScheduler{SMs: []int{2, 9}}
	a := s.Assign(4, 16)
	want := []int{2, 9, 2, 9}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("list placement %v, want %v", a, want)
		}
	}
}

func TestSchedulerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"static zero sms":   func() { StaticScheduler{}.Assign(1, 0) },
		"random nil rand":   func() { RandomScheduler{}.Assign(1, 4) },
		"random zero sms":   func() { RandomScheduler{Rand: func() uint64 { return 0 }}.Assign(1, 0) },
		"pinned range":      func() { PinnedScheduler{SM: 9}.Assign(1, 4) },
		"list empty":        func() { ListScheduler{}.Assign(1, 4) },
		"list out of range": func() { ListScheduler{SMs: []int{7}}.Assign(1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			f()
		}()
	}
}

// --- Machine -----------------------------------------------------------------

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(nil, nil, DefaultOptions()); err == nil {
		t.Error("nil device should fail")
	}
	dev := gpu.MustNew(gpu.V100())
	bad := DefaultOptions()
	bad.IssueGapCycles = -1
	if _, err := NewMachine(dev, nil, bad); err == nil {
		t.Error("negative issue gap should fail")
	}
	bad = DefaultOptions()
	bad.SyncSlice = 999
	if _, err := NewMachine(dev, nil, bad); err == nil {
		t.Error("out-of-range sync slice should fail")
	}
}

func TestLaunchValidation(t *testing.T) {
	m := machine(t, nil)
	if _, err := m.Launch(0, 32, func(w *Warp) {}); err == nil {
		t.Error("zero grid should fail")
	}
	if _, err := m.Launch(1, 0, func(w *Warp) {}); err == nil {
		t.Error("zero block should fail")
	}
	if _, err := m.Launch(1, 2048, func(w *Warp) {}); err == nil {
		t.Error("oversized block should fail")
	}
}

func TestLaunchPlacementAndIdentity(t *testing.T) {
	m := machine(t, nil)
	var smids []int
	res, err := m.Launch(6, 32, func(w *Warp) {
		smids = append(smids, w.SMID())
		if w.Lanes() != 32 || w.BlockDim() != 32 || w.GridDim() != 6 {
			t.Errorf("warp geometry wrong: %d lanes, block %d, grid %d", w.Lanes(), w.BlockDim(), w.GridDim())
		}
		if w.GlobalThreadIdx(3) != w.BlockIdx()*32+3 {
			t.Error("global thread index wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for b, sm := range res.BlockSM {
		if sm != b%84 || smids[b] != sm {
			t.Errorf("block %d on SM %d (reported %d)", b, sm, smids[b])
		}
	}
}

func TestLaunchPartialWarps(t *testing.T) {
	m := machine(t, nil)
	var lanes []int
	_, err := m.Launch(1, 70, func(w *Warp) { lanes = append(lanes, w.Lanes()) })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{32, 32, 6}
	if len(lanes) != 3 {
		t.Fatalf("warp count = %d, want 3", len(lanes))
	}
	for i := range want {
		if lanes[i] != want[i] {
			t.Fatalf("lane counts %v, want %v", lanes, want)
		}
	}
}

func TestLoadCGAdvancesClockLinearly(t *testing.T) {
	// Fig. 17(a): warp latency grows linearly with unique cache lines.
	m := machine(t, PinnedScheduler{SM: 24})
	timing := func(lines int) float64 {
		var took float64
		_, err := m.Launch(1, 32, func(w *Warp) {
			addrs := make([]uint64, 32)
			for i := range addrs {
				addrs[i] = uint64(i%lines) * 128
			}
			t0 := w.Clock()
			if n := w.LoadCG(addrs); n != lines {
				t.Fatalf("coalesced to %d lines, want %d", n, lines)
			}
			took = w.Clock() - t0
		})
		if err != nil {
			t.Fatal(err)
		}
		return took
	}
	t1, t8, t16, t32 := timing(1), timing(8), timing(16), timing(32)
	if !(t1 < t8 && t8 < t16 && t16 < t32) {
		t.Fatalf("latency not increasing: %v %v %v %v", t1, t8, t16, t32)
	}
	// Approximate linearity: slope between 8->16 and 16->32 comparable.
	s1 := (t16 - t8) / 8
	s2 := (t32 - t16) / 16
	if s1 <= 0 || s2 <= 0 || s1/s2 > 2 || s2/s1 > 2 {
		t.Errorf("slopes %v vs %v not roughly linear", s1, s2)
	}
}

func TestLoadCGEmptyIsFree(t *testing.T) {
	m := machine(t, nil)
	_, err := m.Launch(1, 32, func(w *Warp) {
		t0 := w.Clock()
		if n := w.LoadCG(nil); n != 0 {
			t.Errorf("empty load returned %d", n)
		}
		if w.Clock() != t0 {
			t.Error("empty load should not advance the clock")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadCGMissSlower(t *testing.T) {
	m := machine(t, PinnedScheduler{SM: 0})
	var hit, miss float64
	_, err := m.Launch(1, 32, func(w *Warp) {
		addr := []uint64{0x4000}
		t0 := w.Clock()
		w.LoadCG(addr)
		hit = w.Clock() - t0
		t0 = w.Clock()
		w.LoadCGMiss(addr)
		miss = w.Clock() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	if miss < hit+150 {
		t.Errorf("miss %v should exceed hit %v by the DRAM penalty", miss, hit)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := machine(t, nil)
	_, err := m.Launch(1, 32, func(w *Warp) {
		t0 := w.Clock()
		w.Compute(100)
		w.Compute(-5) // ignored
		if w.Clock()-t0 != 100 {
			t.Errorf("compute advanced %v, want 100", w.Clock()-t0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadRemoteShared(t *testing.T) {
	h, err := NewMachine(gpu.MustNew(gpu.H100()), PinnedScheduler{SM: 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dst := h.Device().SMsOfGPC(0)[5]
	_, err = h.Launch(1, 32, func(w *Warp) {
		lat, err := w.LoadRemoteShared(dst)
		if err != nil {
			t.Errorf("remote shared load: %v", err)
		}
		if lat < 180 || lat > 240 {
			t.Errorf("SM-to-SM latency %v outside [180, 240]", lat)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// V100 lacks the network.
	m := machine(t, nil)
	_, err = m.Launch(1, 32, func(w *Warp) {
		if _, err := w.LoadRemoteShared(6); err == nil {
			t.Error("V100 remote shared load should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSameSMBlocksSerialize(t *testing.T) {
	m := machine(t, PinnedScheduler{SM: 0})
	body := func(w *Warp) { w.Compute(1000) }
	one, err := m.Launch(1, 32, body)
	if err != nil {
		t.Fatal(err)
	}
	four, err := m.Launch(4, 32, body)
	if err != nil {
		t.Fatal(err)
	}
	if four.Cycles < 3.5*one.Cycles {
		t.Errorf("4 blocks on one SM took %.0f, single took %.0f; should serialize", four.Cycles, one.Cycles)
	}
}

func TestDistinctSMBlocksParallel(t *testing.T) {
	m := machine(t, nil) // static: blocks 0..3 on SMs 0..3
	body := func(w *Warp) { w.Compute(1000) }
	one, err := m.Launch(1, 32, body)
	if err != nil {
		t.Fatal(err)
	}
	four, err := m.Launch(4, 32, body)
	if err != nil {
		t.Fatal(err)
	}
	if four.Cycles > 1.1*one.Cycles {
		t.Errorf("4 blocks on 4 SMs took %.0f vs %.0f; should run in parallel", four.Cycles, one.Cycles)
	}
}

func TestGridSyncPartitionPenalty(t *testing.T) {
	// On A100, a grid spanning both partitions pays a far-partition flag
	// round trip; one co-located on the flag's partition does not.
	dev := gpu.MustNew(gpu.A100())
	opts := DefaultOptions()
	opts.GridSync = true
	opts.SyncSlice = 0                                                  // partition 0
	near, err := NewMachine(dev, ListScheduler{SMs: []int{0, 8}}, opts) // GPC0, both partition 0
	if err != nil {
		t.Fatal(err)
	}
	far, err := NewMachine(dev, ListScheduler{SMs: []int{0, 4}}, opts) // GPC0 + GPC4 (partition 1)
	if err != nil {
		t.Fatal(err)
	}
	body := func(w *Warp) { w.Compute(100) }
	rn, err := near.Launch(2, 32, body)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := far.Launch(2, 32, body)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cycles < rn.Cycles+200 {
		t.Errorf("cross-partition sync %.0f should exceed co-located %.0f by the far round trip", rf.Cycles, rn.Cycles)
	}
}

func TestLaunchNoiseVariesAcrossLaunches(t *testing.T) {
	m := machine(t, PinnedScheduler{SM: 3})
	run := func() float64 {
		res, err := m.Launch(1, 32, func(w *Warp) { w.LoadCG([]uint64{0x1234}) })
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	a, b := run(), run()
	if a == b {
		t.Error("consecutive launches should observe fresh measurement noise")
	}
}

// Property: wall time is at least the max per-block time and at least the
// launch overhead; block cycles are non-negative.
func TestLaunchPropertyTimes(t *testing.T) {
	m := machine(t, nil)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		grid := 1 + rng.Intn(8)
		res, err := m.Launch(grid, 32, func(w *Warp) {
			w.Compute(float64(rng.Intn(500)))
			w.LoadCG([]uint64{uint64(rng.Intn(1 << 20))})
		})
		if err != nil {
			return false
		}
		maxBlock := 0.0
		for _, c := range res.BlockCycles {
			if c < 0 {
				return false
			}
			if c > maxBlock {
				maxBlock = c
			}
		}
		return res.Cycles >= maxBlock
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- L2 residency model -------------------------------------------------------

func TestModelL2WarmupHitsAndOverflowMisses(t *testing.T) {
	opts := DefaultOptions()
	opts.ModelL2 = true
	m, err := NewMachine(gpu.MustNew(gpu.V100()), PinnedScheduler{SM: 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var cold, warm float64
	_, err = m.Launch(1, 1, func(w *Warp) {
		addr := []uint64{0x9000}
		t0 := w.Clock()
		w.LoadCG(addr)
		cold = w.Clock() - t0
		t0 = w.Clock()
		w.LoadCG(addr)
		warm = w.Clock() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold < warm+150 {
		t.Errorf("cold access %v should pay the DRAM fill over warm %v", cold, warm)
	}
	if rate := m.L2HitRate(); rate != 0.5 {
		t.Errorf("hit rate %v, want 0.5 (one miss, one hit)", rate)
	}
	m.ResetL2()
	if m.L2HitRate() != 0 {
		t.Error("reset should clear cache stats")
	}
}

func TestModelL2OffByDefault(t *testing.T) {
	m := machine(t, PinnedScheduler{SM: 0})
	if m.L2HitRate() != 0 {
		t.Error("no cache model means no hit rate")
	}
	m.ResetL2() // must be a no-op, not a panic
}

func TestStoreCG(t *testing.T) {
	m := machine(t, PinnedScheduler{SM: 0})
	_, err := m.Launch(1, 32, func(w *Warp) {
		if n := w.StoreCG(nil); n != 0 {
			t.Errorf("empty store returned %d", n)
		}
		addrs := make([]uint64, 32)
		for i := range addrs {
			addrs[i] = uint64(i) * 32
		}
		t0 := w.Clock()
		if n := w.StoreCG(addrs); n != 32 {
			t.Errorf("store coalesced to %d sectors, want 32", n)
		}
		if w.Clock() <= t0 {
			t.Error("store should advance the clock")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStoreCGWarmsModelledL2(t *testing.T) {
	opts := DefaultOptions()
	opts.ModelL2 = true
	m, err := NewMachine(gpu.MustNew(gpu.V100()), PinnedScheduler{SM: 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var storeTime, loadTime float64
	_, err = m.Launch(1, 1, func(w *Warp) {
		addr := []uint64{0xabc0}
		t0 := w.Clock()
		w.StoreCG(addr) // write-allocates without a DRAM fill
		storeTime = w.Clock() - t0
		t0 = w.Clock()
		w.LoadCG(addr) // hits the just-written line
		loadTime = w.Clock() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	if storeTime > 300 {
		t.Errorf("store %v should not pay a DRAM fill", storeTime)
	}
	if loadTime > 300 {
		t.Errorf("load after store %v should hit", loadTime)
	}
}

func TestMachineAccessorsAndSchedulerSwap(t *testing.T) {
	m := machine(t, nil)
	if m.Scheduler().Name() != "static" {
		t.Errorf("default scheduler %q", m.Scheduler().Name())
	}
	m.SetScheduler(PinnedScheduler{SM: 3})
	if m.Scheduler().Name() != "pinned(3)" {
		t.Errorf("swapped scheduler %q", m.Scheduler().Name())
	}
	if (ListScheduler{SMs: []int{1}}).Name() != "list" {
		t.Error("list name")
	}
	if m.Device() == nil {
		t.Error("device accessor")
	}
}

func TestCoalesceLargeInputUsesMap(t *testing.T) {
	// More than 2*WarpSize addresses exercises the map-based path.
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = uint64(i%10) * 128
	}
	if n := UniqueLines(addrs, 128); n != 10 {
		t.Errorf("large-input coalesce = %d, want 10", n)
	}
}
