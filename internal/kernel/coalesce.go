package kernel

// Coalesce groups the per-lane byte addresses of one warp memory
// instruction into unique cache lines of the given size, preserving
// first-touch order. The returned slice holds line-aligned base addresses.
//
// The number of unique lines determines the instruction's service time:
// the paper's AES side channel (Sec. V-B.1, Fig. 17a) rests on the
// latency being linearly proportional to this count.
func Coalesce(addrs []uint64, lineBytes int) []uint64 {
	mask := ^uint64(lineBytes - 1)
	lines := make([]uint64, 0, len(addrs))
	if len(addrs) <= 2*WarpSize {
		// Warp-sized accesses: a linear dedup beats a map allocation.
	outer:
		for _, a := range addrs {
			line := a & mask
			for _, seen := range lines {
				if seen == line {
					continue outer
				}
			}
			lines = append(lines, line)
		}
		return lines
	}
	seen := make(map[uint64]struct{}, len(addrs))
	for _, a := range addrs {
		line := a & mask
		if _, ok := seen[line]; ok {
			continue
		}
		seen[line] = struct{}{}
		lines = append(lines, line)
	}
	return lines
}

// UniqueLines returns only the count of unique cache lines touched by the
// warp access, the quantity attackers infer from timing.
func UniqueLines(addrs []uint64, lineBytes int) int {
	return len(Coalesce(addrs, lineBytes))
}
