package kernel

import (
	"fmt"

	"gpunoc/internal/cache"
	"gpunoc/internal/gpu"
)

// Options tune the runtime's fixed costs.
type Options struct {
	// IssueGapCycles is the LSU serialization cost between the memory
	// transactions of one coalesced warp access. Together with the NoC
	// round trip it yields the linear latency-vs-unique-lines relationship
	// of Fig. 17(a).
	IssueGapCycles float64

	// SectorBytes is the memory-transaction granularity of a warp access
	// (the 32-byte L2 sector of modern NVIDIA GPUs). Coalescing counts
	// unique sectors, which is the quantity GPU timing side channels
	// infer; 0 defaults to 32.
	SectorBytes int

	// LaunchOverheadCycles is charged once per block.
	LaunchOverheadCycles float64

	// GridSync makes Launch model a grid-wide final synchronization
	// through a shared L2 location: the kernel is not done until the
	// slowest SM's flag round trip completes. With SMs co-located on one
	// partition this is cheap; spanning partitions it is not - the
	// mechanism behind the paper's 1.7x RSA square-kernel spread
	// (Fig. 17b).
	GridSync bool

	// SyncSlice is the L2 slice holding the synchronization flag.
	SyncSlice int

	// ModelL2 attaches a set-associative sectored cache to every L2 slice
	// so hits and misses are determined by actual residency instead of
	// the caller's assertion: Algorithm 1's warm-up pass genuinely
	// populates the cache, and working sets larger than the L2 genuinely
	// miss. Off by default; the calibrated experiments assume the paper's
	// "working set fits within the L2" regime.
	ModelL2 bool
}

// DefaultOptions returns the runtime defaults.
func DefaultOptions() Options {
	return Options{IssueGapCycles: 4, SectorBytes: 32, LaunchOverheadCycles: 20}
}

// Machine executes kernels on a device under a block scheduler.
type Machine struct {
	dev   *gpu.Device
	sched Scheduler
	opts  Options
	// launchCount salts per-launch measurement noise so repeated launches
	// observe fresh jitter, like re-running a real kernel.
	launchCount uint64
	// l2 holds one cache per slice when Options.ModelL2 is set.
	l2 []*cache.Cache
}

// NewMachine builds a Machine. A nil scheduler defaults to the static
// production policy.
func NewMachine(dev *gpu.Device, sched Scheduler, opts Options) (*Machine, error) {
	if dev == nil {
		return nil, fmt.Errorf("kernel: nil device")
	}
	if sched == nil {
		sched = StaticScheduler{}
	}
	if opts.IssueGapCycles < 0 || opts.LaunchOverheadCycles < 0 {
		return nil, fmt.Errorf("kernel: negative cost options")
	}
	if opts.SectorBytes == 0 {
		opts.SectorBytes = 32
	}
	if opts.SectorBytes < 0 || opts.SectorBytes&(opts.SectorBytes-1) != 0 {
		return nil, fmt.Errorf("kernel: sector size %d not a power of two", opts.SectorBytes)
	}
	if opts.SyncSlice < 0 || opts.SyncSlice >= dev.Config().L2Slices {
		return nil, fmt.Errorf("kernel: sync slice %d out of range", opts.SyncSlice)
	}
	m := &Machine{dev: dev, sched: sched, opts: opts}
	if opts.ModelL2 {
		cfg := dev.Config()
		perSlice := cfg.L2SizeMiB * 1024 * 1024 / cfg.L2Slices
		m.l2 = make([]*cache.Cache, cfg.L2Slices)
		for s := range m.l2 {
			c, err := cache.New(cache.DefaultSliceConfig(perSlice))
			if err != nil {
				return nil, fmt.Errorf("kernel: slice cache: %w", err)
			}
			m.l2[s] = c
		}
	}
	return m, nil
}

// L2HitRate returns the aggregate hit rate across slice caches, or 0 when
// the machine runs without the L2 model.
func (m *Machine) L2HitRate() float64 {
	if m.l2 == nil {
		return 0
	}
	var hits, total uint64
	for _, c := range m.l2 {
		hits += c.Hits
		total += c.Hits + c.Misses
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// ResetL2 clears the slice caches (a fresh context), if modelled.
func (m *Machine) ResetL2() {
	for _, c := range m.l2 {
		c.Reset()
	}
}

// Device returns the machine's device.
func (m *Machine) Device() *gpu.Device { return m.dev }

// Scheduler returns the machine's block scheduler.
func (m *Machine) Scheduler() Scheduler { return m.sched }

// SetScheduler swaps the block scheduler (e.g. static -> random for the
// defence evaluation).
func (m *Machine) SetScheduler(s Scheduler) { m.sched = s }

// WarpSize is the number of lanes per warp, as on all modelled GPUs.
const WarpSize = 32

// Kernel is a warp-level kernel body: it is invoked once per warp and uses
// the Warp's lane helpers to express per-thread behaviour.
type Kernel func(w *Warp)

// Warp is the execution context handed to a Kernel: one warp of up to 32
// threads running on a specific SM, with a cycle clock advanced by the
// instructions it executes.
type Warp struct {
	m *Machine

	sm       int
	blockIdx int
	blockDim int
	gridDim  int
	warpIdx  int // warp index within the block
	lanes    int

	now  float64
	iter uint64
}

// SMID returns the executing SM's id, like the PTX %smid register the
// paper uses to discover kernel placement.
func (w *Warp) SMID() int { return w.sm }

// BlockIdx returns the block's grid index (blockIdx.x).
func (w *Warp) BlockIdx() int { return w.blockIdx }

// BlockDim returns the threads per block (blockDim.x).
func (w *Warp) BlockDim() int { return w.blockDim }

// GridDim returns the number of blocks (gridDim.x).
func (w *Warp) GridDim() int { return w.gridDim }

// Lanes returns the number of active lanes in this warp.
func (w *Warp) Lanes() int { return w.lanes }

// ThreadIdx returns the block-local thread index of a lane.
func (w *Warp) ThreadIdx(lane int) int { return w.warpIdx*WarpSize + lane }

// GlobalThreadIdx returns blockIdx.x*blockDim.x + threadIdx.x for a lane.
func (w *Warp) GlobalThreadIdx(lane int) int {
	return w.blockIdx*w.blockDim + w.ThreadIdx(lane)
}

// Clock returns the warp's current cycle count, the analogue of CUDA's
// clock() used by Algorithm 1 to time loads.
func (w *Warp) Clock() float64 { return w.now }

// Compute advances the warp clock by a fixed number of ALU cycles.
func (w *Warp) Compute(cycles float64) {
	if cycles > 0 {
		w.now += cycles
	}
}

// LoadCG performs an L1-bypassing (ld.global.cg) warp load of the per-lane
// addresses. The access is coalesced into unique cache lines; the warp
// stalls for the transactions' serialization plus the NoC round trip of
// the final line, then returns the number of unique lines touched.
func (w *Warp) LoadCG(addrs []uint64) int {
	if len(addrs) == 0 {
		return 0
	}
	dev := w.m.dev
	sectors := Coalesce(addrs, w.m.opts.SectorBytes)
	n := len(sectors)
	last := sectors[n-1]
	slice := dev.ServingSlice(w.sm, last)
	w.iter++
	lat := dev.L2HitLatency(w.sm, slice, w.iter^w.m.launchCount<<32)
	if w.m.l2 != nil {
		// With the L2 modelled, residency decides hit or miss per
		// transaction; the warp waits for the slowest, so any miss adds
		// one DRAM trip (misses overlap in the memory system).
		missed := false
		for _, sector := range sectors {
			s := dev.ServingSlice(w.sm, sector)
			if !w.m.l2[s].Access(sector) {
				missed = true
			}
		}
		if missed {
			lat += dev.L2MissPenalty(w.sm, dev.HomeMP(last), w.iter)
		}
	}
	w.now += float64(lat) + w.m.opts.IssueGapCycles*float64(n-1)
	return n
}

// StoreCG performs an L1-bypassing warp store of the per-lane addresses.
// Stores post to the L2 and complete at the write-acknowledge round trip
// of the final transaction; like LoadCG it returns the number of unique
// sectors written. With the L2 modelled, stores allocate (write-allocate
// policy) but never pay a DRAM fill.
func (w *Warp) StoreCG(addrs []uint64) int {
	if len(addrs) == 0 {
		return 0
	}
	dev := w.m.dev
	sectors := Coalesce(addrs, w.m.opts.SectorBytes)
	n := len(sectors)
	last := sectors[n-1]
	slice := dev.ServingSlice(w.sm, last)
	w.iter++
	lat := dev.L2HitLatency(w.sm, slice, w.iter^w.m.launchCount<<32)
	if w.m.l2 != nil {
		for _, sector := range sectors {
			s := dev.ServingSlice(w.sm, sector)
			w.m.l2[s].Access(sector)
		}
	}
	w.now += float64(lat) + w.m.opts.IssueGapCycles*float64(n-1)
	return n
}

// LoadCGMiss is LoadCG for addresses that miss in L2 and are filled from
// the home memory partition (used for the miss-penalty study of Fig. 8).
func (w *Warp) LoadCGMiss(addrs []uint64) int {
	if len(addrs) == 0 {
		return 0
	}
	dev := w.m.dev
	sectors := Coalesce(addrs, w.m.opts.SectorBytes)
	n := len(sectors)
	last := sectors[n-1]
	slice := dev.ServingSlice(w.sm, last)
	w.iter++
	lat := dev.L2HitLatency(w.sm, slice, w.iter^w.m.launchCount<<32)
	lat += dev.L2MissPenalty(w.sm, dev.HomeMP(last), w.iter)
	w.now += float64(lat) + w.m.opts.IssueGapCycles*float64(n-1)
	return n
}

// LoadRemoteShared loads from the shared memory of another SM over the
// SM-to-SM (distributed shared memory) network; H100 only, and both SMs
// must share a GPC (Fig. 7).
func (w *Warp) LoadRemoteShared(dstSM int) (float64, error) {
	w.iter++
	lat, err := w.m.dev.SMToSMLatency(w.sm, dstSM, w.iter)
	if err != nil {
		return 0, err
	}
	w.now += float64(lat)
	return float64(lat), nil
}

// Result reports one kernel launch.
type Result struct {
	// Cycles is the kernel wall time: the completion cycle of the slowest
	// block plus any grid synchronization.
	Cycles float64
	// BlockCycles is each block's own execution time.
	BlockCycles []float64
	// BlockSM is the SM each block ran on.
	BlockSM []int
}

// Launch runs a 1-D kernel of gridDim blocks with blockDim threads each.
// Blocks assigned to the same SM serialize; blocks on distinct SMs run
// concurrently. Block-to-SM placement comes from the machine's scheduler.
func (m *Machine) Launch(gridDim, blockDim int, k Kernel) (Result, error) {
	if gridDim <= 0 || blockDim <= 0 {
		return Result{}, fmt.Errorf("kernel: launch with grid %d, block %d", gridDim, blockDim)
	}
	if blockDim > 1024 {
		return Result{}, fmt.Errorf("kernel: block dimension %d exceeds 1024", blockDim)
	}
	m.launchCount++
	numSMs := m.dev.Config().SMs()
	placement := m.sched.Assign(gridDim, numSMs)
	if len(placement) != gridDim {
		return Result{}, fmt.Errorf("kernel: scheduler %s returned %d placements for %d blocks",
			m.sched.Name(), len(placement), gridDim)
	}

	res := Result{
		BlockCycles: make([]float64, gridDim),
		BlockSM:     placement,
	}
	smBusyUntil := make([]float64, numSMs)
	warpsPerBlock := (blockDim + WarpSize - 1) / WarpSize
	for b := 0; b < gridDim; b++ {
		sm := placement[b]
		if sm < 0 || sm >= numSMs {
			return Result{}, fmt.Errorf("kernel: scheduler %s placed block %d on SM %d (of %d)",
				m.sched.Name(), b, sm, numSMs)
		}
		start := smBusyUntil[sm] + m.opts.LaunchOverheadCycles
		blockEnd := start
		for wi := 0; wi < warpsPerBlock; wi++ {
			lanes := blockDim - wi*WarpSize
			if lanes > WarpSize {
				lanes = WarpSize
			}
			w := &Warp{
				m: m, sm: sm,
				blockIdx: b, blockDim: blockDim, gridDim: gridDim,
				warpIdx: wi, lanes: lanes,
				now:  start,
				iter: uint64(b)<<16 | uint64(wi),
			}
			k(w)
			if w.now > blockEnd {
				blockEnd = w.now
			}
		}
		res.BlockCycles[b] = blockEnd - start
		smBusyUntil[sm] = blockEnd
		if blockEnd > res.Cycles {
			res.Cycles = blockEnd
		}
	}

	if m.opts.GridSync {
		res.Cycles += m.gridSyncCost(placement)
	}
	return res, nil
}

// gridSyncCost models the final grid-wide barrier: every participating SM
// round-trips a flag in a shared L2 location, so the barrier costs the
// slowest SM's round trip twice (arrive + release). When the SMs span GPU
// partitions, the flag is far for some of them.
func (m *Machine) gridSyncCost(placement []int) float64 {
	seen := map[int]bool{}
	worst := 0.0
	for _, sm := range placement {
		if seen[sm] {
			continue
		}
		seen[sm] = true
		if lat := float64(m.dev.L2HitLatencyMean(sm, m.opts.SyncSlice)); lat > worst {
			worst = lat
		}
	}
	return 2 * worst
}
