package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the only place obs state leaves the process. Everything
// here iterates instrument tables through sortedKeys and buffers into a
// strings.Builder before one Write, so a metrics or trace file is a
// pure function of the collected values - byte-identical across runs
// and across worker-pool sizes (noclint's determinism analyzer flags
// any raw map iteration in this package's emit paths).

// WriteMetrics emits every instrument as deterministic sorted-key JSON:
//
//	{"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
//	"buckets":[...],"count":N,"sum":N}}}
//
// A nil registry emits the empty document (all three tables present but
// empty) so downstream tooling never special-cases disabled runs.
func (r *Registry) WriteMetrics(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	if r != nil {
		r.root.mu.Lock()
		defer r.root.mu.Unlock()
		writeScalars(&b, r.root.counters, (*Counter).Value)
		b.WriteString("},\n  \"gauges\": {")
		writeScalars(&b, r.root.gauges, (*Gauge).Value)
		b.WriteString("},\n  \"histograms\": {")
		names := sortedKeys(r.root.hists)
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			h := r.root.hists[name]
			b.WriteString("\n    ")
			b.WriteString(strconv.Quote(name))
			b.WriteString(": {\"bounds\": ")
			writeInts(&b, h.bounds)
			b.WriteString(", \"buckets\": ")
			writeInts(&b, h.BucketCounts())
			fmt.Fprintf(&b, ", \"count\": %d, \"sum\": %d}", h.Count(), h.Sum())
		}
		if len(names) > 0 {
			b.WriteString("\n  ")
		}
	} else {
		b.WriteString("},\n  \"gauges\": {")
		b.WriteString("},\n  \"histograms\": {")
	}
	b.WriteString("}\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeScalars renders one sorted name->int64 table body (between the
// caller's braces).
func writeScalars[T any](b *strings.Builder, m map[string]*T, value func(*T) int64) {
	names := sortedKeys(m)
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		b.WriteString(strconv.Quote(name))
		fmt.Fprintf(b, ": %d", value(m[name]))
	}
	if len(names) > 0 {
		b.WriteString("\n  ")
	}
}

// writeInts renders an int64 slice as a JSON array.
func writeInts(b *strings.Builder, vs []int64) {
	b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteByte(']')
}

// WriteTrace emits every scope's buffered events as Chrome trace-event
// JSON (the object form: {"traceEvents":[...]}), loadable in
// chrome://tracing and Perfetto. Each scope becomes one trace process
// (pid assigned in sorted-scope order, named via process_name
// metadata); within a scope, events keep their buffered simulation
// order, so the file is byte-identical regardless of how many workers
// collected it. Cycle stamps map directly onto the trace "ts"
// microsecond field: 1 cycle renders as 1us.
func (r *Registry) WriteTrace(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [")
	first := true
	sep := func() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString("\n")
	}
	if r != nil {
		r.root.mu.Lock()
		defer r.root.mu.Unlock()
		scopes := sortedKeys(r.root.tracers)
		for pid, scope := range scopes {
			t := r.root.tracers[scope]
			name := strings.TrimSuffix(scope, "/")
			if name == "" {
				name = "root"
			}
			sep()
			fmt.Fprintf(&b, `{"name": "process_name", "ph": "M", "pid": %d, "args": {"name": %s}}`,
				pid, strconv.Quote(name))
			for i := range t.events {
				e := &t.events[i]
				sep()
				fmt.Fprintf(&b, `{"name": %s, "cat": %s, "ph": "%c", "ts": %d, "pid": %d, "tid": %d`,
					strconv.Quote(e.name), strconv.Quote(e.cat), e.ph, e.ts, pid, e.tid)
				switch e.ph {
				case phaseComplete:
					fmt.Fprintf(&b, `, "dur": %d, "args": {"v": %d}}`, e.dur, e.arg)
				case phaseCounter:
					fmt.Fprintf(&b, `, "args": {"v": %d}}`, e.arg)
				default:
					fmt.Fprintf(&b, `, "s": "t", "args": {"v": %d}}`, e.arg)
				}
			}
			if t.dropped > 0 {
				sep()
				fmt.Fprintf(&b, `{"name": "dropped_events", "cat": "obs", "ph": "C", "ts": 0, "pid": %d, "tid": 0, "args": {"v": %d}}`,
					pid, t.dropped)
			}
		}
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// SummaryRow is one line of the report-footer metrics table.
type SummaryRow struct {
	Name  string
	Value string
}

// SummaryRows condenses the registry for the report footer: every
// counter and gauge with its value, and every histogram as
// count/mean/max-bucket. Rows come back sorted by instrument name
// (counters, then gauges, then histograms).
func (r *Registry) SummaryRows() []SummaryRow {
	if r == nil {
		return nil
	}
	r.root.mu.Lock()
	defer r.root.mu.Unlock()
	var rows []SummaryRow
	for _, name := range sortedKeys(r.root.counters) {
		rows = append(rows, SummaryRow{Name: name,
			Value: strconv.FormatInt(r.root.counters[name].Value(), 10)})
	}
	for _, name := range sortedKeys(r.root.gauges) {
		rows = append(rows, SummaryRow{Name: name,
			Value: strconv.FormatInt(r.root.gauges[name].Value(), 10)})
	}
	for _, name := range sortedKeys(r.root.hists) {
		h := r.root.hists[name]
		n := h.Count()
		mean := 0.0
		if n > 0 {
			mean = float64(h.Sum()) / float64(n)
		}
		rows = append(rows, SummaryRow{Name: name,
			Value: fmt.Sprintf("n=%d mean=%.2f", n, mean)})
	}
	return rows
}
