package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// populate drives a registry through a representative mix of
// instruments so determinism tests can compare two identical runs.
func populate(r *Registry) {
	sim := r.Scope("fig21").Scope("req")
	c := sim.Counter("flits")
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	sim.Counter("stall/credit").Add(3)
	sim.Gauge("queue/final").Set(7)
	h := sim.Histogram("occupancy", DepthBounds())
	for i := int64(0); i < 40; i++ {
		h.Observe(i % 9)
	}
	tr := sim.Tracer()
	for cyc := int64(0); cyc < 5; cyc++ {
		tr.Instant("noc", "eject", cyc, cyc%2, cyc*3)
		tr.Count("noc", "occupancy", cyc, cyc+1)
	}
	tr.Span("noc", "packet", 2, 9, 1, 42)
	other := r.Scope("fig23")
	other.Counter("iterations").Add(100)
	other.Tracer().Instant("mc", "busy", 11, 0, 1)
}

func TestMetricsAndTraceDeterministic(t *testing.T) {
	render := func() (string, string) {
		r := New()
		populate(r)
		var m, tr bytes.Buffer
		if err := r.WriteMetrics(&m); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		if err := r.WriteTrace(&tr); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := render()
	m2, t2 := render()
	if m1 != m2 {
		t.Errorf("metrics output differs between identical runs:\n%s\n---\n%s", m1, m2)
	}
	if t1 != t2 {
		t.Errorf("trace output differs between identical runs:\n%s\n---\n%s", t1, t2)
	}
}

func TestMetricsJSONShape(t *testing.T) {
	r := New()
	populate(r)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Hists    map[string]struct {
			Bounds  []int64 `json:"bounds"`
			Buckets []int64 `json:"buckets"`
			Count   int64   `json:"count"`
			Sum     int64   `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got := doc.Counters["fig21/req/flits"]; got != 10 {
		t.Errorf("fig21/req/flits = %d, want 10", got)
	}
	if got := doc.Gauges["fig21/req/queue/final"]; got != 7 {
		t.Errorf("fig21/req/queue/final = %d, want 7", got)
	}
	h, ok := doc.Hists["fig21/req/occupancy"]
	if !ok {
		t.Fatalf("histogram fig21/req/occupancy missing; have %v", doc.Hists)
	}
	if h.Count != 40 {
		t.Errorf("histogram count = %d, want 40", h.Count)
	}
	if len(h.Buckets) != len(h.Bounds)+1 {
		t.Errorf("buckets = %d entries, want bounds+1 = %d", len(h.Buckets), len(h.Bounds)+1)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b
	}
	if total != h.Count {
		t.Errorf("bucket sum %d != count %d", total, h.Count)
	}
}

func TestTraceJSONShape(t *testing.T) {
	r := New()
	populate(r)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var sawMeta, sawInstant, sawSpan, sawCounter bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			sawMeta = true
		case "i":
			sawInstant = true
		case "X":
			sawSpan = true
			if e["dur"] == nil {
				t.Error("complete event missing dur")
			}
		case "C":
			sawCounter = true
		}
	}
	if !sawMeta || !sawInstant || !sawSpan || !sawCounter {
		t.Errorf("missing event kinds: meta=%v instant=%v span=%v counter=%v",
			sawMeta, sawInstant, sawSpan, sawCounter)
	}
}

func TestNilRegistryIsSafeAndSilent(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	s := r.Scope("x")
	if s != nil {
		t.Error("Scope of nil registry should stay nil")
	}
	s.Counter("c").Inc()
	s.Gauge("g").Set(1)
	s.Histogram("h", DepthBounds()).Observe(3)
	s.Tracer().Instant("a", "b", 0, 0, 0)
	s.Tracer().Span("a", "b", 0, 1, 0, 0)
	s.Tracer().Count("a", "b", 0, 0)
	if s.Counter("c").Value() != 0 || s.Gauge("g").Value() != 0 {
		t.Error("nil instruments should read zero")
	}
	if s.Histogram("h", nil).Count() != 0 || s.Tracer().Events() != 0 {
		t.Error("nil histogram/tracer should read empty")
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics on nil registry: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil-registry metrics not valid JSON:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil registry: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil-registry trace not valid JSON:\n%s", buf.String())
	}
	if rows := r.SummaryRows(); rows != nil {
		t.Errorf("nil registry SummaryRows = %v, want nil", rows)
	}
}

func TestDisabledInstrumentsDoNotAllocate(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DepthBounds())
	tr := r.Tracer()
	allocs := testing.AllocsPerRun(1000, func() {
		s := r.Scope("x")
		s.Counter("c2").Inc()
		c.Add(2)
		g.Set(3)
		h.Observe(4)
		tr.Instant("a", "b", 1, 2, 3)
		tr.Span("a", "b", 1, 2, 3, 4)
		tr.Count("a", "b", 1, 2)
	})
	if allocs != 0 {
		t.Errorf("disabled obs path allocates %.1f per op, want 0", allocs)
	}
}

// TestObserveBucketEquivalence pins Observe's binary search to the
// linear-scan reference it replaced: for every value at, around, and far
// past each bound, both must land the observation in the same bucket.
func TestObserveBucketEquivalence(t *testing.T) {
	layouts := [][]int64{
		DepthBounds(),
		{0},
		{5, 10},
		{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000},
		nil, // overflow-only histogram
	}
	linear := func(bounds []int64, v int64) int {
		i := 0
		for i < len(bounds) && v > bounds[i] {
			i++
		}
		return i
	}
	for li, bounds := range layouts {
		r := New()
		h := r.Histogram("h", bounds)
		var values []int64
		for _, b := range bounds {
			values = append(values, b-1, b, b+1)
		}
		values = append(values, -1000, -1, 0, 1, 1<<40)
		for _, v := range values {
			before := h.BucketCounts()
			h.Observe(v)
			after := h.BucketCounts()
			got := -1
			for i := range after {
				if after[i] != before[i] {
					got = i
					break
				}
			}
			if want := linear(bounds, v); got != want {
				t.Errorf("layout %d: Observe(%d) hit bucket %d, want %d", li, v, got, want)
			}
		}
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	// The enabled Observe path runs per cycle inside Mesh.Step and
	// Xbar.Step; the binary search must not push its bookkeeping onto the
	// heap (the old linear scan was alloc-free too — this pins the
	// replacement).
	r := New()
	h := r.Histogram("h", DepthBounds())
	v := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v = (v + 137) % 2048
	})
	if allocs != 0 {
		t.Errorf("enabled Observe allocates %.1f per op, want 0", allocs)
	}
}

func TestInstrumentsAreNamedSingletons(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same counter name returned distinct instruments")
	}
	if r.Scope("s").Counter("a") == r.Counter("a") {
		t.Error("scoped counter collided with root counter of same leaf name")
	}
	if r.Scope("s").Counter("a") != r.Scope("s").Counter("a") {
		t.Error("same scoped name returned distinct instruments")
	}
	if r.Histogram("h", DepthBounds()) != r.Histogram("h", nil) {
		t.Error("same histogram name returned distinct instruments")
	}
	if r.Scope("s").Tracer() != r.Scope("s").Tracer() {
		t.Error("same scope returned distinct tracers")
	}
	if r.Tracer() == r.Scope("s").Tracer() {
		t.Error("root and scoped tracer should differ")
	}
}

func TestTracerCapCountsDrops(t *testing.T) {
	tr := &Tracer{scope: "t/"}
	const extra = 7
	for i := 0; i < maxTraceEvents+extra; i++ {
		tr.Instant("c", "n", int64(i), 0, 0)
	}
	if tr.Events() != maxTraceEvents {
		t.Errorf("buffered %d events, want cap %d", tr.Events(), maxTraceEvents)
	}
	if tr.Dropped() != extra {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), extra)
	}
}

func TestSummaryRowsSortedAndComplete(t *testing.T) {
	r := New()
	populate(r)
	rows := r.SummaryRows()
	if len(rows) == 0 {
		t.Fatal("no summary rows")
	}
	var names []string
	for _, row := range rows {
		names = append(names, row.Name)
		if row.Value == "" {
			t.Errorf("row %q has empty value", row.Name)
		}
	}
	joined := strings.Join(names, "\n")
	if !strings.Contains(joined, "fig21/req/flits") ||
		!strings.Contains(joined, "fig21/req/occupancy") ||
		!strings.Contains(joined, "fig21/req/queue/final") {
		t.Errorf("summary missing expected instruments:\n%s", joined)
	}
}
