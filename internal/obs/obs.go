// Package obs is the simulators' deterministic observability layer: a
// registry of named counters, gauges, and fixed-bucket histograms plus a
// cycle-stamped event tracer. The paper's whole methodology is observing
// opaque hardware through counters and timers (clock(), smid, nvprof
// per-slice counters); this package gives the reproduced simulators the
// counter surface the real hardware never had.
//
// The layer holds a strict two-part contract:
//
//  1. Disabled collectors cost zero allocations in Step hot loops. A nil
//     *Registry is the disabled collector: every derived instrument is a
//     nil pointer whose methods no-op, so simulators can call
//     counter.Add(1) unconditionally without branching on an enable flag
//     and without a single allocation (guarded by the alloc regression
//     tests and benchmarks next to each simulator).
//
//  2. All emission is byte-deterministic. Counters and histogram buckets
//     are atomic (so sweeps sharded across internal/parallel workers
//     merge commutatively), trace events buffer per Scope in simulation
//     order, and both writers iterate sorted keys - two identically
//     seeded runs emit byte-identical metrics and trace files for every
//     worker-pool size (noclint's determinism analyzer enforces the
//     sorted-key idiom on this package statically).
//
// Instruments are cheap named singletons: Counter/Gauge/Histogram return
// the existing instrument when the name is already registered. Scopes
// prefix instrument names ("fig21/req/...") and give each concurrent
// experiment its own trace buffer; a Tracer must only be used from one
// goroutine at a time (each cycle-driven simulator is single-threaded,
// which is exactly that).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically growing event count. Increments are atomic,
// so instruments shared across internal/parallel workers sum
// deterministically. A nil *Counter (from a nil Registry) no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value. Unlike counters,
// concurrent writers do not merge deterministically, so a gauge must
// only be set from one goroutine (one simulator loop). A nil *Gauge
// no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last value set; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution of integer observations
// (queue depths, occupancies, latencies in cycles). Bucket i counts
// observations v <= Bounds[i]; one implicit overflow bucket counts the
// rest. Buckets are atomic so sharded observers merge commutatively.
// A nil *Histogram no-ops.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	sum     atomic.Int64
}

// Observe records one value. Two deliberate economies keep this cheap —
// it runs once per cycle inside Mesh.Step, Xbar.Step, and the MC
// queue-depth path. The bucket scan is a hand-rolled binary search
// (first i with v <= bounds[i], overflow otherwise) instead of the old
// linear walk, inlined rather than calling sort.Search so no closure
// touches the hot path. And there is no separate observation counter:
// the count is by construction the sum of the bucket counts, so Count
// derives it at emission time instead of Observe paying a third atomic
// add on every observation. The zero-allocation contract is guarded by
// TestObserveDoesNotAllocate and the hist_observe perfbench entry.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations — the sum of the bucket
// counts; 0 on a nil histogram. Like every read-side method it is meant
// for emission after the observed simulation has quiesced; a read
// racing in-flight Observes may see a partially applied observation.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observations; 0 on a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the bucket counts, the last entry
// being the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// DepthBounds is the default bucket layout for queue-depth and
// occupancy histograms: exponential from 0 to 1024.
func DepthBounds() []int64 {
	return []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// registryRoot holds the shared instrument tables behind every Scope
// view. The mutex guards only instrument registration (construction
// time, never the Step hot path); increments afterwards are atomic.
type registryRoot struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracers  map[string]*Tracer
}

// Registry names and owns instruments. The zero of the type is not
// used; a nil *Registry is the disabled collector (all methods no-op
// and return nil instruments). Values returned by Scope share the root
// instrument tables under prefixed names.
type Registry struct {
	root   *registryRoot
	prefix string
}

// New builds an enabled, empty registry.
func New() *Registry {
	return &Registry{root: &registryRoot{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		tracers:  map[string]*Tracer{},
	}}
}

// Enabled reports whether the registry collects anything.
func (r *Registry) Enabled() bool { return r != nil }

// Scope derives a view whose instrument names (and trace buffer) are
// prefixed with name + "/". Scoping a nil registry stays nil, so
// callers can thread scopes unconditionally.
func (r *Registry) Scope(name string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{root: r.root, prefix: r.prefix + name + "/"}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	full := r.prefix + name
	r.root.mu.Lock()
	defer r.root.mu.Unlock()
	c, ok := r.root.counters[full]
	if !ok {
		c = &Counter{}
		r.root.counters[full] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	full := r.prefix + name
	r.root.mu.Lock()
	defer r.root.mu.Unlock()
	g, ok := r.root.gauges[full]
	if !ok {
		g = &Gauge{}
		r.root.gauges[full] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds must be ascending; later calls
// reuse the first registration's bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	full := r.prefix + name
	r.root.mu.Lock()
	defer r.root.mu.Unlock()
	h, ok := r.root.hists[full]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.root.hists[full] = h
	}
	return h
}

// Tracer returns this scope's event tracer, creating it on first use.
// One tracer must only be fed from a single goroutine; concurrent
// scopes get independent buffers, which the trace writer concatenates
// in sorted scope order so the file is byte-identical for every
// worker-pool size.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.root.mu.Lock()
	defer r.root.mu.Unlock()
	t, ok := r.root.tracers[r.prefix]
	if !ok {
		t = &Tracer{scope: r.prefix}
		r.root.tracers[r.prefix] = t
	}
	return t
}

// snapshot returns the sorted names of one instrument table.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Chrome trace-event phases used by the tracer.
const (
	phaseInstant  = 'i'
	phaseCounter  = 'C'
	phaseComplete = 'X'
)

// event is one buffered trace record. Names and categories are expected
// to be static strings; per-event variability goes into ts/tid/arg so
// emission never formats in the hot loop.
type event struct {
	ph        byte
	cat, name string
	ts        int64 // cycle stamp (trace "ts", in microsecond units)
	dur       int64 // complete events only
	tid       int64
	arg       int64
}

// maxTraceEvents bounds one scope's buffer; past it events are counted
// as dropped instead of buffered, deterministically (per-scope append
// order is the simulation order).
const maxTraceEvents = 1 << 20

// Tracer buffers cycle-stamped events for one scope. A nil *Tracer
// no-ops. Not safe for concurrent use; give each goroutine its own
// scope.
type Tracer struct {
	scope   string
	events  []event
	dropped int64
}

// emit appends one event, honouring the buffer cap.
func (t *Tracer) emit(e event) {
	if t == nil {
		return
	}
	if len(t.events) >= maxTraceEvents {
		t.dropped++
		return
	}
	//lint:ignore hotpathalloc enabled tracing buffers events by design (capped at maxTraceEvents); a nil Tracer - the unobserved default - returns above without touching the buffer
	t.events = append(t.events, e)
}

// Instant records a point event at a cycle on a track (tid), with one
// free integer argument (rendered as args.v).
func (t *Tracer) Instant(cat, name string, cycle, tid, arg int64) {
	t.emit(event{ph: phaseInstant, cat: cat, name: name, ts: cycle, tid: tid, arg: arg})
}

// Count records a counter-series sample at a cycle.
func (t *Tracer) Count(cat, name string, cycle, value int64) {
	t.emit(event{ph: phaseCounter, cat: cat, name: name, ts: cycle, arg: value})
}

// Span records a complete event covering [start, start+dur) on a track
// (tid), with one free integer argument - e.g. a packet's life from
// injection to delivery.
func (t *Tracer) Span(cat, name string, start, dur, tid, arg int64) {
	t.emit(event{ph: phaseComplete, cat: cat, name: name, ts: start, dur: dur, tid: tid, arg: arg})
}

// Events returns the number of buffered events; 0 on a nil tracer.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns the number of events past the buffer cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}
