package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer flags nondeterminism sources that would make
// simulation results irreproducible: calls to math/rand package-level
// functions (which draw from the process-global, unseeded source instead
// of a seeded *rand.Rand threaded through the model), wall-clock reads
// (time.Now, time.Since) inside internal packages, and raw go
// statements inside internal packages. Command packages (cmd/...) may
// read the clock for report timestamps; the model itself must not.
// Concurrency belongs in internal/parallel, whose index-addressed
// worker pool keeps reduction order independent of goroutine
// scheduling; a bare goroutine anywhere else in the model invites
// scheduling-order-dependent results.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "flag unseeded math/rand use, wall-clock reads, and raw goroutines inside the model",
		Run:  runDeterminism,
	}
}

// randConstructors are the math/rand package-level names that build or
// feed an explicit source rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
}

func runDeterminism(p *Package) []Diagnostic {
	internal := strings.Contains(p.ImportPath+"/", "/internal/")
	inCmd := strings.Contains(p.ImportPath+"/", "/cmd/")
	// internal/parallel is the one sanctioned home for goroutines: its
	// runner is what makes them deterministic for everyone else.
	inParallel := strings.HasSuffix(p.ImportPath, "internal/parallel")
	var diags []Diagnostic
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if internal && !inCmd && !inParallel {
				diags = append(diags, p.diag(g.Pos(), "determinism",
					"go statement spawns a raw goroutine inside the model; shard through parallel.Map/ForEach so results stay index-addressed and scheduling-independent"))
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath := p.packagePathOf(file, sel)
		switch pkgPath {
		case "math/rand":
			if !randConstructors[sel.Sel.Name] {
				diags = append(diags, p.diag(call.Pos(), "determinism",
					"rand.%s draws from the process-global source; route randomness through a seeded *rand.Rand",
					sel.Sel.Name))
			}
		case "time":
			if clockFuncs[sel.Sel.Name] && internal && !inCmd {
				diags = append(diags, p.diag(call.Pos(), "determinism",
					"time.%s reads the wall clock inside the model; pass timestamps in from the caller",
					sel.Sel.Name))
			}
		}
		return true
	})
	return diags
}

// packagePathOf resolves the package a selector's qualifier refers to,
// returning "" when it is not a package reference. Type information is
// used when available, falling back to matching the file's imports so
// the analyzer still works on fixtures that do not type-check.
func (p *Package) packagePathOf(file *ast.File, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return ""
	}
	// Fallback: an unresolved identifier matching an import's name.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}
