package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer flags scheduling- and order-dependent constructs
// that would make simulation results irreproducible: raw go statements
// inside internal packages, and unordered map iteration in obs emission
// paths. Concurrency belongs in internal/parallel, whose index-addressed
// worker pool keeps reduction order independent of goroutine
// scheduling; a bare goroutine anywhere else in the model invites
// scheduling-order-dependent results. (Entropy-source checks — global
// math/rand, wall-clock and environment reads — moved to the seedflow
// analyzer in noclint v2; the interprocedural half of this analyzer
// lives in DeterminismReachAnalyzer.)
//
// Inside the obs package - the one place instrument state leaves the
// process - the analyzer additionally flags every range over a map
// except the collect-then-sort idiom (append keys to a slice the
// function hands to sort.*). Metrics and trace files promise to be
// byte-identical run to run, and the orderedoutput analyzer's
// heuristics (writer fed, returned slice built) are too narrow to
// guard a promise that strong: any map-order walk in an emission path
// is a bug there even when its output looks commutative today.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "flag raw goroutines inside the model and map-order walks in obs emission paths",
		Run:  runDeterminism,
	}
}

// randConstructors are the math/rand package-level names that build or
// feed an explicit source rather than drawing from the global one
// (shared with the seedflow analyzer).
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// clockFuncs are the time package functions that read the wall clock
// (shared with the seedflow analyzer).
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
}

func runDeterminism(p *Package) []Diagnostic {
	internal := strings.Contains(p.ImportPath+"/", "/internal/")
	inCmd := strings.Contains(p.ImportPath+"/", "/cmd/")
	// internal/parallel is the one sanctioned home for goroutines: its
	// runner is what makes them deterministic for everyone else.
	inParallel := strings.HasSuffix(p.ImportPath, "internal/parallel")
	var diags []Diagnostic
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if internal && !inCmd && !inParallel {
				diags = append(diags, p.diag(g.Pos(), "determinism",
					"go statement spawns a raw goroutine inside the model; shard through parallel.Map/ForEach so results stay index-addressed and scheduling-independent"))
			}
			return true
		}
		return true
	})
	if packageNamed(p, "obs") {
		diags = append(diags, emissionMapOrderDiags(p, obsMapOrderMsg)...)
	}
	if packageNamed(p, "simcheck") {
		diags = append(diags, emissionMapOrderDiags(p, simcheckMapOrderMsg)...)
	}
	return diags
}

// Emission-path map-order messages. obs promises byte-identical metrics
// and traces; simcheck promises byte-identical violation reports and
// fuzz reproducers (a counterexample that renders differently run to
// run cannot be diffed against a ledgered one).
const (
	obsMapOrderMsg      = "range over map in an obs emission path iterates in nondeterministic order; collect the keys, sort them, and iterate the sorted slice so metrics and traces stay byte-identical"
	simcheckMapOrderMsg = "range over map in a simcheck audit path iterates in nondeterministic order; collect the keys, sort them, and iterate the sorted slice so violation reports and reproducers stay byte-identical"
)

// packageNamed reports whether the package clause names the package
// name (fixtures live under synthetic import paths, so the clause - not
// the directory - is the identity that matters).
func packageNamed(p *Package, name string) bool {
	for _, f := range p.Files {
		if f.Name != nil && f.Name.Name == name {
			return true
		}
	}
	return false
}

// emissionMapOrderDiags flags raw map iteration in a package whose
// output promises byte-identical runs (obs, simcheck). The one
// sanctioned shape is collect-then-sort: a loop whose whole body
// appends the key to a slice the function passes to a sort.* call.
func emissionMapOrderDiags(p *Package, msg string) []Diagnostic {
	var diags []Diagnostic
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			sorted := sortedIdents(p, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if isCollectForSort(rng, sorted) {
					return true
				}
				diags = append(diags, p.diag(rng.Pos(), "determinism", msg))
				return true
			})
			return true
		})
	}
	return diags
}

// isCollectForSort recognizes the exempt idiom: the range body is the
// single statement `xs = append(xs, k)` where xs reaches a sort.* call
// in the same function.
func isCollectForSort(rng *ast.RangeStmt, sorted map[string]bool) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	return ok && sorted[id.Name]
}

// packagePathOf resolves the package a selector's qualifier refers to,
// returning "" when it is not a package reference. Type information is
// used when available, falling back to matching the file's imports so
// the analyzer still works on fixtures that do not type-check.
func (p *Package) packagePathOf(file *ast.File, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return ""
	}
	// Fallback: an unresolved identifier matching an import's name.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}
