package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// sortedKeys returns a map's keys in ascending order, so interprocedural
// passes iterate deterministically (the suite obeys its own rules).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// This file gives the suite its interprocedural backbone: a module-local
// call graph over every package loaded into one Program, plus the
// reachability queries the hot-path and transitive-determinism analyzers
// are built on.
//
// Soundness/conservatism choices (see DESIGN.md "noclint v2"):
//
//   - Nodes are keyed by the types.Func full name ("(*pkg.T).M",
//     "pkg.F"). The Loader type-checks each analyzed package with its
//     own checker instance, so object identity does not survive across
//     packages — the name string does, which is why it is the node key.
//   - Any reference to a module function counts as a call edge, not just
//     direct call expressions. A method value or function value handed
//     to someone else may be invoked by them, so the graph assumes it
//     is ("reference = may-call").
//   - Function literals have no name; their bodies are attributed to the
//     enclosing declared function. A closure built in a hot function is
//     analyzed as part of that function.
//   - Calls through an interface cannot be resolved statically without
//     whole-program type flow, so they fall back to conservative name
//     dispatch: an edge to every module method with the same name. This
//     over-approximates (unrelated same-named methods become reachable)
//     and never under-approximates within the loaded package set.
//   - Calls through plain function-typed values resolve to nothing. The
//     reference that produced the value already created an edge at the
//     point the function was named, so the only escape is a function
//     value that crosses a package boundary as data — accepted and
//     documented.
type Program struct {
	// Packages lists the loaded packages in load order.
	Packages []*Package
	// FullModule marks a Program covering every package of the module.
	// Whole-program verdicts (stale //lint:ignore directives, baseline
	// comparison) are only sound on a full module load, so CheckProgram
	// consults this flag.
	FullModule bool

	modulePath string
	nodes      map[string]*cgNode
	// methodsByName indexes method nodes for conservative interface
	// dispatch.
	methodsByName map[string][]string
}

// cgNode is one declared function or method of the module.
type cgNode struct {
	id   string
	pkg  *Package
	decl *ast.FuncDecl
	// calls holds resolved module-local callee IDs (including plain
	// references; see "reference = may-call" above).
	calls []string
	// dynCalls holds method names invoked through interfaces.
	dynCalls []string
}

// NewProgram builds the call graph over the given packages.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages:      pkgs,
		nodes:         map[string]*cgNode{},
		methodsByName: map[string][]string{},
	}
	if len(pkgs) > 0 {
		prog.modulePath = modulePathOf(pkgs[0])
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				prog.addNode(p, fn)
			}
		}
	}
	return prog
}

// modulePathOf recovers the module path from a package's import path and
// its directory relative to the module root.
func modulePathOf(p *Package) string {
	// ImportPath is modulePath[/subdir]; peel the directory suffix.
	rel := strings.TrimPrefix(p.Dir, p.ModuleRoot)
	rel = strings.Trim(strings.ReplaceAll(rel, "\\", "/"), "/")
	if rel == "" {
		return p.ImportPath
	}
	return strings.TrimSuffix(p.ImportPath, "/"+rel)
}

// addNode registers a declared function and collects its call edges.
func (prog *Program) addNode(p *Package, fn *ast.FuncDecl) {
	id := prog.declID(p, fn)
	n := &cgNode{id: id, pkg: p, decl: fn}
	prog.nodes[id] = n
	if fn.Recv != nil {
		prog.methodsByName[fn.Name.Name] = append(prog.methodsByName[fn.Name.Name], id)
	}
	seen := map[string]bool{}
	dynSeen := map[string]bool{}
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		ident, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[ident]
		if !ok {
			return true
		}
		callee, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// Interface method: conservative dispatch by name.
			if !dynSeen[callee.Name()] {
				dynSeen[callee.Name()] = true
				n.dynCalls = append(n.dynCalls, callee.Name())
			}
			return true
		}
		if callee.Pkg() == nil || !prog.moduleLocal(callee.Pkg().Path()) {
			return true
		}
		cid := callee.FullName()
		if !seen[cid] {
			seen[cid] = true
			n.calls = append(n.calls, cid)
		}
		return true
	})
}

// moduleLocal reports whether an import path belongs to the module.
func (prog *Program) moduleLocal(path string) bool {
	return path == prog.modulePath || strings.HasPrefix(path, prog.modulePath+"/")
}

// declID derives the node key for a declaration, matching
// types.Func.FullName so cross-package references resolve. When type
// information is missing (broken fixtures) the ID is synthesized from
// the AST in the same shape.
func (prog *Program) declID(p *Package, fn *ast.FuncDecl) string {
	if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok && obj != nil {
		return obj.FullName()
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return p.ImportPath + "." + fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	star := ""
	if s, ok := recv.(*ast.StarExpr); ok {
		star, recv = "*", s.X
	}
	// Strip type parameters of generic receivers.
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	}
	name := "?"
	if id, ok := recv.(*ast.Ident); ok {
		name = id.Name
	}
	return "(" + star + p.ImportPath + "." + name + ")." + fn.Name.Name
}

// hotAnnotation is the doc-comment directive marking a function as a
// hot-path root for the interprocedural analyzers; the rest of the line
// is a mandatory free-text reason, mirroring //lint:ignore.
const hotAnnotation = "lint:hotpath"

// hasHotAnnotation reports whether the declaration's doc comment carries
// a //lint:hotpath directive.
func hasHotAnnotation(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, hotAnnotation) {
			return true
		}
	}
	return false
}

// HotRoots returns the IDs of the simulation hot-path entry points:
//
//   - methods named Step with no parameters and no results (the
//     cycle-driven simulator contract; workload generators' Step(t) that
//     return fresh slices by design are deliberately excluded),
//   - methods named Inject or Pop (packet admission / queue service),
//   - any function or method carrying a //lint:hotpath doc directive.
func (prog *Program) HotRoots() []string {
	var roots []string
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if prog.isHotRoot(fn) {
					roots = append(roots, prog.declID(p, fn))
				}
			}
		}
	}
	return roots
}

// isHotRoot applies the root rules to one declaration.
func (prog *Program) isHotRoot(fn *ast.FuncDecl) bool {
	if hasHotAnnotation(fn) {
		return true
	}
	if fn.Recv == nil {
		return false
	}
	switch fn.Name.Name {
	case "Step":
		noParams := fn.Type.Params == nil || len(fn.Type.Params.List) == 0
		noResults := fn.Type.Results == nil || len(fn.Type.Results.List) == 0
		return noParams && noResults
	case "Inject", "Pop":
		return true
	}
	return false
}

// Reachable walks the graph from the given roots and returns, for every
// reachable node ID, the root it was first reached from (roots map to
// themselves). Dynamic (interface) calls fan out to every module method
// sharing the callee's name. Recursion and cycles terminate because each
// node is visited once.
func (prog *Program) Reachable(roots []string) map[string]string {
	from := map[string]string{}
	var queue []string
	for _, r := range roots {
		if _, ok := prog.nodes[r]; !ok {
			continue
		}
		if _, ok := from[r]; ok {
			continue
		}
		from[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n := prog.nodes[id]
		visit := func(callee string) {
			if _, ok := prog.nodes[callee]; !ok {
				return
			}
			if _, ok := from[callee]; ok {
				return
			}
			from[callee] = from[id]
			queue = append(queue, callee)
		}
		for _, callee := range n.calls {
			visit(callee)
		}
		for _, name := range n.dynCalls {
			for _, callee := range prog.methodsByName[name] {
				visit(callee)
			}
		}
	}
	return from
}

// shortID compresses a node ID for diagnostics: the package path is
// dropped, leaving "(*T).M", "(T).M" or "F".
func shortID(id string) string {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			s = s[i+1:]
		}
		// Drop the package qualifier before the type or function name:
		// "pkg.T" -> "T".
		if i := strings.Index(s, "."); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	if strings.HasPrefix(id, "(") {
		end := strings.Index(id, ")")
		if end < 0 {
			return id
		}
		inner := id[1:end]
		star := ""
		if strings.HasPrefix(inner, "*") {
			star, inner = "*", inner[1:]
		}
		return "(" + star + trim(inner) + ")" + id[end+1:]
	}
	return trim(id)
}
