package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support turns the suite into a ratchet. A baseline is the
// position-normalized set of currently accepted findings: entries carry
// the module-root-relative file (slash-separated), the analyzer, the
// message, and a count — but no line or column, so reformatting or
// unrelated edits in the same file do not churn it. Comparing a run
// against the baseline fails in both directions: a finding not covered
// by the baseline is a regression, and a baseline entry no finding
// matched is stale (the violation was fixed, so the ratchet must
// tighten). The committed baseline is ideally empty — then -baseline is
// simply "no findings, and stays that way".

// BaselineEntry is one accepted finding class in a baseline file.
type BaselineEntry struct {
	// File is the module-root-relative, slash-separated path.
	File string `json:"file"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Message is the exact diagnostic message.
	Message string `json:"message"`
	// Count is how many findings with this (file, analyzer, message)
	// shape are accepted.
	Count int `json:"count"`
}

// baselineKey identifies an entry up to its count.
func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// normalizeBaselineFile rewrites a diagnostic's file path relative to
// the module root with forward slashes, so baselines are portable
// across checkouts and platforms.
func normalizeBaselineFile(moduleRoot, file string) string {
	if moduleRoot != "" {
		if rel, err := filepath.Rel(moduleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// BaselineFromDiagnostics folds findings into sorted baseline entries.
func BaselineFromDiagnostics(moduleRoot string, diags []Diagnostic) []BaselineEntry {
	counts := map[string]*BaselineEntry{}
	for _, d := range diags {
		file := normalizeBaselineFile(moduleRoot, d.File)
		k := baselineKey(file, d.Analyzer, d.Message)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{File: file, Analyzer: d.Analyzer, Message: d.Message, Count: 1}
	}
	entries := make([]BaselineEntry, 0, len(counts))
	for _, k := range sortedKeys(counts) {
		entries = append(entries, *counts[k])
	}
	return entries
}

// WriteBaseline writes entries as deterministic, human-diffable JSON.
// An empty baseline is written as the literal `[]`.
func WriteBaseline(path string, entries []BaselineEntry) error {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if entries == nil {
		entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return entries, nil
}

// CompareBaseline checks findings against a baseline. It returns the
// findings not covered by the baseline (regressions) and the baseline
// entries with a higher accepted count than observed findings (stale —
// expressed as entries whose Count is the unmatched surplus). The run
// passes only when both are empty.
func CompareBaseline(moduleRoot string, diags []Diagnostic, entries []BaselineEntry) (newDiags []Diagnostic, stale []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range entries {
		budget[baselineKey(e.File, e.Analyzer, e.Message)] += e.Count
	}
	for _, d := range diags {
		k := baselineKey(normalizeBaselineFile(moduleRoot, d.File), d.Analyzer, d.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		newDiags = append(newDiags, d)
	}
	for _, e := range entries {
		k := baselineKey(e.File, e.Analyzer, e.Message)
		if budget[k] > 0 {
			surplus := e
			surplus.Count = budget[k]
			stale = append(stale, surplus)
			budget[k] = 0
		}
	}
	return newDiags, stale
}
