package lint

import (
	"go/ast"
	"go/types"
)

// OrderedOutputAnalyzer flags range statements over maps whose body
// produces externally visible, order-sensitive output: writing to an
// io.Writer (or any Write/Print-style sink), or appending to a slice the
// enclosing function returns. Go randomizes map iteration order, so such
// loops make reports and API results differ run to run; iterate sorted
// keys instead. Loops that only accumulate commutative state (sums,
// maxima) are fine and not flagged, and neither is the collect-then-sort
// idiom: appending to a returned slice is exempt when the function also
// passes that slice to a sort.* function.
func OrderedOutputAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "orderedoutput",
		Doc:  "flag map-order-dependent output (writers fed or returned slices built inside range-over-map)",
		Run:  runOrderedOutput,
	}
}

// sinkMethodNames are method names treated as order-sensitive sinks.
var sinkMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
}

// fmtOutputFuncs are fmt package functions that emit formatted output.
var fmtOutputFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runOrderedOutput(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			returned := returnedIdents(fn.Body)
			for name := range sortedIdents(p, fn.Body) {
				delete(returned, name)
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rng.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if verb := orderSensitiveUse(p, file, rng.Body, returned); verb != "" {
					diags = append(diags, p.diag(rng.Pos(), "orderedoutput",
						"range over map %s in nondeterministic order; iterate sorted keys", verb))
				}
				return true
			})
			return true
		})
	}
	return diags
}

// returnedIdents collects the names of identifiers appearing in the
// function body's return statements.
func returnedIdents(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// sortedIdents collects identifiers the function passes to a sort.*
// call: slices built in map order but sorted before use are
// deterministic.
func sortedIdents(p *Package, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// orderSensitiveUse scans a range body for output-order dependence and
// describes the offending use, or returns "".
func orderSensitiveUse(p *Package, file *ast.File, body *ast.BlockStmt, returned map[string]bool) string {
	verb := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if verb != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if p.packagePathOf(file, sel) == "fmt" && fmtOutputFuncs[sel.Sel.Name] {
				verb = "writes output"
				return false
			}
			// A method call named like a sink on a non-package receiver.
			if p.packagePathOf(file, sel) == "" && sinkMethodNames[sel.Sel.Name] {
				verb = "writes output"
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || fun.Name != "append" || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && returned[id.Name] {
					verb = "appends to the returned slice " + id.Name
					return false
				}
			}
		}
		return true
	})
	return verb
}
