package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the module-qualified path, e.g. "gpunoc/internal/gpu".
	ImportPath string
	// Dir is the absolute directory holding the sources.
	Dir string
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// Fset positions every token of every file.
	Fset *token.FileSet
	// Files holds the parsed sources (tests and testdata excluded),
	// ordered by file name.
	Files []*ast.File
	// Types is the checked package; partial when sources have errors.
	Types *types.Package
	// Info carries the use/def/type maps analyzers consult. Lenient
	// checking fills it as far as possible even for broken fixtures.
	Info *types.Info
	// TypeErrors collects type-checking problems (fixtures exercise
	// analyzers on intentionally broken code, so these are not fatal).
	TypeErrors []error
}

// Loader parses and type-checks packages of one module. Module-internal
// imports resolve against the module tree; standard-library imports are
// checked from source so no precompiled export data is needed.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	stdlib   types.ImporterFrom
	packages map[string]*types.Package
	loading  map[string]bool
}

// NewLoader builds a loader rooted at the module directory.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	std, _ := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		stdlib:     std,
		packages:   map[string]*types.Package{},
		loading:    map[string]bool{},
	}
}

// FindModuleRoot walks up from dir to the directory holding go.mod and
// returns it along with the declared module path.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// parseDir parses the non-test .go files of dir in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	return files, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Load parses and leniently type-checks the package in dir, returning
// the analyzable Package. Type errors are collected, not fatal, so the
// intentionally broken lint fixtures still produce partial type info.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	p := &Package{
		ImportPath: path,
		Dir:        abs,
		ModuleRoot: l.ModuleRoot,
		Fset:       l.Fset,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check always returns a package; with conf.Error set it keeps going
	// past errors and fills Info as far as it can.
	p.Types, _ = conf.Check(path, l.Fset, files, p.Info)
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, everything else from the standard library.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.packages[path]; ok {
		return pkg, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkgDir := filepath.Join(l.ModuleRoot, filepath.FromSlash(sub))
		files, err := l.parseDir(pkgDir)
		if err != nil {
			return nil, err
		}
		var errs []error
		conf := types.Config{
			Importer: l,
			Error:    func(err error) { errs = append(errs, err) },
		}
		pkg, _ := conf.Check(path, l.Fset, files, nil)
		if pkg == nil {
			return nil, fmt.Errorf("lint: cannot check %s: %v", path, errs)
		}
		// Mark complete even on partial errors so dependents resolve.
		pkg.MarkComplete()
		l.packages[path] = pkg
		return pkg, nil
	}
	if l.stdlib == nil {
		return nil, fmt.Errorf("lint: no standard-library importer for %q", path)
	}
	pkg, err := l.stdlib.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	l.packages[path] = pkg
	return pkg, nil
}
