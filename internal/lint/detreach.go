package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismReachAnalyzer is the determinism analyzer's interprocedural
// half: raw go statements and unordered map iteration are flagged in any
// function transitively reachable from a simulation hot root, even when
// the function lives in a helper package the per-package pass would wave
// through (a cmd/ package, or a non-obs package whose map walk feeds a
// simulator decision). It reports under the same "determinism" analyzer
// name, so one //lint:ignore vocabulary covers both halves.
//
// Overlap with the per-package pass is subtracted, not duplicated:
//
//   - go statements are only flagged here where the per-package rule is
//     silent (cmd/ packages, internal/parallel, non-internal packages);
//     inside the model the per-package rule already fires.
//   - map ranges in packages named obs or simcheck are left to the
//     per-package emission rules.
//
// The collect-then-sort idiom (append keys to a slice handed to sort.*)
// stays exempt here exactly as in the obs rule.
func DeterminismReachAnalyzer() *ProgramAnalyzer {
	return &ProgramAnalyzer{
		Name: "determinism",
		Doc:  "transitively flag raw goroutines and unordered map iteration reachable from simulation entry points",
		Run:  runDeterminismReach,
	}
}

func runDeterminismReach(prog *Program) []Diagnostic {
	var diags []Diagnostic
	reach := prog.Reachable(prog.HotRoots())
	for _, id := range sortedKeys(reach) {
		n := prog.nodes[id]
		diags = append(diags, reachDeterminismDiags(n, shortID(reach[id]))...)
	}
	return diags
}

// reachDeterminismDiags flags the scheduling- and order-dependent
// constructs of one hot function.
func reachDeterminismDiags(n *cgNode, root string) []Diagnostic {
	p := n.pkg
	internal := strings.Contains(p.ImportPath+"/", "/internal/")
	inCmd := strings.Contains(p.ImportPath+"/", "/cmd/")
	inParallel := strings.HasSuffix(p.ImportPath, "internal/parallel")
	// The per-package determinism pass already flags go statements in
	// internal model packages; only the gaps need the transitive rule.
	goCovered := internal && !inCmd && !inParallel
	// obs and simcheck get their own per-package map-order rules; the
	// transitive rule stands down there to avoid double-flagging.
	perPkgMapRule := packageNamed(p, "obs") || packageNamed(p, "simcheck")

	sorted := sortedIdents(p, n.decl.Body)
	var diags []Diagnostic
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			if !goCovered {
				diags = append(diags, p.diag(x.Pos(), "determinism",
					"go statement spawns a raw goroutine on a simulation path (reachable from %s); results become scheduling-dependent — shard through parallel.Map/ForEach", root))
			}
		case *ast.RangeStmt:
			if perPkgMapRule {
				return true
			}
			tv, ok := p.Info.Types[x.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectForSort(x, sorted) {
				return true
			}
			diags = append(diags, p.diag(x.Pos(), "determinism",
				"range over map on a simulation path (reachable from %s) iterates in nondeterministic order; collect the keys, sort them, and iterate the sorted slice", root))
		}
		return true
	})
	return diags
}
