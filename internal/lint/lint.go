// Package lint is a domain-aware static-analysis suite enforcing the
// simulator's cross-cutting invariants: determinism (no unseeded
// randomness or wall-clock reads in the model), unit safety (no
// laundering between Cycles/GBps/Bytes), ordered output (no report or
// API output driven by map iteration order), registry completeness
// (every experiment registered and documented), and error hygiene (no
// silently dropped errors).
//
// The suite is built purely on the standard library (go/ast, go/parser,
// go/token, go/types); cmd/noclint is the CLI front end. Findings can be
// suppressed with a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the offending line or the line directly above it; the
// reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical file:line: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a loaded package and
// returns its findings (suppressions are applied by the caller).
type Analyzer struct {
	// Name is the identifier used in output and //lint:ignore comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run executes the analyzer over one package.
	Run func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		UnitSafetyAnalyzer(),
		OrderedOutputAnalyzer(),
		RegistryAnalyzer(),
		ErrCheckAnalyzer(),
	}
}

// Check runs every analyzer over the package and returns the surviving
// (unsuppressed) findings sorted by position.
func Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, a := range Analyzers() {
		diags = append(diags, a.Run(p)...)
	}
	diags = FilterSuppressed(p, diags)
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column and analyzer so
// output is stable across runs.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// diag builds a Diagnostic for a position within the package.
func (p *Package) diag(pos token.Pos, analyzer, format string, args ...interface{}) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	file      string
	line      int
	analyzers map[string]bool
}

// FilterSuppressed drops diagnostics covered by //lint:ignore comments.
// A directive covers findings on its own line and on the line directly
// below it (the comment-above-statement idiom). Directives without a
// reason are themselves reported so suppressions stay auditable.
func FilterSuppressed(p *Package, diags []Diagnostic) []Diagnostic {
	var sups []suppression
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 3 {
					diags = append(diags, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[1], ",") {
					names[n] = true
				}
				sups = append(sups, suppression{file: pos.Filename, line: pos.Line, analyzers: names})
			}
		}
	}
	if len(sups) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if d.File == s.file && (d.Line == s.line || d.Line == s.line+1) &&
				(s.analyzers[d.Analyzer] || s.analyzers["*"]) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// walkFiles applies fn to every node of every file in the package.
func (p *Package) walkFiles(fn func(file *ast.File, n ast.Node) bool) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return fn(file, n)
		})
	}
}
