// Package lint is a domain-aware static-analysis suite enforcing the
// simulator's cross-cutting invariants: determinism (no unseeded
// randomness or wall-clock reads in the model), unit safety (no
// laundering between Cycles/GBps/Bytes), ordered output (no report or
// API output driven by map iteration order), registry completeness
// (every experiment registered and documented), and error hygiene (no
// silently dropped errors).
//
// The suite is built purely on the standard library (go/ast, go/parser,
// go/token, go/types); cmd/noclint is the CLI front end. Findings can be
// suppressed with a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the offending line or the line directly above it; the
// reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical file:line: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a loaded package and
// returns its findings (suppressions are applied by the caller).
type Analyzer struct {
	// Name is the identifier used in output and //lint:ignore comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run executes the analyzer over one package.
	Run func(p *Package) []Diagnostic
}

// ProgramAnalyzer is an interprocedural invariant checker. Run inspects
// a whole Program (all loaded packages plus their shared call graph)
// and returns its findings (suppressions are applied by the caller).
type ProgramAnalyzer struct {
	// Name is the identifier used in output and //lint:ignore comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run executes the analyzer over the program. It may be nil for
	// analyzers CheckProgram evaluates itself (staleignore needs the
	// suppression-usage information only CheckProgram has).
	Run func(prog *Program) []Diagnostic
}

// Analyzers returns the per-package suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		SeedFlowAnalyzer(),
		UnitSafetyAnalyzer(),
		OrderedOutputAnalyzer(),
		RegistryAnalyzer(),
		ErrCheckAnalyzer(),
	}
}

// ProgramAnalyzers returns the interprocedural suite in a fixed order.
func ProgramAnalyzers() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		HotPathAllocAnalyzer(),
		DeterminismReachAnalyzer(),
		AtomicMixAnalyzer(),
		StaleIgnoreAnalyzer(),
	}
}

// StaleIgnoreAnalyzer reports //lint:ignore directives that no longer
// suppress anything: the finding they silenced was fixed (or never
// existed), so the directive is dead weight that would mask a future
// regression at the same position. It has no Run of its own — it is
// evaluated inside CheckProgram after suppression matching, because
// only CheckProgram knows which directives were actually consulted,
// and only on full-module Programs (a partial load cannot distinguish
// "stale" from "suppresses an interprocedural finding rooted in a
// package outside this load").
func StaleIgnoreAnalyzer() *ProgramAnalyzer {
	return &ProgramAnalyzer{
		Name: "staleignore",
		Doc:  "report //lint:ignore directives that no longer suppress anything (full-module runs only)",
	}
}

// Check runs every per-package analyzer over the package and returns
// the surviving (unsuppressed) findings sorted by position.
func Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, a := range Analyzers() {
		diags = append(diags, a.Run(p)...)
	}
	diags = FilterSuppressed(p, diags)
	SortDiagnostics(diags)
	return diags
}

// CheckProgram runs the full suite — per-package analyzers over every
// package, then the interprocedural analyzers over the program — and
// applies //lint:ignore suppression across the whole diagnostic set at
// once (an interprocedural finding can be suppressed at its position
// like any other). On full-module Programs, directives that suppressed
// nothing are reported under the staleignore analyzer.
func CheckProgram(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, p := range prog.Packages {
		for _, a := range Analyzers() {
			diags = append(diags, a.Run(p)...)
		}
	}
	for _, a := range ProgramAnalyzers() {
		if a.Run != nil {
			diags = append(diags, a.Run(prog)...)
		}
	}
	var sups []suppression
	for _, p := range prog.Packages {
		ps, malformed := collectSuppressions(p)
		sups = append(sups, ps...)
		diags = append(diags, malformed...)
	}
	diags, used := applySuppressions(diags, sups)
	if prog.FullModule {
		for i, s := range sups {
			if !used[i] {
				diags = append(diags, Diagnostic{
					File: s.file, Line: s.line, Col: s.col,
					Analyzer: "staleignore",
					Message: fmt.Sprintf("//lint:ignore %s directive suppresses nothing; the finding was fixed — delete the directive so it cannot mask a future regression",
						s.names),
				})
			}
		}
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column and analyzer so
// output is stable across runs.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// diag builds a Diagnostic for a position within the package.
func (p *Package) diag(pos token.Pos, analyzer, format string, args ...interface{}) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	file      string
	line      int
	col       int
	names     string // the analyzer list as written, for staleignore reports
	analyzers map[string]bool
}

// collectSuppressions parses the //lint:ignore directives of a package,
// also validating //lint:hotpath directives (both require a free-text
// reason). Malformed directives are returned as diagnostics so
// suppressions and hot-root annotations stay auditable.
func collectSuppressions(p *Package) ([]suppression, []Diagnostic) {
	var sups []suppression
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				pos := p.Fset.Position(c.Pos())
				if strings.HasPrefix(text, hotAnnotation) {
					if len(strings.Fields(text)) < 2 {
						malformed = append(malformed, Diagnostic{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Analyzer: "lint",
							Message:  "malformed //lint:hotpath directive: want `//lint:hotpath <reason>`",
						})
					}
					continue
				}
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 3 {
					malformed = append(malformed, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[1], ",") {
					names[n] = true
				}
				sups = append(sups, suppression{
					file: pos.Filename, line: pos.Line, col: pos.Column,
					names: fields[1], analyzers: names,
				})
			}
		}
	}
	return sups, malformed
}

// applySuppressions drops diagnostics covered by directives. A
// directive covers findings on its own line and on the line directly
// below it (the comment-above-statement idiom). The returned slice
// records, per directive, whether it suppressed at least one finding.
func applySuppressions(diags []Diagnostic, sups []suppression) ([]Diagnostic, []bool) {
	used := make([]bool, len(sups))
	if len(sups) == 0 {
		return diags, used
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i, s := range sups {
			if d.File == s.file && (d.Line == s.line || d.Line == s.line+1) &&
				(s.analyzers[d.Analyzer] || s.analyzers["*"]) {
				suppressed = true
				used[i] = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out, used
}

// FilterSuppressed drops diagnostics covered by //lint:ignore comments
// in one package. Directives without a reason are themselves reported
// so suppressions stay auditable.
func FilterSuppressed(p *Package, diags []Diagnostic) []Diagnostic {
	sups, malformed := collectSuppressions(p)
	diags = append(diags, malformed...)
	out, _ := applySuppressions(diags, sups)
	return out
}

// walkFiles applies fn to every node of every file in the package.
func (p *Package) walkFiles(fn func(file *ast.File, n ast.Node) bool) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return fn(file, n)
		})
	}
}
