package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMixAnalyzer flags struct fields that are accessed both through
// sync/atomic calls (atomic.AddInt64(&s.f, 1)) and by plain load/store
// (s.f++, v := s.f) anywhere in the program. Mixing the two is the
// classic observability-layer footgun: the plain access races with the
// atomic one, and on weakly ordered hardware a torn or stale read
// silently corrupts a counter the report then treats as ground truth.
// Fields of the atomic wrapper types (atomic.Int64 etc.) cannot be
// accessed plainly and need no check — which is exactly why internal/obs
// uses them.
//
// The analysis is cross-package: field identity is keyed by declaration
// position (one shared FileSet positions every package of a Program), so
// an exported field mutated atomically in its home package and read
// plainly from a neighbour is still caught.
func AtomicMixAnalyzer() *ProgramAnalyzer {
	return &ProgramAnalyzer{
		Name: "atomicmix",
		Doc:  "flag struct fields accessed both via sync/atomic and by plain load/store",
		Run:  runAtomicMix,
	}
}

// atomicFuncs are the sync/atomic package-level functions whose first
// argument addresses the word they operate on.
func isAtomicAccessor(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runAtomicMix(prog *Program) []Diagnostic {
	// First pass: find fields passed by address to sync/atomic accessors.
	// Keyed by the field's declaration position, which is stable across
	// the Program's shared FileSet; the set of selector nodes consumed by
	// atomic calls is remembered so the second pass skips them.
	atomicFields := map[string]string{} // decl-position key -> display name
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	for _, p := range prog.Packages {
		p.walkFiles(func(file *ast.File, node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || p.packagePathOf(file, sel) != "sync/atomic" || !isAtomicAccessor(sel.Sel.Name) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				return true
			}
			fsel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fv, ok := fieldObject(p, fsel); ok {
				atomicFields[fieldKey(p, fv)] = fv.Name()
				inAtomicCall[fsel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Second pass: every other selector resolving to one of those fields
	// is a plain access.
	var diags []Diagnostic
	for _, p := range prog.Packages {
		p.walkFiles(func(file *ast.File, node ast.Node) bool {
			fsel, ok := node.(*ast.SelectorExpr)
			if !ok || inAtomicCall[fsel] {
				return true
			}
			fv, ok := fieldObject(p, fsel)
			if !ok {
				return true
			}
			if name, mixed := atomicFields[fieldKey(p, fv)]; mixed {
				diags = append(diags, p.diag(fsel.Pos(), "atomicmix",
					"field %s is accessed with sync/atomic elsewhere; this plain access races with it — use the atomic accessors (or an atomic.Int64 field) everywhere", name))
			}
			return true
		})
	}
	return diags
}

// fieldObject resolves a selector to the struct field it names.
func fieldObject(p *Package, sel *ast.SelectorExpr) (*types.Var, bool) {
	obj, ok := p.Info.Uses[sel.Sel]
	if !ok {
		return nil, false
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return nil, false
	}
	return v, true
}

// fieldKey derives a cross-checker-stable identity for a field: its
// declaration position. Packages loaded separately re-typecheck their
// imports, so *types.Var identity does not survive package boundaries,
// but the shared FileSet's file:line:col of the declaration does.
func fieldKey(p *Package, v *types.Var) string {
	pos := p.Fset.Position(v.Pos())
	return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}
