package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitSafetyAnalyzer enforces the internal/units discipline on top of
// what the compiler already guarantees:
//
//   - no unit-to-unit conversions (units.GBps(c) where c is units.Cycles
//     compiles, but launders a latency into a bandwidth; the sanctioned
//     boundary crossing is an explicit float64(...) conversion),
//   - no same-unit multiplication or division between non-constant
//     operands (Cycles*Cycles is dimensionally squared, Cycles/Cycles a
//     dimensionless ratio — both still typed Cycles),
//   - no mixed-unit arithmetic and no bare float64 values assigned to
//     unit-typed variables or fields (the compiler rejects these too,
//     but the analyzer names them precisely even in partially broken
//     code).
func UnitSafetyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "unitsafety",
		Doc:  "flag unit laundering, squared units and bare-float64 unit assignments",
		Run:  runUnitSafety,
	}
}

// unitTypeName returns the named unit type of t ("Cycles", "GBps", ...)
// when t is declared in an internal/units package, and "" otherwise.
func unitTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/units") {
		return ""
	}
	return obj.Name()
}

func runUnitSafety(p *Package) []Diagnostic {
	var diags []Diagnostic
	typeOf := func(e ast.Expr) (types.Type, bool) {
		tv, ok := p.Info.Types[e]
		if !ok || tv.Type == nil {
			return nil, false
		}
		return tv.Type, true
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := p.Info.Types[e]
		return ok && tv.Value != nil
	}
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Unit-to-unit conversion: the callee is a type, the target
			// and argument are distinct unit types.
			if len(n.Args) != 1 {
				return true
			}
			tv, ok := p.Info.Types[n.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := unitTypeName(tv.Type)
			if dst == "" {
				return true
			}
			argT, ok := typeOf(n.Args[0])
			if !ok {
				return true
			}
			src := unitTypeName(argT)
			if src != "" && src != dst {
				diags = append(diags, p.diag(n.Pos(), "unitsafety",
					"conversion %s(%s) launders one unit into another; cross unit boundaries with an explicit float64(...) conversion",
					dst, src))
			}
		case *ast.BinaryExpr:
			lt, lok := typeOf(n.X)
			rt, rok := typeOf(n.Y)
			if !lok || !rok {
				return true
			}
			lu, ru := unitTypeName(lt), unitTypeName(rt)
			if lu == "" && ru == "" {
				return true
			}
			// Untyped and typed constants scale units legitimately
			// (e.g. 0.7 * smRead); only flag variable-by-variable ops.
			if isConst(n.X) || isConst(n.Y) {
				return true
			}
			switch {
			case n.Op == token.MUL && lu != "" && lu == ru:
				diags = append(diags, p.diag(n.Pos(), "unitsafety",
					"%s * %s is a squared unit still typed %s; use Scale or convert through float64", lu, ru, lu))
			case n.Op == token.QUO && lu != "" && lu == ru:
				diags = append(diags, p.diag(n.Pos(), "unitsafety",
					"%s / %s is a dimensionless ratio still typed %s; convert operands through float64", lu, ru, lu))
			case lu != ru && isArithOrCompare(n.Op):
				diags = append(diags, p.diag(n.Pos(), "unitsafety",
					"mixed-unit operation %s %s %s; convert one side explicitly", unitOrType(lu, lt), n.Op, unitOrType(ru, rt)))
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				lt, lok := typeOf(lhs)
				rt, rok := typeOf(n.Rhs[i])
				if !lok || !rok {
					continue
				}
				if u := unitTypeName(lt); u != "" && isBareFloat64(rt) && !isConst(n.Rhs[i]) {
					diags = append(diags, p.diag(n.Rhs[i].Pos(), "unitsafety",
						"bare float64 assigned to %s; wrap the value in %s(...) at the boundary", u, u))
				}
			}
		case *ast.CompositeLit:
			lt, ok := typeOf(n)
			if !ok {
				return true
			}
			st, ok := lt.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				ft := fieldType(st, key.Name)
				if ft == nil {
					continue
				}
				rt, rok := typeOf(kv.Value)
				if !rok {
					continue
				}
				if u := unitTypeName(ft); u != "" && isBareFloat64(rt) && !isConst(kv.Value) {
					diags = append(diags, p.diag(kv.Value.Pos(), "unitsafety",
						"bare float64 assigned to field %s of unit type %s; wrap the value in %s(...)", key.Name, u, u))
				}
			}
		}
		return true
	})
	return diags
}

// isArithOrCompare reports whether op combines two numeric operands in a
// way where mixed units are meaningless.
func isArithOrCompare(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO,
		token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// isBareFloat64 reports whether t is the predeclared float64.
func isBareFloat64(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// unitOrType renders a unit name, falling back to the full type.
func unitOrType(unit string, t types.Type) string {
	if unit != "" {
		return unit
	}
	return t.String()
}

// fieldType finds a struct field's type by name.
func fieldType(st *types.Struct, name string) types.Type {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i).Type()
		}
	}
	return nil
}
