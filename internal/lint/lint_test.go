package lint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches type-checked stdlib packages across fixture loads
// (source-importing fmt and friends once instead of per test).
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, modPath, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader = NewLoader(root, modPath)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loader
}

func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	p, err := fixtureLoader(t).Load(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	return p
}

// analyzerByName fetches one analyzer from the suite.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

// render formats diagnostics with base file names for golden
// comparison.
func render(diags []Diagnostic) string {
	SortDiagnostics(diags)
	var b strings.Builder
	for _, d := range diags {
		d.File = filepath.Base(d.File)
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestAnalyzerGoldens proves every analyzer fires on its bad fixture
// with exactly the expected diagnostics, and stays silent on the clean
// fixture.
func TestAnalyzerGoldens(t *testing.T) {
	for _, name := range []string{"determinism", "seedflow", "unitsafety", "orderedoutput", "registry", "errcheck"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := analyzerByName(t, name)

			got := render(a.Run(loadFixture(t, filepath.Join(name, "bad"))))
			wantBytes, err := os.ReadFile(filepath.Join("testdata", "src", name, "expected.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("bad fixture diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			if diags := a.Run(loadFixture(t, filepath.Join(name, "clean"))); len(diags) != 0 {
				t.Errorf("clean fixture produced findings:\n%s", render(diags))
			}
		})
	}
}

// TestDeterminismObsEmission proves the determinism analyzer's
// obs-specific rule: raw map iteration in a package named obs is
// flagged, and the collect-then-sort idiom (the shape the real emitters
// use) is exempt. The fixture packages are both named obs - the rule
// keys on the package clause, so it guards the real internal/obs
// regardless of fixture directory layout.
func TestDeterminismObsEmission(t *testing.T) {
	a := analyzerByName(t, "determinism")

	got := render(a.Run(loadFixture(t, filepath.Join("obsoutput", "bad"))))
	wantBytes, err := os.ReadFile(filepath.Join("testdata", "src", "obsoutput", "expected.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("bad fixture diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	if diags := a.Run(loadFixture(t, filepath.Join("obsoutput", "clean"))); len(diags) != 0 {
		t.Errorf("clean fixture produced findings:\n%s", render(diags))
	}
}

// TestDeterminismSimcheckEmission proves the same emission rule guards
// packages named simcheck: the audit harness promises byte-identical
// violation reports and reproducers, so raw map iteration is flagged
// there and collect-then-sort stays exempt, exactly as in obs.
func TestDeterminismSimcheckEmission(t *testing.T) {
	a := analyzerByName(t, "determinism")

	got := render(a.Run(loadFixture(t, filepath.Join("simcheckaudit", "bad"))))
	wantBytes, err := os.ReadFile(filepath.Join("testdata", "src", "simcheckaudit", "expected.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("bad fixture diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	if diags := a.Run(loadFixture(t, filepath.Join("simcheckaudit", "clean"))); len(diags) != 0 {
		t.Errorf("clean fixture produced findings:\n%s", render(diags))
	}
}

// TestSuppression proves //lint:ignore drops a finding on the next
// line, leaves others, and reports malformed directives.
func TestSuppression(t *testing.T) {
	p := loadFixture(t, "suppress")
	diags := Check(p)
	got := render(diags)
	want := "" +
		"suppressed.go:14: [seedflow] time.Now reads the wall clock inside the model; pass timestamps in from the caller\n" +
		"suppressed.go:18: [lint] malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`\n" +
		"suppressed.go:19: [seedflow] time.Now reads the wall clock inside the model; pass timestamps in from the caller\n"
	if got != want {
		t.Errorf("suppression mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCleanRealTree is the self-test the CI gate relies on: the whole
// suite — per-package and interprocedural analyzers, plus staleignore
// on the full-module Program — must pass over the repository's own
// packages. Fixture directories are excluded the same way cmd/noclint
// excludes them.
func TestCleanRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := fixtureLoader(t)
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && path != l.ModuleRoot) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.ImportPath, p.TypeErrors[0])
		}
		pkgs = append(pkgs, p)
	}
	prog := NewProgram(pkgs)
	prog.FullModule = true
	if diags := CheckProgram(prog); len(diags) != 0 {
		t.Errorf("unexpected findings:\n%s", render(diags))
	}
}

// TestIDForms pins the humanized doc matching: figures by number,
// tables by number or roman numeral, extensions literally.
func TestIDForms(t *testing.T) {
	doc := "Table I compares GPUs. Fig 1 and Figure 12 show latency. ext3 audits stages."
	for _, id := range []string{"table1", "fig1", "fig12", "ext3"} {
		if !docMentions(doc, id) {
			t.Errorf("docMentions(%q) = false, want true", id)
		}
	}
	for _, id := range []string{"table2", "fig2", "fig13", "ext4"} {
		if docMentions(doc, id) {
			t.Errorf("docMentions(%q) = true, want false", id)
		}
	}
}

// TestRoman pins the numeral rendering used for table IDs.
func TestRoman(t *testing.T) {
	cases := map[int]string{1: "i", 4: "iv", 9: "ix", 14: "xiv", 29: "xxix", 0: "", 31: ""}
	for n, want := range cases {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
}
