package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// RegistryAnalyzer enforces experiment-registry completeness for
// packages holding exp_*.go files (internal/core and its fixtures):
// every Experiment composite literal must be passed to register() (so it
// reaches All() and the CLI), IDs must be unique, every registered
// entry must set a Run function (an entry without one is dead weight:
// nocchar -all cannot execute it and nocserve cannot serve it), and
// every registered ID must be mentioned in the nearest EXPERIMENTS.md.
// Doc matching tolerates humanized forms: "fig12" matches "Fig 12",
// "Figure 12" or "fig12"; "table1" matches "Table I" (roman numerals)
// or "Table 1".
func RegistryAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "registry",
		Doc:  "flag unregistered experiment constructors, unservable entries, and IDs missing from EXPERIMENTS.md",
		Run:  runRegistry,
	}
}

func runRegistry(p *Package) []Diagnostic {
	var diags []Diagnostic
	type reg struct {
		id     string
		pos    ast.Node
		hasRun bool
	}
	var registered []reg
	sawExpFile := false
	for _, file := range p.Files {
		name := filepath.Base(p.Fset.Position(file.Pos()).Filename)
		if !strings.HasPrefix(name, "exp_") {
			continue
		}
		sawExpFile = true
		// Composite literals inside register(...) calls are registered;
		// any other Experiment literal with an ID never reaches All().
		inRegister := map[*ast.CompositeLit]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "register" {
				return true
			}
			for _, arg := range call.Args {
				if u, ok := arg.(*ast.UnaryExpr); ok {
					arg = u.X
				}
				if cl, ok := arg.(*ast.CompositeLit); ok {
					inRegister[cl] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			id := experimentID(cl)
			if id == "" {
				return true
			}
			if inRegister[cl] {
				registered = append(registered, reg{id: id, pos: cl, hasRun: experimentHasRun(cl)})
			} else {
				diags = append(diags, p.diag(cl.Pos(), "registry",
					"experiment %q is constructed but never passed to register(); it will not appear in All()", id))
			}
			return true
		})
	}
	if !sawExpFile {
		return diags
	}

	seen := map[string]bool{}
	for _, r := range registered {
		if seen[r.id] {
			diags = append(diags, p.diag(r.pos.Pos(), "registry",
				"experiment ID %q registered more than once", r.id))
		}
		seen[r.id] = true
		if !r.hasRun {
			diags = append(diags, p.diag(r.pos.Pos(), "registry",
				"experiment %q is registered without a Run function; nocchar and nocserve cannot execute it", r.id))
		}
	}

	docPath, doc, err := findExperimentsDoc(p.Dir, p.ModuleRoot)
	if err != nil {
		diags = append(diags, p.diag(p.Files[0].Pos(), "registry",
			"package registers experiments but no EXPERIMENTS.md found between %s and the module root", p.Dir))
		return diags
	}
	rel, rerr := filepath.Rel(p.ModuleRoot, docPath)
	if rerr != nil {
		rel = docPath
	}
	for _, r := range registered {
		if !docMentions(doc, r.id) {
			diags = append(diags, p.diag(r.pos.Pos(), "registry",
				"experiment %q is not mentioned in %s", r.id, rel))
		}
	}
	return diags
}

// experimentID extracts the ID field of an Experiment composite
// literal, or "" when cl is not one.
func experimentID(cl *ast.CompositeLit) string {
	if id, ok := cl.Type.(*ast.Ident); !ok || id.Name != "Experiment" {
		if sel, ok := cl.Type.(*ast.SelectorExpr); !ok || sel.Sel.Name != "Experiment" {
			return ""
		}
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "ID" {
			continue
		}
		lit, ok := kv.Value.(*ast.BasicLit)
		if !ok {
			continue
		}
		return strings.Trim(lit.Value, `"`)
	}
	return ""
}

// experimentHasRun reports whether the literal sets a non-nil Run
// field — the servability requirement for registered experiments.
func experimentHasRun(cl *ast.CompositeLit) bool {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Run" {
			if v, ok := kv.Value.(*ast.Ident); ok && v.Name == "nil" {
				return false
			}
			return true
		}
	}
	return false
}

// findExperimentsDoc walks from dir up to the module root looking for
// EXPERIMENTS.md, so fixtures can carry their own copy.
func findExperimentsDoc(dir, root string) (string, string, error) {
	for d := dir; ; d = filepath.Dir(d) {
		path := filepath.Join(d, "EXPERIMENTS.md")
		if data, err := os.ReadFile(path); err == nil {
			return path, string(data), nil
		}
		if d == root || filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no EXPERIMENTS.md above %s", dir)
		}
	}
}

// docMentions reports whether the documentation names the experiment ID
// in any humanized form.
func docMentions(doc, id string) bool {
	for _, form := range idForms(id) {
		re := regexp.MustCompile(`(?i)\b` + regexp.QuoteMeta(form) + `\b`)
		if re.MatchString(doc) {
			return true
		}
	}
	return false
}

// idForms expands an experiment ID into the spellings accepted in docs.
func idForms(id string) []string {
	forms := []string{id}
	add := func(prefix string, aliases ...string) bool {
		num, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
		if err != nil || !strings.HasPrefix(id, prefix) {
			return false
		}
		for _, a := range aliases {
			forms = append(forms, fmt.Sprintf("%s %d", a, num))
		}
		if r := roman(num); r != "" {
			for _, a := range aliases {
				forms = append(forms, a+" "+r)
			}
		}
		return true
	}
	if !add("fig", "fig", "figure", "fig.") {
		add("table", "table")
	}
	return forms
}

// roman renders 1..30 as a roman numeral (enough for paper tables).
func roman(n int) string {
	if n <= 0 || n > 30 {
		return ""
	}
	tens := []string{"", "x", "xx", "xxx"}
	ones := []string{"", "i", "ii", "iii", "iv", "v", "vi", "vii", "viii", "ix"}
	return tens[n/10] + ones[n%10]
}
