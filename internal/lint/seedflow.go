package lint

import (
	"go/ast"
	"strings"
)

// SeedFlowAnalyzer enforces that all entropy in the model provably flows
// from the injected seed: no draws from the process-global math/rand
// source anywhere, and no wall-clock reads (time.Now, time.Since) or
// environment reads (os.Getenv and friends) inside internal non-cmd
// packages. Command packages may read the clock for report timestamps
// and the environment for flags-by-env; the model itself must not —
// an environment variable is just as much an unrecorded input as a
// clock read, and both make a "same config, same seed" run
// irreproducible.
//
// These checks lived inside the determinism analyzer in noclint v1;
// they are split out so //lint:ignore directives can distinguish
// "entropy source" findings from "scheduling/order" findings, and so
// the transitive determinism pass stays focused on the latter.
func SeedFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "seedflow",
		Doc:  "flag global math/rand draws, wall-clock reads, and env reads that bypass the injected seed",
		Run:  runSeedFlow,
	}
}

// envFuncs are the os package functions that read the process
// environment.
var envFuncs = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
}

func runSeedFlow(p *Package) []Diagnostic {
	internal := strings.Contains(p.ImportPath+"/", "/internal/")
	inCmd := strings.Contains(p.ImportPath+"/", "/cmd/")
	var diags []Diagnostic
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch p.packagePathOf(file, sel) {
		case "math/rand":
			if !randConstructors[sel.Sel.Name] {
				diags = append(diags, p.diag(call.Pos(), "seedflow",
					"rand.%s draws from the process-global source; route randomness through a seeded *rand.Rand",
					sel.Sel.Name))
			}
		case "time":
			if clockFuncs[sel.Sel.Name] && internal && !inCmd {
				diags = append(diags, p.diag(call.Pos(), "seedflow",
					"time.%s reads the wall clock inside the model; pass timestamps in from the caller",
					sel.Sel.Name))
			}
		case "os":
			if envFuncs[sel.Sel.Name] && internal && !inCmd {
				diags = append(diags, p.diag(call.Pos(), "seedflow",
					"os.%s reads the environment inside the model; environment state is an unrecorded input — plumb it through the config instead",
					sel.Sel.Name))
			}
		}
		return true
	})
	return diags
}
