// Package clean shows the sanctioned shape on a hot path: collect the
// map keys, sort them, iterate the sorted slice.
package clean

import "sort"

// Sim is a toy cycle-driven model.
type Sim struct {
	weights map[int]int
	total   int
}

// Step is a hot root; the map walk below is the exempt
// collect-then-sort idiom.
func (s *Sim) Step() {
	keys := make([]int, 0, len(s.weights))
	for k := range s.weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		s.total += s.weights[k]
	}
}
