// Package bad exercises the transitive determinism analyzer: unordered
// map iteration reachable from a hot root through a helper the
// per-package pass would not connect to the simulation.
package bad

// Sim is a toy cycle-driven model.
type Sim struct {
	weights map[int]int
	total   int
}

// Step is a hot root; route is reachable from it.
func (s *Sim) Step() {
	s.route()
}

// route walks a map in nondeterministic order on the simulation path.
func (s *Sim) route() {
	for _, w := range s.weights {
		s.total += w
	}
}
