// Package bad exercises the transitive determinism analyzer where the
// per-package rule is silent: this fixture's import path contains
// /cmd/, so only reachability from a hot root flags the goroutine.
package bad

// Sim is a toy cycle-driven model living under a cmd/ path.
type Sim struct{ n int }

// Step is a hot root; the raw goroutine makes its results
// scheduling-dependent even though the per-package rule waves cmd/
// packages through.
func (s *Sim) Step() {
	go s.work()
}

// work mutates model state.
func (s *Sim) work() { s.n++ }
