// Package clean shows the sanctioned unit patterns: Scale for scalar
// factors, float64(...) conversions at explicit boundaries, untyped
// constants converting implicitly.
package clean

import "gpunoc/internal/units"

type calib struct {
	RTT units.Cycles
}

// Derate scales a bandwidth by a dimensionless factor.
func Derate(b units.GBps) units.GBps { return b.Scale(0.88) }

// Utilization crosses the unit boundary explicitly.
func Utilization(carried, capacity units.GBps) float64 {
	return float64(carried) / float64(capacity)
}

// Default uses an untyped constant, which converts implicitly.
func Default() calib { return calib{RTT: 158} }

// FromMeasurement wraps a raw measurement at the boundary.
func FromMeasurement(v float64) units.Cycles { return units.Cycles(v) }
