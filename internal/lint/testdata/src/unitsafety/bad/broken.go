// The analyzer also names violations the compiler rejects (the loader
// type-checks leniently): mixed-unit arithmetic and bare-float64
// assignment to unit-typed fields.
package bad

import "gpunoc/internal/units"

type calib struct {
	RTT units.Cycles
}

// MixedAdd sums a latency and a bandwidth.
func MixedAdd(c units.Cycles, g units.GBps) float64 {
	return float64(c + g)
}

// SetRTT assigns an unwrapped float64 to a unit field.
func SetRTT(cal *calib, v float64) {
	cal.RTT = v
}

// NewCalib populates a unit field from a bare float64 variable.
func NewCalib(v float64) calib {
	return calib{RTT: v}
}
