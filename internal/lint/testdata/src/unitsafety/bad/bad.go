// Package bad exercises the unitsafety analyzer on code that compiles:
// unit laundering, squared units and dimensionless ratios.
package bad

import "gpunoc/internal/units"

// Launder converts a latency directly into a bandwidth.
func Launder(c units.Cycles) units.GBps { return units.GBps(c) }

// Square multiplies two latencies.
func Square(a, b units.Cycles) units.Cycles { return a * b }

// Ratio divides two bandwidths but keeps the unit type.
func Ratio(a, b units.GBps) units.GBps { return a / b }
