// Package bad exercises the staleignore analyzer: a directive whose
// finding was fixed suppresses nothing and must be deleted.
package bad

import "time"

// Render takes its timestamp from the caller; the directive below is
// left over from a time.Now call that no longer exists.
func Render(now time.Time) string {
	//lint:ignore seedflow stale: the clock read was removed in a refactor
	return now.Format(time.RFC3339)
}
