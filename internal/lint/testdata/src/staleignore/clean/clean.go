// Package clean shows a live directive: it suppresses a real seedflow
// finding, so staleignore stays silent.
package clean

import "time"

// Banner deliberately reads the clock for the report header.
func Banner() time.Time {
	//lint:ignore seedflow the report banner wants the real wall-clock time
	return time.Now()
}
