// Package obs mirrors the real emission idiom: collect the keys, sort
// them, and iterate the sorted slice.
package obs

import (
	"fmt"
	"io"
	"sort"
)

// counters stands in for an instrument table.
var counters = map[string]int64{}

// WriteMetrics emits the table in sorted-key order; the collect loop is
// the sanctioned exemption.
func WriteMetrics(w io.Writer) {
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		_, _ = fmt.Fprintf(w, "%s=%d\n", k, counters[k])
	}
}
