// Package obs mimics the real obs package's emission path with raw map
// iteration; every range here walks a map in nondeterministic order.
package obs

import (
	"fmt"
	"io"
)

// counters stands in for an instrument table.
var counters = map[string]int64{}

// WriteMetrics feeds the writer straight from map order.
func WriteMetrics(w io.Writer) {
	for name, v := range counters {
		fmt.Fprintf(w, "%s=%d\n", name, v)
	}
}

// Total only accumulates, which is commutative today - but in an
// emission package any map walk is one refactor away from ordered
// output, so the rule flags it anyway.
func Total() int64 {
	var s int64
	for _, v := range counters {
		s += v
	}
	return s
}
