// Package bad exercises the atomicmix analyzer: a field updated
// through sync/atomic in one method and read plainly in another.
package bad

import "sync/atomic"

// Counter mixes atomic and plain access to hits.
type Counter struct {
	hits int64
}

// Incr updates hits atomically.
func (c *Counter) Incr() {
	atomic.AddInt64(&c.hits, 1)
}

// Read loads hits without synchronization; this races with Incr.
func (c *Counter) Read() int64 {
	return c.hits
}
