// Package clean shows the sanctioned shapes: atomic wrapper types
// (which cannot be accessed plainly), and plain fields no one touches
// atomically.
package clean

import "sync/atomic"

// Counter uses the wrapper type for the shared word.
type Counter struct {
	hits atomic.Int64
	name string
}

// Incr updates hits through the wrapper.
func (c *Counter) Incr() { c.hits.Add(1) }

// Label reads a plain field that has no atomic accesses anywhere.
func (c *Counter) Label() string { return c.name }
