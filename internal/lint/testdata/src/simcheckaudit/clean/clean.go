// Package simcheck mirrors the real audit-summary idiom: collect the
// keys, sort them, and iterate the sorted slice.
package simcheck

import (
	"fmt"
	"io"
	"sort"
)

// anomalies stands in for a per-invariant violation tally.
var anomalies = map[string]int64{}

// WriteSummary emits the tally in sorted-key order; the collect loop is
// the sanctioned exemption.
func WriteSummary(w io.Writer) {
	invs := make([]string, 0, len(anomalies))
	for k := range anomalies {
		invs = append(invs, k)
	}
	sort.Strings(invs)
	for _, k := range invs {
		_, _ = fmt.Fprintf(w, "%s=%d\n", k, anomalies[k])
	}
}
