// Package simcheck mimics the audit harness's reporting path with raw
// map iteration; every range here walks a map in nondeterministic
// order, so violation reports would shuffle run to run.
package simcheck

import (
	"fmt"
	"io"
)

// anomalies stands in for a per-invariant violation tally.
var anomalies = map[string]int64{}

// WriteSummary feeds the writer straight from map order.
func WriteSummary(w io.Writer) {
	for inv, n := range anomalies {
		fmt.Fprintf(w, "%s=%d\n", inv, n)
	}
}

// Total only accumulates, which is commutative today - but in a
// reporting package any map walk is one refactor away from ordered
// output, so the rule flags it anyway.
func Total() int64 {
	var s int64
	for _, n := range anomalies {
		s += n
	}
	return s
}
