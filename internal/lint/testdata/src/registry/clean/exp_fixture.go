// Package clean registers every constructed experiment with a Run
// function and documents each ID in the sibling EXPERIMENTS.md.
package clean

// Experiment mirrors the core registry entry shape.
type Experiment struct {
	ID    string
	Title string
	Run   func()
}

var registry = map[string]*Experiment{}

func register(e *Experiment) { registry[e.ID] = e }

func runStub() {}

func init() {
	register(&Experiment{ID: "table1", Title: "documented as Table I", Run: runStub})
	register(&Experiment{ID: "fig1", Title: "documented as Fig 1", Run: runStub})
	register(&Experiment{ID: "fig12", Title: "documented as Figure 12", Run: runStub})
	register(&Experiment{ID: "ext1", Title: "documented literally", Run: runStub})
}
