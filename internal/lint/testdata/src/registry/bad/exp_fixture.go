// Package bad exercises the registry analyzer: an unregistered
// constructor, a duplicate ID, and a registered experiment missing from
// EXPERIMENTS.md (which sits next to this package).
package bad

// Experiment mirrors the core registry entry shape.
type Experiment struct {
	ID    string
	Title string
}

var registry = map[string]*Experiment{}

func register(e *Experiment) { registry[e.ID] = e }

func init() {
	register(&Experiment{ID: "fig1", Title: "registered and documented"})
	register(&Experiment{ID: "fig2", Title: "registered but missing from the doc"})
	register(&Experiment{ID: "table1", Title: "documented as a roman numeral"})
	register(&Experiment{ID: "fig1", Title: "duplicate ID"})
}

// orphan never reaches the registry, so All() will not return it.
var orphan = &Experiment{ID: "fig9", Title: "constructed but never registered"}
