// Package bad exercises the registry analyzer: an unregistered
// constructor, a duplicate ID, a registered experiment missing from
// EXPERIMENTS.md (which sits next to this package), and a registered
// experiment with no Run function (unservable).
package bad

// Experiment mirrors the core registry entry shape.
type Experiment struct {
	ID    string
	Title string
	Run   func()
}

var registry = map[string]*Experiment{}

func register(e *Experiment) { registry[e.ID] = e }

func runStub() {}

func init() {
	register(&Experiment{ID: "fig1", Title: "registered and documented", Run: runStub})
	register(&Experiment{ID: "fig2", Title: "registered but missing from the doc", Run: runStub})
	register(&Experiment{ID: "table1", Title: "documented as a roman numeral", Run: runStub})
	register(&Experiment{ID: "fig1", Title: "duplicate ID", Run: runStub})
	register(&Experiment{ID: "fig3", Title: "documented, but with no Run function"})
}

// orphan never reaches the registry, so All() will not return it.
var orphan = &Experiment{ID: "fig9", Title: "constructed but never registered", Run: runStub}
