// Package clean shows the sanctioned patterns: sorted keys before
// output, collect-then-sort, and commutative accumulation.
package clean

import (
	"fmt"
	"io"
	"sort"
)

// Dump writes map entries in sorted key order.
func Dump(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Keys collects then sorts, so the result is deterministic.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total accumulates commutatively; iteration order cannot show.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
