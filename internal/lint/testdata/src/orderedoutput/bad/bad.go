// Package bad exercises the orderedoutput analyzer: output and returned
// slices driven by map iteration order.
package bad

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes map entries in iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Keys returns keys in iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Render builds a report string in iteration order.
func Render(m map[string]float64) string {
	var b strings.Builder
	for k, v := range m {
		b.WriteString(fmt.Sprintf("%s,%.2f\n", k, v))
	}
	return b.String()
}
