// Package callgraph is the call-graph unit-test fixture: recursion,
// method values, interface dispatch, and an unreachable function.
package callgraph

// Walker is dispatched through an interface.
type Walker interface{ Walk() }

// A implements Walker.
type A struct{ n int }

// B implements Walker.
type B struct{ n int }

// Walk advances A.
func (a *A) Walk() { a.n++ }

// Walk advances B.
func (b *B) Walk() { b.n++ }

// Sim drives the fixture shapes.
type Sim struct {
	w Walker
	f func()
}

// Step is the hot root: recursion via spin, a method value handed off
// (reference = may-call), and an interface call resolved by
// conservative name dispatch.
func (s *Sim) Step() {
	spin(3)
	s.f = s.helper
	s.w.Walk()
}

// helper is only referenced as a method value, never called directly.
func (s *Sim) helper() {}

// spin recurses; the BFS must terminate anyway.
func spin(n int) {
	if n > 0 {
		spin(n - 1)
	}
}

// lonely is referenced by nothing and must stay unreachable.
func lonely() {}
