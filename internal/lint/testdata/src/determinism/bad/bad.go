// Package bad exercises the determinism analyzer: global math/rand use
// and wall-clock reads inside an internal package.
package bad

import (
	"math/rand"
	"time"
)

// Shuffle draws from the process-global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Jitter draws from the process-global source.
func Jitter() float64 { return rand.Float64() }

// Stamp reads the wall clock inside the model.
func Stamp() time.Time { return time.Now() }

// Elapsed reads the wall clock inside the model.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Race spawns a raw goroutine inside the model; concurrency must go
// through internal/parallel's index-addressed runner.
func Race(xs []int) {
	go Shuffle(xs)
}
