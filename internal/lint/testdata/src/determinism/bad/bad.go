// Package bad exercises the determinism analyzer: a raw goroutine
// inside an internal package. (Entropy-source violations live in the
// seedflow fixtures since the noclint v2 split.)
package bad

// Race spawns a raw goroutine inside the model; concurrency must go
// through internal/parallel's index-addressed runner.
func Race(xs []int) {
	go shuffle(xs)
}

// shuffle reverses in place; the work itself is fine, launching it on a
// raw goroutine is not.
func shuffle(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
