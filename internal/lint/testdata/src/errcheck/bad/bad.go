// Package bad exercises the errcheck analyzer: silently dropped error
// returns in statements, defers and goroutines.
package bad

import (
	"fmt"
	"io"
	"os"
)

// Report writes to an arbitrary writer and ignores every error.
func Report(w io.Writer, f *os.File) {
	fmt.Fprintf(w, "report\n")
	defer f.Close()
	go f.Sync()
	os.Remove("stale.csv")
}
