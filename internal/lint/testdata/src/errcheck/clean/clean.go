// Package clean shows the sanctioned error-handling patterns: checked
// returns, explicit discards, and writes that cannot fail.
package clean

import (
	"fmt"
	"os"
	"strings"
)

// Report handles or explicitly discards every error.
func Report(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "report\n") // strings.Builder writes cannot fail
	fmt.Println(b.String())     // stdout writes are allowlisted
	if _, err := f.WriteString(b.String()); err != nil {
		_ = f.Close()
		return err
	}
	_ = os.Remove("stale.csv") // explicit, auditable discard
	return f.Close()
}
