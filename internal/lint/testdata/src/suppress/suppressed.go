// Package suppress exercises //lint:ignore handling.
package suppress

import "time"

// Banner deliberately reads the clock: the directive above the call
// suppresses the seedflow finding.
func Banner() time.Time {
	//lint:ignore seedflow the report banner wants the real wall-clock time
	return time.Now()
}

// Unsuppressed still fires.
func Unsuppressed() time.Time { return time.Now() }

// Malformed directives (no reason) are themselves reported.
func MalformedDirective() time.Time {
	//lint:ignore seedflow
	return time.Now()
}
