// Package bad exercises the seedflow analyzer: global math/rand use,
// wall-clock reads, and environment reads inside an internal package.
package bad

import (
	"math/rand"
	"os"
	"time"
)

// Shuffle draws from the process-global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Jitter draws from the process-global source.
func Jitter() float64 { return rand.Float64() }

// Stamp reads the wall clock inside the model.
func Stamp() time.Time { return time.Now() }

// Elapsed reads the wall clock inside the model.
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// Tuned reads the environment inside the model: an unrecorded input.
func Tuned() string { return os.Getenv("GPUNOC_TUNING") }
