// Package clean shows the sanctioned patterns: a seeded *rand.Rand
// threaded through, timestamps and tuning passed in by the caller.
package clean

import (
	"math/rand"
	"time"
)

// NewRNG builds the seeded source; the constructors are allowlisted.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Shuffle uses an explicit seeded source.
func Shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Render takes the timestamp from the caller instead of reading the
// clock.
func Render(now time.Time) string { return now.Format(time.RFC3339) }

// Tune takes its knob from the config instead of the environment.
func Tune(knob string) string { return "tuned:" + knob }
