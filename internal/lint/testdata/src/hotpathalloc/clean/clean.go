// Package clean shows the sanctioned hot-path shapes: scratch-reset
// appends, validation-exit formatting, struct literals (the intended
// object creation), and pointer-shaped interface values.
package clean

import "fmt"

// Packet is the model object a hot path is allowed to create.
type Packet struct{ ID int }

// Sim is a toy cycle-driven model.
type Sim struct {
	queue []int
	moves []int
}

// Step reuses its scratch slice: the appends are amortized by the
// reset, and handing a pointer to an interface parameter does not box.
func (s *Sim) Step() {
	s.moves = s.moves[:0]
	for i := range s.queue {
		s.moves = append(s.moves, i)
	}
	emit(&Packet{ID: 1})
}

// Inject validates, then admits; the fmt.Errorf (and the boxing of its
// arguments) sits on a validation exit of an error-returning function.
func (s *Sim) Inject(id int) error {
	if id < 0 {
		return fmt.Errorf("negative id %d", id)
	}
	s.queue = s.queue[:0]
	s.queue = append(s.queue, id)
	return nil
}

// emit receives pointer-shaped values; they fit the interface word.
func emit(v interface{}) { _ = v }
