// Package bad exercises the hotpathalloc analyzer: a Step hot root
// reaching allocation-causing constructs, directly and through a
// helper.
package bad

import "fmt"

// Sim is a toy cycle-driven model.
type Sim struct {
	queue []int
}

// Step is a hot root (parameterless, resultless Step method); the
// append may grow and the helper's constructs are transitively hot.
func (s *Sim) Step() {
	s.queue = append(s.queue, 1)
	s.helper(3)
}

// helper is reachable from Step, so every construct here is hot.
func (s *Sim) helper(n int) {
	m := map[int]int{}
	xs := []int{n}
	buf := make([]int, n)
	f := func() {}
	fmt.Println(n)
	box(n)
	_, _, _, _ = m, xs, buf, f
}

// box's interface parameter forces callers to box concrete values.
func box(v interface{}) { _ = v }
