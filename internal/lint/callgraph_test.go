package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// programAnalyzerByName fetches one interprocedural analyzer from the
// suite.
func programAnalyzerByName(t *testing.T, name string) *ProgramAnalyzer {
	t.Helper()
	for _, a := range ProgramAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no program analyzer %q", name)
	return nil
}

// TestProgramAnalyzerGoldens proves every interprocedural analyzer
// fires on its bad fixture with exactly the expected diagnostics and
// stays silent on the clean fixture. The detflow case loads two bad
// packages into one Program: an internal-path one (map iteration, where
// only the transitive rule connects the helper to the simulation) and a
// cmd-path one (goroutine, where the per-package rule is silent by
// design).
func TestProgramAnalyzerGoldens(t *testing.T) {
	cases := []struct {
		analyzer string
		dir      string
		extraBad []string
	}{
		{analyzer: "hotpathalloc", dir: "hotpathalloc"},
		{analyzer: "determinism", dir: "detflow", extraBad: []string{filepath.Join("detflow", "cmd", "bad")}},
		{analyzer: "atomicmix", dir: "atomicmix"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			a := programAnalyzerByName(t, c.analyzer)

			pkgs := []*Package{loadFixture(t, filepath.Join(c.dir, "bad"))}
			for _, extra := range c.extraBad {
				pkgs = append(pkgs, loadFixture(t, extra))
			}
			got := render(a.Run(NewProgram(pkgs)))
			wantBytes, err := os.ReadFile(filepath.Join("testdata", "src", c.dir, "expected.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("bad fixture diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			clean := NewProgram([]*Package{loadFixture(t, filepath.Join(c.dir, "clean"))})
			if diags := a.Run(clean); len(diags) != 0 {
				t.Errorf("clean fixture produced findings:\n%s", render(diags))
			}
		})
	}
}

// TestStaleIgnore proves the three-way contract: a directive that
// suppresses nothing is reported on full-module Programs, stays
// unreported on partial loads (where an interprocedural finding rooted
// outside the load could still need it), and a live directive is never
// reported.
func TestStaleIgnore(t *testing.T) {
	bad := NewProgram([]*Package{loadFixture(t, filepath.Join("staleignore", "bad"))})
	bad.FullModule = true
	got := render(CheckProgram(bad))
	want := "bad.go:10: [staleignore] //lint:ignore seedflow directive suppresses nothing; the finding was fixed — delete the directive so it cannot mask a future regression\n"
	if got != want {
		t.Errorf("stale directive mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	partial := NewProgram([]*Package{loadFixture(t, filepath.Join("staleignore", "bad"))})
	if diags := CheckProgram(partial); len(diags) != 0 {
		t.Errorf("partial load reported stale directives:\n%s", render(diags))
	}

	clean := NewProgram([]*Package{loadFixture(t, filepath.Join("staleignore", "clean"))})
	clean.FullModule = true
	if diags := CheckProgram(clean); len(diags) != 0 {
		t.Errorf("live directive misreported:\n%s", render(diags))
	}
}

// TestCallGraphReachability pins the graph's conservatism on the shapes
// that matter: recursion terminates, a method value creates a may-call
// edge, an interface call fans out to every same-named module method,
// and unreferenced functions stay unreachable.
func TestCallGraphReachability(t *testing.T) {
	p := loadFixture(t, "callgraph")
	prog := NewProgram([]*Package{p})

	roots := prog.HotRoots()
	if len(roots) != 1 || !strings.HasSuffix(roots[0], "Sim).Step") {
		t.Fatalf("HotRoots = %v, want exactly (*Sim).Step", roots)
	}

	reach := prog.Reachable(roots)
	short := map[string]bool{}
	for id, root := range reach {
		short[shortID(id)] = true
		if root != roots[0] {
			t.Errorf("%s attributed to root %s, want %s", id, root, roots[0])
		}
	}
	for _, want := range []string{"(*Sim).Step", "(*Sim).helper", "spin", "(*A).Walk", "(*B).Walk"} {
		if !short[want] {
			t.Errorf("%s not reachable; got %v", want, short)
		}
	}
	if short["lonely"] {
		t.Errorf("lonely is unreachable by construction but was reached; got %v", short)
	}
	if len(short) != 5 {
		t.Errorf("reachable set has %d entries, want 5: %v", len(short), short)
	}
}
