package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAllocAnalyzer flags allocation-causing constructs in any
// function transitively reachable from a simulation hot root (a
// parameterless Step method, an Inject/Pop method, or a
// //lint:hotpath-annotated function; see Program.HotRoots). The
// AllocsPerRun regression tests sample this property pointwise at a few
// configurations; the analyzer enforces it structurally over every hot
// function at once.
//
// Flagged constructs: append growth, make, map/slice composite literals,
// closure (func) literals, fmt.* calls, and interface boxing of
// non-pointer-shaped values at call sites. Struct literals are NOT
// flagged: creating a model object (&Packet{...}) is the one intended
// allocation of an admission path, while the constructs above are the
// incidental ones that creep in.
//
// Two idioms are exempt:
//
//   - Scratch reset: appends to a slice the same function resets with
//     `x = x[:0]` are amortized-zero (the Mesh.Step move/push scratch).
//   - Validation exit: constructs inside an if/case body whose last
//     statement is a return, in a function whose final result is an
//     error, are input-validation exits (fmt.Errorf and friends), not
//     steady-state work. This can mask an allocation on a non-error
//     early return — a deliberate conservatism trade documented in
//     DESIGN.md.
func HotPathAllocAnalyzer() *ProgramAnalyzer {
	return &ProgramAnalyzer{
		Name: "hotpathalloc",
		Doc:  "flag allocation-causing constructs reachable from Step/Inject/Pop or //lint:hotpath roots",
		Run:  runHotPathAlloc,
	}
}

func runHotPathAlloc(prog *Program) []Diagnostic {
	var diags []Diagnostic
	reach := prog.Reachable(prog.HotRoots())
	for _, id := range sortedKeys(reach) {
		n := prog.nodes[id]
		diags = append(diags, hotFuncDiags(n, shortID(reach[id]))...)
	}
	return diags
}

// hotFuncDiags flags the allocating constructs of one hot function.
func hotFuncDiags(n *cgNode, root string) []Diagnostic {
	p, body := n.pkg, n.decl.Body
	resets := scratchResets(body)
	exits := validationExits(n.decl)
	exempt := func(pos token.Pos) bool {
		for _, r := range exits {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	var diags []Diagnostic
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if !exempt(x.Pos()) {
				diags = append(diags, p.diag(x.Pos(), "hotpathalloc",
					"closure literal allocates in a hot path (reachable from %s); hoist it out of the per-cycle flow", root))
			}
			return true
		case *ast.CompositeLit:
			if exempt(x.Pos()) {
				return true
			}
			if tv, ok := p.Info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					diags = append(diags, p.diag(x.Pos(), "hotpathalloc",
						"map literal allocates in a hot path (reachable from %s); preallocate it at construction time", root))
				case *types.Slice:
					diags = append(diags, p.diag(x.Pos(), "hotpathalloc",
						"slice literal allocates in a hot path (reachable from %s); preallocate it at construction time", root))
				}
			}
			return true
		case *ast.CallExpr:
			diags = append(diags, hotCallDiags(p, x, root, resets, exempt)...)
			return true
		}
		return true
	})
	return diags
}

// hotCallDiags classifies one call expression in a hot function.
func hotCallDiags(p *Package, call *ast.CallExpr, root string, resets map[string]bool, exempt func(token.Pos) bool) []Diagnostic {
	if exempt(call.Pos()) {
		return nil
	}
	var diags []Diagnostic
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "append":
			if len(call.Args) > 0 && resets[types.ExprString(call.Args[0])] {
				return nil // scratch-reset idiom: amortized-zero
			}
			diags = append(diags, p.diag(call.Pos(), "hotpathalloc",
				"append may grow its backing array in a hot path (reachable from %s); reuse a preallocated buffer or document the amortization with //lint:ignore", root))
			return diags
		case "make", "new":
			diags = append(diags, p.diag(call.Pos(), "hotpathalloc",
				"%s allocates in a hot path (reachable from %s); hoist the allocation to construction time", fun.Name, root))
			return diags
		}
	case *ast.SelectorExpr:
		if file := fileOf(p, call.Pos()); file != nil && p.packagePathOf(file, fun) == "fmt" {
			diags = append(diags, p.diag(call.Pos(), "hotpathalloc",
				"fmt.%s formats (and allocates) in a hot path (reachable from %s); move formatting off the per-cycle flow", fun.Sel.Name, root))
			return diags
		}
	}
	diags = append(diags, boxingDiags(p, call, root)...)
	return diags
}

// boxingDiags flags call arguments whose concrete non-pointer-shaped
// values are converted to interface parameters — each such conversion
// heap-allocates the boxed copy. Pointer-shaped values (pointers, maps,
// channels, funcs, unsafe pointers) fit in the interface word and are
// exempt; nil and untyped nil arguments never box.
func boxingDiags(p *Package, call *ast.CallExpr, root string) []Diagnostic {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	if tv.IsType() {
		// Conversion: T(x) boxes when T is an interface and x is not.
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && boxes(p, call.Args[0]) {
			return []Diagnostic{p.diag(call.Pos(), "hotpathalloc",
				"conversion to interface boxes a value in a hot path (reachable from %s)", root)}
		}
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a ...spread passes the slice through unboxed
			}
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(p, arg) {
			diags = append(diags, p.diag(arg.Pos(), "hotpathalloc",
				"passing a concrete value to an interface parameter boxes it in a hot path (reachable from %s)", root))
		}
	}
	return diags
}

// boxes reports whether converting the argument to an interface
// allocates: its static type is concrete and not pointer-shaped.
func boxes(p *Package, arg ast.Expr) bool {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// scratchResets collects the rendered expressions a function resets to
// zero length (`x = x[:0]`); appends to them are amortized scratch.
func scratchResets(body *ast.BlockStmt) map[string]bool {
	resets := map[string]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sl, ok := as.Rhs[0].(*ast.SliceExpr)
		if !ok || sl.Low != nil || sl.Max != nil {
			return true
		}
		high, ok := sl.High.(*ast.BasicLit)
		if !ok || high.Value != "0" {
			return true
		}
		lhs := types.ExprString(as.Lhs[0])
		if lhs == types.ExprString(sl.X) {
			resets[lhs] = true
		}
		return true
	})
	return resets
}

// validationExits returns the position ranges of if/case bodies whose
// last statement is a return, in functions whose final result is an
// error — the shape of input-validation exits.
func validationExits(fn *ast.FuncDecl) [][2]token.Pos {
	if !fnReturnsError(fn) {
		return nil
	}
	var exits [][2]token.Pos
	record := func(list []ast.Stmt, pos, end token.Pos) {
		if len(list) == 0 {
			return
		}
		if _, ok := list[len(list)-1].(*ast.ReturnStmt); ok {
			exits = append(exits, [2]token.Pos{pos, end})
		}
	}
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.IfStmt:
			record(x.Body.List, x.Body.Pos(), x.Body.End())
		case *ast.CaseClause:
			record(x.Body, x.Pos(), x.End())
		}
		return true
	})
	return exits
}

// fnReturnsError reports whether the function's last result is an
// error (errcheck.go's returnsError answers the same question for call
// expressions).
func fnReturnsError(fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last := res.List[len(res.List)-1].Type
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "error"
}

// fileOf finds the parsed file containing a position.
func fileOf(p *Package, pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
