package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheckAnalyzer flags calls whose error result is silently dropped:
// an expression statement, defer or go statement invoking a function
// whose last result is error. Writes that structurally cannot fail are
// allowlisted: fmt.Print* (stdout), and fmt.Fprint* into a
// strings.Builder, bytes.Buffer, os.Stdout or os.Stderr. Deliberate
// discards must be spelled `_ = f()` or carry a //lint:ignore comment,
// keeping every dropped error auditable.
func ErrCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errcheck",
		Doc:  "flag silently dropped error returns",
		Run:  runErrCheck,
	}
}

func runErrCheck(p *Package) []Diagnostic {
	var diags []Diagnostic
	check := func(file *ast.File, call *ast.CallExpr, how string) {
		if call == nil || !returnsError(p, call) || allowlistedCall(p, file, call) {
			return
		}
		diags = append(diags, p.diag(call.Pos(), "errcheck",
			"%s drops the error returned by %s; handle it or discard explicitly with _ =", how, callName(call)))
	}
	p.walkFiles(func(file *ast.File, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				check(file, call, "statement")
			}
		case *ast.DeferStmt:
			check(file, n.Call, "defer")
		case *ast.GoStmt:
			check(file, n.Call, "go statement")
		}
		return true
	})
	return diags
}

// returnsError reports whether the call's last result is error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// allowlistedCall recognizes calls whose error can never meaningfully
// fire.
func allowlistedCall(p *Package, file *ast.File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if p.packagePathOf(file, sel) == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && infallibleWriter(p, call.Args[0])
		}
		return false
	}
	// Methods on strings.Builder / bytes.Buffer (WriteString et al.)
	// document that they always return a nil error.
	if tv, ok := p.Info.Types[sel.X]; ok && tv.Type != nil {
		if isInfallibleSinkType(tv.Type) {
			return true
		}
	}
	return false
}

// infallibleWriter reports whether the writer expression is a
// strings.Builder, bytes.Buffer, os.Stdout or os.Stderr.
func infallibleWriter(p *Package, w ast.Expr) bool {
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" {
			if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
				return true
			}
		}
	}
	tv, ok := p.Info.Types[w]
	if !ok || tv.Type == nil {
		return false
	}
	return isInfallibleSinkType(tv.Type)
}

// isInfallibleSinkType matches types whose error-returning methods
// document that the error is always nil: strings.Builder, bytes.Buffer
// and math/rand.Rand (its Read never fails), as values or pointers.
func isInfallibleSinkType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "math/rand.Rand":
		return true
	}
	return false
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return "(...)." + fun.Sel.Name
	}
	return "call"
}
