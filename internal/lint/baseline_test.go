package lint

import (
	"path/filepath"
	"testing"
)

// TestBaselineRoundTrip proves the ratchet's full cycle: write →
// compare clean → line moves stay clean (position normalization) → a
// new violation fails → a fixed violation reports the entry as stale.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	d := func(rel string, line int, analyzer, msg string) Diagnostic {
		return Diagnostic{File: filepath.Join(root, filepath.FromSlash(rel)), Line: line, Col: 1, Analyzer: analyzer, Message: msg}
	}
	diags := []Diagnostic{
		d("a/x.go", 3, "hotpathalloc", "append may grow"),
		d("a/x.go", 9, "hotpathalloc", "append may grow"),
		d("b.go", 2, "seedflow", "time.Now reads the wall clock"),
	}

	entries := BaselineFromDiagnostics(root, diags)
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (position-normalized): %+v", len(entries), entries)
	}
	if entries[0].File != "a/x.go" || entries[0].Count != 2 {
		t.Errorf("entry[0] = %+v, want a/x.go with count 2", entries[0])
	}

	path := filepath.Join(root, "baseline.json")
	if err := WriteBaseline(path, entries); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Clean comparison: same findings, no regressions, no stale entries.
	if newD, stale := CompareBaseline(root, diags, loaded); len(newD) != 0 || len(stale) != 0 {
		t.Errorf("clean compare: new=%v stale=%v, want both empty", newD, stale)
	}

	// Position normalization: the same findings on different lines (an
	// unrelated edit shifted the file) still match.
	moved := []Diagnostic{
		d("a/x.go", 30, "hotpathalloc", "append may grow"),
		d("a/x.go", 90, "hotpathalloc", "append may grow"),
		d("b.go", 20, "seedflow", "time.Now reads the wall clock"),
	}
	if newD, stale := CompareBaseline(root, moved, loaded); len(newD) != 0 || len(stale) != 0 {
		t.Errorf("moved compare: new=%v stale=%v, want both empty", newD, stale)
	}

	// A seeded violation is a regression.
	injected := append(append([]Diagnostic{}, diags...), d("c.go", 1, "atomicmix", "plain access races"))
	newD, stale := CompareBaseline(root, injected, loaded)
	if len(newD) != 1 || len(stale) != 0 {
		t.Fatalf("injected compare: new=%v stale=%v, want exactly the c.go finding and no stale", newD, stale)
	}
	if filepath.Base(newD[0].File) != "c.go" {
		t.Errorf("regression file = %s, want c.go", newD[0].File)
	}

	// Fixing one of the two a/x.go findings makes the surplus stale: the
	// ratchet demands the baseline shrink with the fix.
	fixed := []Diagnostic{diags[0], diags[2]}
	newD, stale = CompareBaseline(root, fixed, loaded)
	if len(newD) != 0 || len(stale) != 1 {
		t.Fatalf("fixed compare: new=%v stale=%v, want one stale entry", newD, stale)
	}
	if stale[0].File != "a/x.go" || stale[0].Count != 1 {
		t.Errorf("stale entry = %+v, want a/x.go with surplus count 1", stale[0])
	}
}
