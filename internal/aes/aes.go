// Package aes is a from-scratch AES-128 implementation in the T-table
// style GPU AES libraries use, instrumented to expose the table indices
// each encryption touches. GPU timing side channels (Jiang et al. [6],
// reproduced in the paper's Sec. V-B.1) exploit that a warp of 32
// encryptions coalesces its final-round table lookups into a number of
// unique memory sectors that is linearly visible in the kernel's timing.
//
// The implementation favours clarity over speed and is NOT intended for
// protecting data; it exists to drive the side-channel reproduction.
package aes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// Rounds is the number of AES-128 rounds.
const Rounds = 10

// sbox is the AES S-box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// invSbox is the inverse S-box, computed from sbox at init.
var invSbox [256]byte

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
}

// SBox returns the S-box value for x (the final-round table lookup).
func SBox(x byte) byte { return sbox[x] }

// InvSBox returns the inverse S-box value, which attackers use to recover
// the final-round table index from a ciphertext byte and a key guess.
func InvSBox(x byte) byte { return invSbox[x] }

// xtime multiplies by x in GF(2^8).
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// mul multiplies a by b in GF(2^8).
func mul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// rcon are the key-schedule round constants.
var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// Key is an expanded AES-128 key schedule.
type Key struct {
	// rounds[r] is the 16-byte round key for round r (0..10).
	rounds [Rounds + 1][BlockSize]byte
}

// NewKey expands a 16-byte key.
func NewKey(key []byte) (*Key, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: key length %d, want %d", len(key), KeySize)
	}
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			// RotWord + SubWord + Rcon.
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon[i/4]
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ t[j]
		}
	}
	k := &Key{}
	for r := 0; r <= Rounds; r++ {
		for c := 0; c < 4; c++ {
			copy(k.rounds[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return k, nil
}

// RoundKey returns round key r.
func (k *Key) RoundKey(r int) [BlockSize]byte { return k.rounds[r] }

// LastRoundKey returns the round-10 key, the attack's recovery target.
func (k *Key) LastRoundKey() [BlockSize]byte { return k.rounds[Rounds] }

// Trace records the memory-access-relevant indices of one encryption: the
// T-table lookup index of every round's SubBytes stage, in the ShiftRows
// access order of the executing kernel.
type Trace struct {
	// RoundIndices[r][j] is the table index of round r+1's lookup that fed
	// output byte j.
	RoundIndices [Rounds][BlockSize]byte
	// FinalIndices[j] is the final round's lookup index for ciphertext
	// byte j (an alias of RoundIndices[Rounds-1]). Attackers reconstruct
	// it as InvSBox(C[j] ^ K10[j]).
	FinalIndices [BlockSize]byte
}

// shiftRowsIndex maps output byte position to input position for
// ShiftRows (column-major AES state order).
var shiftRowsIndex = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

// Encrypt encrypts one 16-byte block, returning the ciphertext and the
// access trace.
func (k *Key) Encrypt(pt []byte) ([]byte, Trace, error) {
	var tr Trace
	if len(pt) != BlockSize {
		return nil, tr, fmt.Errorf("aes: plaintext length %d, want %d", len(pt), BlockSize)
	}
	var s [16]byte
	copy(s[:], pt)
	addRoundKey(&s, k.rounds[0])
	for r := 1; r < Rounds; r++ {
		for j := 0; j < 16; j++ {
			tr.RoundIndices[r-1][j] = s[shiftRowsIndex[j]]
		}
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, k.rounds[r])
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey; the SubBytes
	// lookups (post-ShiftRows order) are the attacked table accesses.
	var out [16]byte
	for j := 0; j < 16; j++ {
		idx := s[shiftRowsIndex[j]]
		tr.RoundIndices[Rounds-1][j] = idx
		tr.FinalIndices[j] = idx
		out[j] = sbox[idx] ^ k.rounds[Rounds][j]
	}
	ct := make([]byte, BlockSize)
	copy(ct, out[:])
	return ct, tr, nil
}

func subBytes(s *[16]byte) {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func shiftRows(s *[16]byte) {
	var t [16]byte
	for j := 0; j < 16; j++ {
		t[j] = s[shiftRowsIndex[j]]
	}
	*s = t
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = mul(a0, 2) ^ mul(a1, 3) ^ a2 ^ a3
		s[4*c+1] = a0 ^ mul(a1, 2) ^ mul(a2, 3) ^ a3
		s[4*c+2] = a0 ^ a1 ^ mul(a2, 2) ^ mul(a3, 3)
		s[4*c+3] = mul(a0, 3) ^ a1 ^ a2 ^ mul(a3, 2)
	}
}

func addRoundKey(s *[16]byte, k [16]byte) {
	for i := range s {
		s[i] ^= k[i]
	}
}

// Decrypt inverts Encrypt (equivalent-inverse-cipher free, straightforward
// inverse rounds); provided so tests can verify functional correctness.
func (k *Key) Decrypt(ct []byte) ([]byte, error) {
	if len(ct) != BlockSize {
		return nil, fmt.Errorf("aes: ciphertext length %d, want %d", len(ct), BlockSize)
	}
	var s [16]byte
	copy(s[:], ct)
	addRoundKey(&s, k.rounds[Rounds])
	invShiftRows(&s)
	invSubBytes(&s)
	for r := Rounds - 1; r >= 1; r-- {
		addRoundKey(&s, k.rounds[r])
		invMixColumns(&s)
		invShiftRows(&s)
		invSubBytes(&s)
	}
	addRoundKey(&s, k.rounds[0])
	pt := make([]byte, BlockSize)
	copy(pt, s[:])
	return pt, nil
}

func invSubBytes(s *[16]byte) {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

func invShiftRows(s *[16]byte) {
	var t [16]byte
	for j := 0; j < 16; j++ {
		t[shiftRowsIndex[j]] = s[j]
	}
	*s = t
}

func invMixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = mul(a0, 14) ^ mul(a1, 11) ^ mul(a2, 13) ^ mul(a3, 9)
		s[4*c+1] = mul(a0, 9) ^ mul(a1, 14) ^ mul(a2, 11) ^ mul(a3, 13)
		s[4*c+2] = mul(a0, 13) ^ mul(a1, 9) ^ mul(a2, 14) ^ mul(a3, 11)
		s[4*c+3] = mul(a0, 11) ^ mul(a1, 13) ^ mul(a2, 9) ^ mul(a3, 14)
	}
}
