package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyLengthValidation(t *testing.T) {
	if _, err := NewKey(make([]byte, 15)); err == nil {
		t.Error("short key should fail")
	}
	if _, err := NewKey(make([]byte, 32)); err == nil {
		t.Error("AES-256 key should fail (AES-128 only)")
	}
}

func TestEncryptInputValidation(t *testing.T) {
	k, err := NewKey(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := k.Encrypt(make([]byte, 15)); err == nil {
		t.Error("short plaintext should fail")
	}
	if _, err := k.Decrypt(make([]byte, 17)); err == nil {
		t.Error("long ciphertext should fail")
	}
}

// FIPS-197 Appendix C.1 known-answer test.
func TestFIPS197Vector(t *testing.T) {
	key := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	pt := []byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := []byte{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	k, err := NewKey(key)
	if err != nil {
		t.Fatal(err)
	}
	ct, _, err := k.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct, want) {
		t.Fatalf("ciphertext %x, want %x", ct, want)
	}
}

// Property: agrees with the standard library for random keys/plaintexts.
func TestMatchesStdlib(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		k, err := NewKey(key)
		if err != nil {
			return false
		}
		got, _, err := k.Encrypt(pt)
		if err != nil {
			return false
		}
		std, err := stdaes.NewCipher(key)
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		std.Encrypt(want, pt)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Decrypt inverts Encrypt.
func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		k, err := NewKey(key)
		if err != nil {
			return false
		}
		ct, _, err := k.Encrypt(pt)
		if err != nil {
			return false
		}
		back, err := k.Decrypt(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The attacker's reconstruction identity: the final-round table index for
// ciphertext byte j is InvSBox(C[j] ^ K10[j]). This identity is what makes
// the key-recovery attack possible.
func TestTraceReconstructionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		k, err := NewKey(key)
		if err != nil {
			return false
		}
		ct, tr, err := k.Encrypt(pt)
		if err != nil {
			return false
		}
		k10 := k.LastRoundKey()
		for j := 0; j < BlockSize; j++ {
			if InvSBox(ct[j]^k10[j]) != tr.FinalIndices[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSBoxInverse(t *testing.T) {
	for i := 0; i < 256; i++ {
		if InvSBox(SBox(byte(i))) != byte(i) {
			t.Fatalf("InvSBox(SBox(%d)) != %d", i, i)
		}
	}
}

func TestRoundKeysDiffer(t *testing.T) {
	k, err := NewKey([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	if k.RoundKey(0) == k.RoundKey(10) {
		t.Error("round keys should differ")
	}
	if k.LastRoundKey() != k.RoundKey(10) {
		t.Error("LastRoundKey should be round 10")
	}
}
