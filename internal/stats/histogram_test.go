package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasicBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)
	h.Add(9.5)
	h.Add(5.0)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Errorf("Counts = %v, want clamped into edge bins", h.Counts)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 4) },
		func() { NewHistogram(11, 10, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for invalid histogram config")
				}
			}()
			f()
		}()
	}
}

func TestHistogramOfConstantSamples(t *testing.T) {
	h := HistogramOf([]float64{5, 5, 5}, 4)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(3.5)
	}
	h.Add(8.5)
	if got := h.Mode(); !almostEqual(got, 3.5, 1e-12) {
		t.Errorf("Mode = %v, want 3.5", got)
	}
}

func TestHistogramPeaksBimodal(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	for i := 0; i < 50; i++ {
		h.Add(25)
		h.Add(75)
	}
	for i := 0; i < 3; i++ {
		h.Add(50) // small middle bump below threshold
	}
	peaks := h.Peaks(0.5)
	if len(peaks) != 2 {
		t.Fatalf("Peaks = %v, want 2 peaks", peaks)
	}
	if !(peaks[0] < 50 && peaks[1] > 50) {
		t.Errorf("peak positions = %v", peaks)
	}
}

func TestHistogramPeaksUnimodal(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	for i := 0; i < 100; i++ {
		h.Add(50)
	}
	h.Add(10)
	peaks := h.Peaks(0.5)
	if len(peaks) != 1 {
		t.Fatalf("Peaks = %v, want 1 peak", peaks)
	}
}

func TestHistogramPeaksEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if p := h.Peaks(0.5); p != nil {
		t.Errorf("Peaks on empty histogram = %v, want nil", p)
	}
}

func TestHistogramPeaksPlateau(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Counts = []int{0, 5, 5, 0}
	h.total = 10
	peaks := h.Peaks(0.5)
	if len(peaks) != 1 {
		t.Fatalf("plateau should be one peak, got %v", peaks)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(1)
	h.Add(6)
	h.Add(7)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Errorf("Render output missing bars:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Errorf("Render lines = %d, want 2", got)
	}
	if h.Render(0) == "" {
		t.Error("Render with width 0 should use a default width")
	}
}

// Property: total count always equals number of Adds, no sample is lost to
// binning regardless of range.
func TestHistogramPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-1, 1, 1+rng.Intn(30))
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 3)
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == n && h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("q0.5 = %v, want 2.5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantilePropertyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := Quantile(xs, 0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := Quantile(xs, q)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return Quantile(xs, 0) >= Min(xs)-1e-12 && Quantile(xs, 1) <= Max(xs)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramOfEmpty(t *testing.T) {
	h := HistogramOf(nil, 4)
	if h.Lo != 0 || h.Hi != 1 {
		t.Errorf("empty histogram spans [%g, %g], want [0, 1]", h.Lo, h.Hi)
	}
	if h.Total() != 0 {
		t.Errorf("empty histogram total %d, want 0", h.Total())
	}
	if len(h.Counts) != 4 {
		t.Errorf("empty histogram has %d bins, want 4", len(h.Counts))
	}
	for i, c := range h.Counts {
		if c != 0 {
			t.Errorf("bin %d count %d, want 0", i, c)
		}
	}
	if h.Render(10) == "" {
		t.Error("empty histogram should still render")
	}
}
