package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if Sum(nil) != 0 {
		t.Error("empty-slice Sum should be 0")
	}
	// Empty-slice Min/Max are NaN; see TestEmptySampleContract.
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("r = %v, want 1", r)
	}
}

func TestPearsonPerfectAnticorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{8, 6, 4, 2}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	// Constant input makes the coefficient undefined; the sentinel must
	// be distinguishable from a measured zero correlation (which stays
	// err == nil), whichever side is flat.
	cases := [][2][]float64{
		{{1, 1, 1}, {1, 2, 3}},
		{{1, 2, 3}, {7, 7, 7}},
		{{4, 4, 4}, {4, 4, 4}},
	}
	for _, c := range cases {
		r, err := Pearson(c[0], c[1])
		if !errors.Is(err, ErrZeroVariance) {
			t.Errorf("Pearson(%v, %v) err = %v, want ErrZeroVariance", c[0], c[1], err)
		}
		if r != 0 {
			t.Errorf("Pearson(%v, %v) r = %v, want 0 alongside the sentinel", c[0], c[1], r)
		}
	}
	// A genuinely uncorrelated pair with variance keeps the nil error.
	if _, err := Pearson([]float64{1, 2, 1, 2}, []float64{5, 5, 6, 6}); err != nil {
		t.Errorf("varying input returned %v, want nil", err)
	}
}

func TestMustPearsonPanicsOnZeroVariance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPearson on a constant series should panic, not return a silent 0")
		}
	}()
	MustPearson([]float64{3, 3, 3}, []float64{1, 2, 3})
}

func TestCorrelationMatrixConstantRow(t *testing.T) {
	m, err := CorrelationMatrix([][]float64{
		{1, 2, 3},
		{5, 5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Errorf("diagonal = %v, %v, want 1 by convention", m[0][0], m[1][1])
	}
	if !math.IsNaN(m[0][1]) || !math.IsNaN(m[1][0]) {
		t.Errorf("constant-row cells = %v, %v, want NaN (undefined, not zero)", m[0][1], m[1][0])
	}
}

func TestSpearmanConstantSeries(t *testing.T) {
	if _, err := SpearmanRank([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrZeroVariance) {
		t.Errorf("SpearmanRank on a constant series err = %v, want ErrZeroVariance", err)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4}); !errors.Is(err, ErrZeroVariance) {
		t.Errorf("LinearFit with constant y err = %v, want ErrZeroVariance", err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want length-mismatch error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("want too-few-samples error")
	}
}

// Property: Pearson is symmetric and invariant under positive affine
// transforms of either argument.
func TestPearsonPropertyAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			ys[i] = rng.NormFloat64()*5 + xs[i]*0.3
		}
		r1 := MustPearson(xs, ys)
		r2 := MustPearson(ys, xs)
		if !almostEqual(r1, r2, 1e-9) {
			return false
		}
		// Positive affine transform of xs.
		zs := make([]float64, n)
		for i := range xs {
			zs[i] = 3.7*xs[i] + 11
		}
		r3 := MustPearson(zs, ys)
		if !almostEqual(r1, r3, 1e-9) {
			return false
		}
		// Negative scale flips the sign.
		for i := range zs {
			zs[i] = -2 * xs[i]
		}
		r4 := MustPearson(zs, ys)
		return almostEqual(r1, -r4, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is always within [-1, 1].
func TestPearsonPropertyBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := MustPearson(xs, ys)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	samples := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{4, 3, 2, 1},
	}
	m, err := CorrelationMatrix(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m[0][1], 1, 1e-12) {
		t.Errorf("m[0][1] = %v, want 1", m[0][1])
	}
	if !almostEqual(m[0][2], -1, 1e-12) {
		t.Errorf("m[0][2] = %v, want -1", m[0][2])
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal m[%d][%d] = %v, want 1", i, i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("matrix not symmetric at %d,%d", i, j)
			}
		}
	}
}

func TestCorrelationMatrixErrors(t *testing.T) {
	if _, err := CorrelationMatrix(nil); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := CorrelationMatrix([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("want error for ragged input")
	}
}

func TestArgsort(t *testing.T) {
	xs := []float64{3.0, 1.0, 2.0}
	got := Argsort(xs)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Argsort = %v, want %v", got, want)
		}
	}
}

func TestArgsortStableOnTies(t *testing.T) {
	xs := []float64{2, 1, 2, 1}
	got := Argsort(xs)
	want := []int{1, 3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Argsort = %v, want %v", got, want)
		}
	}
}

// Property: Argsort output is a permutation that sorts the input.
func TestArgsortPropertySorts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(20)) // plenty of ties
		}
		idx := Argsort(xs)
		if len(idx) != n {
			return false
		}
		seen := make([]bool, n)
		for _, i := range idx {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		for k := 1; k < n; k++ {
			if xs[idx[k-1]] > xs[idx[k]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRanksWithTies(t *testing.T) {
	xs := []float64{10, 20, 20, 30}
	r := Ranks(xs)
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEqual(r[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	rho, err := SpearmanRank(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", rho)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	slope, intercept, r, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 5, 1e-12) || !almostEqual(r, 1, 1e-12) {
		t.Errorf("fit = (%v, %v, %v), want (2, 5, 1)", slope, intercept, r)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want length-mismatch error")
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("want degenerate-fit error")
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{1, 2, 3, 4})
	if d.N != 4 || d.Mean != 2.5 || d.Min != 1 || d.Max != 4 {
		t.Errorf("Summarize = %+v", d)
	}
	if d.String() == "" {
		t.Error("String should be nonempty")
	}
}

func TestEmptySampleContract(t *testing.T) {
	// No samples means no extremum or summary, not a zero-valued one:
	// Min/Max/Summarize return NaN so an accidentally-empty measurement
	// poisons downstream arithmetic instead of masquerading as data.
	if !math.IsNaN(Min(nil)) {
		t.Errorf("Min(nil) = %v, want NaN", Min(nil))
	}
	if !math.IsNaN(Max(nil)) {
		t.Errorf("Max(nil) = %v, want NaN", Max(nil))
	}
	d := Summarize(nil)
	if d.N != 0 {
		t.Errorf("Summarize(nil).N = %d, want 0", d.N)
	}
	if !math.IsNaN(d.Mean) || !math.IsNaN(d.StdDev) || !math.IsNaN(d.Min) || !math.IsNaN(d.Max) {
		t.Errorf("Summarize(nil) = %+v, want NaN fields", d)
	}
	// Mean/Variance keep their documented 0-for-empty behavior.
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Errorf("Mean(nil)=%v Variance(nil)=%v, want 0, 0", Mean(nil), Variance(nil))
	}
}
