package stats_test

import (
	"fmt"

	"gpunoc/internal/stats"
)

// Pearson correlation is the paper's placement-similarity metric (Eq. 1).
func ExamplePearson() {
	smA := []float64{180, 195, 210, 240} // latency profile of one SM
	smB := []float64{184, 199, 214, 244} // a same-GPC neighbour: shifted copy
	smC := []float64{240, 210, 195, 180} // an opposite-edge SM: mirrored
	rAB, _ := stats.Pearson(smA, smB)
	rAC, _ := stats.Pearson(smA, smC)
	fmt.Printf("same GPC r=%.2f, opposite edge r=%.2f\n", rAB, rAC)
	// Output: same GPC r=1.00, opposite edge r=-0.94
}

// Argsort produces the latency-sorted slice order of Fig. 3.
func ExampleArgsort() {
	latencies := []float64{212, 180, 248, 196}
	fmt.Println(stats.Argsort(latencies))
	// Output: [1 3 0 2]
}
