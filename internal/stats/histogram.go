package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bin histogram over a closed interval
// [Lo, Hi]. It backs the latency histograms of Fig. 2 and the bandwidth
// distributions of Fig. 9(b,c) and Fig. 13.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with bins equal-width bins spanning
// [lo, hi]. It panics if bins <= 0 or hi <= lo, which are programming
// errors in experiment setup.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram bins=%d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram hi=%g <= lo=%g", hi, lo))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// HistogramOf builds a histogram spanning the sample range of xs with the
// given number of bins and adds every sample. A degenerate (constant)
// sample set yields a single fully-populated center bin range. An empty
// sample set yields a valid, all-zero histogram over [0, 1] (Min/Max of
// nothing are NaN, which would otherwise poison the bin bounds).
func HistogramOf(xs []float64, bins int) *Histogram {
	if len(xs) == 0 {
		return NewHistogram(0, 1, bins)
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		lo, hi = lo-0.5, hi+0.5
	}
	h := NewHistogram(lo, hi, bins)
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one sample. Samples outside [Lo, Hi] are clamped into the
// first or last bin so that totals always reconcile.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the center of the most populated bin. Bimodality of the
// A100 slice-bandwidth histogram (Fig. 13a) is detected via Peaks instead.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Peaks returns the centers of local maxima whose count is at least
// minFrac of the global maximum bin count, in ascending bin order.
// Adjacent equal-count bins are treated as a single plateau peak.
// It is how tests assert "bimodal" (A100) vs "unimodal" (H100).
func (h *Histogram) Peaks(minFrac float64) []float64 {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return nil
	}
	threshold := int(math.Ceil(minFrac * float64(maxCount)))
	var peaks []float64
	n := len(h.Counts)
	for i := 0; i < n; {
		j := i
		for j+1 < n && h.Counts[j+1] == h.Counts[i] {
			j++
		}
		c := h.Counts[i]
		leftLower := i == 0 || h.Counts[i-1] < c
		rightLower := j == n-1 || h.Counts[j+1] < c
		if c >= threshold && c > 0 && leftLower && rightLower {
			peaks = append(peaks, (h.BinCenter(i)+h.BinCenter(j))/2)
		}
		i = j + 1
	}
	return peaks
}

// Render draws a simple vertical-bar text rendering of the histogram,
// suitable for CLI output, with the given maximum bar width in characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%10.2f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample xs using
// nearest-rank interpolation. Used for reporting latency spreads.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
