// Package stats provides the small statistical toolkit used throughout the
// GPU NoC characterization: descriptive statistics, Pearson correlation and
// correlation matrices (the paper's Section III-B placement analysis),
// histograms (Fig. 2, 9, 13), argsort-style rankings (Fig. 3), and simple
// linear regression (the side-channel linear-relationship fits of Sec. V).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrLengthMismatch is returned when paired-sample statistics receive
// slices of different lengths.
var ErrLengthMismatch = errors.New("stats: sample slices have different lengths")

// ErrEmpty is returned when a statistic is requested over no samples.
var ErrEmpty = errors.New("stats: no samples")

// ErrZeroVariance is returned by Pearson (and everything built on it)
// when either series is constant. The coefficient divides by both
// standard deviations, so r is mathematically undefined there — which is
// not the same thing as r = 0, "no linear relationship". Callers decide
// what an undefined coefficient means for them: the Fig. 6 heatmap
// renders such cells as NaN, the AES guess scorer treats a constant
// predictor as signal-free, the co-location clustering treats the pair
// as uncorrelated. Test with errors.Is.
var ErrZeroVariance = errors.New("stats: zero variance, Pearson correlation undefined")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// matching how the paper reports σ over exhaustively enumerated SM/slice
// pairs rather than sampled ones.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. An empty slice has no minimum: it
// returns NaN, which poisons any arithmetic built on it rather than
// silently posing as a plausible measurement the way the old 0 did.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. Like Min, it returns NaN for an empty
// slice: no samples means no extremum, not a zero-valued one.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Pearson returns the Pearson linear-correlation coefficient r between the
// paired samples xs and ys, per Eq. (1) of the paper. r is in [-1, 1]:
// 1 means perfect positive linear correlation, -1 perfect negative, 0 none.
//
// It returns an error if the slices differ in length or hold fewer than two
// samples, and ErrZeroVariance if either sample is constant: the
// coefficient is undefined there, and silently reporting 0 would be
// indistinguishable from a true "no linear relationship" measurement.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 samples, got %d: %w", len(xs), ErrEmpty)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrZeroVariance
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy)), nil
}

// MustPearson is Pearson but panics on malformed input — including
// zero-variance input, which now surfaces as ErrZeroVariance rather than
// a silent 0. It is intended for internal sweeps where lengths are
// correct and variation is guaranteed by construction.
func MustPearson(xs, ys []float64) float64 {
	r, err := Pearson(xs, ys)
	if err != nil {
		panic(err)
	}
	return r
}

// CorrelationMatrix computes the pairwise Pearson correlation matrix of the
// rows of samples: out[i][j] = Pearson(samples[i], samples[j]). All rows
// must have equal, nonzero length. This is the computation behind the
// paper's Fig. 6 heatmaps. A pair involving a constant row has an
// undefined coefficient; its cell is NaN (diagonals stay 1 by the r(x,x)
// convention), so renderers can distinguish "undefined" from a measured
// zero correlation.
func CorrelationMatrix(samples [][]float64) ([][]float64, error) {
	n := len(samples)
	if n == 0 {
		return nil, ErrEmpty
	}
	width := len(samples[0])
	for i, row := range samples {
		if len(row) != width {
			return nil, fmt.Errorf("stats: row %d has length %d, want %d: %w", i, len(row), width, ErrLengthMismatch)
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		out[i][i] = 1
		for j := i + 1; j < n; j++ {
			r, err := Pearson(samples[i], samples[j])
			if errors.Is(err, ErrZeroVariance) {
				r = math.NaN()
			} else if err != nil {
				return nil, err
			}
			out[i][j] = r
			out[j][i] = r
		}
	}
	return out, nil
}

// Argsort returns the permutation of indices that sorts xs ascending.
// Ties preserve index order (stable). The paper uses this to show that the
// latency-sorted L2 slice order is identical across SMs (Fig. 3).
func Argsort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// SpearmanRank returns the Spearman rank-correlation coefficient between xs
// and ys: the Pearson correlation of their rank vectors. It is used to test
// order-level (rather than value-level) agreement of latency profiles.
// A constant series has constant ranks, so it propagates ErrZeroVariance
// like Pearson does.
func SpearmanRank(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (average rank for ties).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := Argsort(xs)
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		// Group ties.
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// LinearFit fits y = slope*x + intercept by ordinary least squares and also
// returns the Pearson r of the fit. The GPU timing side-channels in Sec. V
// rely on such linear relationships (timing vs. unique cache lines, timing
// vs. count of RSA one-bits). A constant y yields the exact horizontal
// fit (slope 0) but an undefined r, so it returns ErrZeroVariance — a
// side-channel fit against a flat timing series measured nothing.
func LinearFit(xs, ys []float64) (slope, intercept, r float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate fit, zero variance in x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	r, err = Pearson(xs, ys)
	return slope, intercept, r, err
}

// Describe bundles the descriptive statistics the paper reports for latency
// distributions (e.g. Fig. 1, Fig. 2 captions).
type Describe struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Describe over xs. Over no samples every statistic
// is undefined: the result has N = 0 and NaN in every field, so a summary
// of a mistakenly-empty measurement renders as NaN instead of a
// plausible-looking row of zeros.
func Summarize(xs []float64) Describe {
	if len(xs) == 0 {
		nan := math.NaN()
		return Describe{N: 0, Mean: nan, StdDev: nan, Min: nan, Max: nan}
	}
	return Describe{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// String renders the summary in the paper's "μ = … cycles, σ = …" style.
func (d Describe) String() string {
	return fmt.Sprintf("n=%d μ=%.1f σ=%.1f min=%.1f max=%.1f", d.N, d.Mean, d.StdDev, d.Min, d.Max)
}
