// Package cache implements a set-associative, sectored L2 cache slice of
// the kind the paper's methodology implicitly exercises: Algorithm 1
// "warms up" the L2 so every timed access hits, and working sets are
// chosen to "fit within the L2". Attaching these slices to the kernel
// runtime turns those methodological notes into executable mechanisms:
// warm-up genuinely populates the cache, capacity overflows genuinely
// miss, and the classic working-set latency sweep (latency stepping up at
// the L2 capacity) can be reproduced.
//
// NVIDIA L2 lines are 128 bytes split into four 32-byte sectors; a miss
// fills only the touched sector, which is why the paper's coalescing
// side-channel counts 32-byte transactions.
package cache

import "fmt"

// Config sizes one cache slice.
type Config struct {
	// SizeBytes is the slice capacity.
	SizeBytes int
	// LineBytes is the allocation granularity (tag granularity).
	LineBytes int
	// SectorBytes is the fill granularity; LineBytes must be a multiple.
	SectorBytes int
	// Ways is the set associativity.
	Ways int
}

// DefaultSliceConfig returns the modelled NVIDIA slice geometry for a
// given capacity: 128-byte lines, 32-byte sectors, 16 ways.
func DefaultSliceConfig(sizeBytes int) Config {
	return Config{SizeBytes: sizeBytes, LineBytes: 128, SectorBytes: 32, Ways: 16}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.SectorBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0 || c.SectorBytes&(c.SectorBytes-1) != 0:
		return fmt.Errorf("cache: line/sector sizes must be powers of two")
	case c.LineBytes%c.SectorBytes != 0:
		return fmt.Errorf("cache: line %d not a multiple of sector %d", c.LineBytes, c.SectorBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte lines", c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// line is one resident cache line.
type line struct {
	tag uint64
	// sectorValid marks which sectors hold data.
	sectorValid uint32
	// lastUse drives LRU within the set.
	lastUse uint64
}

// Cache is one slice. It is not safe for concurrent use; the kernel
// runtime serializes accesses per machine.
type Cache struct {
	cfg  Config
	sets [][]line
	// setMask and shifts precompute indexing.
	setCount  int
	lineShift uint
	clock     uint64

	// Stats accumulate until Reset.
	Hits, Misses, SectorMisses, Evictions uint64
}

// New builds a cache slice.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	setCount := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, setCount),
		setCount: setCount,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, 0, cfg.Ways)
	}
	for shift := cfg.LineBytes; shift > 1; shift >>= 1 {
		c.lineShift++
	}
	return c, nil
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// sectorBit returns the valid-mask bit for an address's sector.
func (c *Cache) sectorBit(addr uint64) uint32 {
	sector := (addr % uint64(c.cfg.LineBytes)) / uint64(c.cfg.SectorBytes)
	return 1 << sector
}

// Access touches addr and reports whether the touched sector was
// resident. A miss allocates (or revalidates a sector of) the line.
func (c *Cache) Access(addr uint64) (hit bool) {
	c.clock++
	lineAddr := addr >> c.lineShift
	set := int(lineAddr % uint64(c.setCount))
	tag := lineAddr / uint64(c.setCount)
	bit := c.sectorBit(addr)

	lines := c.sets[set]
	for i := range lines {
		if lines[i].tag != tag {
			continue
		}
		lines[i].lastUse = c.clock
		if lines[i].sectorValid&bit != 0 {
			c.Hits++
			return true
		}
		// Line resident, sector not: a sector miss fills just the sector.
		lines[i].sectorValid |= bit
		c.SectorMisses++
		c.Misses++
		return false
	}

	// Full miss: allocate, evicting LRU if the set is full.
	c.Misses++
	if len(lines) < c.cfg.Ways {
		c.sets[set] = append(lines, line{tag: tag, sectorValid: bit, lastUse: c.clock})
		return false
	}
	// Deterministic victim selection: strictly-less keeps the lowest
	// index when two lines tie on lastUse, so replaying the same access
	// stream always evicts the same way (ties cannot arise through
	// Access, whose clock is strictly monotonic, but the invariant must
	// survive refactors that batch or snapshot timestamps).
	victim := 0
	for i := 1; i < len(lines); i++ {
		if lines[i].lastUse < lines[victim].lastUse {
			victim = i
		}
	}
	lines[victim] = line{tag: tag, sectorValid: bit, lastUse: c.clock}
	c.Evictions++
	return false
}

// Contains reports residency of addr's sector without touching LRU or
// stats.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := int(lineAddr % uint64(c.setCount))
	tag := lineAddr / uint64(c.setCount)
	bit := c.sectorBit(addr)
	for _, l := range c.sets[set] {
		if l.tag == tag {
			return l.sectorValid&bit != 0
		}
	}
	return false
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.clock = 0
	c.Hits, c.Misses, c.SectorMisses, c.Evictions = 0, 0, 0, 0
}

// HitRate returns hits / (hits + misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
