package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: 8192, LineBytes: 128, SectorBytes: 32, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultSliceConfig(192 * 1024).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 128, SectorBytes: 32, Ways: 4},
		{SizeBytes: 8192, LineBytes: 100, SectorBytes: 32, Ways: 4},
		{SizeBytes: 8192, LineBytes: 128, SectorBytes: 48, Ways: 4},
		{SizeBytes: 8192, LineBytes: 32, SectorBytes: 128, Ways: 4},
		{SizeBytes: 1000, LineBytes: 128, SectorBytes: 32, Ways: 4},
		{SizeBytes: 8192, LineBytes: 128, SectorBytes: 32, Ways: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New should reject config %d", i)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t)
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("stats %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestSectorGranularity(t *testing.T) {
	c := small(t)
	c.Access(0x1000) // sector 0 of the line
	if c.Access(0x1020) {
		t.Error("different sector of the same line should sector-miss")
	}
	if c.SectorMisses != 1 {
		t.Errorf("sector misses %d, want 1", c.SectorMisses)
	}
	if !c.Access(0x1020) || !c.Access(0x1000) {
		t.Error("both sectors should now hit")
	}
	// A sector miss does not evict.
	if c.Evictions != 0 {
		t.Error("sector fill should not evict")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 16 sets x 4 ways
	// Fill one set: addresses that share set bits (stride = sets*line).
	stride := uint64(16 * 128)
	for i := uint64(0); i < 4; i++ {
		c.Access(i * stride)
	}
	// Touch line 0 to make line 1 the LRU.
	c.Access(0)
	// Allocate a fifth line: must evict line 1 (the LRU), not line 0.
	c.Access(4 * stride)
	if c.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", c.Evictions)
	}
	if !c.Contains(0) {
		t.Error("MRU line evicted")
	}
	if c.Contains(1 * stride) {
		t.Error("LRU line should have been evicted")
	}
}

func TestContainsDoesNotTouch(t *testing.T) {
	c := small(t)
	if c.Contains(0x40) {
		t.Error("empty cache contains nothing")
	}
	c.Access(0x40)
	h, m := c.Hits, c.Misses
	c.Contains(0x40)
	if c.Hits != h || c.Misses != m {
		t.Error("Contains must not perturb stats")
	}
}

func TestResetAndHitRate(t *testing.T) {
	c := small(t)
	if c.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	c.Access(0)
	c.Access(0)
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate %v, want 0.5", c.HitRate())
	}
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 || c.Contains(0) {
		t.Error("reset incomplete")
	}
}

// Property: a working set that fits always hits after one warm pass; one
// that exceeds capacity by 2x always evicts under a cyclic sweep.
func TestPropertyWarmupSemantics(t *testing.T) {
	c := small(t) // 8 KiB
	// Fit: 4 KiB of sector-strided accesses.
	for addr := uint64(0); addr < 4096; addr += 32 {
		c.Access(addr)
	}
	for addr := uint64(0); addr < 4096; addr += 32 {
		if !c.Access(addr) {
			t.Fatalf("warm working set missed at %#x", addr)
		}
	}
	c.Reset()
	// Overflow: 16 KiB cyclic sweep thrashes with LRU.
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 16384; addr += 32 {
			c.Access(addr)
		}
	}
	if rate := c.HitRate(); rate > 0.5 {
		t.Errorf("cyclic over-capacity sweep hit rate %.2f, want thrashing", rate)
	}
}

// Property: stats always reconcile and residency never exceeds capacity.
func TestPropertyAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{SizeBytes: 4096, LineBytes: 128, SectorBytes: 32, Ways: 2})
		if err != nil {
			return false
		}
		n := 200 + rng.Intn(400)
		for i := 0; i < n; i++ {
			c.Access(uint64(rng.Intn(1 << 16)))
		}
		if c.Hits+c.Misses != uint64(n) {
			return false
		}
		resident := 0
		for _, set := range c.sets {
			if len(set) > c.cfg.Ways {
				return false
			}
			resident += len(set)
		}
		return resident <= c.cfg.SizeBytes/c.cfg.LineBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestLRUEvictionTieBreak constructs an exact lastUse tie — impossible
// through Access, whose clock is strictly monotonic, but reachable by
// any future refactor that batches or snapshots timestamps — and demands
// the victim be the lowest-indexed tied line. Eviction order is part of
// the simulator's determinism contract: a tie broken by position in a
// Go map or by scan direction would make replays diverge.
func TestLRUEvictionTieBreak(t *testing.T) {
	c, err := New(Config{SizeBytes: 2 * 128 * 4, LineBytes: 128, SectorBytes: 32, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Fill set 0 by hand with a tie between ways 1 and 2 for the oldest
	// timestamp; way 0 and 3 are younger.
	c.sets[0] = []line{
		{tag: 10, sectorValid: 1, lastUse: 9},
		{tag: 11, sectorValid: 1, lastUse: 3},
		{tag: 12, sectorValid: 1, lastUse: 3},
		{tag: 13, sectorValid: 1, lastUse: 7},
	}
	c.clock = 9

	// The next allocation in set 0 must evict way 1 (tag 11): the lowest
	// index among the lastUse ties.
	newTag := uint64(42)
	addr := newTag * uint64(c.setCount) << c.lineShift // maps to set 0
	if hit := c.Access(addr); hit {
		t.Fatal("expected a miss for a fresh tag")
	}
	if got := c.sets[0][1].tag; got != newTag {
		t.Errorf("way 1 holds tag %d, want the new tag %d (lowest-index tie eviction)", got, newTag)
	}
	if got := c.sets[0][2].tag; got != 12 {
		t.Errorf("way 2 holds tag %d, want the surviving tied line 12", got)
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions)
	}
}
