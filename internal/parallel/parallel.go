// Package parallel is the repository's sanctioned concurrency runner: a
// bounded worker pool whose results are index-addressed, so a sharded
// sweep reduces in exactly the order a sequential loop would and its
// output is byte-identical regardless of worker count or goroutine
// scheduling.
//
// The design rules that make sharded sweeps deterministic:
//
//  1. Work is identified by index. Map(workers, n, fn) calls fn(i) for
//     every i in [0, n) and stores fn's result in slot i of the result
//     slice. No channel fan-in, no append from multiple goroutines —
//     reduction order is the index order, decided before any goroutine
//     starts.
//  2. Errors are selected deterministically. When tasks fail, the error
//     of the LOWEST index is returned — the same error a sequential loop
//     would have stopped at — no matter which goroutine finished first.
//  3. Cancellation is cooperative. After the first failure no NEW
//     indices are dispatched; tasks already in flight run to completion
//     (tasks share nothing, so there is nothing to interrupt safely).
//
// The noclint determinism analyzer enforces rule 1 globally: `go`
// statements inside internal packages are flagged everywhere except
// here, so every parallel sweep in the model flows through this runner.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the GOMAXPROCS-derived default pool size. The
// nocchar -parallel N flag adjusts GOMAXPROCS, so the whole process —
// experiment fan-out and inner sweeps alike — honours one knob.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// normalize clamps a requested worker count to [1, n] with the
// GOMAXPROCS default for workers <= 0. n == 0 yields 0 (no pool).
func normalize(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects DefaultWorkers) and returns the results in index
// order. On failure it returns the error of the lowest failing index and
// a nil slice; remaining indices are not dispatched once any task has
// failed. fn must be safe for concurrent invocation with distinct
// indices; results never pass through a channel, so output is identical
// for every worker count.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	workers = normalize(workers, n)
	if workers == 1 {
		// Inline fast path: no goroutines, exact sequential semantics.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	// Deterministic error selection: the lowest failing index, exactly
	// the error the sequential loop above would have returned.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// with Map's dispatch, cancellation, and error-selection semantics, for
// tasks that write into caller-owned index-addressed storage.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
