// Package parallel is the repository's sanctioned concurrency runner: a
// bounded worker pool whose results are index-addressed, so a sharded
// sweep reduces in exactly the order a sequential loop would and its
// output is byte-identical regardless of worker count or goroutine
// scheduling.
//
// The design rules that make sharded sweeps deterministic:
//
//  1. Work is identified by index. Map(workers, n, fn) calls fn(i) for
//     every i in [0, n) and stores fn's result in slot i of the result
//     slice. No channel fan-in, no append from multiple goroutines —
//     reduction order is the index order, decided before any goroutine
//     starts.
//  2. Errors are selected deterministically. When tasks fail, the error
//     of the LOWEST index is returned — the same error a sequential loop
//     would have stopped at — no matter which goroutine finished first.
//  3. Cancellation is cooperative. After the first failure no NEW
//     indices are dispatched; tasks already in flight run to completion
//     (tasks share nothing, so there is nothing to interrupt safely).
//     MapContext/ForEachContext add an external cancel with the same
//     shape: a context checked only at task-claim boundaries, so the
//     task bodies — the simulators' Step loops — never see a context
//     and stay alloc-free and byte-identical when the context never
//     fires.
//
// The noclint determinism analyzer enforces rule 1 globally: `go`
// statements inside internal packages are flagged everywhere except
// here, so every parallel sweep in the model flows through this runner.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the GOMAXPROCS-derived default pool size. The
// nocchar -parallel N flag adjusts GOMAXPROCS, so the whole process —
// experiment fan-out and inner sweeps alike — honours one knob.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// normalize clamps a requested worker count to [1, n] with the
// GOMAXPROCS default for workers <= 0. n == 0 yields 0 (no pool).
func normalize(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects DefaultWorkers) and returns the results in index
// order. On failure it returns the error of the lowest failing index and
// a nil slice; remaining indices are not dispatched once any task has
// failed. fn must be safe for concurrent invocation with distinct
// indices; results never pass through a channel, so output is identical
// for every worker count.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapContext[T](nil, workers, n, fn)
}

// MapContext is Map with an external cancel: when ctx is cancelled, no
// NEW indices are dispatched — exactly the first-error rule applied to a
// caller-side event — and the call returns ctx.Err() once in-flight
// tasks finish. The context is consulted only at task-claim boundaries
// (one Err call per index), never inside fn, so the hot sweep bodies
// stay context-free; with a nil or never-cancelled ctx the results and
// allocation profile are identical to Map. When both a task failure and
// a cancellation occur, the lowest failing index's error wins, matching
// what a sequential ctx-checking loop would have stopped at.
func MapContext[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([]T, n)
	workers = normalize(workers, n)
	if workers == 1 {
		// Inline fast path: no goroutines, exact sequential semantics
		// with the claim-boundary check before each task.
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctxErr(ctx) != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	// Deterministic error selection: the lowest failing index, exactly
	// the error the sequential loop above would have returned; external
	// cancellation reports only when no task failed.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// ctxErr is ctx.Err tolerating the nil (no external cancel) context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// with Map's dispatch, cancellation, and error-selection semantics, for
// tasks that write into caller-owned index-addressed storage.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachContext(nil, workers, n, fn)
}

// ForEachContext is ForEach with MapContext's external cancel.
func ForEachContext(ctx context.Context, workers, n int, fn func(i int) error) error {
	_, err := MapContext(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
