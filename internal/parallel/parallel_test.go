package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, 10, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []int{0, 1, 4, 9, 16, 25, 36, 49, 64, 81}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: got %v, want %v", workers, got, want)
		}
	}
}

// TestMapIdenticalAcrossPoolSizes is the runner-level statement of the
// byte-identical requirement: the same fn must reduce to the same slice
// for every worker count, including N > items and N = 1.
func TestMapIdenticalAcrossPoolSizes(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(workers, 23, func(i int) (string, error) {
			return fmt.Sprintf("row-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 23, 100} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged from sequential: %v vs %v", workers, got, ref)
		}
	}
}

func TestMapEmptyAndEdgePools(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("must not run") })
	if err != nil || out != nil {
		t.Errorf("n=0: got (%v, %v), want (nil, nil)", out, err)
	}
	// workers > n must not panic or leak goroutines; n=1 with a large pool.
	one, err := Map(1000, 1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(one) != 1 || one[0] != 42 {
		t.Errorf("workers>n: got (%v, %v)", one, err)
	}
}

// TestMapLowestIndexErrorWins pins deterministic error selection: with
// several failing indices, the reported error is the lowest-index one —
// what a sequential loop would have stopped at — for every pool size.
func TestMapLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, 16, func(i int) (int, error) {
			if i >= 5 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 5 failed" {
			t.Errorf("workers=%d: err = %v, want task 5 failed", workers, err)
		}
	}
}

// TestMapCancelsOnFirstError proves dispatch stops after a failure: with
// an early error, far fewer than n tasks run. In-flight tasks (at most
// one per worker) may still complete.
func TestMapCancelsOnFirstError(t *testing.T) {
	const n, workers = 1000, 4
	var ran atomic.Int64
	_, err := Map(workers, n, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil || err.Error() != "early failure" {
		t.Fatalf("err = %v, want early failure", err)
	}
	// Workers stop claiming indices once the failure flag is set; only
	// tasks claimed before index 3 reported can still run.
	if got := ran.Load(); got >= n/2 {
		t.Errorf("%d of %d tasks ran after an early error; dispatch did not cancel", got, n)
	}
}

func TestForEachWritesIndexAddressedSlots(t *testing.T) {
	out := make([]int, 50)
	if err := ForEach(8, len(out), func(i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("slot %d = %d, want %d", i, v, i+1)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEach(3, 10, func(i int) error {
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want %v", err, sentinel)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

// TestMapContextNilAndBackgroundMatchMap pins the no-cancel contract:
// a nil context and a never-cancelled one reduce to exactly Map's
// output for every pool size.
func TestMapContextNilAndBackgroundMatchMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * 3, nil }
	want, err := Map(4, 17, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		for _, workers := range []int{1, 2, 8} {
			got, err := MapContext(ctx, workers, 17, fn)
			if err != nil {
				t.Fatalf("ctx=%v workers=%d: %v", ctx, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("ctx=%v workers=%d: got %v, want %v", ctx, workers, got, want)
			}
		}
	}
}

// TestMapContextCancelStopsDispatch wedges the pool's first tasks, then
// cancels: no new index may be claimed after the cancel, the call must
// return ctx.Err(), and the in-flight tasks still complete (tasks are
// never interrupted mid-body).
func TestMapContextCancelStopsDispatch(t *testing.T) {
	const n, workers = 1000, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started sync.WaitGroup
	started.Add(workers)
	release := make(chan struct{})
	var ran atomic.Int64
	go func() {
		// Once the whole first wave is parked inside its task bodies,
		// cancel and release: each worker finishes its in-flight task,
		// observes the dead context at the claim boundary, and exits.
		started.Wait()
		cancel()
		close(release)
	}()
	_, err := MapContext(ctx, workers, n, func(i int) (int, error) {
		ran.Add(1)
		started.Done()
		<-release
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != workers {
		t.Errorf("%d tasks ran; want exactly the %d in flight at cancel time", got, workers)
	}
}

// TestMapContextLowestIndexErrorBeatsCancel: when a task has already
// failed, external cancellation must not mask the deterministic
// lowest-index error.
func TestMapContextLowestIndexErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("task failure")
	_, err := MapContext(ctx, 2, 50, func(i int) (int, error) {
		if i == 0 {
			cancel() // cancel and fail in the same breath
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the task's own error to win over ctx.Err()", err)
	}
}

// TestForEachContextSkipsUndispatched: with a pre-cancelled context no
// task runs at all, on both the sequential and pooled paths.
func TestForEachContextSkipsUndispatched(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachContext(ctx, workers, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d tasks ran under a dead context", workers, ran.Load())
		}
	}
}
