// Package units defines the measurement units the simulator traffics in.
// Latency is always core-clock cycles, bandwidth is always GB/s (1e9 bytes
// per second), sizes are bytes, and floorplan distance is abstract grid
// units. Each is a defined type so the compiler — and the unitsafety
// analyzer in internal/lint — rejects code that silently mixes them (a
// latency added to a bandwidth, a grid distance used as cycles, ...).
//
// Conversion discipline: crossing a unit boundary must be spelled out.
// Either go through an explicit float64(...)/int64(...) at a measurement
// boundary (e.g. handing cycle samples to the unit-agnostic stats
// package), or use one of the typed helpers below (CyclesPerGU.Times,
// Cycles.Scale, ...). Direct conversions between two unit types, such as
// GBps(someCycles), are flagged by `noclint`'s unitsafety analyzer even
// though the compiler accepts them.
package units

import "fmt"

// Cycles is a latency or duration in GPU core-clock cycles.
type Cycles float64

// Scale returns c scaled by the dimensionless factor f (e.g. a hop count
// or a noise multiplier). Preferred over Cycles*Cycles, which the
// unitsafety analyzer flags as dimensionally squared.
func (c Cycles) Scale(f float64) Cycles { return Cycles(float64(c) * f) }

// Seconds converts c to wall-clock seconds at the given core clock.
func (c Cycles) Seconds(coreClockMHz int) float64 {
	return float64(c) / (float64(coreClockMHz) * 1e6)
}

// String renders the latency, e.g. "212.4 cyc".
func (c Cycles) String() string { return fmt.Sprintf("%.1f cyc", float64(c)) }

// GBps is a bandwidth in 1e9 bytes per second.
type GBps float64

// Scale returns b scaled by the dimensionless factor f (an efficiency,
// a speedup, a fabric factor, ...).
func (b GBps) Scale(f float64) GBps { return GBps(float64(b) * f) }

// String renders the bandwidth, e.g. "900 GB/s".
func (b GBps) String() string { return fmt.Sprintf("%g GB/s", float64(b)) }

// Bytes is a size or capacity in bytes.
type Bytes int64

// Common power-of-two sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
)

// String renders the size with a binary suffix where it divides evenly.
func (s Bytes) String() string {
	switch {
	case s >= MiB && s%MiB == 0:
		return fmt.Sprintf("%d MiB", int64(s/MiB))
	case s >= KiB && s%KiB == 0:
		return fmt.Sprintf("%d KiB", int64(s/KiB))
	}
	return fmt.Sprintf("%d B", int64(s))
}

// GridUnits is a floorplan distance in abstract grid units ("gu", see
// internal/floorplan). It becomes cycles only through a CyclesPerGU wire
// coefficient.
type GridUnits float64

// String renders the distance, e.g. "3.5 gu".
func (g GridUnits) String() string { return fmt.Sprintf("%g gu", float64(g)) }

// CyclesPerGU is a wire-delay coefficient: round-trip cycles per grid
// unit of rectilinear wire.
type CyclesPerGU float64

// Times converts a floorplan distance to cycles.
func (w CyclesPerGU) Times(d GridUnits) Cycles { return Cycles(float64(w) * float64(d)) }
