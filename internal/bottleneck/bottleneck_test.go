package bottleneck

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/units"
)

func TestSeriesThroughput(t *testing.T) {
	stages := []Stage{
		{Name: "a", CapacityGBs: 300},
		{Name: "b", CapacityGBs: 100},
		{Name: "c", CapacityGBs: 200},
	}
	max, binding, err := SeriesThroughput(stages)
	if err != nil {
		t.Fatal(err)
	}
	if max != 100 || binding != 1 {
		t.Errorf("series = (%v, %d), want (100, 1)", max, binding)
	}
}

func TestSeriesThroughputErrors(t *testing.T) {
	if _, _, err := SeriesThroughput(nil); err == nil {
		t.Error("empty system should fail")
	}
	if _, _, err := SeriesThroughput([]Stage{{Name: "x", CapacityGBs: 0}}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, _, err := SeriesThroughput([]Stage{{CapacityGBs: 5}}); err == nil {
		t.Error("unnamed stage should fail")
	}
}

func TestSeriesThroughputTieBreaksEarliest(t *testing.T) {
	stages := []Stage{{Name: "a", CapacityGBs: 50}, {Name: "b", CapacityGBs: 50}}
	_, binding, err := SeriesThroughput(stages)
	if err != nil {
		t.Fatal(err)
	}
	if binding != 0 {
		t.Errorf("tie should bind earliest stage, got %d", binding)
	}
}

// Property: series throughput equals the minimum capacity and never
// exceeds any stage.
func TestSeriesPropertyMin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		stages := make([]Stage, n)
		min := 1e18
		for i := range stages {
			c := 1 + rng.Float64()*1000
			stages[i] = Stage{Name: "s", CapacityGBs: units.GBps(c)}
			if c < min {
				min = c
			}
		}
		max, binding, err := SeriesThroughput(stages)
		if err != nil {
			return false
		}
		return float64(max) == min && float64(stages[binding].CapacityGBs) == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyze(t *testing.T) {
	stages := []Stage{
		{Name: "noc", CapacityGBs: 200},
		{Name: "mem", CapacityGBs: 100},
	}
	reports, err := Analyze(stages, 50)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Utilization != 0.25 || reports[1].Utilization != 0.5 {
		t.Errorf("utilizations %v", reports)
	}
	if reports[0].Binding || !reports[1].Binding {
		t.Error("mem should be the binding stage")
	}
	// Overload clamps at the series max.
	over, err := Analyze(stages, 500)
	if err != nil {
		t.Fatal(err)
	}
	if over[1].Utilization != 1 || over[0].Utilization != 0.5 {
		t.Errorf("overload utilizations %v", over)
	}
	if _, err := Analyze(stages, 0); err == nil {
		t.Error("zero load should fail")
	}
}

// Implication #5 on the canonical GPUs: with the calibrated capacity
// profiles, DRAM - not the NoC - is the series bottleneck, as on real
// hardware.
func TestCanonicalGPUsAreMemoryBound(t *testing.T) {
	for _, cfg := range gpu.AllConfigs() {
		prof, err := bandwidth.ProfileFor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stages, err := Hierarchy(cfg, prof)
		if err != nil {
			t.Fatal(err)
		}
		ok, binding, err := MemoryBound(stages)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: bottleneck is %q, want DRAM channels", cfg.Name, binding.Name)
		}
		factor, err := NetworkWallFactor(stages)
		if err != nil {
			t.Fatal(err)
		}
		if factor != 1 {
			t.Errorf("%s: network-wall factor %.2f, want 1 (no wall)", cfg.Name, factor)
		}
	}
}

// Starving the NoC-MEM interface creates the network wall the paper warns
// about, quantified by the wall factor.
func TestStarvedInterfaceCreatesWall(t *testing.T) {
	cfg := gpu.V100()
	prof, err := bandwidth.ProfileFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof.MPPortGBs = 40 // 8 MPs x 40 = 320 GB/s interface vs 792 GB/s DRAM
	stages, err := Hierarchy(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	ok, binding, err := MemoryBound(stages)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("starved interface should not be memory bound")
	}
	if binding.Name != "NoC-MEM interface" {
		t.Errorf("bottleneck %q, want NoC-MEM interface", binding.Name)
	}
	factor, err := NetworkWallFactor(stages)
	if err != nil {
		t.Fatal(err)
	}
	if factor < 2 {
		t.Errorf("wall factor %.2f, want > 2 for this starvation", factor)
	}
}

func TestHierarchyValidation(t *testing.T) {
	cfg := gpu.V100()
	prof, err := bandwidth.ProfileFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.GPCs = 0
	if _, err := Hierarchy(bad, prof); err == nil {
		t.Error("bad config should fail")
	}
	if _, err := Hierarchy(cfg, bandwidth.Profile{}); err == nil {
		t.Error("bad profile should fail")
	}
}

func TestNetworkWallFactorNeedsDRAM(t *testing.T) {
	if _, err := NetworkWallFactor([]Stage{{Name: "x", CapacityGBs: 1}}); err == nil {
		t.Error("hierarchy without DRAM should fail")
	}
}
