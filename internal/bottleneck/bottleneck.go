// Package bottleneck implements the operational-analysis arguments of the
// paper's Section VI-B: "the maximum throughput of K sub-systems in series
// is the minimum of the subsystem throughput" (Hill [56], after the
// queueing-network analysis of Lazowska et al. [55]). It builds the GPU's
// bandwidth hierarchy as a series of capacitated stages - SM ports, TPC
// ports, GPC trunks, the NoC-MEM interface, L2 slices, DRAM channels -
// finds the stage that caps system throughput, and checks the paper's
// design rule (Implication #5): the NoC must be provisioned so that the
// expensive resource, memory bandwidth, is the bottleneck, not the
// interconnect.
package bottleneck

import (
	"fmt"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/units"
)

// Stage is one stage of a series system: a resource with an aggregate
// capacity in GB/s.
type Stage struct {
	Name        string
	CapacityGBs units.GBps
}

// Validate checks a stage.
func (s Stage) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("bottleneck: unnamed stage")
	}
	if s.CapacityGBs <= 0 {
		return fmt.Errorf("bottleneck: stage %q has non-positive capacity", s.Name)
	}
	return nil
}

// SeriesThroughput returns the maximum sustainable throughput of stages
// in series and the index of the binding stage (ties resolve to the
// earliest stage).
func SeriesThroughput(stages []Stage) (units.GBps, int, error) {
	if len(stages) == 0 {
		return 0, 0, fmt.Errorf("bottleneck: empty system")
	}
	best := 0
	for i, s := range stages {
		if err := s.Validate(); err != nil {
			return 0, 0, err
		}
		if s.CapacityGBs < stages[best].CapacityGBs {
			best = i
		}
	}
	return stages[best].CapacityGBs, best, nil
}

// Report is one stage's view under an offered load.
type Report struct {
	Stage       Stage
	Utilization float64
	Binding     bool
}

// Analyze evaluates the stages under an offered load (GB/s of demand that
// every stage must carry) and flags the binding stage. Offered loads
// above the series throughput saturate the binding stage at 1.0.
func Analyze(stages []Stage, offeredGBs units.GBps) ([]Report, error) {
	if offeredGBs <= 0 {
		return nil, fmt.Errorf("bottleneck: non-positive offered load")
	}
	max, binding, err := SeriesThroughput(stages)
	if err != nil {
		return nil, err
	}
	carried := offeredGBs
	if carried > max {
		carried = max
	}
	out := make([]Report, len(stages))
	for i, s := range stages {
		u := float64(carried) / float64(s.CapacityGBs)
		if u > 1 {
			u = 1
		}
		out[i] = Report{Stage: s, Utilization: u, Binding: i == binding}
	}
	return out, nil
}

// Hierarchy assembles the paper's on-chip bandwidth hierarchy for a GPU
// generation from its calibrated capacity profile: aggregate SM reply
// ports, TPC ports, GPC slot buses, GPC trunks, the NoC-MEM interface
// (MP input ports), L2 slice ports, and DRAM channels.
func Hierarchy(cfg gpu.Config, prof bandwidth.Profile) ([]Stage, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	nTPC := cfg.GPCs * cfg.TPCsPerGPC
	stages := []Stage{
		{Name: "SM reply ports", CapacityGBs: prof.SMReadGBs.Scale(float64(cfg.SMs()))},
		{Name: "TPC ports", CapacityGBs: prof.TPCReadGBs.Scale(float64(nTPC))},
		{Name: "GPC slot buses", CapacityGBs: prof.SlotBusGBs.Scale(2 * float64(cfg.GPCs))},
		{Name: "GPC trunks", CapacityGBs: prof.GPCTrunkGBs.Scale(float64(cfg.GPCs))},
		{Name: "NoC-MEM interface", CapacityGBs: prof.MPPortGBs.Scale(float64(cfg.MPs))},
		{Name: "L2 slice ports", CapacityGBs: prof.SliceGBs.Scale(float64(cfg.L2Slices))},
		{Name: "DRAM channels", CapacityGBs: prof.MemChannelGBs.Scale(float64(cfg.MPs))},
	}
	return stages, nil
}

// MemoryBound reports whether DRAM is the series bottleneck of the
// hierarchy - the paper's design rule for a well-provisioned NoC. The
// returned stage names the actual bottleneck.
func MemoryBound(stages []Stage) (bool, Stage, error) {
	_, binding, err := SeriesThroughput(stages)
	if err != nil {
		return false, Stage{}, err
	}
	return stages[binding].Name == "DRAM channels", stages[binding], nil
}

// NetworkWallFactor quantifies how badly an under-provisioned NoC caps
// the system: the ratio of DRAM capacity to actual series throughput
// (1.0 means no wall).
func NetworkWallFactor(stages []Stage) (float64, error) {
	max, _, err := SeriesThroughput(stages)
	if err != nil {
		return 0, err
	}
	for _, s := range stages {
		if s.Name == "DRAM channels" {
			return float64(s.CapacityGBs) / float64(max), nil
		}
	}
	return 0, fmt.Errorf("bottleneck: no DRAM stage in hierarchy")
}
