package noc

import (
	"bytes"
	"reflect"
	"testing"

	"gpunoc/internal/obs"
)

// quickGPUSim is a shortened Fig. 21 configuration for obs tests.
func quickGPUSim(seed int64) GPUSimConfig {
	cfg := DefaultGPUSimConfig(seed)
	cfg.Cycles = 3000
	cfg.Warmup = 500
	cfg.UtilWindow = 100
	return cfg
}

// Observation must be a pure tap: attaching a registry cannot perturb a
// single simulation outcome.
func TestObservationDoesNotChangeResults(t *testing.T) {
	plain, err := RunGPUSim(quickGPUSim(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickGPUSim(3)
	cfg.Obs = obs.New()
	observed, err := RunGPUSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("GPU sim diverged under observation:\n%+v\n%+v", plain, observed)
	}

	fPlain, err := RunFairness(DefaultFairnessConfig(AgeBased, 5))
	if err != nil {
		t.Fatal(err)
	}
	fCfg := DefaultFairnessConfig(AgeBased, 5)
	fCfg.Obs = obs.New()
	fObs, err := RunFairness(fCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fPlain, fObs) {
		t.Error("fairness run diverged under observation")
	}

	xPlain, err := RunXbarFairness(DefaultXbarFairnessConfig(RoundRobin, 5))
	if err != nil {
		t.Fatal(err)
	}
	xCfg := DefaultXbarFairnessConfig(RoundRobin, 5)
	xCfg.Obs = obs.New()
	xObs, err := RunXbarFairness(xCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(xPlain, xObs) {
		t.Error("xbar fairness run diverged under observation")
	}

	lCfg := DefaultLoadLatencyConfig(RoundRobin, 5)
	lCfg.Rates = []float64{0.1, 0.3}
	lPlain, err := RunLoadLatency(lCfg)
	if err != nil {
		t.Fatal(err)
	}
	lCfg.Obs = obs.New()
	lObs, err := RunLoadLatency(lCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lPlain, lObs) {
		t.Error("load-latency sweep diverged under observation")
	}
}

// Two identically-seeded observed runs must emit byte-identical metrics
// and trace files - the registry-level determinism contract holding
// end-to-end through a full simulator.
func TestObservedGPUSimEmitsDeterministically(t *testing.T) {
	render := func() (string, string) {
		cfg := quickGPUSim(9)
		cfg.Obs = obs.New()
		if _, err := RunGPUSim(cfg); err != nil {
			t.Fatal(err)
		}
		var m, tr bytes.Buffer
		if err := cfg.Obs.WriteMetrics(&m); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Obs.WriteTrace(&tr); err != nil {
			t.Fatal(err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := render()
	m2, t2 := render()
	if m1 != m2 {
		t.Error("metrics differ between identically-seeded observed runs")
	}
	if t1 != t2 {
		t.Error("trace differs between identically-seeded observed runs")
	}
}

// The instruments must agree with the simulators' own aggregates: the
// cross-check that the hooks sit on the right events.
func TestObservedCountsMatchSimulatorAggregates(t *testing.T) {
	reg := obs.New()
	cfg := quickGPUSim(4)
	cfg.Obs = reg.Scope("sim")
	res, err := RunGPUSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	served := reg.Scope("sim").Scope("mc").Counter("served").Value()
	// The counter counts all completions including warm-up; the result
	// only counts measured ones, so served >= RequestsServed > 0.
	if served < res.RequestsServed || res.RequestsServed == 0 {
		t.Errorf("mc/served = %d, want >= RequestsServed = %d > 0", served, res.RequestsServed)
	}
	reqPkts := reg.Scope("sim").Scope("req").Counter("eject/packets").Value()
	if reqPkts == 0 {
		t.Error("request mesh ejected no packets under observation")
	}
	repFlits := reg.Scope("sim").Scope("rep").Counter("eject/flits").Value()
	repPkts := reg.Scope("sim").Scope("rep").Counter("eject/packets").Value()
	// The run can stop with packets partially ejected (at most one per
	// sink, wormhole ownership), so flits may exceed packets x ReplyFlits
	// by a bounded remainder.
	delta := repFlits - repPkts*int64(cfg.ReplyFlits)
	maxPartial := int64(cfg.ReplyFlits-1) * int64(cfg.Mesh.Width*cfg.Mesh.Height)
	if repPkts == 0 || delta < 0 || delta > maxPartial {
		t.Errorf("reply mesh flits=%d packets=%d; want packets x %d <= flits <= that + %d",
			repFlits, repPkts, cfg.ReplyFlits, maxPartial)
	}
	// The narrow reply interface is the bottleneck: backpressure events
	// must actually fire in this regime (Fig. 21's whole point).
	if reg.Scope("sim").Scope("mc").Counter("reply_backpressure").Value() == 0 {
		t.Error("no reply backpressure observed in the bottlenecked configuration")
	}

	// Mesh-level cross-check on a standalone mesh: every ejected flit
	// and packet is counted, and occupancy was sampled every cycle.
	mreg := obs.New()
	m, err := NewMesh(MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(mreg)
	n := m.Nodes()
	for src := 0; src < n; src++ {
		for k := 0; k < 5; k++ {
			if _, err := m.Inject(src, (src+3*k+1)%n, 3, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Run(400)
	if !m.Drained() {
		t.Fatal("mesh failed to drain")
	}
	var pkts, flits int64
	for i := range m.AcceptedPackets {
		pkts += m.AcceptedPackets[i]
		flits += m.AcceptedFlits[i]
	}
	if got := mreg.Counter("eject/packets").Value(); got != pkts {
		t.Errorf("eject/packets = %d, want %d", got, pkts)
	}
	if got := mreg.Counter("eject/flits").Value(); got != flits {
		t.Errorf("eject/flits = %d, want %d", got, flits)
	}
	if got := mreg.Histogram("buffer_occupancy", nil).Count(); got != 400 {
		t.Errorf("occupancy sampled %d times, want once per cycle = 400", got)
	}
	if mreg.Tracer() == nil {
		t.Fatal("mesh scope has no tracer")
	}
}
