package noc

import (
	"fmt"
	"math"
	"math/rand"

	"gpunoc/internal/obs"
)

// XbarConfig describes a two-level hierarchical crossbar, the organization
// the paper identifies in real GPUs and in recent simulator baselines
// (Sec. VI-C): compute nodes feed per-cluster hubs (with configurable
// input speedup), hubs feed a single-hop central crossbar whose outputs
// are the memory ports. Unlike a multi-hop mesh, every source is one
// arbitration away from every destination, so locally fair arbitration is
// globally fair and uniform bandwidth comes for free (Implication #6).
type XbarConfig struct {
	// Clusters and NodesPerCluster define the compute side (a cluster
	// models a GPC).
	Clusters        int
	NodesPerCluster int
	// MemPorts is the number of crossbar outputs (memory partitions).
	MemPorts int
	// HubCapacity is how many flits one cluster hub forwards per cycle -
	// the input speedup of Fig. 11.
	HubCapacity int
	// PortCapacity is how many flits one memory port accepts per cycle.
	PortCapacity int
	// VOQDepth bounds each hub's per-destination virtual output queue.
	VOQDepth int
	// Arbiter picks how each memory port chooses among hubs.
	Arbiter Arbiter
}

// Validate checks the configuration.
func (c XbarConfig) Validate() error {
	switch {
	case c.Clusters <= 0 || c.NodesPerCluster <= 0:
		return fmt.Errorf("noc: xbar needs positive cluster geometry")
	case c.MemPorts <= 0:
		return fmt.Errorf("noc: xbar needs memory ports")
	case c.HubCapacity <= 0 || c.PortCapacity <= 0:
		return fmt.Errorf("noc: xbar needs positive capacities")
	case c.VOQDepth <= 0:
		return fmt.Errorf("noc: xbar needs positive VOQ depth")
	case c.Arbiter != RoundRobin && c.Arbiter != AgeBased:
		return fmt.Errorf("noc: unknown arbiter %d", int(c.Arbiter))
	}
	return nil
}

// xbarFlit is one flow-control unit in the crossbar.
type xbarFlit struct {
	pkt  *Packet
	tail bool
}

// Xbar is the cycle-driven hierarchical crossbar simulator.
type Xbar struct {
	cfg XbarConfig
	// injectQ[node] holds flits awaiting the node's hub link.
	injectQ [][]xbarFlit
	// voq[cluster][port] is the hub's virtual output queue.
	voq [][][]xbarFlit
	// rrNode[cluster] and rrHub[port] are round-robin pointers.
	rrNode []int
	rrHub  []int
	cycle  int64
	nextID uint64

	// AcceptedPackets counts delivered packets per source node.
	AcceptedPackets []int64
	// AcceptedFlits counts flits delivered per memory port.
	AcceptedFlits []int64

	// obs is the optional instrument set; see Observe. All instruments
	// are nil-safe no-ops while unobserved, so the hooks in Step cost a
	// nil check and zero allocations in the disabled default (guarded
	// by TestXbarStepSteadyStateDoesNotAllocate / BenchmarkXbarStep).
	obs xbarObs
}

// xbarObs gathers the crossbar's instruments. voqFlits tracks the
// running total VOQ occupancy: hub pulls and port drains are its only
// net changes per cycle.
type xbarObs struct {
	// portGrants[port] counts flits each memory port granted.
	portGrants []*obs.Counter
	// hubForwards[cluster] counts flits each hub pulled into its VOQs.
	hubForwards []*obs.Counter
	stallVOQ    *obs.Counter
	voqDepth    *obs.Histogram
	tracer      *obs.Tracer
	voqFlits    int64
}

// Observe attaches the crossbar's instruments to a registry scope:
// per-port grant counters, per-hub forward counters, a VOQ-full stall
// counter, a per-cycle total-VOQ-occupancy histogram, and per-packet
// delivery spans on the scope's tracer. Call it once before running;
// Observe(nil) leaves the crossbar unobserved (the zero-cost default).
func (x *Xbar) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	x.obs.stallVOQ = reg.Counter("stall/voq_full")
	x.obs.voqDepth = reg.Histogram("voq_occupancy", obs.DepthBounds())
	x.obs.tracer = reg.Tracer()
	x.obs.portGrants = make([]*obs.Counter, x.cfg.MemPorts)
	for p := range x.obs.portGrants {
		x.obs.portGrants[p] = reg.Counter(fmt.Sprintf("port/p%02d/grants", p))
	}
	x.obs.hubForwards = make([]*obs.Counter, x.cfg.Clusters)
	for c := range x.obs.hubForwards {
		x.obs.hubForwards[c] = reg.Counter(fmt.Sprintf("hub/c%02d/forwards", c))
	}
}

// NewXbar builds a crossbar simulator.
func NewXbar(cfg XbarConfig) (*Xbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Clusters * cfg.NodesPerCluster
	x := &Xbar{
		cfg:             cfg,
		injectQ:         make([][]xbarFlit, n),
		voq:             make([][][]xbarFlit, cfg.Clusters),
		rrNode:          make([]int, cfg.Clusters),
		rrHub:           make([]int, cfg.MemPorts),
		AcceptedPackets: make([]int64, n),
		AcceptedFlits:   make([]int64, cfg.MemPorts),
	}
	for c := range x.voq {
		x.voq[c] = make([][]xbarFlit, cfg.MemPorts)
	}
	return x, nil
}

// Nodes returns the compute-node count.
func (x *Xbar) Nodes() int { return x.cfg.Clusters * x.cfg.NodesPerCluster }

// Config returns the crossbar's configuration (read-only audit tap; see
// Mesh.Config).
func (x *Xbar) Config() XbarConfig { return x.cfg }

// VisitVOQs calls fn for every hub virtual output queue with its
// current occupancy and depth bound. It is a read-only audit tap for
// per-cycle invariant checks (VOQ occupancy <= VOQDepth; flit
// conservation). Visit order is deterministic: cluster-major, then
// port.
func (x *Xbar) VisitVOQs(fn func(cluster, port, occupancy, depth int)) {
	for c := range x.voq {
		for p := range x.voq[c] {
			fn(c, p, len(x.voq[c][p]), x.cfg.VOQDepth)
		}
	}
}

// ClusterOf returns the cluster hosting a node.
func (x *Xbar) ClusterOf(node int) int { return node / x.cfg.NodesPerCluster }

// Cycle returns the current cycle.
func (x *Xbar) Cycle() int64 { return x.cycle }

// PendingInjection returns the node's source-queue occupancy in flits.
func (x *Xbar) PendingInjection(node int) int { return len(x.injectQ[node]) }

// Inject queues a packet from node to memory port.
func (x *Xbar) Inject(node, port, flits int) (*Packet, error) {
	if node < 0 || node >= x.Nodes() {
		return nil, fmt.Errorf("noc: xbar node %d out of range", node)
	}
	if port < 0 || port >= x.cfg.MemPorts {
		return nil, fmt.Errorf("noc: xbar port %d out of range", port)
	}
	if flits <= 0 {
		return nil, fmt.Errorf("noc: packet needs at least one flit")
	}
	x.nextID++
	p := &Packet{ID: x.nextID, Src: node, Dst: port, Flits: flits, CreatedAt: x.cycle}
	for s := 0; s < flits; s++ {
		//lint:ignore hotpathalloc injection-queue growth is caller-throttled via PendingInjection and Step's copy-down drain keeps append capacity; steady-state injects are alloc-free
		x.injectQ[node] = append(x.injectQ[node], xbarFlit{pkt: p, tail: s == flits-1})
	}
	return p, nil
}

// Step advances one cycle: memory ports drain hub VOQs, then hubs pull
// from their nodes' source queues.
func (x *Xbar) Step() {
	// Phase 1: each memory port accepts up to PortCapacity flits,
	// arbitrating among cluster hubs.
	for port := 0; port < x.cfg.MemPorts; port++ {
		for grant := 0; grant < x.cfg.PortCapacity; grant++ {
			hub := x.pickHub(port)
			if hub < 0 {
				break
			}
			// Pop by compacting down: q = q[1:] would pin the drained
			// flit's *Packet in the backing array and erode append
			// capacity, reallocating every few cycles (the fifo.pop
			// pattern).
			q := x.voq[hub][port]
			f := q[0]
			n := copy(q, q[1:])
			q[n] = xbarFlit{}
			x.voq[hub][port] = q[:n]
			// The round-robin pointer advances here, on the committed
			// grant — pickHub is a pure pick. Same contract as the mesh's
			// commitGrant: priority only rotates past a hub that was
			// actually served.
			if x.cfg.Arbiter == RoundRobin {
				x.rrHub[port] = hub
			}
			x.AcceptedFlits[port]++
			x.obs.voqFlits--
			if x.obs.portGrants != nil {
				x.obs.portGrants[port].Inc()
			}
			if f.tail {
				x.AcceptedPackets[f.pkt.Src]++
				x.obs.tracer.Span("xbar", "pkt",
					f.pkt.CreatedAt, x.cycle-f.pkt.CreatedAt, int64(f.pkt.Src), int64(f.pkt.ID))
			}
		}
	}
	// Phase 2: each hub forwards up to HubCapacity flits from its nodes'
	// source queues into the VOQs (round-robin over member nodes).
	for c := 0; c < x.cfg.Clusters; c++ {
		base := c * x.cfg.NodesPerCluster
		for grant := 0; grant < x.cfg.HubCapacity; grant++ {
			moved := false
			for i := 0; i < x.cfg.NodesPerCluster; i++ {
				node := base + (x.rrNode[c]+1+i)%x.cfg.NodesPerCluster
				q := x.injectQ[node]
				if len(q) == 0 {
					continue
				}
				dst := q[0].pkt.Dst
				if len(x.voq[c][dst]) >= x.cfg.VOQDepth {
					x.obs.stallVOQ.Inc()
					continue
				}
				//lint:ignore hotpathalloc VOQ occupancy is bounded by VOQDepth (checked above) and the port drain compacts in place, keeping capacity; steady-state appends are alloc-free
				x.voq[c][dst] = append(x.voq[c][dst], q[0])
				// Same compaction as the port drain above.
				n := copy(q, q[1:])
				q[n] = xbarFlit{}
				x.injectQ[node] = q[:n]
				x.rrNode[c] = node - base
				x.obs.voqFlits++
				if x.obs.hubForwards != nil {
					x.obs.hubForwards[c].Inc()
				}
				moved = true
				break
			}
			if !moved {
				break
			}
		}
	}
	x.obs.voqDepth.Observe(x.obs.voqFlits)
	x.cycle++
}

// pickHub selects the hub whose VOQ head wins memory port port, or -1.
func (x *Xbar) pickHub(port int) int {
	switch x.cfg.Arbiter {
	case AgeBased:
		// Oldest packet wins; an exact age tie breaks to the lowest
		// packet ID, never to the cluster scan order (the same contract
		// as the mesh arbiter — see TestXbarAgeBasedEqualAgeTieBreak).
		best, bestAge, bestID := -1, int64(math.MaxInt64), uint64(math.MaxUint64)
		for c := 0; c < x.cfg.Clusters; c++ {
			q := x.voq[c][port]
			if len(q) == 0 {
				continue
			}
			pkt := q[0].pkt
			if pkt.CreatedAt < bestAge || (pkt.CreatedAt == bestAge && pkt.ID < bestID) {
				best, bestAge, bestID = c, pkt.CreatedAt, pkt.ID
			}
		}
		return best
	default:
		// Pure pick: the pointer advances at the drain site in Step, only
		// on an actual grant (aligned with the mesh's pickInput contract).
		// In this topology every pick is drained the same cycle, so the
		// split is behaviour-preserving; it keeps the two arbiters
		// structurally identical so neither can drift into advancing on a
		// masked candidate.
		for i := 1; i <= x.cfg.Clusters; i++ {
			c := (x.rrHub[port] + i) % x.cfg.Clusters
			if len(x.voq[c][port]) > 0 {
				return c
			}
		}
		return -1
	}
}

// Run advances n cycles.
func (x *Xbar) Run(n int) {
	for i := 0; i < n; i++ {
		x.Step()
	}
}

// Drained reports whether all queues are empty.
func (x *Xbar) Drained() bool {
	for _, q := range x.injectQ {
		if len(q) > 0 {
			return false
		}
	}
	for _, hub := range x.voq {
		for _, q := range hub {
			if len(q) > 0 {
				return false
			}
		}
	}
	return true
}

// XbarFairnessConfig mirrors FairnessConfig for the crossbar topology.
type XbarFairnessConfig struct {
	Xbar        XbarConfig
	PacketFlits int
	InjectRate  float64
	Cycles      int
	Warmup      int
	Seed        int64
	// Obs receives the crossbar's instruments; nil runs unobserved.
	Obs *obs.Registry
}

// DefaultXbarFairnessConfig matches the Fig. 23 setup's scale: 30 compute
// nodes in 6 clusters, 6 memory ports, hub input speedup of 2.
func DefaultXbarFairnessConfig(arb Arbiter, seed int64) XbarFairnessConfig {
	return XbarFairnessConfig{
		Xbar: XbarConfig{
			Clusters: 6, NodesPerCluster: 5, MemPorts: 6,
			HubCapacity: 2, PortCapacity: 1, VOQDepth: 8, Arbiter: arb,
		},
		PacketFlits: 1,
		InjectRate:  0.25,
		Warmup:      2000,
		Cycles:      20000,
		Seed:        seed,
	}
}

// RunXbarFairness measures per-source accepted throughput under the same
// offered load as the mesh fairness experiment, demonstrating that the
// hierarchical crossbar delivers uniform bandwidth without age-based
// arbitration machinery.
func RunXbarFairness(cfg XbarFairnessConfig) (*FairnessResult, error) {
	if cfg.PacketFlits <= 0 || cfg.Cycles <= 0 || cfg.InjectRate <= 0 {
		return nil, fmt.Errorf("noc: invalid xbar fairness parameters")
	}
	x, err := NewXbar(cfg.Xbar)
	if err != nil {
		return nil, err
	}
	x.Observe(cfg.Obs)
	rng := rand.New(rand.NewSource(cfg.Seed))
	topUp := func() {
		for node := 0; node < x.Nodes(); node++ {
			if rng.Float64() >= cfg.InjectRate {
				continue
			}
			if x.PendingInjection(node) > 16*cfg.PacketFlits {
				continue
			}
			if _, err := x.Inject(node, rng.Intn(cfg.Xbar.MemPorts), cfg.PacketFlits); err != nil {
				panic(err) // ranges validated above
			}
		}
	}
	for c := 0; c < cfg.Warmup; c++ {
		topUp()
		x.Step()
	}
	base := make([]int64, x.Nodes())
	copy(base, x.AcceptedPackets)
	for c := 0; c < cfg.Cycles; c++ {
		topUp()
		x.Step()
	}
	res := &FairnessResult{}
	minT, maxT := math.MaxFloat64, 0.0
	for node := 0; node < x.Nodes(); node++ {
		res.ComputeNodes = append(res.ComputeNodes, node)
		tp := float64(x.AcceptedPackets[node]-base[node]) / float64(cfg.Cycles)
		res.Throughput = append(res.Throughput, tp)
		if tp < minT {
			minT = tp
		}
		if tp > maxT {
			maxT = tp
		}
	}
	for p := 0; p < cfg.Xbar.MemPorts; p++ {
		res.MCs = append(res.MCs, p)
	}
	if minT > 0 {
		res.MaxMinRatio = maxT / minT
	} else {
		res.MaxMinRatio = math.Inf(1)
	}
	return res, nil
}
