package noc

import "testing"

// The MC service path used to reslice st.queue[1:], pinning every
// serviced request's *Packet in the backing array and eroding append
// capacity so steady-state servicing reallocated every ~queueCap pops.
// This drives the exact Accept/popRequest cadence RunGPUSim runs per
// cycle and demands zero allocations once warmed.
func TestMCQueueSteadyStateDoesNotAllocate(t *testing.T) {
	st := &mcState{queueCap: 16}
	p := &Packet{ID: 1, Flits: 1}
	// Warm up: grow the queue's backing array to its working size.
	for i := 0; i < st.queueCap; i++ {
		if !st.Accept(p, true, 0) {
			t.Fatal("warm-up enqueue refused below capacity")
		}
	}
	for len(st.queue) > 0 {
		st.popRequest()
	}
	avg := testing.AllocsPerRun(1000, func() {
		if !st.Accept(p, true, 0) {
			t.Fatal("steady-state enqueue refused")
		}
		if st.popRequest() != p {
			t.Fatal("popped wrong request")
		}
	})
	if avg != 0 {
		t.Errorf("steady-state MC enqueue/service allocates %.1f per request, want 0", avg)
	}
}

// Admission is decided at the head flit. The old Accept admitted every
// non-tail flit unconditionally and only refused at the tail when the
// queue was full - a multi-flit request would be half-consumed, wedging
// the wormhole with the tail refused forever.
func TestMCAcceptRefusesAtHeadFlit(t *testing.T) {
	st := &mcState{queueCap: 1}
	a := &Packet{ID: 1, Flits: 2}
	if !st.Accept(a, false, 0) {
		t.Fatal("head flit refused with queue headroom")
	}
	if !st.Accept(a, true, 0) {
		t.Fatal("tail flit refused after head was admitted")
	}
	if len(st.queue) != 1 {
		t.Fatalf("queued %d packets, want 1", len(st.queue))
	}
	// Queue is now full: the next packet must be refused at its HEAD,
	// before any flit is consumed (the old code accepted it here).
	b := &Packet{ID: 2, Flits: 2}
	if st.Accept(b, false, 0) {
		t.Fatal("head flit admitted with no queue headroom; tail would wedge")
	}
	// Drain one request; the refused packet's head retries and lands.
	st.popRequest()
	if !st.Accept(b, false, 0) || !st.Accept(b, true, 0) {
		t.Fatal("retried packet refused after headroom opened")
	}
}

// End-to-end wedge check: with multi-flit requests, the old tail-refusal
// Accept would half-consume a request at a full MC and hold the local
// output forever - the sim would serve almost nothing. Head-flit
// admission must keep the pipeline flowing.
func TestGPUSimMultiFlitRequestsDoNotWedge(t *testing.T) {
	cfg := DefaultGPUSimConfig(1)
	cfg.RequestFlits = 3
	// Slow DRAM so MC queues actually back up and refusals happen.
	cfg.MCServiceCycles = 4
	cfg.Cycles = 6000
	cfg.Warmup = 1000
	res, err := RunGPUSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A wedged sim serves at most a few queue-fills' worth of requests
	// (~6 MCs x 16 queue). A flowing one serves thousands.
	if res.RequestsServed < 1000 {
		t.Errorf("served only %d multi-flit requests; wormhole looks wedged", res.RequestsServed)
	}
	if res.MemUtilization <= 0 {
		t.Errorf("memory utilization %.3f; MCs never worked", res.MemUtilization)
	}
}

// RequestFlits is new; zero keeps the historical single-flit behaviour
// byte-for-byte, and negatives are rejected.
func TestGPUSimRequestFlitsDefaults(t *testing.T) {
	a, err := RunGPUSim(DefaultGPUSimConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	explicit := DefaultGPUSimConfig(7)
	explicit.RequestFlits = 1
	b, err := RunGPUSim(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if a.RequestsServed != b.RequestsServed || a.MemUtilization != b.MemUtilization {
		t.Errorf("RequestFlits=1 diverged from default: %+v vs %+v", a, b)
	}
	bad := DefaultGPUSimConfig(7)
	bad.RequestFlits = -1
	if _, err := RunGPUSim(bad); err == nil {
		t.Error("negative request flits should fail")
	}
}

// The noclint v2 refactor split RunGPUSim's per-cycle loop into hot
// methods, replaced the MC/window maps with node-indexed slices, and
// dropped the payload boxing (replies route by Packet.Src). All of that
// must be behaviour-preserving: these values were captured from the
// pre-refactor implementation, then re-captured once for the simcheck
// round-robin arbiter fix (the pointer used to advance on refused
// grants; see commitGrant and EXPERIMENTS.md for the figure deltas:
// served 3125->3123 / 22807->23280, util 0.712625->0.708125 /
// 0.17255->0.175858...).
func TestGPUSimGoldenResults(t *testing.T) {
	small := GPUSimConfig{
		Mesh:             MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: RoundRobin},
		ReplyFlits:       2,
		MCServiceCycles:  2,
		MCQueue:          4,
		WindowPerCompute: 4,
		Cycles:           2000,
		Warmup:           200,
		UtilWindow:       100,
		Seed:             7,
	}
	res, err := RunGPUSim(small)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemUtilization != 0.708125 || res.ReplyInterfaceUtilization != 0.7075 || res.RequestsServed != 3123 {
		t.Errorf("small config diverged from capture: util=%v reply=%v served=%d",
			res.MemUtilization, res.ReplyInterfaceUtilization, res.RequestsServed)
	}
	if len(res.UtilSeries) != 20 || res.UtilSeries[0] != 0.69 || res.UtilSeries[19] != 0.7475 {
		t.Errorf("small config UtilSeries diverged: len=%d first=%v last=%v",
			len(res.UtilSeries), res.UtilSeries[0], res.UtilSeries[len(res.UtilSeries)-1])
	}

	def, err := RunGPUSim(DefaultGPUSimConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if def.MemUtilization != 0.17585833333333334 || def.ReplyInterfaceUtilization != 0.52765 || def.RequestsServed != 23280 {
		t.Errorf("default config diverged from capture: util=%v reply=%v served=%d",
			def.MemUtilization, def.ReplyInterfaceUtilization, def.RequestsServed)
	}
}

// Replies used to find their way home through an int payload boxed into
// the request packet - a heap allocation per request on the hot path.
// Now they route by Packet.Src. If that routing broke, each compute
// node's outstanding window would never drain and the sim would serve
// at most one request per node.
func TestGPUSimRepliesReturnToRequester(t *testing.T) {
	cfg := GPUSimConfig{
		Mesh:             MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: RoundRobin},
		ReplyFlits:       2,
		MCServiceCycles:  1,
		MCQueue:          8,
		WindowPerCompute: 1, // every served request needs its reply home before the next issues
		Cycles:           3000,
		Warmup:           0,
		UtilWindow:       100,
		Seed:             3,
	}
	res, err := RunGPUSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compute := int64(cfg.Mesh.Width*cfg.Mesh.Height - cfg.Mesh.Width)
	if res.RequestsServed <= 2*compute {
		t.Errorf("served %d requests with a window of 1; replies are not reaching their requesters", res.RequestsServed)
	}
}

// The hotpathalloc analyzer enforces this structurally; this test
// samples it behaviourally: the per-cycle hot methods allocate nothing
// when the system is saturated (full windows) or idle (drained MCs).
func TestGPUSimHotMethodsDoNotAllocate(t *testing.T) {
	g, err := newGPUSim(GPUSimConfig{
		Mesh:             MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: RoundRobin},
		ReplyFlits:       2,
		MCServiceCycles:  2,
		MCQueue:          4,
		WindowPerCompute: 4,
		Cycles:           100,
		UtilWindow:       10,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate every compute window so issue's fast path runs bare.
	for _, n := range g.compute {
		g.outstanding[n] = g.cfg.WindowPerCompute
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if err := g.issue(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("issue() allocates %.1f per cycle at full windows, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, _, err := g.serviceMCs(true); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("serviceMCs() allocates %.1f per cycle when idle, want 0", avg)
	}
}
