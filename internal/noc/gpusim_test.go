package noc

import "testing"

// The MC service path used to reslice st.queue[1:], pinning every
// serviced request's *Packet in the backing array and eroding append
// capacity so steady-state servicing reallocated every ~queueCap pops.
// This drives the exact Accept/popRequest cadence RunGPUSim runs per
// cycle and demands zero allocations once warmed.
func TestMCQueueSteadyStateDoesNotAllocate(t *testing.T) {
	st := &mcState{queueCap: 16}
	p := &Packet{ID: 1, Flits: 1}
	// Warm up: grow the queue's backing array to its working size.
	for i := 0; i < st.queueCap; i++ {
		if !st.Accept(p, true, 0) {
			t.Fatal("warm-up enqueue refused below capacity")
		}
	}
	for len(st.queue) > 0 {
		st.popRequest()
	}
	avg := testing.AllocsPerRun(1000, func() {
		if !st.Accept(p, true, 0) {
			t.Fatal("steady-state enqueue refused")
		}
		if st.popRequest() != p {
			t.Fatal("popped wrong request")
		}
	})
	if avg != 0 {
		t.Errorf("steady-state MC enqueue/service allocates %.1f per request, want 0", avg)
	}
}

// Admission is decided at the head flit. The old Accept admitted every
// non-tail flit unconditionally and only refused at the tail when the
// queue was full - a multi-flit request would be half-consumed, wedging
// the wormhole with the tail refused forever.
func TestMCAcceptRefusesAtHeadFlit(t *testing.T) {
	st := &mcState{queueCap: 1}
	a := &Packet{ID: 1, Flits: 2}
	if !st.Accept(a, false, 0) {
		t.Fatal("head flit refused with queue headroom")
	}
	if !st.Accept(a, true, 0) {
		t.Fatal("tail flit refused after head was admitted")
	}
	if len(st.queue) != 1 {
		t.Fatalf("queued %d packets, want 1", len(st.queue))
	}
	// Queue is now full: the next packet must be refused at its HEAD,
	// before any flit is consumed (the old code accepted it here).
	b := &Packet{ID: 2, Flits: 2}
	if st.Accept(b, false, 0) {
		t.Fatal("head flit admitted with no queue headroom; tail would wedge")
	}
	// Drain one request; the refused packet's head retries and lands.
	st.popRequest()
	if !st.Accept(b, false, 0) || !st.Accept(b, true, 0) {
		t.Fatal("retried packet refused after headroom opened")
	}
}

// End-to-end wedge check: with multi-flit requests, the old tail-refusal
// Accept would half-consume a request at a full MC and hold the local
// output forever - the sim would serve almost nothing. Head-flit
// admission must keep the pipeline flowing.
func TestGPUSimMultiFlitRequestsDoNotWedge(t *testing.T) {
	cfg := DefaultGPUSimConfig(1)
	cfg.RequestFlits = 3
	// Slow DRAM so MC queues actually back up and refusals happen.
	cfg.MCServiceCycles = 4
	cfg.Cycles = 6000
	cfg.Warmup = 1000
	res, err := RunGPUSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A wedged sim serves at most a few queue-fills' worth of requests
	// (~6 MCs x 16 queue). A flowing one serves thousands.
	if res.RequestsServed < 1000 {
		t.Errorf("served only %d multi-flit requests; wormhole looks wedged", res.RequestsServed)
	}
	if res.MemUtilization <= 0 {
		t.Errorf("memory utilization %.3f; MCs never worked", res.MemUtilization)
	}
}

// RequestFlits is new; zero keeps the historical single-flit behaviour
// byte-for-byte, and negatives are rejected.
func TestGPUSimRequestFlitsDefaults(t *testing.T) {
	a, err := RunGPUSim(DefaultGPUSimConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	explicit := DefaultGPUSimConfig(7)
	explicit.RequestFlits = 1
	b, err := RunGPUSim(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if a.RequestsServed != b.RequestsServed || a.MemUtilization != b.MemUtilization {
		t.Errorf("RequestFlits=1 diverged from default: %+v vs %+v", a, b)
	}
	bad := DefaultGPUSimConfig(7)
	bad.RequestFlits = -1
	if _, err := RunGPUSim(bad); err == nil {
		t.Error("negative request flits should fail")
	}
}
