package noc

import (
	"fmt"

	"gpunoc/internal/units"
)

// SimPoint is one simulation-based prior-work configuration for the
// Fig. 22 "network wall" analysis: the NoC-MEM interface bandwidth is
// BW = f_NoC * w * C (NoC clock x channel width x number of MPs), and a
// point with BW_NoC-MEM < BW_MEM is bottlenecked by its own baseline NoC
// rather than by memory.
type SimPoint struct {
	// Name cites the configuration's origin.
	Name string
	// NoCClockGHz is the interconnect clock f_NoC.
	NoCClockGHz float64
	// ChannelBytes is the channel width w in bytes per cycle.
	ChannelBytes float64
	// MPs is C, the number of memory partitions (NoC-MEM ports).
	MPs int
	// MemBWGBs is the configured off-chip memory bandwidth.
	MemBWGBs units.GBps
}

// NoCMemBWGBs returns the interface bandwidth f_NoC * w * C in GB/s.
func (p SimPoint) NoCMemBWGBs() units.GBps {
	return units.GBps(p.NoCClockGHz * p.ChannelBytes * float64(p.MPs))
}

// NetworkWalled reports whether the configuration sits below the paper's
// sloped line, i.e. the NoC-MEM interface bandwidth cannot even carry the
// memory bandwidth and creates a "network wall".
func (p SimPoint) NetworkWalled() bool {
	return p.NoCMemBWGBs() < p.MemBWGBs
}

// Validate checks a point's parameters.
func (p SimPoint) Validate() error {
	if p.NoCClockGHz <= 0 || p.ChannelBytes <= 0 || p.MPs <= 0 || p.MemBWGBs <= 0 {
		return fmt.Errorf("noc: invalid sim point %q: %+v", p.Name, p)
	}
	return nil
}

// PriorWorkPoints returns representative configurations of the
// simulation-based prior work the paper surveys in Fig. 22 ([14], [15],
// [17], [28]-[32], [58], [59]). Parameters are reconstructed from each
// work's reported simulator configuration (largely GPGPU-Sim-era
// baselines); they are approximations that preserve which side of the
// network wall each configuration falls on.
func PriorWorkPoints() []SimPoint {
	return []SimPoint{
		// Throughput-effective NoC [28]: GTX280-era, 2D mesh, 16B channels.
		{Name: "throughput-effective [28]", NoCClockGHz: 0.602, ChannelBytes: 16, MPs: 8, MemBWGBs: 141.7},
		// Cache-conscious wavefront scheduling [14].
		{Name: "ccws [14]", NoCClockGHz: 0.7, ChannelBytes: 32, MPs: 8, MemBWGBs: 179.2},
		// Mascar [15]: memory-aware scheduling, Fermi-like baseline.
		{Name: "mascar [15]", NoCClockGHz: 0.7, ChannelBytes: 16, MPs: 6, MemBWGBs: 177.4},
		// iPAWS [17].
		{Name: "ipaws [17]", NoCClockGHz: 0.7, ChannelBytes: 32, MPs: 6, MemBWGBs: 179.2},
		// Packet pump [29]: reply-network optimized mesh.
		{Name: "packet-pump [29]", NoCClockGHz: 0.7, ChannelBytes: 16, MPs: 8, MemBWGBs: 179.2},
		// Bandwidth-efficient on-chip interconnects [30].
		{Name: "bandwidth-efficient [30]", NoCClockGHz: 0.602, ChannelBytes: 16, MPs: 6, MemBWGBs: 141.7},
		// Cost-effective on-chip network bandwidth [31].
		{Name: "cost-effective [31]", NoCClockGHz: 0.602, ChannelBytes: 32, MPs: 6, MemBWGBs: 141.7},
		// Conflict-free NoC [32].
		{Name: "conflict-free [32]", NoCClockGHz: 1.0, ChannelBytes: 32, MPs: 8, MemBWGBs: 177.4},
		// WarpPool [58].
		{Name: "warppool [58]", NoCClockGHz: 0.7, ChannelBytes: 32, MPs: 8, MemBWGBs: 179.2},
		// Adaptive cache management [59].
		{Name: "adaptive-cache [59]", NoCClockGHz: 0.602, ChannelBytes: 16, MPs: 6, MemBWGBs: 179.2},
	}
}

// WallReport classifies points against the network wall.
type WallReport struct {
	Point  SimPoint
	NoCMem units.GBps
	Walled bool
}

// AnalyzeNetworkWall evaluates each point and returns the per-point
// classification plus the count of walled configurations.
func AnalyzeNetworkWall(points []SimPoint) ([]WallReport, int, error) {
	reports := make([]WallReport, 0, len(points))
	walled := 0
	for _, p := range points {
		if err := p.Validate(); err != nil {
			return nil, 0, err
		}
		r := WallReport{Point: p, NoCMem: p.NoCMemBWGBs(), Walled: p.NetworkWalled()}
		if r.Walled {
			walled++
		}
		reports = append(reports, r)
	}
	return reports, walled, nil
}
