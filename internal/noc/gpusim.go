package noc

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/obs"
)

// GPUSimConfig sets up the Fig. 20/21 study: the many-to-few-to-many GPU
// traffic pattern over a request mesh and a reply mesh, with memory
// controllers bridging them. Read requests are small (one flit) while
// replies carry a cache line (several flits), so the reply network's
// NoC-MEM interface is the system's narrowest stage when the two meshes
// have equal channel width - the bottleneck prior work identified and the
// paper revisits.
type GPUSimConfig struct {
	Mesh MeshConfig
	// MCs lists memory-controller nodes; empty means the bottom row.
	MCs []int
	// RequestFlits is the read-request packet size; zero means the
	// historical single-flit request.
	RequestFlits int
	// ReplyFlits is the reply packet size (cache line / channel width).
	ReplyFlits int
	// MCServiceCycles is the DRAM service time per request; the memory
	// channel's peak is one request per MCServiceCycles.
	MCServiceCycles int
	// MCQueue is the per-MC pending-request queue depth.
	MCQueue int
	// WindowPerCompute caps each compute node's outstanding requests
	// (its MSHR file).
	WindowPerCompute int
	// Cycles and Warmup control the measurement.
	Cycles, Warmup int
	// UtilWindow is the bucket size for the utilization-over-time series.
	UtilWindow int
	// Seed drives random destination selection.
	Seed int64
	// Obs receives the simulation's instruments (request/reply mesh
	// scopes plus MC queue occupancy, DRAM busy, and reply-backpressure
	// counters); nil runs unobserved at zero cost.
	Obs *obs.Registry
}

// DefaultGPUSimConfig mirrors the throughput-effective-NoC style baseline:
// a 6x6 mesh, 6 edge MCs, 1-flit requests, multi-flit replies, and a
// memory channel able to accept one request per cycle - so the reply-side
// NoC (1 flit/cycle links) can sustain only a fraction of the channel's
// peak, reproducing the ~20% average utilization of Fig. 21.
func DefaultGPUSimConfig(seed int64) GPUSimConfig {
	return GPUSimConfig{
		Mesh:             MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: RoundRobin},
		ReplyFlits:       3,
		MCServiceCycles:  1,
		MCQueue:          16,
		WindowPerCompute: 16,
		Cycles:           20000,
		Warmup:           2000,
		UtilWindow:       200,
		Seed:             seed,
	}
}

// GPUSimResult reports the dual-network simulation.
type GPUSimResult struct {
	// MemUtilization is the fraction of cycles the memory channels were
	// actively servicing requests, averaged over MCs.
	MemUtilization float64
	// UtilSeries is the per-window mean memory utilization over time -
	// the fluctuating trace of Fig. 21.
	UtilSeries []float64
	// ReplyInterfaceUtilization is the fraction of cycles MCs were
	// injecting reply flits.
	ReplyInterfaceUtilization float64
	// RequestsServed is the total requests completed by the MCs.
	RequestsServed int64
}

// mcState bridges a request-mesh sink to a reply-mesh source.
type mcState struct {
	node     int
	queue    []*Packet
	queueCap int
	// admitted is the packet whose head flit was granted queue headroom
	// and whose remaining flits are still draining into the sink.
	admitted *Packet
	// blocked marks an MC currently stalled on reply-side backpressure,
	// so the tracer records transitions rather than every stalled cycle.
	blocked bool
	// busyUntil is the cycle the in-flight DRAM access completes.
	busyUntil int64
	// pendingReply holds a serviced request whose reply could not yet be
	// injected (reply-side backpressure stalls the channel).
	pendingReply *Packet
	busyCycles   int64
	served       int64
}

// popRequest dequeues the oldest pending request. It compacts the queue
// down instead of reslicing: q = q[1:] would pin the popped *Packet in
// the backing array and erode append capacity, forcing a reallocation
// every few pops (the fifo.pop pattern).
func (mc *mcState) popRequest() *Packet {
	req := mc.queue[0]
	n := copy(mc.queue, mc.queue[1:])
	mc.queue[n] = nil
	mc.queue = mc.queue[:n]
	return req
}

// Accept admits or refuses one flit of a request packet. The admission
// decision is made at the head flit: once the head is accepted the rest
// of the packet must drain, because wormhole output ownership means a
// half-consumed packet would hold the local port forever if the tail
// were refused. Headroom checked at the head still holds at the tail -
// only Accept grows the queue, the port is owned head-to-tail so no
// other packet can interleave, and servicing only frees slots.
func (mc *mcState) Accept(p *Packet, lastFlit bool, _ int64) bool {
	if p != mc.admitted {
		// Head flit: admit only with queue headroom.
		if len(mc.queue) >= mc.queueCap {
			return false
		}
		mc.admitted = p
	}
	if lastFlit {
		//lint:ignore hotpathalloc queue growth is bounded by queueCap and popRequest compacts in place, keeping capacity; steady-state appends are alloc-free (TestMCQueueSteadyStateDoesNotAllocate)
		mc.queue = append(mc.queue, p)
		mc.admitted = nil
	}
	return true
}

// gpuSim is the per-run state of the request/reply simulation. The
// per-cycle work is split into //lint:hotpath methods (issue,
// serviceMCs) so the interprocedural analyzers police it structurally:
// everything those methods reach must be allocation-free and
// deterministic. MC and window state is indexed by node ID in slices,
// not maps — the per-cycle loops touch them constantly, and slice
// indexing keeps that path free of map-hash work and map-iteration
// hazards.
type gpuSim struct {
	cfg      GPUSimConfig
	reqFlits int
	reqNet   *Mesh
	repNet   *Mesh
	// mcs lists MC nodes in their fixed service order.
	mcs []int
	// mcStates is indexed by node ID (nil for compute nodes).
	mcStates []*mcState
	// outstanding is indexed by node ID: each compute node's in-flight
	// request window.
	outstanding []int
	compute     []int
	rng         *rand.Rand

	mcObs          *obs.Registry
	mcQueueDepth   *obs.Histogram
	mcBusy         *obs.Counter
	mcBackpressure *obs.Counter
	mcServed       *obs.Counter
	mcTracer       *obs.Tracer
}

// newGPUSim validates the configuration and builds the meshes, MC
// bridges, sinks, and instruments. All allocation happens here, before
// the first cycle.
func newGPUSim(cfg GPUSimConfig) (*gpuSim, error) {
	if cfg.ReplyFlits <= 0 || cfg.MCServiceCycles <= 0 || cfg.MCQueue <= 0 || cfg.WindowPerCompute <= 0 {
		return nil, fmt.Errorf("noc: invalid GPU sim parameters %+v", cfg)
	}
	reqFlits := cfg.RequestFlits
	if reqFlits == 0 {
		reqFlits = 1
	}
	if reqFlits < 0 {
		return nil, fmt.Errorf("noc: invalid GPU sim request flits %d", reqFlits)
	}
	if cfg.Cycles <= 0 || cfg.UtilWindow <= 0 {
		return nil, fmt.Errorf("noc: invalid GPU sim measurement window")
	}
	reqNet, err := NewMesh(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	repNet, err := NewMesh(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	g := &gpuSim{cfg: cfg, reqFlits: reqFlits, reqNet: reqNet, repNet: repNet}
	g.mcs = cfg.MCs
	if len(g.mcs) == 0 {
		for x := 0; x < cfg.Mesh.Width; x++ {
			g.mcs = append(g.mcs, reqNet.NodeAt(x, cfg.Mesh.Height-1))
		}
	}
	g.mcStates = make([]*mcState, reqNet.Nodes())
	for _, n := range g.mcs {
		if n < 0 || n >= reqNet.Nodes() {
			return nil, fmt.Errorf("noc: MC node %d out of range", n)
		}
		st := &mcState{node: n, queueCap: cfg.MCQueue}
		g.mcStates[n] = st
		reqNet.SetSink(n, st)
	}
	g.outstanding = make([]int, reqNet.Nodes())
	for n := 0; n < reqNet.Nodes(); n++ {
		if g.mcStates[n] == nil {
			g.compute = append(g.compute, n)
		}
	}
	// Reply completion decrements the source's outstanding window.
	for _, n := range g.compute {
		node := n
		repNet.SetSink(node, sinkFunc(func(p *Packet, lastFlit bool, _ int64) bool {
			if lastFlit {
				g.outstanding[node]--
			}
			return true
		}))
	}

	// Instruments: both meshes report under their own sub-scopes; the MC
	// bridge exports queue occupancy, DRAM busy, reply backpressure, and
	// served-request counts. With cfg.Obs nil every instrument is a
	// nil-safe no-op, so the unobserved loop is identical and
	// allocation-free.
	reqNet.Observe(cfg.Obs.Scope("req"))
	repNet.Observe(cfg.Obs.Scope("rep"))
	g.mcObs = cfg.Obs.Scope("mc")
	g.mcQueueDepth = g.mcObs.Histogram("queue_depth", obs.DepthBounds())
	g.mcBusy = g.mcObs.Counter("busy_cycles")
	g.mcBackpressure = g.mcObs.Counter("reply_backpressure")
	g.mcServed = g.mcObs.Counter("served")
	g.mcTracer = g.mcObs.Tracer()

	g.rng = rand.New(rand.NewSource(cfg.Seed))
	return g, nil
}

// issue lets every compute node fill its outstanding window with read
// requests to seeded-random MCs. The request packet's Src field already
// names the node the reply must return to, so no payload is attached:
// boxing the source index into the any-typed payload parameter was a
// per-request heap allocation on this path.
//
//lint:hotpath per-cycle request-issue loop; runs every simulated cycle
func (g *gpuSim) issue() error {
	for _, n := range g.compute {
		for g.outstanding[n] < g.cfg.WindowPerCompute && g.reqNet.PendingInjection(n) < 4*g.reqFlits {
			dst := g.mcs[g.rng.Intn(len(g.mcs))]
			if _, err := g.reqNet.Inject(n, dst, g.reqFlits, nil); err != nil {
				return err
			}
			g.outstanding[n]++
		}
	}
	return nil
}

// serviceMCs advances every memory controller one cycle: finish DRAM
// accesses, inject replies, start new accesses. MCs are served in the
// fixed g.mcs order: when the reply network backpressures, which MC
// flushes first decides who wins the injection slot, and that must not
// vary run to run. It returns the number of busy MCs and the number of
// replies injected this cycle.
//
//lint:hotpath per-cycle MC service loop; runs every simulated cycle
func (g *gpuSim) serviceMCs(measuring bool) (busyNow int, injected int64, err error) {
	cycle := g.reqNet.Cycle()
	for _, n := range g.mcs {
		st := g.mcStates[n]
		g.mcQueueDepth.Observe(int64(len(st.queue)))
		// Try to flush a reply whose DRAM access completed but whose
		// injection is blocked by the reply-network interface.
		if st.pendingReply != nil && cycle >= st.busyUntil {
			src := st.pendingReply.Src
			if g.repNet.PendingInjection(st.node) < 2*g.cfg.ReplyFlits {
				if _, err := g.repNet.Inject(st.node, src, g.cfg.ReplyFlits, nil); err != nil {
					return 0, 0, err
				}
				injected++
				st.pendingReply = nil
				st.served++
				g.mcServed.Inc()
				if st.blocked {
					// Backpressure released: the reply finally left.
					st.blocked = false
					g.mcTracer.Instant("mc", "reply_unblocked", cycle, int64(st.node), 0)
				}
			} else {
				// Reply-side backpressure stalls the memory channel.
				g.mcBackpressure.Inc()
				if !st.blocked {
					st.blocked = true
					g.mcTracer.Instant("mc", "reply_blocked", cycle, int64(st.node),
						int64(g.repNet.PendingInjection(st.node)))
				}
			}
		}
		busy := cycle < st.busyUntil
		if !busy && st.pendingReply == nil && len(st.queue) > 0 {
			// Start servicing the next request.
			req := st.popRequest()
			st.busyUntil = cycle + int64(g.cfg.MCServiceCycles)
			st.pendingReply = req
			busy = true
		}
		if busy {
			busyNow++
			g.mcBusy.Inc()
			if measuring {
				st.busyCycles++
			}
		}
	}
	return busyNow, injected, nil
}

// run drives the measurement loop and folds the result.
func (g *gpuSim) run() (*GPUSimResult, error) {
	cfg := g.cfg
	res := &GPUSimResult{}
	var busyTotal, replyInjectTotal int64
	windowBusy := int64(0)

	total := cfg.Warmup + cfg.Cycles
	for c := 0; c < total; c++ {
		measuring := c >= cfg.Warmup
		if err := g.issue(); err != nil {
			return nil, err
		}
		busyNow, injected, err := g.serviceMCs(measuring)
		if err != nil {
			return nil, err
		}
		if measuring {
			busyTotal += int64(busyNow)
			replyInjectTotal += injected
			windowBusy += int64(busyNow)
			if (c-cfg.Warmup+1)%cfg.UtilWindow == 0 {
				res.UtilSeries = append(res.UtilSeries,
					float64(windowBusy)/float64(cfg.UtilWindow*len(g.mcs)))
				windowBusy = 0
			}
		}
		g.reqNet.Step()
		g.repNet.Step()
	}

	for _, n := range g.mcs {
		res.RequestsServed += g.mcStates[n].served
	}
	if cfg.Obs.Enabled() {
		// Final per-MC state, one gauge each (construction cost only
		// paid when observed).
		for _, n := range g.mcs {
			st := g.mcStates[n]
			g.mcObs.Gauge(fmt.Sprintf("n%03d/final_queue_depth", st.node)).Set(int64(len(st.queue)))
			g.mcObs.Gauge(fmt.Sprintf("n%03d/served", st.node)).Set(st.served)
		}
	}
	denom := float64(cfg.Cycles * len(g.mcs))
	res.MemUtilization = float64(busyTotal) / denom
	res.ReplyInterfaceUtilization = float64(replyInjectTotal) * float64(cfg.ReplyFlits) / denom
	return res, nil
}

// RunGPUSim executes the request/reply simulation.
func RunGPUSim(cfg GPUSimConfig) (*GPUSimResult, error) {
	g, err := newGPUSim(cfg)
	if err != nil {
		return nil, err
	}
	return g.run()
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(p *Packet, lastFlit bool, cycle int64) bool

func (f sinkFunc) Accept(p *Packet, lastFlit bool, cycle int64) bool { return f(p, lastFlit, cycle) }
