package noc

import (
	"fmt"
	"math/rand"
)

// GPUSimConfig sets up the Fig. 20/21 study: the many-to-few-to-many GPU
// traffic pattern over a request mesh and a reply mesh, with memory
// controllers bridging them. Read requests are small (one flit) while
// replies carry a cache line (several flits), so the reply network's
// NoC-MEM interface is the system's narrowest stage when the two meshes
// have equal channel width - the bottleneck prior work identified and the
// paper revisits.
type GPUSimConfig struct {
	Mesh MeshConfig
	// MCs lists memory-controller nodes; empty means the bottom row.
	MCs []int
	// ReplyFlits is the reply packet size (cache line / channel width).
	ReplyFlits int
	// MCServiceCycles is the DRAM service time per request; the memory
	// channel's peak is one request per MCServiceCycles.
	MCServiceCycles int
	// MCQueue is the per-MC pending-request queue depth.
	MCQueue int
	// WindowPerCompute caps each compute node's outstanding requests
	// (its MSHR file).
	WindowPerCompute int
	// Cycles and Warmup control the measurement.
	Cycles, Warmup int
	// UtilWindow is the bucket size for the utilization-over-time series.
	UtilWindow int
	// Seed drives random destination selection.
	Seed int64
}

// DefaultGPUSimConfig mirrors the throughput-effective-NoC style baseline:
// a 6x6 mesh, 6 edge MCs, 1-flit requests, multi-flit replies, and a
// memory channel able to accept one request per cycle - so the reply-side
// NoC (1 flit/cycle links) can sustain only a fraction of the channel's
// peak, reproducing the ~20% average utilization of Fig. 21.
func DefaultGPUSimConfig(seed int64) GPUSimConfig {
	return GPUSimConfig{
		Mesh:             MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: RoundRobin},
		ReplyFlits:       3,
		MCServiceCycles:  1,
		MCQueue:          16,
		WindowPerCompute: 16,
		Cycles:           20000,
		Warmup:           2000,
		UtilWindow:       200,
		Seed:             seed,
	}
}

// GPUSimResult reports the dual-network simulation.
type GPUSimResult struct {
	// MemUtilization is the fraction of cycles the memory channels were
	// actively servicing requests, averaged over MCs.
	MemUtilization float64
	// UtilSeries is the per-window mean memory utilization over time -
	// the fluctuating trace of Fig. 21.
	UtilSeries []float64
	// ReplyInterfaceUtilization is the fraction of cycles MCs were
	// injecting reply flits.
	ReplyInterfaceUtilization float64
	// RequestsServed is the total requests completed by the MCs.
	RequestsServed int64
}

// mcState bridges a request-mesh sink to a reply-mesh source.
type mcState struct {
	node     int
	queue    []*Packet
	queueCap int
	// busyUntil is the cycle the in-flight DRAM access completes.
	busyUntil int64
	// pendingReply holds a serviced request whose reply could not yet be
	// injected (reply-side backpressure stalls the channel).
	pendingReply *Packet
	busyCycles   int64
	served       int64
}

func (mc *mcState) Accept(p *Packet, lastFlit bool, _ int64) bool {
	if !lastFlit {
		return true
	}
	if len(mc.queue) >= mc.queueCap {
		return false
	}
	mc.queue = append(mc.queue, p)
	return true
}

// RunGPUSim executes the request/reply simulation.
func RunGPUSim(cfg GPUSimConfig) (*GPUSimResult, error) {
	if cfg.ReplyFlits <= 0 || cfg.MCServiceCycles <= 0 || cfg.MCQueue <= 0 || cfg.WindowPerCompute <= 0 {
		return nil, fmt.Errorf("noc: invalid GPU sim parameters %+v", cfg)
	}
	if cfg.Cycles <= 0 || cfg.UtilWindow <= 0 {
		return nil, fmt.Errorf("noc: invalid GPU sim measurement window")
	}
	reqNet, err := NewMesh(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	repNet, err := NewMesh(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	mcs := cfg.MCs
	if len(mcs) == 0 {
		for x := 0; x < cfg.Mesh.Width; x++ {
			mcs = append(mcs, reqNet.NodeAt(x, cfg.Mesh.Height-1))
		}
	}
	mcStates := make(map[int]*mcState, len(mcs))
	isMC := make(map[int]bool, len(mcs))
	for _, n := range mcs {
		if n < 0 || n >= reqNet.Nodes() {
			return nil, fmt.Errorf("noc: MC node %d out of range", n)
		}
		st := &mcState{node: n, queueCap: cfg.MCQueue}
		mcStates[n] = st
		isMC[n] = true
		reqNet.SetSink(n, st)
	}
	var compute []int
	outstanding := map[int]int{}
	for n := 0; n < reqNet.Nodes(); n++ {
		if !isMC[n] {
			compute = append(compute, n)
		}
	}
	// Reply completion decrements the source's outstanding window.
	for _, n := range compute {
		node := n
		repNet.SetSink(node, sinkFunc(func(p *Packet, lastFlit bool, _ int64) bool {
			if lastFlit {
				outstanding[node]--
			}
			return true
		}))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &GPUSimResult{}
	var busyTotal, replyInjectTotal int64
	windowBusy := int64(0)

	total := cfg.Warmup + cfg.Cycles
	for c := 0; c < total; c++ {
		measuring := c >= cfg.Warmup
		// Compute nodes issue requests up to their window.
		for _, n := range compute {
			for outstanding[n] < cfg.WindowPerCompute && reqNet.PendingInjection(n) < 4 {
				dst := mcs[rng.Intn(len(mcs))]
				if _, err := reqNet.Inject(n, dst, 1, n); err != nil {
					return nil, err
				}
				outstanding[n]++
			}
		}
		// MCs: finish DRAM accesses, inject replies, start new accesses.
		cycle := reqNet.Cycle()
		busyNow := 0
		// Service MCs in the fixed mcs order, not map order: when the
		// reply network backpressures, which MC flushes first decides
		// who wins the injection slot, and that must not vary run to
		// run.
		for _, n := range mcs {
			st := mcStates[n]
			// Try to flush a reply whose DRAM access completed but whose
			// injection is blocked by the reply-network interface.
			if st.pendingReply != nil && cycle >= st.busyUntil {
				src := st.pendingReply.Payload.(int)
				if repNet.PendingInjection(st.node) < 2*cfg.ReplyFlits {
					if _, err := repNet.Inject(st.node, src, cfg.ReplyFlits, nil); err != nil {
						return nil, err
					}
					if measuring {
						replyInjectTotal++
					}
					st.pendingReply = nil
					st.served++
				}
			}
			busy := cycle < st.busyUntil
			if !busy && st.pendingReply == nil && len(st.queue) > 0 {
				// Start servicing the next request.
				req := st.queue[0]
				st.queue = st.queue[1:]
				st.busyUntil = cycle + int64(cfg.MCServiceCycles)
				st.pendingReply = req
				busy = true
			}
			if busy {
				busyNow++
				if measuring {
					busyTotal++
					st.busyCycles++
				}
			}
		}
		if measuring {
			windowBusy += int64(busyNow)
			if (c-cfg.Warmup+1)%cfg.UtilWindow == 0 {
				res.UtilSeries = append(res.UtilSeries,
					float64(windowBusy)/float64(cfg.UtilWindow*len(mcs)))
				windowBusy = 0
			}
		}
		reqNet.Step()
		repNet.Step()
	}

	for _, n := range mcs {
		res.RequestsServed += mcStates[n].served
	}
	denom := float64(cfg.Cycles * len(mcs))
	res.MemUtilization = float64(busyTotal) / denom
	res.ReplyInterfaceUtilization = float64(replyInjectTotal) * float64(cfg.ReplyFlits) / denom
	return res, nil
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(p *Packet, lastFlit bool, cycle int64) bool

func (f sinkFunc) Accept(p *Packet, lastFlit bool, cycle int64) bool { return f(p, lastFlit, cycle) }
