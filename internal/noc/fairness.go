package noc

import (
	"fmt"
	"math"
	"math/rand"

	"gpunoc/internal/obs"
)

// FairnessConfig sets up the Fig. 23 experiment: a Width x Height mesh
// whose bottom-row nodes are memory controllers, with random many-to-few
// traffic from every compute node to the MCs under saturation (infinite
// source backlog).
type FairnessConfig struct {
	Mesh MeshConfig
	// MCs lists the memory-controller node indices. Empty means the
	// bottom row, matching the paper's "memory controllers on the edges".
	MCs []int
	// PacketFlits is the packet size in flits.
	PacketFlits int
	// InjectRate is the offered load in packets per cycle per compute
	// node. The interesting regime is just above saturation, where
	// arbitration decides who gets the contested links.
	InjectRate float64
	// Cycles is the measurement length after warmup.
	Cycles int
	// Warmup cycles are simulated but not measured.
	Warmup int
	// Seed drives the random destination choice.
	Seed int64
	// Obs receives the mesh's instruments; nil runs unobserved.
	Obs *obs.Registry
}

// FairnessResult reports per-compute-node accepted throughput.
type FairnessResult struct {
	// Throughput[i] is accepted packets per cycle for compute node
	// ComputeNodes[i].
	Throughput   []float64
	ComputeNodes []int
	MCs          []int
	// MaxMinRatio is max/min over compute-node throughputs, the paper's
	// unfairness figure of merit (~2.4x under round-robin, ~1 under
	// age-based arbitration).
	MaxMinRatio float64
}

// RunFairness executes the experiment.
func RunFairness(cfg FairnessConfig) (*FairnessResult, error) {
	if cfg.PacketFlits <= 0 {
		return nil, fmt.Errorf("noc: fairness packet size %d invalid", cfg.PacketFlits)
	}
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("noc: fairness cycles %d invalid", cfg.Cycles)
	}
	m, err := NewMesh(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	m.Observe(cfg.Obs)
	mcs := cfg.MCs
	if len(mcs) == 0 {
		for x := 0; x < cfg.Mesh.Width; x++ {
			mcs = append(mcs, m.NodeAt(x, cfg.Mesh.Height-1))
		}
	}
	isMC := make(map[int]bool, len(mcs))
	for _, n := range mcs {
		if n < 0 || n >= m.Nodes() {
			return nil, fmt.Errorf("noc: MC node %d out of range", n)
		}
		isMC[n] = true
	}
	var compute []int
	for n := 0; n < m.Nodes(); n++ {
		if !isMC[n] {
			compute = append(compute, n)
		}
	}
	if len(compute) == 0 {
		return nil, fmt.Errorf("noc: no compute nodes left")
	}

	if cfg.InjectRate <= 0 {
		return nil, fmt.Errorf("noc: fairness injection rate %v invalid", cfg.InjectRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Bernoulli sources at the configured offered load, with a bounded
	// source queue: a stalled source stops generating, like a core whose
	// MSHRs are full.
	topUp := func() {
		for _, src := range compute {
			if rng.Float64() >= cfg.InjectRate {
				continue
			}
			if m.PendingInjection(src) > 16*cfg.PacketFlits {
				continue
			}
			dst := mcs[rng.Intn(len(mcs))]
			if _, err := m.Inject(src, dst, cfg.PacketFlits, nil); err != nil {
				panic(err) // indices are validated above
			}
		}
	}

	for c := 0; c < cfg.Warmup; c++ {
		topUp()
		m.Step()
	}
	base := make([]int64, m.Nodes())
	copy(base, m.AcceptedPackets)
	for c := 0; c < cfg.Cycles; c++ {
		topUp()
		m.Step()
	}

	res := &FairnessResult{ComputeNodes: compute, MCs: mcs}
	minT, maxT := math.MaxFloat64, 0.0
	for _, src := range compute {
		tp := float64(m.AcceptedPackets[src]-base[src]) / float64(cfg.Cycles)
		res.Throughput = append(res.Throughput, tp)
		if tp < minT {
			minT = tp
		}
		if tp > maxT {
			maxT = tp
		}
	}
	if minT > 0 {
		res.MaxMinRatio = maxT / minT
	} else {
		res.MaxMinRatio = math.Inf(1)
	}
	return res, nil
}

// DefaultFairnessConfig mirrors the paper's footnote-10 setup: a 6x6 mesh,
// 30 compute nodes, 6 memory controllers on the edge, dimension-ordered
// routing and the chosen arbitration.
func DefaultFairnessConfig(arb Arbiter, seed int64) FairnessConfig {
	return FairnessConfig{
		Mesh:        MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: arb},
		PacketFlits: 1,
		InjectRate:  0.25,
		Warmup:      2000,
		Cycles:      20000,
		Seed:        seed,
	}
}
