package noc

import (
	"gpunoc/internal/obs"
	"gpunoc/internal/units"

	"fmt"
	"math/rand"
)

// This file adds the classic NoC characterization sweep - average packet
// latency versus offered load - to the mesh simulator. The paper's
// Section VI leans on the saturation behaviour of baseline NoCs
// ("bisection bandwidth only becomes an important metric if the nodes are
// injecting sufficient bandwidth to saturate it"); the load-latency curve
// is where that saturation point is read off.

// latencySink counts delivered packets and accumulates their network
// latency (delivery cycle minus creation cycle). Only packets created at
// or after measureFrom count: a packet injected during warm-up but
// delivered during measurement carries warm-up queueing in its latency,
// which biased the mean upward near saturation where queues are deepest.
type latencySink struct {
	measureFrom int64
	packets     int64
	latencySum  int64
}

func (s *latencySink) Accept(p *Packet, lastFlit bool, cycle int64) bool {
	if lastFlit && p.CreatedAt >= s.measureFrom {
		s.packets++
		s.latencySum += cycle - p.CreatedAt
	}
	return true
}

// LoadPoint is one point of a load-latency sweep.
type LoadPoint struct {
	// OfferedRate is packets per cycle per compute node.
	OfferedRate float64
	// AcceptedRate is delivered packets per cycle per compute node.
	AcceptedRate float64
	// AvgLatency is the mean packet network latency.
	AvgLatency units.Cycles
}

// LoadLatencyConfig configures the sweep; topology and traffic follow the
// fairness experiment (random many-to-few onto the bottom-row MCs).
type LoadLatencyConfig struct {
	Mesh        MeshConfig
	PacketFlits int
	Rates       []float64
	Cycles      int
	Warmup      int
	Seed        int64
	// Obs receives one mesh instrument scope per swept rate; nil runs
	// unobserved.
	Obs *obs.Registry
}

// DefaultLoadLatencyConfig sweeps the Fig. 23 topology across offered
// loads up to saturation.
func DefaultLoadLatencyConfig(arb Arbiter, seed int64) LoadLatencyConfig {
	return LoadLatencyConfig{
		Mesh:        MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: arb},
		PacketFlits: 1,
		Rates:       []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3},
		Cycles:      8000,
		Warmup:      1000,
		Seed:        seed,
	}
}

// RunLoadLatency executes the sweep and returns one point per rate.
func RunLoadLatency(cfg LoadLatencyConfig) ([]LoadPoint, error) {
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("noc: no rates to sweep")
	}
	if cfg.PacketFlits <= 0 || cfg.Cycles <= 0 {
		return nil, fmt.Errorf("noc: invalid load-latency parameters")
	}
	points := make([]LoadPoint, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		if rate <= 0 {
			return nil, fmt.Errorf("noc: non-positive rate %v", rate)
		}
		m, err := NewMesh(cfg.Mesh)
		if err != nil {
			return nil, err
		}
		m.Observe(cfg.Obs.Scope(fmt.Sprintf("rate%.2f", rate)))
		var mcs []int
		for x := 0; x < cfg.Mesh.Width; x++ {
			mcs = append(mcs, m.NodeAt(x, cfg.Mesh.Height-1))
		}
		sinks := make([]*latencySink, len(mcs))
		isMC := map[int]bool{}
		for i, n := range mcs {
			sinks[i] = &latencySink{measureFrom: int64(cfg.Warmup)}
			m.SetSink(n, sinks[i])
			isMC[n] = true
		}
		var compute []int
		for n := 0; n < m.Nodes(); n++ {
			if !isMC[n] {
				compute = append(compute, n)
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		step := func() error {
			for _, src := range compute {
				if rng.Float64() >= rate {
					continue
				}
				if m.PendingInjection(src) > 16*cfg.PacketFlits {
					continue
				}
				dst := mcs[rng.Intn(len(mcs))]
				if _, err := m.Inject(src, dst, cfg.PacketFlits, nil); err != nil {
					return err
				}
			}
			m.Step()
			return nil
		}
		// The sinks themselves ignore warm-up-created packets (see
		// latencySink), so no baseline subtraction is needed: everything
		// they record belongs to the measurement interval.
		for c := 0; c < cfg.Warmup+cfg.Cycles; c++ {
			if err := step(); err != nil {
				return nil, err
			}
		}
		var pkts, lat int64
		for _, s := range sinks {
			pkts += s.packets
			lat += s.latencySum
		}
		pt := LoadPoint{OfferedRate: rate}
		if pkts > 0 {
			pt.AcceptedRate = float64(pkts) / float64(cfg.Cycles) / float64(len(compute))
			pt.AvgLatency = units.Cycles(float64(lat) / float64(pkts))
		}
		points = append(points, pt)
	}
	return points, nil
}

// SaturationRate estimates the sweep's saturation throughput: the highest
// accepted rate observed.
func SaturationRate(points []LoadPoint) float64 {
	best := 0.0
	for _, p := range points {
		if p.AcceptedRate > best {
			best = p.AcceptedRate
		}
	}
	return best
}
