package noc

import "testing"

func replayConfig(portOf func(uint64) int) ReplayConfig {
	return ReplayConfig{
		Mesh:   MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: RoundRobin},
		PortOf: portOf,
	}
}

// sequentialTrace returns steps of contiguous 32-byte transactions.
func sequentialTrace(steps, perStep int) [][]uint64 {
	out := make([][]uint64, steps)
	addr := uint64(0)
	for s := range out {
		for i := 0; i < perStep; i++ {
			out[s] = append(out[s], addr)
			addr += 32
		}
	}
	return out
}

func TestReplayValidation(t *testing.T) {
	if _, err := ReplayTrace(ReplayConfig{Mesh: MeshConfig{Width: 4, Height: 4, BufferFlits: 4}}, sequentialTrace(1, 4)); err == nil {
		t.Error("missing PortOf should fail")
	}
	if _, err := ReplayTrace(replayConfig(HashedPortMapping(6)), nil); err == nil {
		t.Error("empty trace should fail")
	}
	bad := replayConfig(func(uint64) int { return 99 })
	if _, err := ReplayTrace(bad, sequentialTrace(1, 4)); err == nil {
		t.Error("out-of-range port should fail")
	}
	badMC := replayConfig(HashedPortMapping(1))
	badMC.MCs = []int{999}
	if _, err := ReplayTrace(badMC, sequentialTrace(1, 4)); err == nil {
		t.Error("bad MC node should fail")
	}
}

func TestReplayEmptyStep(t *testing.T) {
	stats, err := ReplayTrace(replayConfig(HashedPortMapping(6)), [][]uint64{{}, {0, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Transactions != 0 || stats[0].Makespan != 0 {
		t.Error("empty step should be free")
	}
	if stats[1].Transactions != 2 || !stats[1].Drained {
		t.Error("second step should deliver")
	}
}

// Section IV-C end to end: a hashed mapping keeps the ports balanced and
// the burst drains in near-ideal time; a camped mapping funnels the whole
// burst into one port and the makespan blows up by roughly the port count.
func TestReplayHashingPreventsMemoryCamping(t *testing.T) {
	trace := sequentialTrace(4, 600)

	hashed, err := ReplayTrace(replayConfig(HashedPortMapping(6)), trace)
	if err != nil {
		t.Fatal(err)
	}
	// One contiguous step is < the camping region, so every transaction
	// of a step lands on one port.
	camped, err := ReplayTrace(replayConfig(CampedPortMapping(6, 1<<20)), trace)
	if err != nil {
		t.Fatal(err)
	}
	for s := range trace {
		h, c := hashed[s], camped[s]
		if !h.Drained || !c.Drained {
			t.Fatalf("step %d did not drain", s)
		}
		if h.PortCV > 0.2 {
			t.Errorf("step %d: hashed port CV %.2f, want balanced", s, h.PortCV)
		}
		if c.PortCV < 1.5 {
			t.Errorf("step %d: camped port CV %.2f, want concentrated", s, c.PortCV)
		}
		if float64(c.Makespan) < 2.5*float64(h.Makespan) {
			t.Errorf("step %d: camping makespan %d should dwarf hashed %d", s, c.Makespan, h.Makespan)
		}
	}
	// Hashed throughput approaches the 6-port ejection limit.
	h0 := hashed[0]
	ideal := float64(h0.Transactions) / 6.0
	if float64(h0.Makespan) > 1.6*ideal {
		t.Errorf("hashed makespan %d vs ideal %.0f; too far from port-limited", h0.Makespan, ideal)
	}
}

func TestReplayLatencyReported(t *testing.T) {
	stats, err := ReplayTrace(replayConfig(HashedPortMapping(6)), sequentialTrace(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].AvgLatency <= 0 {
		t.Error("latency should be positive")
	}
}

func TestPortMappings(t *testing.T) {
	h := HashedPortMapping(8)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		p := h(uint64(i) * 128)
		if p < 0 || p >= 8 {
			t.Fatalf("hash out of range: %d", p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("hashed port %d gets %d of 8000", p, c)
		}
	}
	c := CampedPortMapping(4, 1024)
	if c(0) != 0 || c(1023) != 0 || c(1024) != 1 || c(4096) != 0 {
		t.Error("camped mapping wrong")
	}
}
