package noc

import (
	"testing"

	"gpunoc/internal/stats"
)

// Fig. 23: round-robin arbitration on a 6x6 mesh with edge MCs gives
// position-dependent throughput (the paper measures up to 2.4x), while
// age-based arbitration restores global fairness.
func TestFairnessRoundRobinVsAgeBased(t *testing.T) {
	rr, err := RunFairness(DefaultFairnessConfig(RoundRobin, 42))
	if err != nil {
		t.Fatal(err)
	}
	age, err := RunFairness(DefaultFairnessConfig(AgeBased, 42))
	if err != nil {
		t.Fatal(err)
	}
	if rr.MaxMinRatio < 2.0 {
		t.Errorf("round-robin max/min ratio %.2f, want >= 2 (paper: up to 2.4x)", rr.MaxMinRatio)
	}
	if rr.MaxMinRatio > 6.0 {
		t.Errorf("round-robin ratio %.2f implausibly unfair", rr.MaxMinRatio)
	}
	if age.MaxMinRatio > 1.8 {
		t.Errorf("age-based ratio %.2f, want near-fair", age.MaxMinRatio)
	}
	if age.MaxMinRatio >= rr.MaxMinRatio*0.7 {
		t.Errorf("age-based (%.2f) should be much fairer than round-robin (%.2f)",
			age.MaxMinRatio, rr.MaxMinRatio)
	}
	if len(rr.Throughput) != 30 || len(rr.ComputeNodes) != 30 || len(rr.MCs) != 6 {
		t.Errorf("default topology should have 30 compute nodes and 6 MCs")
	}
}

func TestFairnessTotalThroughputComparable(t *testing.T) {
	// Fairness should not come at a large aggregate-throughput cost.
	rr, err := RunFairness(DefaultFairnessConfig(RoundRobin, 7))
	if err != nil {
		t.Fatal(err)
	}
	age, err := RunFairness(DefaultFairnessConfig(AgeBased, 7))
	if err != nil {
		t.Fatal(err)
	}
	sum := func(xs []float64) float64 { return stats.Sum(xs) }
	if r := sum(age.Throughput) / sum(rr.Throughput); r < 0.85 || r > 1.15 {
		t.Errorf("aggregate throughput ratio age/rr = %.2f, want ~1", r)
	}
}

func TestFairnessValidation(t *testing.T) {
	cfg := DefaultFairnessConfig(RoundRobin, 1)
	cfg.PacketFlits = 0
	if _, err := RunFairness(cfg); err == nil {
		t.Error("zero packet size should fail")
	}
	cfg = DefaultFairnessConfig(RoundRobin, 1)
	cfg.Cycles = 0
	if _, err := RunFairness(cfg); err == nil {
		t.Error("zero cycles should fail")
	}
	cfg = DefaultFairnessConfig(RoundRobin, 1)
	cfg.InjectRate = 0
	if _, err := RunFairness(cfg); err == nil {
		t.Error("zero rate should fail")
	}
	cfg = DefaultFairnessConfig(RoundRobin, 1)
	cfg.MCs = []int{99}
	if _, err := RunFairness(cfg); err == nil {
		t.Error("bad MC node should fail")
	}
	cfg = DefaultFairnessConfig(RoundRobin, 1)
	cfg.Mesh.Width, cfg.Mesh.Height = 1, 1
	cfg.MCs = []int{0}
	if _, err := RunFairness(cfg); err == nil {
		t.Error("no compute nodes should fail")
	}
}

// Fig. 21: with cache-line-sized replies over narrow reply-network links,
// average memory utilization collapses to ~10-25% and fluctuates, while a
// reply interface matched to the request size sustains far higher
// utilization.
func TestGPUSimReplyBottleneck(t *testing.T) {
	narrow, err := RunGPUSim(DefaultGPUSimConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if narrow.MemUtilization < 0.08 || narrow.MemUtilization > 0.35 {
		t.Errorf("bottlenecked memory utilization %.2f, want ~0.1-0.3 (paper ~0.2)", narrow.MemUtilization)
	}
	if len(narrow.UtilSeries) == 0 {
		t.Fatal("no utilization series")
	}
	lo, hi := narrow.UtilSeries[0], narrow.UtilSeries[0]
	for _, u := range narrow.UtilSeries {
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	if hi/lo < 1.2 {
		t.Errorf("utilization window spread %.2f..%.2f too flat; Fig. 21 shows fluctuation", lo, hi)
	}

	wide := DefaultGPUSimConfig(1)
	wide.ReplyFlits = 1
	w, err := RunGPUSim(wide)
	if err != nil {
		t.Fatal(err)
	}
	if w.MemUtilization < 2*narrow.MemUtilization {
		t.Errorf("matched reply interface utilization %.2f should far exceed bottlenecked %.2f",
			w.MemUtilization, narrow.MemUtilization)
	}
	if narrow.RequestsServed == 0 {
		t.Error("no requests served")
	}
}

func TestGPUSimValidation(t *testing.T) {
	bad := DefaultGPUSimConfig(1)
	bad.ReplyFlits = 0
	if _, err := RunGPUSim(bad); err == nil {
		t.Error("zero reply flits should fail")
	}
	bad = DefaultGPUSimConfig(1)
	bad.UtilWindow = 0
	if _, err := RunGPUSim(bad); err == nil {
		t.Error("zero window should fail")
	}
	bad = DefaultGPUSimConfig(1)
	bad.MCs = []int{-3}
	if _, err := RunGPUSim(bad); err == nil {
		t.Error("bad MC should fail")
	}
}

// Fig. 22: the network-wall analysis.
func TestNetworkWallAnalysis(t *testing.T) {
	points := PriorWorkPoints()
	if len(points) < 8 {
		t.Fatalf("expected a survey of prior work, got %d points", len(points))
	}
	reports, walled, err := AnalyzeNetworkWall(points)
	if err != nil {
		t.Fatal(err)
	}
	if walled == 0 || walled == len(points) {
		t.Errorf("walled = %d of %d; the survey should show configurations on both sides", walled, len(points))
	}
	for _, r := range reports {
		if r.NoCMem <= 0 {
			t.Errorf("%s: non-positive interface bandwidth", r.Point.Name)
		}
		if r.Walled != (r.NoCMem < r.Point.MemBWGBs) {
			t.Errorf("%s: inconsistent classification", r.Point.Name)
		}
	}
}

func TestSimPointMath(t *testing.T) {
	p := SimPoint{Name: "x", NoCClockGHz: 1, ChannelBytes: 32, MPs: 8, MemBWGBs: 200}
	if got := p.NoCMemBWGBs(); got != 256 {
		t.Errorf("NoCMemBW = %v, want 256", got)
	}
	if p.NetworkWalled() {
		t.Error("256 > 200 should not be walled")
	}
	p.MemBWGBs = 300
	if !p.NetworkWalled() {
		t.Error("256 < 300 should be walled")
	}
	if err := (SimPoint{Name: "bad"}).Validate(); err == nil {
		t.Error("zero point should fail validation")
	}
	if _, _, err := AnalyzeNetworkWall([]SimPoint{{Name: "bad"}}); err == nil {
		t.Error("analysis should propagate validation errors")
	}
}

// The classic load-latency curve: latency rises with offered load and
// blows up past saturation; accepted throughput tracks offered load below
// saturation and flattens above it.
func TestLoadLatencyCurve(t *testing.T) {
	points, err := RunLoadLatency(DefaultLoadLatencyConfig(RoundRobin, 11))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("points = %d", len(points))
	}
	// Latency is (weakly) increasing in offered load.
	for i := 1; i < len(points); i++ {
		if points[i].AvgLatency+2 < points[i-1].AvgLatency {
			t.Errorf("latency dropped with load: %.1f -> %.1f at rate %.2f",
				points[i-1].AvgLatency, points[i].AvgLatency, points[i].OfferedRate)
		}
	}
	// Below saturation, accepted tracks offered.
	low := points[0]
	if diff := low.AcceptedRate - low.OfferedRate; diff > 0.01 || diff < -0.01 {
		t.Errorf("at light load accepted %.3f should track offered %.3f", low.AcceptedRate, low.OfferedRate)
	}
	// Past saturation, accepted flattens well below offered.
	high := points[len(points)-1]
	if high.AcceptedRate > 0.8*high.OfferedRate {
		t.Errorf("at rate %.2f accepted %.3f should be saturated", high.OfferedRate, high.AcceptedRate)
	}
	// Saturation latency far exceeds zero-load latency.
	if high.AvgLatency < 3*low.AvgLatency {
		t.Errorf("saturated latency %.1f should dwarf light-load %.1f", high.AvgLatency, low.AvgLatency)
	}
	if sat := SaturationRate(points); sat < 0.15 || sat > 0.25 {
		t.Errorf("saturation rate %.3f outside the expected band for 6 MCs / 30 cores", sat)
	}
}

func TestLoadLatencyValidation(t *testing.T) {
	cfg := DefaultLoadLatencyConfig(RoundRobin, 1)
	cfg.Rates = nil
	if _, err := RunLoadLatency(cfg); err == nil {
		t.Error("empty rates should fail")
	}
	cfg = DefaultLoadLatencyConfig(RoundRobin, 1)
	cfg.Rates = []float64{0}
	if _, err := RunLoadLatency(cfg); err == nil {
		t.Error("zero rate should fail")
	}
	cfg = DefaultLoadLatencyConfig(RoundRobin, 1)
	cfg.PacketFlits = 0
	if _, err := RunLoadLatency(cfg); err == nil {
		t.Error("zero packet size should fail")
	}
}
