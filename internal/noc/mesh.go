// Package noc is a from-scratch flit-level, cycle-driven network-on-chip
// simulator in the spirit of the tools the paper's Section VI uses for its
// simulation studies: a 2-D mesh with dimension-ordered (XY) wormhole
// routing, credit-based flow control, and either round-robin or globally
// fair age-based output arbitration. On top of the mesh it builds the
// many-to-few-to-many GPU traffic pattern with a request network, memory
// controllers, and a reply network, reproducing the reply-interface
// bottleneck of Fig. 21 and the bandwidth unfairness of Fig. 23.
package noc

import (
	"fmt"
	"math"

	"gpunoc/internal/obs"
)

// Arbiter selects among competing packets at a router output.
type Arbiter int

const (
	// RoundRobin rotates priority locally per output port; it is cheap
	// but globally unfair in a multi-hop mesh (Fig. 23a).
	RoundRobin Arbiter = iota
	// AgeBased grants the output to the oldest packet, providing global
	// fairness at the cost of carrying and comparing ages (Fig. 23b).
	// Exact age ties break to the lowest packet ID (the earliest
	// injection), so the winner never depends on the order the arbiter
	// happens to scan input ports or clusters.
	AgeBased
)

// String names the arbiter.
func (a Arbiter) String() string {
	switch a {
	case RoundRobin:
		return "round-robin"
	case AgeBased:
		return "age-based"
	}
	return fmt.Sprintf("arbiter(%d)", int(a))
}

// MeshConfig configures the simulator.
type MeshConfig struct {
	Width, Height int
	// BufferFlits is the per-input-port FIFO depth.
	BufferFlits int
	// Arbiter picks the output arbitration policy.
	Arbiter Arbiter
}

// Validate checks the configuration.
func (c MeshConfig) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("noc: mesh %dx%d invalid", c.Width, c.Height)
	}
	if c.BufferFlits <= 0 {
		return fmt.Errorf("noc: buffer depth %d invalid", c.BufferFlits)
	}
	if c.Arbiter != RoundRobin && c.Arbiter != AgeBased {
		return fmt.Errorf("noc: unknown arbiter %d", int(c.Arbiter))
	}
	return nil
}

// Packet is a multi-flit message.
type Packet struct {
	ID        uint64
	Src, Dst  int
	Flits     int
	CreatedAt int64
	// Payload carries experiment-specific context (e.g. the request a
	// reply answers).
	Payload any
}

// flit is one flow-control unit of a packet in the network.
type flit struct {
	pkt  *Packet
	seq  int // 0-based flit index within the packet
	tail bool
}

// Port indices of a router.
const (
	portLocal = iota
	portNorth
	portEast
	portSouth
	portWest
	numPorts
)

// Sink consumes flits ejected at a node. Accept returns false to refuse
// delivery this cycle (modelling a busy endpoint); the flit then stays in
// the router and backpressure builds, which is exactly the congestion
// mechanism of Sec. VI-A.
type Sink interface {
	Accept(f *Packet, lastFlit bool, cycle int64) bool
}

// countingSink accepts everything and counts packets; the default.
type countingSink struct{ packets int64 }

func (s *countingSink) Accept(_ *Packet, lastFlit bool, _ int64) bool {
	if lastFlit {
		s.packets++
	}
	return true
}

type fifo struct {
	q   []flit
	cap int
}

func (f *fifo) empty() bool { return len(f.q) == 0 }
func (f *fifo) full() bool  { return len(f.q) >= f.cap }
func (f *fifo) head() *flit { return &f.q[0] }

// pop compacts the queue down instead of reslicing (f.q = f.q[1:]): a
// reslice pins every popped flit's *Packet in the backing array and
// shrinks the slice capacity, so each ~BufferFlits pushes forced append
// to reallocate. Copy-down keeps the array at full capacity forever and
// overwrites dropped packet pointers, making steady-state Step
// allocation-free (see TestStepSteadyStateDoesNotAllocate).
func (f *fifo) pop() flit {
	h := f.q[0]
	n := copy(f.q, f.q[1:])
	f.q[n] = flit{} // drop the duplicated tail's *Packet reference
	f.q = f.q[:n]
	return h
}

// push enqueues one flit. The append is amortized: pop compacts in
// place and keeps capacity, and occupancy is bounded by BufferFlits, so
// steady-state pushes never grow the backing array
// (TestMeshSteadyStateDoesNotAllocate).
//
//lint:ignore hotpathalloc bounded-occupancy queue; pop's copy-down compaction keeps append capacity, steady-state pushes are alloc-free
func (f *fifo) push(x flit) { f.q = append(f.q, x) }

type router struct {
	node int
	in   [numPorts]fifo
	// outOwner is the input port currently holding each output via
	// wormhole allocation, or -1.
	outOwner [numPorts]int
	// rr is the round-robin pointer per output.
	rr [numPorts]int
}

// Mesh is the simulator instance.
type Mesh struct {
	cfg     MeshConfig
	routers []*router
	sinks   []Sink
	// injectQ holds flits awaiting entry into each node's local input.
	injectQ [][]flit
	cycle   int64
	nextID  uint64

	// AcceptedPackets counts packets delivered per source node.
	AcceptedPackets []int64
	// AcceptedFlits counts flits delivered per destination node.
	AcceptedFlits []int64

	// move/push scratch buffers reused each cycle.
	moves  []move
	pushes []pendingPush

	// obs is the optional instrument set; see Observe. All instruments
	// are nil-safe no-ops while unobserved, so the hooks below cost a
	// nil check and zero allocations in the disabled default (guarded
	// by TestStepSteadyStateDoesNotAllocate / BenchmarkMeshStep).
	obs meshObs
}

// meshObs gathers the mesh's instruments. buffered tracks the running
// router-FIFO occupancy in flits: injection pushes and ejection pops are
// the only net changes per cycle (internal hops pop and push the same
// flit), so two touch points keep an exact count without walking FIFOs.
type meshObs struct {
	// linkFlits[node*numPorts+out] counts flits forwarded over each
	// inter-router link; nil while unobserved (and for edge/local ports).
	linkFlits   []*obs.Counter
	ejectFlits  *obs.Counter
	ejectPkts   *obs.Counter
	stallSink   *obs.Counter
	stallCredit *obs.Counter
	occupancy   *obs.Histogram
	tracer      *obs.Tracer
	buffered    int64
}

// portNames names router ports for instrument naming.
var portNames = [numPorts]string{"local", "north", "east", "south", "west"}

// Observe attaches the mesh's instruments to a registry scope: per-link
// forwarded-flit counters, ejected flit/packet counters, stall-cause
// counters (sink refusal vs. exhausted downstream credit), a per-cycle
// buffer-occupancy histogram, and per-packet delivery spans on the
// scope's tracer. Call it once before running; Observe(nil) leaves the
// mesh unobserved (the zero-cost default).
func (m *Mesh) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.obs.ejectFlits = reg.Counter("eject/flits")
	m.obs.ejectPkts = reg.Counter("eject/packets")
	m.obs.stallSink = reg.Counter("stall/sink")
	m.obs.stallCredit = reg.Counter("stall/credit")
	m.obs.occupancy = reg.Histogram("buffer_occupancy", obs.DepthBounds())
	m.obs.tracer = reg.Tracer()
	m.obs.linkFlits = make([]*obs.Counter, m.Nodes()*numPorts)
	for node := 0; node < m.Nodes(); node++ {
		for out := portNorth; out <= portWest; out++ {
			if _, _, ok := m.neighbor(node, out); !ok {
				continue
			}
			m.obs.linkFlits[node*numPorts+out] = reg.Counter(
				fmt.Sprintf("link/n%03d/%s/flits", node, portNames[out]))
		}
	}
}

type move struct {
	from *fifo
	to   *fifo // nil means ejection
	r    *router
	out  int
}

// pendingPush defers a flit's arrival until all pops of the cycle have
// freed buffer space.
type pendingPush struct {
	to *fifo
	f  flit
}

// NewMesh builds a mesh simulator.
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Width * cfg.Height
	m := &Mesh{
		cfg:             cfg,
		routers:         make([]*router, n),
		sinks:           make([]Sink, n),
		injectQ:         make([][]flit, n),
		AcceptedPackets: make([]int64, n),
		AcceptedFlits:   make([]int64, n),
	}
	for i := range m.routers {
		r := &router{node: i}
		for p := range r.in {
			r.in[p].cap = cfg.BufferFlits
		}
		for p := range r.outOwner {
			r.outOwner[p] = -1
		}
		m.routers[i] = r
		m.sinks[i] = &countingSink{}
	}
	return m, nil
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Config returns the mesh's configuration (for audit tooling).
func (m *Mesh) Config() MeshConfig { return m.cfg }

// VisitFIFOs calls fn for every router input FIFO with its current
// occupancy and capacity. It is an audit tap for invariant checkers
// (internal/simcheck) and is not called on the simulation hot path.
func (m *Mesh) VisitFIFOs(fn func(node, port, occupancy, capacity int)) {
	for node, r := range m.routers {
		for p := 0; p < numPorts; p++ {
			fn(node, p, len(r.in[p].q), r.in[p].cap)
		}
	}
}

// Cycle returns the current simulation cycle.
func (m *Mesh) Cycle() int64 { return m.cycle }

// SetSink installs a custom ejection sink at a node.
func (m *Mesh) SetSink(node int, s Sink) {
	m.sinks[node] = s
}

// coord maps a node index to mesh coordinates.
func (m *Mesh) coord(node int) (x, y int) {
	return node % m.cfg.Width, node / m.cfg.Width
}

// NodeAt maps coordinates to a node index.
func (m *Mesh) NodeAt(x, y int) int { return y*m.cfg.Width + x }

// route returns the output port a packet takes at node toward dst using
// dimension-ordered (X then Y) routing.
func (m *Mesh) route(node, dst int) int {
	x, y := m.coord(node)
	dx, dy := m.coord(dst)
	switch {
	case dx > x:
		return portEast
	case dx < x:
		return portWest
	case dy > y:
		return portSouth
	case dy < y:
		return portNorth
	default:
		return portLocal
	}
}

// neighbor returns the node on the other side of an output port and the
// input port the flit arrives on there.
func (m *Mesh) neighbor(node, out int) (next int, inPort int, ok bool) {
	x, y := m.coord(node)
	switch out {
	case portNorth:
		if y == 0 {
			return 0, 0, false
		}
		return m.NodeAt(x, y-1), portSouth, true
	case portSouth:
		if y == m.cfg.Height-1 {
			return 0, 0, false
		}
		return m.NodeAt(x, y+1), portNorth, true
	case portEast:
		if x == m.cfg.Width-1 {
			return 0, 0, false
		}
		return m.NodeAt(x+1, y), portWest, true
	case portWest:
		if x == 0 {
			return 0, 0, false
		}
		return m.NodeAt(x-1, y), portEast, true
	}
	return 0, 0, false
}

// Inject queues a packet for injection at its source node. It returns the
// packet for convenience.
func (m *Mesh) Inject(src, dst, flits int, payload any) (*Packet, error) {
	n := m.Nodes()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("noc: inject %d->%d outside %d-node mesh", src, dst, n)
	}
	if flits <= 0 {
		return nil, fmt.Errorf("noc: packet needs at least one flit")
	}
	m.nextID++
	p := &Packet{ID: m.nextID, Src: src, Dst: dst, Flits: flits, CreatedAt: m.cycle, Payload: payload}
	for s := 0; s < flits; s++ {
		//lint:ignore hotpathalloc injection-queue growth is caller-throttled via PendingInjection and the per-cycle drain compacts in place, keeping capacity; steady-state injects are alloc-free
		m.injectQ[src] = append(m.injectQ[src], flit{pkt: p, seq: s, tail: s == flits-1})
	}
	return p, nil
}

// PendingInjection returns the number of flits queued for injection at a
// node (source-queue occupancy).
func (m *Mesh) PendingInjection(node int) int { return len(m.injectQ[node]) }

// Step advances the simulation by one cycle: output arbitration and flit
// movement across every router, then source-queue injection.
func (m *Mesh) Step() {
	m.moves = m.moves[:0]

	// Phase 1: decide moves using pre-cycle state.
	for _, r := range m.routers {
		for out := 0; out < numPorts; out++ {
			in := m.pickInput(r, out)
			if in < 0 {
				continue
			}
			f := r.in[in].head()
			if out == portLocal {
				// Ejection: ask the sink.
				if !m.sinks[r.node].Accept(f.pkt, f.tail, m.cycle) {
					m.obs.stallSink.Inc()
					continue
				}
				m.commitGrant(r, out, in, f)
				m.moves = append(m.moves, move{from: &r.in[in], to: nil, r: r, out: out})
				continue
			}
			next, inPort, ok := m.neighbor(r.node, out)
			if !ok {
				continue
			}
			df := &m.routers[next].in[inPort]
			if df.full() {
				m.obs.stallCredit.Inc()
				continue
			}
			m.commitGrant(r, out, in, f)
			m.moves = append(m.moves, move{from: &r.in[in], to: df, r: r, out: out})
		}
	}

	// Phase 2: apply moves (pops before pushes keep capacity sound).
	m.pushes = m.pushes[:0]
	for _, mv := range m.moves {
		f := mv.from.pop()
		if mv.to == nil {
			m.AcceptedFlits[mv.r.node]++
			m.obs.ejectFlits.Inc()
			m.obs.buffered--
			if f.tail {
				m.AcceptedPackets[f.pkt.Src]++
				m.obs.ejectPkts.Inc()
				m.obs.tracer.Span("noc", "pkt",
					f.pkt.CreatedAt, m.cycle-f.pkt.CreatedAt, int64(f.pkt.Src), int64(f.pkt.ID))
			}
		} else {
			m.pushes = append(m.pushes, pendingPush{to: mv.to, f: f})
			if m.obs.linkFlits != nil {
				m.obs.linkFlits[mv.r.node*numPorts+mv.out].Inc()
			}
		}
		if f.tail {
			mv.r.outOwner[mv.out] = -1
		}
	}
	for _, p := range m.pushes {
		p.to.push(p.f)
	}

	// Phase 3: source-queue injection into the local input port. The
	// queue is compacted down like fifo.pop: reslicing q[1:] would pin
	// drained packets and erode the append capacity of a queue that
	// Inject refills every cycle.
	for node, q := range m.injectQ {
		if len(q) == 0 {
			continue
		}
		in := &m.routers[node].in[portLocal]
		if in.full() {
			continue
		}
		in.push(q[0])
		m.obs.buffered++
		n := copy(q, q[1:])
		q[n] = flit{}
		m.injectQ[node] = q[:n]
	}
	m.obs.occupancy.Observe(m.obs.buffered)
	m.cycle++
}

// commitGrant records wormhole ownership of an output by an input. The
// round-robin pointer advances here, on a committed head-flit grant, not
// in pickInput: a pick can still lose to sink refusal or exhausted
// downstream credit, and rotating priority past an unserved input skews
// fairness under back-pressure (see
// TestRoundRobinPointerHoldsOnRefusedGrant).
func (m *Mesh) commitGrant(r *router, out, in int, f *flit) {
	if f.seq == 0 {
		r.outOwner[out] = in
		if m.cfg.Arbiter == RoundRobin {
			r.rr[out] = in
		}
	}
}

// pickInput returns the input port granted output out this cycle, or -1.
func (m *Mesh) pickInput(r *router, out int) int {
	// An owned output only accepts the owner's next flit, in order.
	if owner := r.outOwner[out]; owner >= 0 {
		if r.in[owner].empty() {
			return -1
		}
		return owner
	}
	// Free output: head flits (seq 0) requesting it compete.
	switch m.cfg.Arbiter {
	case AgeBased:
		// Oldest packet wins; an exact age tie breaks to the lowest
		// packet ID (the earliest-injected packet), never to the scan
		// order — see TestAgeBasedEqualAgeTieBreaksToLowestID.
		best, bestAge, bestID := -1, int64(math.MaxInt64), uint64(math.MaxUint64)
		for p := 0; p < numPorts; p++ {
			if r.in[p].empty() {
				continue
			}
			f := r.in[p].head()
			if f.seq != 0 || m.route(r.node, f.pkt.Dst) != out {
				continue
			}
			if f.pkt.CreatedAt < bestAge || (f.pkt.CreatedAt == bestAge && f.pkt.ID < bestID) {
				best, bestAge, bestID = p, f.pkt.CreatedAt, f.pkt.ID
			}
		}
		return best
	default: // RoundRobin
		for i := 1; i <= numPorts; i++ {
			p := (r.rr[out] + i) % numPorts
			if r.in[p].empty() {
				continue
			}
			f := r.in[p].head()
			if f.seq != 0 || m.route(r.node, f.pkt.Dst) != out {
				continue
			}
			return p
		}
		return -1
	}
}

// Run advances the simulation by n cycles.
func (m *Mesh) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// Drained reports whether the network and all source queues are empty.
func (m *Mesh) Drained() bool {
	for node, q := range m.injectQ {
		if len(q) > 0 {
			return false
		}
		r := m.routers[node]
		for p := 0; p < numPorts; p++ {
			if !r.in[p].empty() {
				return false
			}
		}
	}
	return true
}
