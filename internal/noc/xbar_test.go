package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXbarConfigValidate(t *testing.T) {
	good := DefaultXbarFairnessConfig(RoundRobin, 1).Xbar
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*XbarConfig){
		func(c *XbarConfig) { c.Clusters = 0 },
		func(c *XbarConfig) { c.NodesPerCluster = -1 },
		func(c *XbarConfig) { c.MemPorts = 0 },
		func(c *XbarConfig) { c.HubCapacity = 0 },
		func(c *XbarConfig) { c.PortCapacity = 0 },
		func(c *XbarConfig) { c.VOQDepth = 0 },
		func(c *XbarConfig) { c.Arbiter = Arbiter(5) },
	}
	for i, mut := range muts {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
		if _, err := NewXbar(cfg); err == nil {
			t.Errorf("NewXbar should reject mutation %d", i)
		}
	}
}

func TestXbarInjectValidation(t *testing.T) {
	x, err := NewXbar(DefaultXbarFairnessConfig(RoundRobin, 1).Xbar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Inject(-1, 0, 1); err == nil {
		t.Error("bad node should fail")
	}
	if _, err := x.Inject(0, 99, 1); err == nil {
		t.Error("bad port should fail")
	}
	if _, err := x.Inject(0, 0, 0); err == nil {
		t.Error("zero flits should fail")
	}
}

// TestXbarRoundRobinAlternatesUnderEqualBacklog pins the crossbar's
// round-robin contract after pickHub was split into a pure pick with
// the pointer advanced at the drain site (the mesh arbiter's
// commitGrant shape): with two clusters holding equal backlogs for one
// port, service must alternate strictly, giving each cluster exactly
// half the grants — the pointer moves once per committed grant, never
// on a scan that granted nothing.
func TestXbarRoundRobinAlternatesUnderEqualBacklog(t *testing.T) {
	x, err := NewXbar(XbarConfig{
		Clusters: 2, NodesPerCluster: 1, MemPorts: 1,
		HubCapacity: 4, PortCapacity: 1, VOQDepth: 16, Arbiter: RoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 6
	for i := 0; i < backlog; i++ {
		if _, err := x.Inject(0, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := x.Inject(1, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Let the hubs stage flits, then watch the port drain one per cycle:
	// after every two cycles the clusters' delivered counts must be equal.
	x.Step()
	prev0, prev1 := x.AcceptedPackets[0], x.AcceptedPackets[1]
	for c := 0; c < 2*backlog; c += 2 {
		x.Step()
		x.Step()
		d0, d1 := x.AcceptedPackets[0]-prev0, x.AcceptedPackets[1]-prev1
		if d0 != d1 {
			t.Fatalf("after cycle pair %d clusters drained %d vs %d; round-robin must alternate grants",
				c, d0, d1)
		}
		prev0, prev1 = x.AcceptedPackets[0], x.AcceptedPackets[1]
	}
	if x.AcceptedPackets[0] != backlog || x.AcceptedPackets[1] != backlog {
		t.Errorf("delivered %d/%d packets, want %d each", x.AcceptedPackets[0], x.AcceptedPackets[1], backlog)
	}
}

// TestXbarAgeBasedEqualAgeTieBreak pins the crossbar arbiter's
// equal-age tie-break to the lowest packet ID. The packet in the
// higher-numbered cluster is injected first (lower ID), so a
// scan-order arbiter — which visits cluster 0 first — would pick the
// wrong winner.
func TestXbarAgeBasedEqualAgeTieBreak(t *testing.T) {
	x, err := NewXbar(XbarConfig{
		Clusters: 2, NodesPerCluster: 1, MemPorts: 1,
		HubCapacity: 1, PortCapacity: 1, VOQDepth: 4, Arbiter: AgeBased,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := x.Inject(1, 0, 1) // cluster 1, ID 1
	if err != nil {
		t.Fatal(err)
	}
	second, err := x.Inject(0, 0, 1) // cluster 0, ID 2
	if err != nil {
		t.Fatal(err)
	}
	if first.CreatedAt != second.CreatedAt || first.ID >= second.ID {
		t.Fatalf("setup broken: ages %d/%d, IDs %d/%d",
			first.CreatedAt, second.CreatedAt, first.ID, second.ID)
	}
	x.Step() // hubs pull both flits into their VOQs
	x.Step() // the port drains exactly one flit: the tie-break winner
	if x.AcceptedPackets[1] != 1 || x.AcceptedPackets[0] != 0 {
		t.Errorf("equal-age tie went to cluster 0's packet (ID %d); want lowest ID %d from cluster 1 (accepted: node0=%d node1=%d)",
			second.ID, first.ID, x.AcceptedPackets[0], x.AcceptedPackets[1])
	}
}

func TestXbarDelivery(t *testing.T) {
	x, err := NewXbar(DefaultXbarFairnessConfig(RoundRobin, 1).Xbar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Inject(7, 3, 4); err != nil {
		t.Fatal(err)
	}
	x.Run(50)
	if !x.Drained() {
		t.Fatal("crossbar should drain")
	}
	if x.AcceptedPackets[7] != 1 {
		t.Errorf("source 7 delivered %d packets, want 1", x.AcceptedPackets[7])
	}
	if x.AcceptedFlits[3] != 4 {
		t.Errorf("port 3 received %d flits, want 4", x.AcceptedFlits[3])
	}
	if x.ClusterOf(7) != 1 {
		t.Errorf("node 7 in cluster %d, want 1", x.ClusterOf(7))
	}
}

// Property: flit conservation under random traffic with either arbiter.
func TestXbarPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := XbarConfig{
			Clusters: 2 + rng.Intn(4), NodesPerCluster: 1 + rng.Intn(5),
			MemPorts: 1 + rng.Intn(6), HubCapacity: 1 + rng.Intn(3),
			PortCapacity: 1 + rng.Intn(2), VOQDepth: 2 + rng.Intn(8),
			Arbiter: Arbiter(rng.Intn(2)),
		}
		x, err := NewXbar(cfg)
		if err != nil {
			return false
		}
		injected := 0
		flitsByPort := make([]int64, cfg.MemPorts)
		for i := 0; i < 40; i++ {
			node := rng.Intn(x.Nodes())
			port := rng.Intn(cfg.MemPorts)
			flits := 1 + rng.Intn(4)
			if _, err := x.Inject(node, port, flits); err != nil {
				return false
			}
			injected++
			flitsByPort[port] += int64(flits)
			if rng.Intn(2) == 0 {
				x.Step()
			}
		}
		x.Run(2000)
		if !x.Drained() {
			return false
		}
		var total int64
		for _, c := range x.AcceptedPackets {
			total += c
		}
		if total != int64(injected) {
			return false
		}
		for p, want := range flitsByPort {
			if x.AcceptedFlits[p] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Sec. VI-C / Implication #6: at the load where the mesh's round-robin
// arbitration is ~3x unfair, the single-hop hierarchical crossbar with
// plain round-robin is already fair - no age-based machinery needed.
func TestXbarUniformBandwidthVsMesh(t *testing.T) {
	xr, err := RunXbarFairness(DefaultXbarFairnessConfig(RoundRobin, 42))
	if err != nil {
		t.Fatal(err)
	}
	if xr.MaxMinRatio > 1.2 {
		t.Errorf("crossbar RR max/min ratio %.2f, want near 1", xr.MaxMinRatio)
	}
	mesh, err := RunFairness(DefaultFairnessConfig(RoundRobin, 42))
	if err != nil {
		t.Fatal(err)
	}
	if xr.MaxMinRatio > mesh.MaxMinRatio/1.5 {
		t.Errorf("crossbar ratio %.2f should be far below mesh ratio %.2f", xr.MaxMinRatio, mesh.MaxMinRatio)
	}
	if len(xr.Throughput) != 30 || len(xr.MCs) != 6 {
		t.Error("default crossbar topology wrong")
	}
}

// Input speedup matters here too: a hub capacity of 1 halves what a
// 5-node cluster can offer relative to capacity 2 at high load.
func TestXbarHubSpeedup(t *testing.T) {
	run := func(hubCap int) float64 {
		cfg := DefaultXbarFairnessConfig(RoundRobin, 7)
		cfg.Xbar.HubCapacity = hubCap
		// Widen the memory ports so the hub stage is the binding one.
		cfg.Xbar.PortCapacity = 2
		cfg.InjectRate = 0.5 // saturating
		res, err := RunXbarFairness(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, tp := range res.Throughput {
			sum += tp
		}
		return sum
	}
	low, high := run(1), run(2)
	if high <= low*1.02 {
		t.Errorf("hub speedup should raise aggregate throughput: cap1=%.2f cap2=%.2f", low, high)
	}
}

func TestRunXbarFairnessValidation(t *testing.T) {
	cfg := DefaultXbarFairnessConfig(RoundRobin, 1)
	cfg.PacketFlits = 0
	if _, err := RunXbarFairness(cfg); err == nil {
		t.Error("zero packet size should fail")
	}
	cfg = DefaultXbarFairnessConfig(RoundRobin, 1)
	cfg.InjectRate = 0
	if _, err := RunXbarFairness(cfg); err == nil {
		t.Error("zero rate should fail")
	}
	cfg = DefaultXbarFairnessConfig(RoundRobin, 1)
	cfg.Xbar.MemPorts = 0
	if _, err := RunXbarFairness(cfg); err == nil {
		t.Error("bad topology should fail")
	}
}

// The VOQ drain and source-queue pull used to reslice q[1:], pinning
// every forwarded flit's *Packet in the backing array and eroding append
// capacity so the per-cycle hot path of the ext1 crossbar experiment
// reallocated continuously. Warmed-up Step must allocate nothing.
func TestXbarStepSteadyStateDoesNotAllocate(t *testing.T) {
	x, err := NewXbar(DefaultXbarFairnessConfig(RoundRobin, 1).Xbar)
	if err != nil {
		t.Fatal(err)
	}
	// Source queues deep enough to keep every hub and port busy through
	// warm-up plus the whole measurement (ports drain 6 flits/cycle).
	n := x.Nodes()
	for node := 0; node < n; node++ {
		for k := 0; k < 100; k++ {
			if _, err := x.Inject(node, (node+k)%x.cfg.MemPorts, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	x.Run(100) // warm up: grow queue backing arrays to steady-state size
	avg := testing.AllocsPerRun(200, func() { x.Step() })
	if avg != 0 {
		t.Errorf("steady-state Xbar.Step allocates %.1f times per cycle, want 0", avg)
	}
	if x.Drained() {
		t.Fatal("xbar drained mid-measurement; the test no longer exercises steady state")
	}
}

func BenchmarkXbarStep(b *testing.B) {
	x, err := NewXbar(DefaultXbarFairnessConfig(RoundRobin, 1).Xbar)
	if err != nil {
		b.Fatal(err)
	}
	n := x.Nodes()
	rng := rand.New(rand.NewSource(1))
	// Ports drain up to 6 flits/cycle; keep the queues fed for b.N cycles.
	for i := 0; i < b.N+1000; i++ {
		if _, err := x.Inject(rng.Intn(n), rng.Intn(x.cfg.MemPorts), 4); err != nil {
			b.Fatal(err)
		}
	}
	x.Run(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Step()
	}
}
