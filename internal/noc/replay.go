package noc

import (
	"fmt"

	"gpunoc/internal/stats"
)

// Trace replay drives the flit-level mesh with an application's memory
// transactions instead of synthetic random traffic. This closes the loop
// on the paper's Section IV-C: when the address mapping load-balances
// transactions across the memory ports (as the GPU's hash does), the NoC
// digests each burst quickly; when it does not - "memory camping" [41] -
// one port's column serializes the burst and the makespan explodes.

// ReplayConfig configures a trace replay.
type ReplayConfig struct {
	Mesh MeshConfig
	// MCs lists the memory-controller nodes; empty means the bottom row.
	MCs []int
	// PortOf maps a transaction's byte address to an index into MCs.
	// This is where an address hash (or the lack of one) plugs in.
	PortOf func(addr uint64) int
	// MaxCyclesPerStep aborts a step that fails to drain (safety for
	// pathological mappings); 0 means 4096 cycles per transaction.
	MaxCyclesPerStep int
}

// ReplayStepStats reports one timestep of the replay.
type ReplayStepStats struct {
	// Transactions injected this step.
	Transactions int
	// Makespan is the cycles from first injection until the network
	// drained.
	Makespan int64
	// AvgLatency is the mean packet latency.
	AvgLatency float64
	// PortCV is the coefficient of variation of per-MC transaction counts
	// (0 = perfectly balanced, the regime Observation #12 reports).
	PortCV float64
	// Drained is false if the step hit MaxCyclesPerStep.
	Drained bool
}

// ReplayTrace injects each timestep's transactions (round-robin across
// the compute nodes) as one-flit request packets toward PortOf(addr) and
// runs the mesh until the step drains, returning per-step statistics.
func ReplayTrace(cfg ReplayConfig, steps [][]uint64) ([]ReplayStepStats, error) {
	if cfg.PortOf == nil {
		return nil, fmt.Errorf("noc: replay needs a PortOf mapping")
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("noc: empty trace")
	}
	m, err := NewMesh(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	mcs := cfg.MCs
	if len(mcs) == 0 {
		for x := 0; x < cfg.Mesh.Width; x++ {
			mcs = append(mcs, m.NodeAt(x, cfg.Mesh.Height-1))
		}
	}
	isMC := map[int]bool{}
	sinks := make([]*latencySink, len(mcs))
	for i, n := range mcs {
		if n < 0 || n >= m.Nodes() {
			return nil, fmt.Errorf("noc: MC node %d out of range", n)
		}
		sinks[i] = &latencySink{}
		m.SetSink(n, sinks[i])
		isMC[n] = true
	}
	var compute []int
	for n := 0; n < m.Nodes(); n++ {
		if !isMC[n] {
			compute = append(compute, n)
		}
	}
	if len(compute) == 0 {
		return nil, fmt.Errorf("noc: no compute nodes")
	}

	out := make([]ReplayStepStats, 0, len(steps))
	for _, addrs := range steps {
		st := ReplayStepStats{Transactions: len(addrs), Drained: true}
		if len(addrs) == 0 {
			out = append(out, st)
			continue
		}
		portCounts := make([]float64, len(mcs))
		start := m.Cycle()
		var basePkts, baseLat int64
		for _, s := range sinks {
			basePkts += s.packets
			baseLat += s.latencySum
		}
		// Queue every transaction; injection drains as buffers allow.
		for i, addr := range addrs {
			port := cfg.PortOf(addr)
			if port < 0 || port >= len(mcs) {
				return nil, fmt.Errorf("noc: PortOf(%#x) = %d outside [0, %d)", addr, port, len(mcs))
			}
			portCounts[port]++
			src := compute[i%len(compute)]
			if _, err := m.Inject(src, mcs[port], 1, nil); err != nil {
				return nil, err
			}
		}
		limit := cfg.MaxCyclesPerStep
		if limit == 0 {
			limit = 4096 * len(addrs)
		}
		for cycles := 0; !m.Drained(); cycles++ {
			if cycles >= limit {
				st.Drained = false
				break
			}
			m.Step()
		}
		st.Makespan = m.Cycle() - start
		var pkts, lat int64
		for _, s := range sinks {
			pkts += s.packets
			lat += s.latencySum
		}
		pkts -= basePkts
		lat -= baseLat
		if pkts > 0 {
			st.AvgLatency = float64(lat) / float64(pkts)
		}
		if mean := stats.Mean(portCounts); mean > 0 {
			st.PortCV = stats.StdDev(portCounts) / mean
		}
		out = append(out, st)
	}
	return out, nil
}

// HashedPortMapping spreads line addresses across n ports with a mixing
// hash, the anti-camping mapping modern GPUs use.
func HashedPortMapping(n int) func(addr uint64) int {
	return func(addr uint64) int {
		line := addr >> 7
		h := line
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return int(h % uint64(n))
	}
}

// CampedPortMapping sends large contiguous regions to the same port
// (plain address interleaving at a huge granularity), the access pattern
// that produces memory camping.
func CampedPortMapping(n int, regionBytes uint64) func(addr uint64) int {
	return func(addr uint64) int {
		return int((addr / regionBytes) % uint64(n))
	}
}
