package noc

import (
	"math"
	"math/rand"
	"testing"
)

// recordingSink keeps every delivery so a test can recompute latency
// means under different counting rules.
type recordingSink struct {
	created   []int64
	delivered []int64
}

func (s *recordingSink) Accept(p *Packet, lastFlit bool, cycle int64) bool {
	if lastFlit {
		s.created = append(s.created, p.CreatedAt)
		s.delivered = append(s.delivered, cycle)
	}
	return true
}

// AvgLatency used to subtract warm-up sums but still counted packets
// injected DURING warm-up and delivered during measurement; near
// saturation those carry warm-up queueing and bias the mean upward.
// Replay the sweep's exact injection sequence with a recording sink,
// recompute both counting rules, and check RunLoadLatency now matches
// the unbiased rule - at the highest swept rate, where the bias was
// worst.
func TestLoadLatencyWarmupBiasGone(t *testing.T) {
	cfg := DefaultLoadLatencyConfig(RoundRobin, 11)
	rate := cfg.Rates[len(cfg.Rates)-1]
	cfg.Rates = []float64{rate}

	// Replica of RunLoadLatency's loop: same topology, same seed, same
	// rng consumption order; the sink always accepts in both, so the
	// mesh dynamics are identical.
	m, err := NewMesh(cfg.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	var mcs []int
	for x := 0; x < cfg.Mesh.Width; x++ {
		mcs = append(mcs, m.NodeAt(x, cfg.Mesh.Height-1))
	}
	rec := &recordingSink{}
	isMC := map[int]bool{}
	for _, n := range mcs {
		m.SetSink(n, rec)
		isMC[n] = true
	}
	var compute []int
	for n := 0; n < m.Nodes(); n++ {
		if !isMC[n] {
			compute = append(compute, n)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for c := 0; c < cfg.Warmup+cfg.Cycles; c++ {
		for _, src := range compute {
			if rng.Float64() >= rate {
				continue
			}
			if m.PendingInjection(src) > 16*cfg.PacketFlits {
				continue
			}
			dst := mcs[rng.Intn(len(mcs))]
			if _, err := m.Inject(src, dst, cfg.PacketFlits, nil); err != nil {
				t.Fatal(err)
			}
		}
		m.Step()
	}

	warm := int64(cfg.Warmup)
	var unbPkts, unbLat, oldPkts, oldLat int64
	for i := range rec.created {
		lat := rec.delivered[i] - rec.created[i]
		if rec.created[i] >= warm {
			// The fixed rule: only measurement-created packets.
			unbPkts++
			unbLat += lat
		}
		if rec.delivered[i] >= warm {
			// The old rule: everything delivered during measurement,
			// including warm-up-created packets.
			oldPkts++
			oldLat += lat
		}
	}
	if unbPkts == 0 || oldPkts == 0 {
		t.Fatal("replica recorded no deliveries")
	}
	unbiased := float64(unbLat) / float64(unbPkts)
	old := float64(oldLat) / float64(oldPkts)
	// Sanity: the two rules genuinely disagree at saturation, so the
	// assertion below distinguishes old from new behaviour.
	if old <= unbiased {
		t.Fatalf("old counting rule (%.2f) not above unbiased (%.2f); test lost its teeth", old, unbiased)
	}

	points, err := RunLoadLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(points[0].AvgLatency)
	if math.Abs(got-unbiased) > 1e-9 {
		t.Errorf("AvgLatency = %.4f, want unbiased %.4f (old biased rule gives %.4f)", got, unbiased, old)
	}
}
