package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestMesh(t *testing.T, arb Arbiter) *Mesh {
	t.Helper()
	m, err := NewMesh(MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: arb})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeshConfigValidate(t *testing.T) {
	bad := []MeshConfig{
		{Width: 0, Height: 4, BufferFlits: 4},
		{Width: 4, Height: -1, BufferFlits: 4},
		{Width: 4, Height: 4, BufferFlits: 0},
		{Width: 4, Height: 4, BufferFlits: 4, Arbiter: Arbiter(9)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	if _, err := NewMesh(bad[0]); err == nil {
		t.Error("NewMesh should reject invalid configs")
	}
}

func TestArbiterString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || AgeBased.String() != "age-based" {
		t.Error("arbiter names wrong")
	}
	if Arbiter(7).String() == "" {
		t.Error("unknown arbiter should still render")
	}
}

func TestXYRouting(t *testing.T) {
	m := newTestMesh(t, RoundRobin)
	// From node (1,1)=5: east to (3,1)=7, west to (0,1)=4, south to
	// (1,3)=13, north to (1,0)=1, local to itself.
	cases := []struct {
		dst, want int
	}{
		{7, portEast}, {4, portWest}, {13, portSouth}, {1, portNorth}, {5, portLocal},
		// X before Y: (3,3)=15 goes east first.
		{15, portEast},
	}
	for _, c := range cases {
		if got := m.route(5, c.dst); got != c.want {
			t.Errorf("route(5, %d) = %d, want %d", c.dst, got, c.want)
		}
	}
}

func TestNeighborEdges(t *testing.T) {
	m := newTestMesh(t, RoundRobin)
	// Corner (0,0): no north or west neighbor.
	if _, _, ok := m.neighbor(0, portNorth); ok {
		t.Error("node 0 has no north neighbor")
	}
	if _, _, ok := m.neighbor(0, portWest); ok {
		t.Error("node 0 has no west neighbor")
	}
	next, in, ok := m.neighbor(0, portEast)
	if !ok || next != 1 || in != portWest {
		t.Errorf("east neighbor of 0 = (%d, %d, %v)", next, in, ok)
	}
	next, in, ok = m.neighbor(0, portSouth)
	if !ok || next != 4 || in != portNorth {
		t.Errorf("south neighbor of 0 = (%d, %d, %v)", next, in, ok)
	}
}

func TestInjectValidation(t *testing.T) {
	m := newTestMesh(t, RoundRobin)
	if _, err := m.Inject(-1, 0, 1, nil); err == nil {
		t.Error("bad src should fail")
	}
	if _, err := m.Inject(0, 99, 1, nil); err == nil {
		t.Error("bad dst should fail")
	}
	if _, err := m.Inject(0, 1, 0, nil); err == nil {
		t.Error("zero flits should fail")
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	m := newTestMesh(t, RoundRobin)
	if _, err := m.Inject(0, 15, 3, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(100)
	if !m.Drained() {
		t.Fatal("network should drain")
	}
	if m.AcceptedPackets[0] != 1 {
		t.Errorf("source 0 delivered %d packets, want 1", m.AcceptedPackets[0])
	}
	if m.AcceptedFlits[15] != 3 {
		t.Errorf("node 15 received %d flits, want 3", m.AcceptedFlits[15])
	}
}

func TestDeliveryLatencyMatchesHops(t *testing.T) {
	// A single unimpeded flit advances one hop per cycle after injection.
	m := newTestMesh(t, RoundRobin)
	if _, err := m.Inject(0, 3, 1, nil); err != nil {
		t.Fatal(err)
	}
	cycles := 0
	for m.AcceptedFlits[3] == 0 {
		m.Step()
		cycles++
		if cycles > 50 {
			t.Fatal("packet never arrived")
		}
	}
	// 3 hops east + injection + ejection stages: expect single-digit
	// cycles, certainly under 10.
	if cycles > 10 {
		t.Errorf("unloaded delivery took %d cycles", cycles)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := newTestMesh(t, RoundRobin)
	if _, err := m.Inject(6, 6, 2, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(20)
	if m.AcceptedPackets[6] != 1 {
		t.Error("self-addressed packet should be delivered")
	}
}

func TestWormholeNoInterleaving(t *testing.T) {
	// Two multi-flit packets from different sources to the same sink must
	// arrive with their flits contiguous per packet on the final link.
	m := newTestMesh(t, RoundRobin)
	var order []uint64
	m.SetSink(15, sinkFunc(func(p *Packet, lastFlit bool, _ int64) bool {
		order = append(order, p.ID)
		return true
	}))
	if _, err := m.Inject(12, 15, 4, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Inject(3, 15, 4, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(200)
	if len(order) != 8 {
		t.Fatalf("delivered %d flits, want 8", len(order))
	}
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches != 1 {
		t.Errorf("flit stream switched packets %d times; wormhole requires exactly 1", switches)
	}
}

func TestBackpressureOnRefusingSink(t *testing.T) {
	m := newTestMesh(t, RoundRobin)
	m.SetSink(1, sinkFunc(func(*Packet, bool, int64) bool { return false }))
	if _, err := m.Inject(0, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(50)
	if m.AcceptedFlits[1] != 0 {
		t.Error("refusing sink must not receive flits")
	}
	if m.Drained() {
		t.Error("flit should be stuck in the network")
	}
}

// Property: with random traffic, every injected packet is eventually
// delivered exactly once (flit conservation, no loss, no duplication).
func TestMeshPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMesh(MeshConfig{
			Width: 2 + rng.Intn(4), Height: 2 + rng.Intn(4),
			BufferFlits: 2 + rng.Intn(6),
			Arbiter:     Arbiter(rng.Intn(2)),
		})
		if err != nil {
			return false
		}
		n := m.Nodes()
		injected := 0
		flitsByDst := make([]int64, n)
		for i := 0; i < 30; i++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			flits := 1 + rng.Intn(5)
			if _, err := m.Inject(src, dst, flits, nil); err != nil {
				return false
			}
			injected++
			flitsByDst[dst] += int64(flits)
			if rng.Intn(2) == 0 {
				m.Step()
			}
		}
		m.Run(3000)
		if !m.Drained() {
			return false
		}
		var delivered int64
		for _, c := range m.AcceptedPackets {
			delivered += c
		}
		if delivered != int64(injected) {
			return false
		}
		for node, want := range flitsByDst {
			if m.AcceptedFlits[node] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: heavy random load never deadlocks under XY routing (the
// network drains once injection stops).
func TestMeshPropertyNoDeadlock(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMesh(MeshConfig{Width: 4, Height: 4, BufferFlits: 2, Arbiter: Arbiter(rng.Intn(2))})
		if err != nil {
			return false
		}
		for c := 0; c < 300; c++ {
			for n := 0; n < m.Nodes(); n++ {
				if rng.Float64() < 0.4 && m.PendingInjection(n) < 8 {
					if _, err := m.Inject(n, rng.Intn(m.Nodes()), 1+rng.Intn(4), nil); err != nil {
						return false
					}
				}
			}
			m.Step()
		}
		m.Run(5000)
		return m.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: packets between one (src, dst) pair are delivered in
// injection order (XY routing is deterministic and links are FIFOs).
func TestMeshPropertyInOrderDelivery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMesh(MeshConfig{Width: 4, Height: 4, BufferFlits: 3, Arbiter: Arbiter(rng.Intn(2))})
		if err != nil {
			return false
		}
		src, dst := rng.Intn(16), rng.Intn(16)
		var delivered []uint64
		m.SetSink(dst, sinkFunc(func(p *Packet, lastFlit bool, _ int64) bool {
			if lastFlit && p.Src == src {
				delivered = append(delivered, p.ID)
			}
			return true
		}))
		// Background traffic plus the observed stream.
		var sent []uint64
		for i := 0; i < 20; i++ {
			p, err := m.Inject(src, dst, 1+rng.Intn(3), nil)
			if err != nil {
				return false
			}
			sent = append(sent, p.ID)
			bgSrc := (src + 1 + rng.Intn(15)) % 16 // background never shares the observed source
			if _, err := m.Inject(bgSrc, rng.Intn(16), 1+rng.Intn(3), nil); err != nil {
				return false
			}
			if rng.Intn(2) == 0 {
				m.Step()
			}
		}
		m.Run(3000)
		if !m.Drained() || len(delivered) != len(sent) {
			return false
		}
		for i := range sent {
			if delivered[i] != sent[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAgeBasedEqualAgeTieBreaksToLowestID pins the age-based arbiter's
// tie-break: two packets injected in the same cycle (identical
// CreatedAt) contending for one output must resolve to the lowest
// packet ID, not to whichever input port the arbiter scans first. The
// setup makes the two rules disagree: packet A (ID 1) arrives on the
// west input, packet B (ID 2) on the east input, and the port scan
// visits east (port 2) before west (port 4) — a scan-order arbiter
// would deliver B first.
func TestAgeBasedEqualAgeTieBreaksToLowestID(t *testing.T) {
	m, err := NewMesh(MeshConfig{Width: 3, Height: 1, BufferFlits: 4, Arbiter: AgeBased})
	if err != nil {
		t.Fatal(err)
	}
	var order []uint64
	m.SetSink(1, sinkFunc(func(p *Packet, lastFlit bool, _ int64) bool {
		if lastFlit {
			order = append(order, p.ID)
		}
		return true
	}))
	a, err := m.Inject(0, 1, 1, nil) // ID 1, west input of node 1
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Inject(2, 1, 1, nil) // ID 2, east input of node 1
	if err != nil {
		t.Fatal(err)
	}
	if a.CreatedAt != b.CreatedAt {
		t.Fatalf("packets must tie on age: CreatedAt %d vs %d", a.CreatedAt, b.CreatedAt)
	}
	if a.ID >= b.ID {
		t.Fatalf("packet IDs not increasing: %d vs %d", a.ID, b.ID)
	}
	m.Run(20)
	if len(order) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(order))
	}
	if order[0] != a.ID {
		t.Errorf("equal-age tie delivered packet %d first, want lowest ID %d", order[0], a.ID)
	}
}

// TestRoundRobinPointerHoldsOnRefusedGrant pins the arbiter-pointer
// bugfix: the round-robin pointer must advance only on a committed
// grant. The old pickInput advanced it on every pick, including picks
// the sink then refused, so under back-pressure priority rotated past
// inputs that were never served and the eventual winner depended on how
// many cycles the sink stayed busy. Setup: two single-flit packets
// contend for node 1's ejection port while the sink refuses until an
// absolute cycle; whichever packet wins arbitration first must still be
// the first delivered no matter how long the refusal lasts.
func TestRoundRobinPointerHoldsOnRefusedGrant(t *testing.T) {
	winner := make(map[int64]uint64)
	for _, wait := range []int64{3, 4, 5, 6} {
		m, err := NewMesh(MeshConfig{Width: 3, Height: 1, BufferFlits: 4, Arbiter: RoundRobin})
		if err != nil {
			t.Fatal(err)
		}
		var first uint64
		delivered := 0
		m.SetSink(1, sinkFunc(func(p *Packet, lastFlit bool, cycle int64) bool {
			if cycle < wait {
				return false
			}
			if lastFlit {
				if first == 0 {
					first = p.ID
				}
				delivered++
			}
			return true
		}))
		if _, err := m.Inject(0, 1, 1, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Inject(2, 1, 1, nil); err != nil {
			t.Fatal(err)
		}
		m.Run(40)
		if delivered != 2 || !m.Drained() {
			t.Fatalf("wait=%d: delivered %d packets, drained=%v", wait, delivered, m.Drained())
		}
		winner[wait] = first
	}
	for _, wait := range []int64{4, 5, 6} {
		if winner[wait] != winner[3] {
			t.Errorf("refusal length changed the arbitration winner: wait=3 delivered %d first, wait=%d delivered %d first",
				winner[3], wait, winner[wait])
		}
	}
}

// TestCreditBalanceUnderSaturatedBackpressure documents the satellite-1
// audit result: when a head flit wins ejection arbitration but the sink
// refuses, the flit stays put and no buffer slot (credit) is leaked or
// double-returned. The simcheck sweep found no violation here; this
// test pins the invariant so a regression cannot land silently. A
// hotspot sink refuses 3 of every 4 cycles under saturating traffic;
// throughout the run every FIFO must respect its capacity, and once the
// sink opens the network must drain with every injected flit delivered
// exactly once.
func TestCreditBalanceUnderSaturatedBackpressure(t *testing.T) {
	m, err := NewMesh(MeshConfig{Width: 4, Height: 4, BufferFlits: 2, Arbiter: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	hot := 5
	open := false
	refused := 0
	m.SetSink(hot, sinkFunc(func(p *Packet, lastFlit bool, cycle int64) bool {
		if !open && cycle%4 != 0 {
			refused++
			return false
		}
		return true
	}))
	var injectedFlits, injectedPkts int64
	n := m.Nodes()
	for c := 0; c < 600; c++ {
		for src := 0; src < n; src++ {
			if src == hot || m.PendingInjection(src) > 8 {
				continue
			}
			flits := 1 + (src+c)%3
			if _, err := m.Inject(src, hot, flits, nil); err != nil {
				t.Fatal(err)
			}
			injectedFlits += int64(flits)
			injectedPkts++
		}
		m.Step()
		m.VisitFIFOs(func(node, port, occ, cap int) {
			if occ < 0 || occ > cap {
				t.Fatalf("cycle %d: FIFO (node %d, port %d) occupancy %d outside [0, %d]; credit imbalance",
					c, node, port, occ, cap)
			}
		})
	}
	if refused == 0 {
		t.Fatal("sink never refused; the test exercised no back-pressure")
	}
	open = true
	for i := 0; i < 20000 && !m.Drained(); i++ {
		m.Step()
	}
	if !m.Drained() {
		t.Fatal("network failed to drain after the sink opened; flits leaked or wedged")
	}
	var gotFlits, gotPkts int64
	for i := range m.AcceptedFlits {
		gotFlits += m.AcceptedFlits[i]
		gotPkts += m.AcceptedPackets[i]
	}
	if gotFlits != injectedFlits || gotPkts != injectedPkts {
		t.Errorf("delivered %d flits / %d packets, injected %d / %d; conservation broken",
			gotFlits, gotPkts, injectedFlits, injectedPkts)
	}
}

func TestStepSteadyStateDoesNotAllocate(t *testing.T) {
	// The old fifo.pop resliced q[1:], shrinking the append capacity so
	// every ~BufferFlits pushes reallocated the buffer (and pinned every
	// popped flit's *Packet until then). With copy-down compaction and
	// the reused move/push scratch, a warmed-up Step allocates nothing.
	m, err := NewMesh(MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	// Source queues long enough to keep every router busy throughout the
	// measurement (injection drains at most one flit per node per cycle).
	n := m.Nodes()
	for src := 0; src < n; src++ {
		for k := 0; k < 150; k++ {
			if _, err := m.Inject(src, (src*7+k*3+1)%n, 4, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Run(100) // warm up: grow FIFO backing arrays and scratch buffers
	avg := testing.AllocsPerRun(200, func() { m.Step() })
	if avg != 0 {
		t.Errorf("steady-state Step allocates %.1f times per cycle, want 0", avg)
	}
	if m.Drained() {
		t.Fatal("mesh drained mid-measurement; the test no longer exercises steady state")
	}
}

func BenchmarkMeshStep(b *testing.B) {
	m, err := NewMesh(MeshConfig{Width: 8, Height: 8, BufferFlits: 4, Arbiter: RoundRobin})
	if err != nil {
		b.Fatal(err)
	}
	n := m.Nodes()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N+1000; i++ {
		if _, err := m.Inject(rng.Intn(n), rng.Intn(n), 4, nil); err != nil {
			b.Fatal(err)
		}
	}
	m.Run(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}
