// Package cluster shards the serving tier across nodes by result
// content key. Every experiment result in this repository is
// content-addressed and deterministic — the same (gpu, experiment,
// quick) tuple renders the same bytes on every node — so the natural
// way to scale nocserve past one process is to give each key exactly
// one owner and route requests there:
//
//   - Rendezvous (highest-random-weight) hashing assigns each shard key
//     to one owner given only the shared peer list: no coordination, no
//     routing table to replicate, and removing a peer remaps only the
//     keys that peer owned (every other key keeps its owner, so a
//     membership change cannot stampede the survivors' caches).
//   - Ownership is enforced by single-hop forwarding: a request landing
//     on a non-owner is forwarded once to the owner, and the
//     ForwardedHeader guard guarantees a forwarded request is served
//     where it lands — owner or not — so a routing-table disagreement
//     between nodes degrades to one mis-routed counter tick, never a
//     forwarding loop.
//   - Failure degrades, never fails: when the owner is unreachable or
//     marked unhealthy, the node computes the key locally (the result
//     is deterministic, so the bytes are identical — only the
//     exactly-once-per-cluster economy is lost) and the cluster behaves
//     as N independent nodes until the peer recovers.
//
// The package never reads the wall clock or spawns goroutines: health
// windows run on an injected monotonic clock and retry backoff on an
// injected sleep, exactly like internal/resultstore, so the whole
// routing layer is deterministic under test and clean under noclint's
// seedflow and determinism analyzers.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"time"

	"gpunoc/internal/obs"
)

// Router maps shard keys to owning peers with rendezvous hashing. It is
// immutable after construction and safe for concurrent use.
type Router struct {
	self  string
	peers []string // sorted, deduplicated, includes self
}

// NewRouter builds a router over the full cluster member list (self
// included). Every node must be constructed from the same peer set —
// order-insensitive — for ownership to agree cluster-wide.
func NewRouter(self string, peers []string) (*Router, error) {
	if len(peers) == 0 {
		return nil, errors.New("cluster: peer list is empty")
	}
	sorted := make([]string, 0, len(peers))
	seen := map[string]bool{}
	for _, p := range peers {
		if p == "" {
			return nil, errors.New("cluster: peer list contains an empty entry")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	if self == "" {
		return nil, errors.New("cluster: self is empty")
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, sorted)
	}
	return &Router{self: self, peers: sorted}, nil
}

// Owner returns the peer that owns key: the peer with the highest
// rendezvous score, ties broken toward the lexicographically smallest
// peer. The choice depends only on (key, peer set), never on which node
// evaluates it, so every correctly-configured node routes identically.
func (r *Router) Owner(key string) string {
	owner := r.peers[0]
	best := rendezvousScore(r.peers[0], key)
	for _, p := range r.peers[1:] {
		if s := rendezvousScore(p, key); s > best {
			owner, best = p, s
		}
	}
	return owner
}

// rendezvousScore hashes one (peer, key) pair. FNV-1a alone mixes too
// weakly for rendezvous — keys differing only in trailing bytes barely
// perturb the peer ordering — so the digest runs through a Murmur3-style
// 64-bit finalizer whose avalanche makes the per-peer scores effectively
// independent per key. Not cryptographic, but the shard key is already a
// SHA-256 content address, so an adversarial client cannot steer
// placement beyond choosing which tuple to request.
func rendezvousScore(peer, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(peer))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Self returns this node's own peer identity.
func (r *Router) Self() string { return r.self }

// IsSelf reports whether peer is this node.
func (r *Router) IsSelf(peer string) bool { return peer == r.self }

// Peers returns the sorted member list (a copy).
func (r *Router) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Doer is the HTTP client seam; *http.Client satisfies it, tests
// substitute failures.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// Options configures a Cluster.
type Options struct {
	// Self is this node's base URL exactly as it appears in Peers.
	Self string
	// Peers is the full member list, Self included.
	Peers []string
	// Client performs forwarded requests; nil means a default
	// http.Client. There is deliberately no client-level timeout: a
	// forwarded cold key legitimately takes as long as the owner's
	// simulation, and the caller's request context already bounds the
	// wait when a deadline is configured.
	Client Doer
	// Retries is how many times a failed forward is retried before the
	// node falls back to computing locally; negative means 0.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt;
	// <= 0 disables backoff sleeps.
	Backoff time.Duration
	// RetryAfter is how long a peer marked unhealthy stays skipped
	// before forwards probe it again; <= 0 means 30s.
	RetryAfter time.Duration
	// MaxBodyBytes caps a forwarded response body; <= 0 means 256 MiB.
	MaxBodyBytes int64
	// Clock returns elapsed monotonic time from an origin of the
	// caller's choosing (health windows, forward latency). Required.
	Clock func() time.Duration
	// Sleep waits between forward retries; nil disables backoff sleeps.
	// Commands pass time.Sleep, tests a recorder.
	Sleep func(time.Duration)
	// Obs receives the routing instruments (forwarded, mis_routed,
	// peer_unhealthy, fallback_local, forward_err counters and the
	// forward_ms histogram); nil disables collection.
	Obs *obs.Registry
}

// Cluster bundles the router, the health pool, and the forwarder with
// their shared instruments: everything one serving node needs to
// participate in a sharded tier.
type Cluster struct {
	Router *Router
	Pool   *Pool
	fwd    *forwarder
	clock  func() time.Duration

	// Forwarded counts requests this node proxied to their owner.
	Forwarded *obs.Counter
	// MisRouted counts already-forwarded requests that landed on a
	// non-owner (peer-set disagreement); they are served locally, never
	// re-forwarded.
	MisRouted *obs.Counter
	// FallbackLocal counts non-owner requests served by local
	// computation because the owner was unhealthy or the forward failed.
	FallbackLocal *obs.Counter
	// ForwardErrs counts forwards that exhausted their retries.
	ForwardErrs *obs.Counter
	// ForwardMS is the wall latency of successful forwards.
	ForwardMS *obs.Histogram
}

// New builds a Cluster.
func New(o Options) (*Cluster, error) {
	router, err := NewRouter(o.Self, o.Peers)
	if err != nil {
		return nil, err
	}
	if o.Clock == nil {
		return nil, errors.New("cluster: Options.Clock is required")
	}
	retryAfter := o.RetryAfter
	if retryAfter <= 0 {
		retryAfter = 30 * time.Second
	}
	c := &Cluster{
		Router: router,
		Pool: newPool(poolOptions{
			clock:      o.Clock,
			retryAfter: retryAfter,
			unhealthy:  o.Obs.Counter("peer_unhealthy"),
		}),
		fwd:           newForwarder(o),
		clock:         o.Clock,
		Forwarded:     o.Obs.Counter("forwarded"),
		MisRouted:     o.Obs.Counter("mis_routed"),
		FallbackLocal: o.Obs.Counter("fallback_local"),
		ForwardErrs:   o.Obs.Counter("forward_err"),
		ForwardMS:     o.Obs.Histogram("forward_ms", forwardLatencyBounds()),
	}
	return c, nil
}

// forwardLatencyBounds buckets forward wall time in milliseconds: warm
// owner hits land in the low buckets, forwarded cold simulations in the
// top ones.
func forwardLatencyBounds() []int64 {
	return []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
}
