package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gpunoc/internal/obs"
)

// testKeys returns n distinct shard keys shaped like the resultstore's
// content addresses (the production shard key).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
	}
	return keys
}

// TestRouterDeterministicAcrossNodes: every node — whatever its own
// identity and whatever order its flag listed the peers in — must agree
// on the owner of every key, or forwarding would ping-pong.
func TestRouterDeterministicAcrossNodes(t *testing.T) {
	peers := []string{"http://n3:80", "http://n1:80", "http://n2:80", "http://n4:80"}
	reversed := []string{"http://n4:80", "http://n2:80", "http://n1:80", "http://n3:80"}
	routers := make([]*Router, 0, len(peers)*2)
	for _, self := range peers {
		a, err := NewRouter(self, peers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewRouter(self, reversed)
		if err != nil {
			t.Fatal(err)
		}
		routers = append(routers, a, b)
	}
	for _, key := range testKeys(500) {
		want := routers[0].Owner(key)
		for i, r := range routers[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("router %d (self=%s) owner(%s) = %s, want %s", i+1, r.Self(), key, got, want)
			}
		}
	}
}

// TestRouterRemovalRemapsOnlyVictim is the rendezvous property the
// whole design leans on: dropping one peer moves only the keys that
// peer owned. Keys owned by survivors must keep their owner, so a node
// failure cannot invalidate the survivors' caches.
func TestRouterRemovalRemapsOnlyVictim(t *testing.T) {
	peers := []string{"http://n1:80", "http://n2:80", "http://n3:80", "http://n4:80", "http://n5:80"}
	const victim = "http://n3:80"
	var survivors []string
	for _, p := range peers {
		if p != victim {
			survivors = append(survivors, p)
		}
	}
	full, err := NewRouter(peers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRouter(peers[0], survivors)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(2000)
	owned := map[string]int{}
	remapped := 0
	for _, key := range keys {
		before := full.Owner(key)
		owned[before]++
		after := reduced.Owner(key)
		if before == victim {
			remapped++
			if after == victim {
				t.Fatalf("key %s still owned by removed peer", key)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key, before, after)
		}
	}
	if remapped != owned[victim] {
		t.Fatalf("remapped %d keys, victim owned %d", remapped, owned[victim])
	}
	// Sanity on balance: with 2000 keys over 5 peers, every peer must
	// own a meaningful share (rendezvous over FNV-1a is near-uniform).
	for _, p := range peers {
		if owned[p] < len(keys)/20 {
			t.Errorf("peer %s owns only %d of %d keys; rendezvous badly unbalanced", p, owned[p], len(keys))
		}
	}
}

// TestRouterValidation: misconfigurations every node must refuse at
// startup rather than route inconsistently at runtime.
func TestRouterValidation(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		peers []string
	}{
		{"empty peers", "http://a", nil},
		{"self missing", "http://c", []string{"http://a", "http://b"}},
		{"empty self", "", []string{"http://a"}},
		{"duplicate peer", "http://a", []string{"http://a", "http://a"}},
		{"empty peer entry", "http://a", []string{"http://a", ""}},
	}
	for _, c := range cases {
		if _, err := NewRouter(c.self, c.peers); err == nil {
			t.Errorf("%s: NewRouter accepted an invalid configuration", c.name)
		}
	}
}

// TestPoolHealthWindow drives the passive health pool on an injected
// clock: down inside the window, probe-eligible after it, and the
// unhealthy counter ticks once per outage, not once per skip.
func TestPoolHealthWindow(t *testing.T) {
	var now time.Duration
	reg := obs.New()
	p := newPool(poolOptions{
		clock:      func() time.Duration { return now },
		retryAfter: 10 * time.Second,
		unhealthy:  reg.Counter("peer_unhealthy"),
	})
	const peer = "http://n1:80"
	if !p.Healthy(peer) {
		t.Fatal("fresh pool reports peer unhealthy")
	}
	p.MarkDown(peer)
	if p.Healthy(peer) || !p.Down(peer) {
		t.Fatal("peer healthy immediately after MarkDown")
	}
	p.MarkDown(peer) // losing probe restarts the window, no double count
	now = 9 * time.Second
	if p.Healthy(peer) {
		t.Fatal("peer healthy inside the retry window")
	}
	now = 10 * time.Second
	if !p.Healthy(peer) {
		t.Fatal("peer still unhealthy after the retry window expired")
	}
	if p.Down(peer) {
		t.Fatal("expired outage still reads as down")
	}
	if got := reg.Counter("peer_unhealthy").Value(); got != 1 {
		t.Errorf("peer_unhealthy = %d after one outage, want 1", got)
	}
	p.MarkDown(peer)
	p.MarkUp(peer)
	if !p.Healthy(peer) {
		t.Fatal("MarkUp did not clear the outage")
	}
	if got := reg.Counter("peer_unhealthy").Value(); got != 2 {
		t.Errorf("peer_unhealthy = %d after two outages, want 2", got)
	}
}

// flakyOwner is an httptest handler that fails its first n requests
// with the given status, then serves a fixed body.
type flakyOwner struct {
	failures int
	status   int
	requests int
	headers  []string // ForwardedHeader value per request
}

func (f *flakyOwner) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.requests++
	f.headers = append(f.headers, r.Header.Get(ForwardedHeader))
	if f.requests <= f.failures {
		w.WriteHeader(f.status)
		return
	}
	w.Header().Set("X-Cache", "hit")
	_, _ = w.Write([]byte("owner-body\n"))
}

// newTestCluster builds a 2-member cluster whose forwarder talks to the
// given owner URL, with a recording sleep.
func newTestCluster(t *testing.T, owner string, retries int, sleeps *[]time.Duration) *Cluster {
	t.Helper()
	c, err := New(Options{
		Self:    "http://self.invalid",
		Peers:   []string{"http://self.invalid", owner},
		Retries: retries,
		Backoff: 10 * time.Millisecond,
		Clock:   func() time.Duration { return 0 },
		Sleep:   func(d time.Duration) { *sleeps = append(*sleeps, d) },
		Obs:     obs.New().Scope("cluster"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestForwardRetriesThenSucceeds: a 503 from the owner is retried with
// doubling backoff, the forwarded request carries the single-hop header
// with the forwarder's identity, and the owner's headers and body come
// back intact.
func TestForwardRetriesThenSucceeds(t *testing.T) {
	owner := &flakyOwner{failures: 2, status: http.StatusServiceUnavailable}
	ts := httptest.NewServer(owner)
	defer ts.Close()
	var sleeps []time.Duration
	c := newTestCluster(t, ts.URL, 2, &sleeps)

	resp, err := c.Forward(context.Background(), ts.URL, "/v1/v100/fig1?quick=1")
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if resp.Status != http.StatusOK || string(resp.Body) != "owner-body\n" {
		t.Errorf("Forward = (%d, %q), want (200, owner-body)", resp.Status, resp.Body)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("forwarded X-Cache = %q, want hit", got)
	}
	if owner.requests != 3 {
		t.Errorf("owner saw %d requests, want 3 (two 503s + success)", owner.requests)
	}
	for i, h := range owner.headers {
		if h != "http://self.invalid" {
			t.Errorf("request %d: %s = %q, want the forwarder's identity", i, ForwardedHeader, h)
		}
	}
	if len(sleeps) != 2 || sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [10ms 20ms]", sleeps)
	}
}

// TestForwardExhaustsRetries: a persistently failing owner yields an
// error (the caller then falls back to local compute) and ticks
// forward_err.
func TestForwardExhaustsRetries(t *testing.T) {
	owner := &flakyOwner{failures: 100, status: http.StatusBadGateway}
	ts := httptest.NewServer(owner)
	defer ts.Close()
	var sleeps []time.Duration
	c := newTestCluster(t, ts.URL, 1, &sleeps)

	if _, err := c.Forward(context.Background(), ts.URL, "/v1/v100/fig1"); err == nil {
		t.Fatal("Forward succeeded against a 502-only owner")
	}
	if owner.requests != 2 {
		t.Errorf("owner saw %d requests, want 2 (initial + 1 retry)", owner.requests)
	}
	if got := c.ForwardErrs.Value(); got != 1 {
		t.Errorf("forward_err = %d, want 1", got)
	}
}

// TestForwardPassesThroughOwnerAnswers: statuses other than 502/503 —
// including the owner's own 504 deadline and a 500 run-refusal — are
// answers, not failures: retrying or falling back would duplicate the
// owner's in-flight work.
func TestForwardPassesThroughOwnerAnswers(t *testing.T) {
	for _, status := range []int{http.StatusOK, http.StatusNotFound, http.StatusInternalServerError, http.StatusGatewayTimeout} {
		owner := &flakyOwner{failures: 0, status: status}
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			owner.requests++
			w.WriteHeader(status)
		}))
		var sleeps []time.Duration
		c := newTestCluster(t, ts.URL, 3, &sleeps)
		resp, err := c.Forward(context.Background(), ts.URL, "/v1/v100/fig1")
		if err != nil {
			t.Errorf("status %d: Forward errored: %v", status, err)
		} else if resp.Status != status {
			t.Errorf("Forward status = %d, want %d", resp.Status, status)
		}
		if owner.requests != 1 {
			t.Errorf("status %d: owner saw %d requests, want 1 (no retry)", status, owner.requests)
		}
		ts.Close()
	}
}

// TestForwardDeadPeer: a connection-refused owner errors out through
// the retry budget without panicking; the caller's context is honored.
func TestForwardDeadPeer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // listener gone: every dial is refused
	var sleeps []time.Duration
	c := newTestCluster(t, ts.URL, 2, &sleeps)
	if _, err := c.Forward(context.Background(), ts.URL, "/v1/v100/fig1"); err == nil {
		t.Fatal("Forward succeeded against a closed listener")
	}
	if len(sleeps) != 2 {
		t.Errorf("dead peer: %d backoff sleeps, want 2", len(sleeps))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Forward(ctx, ts.URL, "/v1/v100/fig1")
	if err == nil {
		t.Fatal("Forward succeeded with a cancelled context")
	}
	if !errors.Is(err, context.Canceled) && err == nil {
		t.Errorf("cancelled forward error = %v", err)
	}
}
