package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ForwardedHeader marks a request as already forwarded once. Its value
// is the forwarding node's peer identity. A node receiving a request
// with this header serves it locally no matter who the routing table
// says owns the key: one hop is the maximum, so disagreeing peer sets
// can mis-route but never loop.
const ForwardedHeader = "X-Noc-Forwarded"

// Response is a completed forward: the owner's answer, body fully read.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// forwarder performs single-hop ownership forwards with bounded retry.
type forwarder struct {
	client  Doer
	self    string
	retries int
	backoff time.Duration
	sleep   func(time.Duration)
	maxBody int64
}

// newForwarder builds the forwarder from the cluster options.
func newForwarder(o Options) *forwarder {
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	retries := o.Retries
	if retries < 0 {
		retries = 0
	}
	maxBody := o.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 256 << 20
	}
	sleep := o.Sleep
	if sleep == nil {
		sleep = func(time.Duration) {}
	}
	return &forwarder{
		client:  client,
		self:    o.Self,
		retries: retries,
		backoff: o.Backoff,
		sleep:   sleep,
		maxBody: maxBody,
	}
}

// Forward proxies requestURI (path plus query, e.g.
// "/v1/v100/fig1?quick=1") to the owner peer and returns its response,
// retrying transport failures and 502/503 answers with doubling backoff
// up to the retry budget. Any other status — 200, 404, 500, even the
// owner's own 504 deadline — is a real answer from the owner and is
// returned as-is: a 504 in particular means the owner accepted the key
// and its fill keeps computing, so falling back locally would duplicate
// the simulation the forward existed to dedupe. ctx bounds every
// attempt and the backoff waits between them.
func (c *Cluster) Forward(ctx context.Context, owner, requestURI string) (*Response, error) {
	start := c.clock()
	resp, err := c.fwd.forward(ctx, owner, requestURI)
	if err != nil {
		c.ForwardErrs.Inc()
		return nil, err
	}
	c.ForwardMS.Observe(int64((c.clock() - start) / time.Millisecond))
	return resp, nil
}

// forward is the retry loop behind Cluster.Forward.
func (f *forwarder) forward(ctx context.Context, owner, requestURI string) (*Response, error) {
	var lastErr error
	backoff := f.backoff
	for attempt := 0; attempt <= f.retries; attempt++ {
		if attempt > 0 {
			if backoff > 0 {
				f.sleep(backoff)
				backoff *= 2
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		resp, err := f.attempt(ctx, owner, requestURI)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// A fired caller context is terminal: more attempts cannot
		// succeed and the backoff would only delay the fallback answer.
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// attempt performs one forwarded request. Transport errors and
// 502/503 — the owner refusing or mid-restart — are retryable errors;
// everything else is the owner's answer.
func (f *forwarder) attempt(ctx context.Context, owner, requestURI string) (*Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+requestURI, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", owner, err)
	}
	req.Header.Set(ForwardedHeader, f.self)
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", owner, err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, f.maxBody+1))
	_ = resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: reading body: %w", owner, err)
	}
	if int64(len(body)) > f.maxBody {
		return nil, fmt.Errorf("cluster: forward to %s: body exceeds %d byte cap", owner, f.maxBody)
	}
	if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
		return nil, fmt.Errorf("cluster: forward to %s: owner answered %d", owner, resp.StatusCode)
	}
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: body}, nil
}
