package cluster

import (
	"sync"
	"time"

	"gpunoc/internal/obs"
)

// poolOptions configures a Pool.
type poolOptions struct {
	clock      func() time.Duration
	retryAfter time.Duration
	unhealthy  *obs.Counter
}

// Pool tracks peer health passively: a peer is healthy until a forward
// to it fails, and an unhealthy peer is skipped (requests for its keys
// compute locally) until the retry window expires, at which point the
// next forward probes it — success marks it up, failure restarts the
// window. There is no background prober, so the pool needs no
// goroutines and no wall clock: health state advances only when
// requests flow, on the injected clock.
type Pool struct {
	mu         sync.Mutex
	clock      func() time.Duration
	retryAfter time.Duration
	// downUntil maps an unhealthy peer to the injected-clock time at
	// which forwards may probe it again.
	downUntil map[string]time.Duration
	// unhealthy counts up->down transitions (a flapping peer ticks once
	// per outage, not once per skipped request).
	unhealthy *obs.Counter
}

// newPool builds a pool; every peer starts healthy.
func newPool(o poolOptions) *Pool {
	return &Pool{
		clock:      o.clock,
		retryAfter: o.retryAfter,
		downUntil:  map[string]time.Duration{},
		unhealthy:  o.unhealthy,
	}
}

// Healthy reports whether forwards to peer are currently allowed. A
// peer whose retry window has expired reads as healthy again — the next
// forward is the probe, and its failure re-marks the peer down.
func (p *Pool) Healthy(peer string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	until, down := p.downUntil[peer]
	if !down {
		return true
	}
	if p.clock() < until {
		return false
	}
	// Window expired: forget the outage so the probing forward's own
	// failure (not a stale stamp) decides the next window.
	delete(p.downUntil, peer)
	return true
}

// MarkDown records a failed forward: peer is skipped until the retry
// window expires. Re-marking an already-down peer (a losing probe)
// restarts the window without re-counting the outage.
func (p *Pool) MarkDown(peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, down := p.downUntil[peer]; !down {
		p.unhealthy.Inc()
	}
	p.downUntil[peer] = p.clock() + p.retryAfter
}

// MarkUp records a successful forward, clearing any outage early.
func (p *Pool) MarkUp(peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.downUntil, peer)
}

// Down reports whether peer is currently inside an unexpired outage
// window, without the probe side effect Healthy has.
func (p *Pool) Down(peer string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	until, down := p.downUntil[peer]
	return down && p.clock() < until
}
