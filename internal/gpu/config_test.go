package gpu

import "testing"

func TestCanonicalConfigsValidate(t *testing.T) {
	for _, cfg := range AllConfigs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestTableICounts(t *testing.T) {
	cases := []struct {
		cfg         Config
		sms, perGPC int
	}{
		{V100(), 84, 14},
		{A100(), 128, 16},
		{H100(), 144, 18},
	}
	for _, c := range cases {
		if got := c.cfg.SMs(); got != c.sms {
			t.Errorf("%s SMs = %d, want %d", c.cfg.Name, got, c.sms)
		}
		if got := c.cfg.SMsPerGPC(); got != c.perGPC {
			t.Errorf("%s SMsPerGPC = %d, want %d", c.cfg.Name, got, c.perGPC)
		}
	}
}

func TestMemoryBandwidthProgression(t *testing.T) {
	// Table I: off-chip bandwidth strictly increases across generations, as
	// does the aggregate L2 fabric factor (Observation #7/#10).
	cfgs := AllConfigs()
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].MemBWGBs <= cfgs[i-1].MemBWGBs {
			t.Errorf("%s mem BW %.0f not > %s's %.0f", cfgs[i].Name, cfgs[i].MemBWGBs, cfgs[i-1].Name, cfgs[i-1].MemBWGBs)
		}
		if cfgs[i].L2FabricFactor <= cfgs[i-1].L2FabricFactor {
			t.Errorf("%s fabric factor not increasing", cfgs[i].Name)
		}
	}
	for _, cfg := range cfgs {
		if cfg.L2FabricFactor < 2.4 || cfg.L2FabricFactor > 3.5 {
			t.Errorf("%s L2 fabric factor %.1f outside the paper's 2.4-3.5x band", cfg.Name, cfg.L2FabricFactor)
		}
	}
}

func TestTPCsPerCPC(t *testing.T) {
	if got := H100().TPCsPerCPC(); got != 3 {
		t.Errorf("H100 TPCsPerCPC = %d, want 3", got)
	}
	if got := V100().TPCsPerCPC(); got != 0 {
		t.Errorf("V100 TPCsPerCPC = %d, want 0 (no CPC level)", got)
	}
}

func TestSlicesPerMP(t *testing.T) {
	if got := V100().SlicesPerMP(); got != 4 {
		t.Errorf("V100 SlicesPerMP = %d, want 4", got)
	}
	if got := A100().SlicesPerMP(); got != 8 {
		t.Errorf("A100 SlicesPerMP = %d, want 8", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero GPCs", func(c *Config) { c.GPCs = 0 }},
		{"partition split", func(c *Config) { c.Partitions = 5 }},
		{"slice split", func(c *Config) { c.L2Slices = 33 }},
		{"mp partition split", func(c *Config) { c.MPs = 9; c.Partitions = 2 }},
		{"cpc split", func(c *Config) { c.CPCsPerGPC = 4 }},
		{"line size", func(c *Config) { c.CacheLineBytes = 100 }},
		{"line size zero", func(c *Config) { c.CacheLineBytes = 0 }},
		{"mem bw", func(c *Config) { c.MemBWGBs = 0 }},
	}
	for _, m := range mutations {
		cfg := V100()
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", m.name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"v100", "V100", "a100", "h100", "H100"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("p100"); err == nil {
		t.Error("ByName(p100) should fail")
	}
}

func TestAllConfigsOrder(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 3 || cfgs[0].Name != GenV100 || cfgs[1].Name != GenA100 || cfgs[2].Name != GenH100 {
		t.Errorf("AllConfigs order wrong: %v", []Generation{cfgs[0].Name, cfgs[1].Name, cfgs[2].Name})
	}
}
