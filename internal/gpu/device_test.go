package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpunoc/internal/stats"
)

func v100() *Device { return MustNew(V100()) }
func a100() *Device { return MustNew(A100()) }
func h100() *Device { return MustNew(H100()) }

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := V100()
	cfg.GPCs = 0
	if _, err := New(cfg); err == nil {
		t.Error("New should reject invalid config")
	}
	cfg = V100()
	cfg.Floorplan.GPCs = 4 // floorplan/config mismatch
	if _, err := New(cfg); err == nil {
		t.Error("New should reject floorplan/config GPC mismatch")
	}
	cfg = V100()
	cfg.Floorplan.MPs = 4
	if _, err := New(cfg); err == nil {
		t.Error("New should reject floorplan/config MP mismatch")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	cfg := V100()
	cfg.MPs = 0
	MustNew(cfg)
}

func TestHierarchyEnumeration(t *testing.T) {
	d := v100()
	// The paper's Fig. 3 SM groupings: SM 24 and 60 in GPC0, SM 28 and 64
	// in GPC4 on the 6-GPC V100.
	for _, c := range []struct{ sm, gpc int }{{24, 0}, {60, 0}, {28, 4}, {64, 4}} {
		if got := d.GPCOf(c.sm); got != c.gpc {
			t.Errorf("GPCOf(%d) = %d, want %d", c.sm, got, c.gpc)
		}
	}
	if got := d.LocalIndex(24); got != 4 {
		t.Errorf("LocalIndex(24) = %d, want 4", got)
	}
	if got := d.TPCOf(24); got != 2 {
		t.Errorf("TPCOf(24) = %d, want 2", got)
	}
	if got := d.CPCOf(24); got != -1 {
		t.Errorf("V100 CPCOf = %d, want -1", got)
	}
}

func TestHierarchyRoundTrip(t *testing.T) {
	for _, d := range []*Device{v100(), a100(), h100()} {
		cfg := d.Config()
		seen := map[int]bool{}
		for g := 0; g < cfg.GPCs; g++ {
			sms := d.SMsOfGPC(g)
			if len(sms) != cfg.SMsPerGPC() {
				t.Fatalf("%s SMsOfGPC(%d) len = %d, want %d", cfg.Name, g, len(sms), cfg.SMsPerGPC())
			}
			for _, sm := range sms {
				if d.GPCOf(sm) != g {
					t.Fatalf("%s SM%d not in GPC%d", cfg.Name, sm, g)
				}
				if seen[sm] {
					t.Fatalf("%s SM%d enumerated twice", cfg.Name, sm)
				}
				seen[sm] = true
			}
		}
		if len(seen) != cfg.SMs() {
			t.Errorf("%s enumerated %d SMs, want %d", cfg.Name, len(seen), cfg.SMs())
		}
	}
}

func TestSMsOfTPCPairs(t *testing.T) {
	d := v100()
	sms := d.SMsOfTPC(0, 2)
	if len(sms) != 2 {
		t.Fatalf("TPC has %d SMs, want 2", len(sms))
	}
	for _, sm := range sms {
		if d.GPCOf(sm) != 0 || d.TPCOf(sm) != 2 {
			t.Errorf("SM%d misplaced: GPC%d TPC%d", sm, d.GPCOf(sm), d.TPCOf(sm))
		}
	}
}

func TestSMsOfCPC(t *testing.T) {
	h := h100()
	for cpc := 0; cpc < 3; cpc++ {
		sms := h.SMsOfCPC(1, cpc)
		if len(sms) != 6 { // 3 TPCs x 2 SMs
			t.Fatalf("CPC%d has %d SMs, want 6", cpc, len(sms))
		}
		for _, sm := range sms {
			if h.CPCOf(sm) != cpc || h.GPCOf(sm) != 1 {
				t.Errorf("SM%d misplaced: GPC%d CPC%d", sm, h.GPCOf(sm), h.CPCOf(sm))
			}
		}
	}
	if v100().SMsOfCPC(0, 0) != nil {
		t.Error("V100 SMsOfCPC should be nil")
	}
}

func TestSliceEnumeration(t *testing.T) {
	d := v100()
	cfg := d.Config()
	counts := make([]int, cfg.MPs)
	for s := 0; s < cfg.L2Slices; s++ {
		counts[d.MPOfSlice(s)]++
	}
	for mp, n := range counts {
		if n != cfg.SlicesPerMP() {
			t.Errorf("MP%d has %d slices, want %d", mp, n, cfg.SlicesPerMP())
		}
	}
	for mp := 0; mp < cfg.MPs; mp++ {
		for _, s := range d.SlicesOfMP(mp) {
			if d.MPOfSlice(s) != mp {
				t.Errorf("slice %d not in MP%d", s, mp)
			}
		}
	}
}

func TestSlicesOfPartition(t *testing.T) {
	a := a100()
	left := a.SlicesOfPartition(0)
	right := a.SlicesOfPartition(1)
	if len(left) != 40 || len(right) != 40 {
		t.Fatalf("partition slice counts = %d/%d, want 40/40", len(left), len(right))
	}
	for _, s := range left {
		if a.PartitionOfSlice(s) != 0 {
			t.Errorf("slice %d should be in partition 0", s)
		}
	}
}

// --- Latency model: the paper's Observations #1-#6 ---------------------------

// Observation #1: latency from SMs to individual L2 slices is non-uniform,
// with the V100 spanning roughly 175-248 cycles around a ~212-cycle mean.
func TestV100LatencyCalibration(t *testing.T) {
	d := v100()
	cfg := d.Config()
	var all []float64
	for sm := 0; sm < cfg.SMs(); sm++ {
		for s := 0; s < cfg.L2Slices; s++ {
			all = append(all, float64(d.L2HitLatencyMean(sm, s)))
		}
	}
	sum := stats.Summarize(all)
	if sum.Mean < 200 || sum.Mean > 225 {
		t.Errorf("V100 mean latency %.1f outside [200, 225] (paper ~212)", sum.Mean)
	}
	if sum.Min < 170 || sum.Min > 195 {
		t.Errorf("V100 min latency %.1f outside [170, 195] (paper 175)", sum.Min)
	}
	if sum.Max < 240 || sum.Max > 265 {
		t.Errorf("V100 max latency %.1f outside [240, 265] (paper 248)", sum.Max)
	}
	if ratio := sum.Max / sum.Min; ratio < 1.25 {
		t.Errorf("V100 latency span ratio %.2f too small to be 'non-uniform'", ratio)
	}
}

// Observation #2: average latency is similar across GPCs but the variation
// within a GPC differs: centrally placed GPCs (2, 3) are narrower than
// edge GPCs (0, 1, 4, 5).
func TestV100PerGPCVariation(t *testing.T) {
	d := v100()
	cfg := d.Config()
	means := make([]float64, cfg.GPCs)
	sigmas := make([]float64, cfg.GPCs)
	for g := 0; g < cfg.GPCs; g++ {
		var xs []float64
		for _, sm := range d.SMsOfGPC(g) {
			for s := 0; s < cfg.L2Slices; s++ {
				xs = append(xs, float64(d.L2HitLatencyMean(sm, s)))
			}
		}
		sum := stats.Summarize(xs)
		means[g], sigmas[g] = sum.Mean, sum.StdDev
	}
	if spread := stats.Max(means) - stats.Min(means); spread > 10 {
		t.Errorf("per-GPC mean spread %.1f cycles; Observation #2 wants similar averages", spread)
	}
	for _, edge := range []int{0, 1, 4, 5} {
		for _, center := range []int{2, 3} {
			if sigmas[center] >= sigmas[edge] {
				t.Errorf("σ(GPC%d)=%.1f should be < σ(GPC%d)=%.1f (central GPCs are narrower)",
					center, sigmas[center], edge, sigmas[edge])
			}
		}
	}
}

// Observation #3: the latency-sorted order of slices within an MP is
// identical from every SM, and changing SM shifts latency by a constant.
func TestSliceOrderUniversal(t *testing.T) {
	d := v100()
	cfg := d.Config()
	for mp := 0; mp < cfg.MPs; mp++ {
		slices := d.SlicesOfMP(mp)
		ref := sliceOrder(d, 0, slices)
		for _, sm := range []int{1, 24, 28, 60, 64, 83} {
			got := sliceOrder(d, sm, slices)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("MP%d slice order differs between SM0 %v and SM%d %v", mp, ref, sm, got)
				}
			}
		}
	}
}

func sliceOrder(d *Device, sm int, slices []int) []int {
	lat := make([]float64, len(slices))
	for i, s := range slices {
		lat[i] = float64(d.L2HitLatencyMean(sm, s))
	}
	return stats.Argsort(lat)
}

// Same-GPC SMs differ by a pure constant (Fig. 5: "different SM locations
// result in a constant difference in L2 latency").
func TestSameGPCConstantShift(t *testing.T) {
	d := v100()
	cfg := d.Config()
	sms := d.SMsOfGPC(4)
	base := sms[0]
	for _, sm := range sms[1:] {
		diff0 := float64(d.L2HitLatencyMean(sm, 0) - d.L2HitLatencyMean(base, 0))
		for s := 1; s < cfg.L2Slices; s++ {
			diff := float64(d.L2HitLatencyMean(sm, s) - d.L2HitLatencyMean(base, s))
			if !almostEqual(diff, diff0, 1e-9) {
				t.Fatalf("SM%d vs SM%d: shift %.3f at slice %d != %.3f at slice 0", sm, base, diff, s, diff0)
			}
		}
	}
}

// Observation #4: Pearson correlation reveals placement. Same GPC ~1,
// paired-column neighbours (GPC0&1) ~1, distant GPCs low or negative.
func TestV100PearsonStructure(t *testing.T) {
	d := v100()
	cfg := d.Config()
	profile := func(sm int) []float64 {
		xs := make([]float64, cfg.L2Slices)
		for s := range xs {
			xs[s] = float64(d.L2HitLatencyMean(sm, s))
		}
		return xs
	}
	r := func(a, b int) float64 { return stats.MustPearson(profile(a), profile(b)) }
	if got := r(0, 6); got < 0.95 {
		t.Errorf("within-GPC correlation %.3f, want >= 0.95", got)
	}
	if got := r(0, 1); got < 0.9 {
		t.Errorf("GPC0-GPC1 (same column) correlation %.3f, want >= 0.9", got)
	}
	if got := r(0, 4); got > 0.2 {
		t.Errorf("GPC0-GPC4 (opposite edges) correlation %.3f, want <= 0.2 (paper: -0.365)", got)
	}
	mid := r(0, 2)
	far := r(0, 4)
	if mid <= far {
		t.Errorf("correlation should decay with distance: r(0,2)=%.3f <= r(0,4)=%.3f", mid, far)
	}
}

// Observation #5/#6 (A100): crossing the GPU partition adds large latency;
// far-partition accesses land near 400 cycles while near stays V100-like.
func TestA100PartitionLatency(t *testing.T) {
	a := a100()
	cfg := a.Config()
	var near, far []float64
	for _, sm := range a.SMsOfGPC(0) { // partition 0
		for s := 0; s < cfg.L2Slices; s++ {
			l := float64(a.L2HitLatencyMean(sm, s))
			if a.PartitionOfSlice(s) == 0 {
				near = append(near, l)
			} else {
				far = append(far, l)
			}
		}
	}
	nearMean, farMean := stats.Mean(near), stats.Mean(far)
	if nearMean < 195 || nearMean > 235 {
		t.Errorf("A100 near-partition mean %.1f outside [195, 235]", nearMean)
	}
	if farMean < 360 || farMean > 440 {
		t.Errorf("A100 far-partition mean %.1f outside [360, 440] (paper ~400)", farMean)
	}
	if farMean/nearMean < 1.5 {
		t.Errorf("far/near ratio %.2f too small", farMean/nearMean)
	}
}

// Observation #6 (H100): partition-local caching makes hit latency
// uniform across GPCs for the same data.
func TestH100LocalCachingUniformHits(t *testing.T) {
	h := h100()
	cfg := h.Config()
	// Average hit latency per GPC over all (locally cached) slices.
	means := make([]float64, cfg.GPCs)
	for g := 0; g < cfg.GPCs; g++ {
		var xs []float64
		for _, sm := range h.SMsOfGPC(g) {
			for s := 0; s < cfg.L2Slices; s++ {
				xs = append(xs, float64(h.L2HitLatencyMean(sm, s)))
			}
		}
		means[g] = stats.Mean(xs)
	}
	if spread := stats.Max(means) - stats.Min(means); spread > 15 {
		t.Errorf("H100 per-GPC hit-latency spread %.1f; local caching should keep it uniform", spread)
	}
	// No hit is ever served from the remote partition.
	for _, sm := range []int{0, 1, 4, 5} {
		for s := 0; s < cfg.L2Slices; s++ {
			serving := h.effectiveHitSlice(sm, s)
			if h.PartitionOfSlice(serving) != h.PartitionOfSM(sm) {
				t.Fatalf("SM%d slice %d served remotely by %d", sm, s, serving)
			}
		}
	}
}

func TestA100NoLocalCaching(t *testing.T) {
	a := a100()
	for s := 0; s < a.Config().L2Slices; s++ {
		if got := a.effectiveHitSlice(0, s); got != s {
			t.Fatalf("A100 should not remap slices: %d -> %d", s, got)
		}
	}
}

// Miss penalty: constant on V100/A100, home-partition-dependent on H100
// (Fig. 8 d, e, f).
func TestMissPenalty(t *testing.T) {
	v, a, h := v100(), a100(), h100()
	for mp := 1; mp < v.Config().MPs; mp++ {
		if v.L2MissPenaltyMean(0, mp) != v.L2MissPenaltyMean(0, 0) {
			t.Error("V100 miss penalty should be constant")
		}
	}
	for mp := 1; mp < a.Config().MPs; mp++ {
		if a.L2MissPenaltyMean(0, mp) != a.L2MissPenaltyMean(0, 0) {
			t.Error("A100 miss penalty should be constant")
		}
	}
	local := h.L2MissPenaltyMean(0, 0)  // SM0 partition 0, MP0 partition 0
	remote := h.L2MissPenaltyMean(0, 9) // MP9 partition 1
	if remote <= local {
		t.Errorf("H100 remote-home miss %.0f should exceed local %.0f", remote, local)
	}
	if remote-local < 100 {
		t.Errorf("H100 home-cross penalty %.0f too small", remote-local)
	}
}

// H100 SM-to-SM distributed-shared-memory latency (Fig. 7b): lowest
// within CPC0 (~196 cycles), highest within CPC2 (~213).
func TestH100SMToSMLatency(t *testing.T) {
	h := h100()
	lat := func(srcCPC, dstCPC int) float64 {
		src := h.SMsOfCPC(0, srcCPC)[0]
		dst := h.SMsOfCPC(0, dstCPC)[1]
		m, err := h.SMToSMLatencyMean(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		return float64(m)
	}
	l00 := lat(0, 0)
	l22 := lat(2, 2)
	if l00 < 190 || l00 > 202 {
		t.Errorf("CPC0-CPC0 latency %.1f outside [190, 202] (paper 196)", l00)
	}
	if l22 < 207 || l22 > 219 {
		t.Errorf("CPC2-CPC2 latency %.1f outside [207, 219] (paper ~213)", l22)
	}
	if lat(0, 2) <= l00 || lat(0, 2) >= l22 {
		t.Errorf("CPC0-CPC2 latency %.1f should lie between %.1f and %.1f", lat(0, 2), l00, l22)
	}
	// Symmetry.
	if lat(1, 2) != lat(2, 1) {
		t.Error("SM-to-SM latency should be symmetric in CPC pairs")
	}
}

func TestSMToSMErrors(t *testing.T) {
	if _, err := v100().SMToSMLatencyMean(0, 6); err == nil {
		t.Error("V100 has no SM-to-SM network; want error")
	}
	h := h100()
	if _, err := h.SMToSMLatencyMean(0, 1); err == nil {
		t.Error("cross-GPC SM-to-SM should error")
	}
	if _, err := h.SMToSMLatency(0, 1, 0); err == nil {
		t.Error("cross-GPC SM-to-SM sample should error")
	}
}

// --- Noise and determinism ----------------------------------------------------

func TestLatencyDeterministic(t *testing.T) {
	d1, d2 := v100(), v100()
	for i := uint64(0); i < 10; i++ {
		if d1.L2HitLatency(3, 7, i) != d2.L2HitLatency(3, 7, i) {
			t.Fatal("same config + seed must give identical samples")
		}
	}
	if d1.L2HitLatency(3, 7, 0) == d1.L2HitLatency(3, 7, 1) {
		t.Error("different iterations should (generically) differ")
	}
}

func TestNoiseAveragesOut(t *testing.T) {
	d := v100()
	mean := float64(d.L2HitLatencyMean(10, 5))
	var sum float64
	const n = 4000
	for i := uint64(0); i < n; i++ {
		sum += float64(d.L2HitLatency(10, 5, i))
	}
	got := sum / n
	if diff := got - mean; diff > 0.5 || diff < -0.5 {
		t.Errorf("sampled mean %.2f deviates from model mean %.2f", got, mean)
	}
}

func TestSeedChangesNoiseNotStructure(t *testing.T) {
	cfg := V100()
	cfg.Seed = 12345
	d := MustNew(cfg)
	ref := v100()
	// Structure (floorplan geometry term) is seed-independent even though
	// slice extras differ: the per-GPC mean spread stays small.
	var a, b []float64
	for s := 0; s < cfg.L2Slices; s++ {
		a = append(a, float64(ref.L2HitLatencyMean(0, s)))
		b = append(b, float64(d.L2HitLatencyMean(0, s)))
	}
	if stats.Mean(a) == stats.Mean(b) {
		t.Log("means equal by coincidence; acceptable")
	}
	if diff := stats.Mean(a) - stats.Mean(b); diff > 10 || diff < -10 {
		t.Errorf("seed change moved mean latency by %.1f cycles; should only perturb extras", diff)
	}
}

// --- Address hashing -----------------------------------------------------------

func TestHomeSliceInRange(t *testing.T) {
	f := func(addr uint64) bool {
		d := v100()
		s := d.HomeSlice(addr)
		return s >= 0 && s < d.Config().L2Slices
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHomeSliceLineGranularity(t *testing.T) {
	d := v100()
	base := uint64(0x10000)
	for off := uint64(0); off < 128; off++ {
		if d.HomeSlice(base+off) != d.HomeSlice(base) {
			t.Fatalf("addresses within one line must hash identically (offset %d)", off)
		}
	}
	// Adjacent lines generally differ (hashing, not striping).
	same := 0
	for i := uint64(0); i < 64; i++ {
		if d.HomeSlice(base+i*128) == d.HomeSlice(base) {
			same++
		}
	}
	if same > 16 {
		t.Errorf("adjacent lines hash to the same slice %d/64 times; hash looks degenerate", same)
	}
}

func TestHashLoadBalance(t *testing.T) {
	// Observation #12: address hashing load-balances traffic across slices.
	d := v100()
	cfg := d.Config()
	counts := make([]float64, cfg.L2Slices)
	const lines = 64 * 1024
	for i := 0; i < lines; i++ {
		counts[d.HomeSlice(uint64(i)*128)]++
	}
	mean := stats.Mean(counts)
	for s, c := range counts {
		if c < mean*0.85 || c > mean*1.15 {
			t.Errorf("slice %d gets %.0f lines, mean %.0f; imbalance > 15%%", s, c, mean)
		}
	}
}

func TestServingSliceLocalOnH100(t *testing.T) {
	h := h100()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		addr := rng.Uint64() % (1 << 30)
		for _, sm := range []int{0, 1, 4, 5} {
			s := h.ServingSlice(sm, addr)
			if h.PartitionOfSlice(s) != h.PartitionOfSM(sm) {
				t.Fatalf("H100 hit for SM%d served by remote slice %d", sm, s)
			}
		}
	}
}

func TestServingSliceIdentityElsewhere(t *testing.T) {
	v := v100()
	for i := uint64(0); i < 100; i++ {
		addr := i * 4096
		if v.ServingSlice(0, addr) != v.HomeSlice(addr) {
			t.Fatal("V100 serving slice must equal home slice")
		}
	}
}

func TestAddressForSlice(t *testing.T) {
	d := v100()
	for s := 0; s < d.Config().L2Slices; s++ {
		addr, ok := d.AddressForSlice(s, 0, 4096)
		if !ok {
			t.Fatalf("no address found for slice %d", s)
		}
		if d.HomeSlice(addr) != s {
			t.Fatalf("AddressForSlice(%d) returned addr for slice %d", s, d.HomeSlice(addr))
		}
	}
	if _, ok := d.AddressForSlice(0, 0, 0); ok {
		t.Error("zero limit should find nothing")
	}
}

func TestHomeMPMatchesHomeSlice(t *testing.T) {
	d := a100()
	for i := uint64(0); i < 100; i++ {
		addr := i * 999
		if d.HomeMP(addr) != d.MPOfSlice(d.HomeSlice(addr)) {
			t.Fatal("HomeMP inconsistent with HomeSlice")
		}
	}
}

func almostEqual(a, b, eps float64) bool {
	d := a - b
	return d <= eps && d >= -eps
}

// Property: hit latency is always within a sane band above the base RTT,
// for every generation, SM and slice.
func TestLatencyPropertyBounds(t *testing.T) {
	for _, d := range []*Device{v100(), a100(), h100()} {
		cfg := d.Config()
		for sm := 0; sm < cfg.SMs(); sm += 5 {
			for s := 0; s < cfg.L2Slices; s += 3 {
				lat := d.L2HitLatencyMean(sm, s)
				if lat < cfg.Cal.BaseRTT || lat > cfg.Cal.BaseRTT+500 {
					t.Fatalf("%s SM%d->slice%d latency %.0f outside sane band", cfg.Name, sm, s, lat)
				}
			}
		}
	}
}

// Property: ServingSliceID is idempotent and stays within the requester's
// partition exactly when local caching is on.
func TestServingSliceIdempotent(t *testing.T) {
	for _, d := range []*Device{v100(), h100()} {
		cfg := d.Config()
		for sm := 0; sm < cfg.SMs(); sm += 11 {
			for s := 0; s < cfg.L2Slices; s++ {
				once := d.ServingSliceID(sm, s)
				if twice := d.ServingSliceID(sm, once); twice != once {
					t.Fatalf("%s: serving slice not idempotent: %d -> %d -> %d", cfg.Name, s, once, twice)
				}
			}
		}
	}
}
