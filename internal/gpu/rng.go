package gpu

import "math"

// splitmix64 advances the given state and returns a well-mixed 64-bit
// value. It is the standard SplitMix64 generator, used here to derive
// deterministic per-(sm, slice, iteration) measurement noise and hash
// values so that every experiment in the repository is reproducible.
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix combines up to four 64-bit values into one hash.
func mix(vals ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unitFloat maps a hash to a uniform float64 in [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// gaussian maps a hash to a standard-normal sample via Box-Muller over two
// derived uniforms. One sample per hash keeps call sites stateless.
func gaussian(h uint64) float64 {
	u1 := unitFloat(splitmix64(h))
	u2 := unitFloat(splitmix64(h ^ 0xdeadbeefcafef00d))
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
