// Package gpu models the on-chip organization of modern NVIDIA GPUs at the
// granularity the paper characterizes: streaming multiprocessors (SMs)
// grouped into TPCs, (on H100) CPCs, and GPCs; L2 cache slices grouped into
// memory partitions (MPs); and, on A100/H100, two GPU "partitions" joined
// by a central interconnect. Round-trip L2 latency is derived from the
// physical floorplan (package floorplan), reproducing the paper's central
// finding that GPU NoC latency is non-uniform and placement-determined
// while bandwidth is approximately uniform.
package gpu

import (
	"fmt"

	"gpunoc/internal/floorplan"
	"gpunoc/internal/units"
)

// Generation identifies a modelled GPU generation.
type Generation string

// Supported generations.
const (
	GenV100 Generation = "V100"
	GenA100 Generation = "A100"
	GenH100 Generation = "H100"
)

// Calibration holds the latency-model constants for one GPU generation.
// All values are in core clock cycles unless stated otherwise. The defaults
// are calibrated against the paper's reported measurements (see
// EXPERIMENTS.md for the paper-vs-model comparison).
type Calibration struct {
	// BaseRTT is the placement-independent round-trip component: SM LSU
	// pipeline, L2 tag+data access, and fixed NoC serialization.
	BaseRTT units.Cycles

	// WireRTT is the round-trip wire+router delay per floorplan grid unit.
	WireRTT units.CyclesPerGU

	// SliceSpread is the within-MP latency spread: the extra cycles of the
	// farthest slice of an MP relative to its nearest (slices sit at fixed
	// offsets from the MP's NoC port). This component is common to all
	// SMs, which is why the latency-sorted slice order inside an MP is
	// identical from every SM (Fig. 3 / Observation #3).
	SliceSpread units.Cycles

	// MPExtraMax bounds the per-MP pseudo-random port overhead in cycles.
	MPExtraMax units.Cycles

	// SMOffsetTPCStep and SMOffsetOddStep place the SM inside its GPC:
	// each TPC index adds TPCStep cycles and the second SM of a TPC adds
	// OddStep. A pure per-SM constant, so it shifts but never reorders a
	// latency profile (Fig. 5).
	SMOffsetTPCStep units.Cycles
	SMOffsetOddStep units.Cycles

	// NoiseSigma is the per-measurement gaussian noise (clock jitter,
	// replay, arbitration) in cycles.
	NoiseSigma units.Cycles

	// CrossPenaltyRTT is the extra round-trip cost of crossing the GPU
	// partition interconnect for an L2 access (A100; H100 L2 hits never
	// cross because of partition-local caching).
	CrossPenaltyRTT units.Cycles

	// DRAMPenalty is the additional latency of an L2 miss serviced by the
	// local memory controller.
	DRAMPenalty units.Cycles

	// HomeCrossPenalty is the extra miss latency when the line's home DRAM
	// partition differs from the caching partition (H100 only; this is
	// what makes the H100 miss penalty non-constant in Fig. 8f).
	HomeCrossPenalty units.Cycles

	// DSMBase and DSMWire calibrate the H100 SM-to-SM (distributed shared
	// memory) network: latency = DSMBase + DSMWire * (hops via the GPC's
	// SM-to-SM switch) (Fig. 7b). DSMWire is cycles per hop.
	DSMBase units.Cycles
	DSMWire units.Cycles
}

// Config describes one GPU generation: its compute and memory hierarchy
// (the paper's Table I) plus floorplan and latency calibration.
type Config struct {
	Name       Generation
	GPCs       int
	TPCsPerGPC int
	SMsPerTPC  int
	// CPCsPerGPC is 0 when the generation has no CPC level (V100/A100).
	CPCsPerGPC int
	Partitions int
	L2Slices   int
	MPs        int

	// Table-I-style headline numbers.
	MemBWGBs       units.GBps // peak off-chip memory bandwidth
	L2FabricFactor float64    // aggregate L2 fabric BW as a multiple of MemBWGBs
	L2SizeMiB      int
	CoreClockMHz   int

	// CacheLineBytes is the L2 line size used by the address hash.
	CacheLineBytes units.Bytes

	// LocalL2Caching enables H100-style partition-local caching: L2 hits
	// are always served by a slice in the requester's partition.
	LocalL2Caching bool

	Floorplan floorplan.Spec
	Cal       Calibration

	// Seed perturbs all pseudo-random components (noise, hashes) so that
	// distinct Device instances can model distinct boards.
	Seed uint64
}

// SMs returns the total SM count.
func (c Config) SMs() int { return c.GPCs * c.TPCsPerGPC * c.SMsPerTPC }

// SMsPerGPC returns the SM count of one GPC.
func (c Config) SMsPerGPC() int { return c.TPCsPerGPC * c.SMsPerTPC }

// TPCsPerCPC returns the TPC count of one CPC, or 0 when the generation
// has no CPC level.
func (c Config) TPCsPerCPC() int {
	if c.CPCsPerGPC == 0 {
		return 0
	}
	return c.TPCsPerGPC / c.CPCsPerGPC
}

// SlicesPerMP returns the L2 slice count of one memory partition.
func (c Config) SlicesPerMP() int { return c.L2Slices / c.MPs }

// Validate checks the structural consistency of the configuration.
func (c Config) Validate() error {
	switch {
	case c.GPCs <= 0 || c.TPCsPerGPC <= 0 || c.SMsPerTPC <= 0:
		return fmt.Errorf("gpu: %s: non-positive hierarchy counts", c.Name)
	case c.Partitions <= 0 || c.GPCs%c.Partitions != 0:
		return fmt.Errorf("gpu: %s: %d GPCs not divisible across %d partitions", c.Name, c.GPCs, c.Partitions)
	case c.MPs <= 0 || c.L2Slices%c.MPs != 0:
		return fmt.Errorf("gpu: %s: %d L2 slices not divisible across %d MPs", c.Name, c.L2Slices, c.MPs)
	case c.MPs%c.Partitions != 0:
		return fmt.Errorf("gpu: %s: %d MPs not divisible across %d partitions", c.Name, c.MPs, c.Partitions)
	case c.CPCsPerGPC > 0 && c.TPCsPerGPC%c.CPCsPerGPC != 0:
		return fmt.Errorf("gpu: %s: %d TPCs not divisible across %d CPCs", c.Name, c.TPCsPerGPC, c.CPCsPerGPC)
	case c.CacheLineBytes <= 0 || c.CacheLineBytes&(c.CacheLineBytes-1) != 0:
		return fmt.Errorf("gpu: %s: cache line size %d not a positive power of two", c.Name, c.CacheLineBytes)
	case c.MemBWGBs <= 0 || c.L2FabricFactor <= 0:
		return fmt.Errorf("gpu: %s: non-positive bandwidth parameters", c.Name)
	}
	return nil
}

// V100 returns the modelled Volta configuration: 6 GPCs x 7 TPCs x 2 SMs,
// 32 L2 slices across 8 MPs, a single GPU partition, 900 GB/s HBM2.
func V100() Config {
	return Config{
		Name:           GenV100,
		GPCs:           6,
		TPCsPerGPC:     7,
		SMsPerTPC:      2,
		Partitions:     1,
		L2Slices:       32,
		MPs:            8,
		MemBWGBs:       900,
		L2FabricFactor: 2.4,
		L2SizeMiB:      6,
		CoreClockMHz:   1380,
		CacheLineBytes: 128,
		Floorplan: floorplan.Spec{
			Name: "V100", Partitions: 1, GPCs: 6, GPCRows: 2, MPs: 8,
			ColPitch: 2, MPPitch: 1.5,
		},
		Cal: Calibration{
			BaseRTT:         158,
			WireRTT:         7,
			SliceSpread:     15,
			MPExtraMax:      6,
			SMOffsetTPCStep: 1.0,
			SMOffsetOddStep: 0.5,
			NoiseSigma:      2,
			DRAMPenalty:     220,
		},
		Seed: 0x5100,
	}
}

// A100 returns the modelled Ampere configuration: 8 GPCs x 8 TPCs x 2 SMs
// split across two GPU partitions, 80 L2 slices across 10 MPs, 1555 GB/s
// HBM2e, and a partition-crossing penalty that yields the paper's ~400
// cycle far-partition L2 latency.
func A100() Config {
	return Config{
		Name:           GenA100,
		GPCs:           8,
		TPCsPerGPC:     8,
		SMsPerTPC:      2,
		Partitions:     2,
		L2Slices:       80,
		MPs:            10,
		MemBWGBs:       1555,
		L2FabricFactor: 3.0,
		L2SizeMiB:      40,
		CoreClockMHz:   1410,
		CacheLineBytes: 128,
		Floorplan: floorplan.Spec{
			Name: "A100", Partitions: 2, GPCs: 8, GPCRows: 1, MPs: 10,
			ColPitch: 2, MPPitch: 2.4, PartitionGap: 4,
		},
		Cal: Calibration{
			BaseRTT:         158,
			WireRTT:         7,
			SliceSpread:     15,
			MPExtraMax:      6,
			SMOffsetTPCStep: 1.0,
			SMOffsetOddStep: 0.5,
			NoiseSigma:      2,
			CrossPenaltyRTT: 75,
			DRAMPenalty:     230,
		},
		Seed: 0xa100,
	}
}

// H100 returns the modelled Hopper configuration: 8 GPCs x 9 TPCs x 2 SMs
// with 3 CPCs per GPC, two GPU partitions with partition-local L2 caching,
// 80 L2 slices across 10 MPs, and 3350 GB/s HBM3.
func H100() Config {
	return Config{
		Name:           GenH100,
		GPCs:           8,
		TPCsPerGPC:     9,
		SMsPerTPC:      2,
		CPCsPerGPC:     3,
		Partitions:     2,
		L2Slices:       80,
		MPs:            10,
		MemBWGBs:       3350,
		L2FabricFactor: 3.5,
		L2SizeMiB:      50,
		CoreClockMHz:   1590,
		CacheLineBytes: 128,
		LocalL2Caching: true,
		Floorplan: floorplan.Spec{
			Name: "H100", Partitions: 2, GPCs: 8, GPCRows: 1, CPCsPerGPC: 3, MPs: 10,
			ColPitch: 2, MPPitch: 2.4, PartitionGap: 4,
		},
		Cal: Calibration{
			BaseRTT:          162,
			WireRTT:          7,
			SliceSpread:      15,
			MPExtraMax:       6,
			SMOffsetTPCStep:  1.0,
			SMOffsetOddStep:  0.5,
			NoiseSigma:       2,
			DRAMPenalty:      250,
			HomeCrossPenalty: 170,
			DSMBase:          196,
			DSMWire:          4.25,
		},
		Seed: 0x100,
	}
}

// ByName returns the canonical configuration for a generation name,
// accepting the forms "V100", "v100", etc.
func ByName(name string) (Config, error) {
	switch Generation(normalizeGen(name)) {
	case GenV100:
		return V100(), nil
	case GenA100:
		return A100(), nil
	case GenH100:
		return H100(), nil
	}
	return Config{}, fmt.Errorf("gpu: unknown generation %q (want v100, a100, or h100)", name)
}

func normalizeGen(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// AllConfigs returns the three canonical generation configs in release
// order, for sweeps over generations (Table I, Fig. 6, Fig. 8...).
func AllConfigs() []Config {
	return []Config{V100(), A100(), H100()}
}
