package gpu

import (
	"fmt"

	"gpunoc/internal/floorplan"
	"gpunoc/internal/units"
)

// Device is an instantiated GPU model: a validated configuration plus its
// realized floorplan. A Device answers the questions the paper's
// micro-benchmarks put to real silicon: "what is the round-trip latency
// from SM s to L2 slice d?", "which slice does address a map to?",
// "what does a miss cost?".
//
// Device is immutable after New and safe for concurrent use.
type Device struct {
	cfg  Config
	plan *floorplan.Plan
}

// New builds a Device from cfg, validating it and laying out the
// floorplan.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := floorplan.Build(cfg.Floorplan)
	if err != nil {
		return nil, fmt.Errorf("gpu: %s floorplan: %w", cfg.Name, err)
	}
	if len(plan.GPCPos) != cfg.GPCs {
		return nil, fmt.Errorf("gpu: %s floorplan has %d GPCs, config has %d", cfg.Name, len(plan.GPCPos), cfg.GPCs)
	}
	if len(plan.MPPos) != cfg.MPs {
		return nil, fmt.Errorf("gpu: %s floorplan has %d MPs, config has %d", cfg.Name, len(plan.MPPos), cfg.MPs)
	}
	return &Device{cfg: cfg, plan: plan}, nil
}

// MustNew is New but panics on error, for the canonical configurations.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Plan returns the realized floorplan.
func (d *Device) Plan() *floorplan.Plan { return d.plan }

// --- Hierarchy enumeration -------------------------------------------------
//
// SMs are enumerated round-robin across GPCs (gpc = sm mod nGPC), matching
// the interleaving implied by the paper's SM-ID groupings: on the 6-GPC
// V100, SM 24 and SM 60 land in GPC0 while SM 28 and SM 64 land in GPC4,
// exactly the pairings of Fig. 3. The SM's local index within its GPC is
// sm / nGPC; consecutive local indices pair into TPCs.

// GPCOf returns the GPC hosting SM sm.
func (d *Device) GPCOf(sm int) int { return sm % d.cfg.GPCs }

// LocalIndex returns sm's index within its GPC (0-based).
func (d *Device) LocalIndex(sm int) int { return sm / d.cfg.GPCs }

// TPCOf returns the (gpc-local) TPC index of SM sm.
func (d *Device) TPCOf(sm int) int { return d.LocalIndex(sm) / d.cfg.SMsPerTPC }

// CPCOf returns the (gpc-local) CPC index of SM sm, or -1 when the
// generation has no CPC level.
func (d *Device) CPCOf(sm int) int {
	if d.cfg.CPCsPerGPC == 0 {
		return -1
	}
	return d.TPCOf(sm) / d.cfg.TPCsPerCPC()
}

// PartitionOfSM returns the GPU partition hosting SM sm.
func (d *Device) PartitionOfSM(sm int) int {
	return d.plan.GPCPartition[d.GPCOf(sm)]
}

// SMsOfGPC returns the SM IDs of GPC gpc in ascending order.
func (d *Device) SMsOfGPC(gpc int) []int {
	sms := make([]int, 0, d.cfg.SMsPerGPC())
	for local := 0; local < d.cfg.SMsPerGPC(); local++ {
		sms = append(sms, local*d.cfg.GPCs+gpc)
	}
	return sms
}

// SMsOfTPC returns the two SM IDs of TPC tpc within GPC gpc.
func (d *Device) SMsOfTPC(gpc, tpc int) []int {
	sms := make([]int, 0, d.cfg.SMsPerTPC)
	for i := 0; i < d.cfg.SMsPerTPC; i++ {
		local := tpc*d.cfg.SMsPerTPC + i
		sms = append(sms, local*d.cfg.GPCs+gpc)
	}
	return sms
}

// SMsOfCPC returns the SM IDs of CPC cpc within GPC gpc, or nil when the
// generation has no CPC level.
func (d *Device) SMsOfCPC(gpc, cpc int) []int {
	if d.cfg.CPCsPerGPC == 0 {
		return nil
	}
	tpcs := d.cfg.TPCsPerCPC()
	sms := make([]int, 0, tpcs*d.cfg.SMsPerTPC)
	for t := 0; t < tpcs; t++ {
		sms = append(sms, d.SMsOfTPC(gpc, cpc*tpcs+t)...)
	}
	return sms
}

// --- L2 slice enumeration ---------------------------------------------------
//
// Profiler slice IDs interleave memory partitions (mp = slice mod nMP),
// which is why raw latency-vs-slice-ID plots look jagged (Fig. 1a) until
// slices are regrouped by MP (Fig. 3).

// MPOfSlice returns the memory partition owning L2 slice s.
func (d *Device) MPOfSlice(s int) int { return s % d.cfg.MPs }

// SliceLocalIndex returns s's index within its memory partition.
func (d *Device) SliceLocalIndex(s int) int { return s / d.cfg.MPs }

// PartitionOfSlice returns the GPU partition hosting L2 slice s.
func (d *Device) PartitionOfSlice(s int) int {
	return d.plan.MPPartition[d.MPOfSlice(s)]
}

// SlicesOfMP returns the slice IDs of memory partition mp ascending.
func (d *Device) SlicesOfMP(mp int) []int {
	slices := make([]int, 0, d.cfg.SlicesPerMP())
	for local := 0; local < d.cfg.SlicesPerMP(); local++ {
		slices = append(slices, local*d.cfg.MPs+mp)
	}
	return slices
}

// SlicesOfPartition returns the slice IDs housed in GPU partition p.
func (d *Device) SlicesOfPartition(p int) []int {
	var slices []int
	for s := 0; s < d.cfg.L2Slices; s++ {
		if d.PartitionOfSlice(s) == p {
			slices = append(slices, s)
		}
	}
	return slices
}

// --- Latency model -----------------------------------------------------------

// smOffset is the fixed intra-GPC wiring offset of SM sm in cycles: a pure
// per-SM constant, so it shifts a latency profile without reordering it.
func (d *Device) smOffset(sm int) units.Cycles {
	local := d.LocalIndex(sm)
	tpc := local / d.cfg.SMsPerTPC
	odd := local % d.cfg.SMsPerTPC
	return d.cfg.Cal.SMOffsetTPCStep.Scale(float64(tpc)) + d.cfg.Cal.SMOffsetOddStep.Scale(float64(odd))
}

// sliceExtra is the fixed offset of slice s from its MP's NoC port. It is
// common to every SM, which forces the identical within-MP latency
// ordering the paper observes from all SMs (Fig. 3, Observation #3).
func (d *Device) sliceExtra(s int) units.Cycles {
	per := d.cfg.SlicesPerMP()
	if per <= 1 {
		return 0
	}
	// Slices are placed at pseudo-random but fixed offsets within the MP
	// so the latency-sorted order is nontrivial yet universal.
	h := mix(d.cfg.Seed, 0x51, uint64(s))
	return d.cfg.Cal.SliceSpread.Scale(unitFloat(h))
}

// mpExtra is the fixed port overhead of memory partition mp.
func (d *Device) mpExtra(mp int) units.Cycles {
	h := mix(d.cfg.Seed, 0x3b, uint64(mp))
	return d.cfg.Cal.MPExtraMax.Scale(unitFloat(h))
}

// noise returns the measurement noise for one (sm, slice, iter) sample.
func (d *Device) noise(sm, slice int, iter uint64) units.Cycles {
	h := mix(d.cfg.Seed, uint64(sm)<<20|uint64(slice), iter)
	return d.cfg.Cal.NoiseSigma.Scale(gaussian(h))
}

// effectiveHitSlice maps the addressed slice to the slice that actually
// serves an L2 hit. With H100-style partition-local caching, hits are
// served by a slice in the requester's partition at the same local
// position ("L2 caches data for memory accesses from SMs in GPCs directly
// connected to the partition").
func (d *Device) effectiveHitSlice(sm, slice int) int {
	if !d.cfg.LocalL2Caching {
		return slice
	}
	smPart := d.PartitionOfSM(sm)
	if d.PartitionOfSlice(slice) == smPart {
		return slice
	}
	// Mirror the slice into the local partition: same MP-local position,
	// mirrored MP index within the partition.
	mp := d.MPOfSlice(slice)
	mpPerPart := d.cfg.MPs / d.cfg.Partitions
	localMP := mp%mpPerPart + smPart*mpPerPart
	return d.SliceLocalIndex(slice)*d.cfg.MPs + localMP
}

// L2HitLatencyMean returns the noise-free round-trip latency in cycles of
// an L1-bypassing load from SM sm that hits in L2 slice slice. This is the
// quantity Algorithm 1 of the paper estimates by averaging timed loads.
func (d *Device) L2HitLatencyMean(sm, slice int) units.Cycles {
	slice = d.effectiveHitSlice(sm, slice)
	gpc := d.GPCOf(sm)
	mp := d.MPOfSlice(slice)
	cal := d.cfg.Cal

	lat := cal.BaseRTT + d.smOffset(sm) + d.sliceExtra(slice) + d.mpExtra(mp)
	lat += cal.WireRTT.Times(d.plan.GPCDistanceToMP(gpc, d.CPCOf(sm), mp))
	if d.plan.CrossesPartition(gpc, mp) {
		lat += cal.CrossPenaltyRTT
	}
	return lat
}

// L2HitLatency returns one noisy latency sample, deterministic in
// (device seed, sm, slice, iter).
func (d *Device) L2HitLatency(sm, slice int, iter uint64) units.Cycles {
	return d.L2HitLatencyMean(sm, slice) + d.noise(sm, slice, iter)
}

// L2MissPenaltyMean returns the noise-free additional cycles an L2 miss
// costs over a hit, for a line whose home memory partition is homeMP. On
// V100/A100 the penalty is constant (the MC is colocated with the slice);
// on H100 a line cached in the requester's partition but homed in DRAM of
// the other partition pays HomeCrossPenalty (Fig. 8f).
func (d *Device) L2MissPenaltyMean(sm, homeMP int) units.Cycles {
	pen := d.cfg.Cal.DRAMPenalty
	if d.cfg.LocalL2Caching && d.plan.MPPartition[homeMP] != d.PartitionOfSM(sm) {
		pen += d.cfg.Cal.HomeCrossPenalty
	}
	return pen
}

// L2MissPenalty returns one noisy miss-penalty sample.
func (d *Device) L2MissPenalty(sm, homeMP int, iter uint64) units.Cycles {
	return d.L2MissPenaltyMean(sm, homeMP) + d.noise(sm, homeMP+d.cfg.L2Slices, iter)
}

// SMToSMLatencyMean returns the noise-free latency of a distributed-
// shared-memory load from SM src to the shared memory of SM dst via the
// SM-to-SM network (H100 only; both SMs must be in the same GPC). The
// latency depends on the CPC-to-CPC distance through the GPC's SM-to-SM
// switch, which sits next to CPC0 (Fig. 7).
func (d *Device) SMToSMLatencyMean(src, dst int) (units.Cycles, error) {
	if d.cfg.CPCsPerGPC == 0 {
		return 0, fmt.Errorf("gpu: %s has no SM-to-SM network", d.cfg.Name)
	}
	if d.GPCOf(src) != d.GPCOf(dst) {
		return 0, fmt.Errorf("gpu: SM-to-SM network is per-GPC; SM%d (GPC%d) and SM%d (GPC%d) differ",
			src, d.GPCOf(src), dst, d.GPCOf(dst))
	}
	cal := d.cfg.Cal
	hops := float64(d.CPCOf(src)) + float64(d.CPCOf(dst))
	return cal.DSMBase + cal.DSMWire.Scale(hops), nil
}

// SMToSMLatency returns one noisy SM-to-SM latency sample.
func (d *Device) SMToSMLatency(src, dst int, iter uint64) (units.Cycles, error) {
	mean, err := d.SMToSMLatencyMean(src, dst)
	if err != nil {
		return 0, err
	}
	return mean + d.noise(src, dst, iter^0xd5a), nil
}

// --- Address hashing ----------------------------------------------------------

// HomeSlice returns the L2 slice an address hashes to, before any
// partition-local caching policy. Modern GPUs hash addresses across all
// slices to avoid memory camping (Sec. IV-C); we model this with a mixing
// hash of the line address.
func (d *Device) HomeSlice(addr uint64) int {
	line := addr / uint64(d.cfg.CacheLineBytes)
	return int(mix(d.cfg.Seed, 0xadd2, line) % uint64(d.cfg.L2Slices))
}

// HomeMP returns the memory partition whose controller owns addr's line.
func (d *Device) HomeMP(addr uint64) int {
	return d.MPOfSlice(d.HomeSlice(addr))
}

// ServingSlice returns the L2 slice that serves a hit on addr for a load
// from SM sm, applying partition-local caching when the generation has it.
func (d *Device) ServingSlice(sm int, addr uint64) int {
	return d.effectiveHitSlice(sm, d.HomeSlice(addr))
}

// ServingSliceID maps an addressed slice to the slice that actually serves
// hits for SM sm (identity except under H100 partition-local caching).
func (d *Device) ServingSliceID(sm, slice int) int {
	return d.effectiveHitSlice(sm, slice)
}

// AddressForSlice searches for an address whose home slice is the given
// slice, scanning line-aligned addresses from start. It mirrors what the
// paper's methodology does with the profiler: build M[s], the set of
// indices of D[] that map to slice s. The boolean is false if none is
// found within limit lines.
func (d *Device) AddressForSlice(slice int, start uint64, limit int) (uint64, bool) {
	lineBytes := uint64(d.cfg.CacheLineBytes)
	addr := start &^ (lineBytes - 1)
	for i := 0; i < limit; i++ {
		if d.HomeSlice(addr) == slice {
			return addr, true
		}
		addr += lineBytes
	}
	return 0, false
}
