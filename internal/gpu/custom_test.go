package gpu

import (
	"testing"

	"gpunoc/internal/stats"
)

func customSpec() CustomSpec {
	return CustomSpec{
		Name:           "X200",
		GPCs:           10,
		TPCsPerGPC:     8,
		Partitions:     2,
		L2Slices:       100,
		MPs:            10,
		MemBWGBs:       5000,
		L2FabricFactor: 3.2,
	}
}

func TestCustomBuildsValidDevice(t *testing.T) {
	cfg, err := Custom(customSpec())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Config().SMs() != 160 {
		t.Errorf("SMs = %d, want 160", dev.Config().SMs())
	}
	if dev.Config().L2SizeMiB == 0 || dev.Config().CoreClockMHz == 0 {
		t.Error("defaults not applied")
	}
	// The speculative design still shows the paper's phenomena:
	// non-uniform latency and a far-partition penalty.
	var near, far []float64
	for _, sm := range dev.SMsOfGPC(0) {
		for s := 0; s < cfg.L2Slices; s += 3 {
			l := float64(dev.L2HitLatencyMean(sm, s))
			if dev.PartitionOfSlice(s) == dev.PartitionOfSM(sm) {
				near = append(near, l)
			} else {
				far = append(far, l)
			}
		}
	}
	if stats.Mean(far) < stats.Mean(near)+50 {
		t.Errorf("custom partitioned design should show a crossing penalty: near %.0f far %.0f",
			stats.Mean(near), stats.Mean(far))
	}
	nearSum := stats.Summarize(near)
	if nearSum.Max-nearSum.Min < 20 {
		t.Error("custom design should still be latency-non-uniform")
	}
}

func TestCustomMonolithicPairsColumns(t *testing.T) {
	spec := customSpec()
	spec.Partitions = 1
	spec.GPCs = 6
	spec.L2Slices = 48
	spec.MPs = 8
	cfg, err := Custom(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Floorplan.GPCRows != 2 {
		t.Errorf("monolithic even-GPC design should pair columns, rows = %d", cfg.Floorplan.GPCRows)
	}
	if cfg.Cal.CrossPenaltyRTT != 0 {
		t.Error("monolithic design has no crossing penalty")
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCustomWithCPCsAndLocalCaching(t *testing.T) {
	spec := customSpec()
	spec.CPCsPerGPC = 4
	spec.LocalL2Caching = true
	cfg, err := Custom(spec)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dev.CPCOf(0) != 0 {
		t.Error("CPC level missing")
	}
	if _, err := dev.SMToSMLatencyMean(0, dev.SMsOfGPC(0)[5]); err != nil {
		t.Errorf("custom CPC design should have an SM-to-SM network: %v", err)
	}
	// Hits stay local.
	for s := 0; s < cfg.L2Slices; s += 7 {
		if dev.PartitionOfSlice(dev.ServingSliceID(0, s)) != dev.PartitionOfSM(0) {
			t.Fatal("local caching not applied")
		}
	}
}

func TestCustomValidation(t *testing.T) {
	bad := customSpec()
	bad.Name = ""
	if _, err := Custom(bad); err == nil {
		t.Error("unnamed spec should fail")
	}
	bad = customSpec()
	bad.GPCs = 5 // not divisible across 2 partitions
	if _, err := Custom(bad); err == nil {
		t.Error("indivisible GPCs should fail")
	}
	bad = customSpec()
	bad.MemBWGBs = 0
	if _, err := Custom(bad); err == nil {
		t.Error("zero bandwidth should fail")
	}
}
