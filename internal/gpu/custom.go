package gpu

import (
	"fmt"

	"gpunoc/internal/floorplan"
	"gpunoc/internal/units"
)

// CustomSpec describes a speculative GPU generation for design-space
// exploration: the paper's implications (provision the NoC so memory
// stays the bottleneck, expect placement-driven latency spread, watch
// partition effects) can then be evaluated on designs that do not exist.
type CustomSpec struct {
	Name       string
	GPCs       int
	TPCsPerGPC int
	// CPCsPerGPC is optional (0 = no CPC level).
	CPCsPerGPC int
	Partitions int
	L2Slices   int
	MPs        int
	// MemBWGBs is the off-chip peak bandwidth.
	MemBWGBs units.GBps
	// L2FabricFactor provisions the on-chip fabric as a multiple of
	// MemBWGBs (real GPUs: 2.4-3.5, Observation #7).
	L2FabricFactor float64
	// L2SizeMiB sizes the cache (0 defaults to 8 MiB per 1000 GB/s).
	L2SizeMiB int
	// CoreClockMHz defaults to 1400.
	CoreClockMHz int
	// LocalL2Caching opts into H100-style partition-local caching.
	LocalL2Caching bool
}

// Custom builds a validated Config for a speculative generation, deriving
// the floorplan from the hierarchy and reusing the V100-calibrated
// latency constants (with the A100-calibrated partition-crossing penalty
// when the design is partitioned).
func Custom(spec CustomSpec) (Config, error) {
	if spec.Name == "" {
		return Config{}, fmt.Errorf("gpu: custom generation needs a name")
	}
	clock := spec.CoreClockMHz
	if clock == 0 {
		clock = 1400
	}
	l2MiB := spec.L2SizeMiB
	if l2MiB == 0 {
		l2MiB = int(float64(spec.MemBWGBs)/1000*8) + 4
	}
	rows := 1
	gpcPerPart := 0
	if spec.Partitions > 0 {
		gpcPerPart = spec.GPCs / spec.Partitions
	}
	// Pair GPCs into columns when that divides evenly and the design is
	// monolithic, like V100; otherwise one GPC per column.
	if spec.Partitions == 1 && gpcPerPart%2 == 0 {
		rows = 2
	}
	cols := gpcPerPart / rows
	mpPerPart := 0
	if spec.Partitions > 0 {
		mpPerPart = spec.MPs / spec.Partitions
	}
	// Keep the MP band wider than the GPC array (the die-periphery
	// placement all canonical floorplans use).
	mpPitch := 1.5
	if cols > 0 && mpPerPart > 0 {
		for float64(mpPerPart)*mpPitch < float64(cols)*2 {
			mpPitch *= 1.5
		}
	}
	cal := Calibration{
		BaseRTT:         158,
		WireRTT:         7,
		SliceSpread:     15,
		MPExtraMax:      6,
		SMOffsetTPCStep: 1.0,
		SMOffsetOddStep: 0.5,
		NoiseSigma:      2,
		DRAMPenalty:     230,
	}
	if spec.Partitions > 1 {
		cal.CrossPenaltyRTT = 75
	}
	if spec.LocalL2Caching {
		cal.CrossPenaltyRTT = 0
		cal.HomeCrossPenalty = 170
	}
	if spec.CPCsPerGPC > 0 {
		cal.DSMBase = 196
		cal.DSMWire = 4.25
	}
	cfg := Config{
		Name:           Generation(spec.Name),
		GPCs:           spec.GPCs,
		TPCsPerGPC:     spec.TPCsPerGPC,
		SMsPerTPC:      2,
		CPCsPerGPC:     spec.CPCsPerGPC,
		Partitions:     spec.Partitions,
		L2Slices:       spec.L2Slices,
		MPs:            spec.MPs,
		MemBWGBs:       spec.MemBWGBs,
		L2FabricFactor: spec.L2FabricFactor,
		L2SizeMiB:      l2MiB,
		CoreClockMHz:   clock,
		CacheLineBytes: 128,
		LocalL2Caching: spec.LocalL2Caching,
		Cal:            cal,
		Floorplan: floorplan.Spec{
			Name:       spec.Name,
			Partitions: spec.Partitions,
			GPCs:       spec.GPCs,
			GPCRows:    rows,
			CPCsPerGPC: spec.CPCsPerGPC,
			MPs:        spec.MPs,
			ColPitch:   2,
			MPPitch:    mpPitch,
			PartitionGap: func() float64 {
				if spec.Partitions > 1 {
					return 4
				}
				return 0
			}(),
		},
		Seed: mix(0xc057, uint64(len(spec.Name)), uint64(spec.GPCs)<<16|uint64(spec.L2Slices)),
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
