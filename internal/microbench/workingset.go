package microbench

import (
	"fmt"

	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
)

// WorkingSetPoint is one point of a working-set latency sweep.
type WorkingSetPoint struct {
	SizeBytes  int
	MeanCycles float64
	L2HitRate  float64
}

// WorkingSetSweep runs the classic pointer-chase capacity sweep with the
// L2 genuinely modelled: for each working-set size, one warm pass streams
// the set through the (reset) slice caches and a timed pass measures mean
// access latency. Sets that fit in the aggregate L2 hit after warm-up
// (the regime all of the paper's latency measurements operate in); sets
// beyond capacity thrash under LRU and pay the DRAM fill, so latency
// steps up at the L2 size - the boundary the paper's methodology
// carefully stays inside.
func WorkingSetSweep(dev *gpu.Device, sm int, sizesBytes []int) ([]WorkingSetPoint, error) {
	if len(sizesBytes) == 0 {
		return nil, fmt.Errorf("microbench: no working-set sizes")
	}
	cfg := dev.Config()
	if sm < 0 || sm >= cfg.SMs() {
		return nil, fmt.Errorf("microbench: SM %d out of range", sm)
	}
	opts := kernel.DefaultOptions()
	opts.ModelL2 = true
	m, err := kernel.NewMachine(dev, kernel.PinnedScheduler{SM: sm}, opts)
	if err != nil {
		return nil, err
	}
	stride := uint64(cfg.CacheLineBytes)
	out := make([]WorkingSetPoint, 0, len(sizesBytes))
	for _, size := range sizesBytes {
		if size <= 0 {
			return nil, fmt.Errorf("microbench: non-positive working-set size %d", size)
		}
		m.ResetL2()
		lines := uint64(size) / stride
		if lines == 0 {
			lines = 1
		}
		var total float64
		var count int
		_, err := m.Launch(1, 1, func(w *kernel.Warp) {
			// Warm pass.
			for a := uint64(0); a < lines; a++ {
				w.LoadCG([]uint64{a * stride})
			}
			// Timed pass.
			for a := uint64(0); a < lines; a++ {
				t0 := w.Clock()
				w.LoadCG([]uint64{a * stride})
				total += w.Clock() - t0
				count++
			}
		})
		if err != nil {
			return nil, err
		}
		out = append(out, WorkingSetPoint{
			SizeBytes:  size,
			MeanCycles: total / float64(count),
			L2HitRate:  m.L2HitRate(),
		})
	}
	return out, nil
}
