package microbench

import "gpunoc/internal/obs"

// Bench threads observability through a measurement campaign: every
// latency probe and measurement routed through one Bench increments its
// counters. Counters are atomic, so the parallel row sharding of
// LatencyMatrix/GPCToMPLatency counts correctly from every worker. The
// zero Bench (nil counters) is the disabled collector - each counter
// call is a nil-safe no-op - and backs the package-level measurement
// functions, which stay instrument-free.
type Bench struct {
	// measurements counts Algorithm-1 (and remote-shared) measurement
	// calls, one per (sm, slice) pair probed.
	measurements *obs.Counter
	// probes counts timed load iterations issued across measurements.
	probes *obs.Counter
}

// NewBench builds a bench recording into a registry scope. NewBench(nil)
// returns a disabled bench, so callers can thread an optional registry
// straight through.
func NewBench(reg *obs.Registry) *Bench {
	return &Bench{
		measurements: reg.Counter("measurements"),
		probes:       reg.Counter("probes"),
	}
}

// defaultBench is the disabled bench behind the package-level functions.
var defaultBench = &Bench{}
