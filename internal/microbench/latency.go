// Package microbench implements the paper's measurement methodology
// (Sec. II-C): Algorithm 1, the single-thread L2 latency probe, and
// Algorithm 2, the multi-threaded L2-fabric bandwidth stream, plus the two
// address-to-slice mapping techniques (profiler counters on V100, the
// contention probe on A100/H100 where per-slice counters are gone).
package microbench

import (
	"fmt"

	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/parallel"
	"gpunoc/internal/stats"
)

// LatencyResult summarizes one latency measurement.
type LatencyResult struct {
	Samples []float64
	Summary stats.Describe
}

// addressSearchLimit bounds the scan for an address mapping to a slice.
const addressSearchLimit = 1 << 16

// MeasureL2Latency runs Algorithm 1: a single thread pinned on SM sm
// issues L1-bypassing loads to an address resident in L2 slice slice,
// timing each round trip with the warp clock. The L2 is warmed before
// timing so every access hits.
func MeasureL2Latency(dev *gpu.Device, sm, slice, iters int) (LatencyResult, error) {
	return defaultBench.MeasureL2Latency(dev, sm, slice, iters)
}

// MeasureL2Latency is the instrumented form of the package-level
// function.
func (b *Bench) MeasureL2Latency(dev *gpu.Device, sm, slice, iters int) (LatencyResult, error) {
	return b.measureLatency(dev, sm, slice, iters, false)
}

// MeasureL2MissLatency is Algorithm 1 with a working set that always
// misses in L2, so each timed access pays the home memory partition's
// fill latency on top of the NoC round trip (the Fig. 8 bottom row).
func MeasureL2MissLatency(dev *gpu.Device, sm, slice, iters int) (LatencyResult, error) {
	return defaultBench.MeasureL2MissLatency(dev, sm, slice, iters)
}

// MeasureL2MissLatency is the instrumented form of the package-level
// function.
func (b *Bench) MeasureL2MissLatency(dev *gpu.Device, sm, slice, iters int) (LatencyResult, error) {
	return b.measureLatency(dev, sm, slice, iters, true)
}

func (b *Bench) measureLatency(dev *gpu.Device, sm, slice, iters int, miss bool) (LatencyResult, error) {
	cfg := dev.Config()
	if sm < 0 || sm >= cfg.SMs() {
		return LatencyResult{}, fmt.Errorf("microbench: SM %d out of range", sm)
	}
	if slice < 0 || slice >= cfg.L2Slices {
		return LatencyResult{}, fmt.Errorf("microbench: slice %d out of range", slice)
	}
	if iters <= 0 {
		return LatencyResult{}, fmt.Errorf("microbench: iters must be positive, got %d", iters)
	}
	addr, ok := dev.AddressForSlice(slice, 0, addressSearchLimit)
	if !ok {
		return LatencyResult{}, fmt.Errorf("microbench: no address maps to slice %d", slice)
	}
	m, err := kernel.NewMachine(dev, kernel.PinnedScheduler{SM: sm}, kernel.DefaultOptions())
	if err != nil {
		return LatencyResult{}, err
	}
	b.measurements.Inc()
	b.probes.Add(int64(iters))
	samples := make([]float64, 0, iters)
	// Algorithm 1 uses one thread of one warp: no coalescing, no
	// contention from other lanes.
	_, err = m.Launch(1, 1, func(w *kernel.Warp) {
		addrs := []uint64{addr}
		w.LoadCG(addrs) // warm up: bring the line into L2
		for i := 0; i < iters; i++ {
			t0 := w.Clock()
			if miss {
				w.LoadCGMiss(addrs)
			} else {
				w.LoadCG(addrs)
			}
			samples = append(samples, w.Clock()-t0)
		}
	})
	if err != nil {
		return LatencyResult{}, err
	}
	return LatencyResult{Samples: samples, Summary: stats.Summarize(samples)}, nil
}

// LatencyProfile returns the mean L2 hit latency from SM sm to every L2
// slice, the per-SM "profile" whose pairwise Pearson correlation drives
// the placement analysis of Sec. III-B.
func LatencyProfile(dev *gpu.Device, sm, iters int) ([]float64, error) {
	return defaultBench.LatencyProfile(dev, sm, iters)
}

// LatencyProfile is the instrumented form of the package-level function.
func (b *Bench) LatencyProfile(dev *gpu.Device, sm, iters int) ([]float64, error) {
	cfg := dev.Config()
	out := make([]float64, cfg.L2Slices)
	for s := 0; s < cfg.L2Slices; s++ {
		r, err := b.MeasureL2Latency(dev, sm, s, iters)
		if err != nil {
			return nil, err
		}
		out[s] = r.Summary.Mean
	}
	return out, nil
}

// LatencyMatrix measures the full [SM][slice] mean-latency matrix,
// sharding one worker per SM row. sms selects the rows; nil means every
// SM. workers <= 0 selects the GOMAXPROCS-derived default; rows land in
// index-addressed slots, so the matrix is identical for every worker
// count. Each row's measurements build their own kernel.Machine, and the
// shared *gpu.Device is immutable after construction, so rows race on
// nothing.
func LatencyMatrix(dev *gpu.Device, sms []int, iters, workers int) ([][]float64, error) {
	return defaultBench.LatencyMatrix(dev, sms, iters, workers)
}

// LatencyMatrix is the instrumented form of the package-level function;
// the bench's atomic counters aggregate correctly across row workers.
func (b *Bench) LatencyMatrix(dev *gpu.Device, sms []int, iters, workers int) ([][]float64, error) {
	if sms == nil {
		cfg := dev.Config()
		sms = make([]int, cfg.SMs())
		for i := range sms {
			sms[i] = i
		}
	}
	return parallel.Map(workers, len(sms), func(i int) ([]float64, error) {
		return b.LatencyProfile(dev, sms[i], iters)
	})
}

// CorrelationHeatmap computes the SM-by-SM Pearson correlation matrix of
// latency profiles (Fig. 6), with profile rows measured in parallel.
// sms selects the SMs; nil means all. workers <= 0 selects the default.
func CorrelationHeatmap(dev *gpu.Device, sms []int, iters, workers int) ([][]float64, error) {
	return defaultBench.CorrelationHeatmap(dev, sms, iters, workers)
}

// CorrelationHeatmap is the instrumented form of the package-level
// function.
func (b *Bench) CorrelationHeatmap(dev *gpu.Device, sms []int, iters, workers int) ([][]float64, error) {
	profiles, err := b.LatencyMatrix(dev, sms, iters, workers)
	if err != nil {
		return nil, err
	}
	return stats.CorrelationMatrix(profiles)
}

// SMToSMLatencyMatrix measures the H100 distributed-shared-memory latency
// between CPC pairs of one GPC (Fig. 7b): entry [i][j] is the mean latency
// of a remote-shared-memory load from a CPC-i SM to a CPC-j SM.
func SMToSMLatencyMatrix(dev *gpu.Device, gpc, iters int) ([][]float64, error) {
	cfg := dev.Config()
	if cfg.CPCsPerGPC == 0 {
		return nil, fmt.Errorf("microbench: %s has no SM-to-SM network", cfg.Name)
	}
	if gpc < 0 || gpc >= cfg.GPCs {
		return nil, fmt.Errorf("microbench: GPC %d out of range", gpc)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("microbench: iters must be positive, got %d", iters)
	}
	n := cfg.CPCsPerGPC
	// The probe loads from a CPC's second SM into the first SM of the
	// peer CPC, so every CPC must expose at least two SMs; a gpu.Custom
	// design with a single SM per CPC cannot host the measurement.
	for cpc := 0; cpc < n; cpc++ {
		if got := len(dev.SMsOfCPC(gpc, cpc)); got < 2 {
			return nil, fmt.Errorf("microbench: GPC %d CPC %d has %d SM(s); the SM-to-SM probe needs at least 2 per CPC", gpc, cpc, got)
		}
	}
	out := make([][]float64, n)
	for src := 0; src < n; src++ {
		out[src] = make([]float64, n)
		srcSM := dev.SMsOfCPC(gpc, src)[0]
		for dst := 0; dst < n; dst++ {
			dstSM := dev.SMsOfCPC(gpc, dst)[1]
			mean, err := remoteSharedMean(dev, srcSM, dstSM, iters)
			if err != nil {
				return nil, err
			}
			out[src][dst] = mean
		}
	}
	return out, nil
}

// remoteSharedMean times iters remote-shared-memory loads from srcSM to
// dstSM and returns their mean latency. A failed remote load fails the
// whole measurement, not silently deflates the mean: the error is carried
// out of the warp closure, and the mean divides by the iterations that
// actually completed rather than by iters.
func remoteSharedMean(dev *gpu.Device, srcSM, dstSM, iters int) (float64, error) {
	m, err := kernel.NewMachine(dev, kernel.PinnedScheduler{SM: srcSM}, kernel.DefaultOptions())
	if err != nil {
		return 0, err
	}
	var sum float64
	var done int
	var loadErr error
	_, err = m.Launch(1, 1, func(w *kernel.Warp) {
		for i := 0; i < iters; i++ {
			lat, err := w.LoadRemoteShared(dstSM)
			if err != nil {
				loadErr = err
				return
			}
			sum += lat
			done++
		}
	})
	if err != nil {
		return 0, err
	}
	if loadErr != nil {
		return 0, fmt.Errorf("microbench: remote-shared load SM%d->SM%d after %d/%d iterations: %w",
			srcSM, dstSM, done, iters, loadErr)
	}
	return sum / float64(done), nil
}

// GPCToMPLatency returns the average L2 hit latency from the SMs of each
// GPC to the slices of one MP (the Fig. 8 top row), indexed by GPC, with
// one worker per GPC row. workers <= 0 selects the default.
func GPCToMPLatency(dev *gpu.Device, mp, iters, workers int) ([]float64, error) {
	return defaultBench.GPCToMPLatency(dev, mp, iters, workers)
}

// GPCToMPLatency is the instrumented form of the package-level function.
func (b *Bench) GPCToMPLatency(dev *gpu.Device, mp, iters, workers int) ([]float64, error) {
	cfg := dev.Config()
	if mp < 0 || mp >= cfg.MPs {
		return nil, fmt.Errorf("microbench: MP %d out of range", mp)
	}
	return parallel.Map(workers, cfg.GPCs, func(g int) (float64, error) {
		var xs []float64
		for _, sm := range dev.SMsOfGPC(g) {
			for _, s := range dev.SlicesOfMP(mp) {
				r, err := b.MeasureL2Latency(dev, sm, s, iters)
				if err != nil {
					return 0, err
				}
				xs = append(xs, r.Summary.Mean)
			}
		}
		return stats.Mean(xs), nil
	})
}

// GPCToMPMissPenalty returns the average L2 miss penalty (miss latency
// minus hit latency) from each GPC's SMs for lines homed in one MP
// (the Fig. 8 bottom row), with one worker per GPC row. workers <= 0
// selects the default.
func GPCToMPMissPenalty(dev *gpu.Device, mp, iters, workers int) ([]float64, error) {
	return defaultBench.GPCToMPMissPenalty(dev, mp, iters, workers)
}

// GPCToMPMissPenalty is the instrumented form of the package-level
// function.
func (b *Bench) GPCToMPMissPenalty(dev *gpu.Device, mp, iters, workers int) ([]float64, error) {
	cfg := dev.Config()
	if mp < 0 || mp >= cfg.MPs {
		return nil, fmt.Errorf("microbench: MP %d out of range", mp)
	}
	return parallel.Map(workers, cfg.GPCs, func(g int) (float64, error) {
		var xs []float64
		for _, sm := range dev.SMsOfGPC(g) {
			for _, s := range dev.SlicesOfMP(mp) {
				hit, err := b.MeasureL2Latency(dev, sm, s, iters)
				if err != nil {
					return 0, err
				}
				miss, err := b.MeasureL2MissLatency(dev, sm, s, iters)
				if err != nil {
					return 0, err
				}
				xs = append(xs, miss.Summary.Mean-hit.Summary.Mean)
			}
		}
		return stats.Mean(xs), nil
	})
}
