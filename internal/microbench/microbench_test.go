package microbench

import (
	"errors"
	"strings"
	"testing"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/profiler"
	"gpunoc/internal/stats"
)

func v100(t *testing.T) *gpu.Device {
	t.Helper()
	return gpu.MustNew(gpu.V100())
}

func engine(t *testing.T, cfg gpu.Config) *bandwidth.Engine {
	t.Helper()
	e, err := bandwidth.NewEngine(gpu.MustNew(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMeasureL2LatencyBasic(t *testing.T) {
	dev := v100(t)
	r, err := MeasureL2Latency(dev, 24, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.N != 32 {
		t.Fatalf("samples = %d, want 32", r.Summary.N)
	}
	if r.Summary.Mean < 170 || r.Summary.Mean > 270 {
		t.Errorf("latency %.1f outside the plausible V100 band", r.Summary.Mean)
	}
	// The measured mean approximates the model's mean for that pair.
	want := float64(dev.L2HitLatencyMean(24, 5))
	if diff := r.Summary.Mean - want; diff > 3 || diff < -3 {
		t.Errorf("measured %.1f vs model %.1f", r.Summary.Mean, want)
	}
}

func TestMeasureL2LatencyValidation(t *testing.T) {
	dev := v100(t)
	if _, err := MeasureL2Latency(dev, -1, 0, 4); err == nil {
		t.Error("bad SM should fail")
	}
	if _, err := MeasureL2Latency(dev, 0, 99, 4); err == nil {
		t.Error("bad slice should fail")
	}
	if _, err := MeasureL2Latency(dev, 0, 0, 0); err == nil {
		t.Error("zero iters should fail")
	}
}

func TestMissLatencyExceedsHit(t *testing.T) {
	dev := v100(t)
	hit, err := MeasureL2Latency(dev, 0, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := MeasureL2MissLatency(dev, 0, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Summary.Mean < hit.Summary.Mean+150 {
		t.Errorf("miss %.0f should exceed hit %.0f by the DRAM penalty", miss.Summary.Mean, hit.Summary.Mean)
	}
}

func TestLatencyProfileNonUniform(t *testing.T) {
	dev := v100(t)
	prof, err := LatencyProfile(dev, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 32 {
		t.Fatalf("profile length %d", len(prof))
	}
	sum := stats.Summarize(prof)
	if sum.Max-sum.Min < 30 {
		t.Errorf("profile spread %.1f too small; Observation #1 expects strong non-uniformity", sum.Max-sum.Min)
	}
}

func TestCorrelationHeatmapStructure(t *testing.T) {
	dev := v100(t)
	// One SM per GPC for speed: SMs 0..5 are GPCs 0..5.
	sms := []int{0, 1, 2, 3, 4, 5}
	hm, err := CorrelationHeatmap(dev, sms, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hm[0][1] < 0.85 {
		t.Errorf("GPC0-GPC1 measured correlation %.2f, want high", hm[0][1])
	}
	if hm[0][4] > 0.3 {
		t.Errorf("GPC0-GPC4 measured correlation %.2f, want low", hm[0][4])
	}
}

func TestSMToSMLatencyMatrixH100(t *testing.T) {
	dev := gpu.MustNew(gpu.H100())
	m, err := SMToSMLatencyMatrix(dev, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("matrix rank %d, want 3", len(m))
	}
	if !(m[0][0] < m[1][1] && m[1][1] < m[2][2]) {
		t.Errorf("diagonal should increase with CPC distance from the switch: %v %v %v", m[0][0], m[1][1], m[2][2])
	}
	if m[0][0] < 185 || m[0][0] > 210 {
		t.Errorf("CPC0-CPC0 latency %.1f outside [185, 210] (paper 196)", m[0][0])
	}
	if _, err := SMToSMLatencyMatrix(v100(t), 0, 4); err == nil {
		t.Error("V100 should not have an SM-to-SM matrix")
	}
	if _, err := SMToSMLatencyMatrix(dev, 99, 4); err == nil {
		t.Error("bad GPC should fail")
	}
}

func TestGPCToMPLatencyPartitions(t *testing.T) {
	// A100, destination MP0 (partition 0): GPCs 0-3 near, 4-7 far.
	dev := gpu.MustNew(gpu.A100())
	lat, err := GPCToMPLatency(dev, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		if lat[g] > 260 {
			t.Errorf("near GPC%d latency %.0f too high", g, lat[g])
		}
	}
	for g := 4; g < 8; g++ {
		if lat[g] < 350 {
			t.Errorf("far GPC%d latency %.0f should be ~400", g, lat[g])
		}
	}
}

func TestGPCToMPLatencyH100Uniform(t *testing.T) {
	dev := gpu.MustNew(gpu.H100())
	lat, err := GPCToMPLatency(dev, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// "Much more uniform across the GPCs" than A100's ~190-cycle near/far
	// split: the residual spread is only the intra-partition column
	// geometry.
	if spread := stats.Max(lat) - stats.Min(lat); spread > 60 {
		t.Errorf("H100 per-GPC hit latency spread %.0f; local caching should keep it well under A100's ~190", spread)
	}
	for g, l := range lat {
		if l > 300 {
			t.Errorf("H100 GPC%d hit latency %.0f; no GPC should see far-partition hits", g, l)
		}
	}
}

func TestGPCToMPMissPenalty(t *testing.T) {
	// V100: constant. H100: varies with requester partition.
	v := v100(t)
	pen, err := GPCToMPMissPenalty(v, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spread := stats.Max(pen) - stats.Min(pen); spread > 10 {
		t.Errorf("V100 miss penalty spread %.0f, want ~constant", spread)
	}
	h := gpu.MustNew(gpu.H100())
	penH, err := GPCToMPMissPenalty(h, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spread := stats.Max(penH) - stats.Min(penH); spread < 100 {
		t.Errorf("H100 miss penalty spread %.0f, want home-partition dependence", spread)
	}
	if _, err := GPCToMPMissPenalty(v, 99, 2, 0); err == nil {
		t.Error("bad MP should fail")
	}
	if _, err := GPCToMPLatency(v, 99, 2, 0); err == nil {
		t.Error("bad MP should fail")
	}
}

func TestSliceBandwidth(t *testing.T) {
	eng := engine(t, gpu.V100())
	bw, err := SliceBandwidth(eng, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bw < 25 || bw > 40 {
		t.Errorf("single-SM slice bandwidth %.1f outside [25, 40]", bw)
	}
	if _, err := SliceBandwidth(eng, nil, 0); err == nil {
		t.Error("empty SM set should fail")
	}
}

func TestAggregateAndMemoryBandwidth(t *testing.T) {
	eng := engine(t, gpu.V100())
	fabric, err := AggregateFabricBandwidth(eng)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := MemoryBandwidth(eng)
	if err != nil {
		t.Fatal(err)
	}
	if fabric/mem < 2 {
		t.Errorf("fabric %.0f / memory %.0f = %.2f, want > 2 (Observation #7)", fabric, mem, fabric/mem)
	}
}

func TestSpeedupTPC(t *testing.T) {
	eng := engine(t, gpu.V100())
	dev := eng.Device()
	s, err := Speedup(eng, dev.SMsOfTPC(0, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1.85 || s > 2.05 {
		t.Errorf("TPC read speedup %.2f, want ~2", s)
	}
	if _, err := Speedup(eng, nil, false); err == nil {
		t.Error("empty SM set should fail")
	}
}

func TestBuildSliceMapProfilerV100(t *testing.T) {
	dev := v100(t)
	p := profiler.New(dev)
	m, err := BuildSliceMapProfiler(dev, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Every address is attributed to its true slice.
	for s, addrs := range m.Addrs {
		for _, a := range addrs {
			if dev.HomeSlice(a) != s {
				t.Fatalf("address %#x attributed to slice %d, home is %d", a, s, dev.HomeSlice(a))
			}
		}
	}
	if _, err := m.AddressFor(0); err != nil {
		t.Errorf("slice 0 should have addresses after 256 lines: %v", err)
	}
	if _, err := BuildSliceMapProfiler(dev, p, 0); err == nil {
		t.Error("zero lines should fail")
	}
}

func TestBuildSliceMapProfilerFailsAggregated(t *testing.T) {
	dev := gpu.MustNew(gpu.A100())
	p := profiler.New(dev)
	_, err := BuildSliceMapProfiler(dev, p, 8)
	if !errors.Is(err, profiler.ErrAggregatedOnly) {
		t.Errorf("want ErrAggregatedOnly on A100, got %v", err)
	}
}

func TestContentionProbeAgreesWithHash(t *testing.T) {
	eng := engine(t, gpu.A100())
	dev := eng.Device()
	cp, err := NewContentionProber(eng, 8)
	if err != nil {
		t.Fatal(err)
	}
	lineBytes := uint64(dev.Config().CacheLineBytes)
	checked := 0
	for i := uint64(1); i < 40 && checked < 12; i++ {
		a, b := uint64(0), i*lineBytes
		same, err := cp.SameSlice(a, b)
		if err != nil {
			t.Fatal(err)
		}
		truth := dev.ServingSlice(0, a) == dev.ServingSlice(8, b)
		if same != truth {
			t.Errorf("contention probe for line %d said %v, hash says %v", i, same, truth)
		}
		checked++
	}
}

func TestBuildSliceMapByContentionGroups(t *testing.T) {
	eng := engine(t, gpu.V100())
	dev := eng.Device()
	m, classes, err := BuildSliceMapByContention(eng, 24)
	if err != nil {
		t.Fatal(err)
	}
	if classes < 2 {
		t.Fatalf("found %d classes, want several", classes)
	}
	// Discovery labels are arbitrary, but grouping must match the hash:
	// same class <=> same home slice.
	for c, addrs := range m.Addrs {
		ref := dev.HomeSlice(addrs[0])
		for _, a := range addrs {
			if dev.HomeSlice(a) != ref {
				t.Fatalf("class %d mixes slices %d and %d", c, ref, dev.HomeSlice(a))
			}
		}
	}
	if _, _, err := BuildSliceMapByContention(eng, 0); err == nil {
		t.Error("zero lines should fail")
	}
}

func TestNewContentionProberValidation(t *testing.T) {
	eng := engine(t, gpu.V100())
	if _, err := NewContentionProber(eng, 0); err == nil {
		t.Error("zero group should fail")
	}
	if _, err := NewContentionProber(eng, 99); err == nil {
		t.Error("oversized group should fail")
	}
}

func TestMPBandwidth(t *testing.T) {
	eng := engine(t, gpu.V100())
	bw, err := MPBandwidth(eng, eng.Device().SMsOfGPC(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if bw < 50 || bw > 400 {
		t.Errorf("GPC->MP bandwidth %.0f implausible", bw)
	}
}

func TestLatencyMatrixDefaultsToAllSMs(t *testing.T) {
	// On a tiny custom device the full matrix stays cheap.
	cfg, err := gpu.Custom(gpu.CustomSpec{
		Name: "tiny", GPCs: 2, TPCsPerGPC: 2, Partitions: 1,
		L2Slices: 8, MPs: 2, MemBWGBs: 500, L2FabricFactor: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LatencyMatrix(dev, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != cfg.SMs() || len(m[0]) != cfg.L2Slices {
		t.Errorf("matrix %dx%d, want %dx%d", len(m), len(m[0]), cfg.SMs(), cfg.L2Slices)
	}
}

func TestSliceMapAddressForErrors(t *testing.T) {
	m := &SliceMap{Addrs: [][]uint64{{0x100}, nil}}
	if _, err := m.AddressFor(0); err != nil {
		t.Error(err)
	}
	if _, err := m.AddressFor(1); err == nil {
		t.Error("empty slice entry should fail")
	}
	if _, err := m.AddressFor(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := m.AddressFor(9); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestSMToSMLatencyMatrixValidatesInput(t *testing.T) {
	dev := gpu.MustNew(gpu.H100())
	if _, err := SMToSMLatencyMatrix(dev, 0, 0); err == nil {
		t.Error("iters=0 should fail")
	}
	if _, err := SMToSMLatencyMatrix(dev, 0, -3); err == nil {
		t.Error("negative iters should fail")
	}
}

func TestSMToSMLatencyMatrixRejectsSingleSMCPCs(t *testing.T) {
	// A speculative design with one SM per CPC cannot host the probe,
	// which loads from the peer CPC's second SM; the old code indexed
	// SMsOfCPC(...)[1] and panicked. It must now be a descriptive error.
	cfg := gpu.H100()
	cfg.SMsPerTPC = 1
	cfg.CPCsPerGPC = 9
	dev, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = SMToSMLatencyMatrix(dev, 0, 4)
	if err == nil {
		t.Fatal("1 SM per CPC should fail, not panic")
	}
	if want := "needs at least 2 per CPC"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestRemoteSharedLoadErrorPropagates(t *testing.T) {
	// A LoadRemoteShared failure inside the warp closure must fail the
	// measurement; the old code ignored it and returned sum/iters, a
	// silently deflated mean. A cross-GPC destination makes the load fail.
	dev := gpu.MustNew(gpu.H100())
	srcSM := dev.SMsOfGPC(0)[0]
	dstSM := dev.SMsOfGPC(1)[0]
	mean, err := remoteSharedMean(dev, srcSM, dstSM, 4)
	if err == nil {
		t.Fatalf("cross-GPC remote load returned mean %.1f, want error", mean)
	}
	if want := "remote-shared load"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestLatencyMatrixWorkerCountInvariant(t *testing.T) {
	// The parallel runner's index-addressed slots make the matrix
	// identical (not just statistically equivalent) for every pool size.
	dev := v100(t)
	sms := []int{0, 7, 40, 79}
	seq, err := LatencyMatrix(dev, sms, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 16} {
		par, err := LatencyMatrix(dev, sms, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			for j := range seq[i] {
				if seq[i][j] != par[i][j] {
					t.Fatalf("workers=%d: [%d][%d] = %v, want %v (sequential)", workers, i, j, par[i][j], seq[i][j])
				}
			}
		}
	}
}

func TestPerSMAndPerSliceBandwidth(t *testing.T) {
	eng := engine(t, gpu.V100())
	sms := []int{0, 1, 41}
	perSM, err := PerSMSliceBandwidth(eng, sms, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(perSM) != len(sms) {
		t.Fatalf("per-SM result length %d, want %d", len(perSM), len(sms))
	}
	for i, sm := range sms {
		want, err := SliceBandwidth(eng, []int{sm}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if perSM[i] != want {
			t.Errorf("SM%d slot %d = %v, want sequential %v", sm, i, perSM[i], want)
		}
	}
	slices := []int{0, 3, 5}
	perSlice, err := PerSliceBandwidth(eng, 0, slices, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slices {
		want, err := SliceBandwidth(eng, []int{0}, s)
		if err != nil {
			t.Fatal(err)
		}
		if perSlice[i] != want {
			t.Errorf("slice %d slot %d = %v, want sequential %v", s, i, perSlice[i], want)
		}
	}
	if _, err := PerSMSliceBandwidth(eng, nil, 0, 0); err == nil {
		t.Error("empty SM set should fail")
	}
	if _, err := PerSliceBandwidth(eng, 0, nil, 0); err == nil {
		t.Error("empty slice set should fail")
	}
}
