package microbench

import (
	"fmt"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/profiler"
)

// SliceMap is the paper's M[s] structure: for each L2 slice, the
// line-aligned addresses of the data array D[] that map to it.
type SliceMap struct {
	// Addrs[s] holds addresses mapping to slice label s.
	Addrs [][]uint64
}

// AddressFor returns one address mapping to slice s.
func (m *SliceMap) AddressFor(s int) (uint64, error) {
	if s < 0 || s >= len(m.Addrs) || len(m.Addrs[s]) == 0 {
		return 0, fmt.Errorf("microbench: no address known for slice %d", s)
	}
	return m.Addrs[s][0], nil
}

// BuildSliceMapProfiler constructs M[] the way the paper does on V100:
// touch each line of D[] from one SM while watching the profiler's
// non-aggregated per-slice counters; whichever counter moves names the
// line's slice. Fails with profiler.ErrAggregatedOnly on GPUs whose
// tooling hides per-slice counters.
func BuildSliceMapProfiler(dev *gpu.Device, p *profiler.Profiler, lines int) (*SliceMap, error) {
	if lines <= 0 {
		return nil, fmt.Errorf("microbench: lines must be positive")
	}
	cfg := dev.Config()
	m := &SliceMap{Addrs: make([][]uint64, cfg.L2Slices)}
	lineBytes := uint64(cfg.CacheLineBytes)
	for i := 0; i < lines; i++ {
		addr := uint64(i) * lineBytes
		p.Reset()
		p.RecordAccess(0, addr)
		s, err := p.HottestSlice()
		if err != nil {
			return nil, err
		}
		m.Addrs[s] = append(m.Addrs[s], addr)
	}
	return m, nil
}

// ContentionProber decides whether two addresses share an L2 slice by
// measuring bandwidth interference, the manual method of the paper's
// footnote 1 for A100/H100: one kernel hammers a fixed address while a
// second kernel's address is varied; a bandwidth drop means both map to
// the same slice.
type ContentionProber struct {
	eng *bandwidth.Engine
	// smsA and smsB are the SM groups running the two kernels; each group
	// must be large enough to saturate a slice on its own so that sharing
	// is visible.
	smsA, smsB []int
	// solo caches group A's uncontended bandwidth per slice. Bandwidth is
	// near-uniform across slices (Observation #8), which is what makes
	// the probe reliable, but caching per slice avoids relying on it.
	solo map[int]float64
}

// NewContentionProber builds a prober using the first 2*groupSize SMs.
func NewContentionProber(eng *bandwidth.Engine, groupSize int) (*ContentionProber, error) {
	cfg := eng.Device().Config()
	if groupSize <= 0 || 2*groupSize > cfg.SMs() {
		return nil, fmt.Errorf("microbench: bad prober group size %d", groupSize)
	}
	a := make([]int, groupSize)
	b := make([]int, groupSize)
	for i := 0; i < groupSize; i++ {
		a[i] = i
		b[i] = groupSize + i
	}
	return &ContentionProber{eng: eng, smsA: a, smsB: b, solo: map[int]float64{}}, nil
}

// SameSlice probes whether addrA and addrB map to the same slice: it
// compares group A's bandwidth on addrA while group B hammers addrB
// against group A's solo bandwidth. Contention (a drop beyond 25%) means
// a shared slice.
func (cp *ContentionProber) SameSlice(addrA, addrB uint64) (bool, error) {
	dev := cp.eng.Device()
	sliceA := dev.ServingSlice(cp.smsA[0], addrA)
	sliceB := dev.ServingSlice(cp.smsB[0], addrB)
	soloA, ok := cp.solo[sliceA]
	if !ok {
		var err error
		soloA, err = SliceBandwidth(cp.eng, cp.smsA, sliceA)
		if err != nil {
			return false, err
		}
		cp.solo[sliceA] = soloA
	}
	flows := make([]bandwidth.Flow, 0, len(cp.smsA)+len(cp.smsB))
	for _, sm := range cp.smsA {
		flows = append(flows, bandwidth.Flow{SM: sm, Slices: []int{sliceA}})
	}
	for _, sm := range cp.smsB {
		flows = append(flows, bandwidth.Flow{SM: sm, Slices: []int{sliceB}})
	}
	res, err := cp.eng.Solve(flows)
	if err != nil {
		return false, err
	}
	var bwA float64
	for i := range cp.smsA {
		bwA += float64(res.PerFlowGBs[i])
	}
	return bwA < 0.75*soloA, nil
}

// BuildSliceMapByContention groups the first `lines` line addresses into
// slice-sharing classes with the contention probe, maintaining one anchor
// address per discovered class. The returned SliceMap uses discovery-order
// labels; as the paper notes, the numerical slice ID "is not significant
// but is only needed to ensure different ... SM or L2 slices are
// accessed". It also returns the number of distinct classes found.
func BuildSliceMapByContention(eng *bandwidth.Engine, lines int) (*SliceMap, int, error) {
	if lines <= 0 {
		return nil, 0, fmt.Errorf("microbench: lines must be positive")
	}
	cp, err := NewContentionProber(eng, 8)
	if err != nil {
		return nil, 0, err
	}
	cfg := eng.Device().Config()
	lineBytes := uint64(cfg.CacheLineBytes)
	var anchors []uint64
	m := &SliceMap{}
	for i := 0; i < lines; i++ {
		addr := uint64(i) * lineBytes
		class := -1
		for c, anchor := range anchors {
			same, err := cp.SameSlice(anchor, addr)
			if err != nil {
				return nil, 0, err
			}
			if same {
				class = c
				break
			}
		}
		if class < 0 {
			class = len(anchors)
			anchors = append(anchors, addr)
			m.Addrs = append(m.Addrs, nil)
		}
		m.Addrs[class] = append(m.Addrs[class], addr)
	}
	return m, len(anchors), nil
}
