package microbench

import (
	"fmt"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/parallel"
)

// SliceBandwidth runs Algorithm 2 for one destination slice: every SM in
// sms streams L1-bypassing reads whose addresses all map to slice s
// (the M[s] index set), and the achieved fabric bandwidth is returned in
// GB/s.
func SliceBandwidth(eng *bandwidth.Engine, sms []int, slice int) (float64, error) {
	if len(sms) == 0 {
		return 0, fmt.Errorf("microbench: no source SMs")
	}
	flows := make([]bandwidth.Flow, len(sms))
	for i, sm := range sms {
		flows[i] = bandwidth.Flow{SM: sm, Slices: []int{slice}}
	}
	res, err := eng.Solve(flows)
	if err != nil {
		return 0, err
	}
	return float64(res.TotalGBs), nil
}

// PerSMSliceBandwidth measures SliceBandwidth for each SM alone against
// one destination slice, sharding the per-SM solves across workers
// (workers <= 0 selects the default). Result slot i is sms[i]'s
// bandwidth; each solve builds its own queueing model over the read-only
// engine, so the sweep is race-free and identical for every pool size.
func PerSMSliceBandwidth(eng *bandwidth.Engine, sms []int, slice, workers int) ([]float64, error) {
	if len(sms) == 0 {
		return nil, fmt.Errorf("microbench: no source SMs")
	}
	return parallel.Map(workers, len(sms), func(i int) (float64, error) {
		return SliceBandwidth(eng, []int{sms[i]}, slice)
	})
}

// PerSliceBandwidth measures SliceBandwidth from one SM to each slice of
// the given set, sharding the per-slice solves across workers (workers
// <= 0 selects the default). Result slot i is slices[i]'s bandwidth.
func PerSliceBandwidth(eng *bandwidth.Engine, sm int, slices []int, workers int) ([]float64, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("microbench: no destination slices")
	}
	return parallel.Map(workers, len(slices), func(i int) (float64, error) {
		return SliceBandwidth(eng, []int{sm}, slices[i])
	})
}

// MPBandwidth streams from sms to every slice of one memory partition.
func MPBandwidth(eng *bandwidth.Engine, sms []int, mp int) (float64, error) {
	return SetBandwidth(eng, sms, eng.Device().SlicesOfMP(mp), false)
}

// SetBandwidth streams reads (or writes) from sms across an arbitrary
// slice set and returns the total achieved GB/s.
func SetBandwidth(eng *bandwidth.Engine, sms []int, slices []int, write bool) (float64, error) {
	if len(sms) == 0 {
		return 0, fmt.Errorf("microbench: no source SMs")
	}
	flows := make([]bandwidth.Flow, len(sms))
	for i, sm := range sms {
		flows[i] = bandwidth.Flow{SM: sm, Slices: slices, Write: write}
	}
	res, err := eng.Solve(flows)
	if err != nil {
		return 0, err
	}
	return float64(res.TotalGBs), nil
}

// AggregateFabricBandwidth measures the total L2 fabric bandwidth: all SMs
// streaming to all slices with every access hitting in L2 (Fig. 9a).
func AggregateFabricBandwidth(eng *bandwidth.Engine) (float64, error) {
	cfg := eng.Device().Config()
	return SetBandwidth(eng, allSMs(cfg), allSlices(cfg), false)
}

// MemoryBandwidth measures achievable off-chip bandwidth: all SMs
// streaming a working set that misses in L2 (Fig. 9a).
func MemoryBandwidth(eng *bandwidth.Engine) (float64, error) {
	cfg := eng.Device().Config()
	flows := make([]bandwidth.Flow, cfg.SMs())
	slices := allSlices(cfg)
	for sm := range flows {
		flows[sm] = bandwidth.Flow{SM: sm, Slices: slices, DRAM: true}
	}
	res, err := eng.Solve(flows)
	if err != nil {
		return 0, err
	}
	return float64(res.TotalGBs), nil
}

// Speedup measures the paper's input-speedup metric: the bandwidth of the
// SM group relative to its first SM alone, with traffic spread over all
// slices (Fig. 10).
func Speedup(eng *bandwidth.Engine, sms []int, write bool) (float64, error) {
	if len(sms) == 0 {
		return 0, fmt.Errorf("microbench: no SMs for speedup")
	}
	slices := allSlices(eng.Device().Config())
	single, err := SetBandwidth(eng, sms[:1], slices, write)
	if err != nil {
		return 0, err
	}
	group, err := SetBandwidth(eng, sms, slices, write)
	if err != nil {
		return 0, err
	}
	return group / single, nil
}

func allSMs(cfg gpu.Config) []int {
	sms := make([]int, cfg.SMs())
	for i := range sms {
		sms[i] = i
	}
	return sms
}

func allSlices(cfg gpu.Config) []int {
	s := make([]int, cfg.L2Slices)
	for i := range s {
		s[i] = i
	}
	return s
}
