package microbench

import (
	"testing"

	"gpunoc/internal/gpu"
)

func TestWorkingSetSweepCapacityStep(t *testing.T) {
	dev := gpu.MustNew(gpu.V100()) // 6 MiB L2
	sizes := []int{1 << 20, 3 << 20, 12 << 20}
	pts, err := WorkingSetSweep(dev, 0, sizes)
	if err != nil {
		t.Fatal(err)
	}
	inL2a, inL2b, overflow := pts[0], pts[1], pts[2]
	// Within capacity: timed pass hits, latency near the hit latency.
	if inL2a.MeanCycles > 250 || inL2b.MeanCycles > 250 {
		t.Errorf("in-capacity latencies %.0f/%.0f should be L2-hit level", inL2a.MeanCycles, inL2b.MeanCycles)
	}
	if d := inL2b.MeanCycles - inL2a.MeanCycles; d > 20 || d < -20 {
		t.Errorf("in-capacity latency should be flat: %.0f vs %.0f", inL2a.MeanCycles, inL2b.MeanCycles)
	}
	// Beyond capacity: LRU thrash pays the DRAM fill.
	if overflow.MeanCycles < inL2a.MeanCycles+150 {
		t.Errorf("over-capacity latency %.0f should step up past %.0f", overflow.MeanCycles, inL2a.MeanCycles)
	}
	if overflow.L2HitRate > 0.1 {
		t.Errorf("over-capacity hit rate %.2f should collapse", overflow.L2HitRate)
	}
}

func TestWorkingSetSweepValidation(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	if _, err := WorkingSetSweep(dev, 0, nil); err == nil {
		t.Error("empty sizes should fail")
	}
	if _, err := WorkingSetSweep(dev, -1, []int{1024}); err == nil {
		t.Error("bad SM should fail")
	}
	if _, err := WorkingSetSweep(dev, 0, []int{0}); err == nil {
		t.Error("zero size should fail")
	}
}

func TestWorkingSetTinySet(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	pts, err := WorkingSetSweep(dev, 0, []int{64}) // below one line
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MeanCycles <= 0 {
		t.Error("tiny set should still measure")
	}
}
