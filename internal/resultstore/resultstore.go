// Package resultstore is the serving layer's memory: a content-addressed
// cache of experiment results keyed by the canonical request tuple
// (GPU generation, experiment ID, quick flag). Every experiment in this
// repository is deterministic — the same tuple always renders the same
// bytes — so a result computed once can be served forever, and the store
// turns the characterization suite from a batch CLI into something that
// can sit behind heavy traffic:
//
//   - Singleflight deduplication: N concurrent requests for a cold key
//     trigger exactly one simulation. The fill runs on one store-owned
//     goroutine per cold key; every caller — the initiator included — is
//     a waiter on the in-flight call's channel and receives the
//     identical entry. Decoupling the fill from any one waiter is what
//     makes deadlines safe: GetContext waiters detach when their context
//     fires, and an abandoned fill still runs to completion and
//     populates the cache (and spill), so a timed-out request's work is
//     never wasted — the next request for the key is a hit. The fill
//     goroutine only executes one keyed computation whose result is
//     index-free and order-free, so it cannot leak scheduling order into
//     any output; the sweeps inside the computation still shard through
//     internal/parallel.
//   - Deadline propagation: fills run under Options.Base (the server's
//     shutdown context), handed to Options.Compute so a draining process
//     aborts in-flight simulations at their next sweep-row checkpoint
//     instead of simulating into the void.
//   - Negative-result window: a failed fill is remembered for
//     Options.NegativeTTL of injected-clock time, and retries inside the
//     window are refused with the original error instead of re-running
//     the failed simulation — a hot-looping client replaying an erroring
//     experiment cannot use the store as a CPU amplifier.
//   - LRU with byte accounting: entries are bounded by a byte budget,
//     not a count, because artifact payloads span two orders of
//     magnitude. Eviction picks the least-recently-used entry and breaks
//     exact ties toward the smallest key, so a replayed request stream
//     always evicts identically.
//   - Optional disk spill: computed entries are also written to a spill
//     directory under their content address (SHA-256 of the canonical
//     key string), and cold keys check the spill before simulating, so a
//     restarted server warms from disk instead of recomputing the world.
//     The spill is byte-capped (Options.SpillMaxBytes): when a write
//     pushes the directory past the budget, the oldest spill files are
//     pruned first — write order for files created this run, (mtime,
//     name) order for files inherited from a previous process — so a
//     long-lived server cannot grow the spill without bound. Every
//     pruned file ticks the evicted_spill counter; the next request for
//     a pruned key simply recomputes (and re-spills) it.
//
// The store never reads the wall clock itself (noclint's determinism
// analyzer forbids it inside the model); callers inject a monotonic
// clock for the compute-latency histogram and the negative-result
// window, exactly like core.ReportOptions.Stopwatch.
package resultstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
)

// Key is the canonical request tuple. Two requests with equal Keys are
// guaranteed (by the simulators' determinism contract) to produce
// byte-identical results.
type Key struct {
	// GPU is the canonical generation name (gpu.GenV100 etc.).
	GPU gpu.Generation `json:"gpu"`
	// Exp is the experiment registry ID ("fig1", "table1", "ext3").
	Exp string `json:"exp"`
	// Quick mirrors nocchar -quick: reduced sample counts.
	Quick bool `json:"quick"`
}

// String renders the canonical form, e.g. "v100/fig1?quick=false". It is
// the content-addressing preimage, so its format is part of the spill
// on-disk contract.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s?quick=%v", strings.ToLower(string(k.GPU)), k.Exp, k.Quick)
}

// ContentAddress returns the hex SHA-256 of the canonical key string.
// It is the key's identity everywhere identity matters: the spill
// file's basename on disk, and the shard key internal/cluster's
// rendezvous router hashes to pick the key's owning node — so routing,
// caching, and spill all agree on what "the same result" means.
func (k Key) ContentAddress() string {
	sum := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(sum[:])
}

// less orders keys for deterministic tie-breaking in eviction.
func (k Key) less(other Key) bool { return k.String() < other.String() }

// Entry is one cached computation: every serving format pre-rendered, so
// a format change on a warm key costs zero simulations.
type Entry struct {
	Key Key `json:"key"`
	// JSON is byte-identical to `nocchar -gpu <g> -exp <e> -json` stdout.
	JSON []byte `json:"json"`
	// CSV is byte-identical to `nocchar -csv` stdout for the experiment.
	CSV []byte `json:"csv"`
	// Text is byte-identical to nocchar's default rendering.
	Text []byte `json:"text"`
	// Markdown is the report fragment for the run.
	Markdown []byte `json:"markdown"`
}

// Size returns the entry's byte footprint for LRU accounting.
func (e *Entry) Size() int64 {
	const overhead = 128 // struct, map slot, bookkeeping
	return int64(len(e.JSON)+len(e.CSV)+len(e.Text)+len(e.Markdown)) + overhead
}

// Outcome classifies how a Get was satisfied.
type Outcome int

const (
	// OutcomeMiss: this call ran the simulation.
	OutcomeMiss Outcome = iota
	// OutcomeHit: served from memory.
	OutcomeHit
	// OutcomeCoalesced: another in-flight call for the same key ran the
	// simulation; this call waited and shared its entry.
	OutcomeCoalesced
	// OutcomeSpill: served from the disk spill without simulating.
	OutcomeSpill
	// OutcomeNegative: the key failed recently and the negative-result
	// window refused the retry without simulating (error path only).
	OutcomeNegative
)

// String implements fmt.Stringer; the values double as X-Cache headers.
func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeHit:
		return "hit"
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeSpill:
		return "spill"
	case OutcomeNegative:
		return "negative"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Options configures a Store.
type Options struct {
	// Compute runs the simulation for a cold key. Required. It must be
	// safe for concurrent invocation with distinct keys; the store
	// guarantees at most one in-flight invocation per key. The context
	// it receives is derived from Base, NOT from any individual waiter:
	// waiters detaching on their own deadlines leave the computation
	// running, and only cancelling Base (process shutdown) aborts it.
	Compute func(ctx context.Context, key Key) (*Entry, error)
	// Base, when non-nil, is the context every fill runs under;
	// cancelling it (server drain) makes in-flight computations abort at
	// their next cancellation checkpoint. Nil means context.Background():
	// fills always run to completion.
	Base context.Context
	// MaxBytes bounds the in-memory entries' total Size; <= 0 means
	// unbounded. An entry alone exceeding the budget is served but not
	// cached.
	MaxBytes int64
	// SpillDir, when non-empty, enables the disk spill.
	SpillDir string
	// SpillMaxBytes bounds the spill directory's total payload bytes;
	// <= 0 means unbounded. When a spill write pushes the directory past
	// the budget, the oldest spill files are removed first until it fits
	// again (the file just written is never its own victim). Files
	// already present at New — a previous process's spill — are adopted
	// into the accounting in (mtime, name) order, oldest first, and a
	// budget tighter than the inherited population prunes immediately.
	SpillMaxBytes int64
	// NegativeTTL, when > 0, remembers a failed fill for that much
	// injected-clock time and refuses retries of the key inside the
	// window with the original error (OutcomeNegative) instead of
	// re-running the failed simulation. Requires Clock. Fills aborted by
	// Base cancellation are not remembered — a draining server must not
	// poison keys for its successor.
	NegativeTTL time.Duration
	// Obs receives the store's instruments (hit/miss/coalesced/...
	// counters, byte and entry gauges, compute-latency histogram); nil
	// disables collection at zero cost.
	Obs *obs.Registry
	// Clock, when non-nil, returns elapsed time from an origin of the
	// caller's choosing and enables the compute-latency histogram and
	// the negative-result window. The store never reads the wall clock
	// itself.
	Clock func() time.Duration
}

// call is one in-flight computation that waiters coalesce onto. The
// fill goroutine owns entry/outcome/err until it closes done; the close
// is the happens-before edge every waiter reads across.
type call struct {
	done    chan struct{}
	entry   *Entry
	outcome Outcome
	err     error
}

// failure is one remembered fill error for the negative-result window.
type failure struct {
	at  time.Duration
	err error
}

// cached is one resident entry with its recency stamp.
type cached struct {
	entry   *Entry
	lastUse uint64
}

// spillFile is one accounted spill-directory resident. The store keeps
// these oldest-first, so pruning always pops from the front.
type spillFile struct {
	name string // basename inside SpillDir
	size int64
}

// Store is the cache. It is safe for concurrent use.
type Store struct {
	opts Options
	base context.Context

	mu       sync.Mutex
	entries  map[Key]*cached
	inflight map[Key]*call
	failed   map[Key]failure
	tick     uint64
	bytes    int64
	fills    sync.WaitGroup

	// spillMu guards the spill directory's byte accounting separately
	// from s.mu: spill writes happen on fill goroutines outside the
	// entry-map lock, and pruning does file I/O that must never stall a
	// cache hit.
	spillMu    sync.Mutex
	spillBytes int64
	spillFiles []spillFile // oldest-first; pruning pops from the front

	hits, misses, coalesced  *obs.Counter
	evictions, oversize      *obs.Counter
	spillLoads, spillStores  *obs.Counter
	spillErrs, computeErrs   *obs.Counter
	canceled, negative       *obs.Counter
	evictedSpill             *obs.Counter
	bytesGauge, entriesGauge *obs.Gauge
	spillBytesGauge          *obs.Gauge
	computeMS                *obs.Histogram
}

// computeLatencyBounds buckets compute wall time in milliseconds: quick
// single-figure runs land in the low buckets, full -all-grade sweeps in
// the top ones.
func computeLatencyBounds() []int64 {
	return []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
}

// New builds a store.
func New(opts Options) (*Store, error) {
	if opts.Compute == nil {
		return nil, errors.New("resultstore: Options.Compute is required")
	}
	if opts.NegativeTTL > 0 && opts.Clock == nil {
		return nil, errors.New("resultstore: Options.NegativeTTL requires Options.Clock")
	}
	if opts.SpillDir != "" {
		if err := os.MkdirAll(opts.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: spill dir: %w", err)
		}
	}
	base := opts.Base
	if base == nil {
		base = context.Background()
	}
	s := &Store{
		opts:     opts,
		base:     base,
		entries:  map[Key]*cached{},
		inflight: map[Key]*call{},
		failed:   map[Key]failure{},

		hits:         opts.Obs.Counter("hit"),
		misses:       opts.Obs.Counter("miss"),
		coalesced:    opts.Obs.Counter("coalesced"),
		evictions:    opts.Obs.Counter("eviction"),
		oversize:     opts.Obs.Counter("oversize"),
		spillLoads:   opts.Obs.Counter("spill_load"),
		spillStores:  opts.Obs.Counter("spill_store"),
		spillErrs:    opts.Obs.Counter("spill_err"),
		computeErrs:  opts.Obs.Counter("compute_err"),
		canceled:     opts.Obs.Counter("canceled"),
		negative:     opts.Obs.Counter("negative"),
		evictedSpill: opts.Obs.Counter("evicted_spill"),
		bytesGauge:   opts.Obs.Gauge("bytes"),
		entriesGauge: opts.Obs.Gauge("entries"),

		spillBytesGauge: opts.Obs.Gauge("spill_bytes"),
		computeMS:       opts.Obs.Histogram("compute_ms", computeLatencyBounds()),
	}
	if opts.SpillDir != "" {
		if err := s.adoptSpillDir(); err != nil {
			return nil, fmt.Errorf("resultstore: spill dir scan: %w", err)
		}
	}
	return s, nil
}

// adoptSpillDir takes over accounting for spill files a previous process
// left behind: every *.json file in SpillDir is recorded in (mtime,
// name) order — the closest durable approximation of its original write
// order — and a byte budget tighter than the inherited population
// prunes the oldest files immediately, so a restart with a smaller
// -spill-max-bytes converges instead of inheriting an oversized spill
// forever. Stray temp files from a crashed atomic write are removed.
func (s *Store) adoptSpillDir() error {
	dirents, err := os.ReadDir(s.opts.SpillDir)
	if err != nil {
		return err
	}
	type aged struct {
		spillFile
		mod time.Time
	}
	var files []aged
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, "spill-") && strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(s.opts.SpillDir, name))
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with deletion; nothing to account
		}
		files = append(files, aged{spillFile{name: name, size: info.Size()}, info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	for _, f := range files {
		s.spillFiles = append(s.spillFiles, f.spillFile)
		s.spillBytes += f.size
	}
	s.pruneSpillLocked()
	return nil
}

// Get returns the entry for key, computing it at most once no matter how
// many callers ask concurrently. The Outcome reports how this particular
// call was satisfied. Get never detaches: it waits for the fill however
// long it takes (GetContext with context.Background()).
func (s *Store) Get(key Key) (*Entry, Outcome, error) {
	return s.GetContext(context.Background(), key)
}

// GetContext is Get with a waiter deadline: when ctx is done before the
// entry is ready, this caller detaches and receives ctx.Err(), but the
// in-flight fill — shared with any other waiters — keeps running and
// still populates the cache, so the abandoned work is served to the
// next request for the key. Cancelling ctx never cancels the
// computation; only the store's Base context does that.
func (s *Store) GetContext(ctx context.Context, key Key) (*Entry, Outcome, error) {
	s.mu.Lock()
	if c, ok := s.entries[key]; ok {
		s.tick++
		c.lastUse = s.tick
		s.mu.Unlock()
		s.hits.Inc()
		return c.entry, OutcomeHit, nil
	}
	if fl, ok := s.inflight[key]; ok {
		// Coalesce: the fill goroutine owns the simulation; wait for its
		// channel close and share the entry it publishes.
		s.mu.Unlock()
		s.coalesced.Inc()
		return s.wait(ctx, fl, false)
	}
	if f, ok := s.failed[key]; ok {
		if s.opts.Clock()-f.at < s.opts.NegativeTTL {
			s.mu.Unlock()
			s.negative.Inc()
			return nil, OutcomeNegative, f.err
		}
		delete(s.failed, key) // window expired; retry for real
	}
	fl := &call{done: make(chan struct{})}
	s.inflight[key] = fl
	s.fills.Add(1)
	s.mu.Unlock()
	// The fill is deliberately detached from every waiter so deadlines
	// can abandon it without killing it; it runs exactly one keyed,
	// order-free computation (whose sweeps shard through
	// internal/parallel), so no scheduling order can reach any output.
	//lint:ignore determinism the fill goroutine produces a single content-addressed entry with no cross-task ordering; waiter-detachable singleflight cannot run on the initiating caller's goroutine
	go s.runFill(key, fl)
	return s.wait(ctx, fl, true)
}

// wait parks one caller on an in-flight call until the fill publishes
// or the caller's context fires. The initiator takes the fill's own
// outcome (miss or spill); every other waiter reports coalesced.
func (s *Store) wait(ctx context.Context, fl *call, initiator bool) (*Entry, Outcome, error) {
	select {
	case <-fl.done:
	case <-ctx.Done():
		// Detach: give up on the result but leave the fill running. A
		// second chance below avoids reporting a spurious cancellation
		// when the fill and the deadline race.
		select {
		case <-fl.done:
		default:
			s.canceled.Inc()
			return nil, OutcomeCoalesced, ctx.Err()
		}
	}
	if !initiator && fl.err == nil {
		return fl.entry, OutcomeCoalesced, nil
	}
	return fl.entry, fl.outcome, fl.err
}

// runFill executes one cold key's fill on its own goroutine and
// publishes the result to every waiter. It runs under the store's Base
// context — never a waiter's — so abandoned fills complete and cache.
func (s *Store) runFill(key Key, fl *call) {
	defer s.fills.Done()
	entry, outcome, err := s.fill(key)

	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.insertLocked(key, entry)
	} else if s.opts.NegativeTTL > 0 && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		// Remember the failure so immediate retries are refused, but
		// never remember shutdown-induced aborts: they say nothing
		// about the key.
		s.failed[key] = failure{at: s.opts.Clock(), err: err}
	}
	s.mu.Unlock()

	// Publish to waiters only after the cache state is settled; the
	// channel close is the happens-before edge waiters read across.
	fl.entry, fl.outcome, fl.err = entry, outcome, err
	close(fl.done)
}

// Wait blocks until every in-flight fill has published. Shutdown paths
// use it (under their own deadline) to let abandoned fills finish
// caching; tests use it to prove no fill goroutine outlives its work.
func (s *Store) Wait() { s.fills.Wait() }

// fill produces the entry for a cold key: from the disk spill when
// possible, otherwise by running the simulation under the Base context.
func (s *Store) fill(key Key) (*Entry, Outcome, error) {
	if e, ok := s.loadSpill(key); ok {
		s.spillLoads.Inc()
		return e, OutcomeSpill, nil
	}
	s.misses.Inc()
	var start time.Duration
	if s.opts.Clock != nil {
		start = s.opts.Clock()
	}
	e, err := s.opts.Compute(s.base, key)
	if err != nil {
		s.computeErrs.Inc()
		return nil, OutcomeMiss, err
	}
	if e == nil {
		s.computeErrs.Inc()
		return nil, OutcomeMiss, fmt.Errorf("resultstore: compute for %s returned no entry", key)
	}
	if s.opts.Clock != nil {
		s.computeMS.Observe(int64((s.opts.Clock() - start) / time.Millisecond))
	}
	e.Key = key
	s.storeSpill(key, e)
	return e, OutcomeMiss, nil
}

// insertLocked caches an entry and evicts LRU entries past the byte
// budget. Caller holds s.mu.
func (s *Store) insertLocked(key Key, e *Entry) {
	size := e.Size()
	if s.opts.MaxBytes > 0 && size > s.opts.MaxBytes {
		// Caching it would evict everything else and still overflow;
		// serve uncached instead (the spill may still hold it).
		s.oversize.Inc()
		return
	}
	s.tick++
	s.entries[key] = &cached{entry: e, lastUse: s.tick}
	s.bytes += size
	for s.opts.MaxBytes > 0 && s.bytes > s.opts.MaxBytes && len(s.entries) > 1 {
		s.evictLocked()
	}
	s.bytesGauge.Set(s.bytes)
	s.entriesGauge.Set(int64(len(s.entries)))
}

// evictLocked removes the least-recently-used entry. Recency stamps are
// unique by construction (tick is monotonic under the lock), but exact
// ties — should a refactor ever batch stamps — resolve to the smallest
// key, mirroring the lowest-index rule of the L2 model's LRU and the
// profiler's argmax: eviction order is deterministic for any replayed
// request stream. The scan only accumulates a minimum, so map iteration
// order cannot leak into the choice.
func (s *Store) evictLocked() {
	var victim Key
	var vc *cached
	for k, c := range s.entries {
		if vc == nil || c.lastUse < vc.lastUse || (c.lastUse == vc.lastUse && k.less(victim)) {
			victim, vc = k, c
		}
	}
	if vc == nil {
		return
	}
	delete(s.entries, victim)
	s.bytes -= vc.entry.Size()
	s.evictions.Inc()
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the resident entries' accounted size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Contains reports residency without touching recency or counters.
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// spillPath returns the content-addressed spill file for a key.
func (s *Store) spillPath(key Key) string {
	return filepath.Join(s.opts.SpillDir, key.ContentAddress()+".json")
}

// loadSpill reads a spilled entry, verifying the stored key matches the
// requested one (the address is a hash; trust but verify). A corrupt
// file — truncated write, bit rot, or content that hashes to a
// different key than its name claims — is counted, deleted, and dropped
// from the byte accounting, never loaded: leaving it in place would
// make every future cold request re-read and re-reject it, and its
// bytes would be double-counted when the recomputed entry re-spills to
// the same address.
func (s *Store) loadSpill(key Key) (*Entry, bool) {
	if s.opts.SpillDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.spillPath(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		s.spillErrs.Inc()
		s.discardSpill(key)
		return nil, false
	}
	return &e, true
}

// discardSpill removes a corrupt spill file and forgets its accounting
// record. Best-effort: the file may already be gone.
func (s *Store) discardSpill(key Key) {
	name := key.ContentAddress() + ".json"
	if err := os.Remove(s.spillPath(key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		s.spillErrs.Inc()
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	for i, f := range s.spillFiles {
		if f.name == name {
			s.spillBytes -= f.size
			s.spillFiles = append(s.spillFiles[:i], s.spillFiles[i+1:]...)
			s.spillBytesGauge.Set(s.spillBytes)
			break
		}
	}
}

// storeSpill writes an entry to the spill, atomically via a temp file so
// a crashed writer never leaves a half-written content address. Spill is
// best-effort: failures are counted, not returned — the caller already
// holds a good in-memory entry.
func (s *Store) storeSpill(key Key, e *Entry) {
	if s.opts.SpillDir == "" {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.spillErrs.Inc()
		return
	}
	tmp, err := os.CreateTemp(s.opts.SpillDir, "spill-*.tmp")
	if err != nil {
		s.spillErrs.Inc()
		return
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		s.spillErrs.Inc()
		return
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		s.spillErrs.Inc()
		return
	}
	if err := os.Rename(tmp.Name(), s.spillPath(key)); err != nil {
		_ = os.Remove(tmp.Name())
		s.spillErrs.Inc()
		return
	}
	s.spillStores.Inc()
	s.recordSpillWrite(key.ContentAddress()+".json", int64(len(data)))
}

// recordSpillWrite accounts one completed spill write and prunes the
// oldest files while the directory exceeds the byte budget. A rewrite
// of an existing content address (a key recomputed after its spill was
// pruned elsewhere, or an overwrite with identical bytes) replaces the
// old record and moves the file to the newest position — it was just
// written, so it is the freshest thing in the directory.
func (s *Store) recordSpillWrite(name string, size int64) {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	for i, f := range s.spillFiles {
		if f.name == name {
			s.spillBytes -= f.size
			s.spillFiles = append(s.spillFiles[:i], s.spillFiles[i+1:]...)
			break
		}
	}
	s.spillFiles = append(s.spillFiles, spillFile{name: name, size: size})
	s.spillBytes += size
	s.pruneSpillLocked()
}

// pruneSpillLocked removes oldest-first spill files until the directory
// fits the budget again, never victimizing the sole remaining (newest)
// file: a single entry larger than the budget is still worth keeping,
// exactly like insertLocked's oversize rule keeps serving working.
// Caller holds s.spillMu.
func (s *Store) pruneSpillLocked() {
	for s.opts.SpillMaxBytes > 0 && s.spillBytes > s.opts.SpillMaxBytes && len(s.spillFiles) > 1 {
		victim := s.spillFiles[0]
		s.spillFiles = s.spillFiles[1:]
		s.spillBytes -= victim.size
		if err := os.Remove(filepath.Join(s.opts.SpillDir, victim.name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.spillErrs.Inc()
		}
		s.evictedSpill.Inc()
	}
	s.spillBytesGauge.Set(s.spillBytes)
}

// SpillBytes returns the accounted size of the spill directory; 0 when
// the spill is disabled.
func (s *Store) SpillBytes() int64 {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	return s.spillBytes
}
