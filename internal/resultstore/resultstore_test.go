package resultstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
)

// fakeEntry builds a deterministic entry whose payload identifies the
// key, padded to a controllable size.
func fakeEntry(key Key, pad int) *Entry {
	body := []byte(fmt.Sprintf("payload(%s)%s", key, bytes.Repeat([]byte("x"), pad)))
	return &Entry{
		JSON:     append([]byte("json:"), body...),
		CSV:      append([]byte("csv:"), body...),
		Text:     append([]byte("text:"), body...),
		Markdown: append([]byte("md:"), body...),
	}
}

// countingComputer counts invocations per key and delegates to fakeEntry.
type countingComputer struct {
	mu    sync.Mutex
	calls map[Key]int
	pad   int
	// gate, when non-nil, blocks every compute until released — the
	// lever the singleflight test uses to pile waiters onto a cold key.
	gate chan struct{}
}

func (c *countingComputer) compute(ctx context.Context, key Key) (*Entry, error) {
	c.mu.Lock()
	if c.calls == nil {
		c.calls = map[Key]int{}
	}
	c.calls[key]++
	gate := c.gate
	c.mu.Unlock()
	if gate != nil {
		// The gate deliberately ignores the waiters' contexts: fills are
		// abandoned by detaching waiters, never interrupted by them.
		// Only the store's Base context may abort a fill.
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return fakeEntry(key, c.pad), nil
}

func (c *countingComputer) callCount(key Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[key]
}

func key(gen gpu.Generation, exp string) Key { return Key{GPU: gen, Exp: exp, Quick: true} }

func TestColdThenWarm(t *testing.T) {
	comp := &countingComputer{}
	reg := obs.New()
	s, err := New(Options{Compute: comp.compute, Obs: reg.Scope("resultstore")})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenV100, "fig1")

	e1, out, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeMiss {
		t.Errorf("cold Get outcome = %s, want miss", out)
	}
	e2, out, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeHit {
		t.Errorf("warm Get outcome = %s, want hit", out)
	}
	if !bytes.Equal(e1.JSON, e2.JSON) || !bytes.Equal(e1.Text, e2.Text) {
		t.Error("warm bytes differ from cold bytes")
	}
	if n := comp.callCount(k); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	if got := reg.Scope("resultstore").Counter("hit").Value(); got != 1 {
		t.Errorf("hit counter = %d, want 1", got)
	}
	if got := reg.Scope("resultstore").Counter("miss").Value(); got != 1 {
		t.Errorf("miss counter = %d, want 1", got)
	}
}

// TestSingleflightCoalescing piles N concurrent waiters on one cold key
// while the compute is gated shut, then releases it: exactly one
// simulation must run, and every waiter must receive identical bytes.
func TestSingleflightCoalescing(t *testing.T) {
	comp := &countingComputer{gate: make(chan struct{})}
	reg := obs.New()
	s, err := New(Options{Compute: comp.compute, Obs: reg.Scope("resultstore")})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenA100, "fig9")

	const waiters = 64
	var wg sync.WaitGroup
	var coalesced atomic.Int64
	entries := make([]*Entry, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, out, err := s.Get(k)
			entries[i], errs[i] = e, err
			if out == OutcomeCoalesced {
				coalesced.Add(1)
			}
		}(i)
	}
	// Wait until the one computer is inside compute (call count 1) and
	// then give stragglers a moment to pile onto the in-flight call.
	for comp.callCount(k) == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(comp.gate)
	wg.Wait()

	if n := comp.callCount(k); n != 1 {
		t.Fatalf("compute ran %d times for one cold key, want exactly 1", n)
	}
	for i := range entries {
		if errs[i] != nil {
			t.Fatalf("waiter %d error: %v", i, errs[i])
		}
		if !bytes.Equal(entries[i].JSON, entries[0].JSON) {
			t.Fatalf("waiter %d received different bytes", i)
		}
	}
	if got := reg.Scope("resultstore").Counter("coalesced").Value(); got != coalesced.Load() {
		t.Errorf("coalesced counter = %d, want %d", got, coalesced.Load())
	}
	if coalesced.Load() == 0 {
		t.Error("no waiter coalesced; the gate did not hold the compute open")
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	comp := &countingComputer{pad: 100}
	s, err := New(Options{Compute: comp.compute, MaxBytes: 1600})
	if err != nil {
		t.Fatal(err)
	}
	k1 := key(gpu.GenV100, "fig1")
	k2 := key(gpu.GenV100, "fig2")
	k3 := key(gpu.GenV100, "fig3")

	mustGet := func(k Key, want Outcome) {
		t.Helper()
		_, out, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if out != want {
			t.Fatalf("Get(%s) outcome = %s, want %s", k, out, want)
		}
	}

	mustGet(k1, OutcomeMiss)
	mustGet(k2, OutcomeMiss)
	if s.Len() != 2 {
		t.Fatalf("resident entries = %d, want 2 within budget", s.Len())
	}
	// Touch k1 so k2 is the LRU, then overflow with k3: k2 must go.
	mustGet(k1, OutcomeHit)
	mustGet(k3, OutcomeMiss)
	if s.Contains(k2) {
		t.Error("k2 still resident; LRU eviction picked the wrong victim")
	}
	if !s.Contains(k1) || !s.Contains(k3) {
		t.Error("recently used k1 or fresh k3 was evicted")
	}
	if s.opts.MaxBytes > 0 && s.Bytes() > s.opts.MaxBytes {
		t.Errorf("resident bytes %d exceed budget %d", s.Bytes(), s.opts.MaxBytes)
	}
	// A re-request of the victim recomputes.
	mustGet(k2, OutcomeMiss)
	if n := comp.callCount(k2); n != 2 {
		t.Errorf("k2 computed %d times, want 2 (evicted once)", n)
	}
}

func TestOversizeEntryServedUncached(t *testing.T) {
	comp := &countingComputer{pad: 10_000}
	s, err := New(Options{Compute: comp.compute, MaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenH100, "fig13")
	if _, out, err := s.Get(k); err != nil || out != OutcomeMiss {
		t.Fatalf("Get = (%s, %v), want miss", out, err)
	}
	if s.Len() != 0 {
		t.Errorf("oversize entry was cached (%d resident)", s.Len())
	}
	// Still servable, just recomputed each time.
	if _, out, _ := s.Get(k); out != OutcomeMiss {
		t.Errorf("second Get outcome = %s, want miss (uncached oversize)", out)
	}
}

// TestDiskSpillRoundTrip: a store with a spill dir persists computed
// entries; a fresh store over the same dir serves them byte-identically
// without a single simulation.
func TestDiskSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	comp1 := &countingComputer{pad: 33}
	s1, err := New(Options{Compute: comp1.compute, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenV100, "table1")
	cold, out, err := s1.Get(k)
	if err != nil || out != OutcomeMiss {
		t.Fatalf("cold Get = (%s, %v), want miss", out, err)
	}

	comp2 := &countingComputer{pad: 33}
	reg := obs.New()
	s2, err := New(Options{Compute: comp2.compute, SpillDir: dir, Obs: reg.Scope("resultstore")})
	if err != nil {
		t.Fatal(err)
	}
	warm, out, err := s2.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeSpill {
		t.Errorf("restarted Get outcome = %s, want spill", out)
	}
	if comp2.callCount(k) != 0 {
		t.Errorf("restarted store simulated %d times, want 0", comp2.callCount(k))
	}
	if !bytes.Equal(cold.JSON, warm.JSON) || !bytes.Equal(cold.CSV, warm.CSV) ||
		!bytes.Equal(cold.Text, warm.Text) || !bytes.Equal(cold.Markdown, warm.Markdown) {
		t.Error("spill round-trip bytes differ from the computed entry")
	}
	if got := reg.Scope("resultstore").Counter("spill_load").Value(); got != 1 {
		t.Errorf("spill_load counter = %d, want 1", got)
	}
	// Once loaded it is resident: the next Get is a plain hit.
	if _, out, _ := s2.Get(k); out != OutcomeHit {
		t.Errorf("post-spill Get outcome = %s, want hit", out)
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	s, err := New(Options{Compute: func(context.Context, Key) (*Entry, error) {
		calls.Add(1)
		return nil, boom
	}})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenV100, "fig1")
	for i := 0; i < 3; i++ {
		if _, _, err := s.Get(k); !errors.Is(err, boom) {
			t.Fatalf("Get err = %v, want boom", err)
		}
	}
	if calls.Load() != 3 {
		t.Errorf("compute ran %d times, want 3 (errors are not cached)", calls.Load())
	}
	if s.Len() != 0 {
		t.Errorf("error left %d resident entries", s.Len())
	}
}

func TestEvictionTieBreaksToSmallestKey(t *testing.T) {
	comp := &countingComputer{pad: 100}
	s, err := New(Options{Compute: comp.compute, MaxBytes: 1600})
	if err != nil {
		t.Fatal(err)
	}
	ka := key(gpu.GenA100, "fig1") // "a100/fig1?quick=true"
	kv := key(gpu.GenV100, "fig1") // "v100/fig1?quick=true"
	if _, _, err := s.Get(kv); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(ka); err != nil {
		t.Fatal(err)
	}
	// Force an exact recency tie — unreachable through Get, whose tick
	// is strictly monotonic, but the determinism contract must survive
	// refactors that batch stamps.
	s.mu.Lock()
	for _, c := range s.entries {
		c.lastUse = 7
	}
	s.evictLocked()
	s.mu.Unlock()
	if s.Contains(ka) {
		t.Error("tie kept the smallest canonical key; want it evicted first")
	}
	if !s.Contains(kv) {
		t.Error("v100 key should have survived the tie")
	}
}

// TestDetachedWaiterLeavesFillRunning is the deadline contract in one
// scene: a waiter with a dead context detaches with ctx.Err() while the
// fill is wedged open, and when the fill finally completes it still
// populates the cache — the abandoned work is the next caller's hit.
func TestDetachedWaiterLeavesFillRunning(t *testing.T) {
	comp := &countingComputer{gate: make(chan struct{})}
	reg := obs.New()
	s, err := New(Options{Compute: comp.compute, Obs: reg.Scope("resultstore")})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenV100, "fig1")

	ctx, cancel := context.WithCancel(context.Background())
	detached := make(chan error, 1)
	go func() {
		_, _, err := s.GetContext(ctx, k)
		detached <- err
	}()
	for comp.callCount(k) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-detached; !errors.Is(err, context.Canceled) {
		t.Fatalf("detached waiter err = %v, want context.Canceled", err)
	}
	if got := reg.Scope("resultstore").Counter("canceled").Value(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}

	// The fill is still alive; releasing it must cache the entry.
	close(comp.gate)
	s.Wait()
	if !s.Contains(k) {
		t.Fatal("abandoned fill did not populate the cache")
	}
	if _, out, err := s.Get(k); err != nil || out != OutcomeHit {
		t.Errorf("post-abandon Get = (%s, %v), want hit", out, err)
	}
	if n := comp.callCount(k); n != 1 {
		t.Errorf("compute ran %d times, want 1 (abandonment must not recompute)", n)
	}
}

// TestCoalescedWaiterDetachesIndependently: of two waiters on one
// in-flight fill, cancelling one leaves the other to receive the entry.
func TestCoalescedWaiterDetachesIndependently(t *testing.T) {
	comp := &countingComputer{gate: make(chan struct{})}
	s, err := New(Options{Compute: comp.compute})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenA100, "fig9")

	patient := make(chan error, 1)
	go func() {
		_, _, err := s.Get(k)
		patient <- err
	}()
	for comp.callCount(k) == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.GetContext(ctx, k); !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter err = %v, want context.Canceled", err)
	}
	close(comp.gate)
	if err := <-patient; err != nil {
		t.Fatalf("patient waiter err = %v after the other detached", err)
	}
	if n := comp.callCount(k); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
}

// TestBaseContextAbortsFills: cancelling the store's Base context — the
// server-drain path — reaches the Compute function, and the resulting
// cancellation error is NOT remembered by the negative window.
func TestBaseContextAbortsFills(t *testing.T) {
	base, stop := context.WithCancel(context.Background())
	comp := &countingComputer{gate: make(chan struct{})}
	var clock atomic.Int64
	s, err := New(Options{
		Compute:     comp.compute,
		Base:        base,
		NegativeTTL: time.Second,
		Clock:       func() time.Duration { return time.Duration(clock.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenH100, "fig13")
	stop()
	if _, _, err := s.Get(k); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get under a dead Base = %v, want context.Canceled", err)
	}
	s.Wait()
	s.mu.Lock()
	_, remembered := s.failed[k]
	s.mu.Unlock()
	if remembered {
		t.Error("a Base-cancelled fill was negative-cached; drain aborts must not poison keys")
	}
}

// TestNegativeWindowCoalescesRetries: a failed fill is refused for
// NegativeTTL of injected-clock time with the original error and zero
// recomputation; past the window the key retries for real, and a
// success clears the memory entirely.
func TestNegativeWindowCoalescesRetries(t *testing.T) {
	boom := errors.New("solver diverged")
	var clock atomic.Int64 // nanoseconds, driven by hand
	var calls atomic.Int64
	var failNext atomic.Bool
	failNext.Store(true)
	reg := obs.New()
	s, err := New(Options{
		Compute: func(_ context.Context, key Key) (*Entry, error) {
			calls.Add(1)
			if failNext.Load() {
				return nil, boom
			}
			return fakeEntry(key, 0), nil
		},
		NegativeTTL: 100 * time.Millisecond,
		Clock:       func() time.Duration { return time.Duration(clock.Load()) },
		Obs:         reg.Scope("resultstore"),
	})
	if err != nil {
		t.Fatal(err)
	}
	k := key(gpu.GenV100, "fig6")

	if _, _, err := s.Get(k); !errors.Is(err, boom) {
		t.Fatalf("first Get err = %v, want boom", err)
	}
	// Rapid retries inside the window: same error, no simulation.
	for i := 0; i < 5; i++ {
		clock.Add(int64(10 * time.Millisecond))
		_, out, err := s.Get(k)
		if !errors.Is(err, boom) {
			t.Fatalf("retry %d err = %v, want boom", i, err)
		}
		if out != OutcomeNegative {
			t.Fatalf("retry %d outcome = %s, want negative", i, out)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1 (window must absorb retries)", calls.Load())
	}
	if got := reg.Scope("resultstore").Counter("negative").Value(); got != 5 {
		t.Errorf("negative counter = %d, want 5", got)
	}

	// Past the window the key retries; let it succeed and stay cached.
	failNext.Store(false)
	clock.Add(int64(200 * time.Millisecond))
	if _, out, err := s.Get(k); err != nil || out != OutcomeMiss {
		t.Fatalf("post-window Get = (%s, %v), want miss", out, err)
	}
	if calls.Load() != 2 {
		t.Errorf("compute ran %d times, want 2", calls.Load())
	}
	if _, out, _ := s.Get(k); out != OutcomeHit {
		t.Errorf("Get after success = %s, want hit (negative memory cleared)", out)
	}
}

// TestNegativeTTLRequiresClock pins the constructor validation.
func TestNegativeTTLRequiresClock(t *testing.T) {
	_, err := New(Options{
		Compute:     func(context.Context, Key) (*Entry, error) { return nil, nil },
		NegativeTTL: time.Second,
	})
	if err == nil {
		t.Fatal("New accepted NegativeTTL without a Clock")
	}
}

// TestSpillByteCapPrunesOldest drives the spill past its byte budget
// and proves the cap holds: the oldest files are removed first, every
// removal ticks evicted_spill, and a warm-restarted store on the same
// directory serves the survivors from spill while recomputing the
// pruned keys from scratch.
func TestSpillByteCapPrunesOldest(t *testing.T) {
	// Learn one spill file's on-disk size with an unbounded probe store,
	// so the capped store's budget can be sized in entries.
	probeDir := t.TempDir()
	probe, err := New(Options{Compute: (&countingComputer{pad: 64}).compute, SpillDir: probeDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := probe.Get(key(gpu.GenV100, "ex1")); err != nil {
		t.Fatal(err)
	}
	fileSize := probe.SpillBytes()
	if fileSize <= 0 {
		t.Fatalf("probe spill accounted %d bytes, want > 0", fileSize)
	}

	// Room for two files (all keys render the same payload size), plus
	// slack for the few bytes of key-string variation.
	dir := t.TempDir()
	comp := &countingComputer{pad: 64}
	reg := obs.New()
	s, err := New(Options{
		Compute:       comp.compute,
		SpillDir:      dir,
		SpillMaxBytes: 2*fileSize + fileSize/2,
		Obs:           reg.Scope("resultstore"),
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{key(gpu.GenV100, "ex1"), key(gpu.GenV100, "ex2"),
		key(gpu.GenV100, "ex3"), key(gpu.GenV100, "ex4")}
	for _, k := range keys {
		if _, out, err := s.Get(k); err != nil || out != OutcomeMiss {
			t.Fatalf("Get(%s) = (%s, %v), want miss", k, out, err)
		}
	}
	if got := reg.Scope("resultstore").Counter("evicted_spill").Value(); got != 2 {
		t.Errorf("evicted_spill = %d, want 2 (4 written into a 2-entry budget)", got)
	}
	if got := s.SpillBytes(); got > 2*fileSize+fileSize/2 {
		t.Errorf("spill bytes %d exceed the %d budget", got, 2*fileSize+fileSize/2)
	}
	if got := reg.Scope("resultstore").Gauge("spill_bytes").Value(); got != s.SpillBytes() {
		t.Errorf("spill_bytes gauge = %d, accounting says %d", got, s.SpillBytes())
	}

	// Warm restart on the pruned directory: the two newest keys load
	// from spill, the two oldest were pruned and must recompute.
	comp2 := &countingComputer{pad: 64}
	s2, err := New(Options{Compute: comp2.compute, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[2:] {
		if _, out, err := s2.Get(k); err != nil || out != OutcomeSpill {
			t.Errorf("restarted Get(%s) = (%s, %v), want spill", k, out, err)
		}
	}
	for _, k := range keys[:2] {
		if _, out, err := s2.Get(k); err != nil || out != OutcomeMiss {
			t.Errorf("restarted Get(%s) = (%s, %v), want miss (file was pruned)", k, out, err)
		}
		if n := comp2.callCount(k); n != 1 {
			t.Errorf("pruned key %s recomputed %d times, want 1", k, n)
		}
	}
}

// TestSpillAdoptionPrunesInheritedFiles restarts a store over an
// existing spill population with a budget smaller than the inherited
// bytes: adoption must prune down to the budget immediately instead of
// carrying an oversized spill forever.
func TestSpillAdoptionPrunesInheritedFiles(t *testing.T) {
	dir := t.TempDir()
	writer, err := New(Options{Compute: (&countingComputer{pad: 64}).compute, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	keys := []Key{key(gpu.GenA100, "ex1"), key(gpu.GenA100, "ex2"), key(gpu.GenA100, "ex3")}
	for _, k := range keys {
		if _, _, err := writer.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	perFile := writer.SpillBytes() / int64(len(keys))

	reg := obs.New()
	s, err := New(Options{
		Compute:       (&countingComputer{pad: 64}).compute,
		SpillDir:      dir,
		SpillMaxBytes: perFile + perFile/2, // room for one inherited file
		Obs:           reg.Scope("resultstore"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope("resultstore").Counter("evicted_spill").Value(); got != 2 {
		t.Errorf("adoption evicted %d files, want 2", got)
	}
	if got := s.SpillBytes(); got > perFile+perFile/2 {
		t.Errorf("adopted spill bytes %d exceed the %d budget", got, perFile+perFile/2)
	}
}

func TestKeyCanonicalForm(t *testing.T) {
	k := Key{GPU: gpu.GenV100, Exp: "fig1", Quick: false}
	if got := k.String(); got != "v100/fig1?quick=false" {
		t.Errorf("Key.String() = %q", got)
	}
	if a, b := k.ContentAddress(), (Key{GPU: gpu.GenV100, Exp: "fig1", Quick: true}).ContentAddress(); a == b {
		t.Error("quick and full keys share a content address")
	}
	if len(k.ContentAddress()) != 64 {
		t.Errorf("content address %q is not hex SHA-256", k.ContentAddress())
	}
}

// TestWarmRestartSkipsCorruptSpill is the crash-and-corrupt drill: a
// store restarts onto a spill directory holding a truncated file, a
// file whose content belongs to a different key than its address
// claims, and a stray temp file from a crashed atomic write. Every
// corrupt entry must be skipped with a spill_err tick — recomputed,
// never loaded, never a crash — and deleted so the accounting stays
// consistent when the recomputed entry re-spills to the same address.
func TestWarmRestartSkipsCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	comp1 := &countingComputer{pad: 32}
	s1, err := New(Options{Compute: comp1.compute, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	kTrunc := key(gpu.GenV100, "fig1")
	kSwap := key(gpu.GenV100, "fig2")
	kGood := key(gpu.GenV100, "fig3")
	for _, k := range []Key{kTrunc, kSwap, kGood} {
		if _, _, err := s1.Get(k); err != nil {
			t.Fatal(err)
		}
	}

	// Corruption 1: truncate kTrunc's spill file mid-JSON.
	truncPath := filepath.Join(dir, kTrunc.ContentAddress()+".json")
	data, err := os.ReadFile(truncPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Corruption 2: content-hash mismatch — kSwap's address holds bytes
	// that deserialize to kGood's entry (valid JSON, wrong identity).
	goodBytes, err := os.ReadFile(filepath.Join(dir, kGood.ContentAddress()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	swapPath := filepath.Join(dir, kSwap.ContentAddress()+".json")
	if err := os.WriteFile(swapPath, goodBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	// Corruption 3: a stray temp file from a crashed atomic write.
	strayPath := filepath.Join(dir, "spill-crashed.tmp")
	if err := os.WriteFile(strayPath, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	comp2 := &countingComputer{pad: 32}
	reg := obs.New()
	s2, err := New(Options{Compute: comp2.compute, SpillDir: dir, Obs: reg.Scope("resultstore")})
	if err != nil {
		t.Fatalf("warm restart over a corrupt spill dir: %v", err)
	}
	if _, err := os.Stat(strayPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("stray tmp file survived adoption")
	}

	// The truncated key recomputes (miss, not spill) and the corrupt file
	// is replaced by the fresh write.
	e, out, err := s2.Get(kTrunc)
	if err != nil || out != OutcomeMiss {
		t.Fatalf("Get(truncated) = (%s, %v), want recompute miss", out, err)
	}
	if !bytes.Equal(e.JSON, fakeEntry(kTrunc, 32).JSON) {
		t.Error("recomputed entry for the truncated key has wrong bytes")
	}
	// The mismatched key likewise recomputes — the imposter bytes must
	// never be served under kSwap's identity.
	e, out, err = s2.Get(kSwap)
	if err != nil || out != OutcomeMiss {
		t.Fatalf("Get(mismatched) = (%s, %v), want recompute miss", out, err)
	}
	if !bytes.Equal(e.JSON, fakeEntry(kSwap, 32).JSON) {
		t.Error("mismatched-address key served the imposter's bytes")
	}
	// The intact key still loads from spill.
	if _, out, err := s2.Get(kGood); err != nil || out != OutcomeSpill {
		t.Fatalf("Get(intact) = (%s, %v), want spill", out, err)
	}
	if got := reg.Scope("resultstore").Counter("spill_err").Value(); got != 2 {
		t.Errorf("spill_err = %d, want 2 (one truncated, one mismatched)", got)
	}
	if got := comp2.callCount(kGood); got != 0 {
		t.Errorf("intact key recomputed %d times, want 0", got)
	}

	// Accounting must match the directory byte-for-byte after the
	// corrupt files were discarded and the recomputes re-spilled.
	var onDisk int64
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		onDisk += info.Size()
	}
	if got := s2.SpillBytes(); got != onDisk {
		t.Errorf("spill accounting %d bytes, directory holds %d", got, onDisk)
	}
}
