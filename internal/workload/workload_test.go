package workload

import (
	"testing"

	"gpunoc/internal/gpu"
	"gpunoc/internal/stats"
)

func TestNewBFSValidation(t *testing.T) {
	if _, err := NewBFS(1, 4, 0); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewBFS(100, 0, 0); err == nil {
		t.Error("zero degree should fail")
	}
}

func TestBFSFrontierDynamics(t *testing.T) {
	b, err := NewBFS(4000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.Steps() < 3 {
		t.Fatalf("BFS finished in %d steps; graph too small to be interesting", b.Steps())
	}
	// Traffic volume should vary strongly over steps (frontier growth).
	var volumes []float64
	for s := 0; s < b.Steps(); s++ {
		volumes = append(volumes, float64(len(b.Step(s))))
	}
	if stats.Max(volumes) < 10*volumes[0] {
		t.Errorf("BFS frontier never exploded: %v", volumes)
	}
	if b.Step(-1) != nil || b.Step(b.Steps()) != nil {
		t.Error("out-of-range steps should be nil")
	}
	if b.Name() != "bfs" {
		t.Error("name")
	}
}

func TestGaussianShrinkingWindow(t *testing.T) {
	g, err := NewGaussian(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Steps() != 255 {
		t.Fatalf("steps = %d, want 255", g.Steps())
	}
	prev := len(g.Step(0))
	for s := 1; s < g.Steps(); s++ {
		cur := len(g.Step(s))
		if cur > prev {
			t.Fatalf("step %d accesses %d > previous %d; window must shrink", s, cur, prev)
		}
		prev = cur
	}
	if g.Step(999) != nil {
		t.Error("out-of-range step should be nil")
	}
	if _, err := NewGaussian(1, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewGaussian(8, 0); err == nil {
		t.Error("zero stride should fail")
	}
}

func TestStreaming(t *testing.T) {
	s, err := NewStreaming(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 4 {
		t.Fatal("steps")
	}
	step0 := s.Step(0)
	if len(step0) != 32 { // 1024 / 32
		t.Errorf("step size %d, want 32", len(step0))
	}
	// Steps cover disjoint, increasing ranges.
	step1 := s.Step(1)
	if step1[0] != 1024 {
		t.Errorf("step 1 starts at %d, want 1024", step1[0])
	}
	if _, err := NewStreaming(0, 4); err == nil {
		t.Error("zero size should fail")
	}
	if s.Step(9) != nil {
		t.Error("out-of-range step should be nil")
	}
}

// Observation #12 / Fig. 16: whatever the workload's temporal shape, the
// address hash keeps per-slice traffic balanced within every substantial
// timestep.
func TestTrafficStaysBalanced(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	bfs, err := NewBFS(20000, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	gauss, err := NewGaussian(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewStreaming(64*1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []Generator{bfs, gauss, stream} {
		matrix, err := TrafficMatrix(dev, g)
		if err != nil {
			t.Fatal(err)
		}
		if len(matrix) != g.Steps() {
			t.Fatalf("%s: matrix rows %d != steps %d", g.Name(), len(matrix), g.Steps())
		}
		balance := AnalyzeBalance(matrix, 1000)
		checked := 0
		for s, b := range balance {
			if b.Total < 1000 {
				continue
			}
			checked++
			if b.CV > 0.35 {
				t.Errorf("%s step %d: slice-traffic CV %.2f; hash should balance (Observation #12)", g.Name(), s, b.CV)
			}
		}
		if checked == 0 {
			t.Errorf("%s: no substantial steps to check", g.Name())
		}
	}
}

func TestTrafficVolumeVariesButBalanceHolds(t *testing.T) {
	// The paper's point: volume changes over time (frontier explosions,
	// shrinking windows) yet the per-slice distribution stays consistent.
	dev := gpu.MustNew(gpu.V100())
	g, err := NewGaussian(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := TrafficMatrix(dev, g)
	if err != nil {
		t.Fatal(err)
	}
	balance := AnalyzeBalance(matrix, 0)
	first, last := balance[0].Total, balance[len(balance)-2].Total
	if last >= first/4 {
		t.Errorf("gaussian volume should decay strongly: first %.0f last %.0f", first, last)
	}
}

func TestTrafficMatrixValidation(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	if _, err := TrafficMatrix(dev, &Streaming{steps: 0}); err == nil {
		t.Error("empty generator should fail")
	}
}

func TestAnalyzeBalanceSkipsTinySteps(t *testing.T) {
	matrix := [][]float64{{1, 0, 0, 0}, {100, 100, 100, 100}}
	b := AnalyzeBalance(matrix, 10)
	if b[0].CV != 0 {
		t.Error("tiny step should not get a CV")
	}
	if b[1].CV != 0 {
		t.Error("perfectly balanced step should have CV 0")
	}
	if b[0].Total != 1 || b[1].Total != 400 {
		t.Error("totals wrong")
	}
}

func TestHotspotConstantVolume(t *testing.T) {
	h, err := NewHotspot(128, 6)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "hotspot" || h.Steps() != 6 {
		t.Error("identity wrong")
	}
	first := len(h.Step(0))
	for s := 1; s < h.Steps(); s++ {
		if len(h.Step(s)) != first {
			t.Fatalf("step %d volume %d != %d; stencil volume is constant", s, len(h.Step(s)), first)
		}
	}
	if h.Step(-1) != nil || h.Step(99) != nil {
		t.Error("out-of-range steps should be nil")
	}
	if _, err := NewHotspot(1, 3); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewHotspot(16, 0); err == nil {
		t.Error("zero steps should fail")
	}
	// Balanced through the hash like the others.
	dev := gpu.MustNew(gpu.V100())
	matrix, err := TrafficMatrix(dev, h)
	if err != nil {
		t.Fatal(err)
	}
	for s, b := range AnalyzeBalance(matrix, 500) {
		if b.Total >= 500 && b.CV > 0.35 {
			t.Errorf("hotspot step %d CV %.2f", s, b.CV)
		}
	}
}
