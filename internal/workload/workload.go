// Package workload generates synthetic memory-address traces with the
// access structure of the Rodinia kernels the paper profiles in Fig. 16 -
// bfs (irregular frontier expansion) and gaussian (a shrinking dense
// elimination window) - plus a plain streaming baseline. Feeding a trace
// through the device's address hash yields the per-L2-slice traffic
// matrix over time, demonstrating Observation #12: however the footprint
// and volume evolve, the hash keeps slice traffic balanced.
package workload

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/gpu"
	"gpunoc/internal/stats"
)

// Generator produces a time-stepped address stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Steps is the number of timesteps.
	Steps() int
	// Step returns the byte addresses accessed during timestep t.
	Step(t int) []uint64
}

// BFS models breadth-first search over a random graph: each timestep
// visits the current frontier's adjacency lists (scattered, irregular
// addresses) and the visited bitmap. Frontier size grows explosively and
// then collapses, so traffic volume swings while the footprint stays
// irregular.
type BFS struct {
	name     string
	frontier [][]int // node ids per step
	adjBase  uint64
	adjLen   []int // adjacency length per node
}

// NewBFS builds a BFS trace over a random graph of n nodes with average
// degree deg, starting from node 0.
func NewBFS(n, deg int, seed int64) (*BFS, error) {
	if n <= 1 || deg <= 0 {
		return nil, fmt.Errorf("workload: bfs needs n > 1 and positive degree")
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		d := 1 + rng.Intn(2*deg)
		adj[u] = make([]int, d)
		for i := range adj[u] {
			adj[u][i] = rng.Intn(n)
		}
	}
	// Level-synchronous BFS to record per-step frontiers.
	visited := make([]bool, n)
	visited[0] = true
	frontier := []int{0}
	var levels [][]int
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		var next []int
		for _, u := range frontier {
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	adjLen := make([]int, n)
	for u := range adj {
		adjLen[u] = len(adj[u])
	}
	return &BFS{name: "bfs", frontier: levels, adjBase: 0x1000_0000, adjLen: adjLen}, nil
}

// Name implements Generator.
func (b *BFS) Name() string { return b.name }

// Steps implements Generator.
func (b *BFS) Steps() int { return len(b.frontier) }

// Step implements Generator: the frontier's adjacency lists (CSR rows)
// plus the visited bitmap, emitted at memory-transaction granularity as
// the warps' coalescers would issue them: one transaction per 128-byte
// adjacency line and per-warp-deduplicated bitmap sector touches.
func (b *BFS) Step(t int) []uint64 {
	if t < 0 || t >= len(b.frontier) {
		return nil
	}
	var addrs []uint64
	front := b.frontier[t]
	// The visited bitmap is tiny and hot: after a warp's first touch the
	// sector sits in the L1, so only first touches per step reach the L2
	// counters the figure is built from.
	bitmapSeen := map[uint64]bool{}
	for _, u := range front {
		// Adjacency row: one transaction per 128-byte line of edges.
		row := b.adjBase + uint64(u)*64
		lines := (b.adjLen[u]*4 + 127) / 128
		for l := 0; l < lines; l++ {
			addrs = append(addrs, row+uint64(l)*128)
		}
		sector := (0x2000_0000 + uint64(u)/8) &^ 31
		if !bitmapSeen[sector] {
			bitmapSeen[sector] = true
			addrs = append(addrs, sector)
		}
	}
	return addrs
}

// Gaussian models Gaussian elimination on an n x n matrix of 4-byte
// elements: timestep k reads and updates the trailing (n-k) x (n-k)
// submatrix, so the footprint is dense row-major but shrinks every step -
// the declining traffic volume visible in the paper's Fig. 16(b). The
// trace is emitted at memory-transaction granularity (one address per
// 128-byte line touched), as an L2 traffic counter would see it.
type Gaussian struct {
	n    int
	base uint64
	// stride keeps only every stride-th transaction, to bound trace size.
	stride int
}

// lineElems is how many 4-byte matrix elements share one 128-byte line.
const lineElems = 32

// NewGaussian builds an n x n elimination trace, sampling every stride-th
// transaction.
func NewGaussian(n, stride int) (*Gaussian, error) {
	if n <= 1 || stride <= 0 {
		return nil, fmt.Errorf("workload: gaussian needs n > 1 and positive stride")
	}
	return &Gaussian{n: n, base: 0x4000_0000, stride: stride}, nil
}

// Name implements Generator.
func (g *Gaussian) Name() string { return "gaussian" }

// Steps implements Generator.
func (g *Gaussian) Steps() int { return g.n - 1 }

// Step implements Generator.
func (g *Gaussian) Step(t int) []uint64 {
	if t < 0 || t >= g.n-1 {
		return nil
	}
	var addrs []uint64
	k := t
	count := 0
	for i := k + 1; i < g.n; i++ {
		for j := k; j < g.n; j += lineElems {
			if count%g.stride == 0 {
				addrs = append(addrs, g.base+(uint64(i)*uint64(g.n)+uint64(j))*4)
			}
			count++
		}
	}
	return addrs
}

// Streaming is a sequential read sweep split into equal timesteps, the
// best case for any address hash.
type Streaming struct {
	bytesPerStep uint64
	steps        int
}

// NewStreaming builds a streaming trace.
func NewStreaming(bytesPerStep uint64, steps int) (*Streaming, error) {
	if bytesPerStep == 0 || steps <= 0 {
		return nil, fmt.Errorf("workload: streaming needs positive size and steps")
	}
	return &Streaming{bytesPerStep: bytesPerStep, steps: steps}, nil
}

// Name implements Generator.
func (s *Streaming) Name() string { return "streaming" }

// Steps implements Generator.
func (s *Streaming) Steps() int { return s.steps }

// Step implements Generator.
func (s *Streaming) Step(t int) []uint64 {
	if t < 0 || t >= s.steps {
		return nil
	}
	var addrs []uint64
	start := uint64(t) * s.bytesPerStep
	for off := uint64(0); off < s.bytesPerStep; off += 32 {
		addrs = append(addrs, start+off)
	}
	return addrs
}

// TrafficMatrix runs a trace through the device's address-to-slice hash
// and returns matrix[t][slice] = accesses of slice during timestep t -
// the data behind the Fig. 16 heat maps.
func TrafficMatrix(dev *gpu.Device, g Generator) ([][]float64, error) {
	if g.Steps() <= 0 {
		return nil, fmt.Errorf("workload: %s has no steps", g.Name())
	}
	slices := dev.Config().L2Slices
	matrix := make([][]float64, g.Steps())
	for t := range matrix {
		row := make([]float64, slices)
		for _, addr := range g.Step(t) {
			row[dev.HomeSlice(addr)]++
		}
		matrix[t] = row
	}
	return matrix, nil
}

// StepStats summarizes one timestep's slice distribution.
type StepStats struct {
	Total float64
	// CV is the coefficient of variation of per-slice traffic: low CV
	// means the hash load-balanced the step (Observation #12).
	CV float64
}

// AnalyzeBalance computes per-step totals and imbalance for a traffic
// matrix, skipping steps whose volume is below minTotal (tiny frontiers
// are statistically meaningless).
func AnalyzeBalance(matrix [][]float64, minTotal float64) []StepStats {
	out := make([]StepStats, 0, len(matrix))
	for _, row := range matrix {
		total := stats.Sum(row)
		s := StepStats{Total: total}
		if total >= minTotal && total > 0 {
			s.CV = stats.StdDev(row) / stats.Mean(row)
		}
		out = append(out, s)
	}
	return out
}

// Hotspot models an iterative 2-D stencil (like Rodinia's hotspot): every
// timestep reads the full temperature and power grids at constant volume,
// the opposite temporal profile of BFS's bursts and Gaussian's decay. The
// trace is emitted at 128-byte-line granularity.
type Hotspot struct {
	n     int
	steps int
	base  uint64
}

// NewHotspot builds an n x n stencil trace of the given timestep count.
func NewHotspot(n, steps int) (*Hotspot, error) {
	if n <= 1 || steps <= 0 {
		return nil, fmt.Errorf("workload: hotspot needs n > 1 and positive steps")
	}
	return &Hotspot{n: n, steps: steps, base: 0x6000_0000}, nil
}

// Name implements Generator.
func (h *Hotspot) Name() string { return "hotspot" }

// Steps implements Generator.
func (h *Hotspot) Steps() int { return h.steps }

// Step implements Generator: one full row-major sweep of both grids.
func (h *Hotspot) Step(t int) []uint64 {
	if t < 0 || t >= h.steps {
		return nil
	}
	var addrs []uint64
	elems := uint64(h.n) * uint64(h.n)
	gridBytes := elems * 4
	for off := uint64(0); off < gridBytes; off += 128 {
		addrs = append(addrs, h.base+off)           // temperature grid
		addrs = append(addrs, h.base+gridBytes+off) // power grid
	}
	return addrs
}
