package sidechannel

import (
	"testing"

	"gpunoc/internal/gpu"
	"gpunoc/internal/stats"
)

func TestClusterValidation(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	if _, err := ClusterSMsByLatency(dev, nil, 4, 0.9); err == nil {
		t.Error("empty SM set should fail")
	}
	if _, err := ClusterSMsByLatency(dev, []int{0}, 4, 1.5); err == nil {
		t.Error("bad threshold should fail")
	}
}

// Implication #1 on V100: latency-profile correlation clusters recover
// the physical column groups - GPC pairs {0,1}, {2,3}, {4,5} share
// columns, so two SMs per GPC cluster into exactly three groups that
// match the floorplan.
func TestClusterRecoversV100Columns(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	// Two SMs from each GPC: SMs 0-5 are GPCs 0-5, SMs 6-11 repeat them.
	sms := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	clusters, err := ClusterSMsByLatency(dev, sms, 8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("found %d clusters, want 3 column groups: %v", len(clusters), clusters)
	}
	// Each cluster must hold exactly the SMs of one column pair.
	colOf := func(sm int) int { return (sm % 6) / 2 } // GPC pairs share columns
	for _, cl := range clusters {
		if len(cl) != 4 {
			t.Errorf("cluster %v has %d SMs, want 4", cl, len(cl))
		}
		for _, sm := range cl {
			if colOf(sm) != colOf(cl[0]) {
				t.Errorf("cluster %v mixes columns", cl)
			}
		}
	}
}

// On A100 every GPC has its own column, so clustering separates GPCs.
func TestClusterSeparatesA100GPCs(t *testing.T) {
	dev := gpu.MustNew(gpu.A100())
	// Two SMs from each of four GPCs spanning both partitions.
	// The shared far-partition half of each profile inflates cross-GPC
	// correlation on A100, so separating GPCs needs a tight threshold.
	sms := []int{0, 8, 2, 10, 4, 12, 6, 14}
	clusters, err := ClusterSMsByLatency(dev, sms, 16, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 4 {
		t.Fatalf("found %d clusters, want 4 GPCs: %v", len(clusters), clusters)
	}
	for _, cl := range clusters {
		for _, sm := range cl {
			if dev.GPCOf(sm) != dev.GPCOf(cl[0]) {
				t.Errorf("cluster %v mixes GPCs", cl)
			}
		}
	}
}

// On H100 the clusters split below GPC granularity, exposing the CPC
// level (Fig. 6c).
func TestClusterExposesH100CPCs(t *testing.T) {
	dev := gpu.MustNew(gpu.H100())
	// Two SMs from each CPC of GPC 0.
	var sms []int
	for cpc := 0; cpc < 3; cpc++ {
		group := dev.SMsOfCPC(0, cpc)
		sms = append(sms, group[0], group[3])
	}
	clusters, err := ClusterSMsByLatency(dev, sms, 8, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("found %d clusters, want the 3 CPCs: %v", len(clusters), clusters)
	}
	for _, cl := range clusters {
		for _, sm := range cl {
			if dev.CPCOf(sm) != dev.CPCOf(cl[0]) {
				t.Errorf("cluster %v mixes CPCs", cl)
			}
		}
	}
}

// Fig. 17(a): warp latency is linear in the number of unique sectors and
// shifts by a constant across SMs.
func TestTimingVsUniqueLines(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	curve24, err := TimingVsUniqueLines(dev, 24, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve24) != 32 {
		t.Fatalf("curve length %d", len(curve24))
	}
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	slope, _, r, err := stats.LinearFit(xs, curve24)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.97 {
		t.Errorf("timing-vs-lines fit r = %.3f, want strongly linear", r)
	}
	if slope < 2 || slope > 8 {
		t.Errorf("slope %.1f cycles/sector outside plausible range", slope)
	}
	// Another SM shows (approximately) the same slope, different offset.
	curve60, err := TimingVsUniqueLines(dev, 60, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	slope2, _, _, err := stats.LinearFit(xs, curve60)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := slope2 / slope; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("slopes differ across SMs: %.2f vs %.2f", slope, slope2)
	}
	off := stats.Mean(curve60) - stats.Mean(curve24)
	if off == 0 {
		t.Log("offset identical; acceptable but unusual")
	}
}

func TestTimingVsUniqueLinesValidation(t *testing.T) {
	dev := gpu.MustNew(gpu.V100())
	if _, err := TimingVsUniqueLines(dev, 0, 0, 4); err == nil {
		t.Error("zero sectors should fail")
	}
	if _, err := TimingVsUniqueLines(dev, 0, 64, 4); err == nil {
		t.Error("more sectors than lanes should fail")
	}
	if _, err := TimingVsUniqueLines(dev, 0, 8, 0); err == nil {
		t.Error("zero repeats should fail")
	}
}
