package sidechannel

import (
	"fmt"
	"math/big"
	"math/rand"

	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/rsa"
	"gpunoc/internal/stats"
)

// RSATiming is one observation of the square-and-multiply loop: the
// (secret) exponent's ones count, the known bit length, and the measured
// kernel cycles. The attack's ground truth keeps the ones count for
// evaluation; a real attacker only sees Cycles.
type RSATiming struct {
	Ones   int
	Bits   int
	Cycles float64
}

// RandomExponent builds a bits-long exponent with exactly ones 1-bits
// (the top bit is always set, counting toward ones).
func RandomExponent(bits, ones int, rng *rand.Rand) (*big.Int, error) {
	if bits < 2 || ones < 1 || ones > bits {
		return nil, fmt.Errorf("sidechannel: exponent with %d ones in %d bits impossible", ones, bits)
	}
	e := new(big.Int)
	e.SetBit(e, bits-1, 1)
	remaining := ones - 1
	positions := rng.Perm(bits - 1)
	for _, p := range positions[:remaining] {
		e.SetBit(e, p, 1)
	}
	return e, nil
}

// CollectRSATimings times the modular exponentiation for exponents of the
// given ones counts (repeats each), using the timer's machine/scheduler.
func CollectRSATimings(t *rsa.GPUTimer, bits int, onesCounts []int, repeats int, rng *rand.Rand) ([]RSATiming, error) {
	if repeats <= 0 {
		return nil, fmt.Errorf("sidechannel: repeats must be positive")
	}
	mod := big.NewInt(1_000_003)
	base := big.NewInt(48271)
	var out []RSATiming
	for _, ones := range onesCounts {
		for r := 0; r < repeats; r++ {
			exp, err := RandomExponent(bits, ones, rng)
			if err != nil {
				return nil, err
			}
			_, cycles, err := t.ModExp(base, exp, mod)
			if err != nil {
				return nil, err
			}
			out = append(out, RSATiming{Ones: rsa.OnesCount(exp), Bits: bits, Cycles: cycles})
		}
	}
	return out, nil
}

// RSAFit is the attacker's linear timing model T = Slope*ones + Intercept.
type RSAFit struct {
	Slope, Intercept float64
	// R is the Pearson correlation of the fit; near 1 under static
	// scheduling (Fig. 19a), degraded under the random defence (Fig. 19b).
	R float64
}

// FitRSAModel calibrates the linear relationship from timings.
func FitRSAModel(timings []RSATiming) (RSAFit, error) {
	if len(timings) < 2 {
		return RSAFit{}, fmt.Errorf("sidechannel: need at least 2 timings")
	}
	xs := make([]float64, len(timings))
	ys := make([]float64, len(timings))
	for i, t := range timings {
		xs[i] = float64(t.Ones)
		ys[i] = t.Cycles
	}
	slope, intercept, r, err := stats.LinearFit(xs, ys)
	if err != nil {
		return RSAFit{}, err
	}
	return RSAFit{Slope: slope, Intercept: intercept, R: r}, nil
}

// InferOnes inverts the model for a measured time.
func (f RSAFit) InferOnes(cycles float64) float64 {
	if f.Slope == 0 {
		return 0
	}
	return (cycles - f.Intercept) / f.Slope
}

// SquareKernelSweep reproduces Fig. 17(b): it times the two-SM square
// kernel (a fixed modular exponentiation) with one SM pinned and the
// second varied over candidates, grid synchronization on. Execution time
// swings with the second SM's placement - modestly within a partition,
// by up to ~1.7x across partitions.
func SquareKernelSweep(dev *gpu.Device, fixedSM int, candidates []int) ([]float64, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("sidechannel: no candidate SMs")
	}
	exp, _ := new(big.Int).SetString("f0f0f0f0f0f0f0f0", 16)
	mod := big.NewInt(1_000_033)
	out := make([]float64, len(candidates))
	for i, other := range candidates {
		opts := kernel.DefaultOptions()
		opts.GridSync = true
		m, err := kernel.NewMachine(dev, kernel.ListScheduler{SMs: []int{fixedSM, other}}, opts)
		if err != nil {
			return nil, err
		}
		timer := rsa.NewGPUTimer(m)
		_, cycles, err := timer.ModExp(big.NewInt(7), exp, mod)
		if err != nil {
			return nil, err
		}
		out[i] = cycles
	}
	return out, nil
}

// EvaluateRSAAttack calibrates on the first portion of the timings and
// reports the mean absolute error (in bits) of the ones-count inference
// on the remainder - small under static scheduling, large under random
// scheduling where the calibration no longer matches the execution SMs.
func EvaluateRSAAttack(calib, test []RSATiming) (RSAFit, float64, error) {
	fit, err := FitRSAModel(calib)
	if err != nil {
		return RSAFit{}, 0, err
	}
	if len(test) == 0 {
		return fit, 0, fmt.Errorf("sidechannel: no test timings")
	}
	var errSum float64
	for _, t := range test {
		est := fit.InferOnes(t.Cycles)
		diff := est - float64(t.Ones)
		if diff < 0 {
			diff = -diff
		}
		errSum += diff
	}
	return fit, errSum / float64(len(test)), nil
}
