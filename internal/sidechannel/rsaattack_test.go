package sidechannel

import (
	"math/rand"
	"testing"

	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/rsa"
	"gpunoc/internal/stats"
)

func rsaTimer(t *testing.T, dev *gpu.Device, sched kernel.Scheduler) *rsa.GPUTimer {
	t.Helper()
	opts := kernel.DefaultOptions()
	opts.GridSync = true
	m, err := kernel.NewMachine(dev, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rsa.NewGPUTimer(m)
}

func TestRandomExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, err := RandomExponent(64, 17, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.BitLen() != 64 {
		t.Errorf("bit length %d, want 64", e.BitLen())
	}
	if got := rsa.OnesCount(e); got != 17 {
		t.Errorf("ones = %d, want 17", got)
	}
	if _, err := RandomExponent(4, 9, rng); err == nil {
		t.Error("impossible ones count should fail")
	}
	if _, err := RandomExponent(1, 1, rng); err == nil {
		t.Error("tiny exponent should fail")
	}
}

func TestCollectRSATimingsValidation(t *testing.T) {
	timer := rsaTimer(t, gpu.MustNew(gpu.A100()), kernel.ListScheduler{SMs: []int{0, 8}})
	if _, err := CollectRSATimings(timer, 64, []int{8}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero repeats should fail")
	}
}

func TestFitRSAModelValidation(t *testing.T) {
	if _, err := FitRSAModel(nil); err == nil {
		t.Error("empty timings should fail")
	}
	if (RSAFit{}).InferOnes(100) != 0 {
		t.Error("degenerate fit should infer 0")
	}
}

// Fig. 19(a): with static scheduling the time-vs-ones relationship is a
// clean line and the attacker infers the ones count almost exactly;
// executing on different SMs shifts the line; Fig. 19(b): random
// scheduling makes the relationship noisy and inference inaccurate.
func TestRSAAttackSchedulingModes(t *testing.T) {
	dev := gpu.MustNew(gpu.A100())
	ones := []int{8, 16, 24, 32, 40, 48, 56}
	rng := rand.New(rand.NewSource(3))

	static := rsaTimer(t, dev, kernel.ListScheduler{SMs: []int{0, 8}})
	calib, err := CollectRSATimings(static, 64, ones, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	test, err := CollectRSATimings(static, 64, ones, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	fit, mae, err := EvaluateRSAAttack(calib, test)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R < 0.995 {
		t.Errorf("static fit R = %.4f, want near-perfect linearity", fit.R)
	}
	if fit.Slope <= 0 {
		t.Errorf("slope %.1f should be positive (more ones, more time)", fit.Slope)
	}
	if mae > 1.0 {
		t.Errorf("static inference error %.2f bits, want < 1", mae)
	}

	// Same-partition different SMs: the line shifts but stays tight.
	shifted := rsaTimer(t, dev, kernel.ListScheduler{SMs: []int{16, 24}})
	testShift, err := CollectRSATimings(shifted, 64, ones, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, maeShift, err := EvaluateRSAAttack(calib, testShift)
	if err != nil {
		t.Fatal(err)
	}
	if maeShift <= mae {
		t.Errorf("different-SM inference error %.2f should exceed same-SM %.2f", maeShift, mae)
	}

	// Cross-partition SMs: far operand loads blow up the error.
	cross := rsaTimer(t, dev, kernel.ListScheduler{SMs: []int{0, 4}})
	testCross, err := CollectRSATimings(cross, 64, ones, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, maeCross, err := EvaluateRSAAttack(calib, testCross)
	if err != nil {
		t.Fatal(err)
	}
	if maeCross < 10 {
		t.Errorf("cross-partition inference error %.2f bits, want large (paper: far placement shifts timing heavily)", maeCross)
	}

	// Random scheduling: noisy relationship, poor inference even when
	// calibrating under the same policy.
	schedRng := rand.New(rand.NewSource(7))
	random := rsaTimer(t, dev, kernel.RandomScheduler{Rand: schedRng.Uint64})
	calibR, err := CollectRSATimings(random, 64, ones, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	testR, err := CollectRSATimings(random, 64, ones, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	fitR, maeR, err := EvaluateRSAAttack(calibR, testR)
	if err != nil {
		t.Fatal(err)
	}
	if fitR.R > 0.98 {
		t.Errorf("random-scheduling fit R = %.4f; the relationship should be noisy", fitR.R)
	}
	if maeR < 3*mae+1 {
		t.Errorf("random-scheduling inference error %.2f should far exceed static %.2f", maeR, mae)
	}
}

func TestEvaluateRSAAttackValidation(t *testing.T) {
	timer := rsaTimer(t, gpu.MustNew(gpu.A100()), kernel.ListScheduler{SMs: []int{0, 8}})
	rng := rand.New(rand.NewSource(2))
	calib, err := CollectRSATimings(timer, 32, []int{4, 16, 28}, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EvaluateRSAAttack(calib, nil); err == nil {
		t.Error("empty test set should fail")
	}
	if _, _, err := EvaluateRSAAttack(nil, calib); err == nil {
		t.Error("empty calibration should fail")
	}
}

// Fig. 17(b): the square kernel's execution time across second-SM
// placements spans up to ~1.7x, with cross-partition placements slowest.
func TestSquareKernelSweep(t *testing.T) {
	dev := gpu.MustNew(gpu.A100())
	// Fixed SM 0 (partition 0); candidates alternate partitions.
	candidates := []int{8, 16, 24, 1, 2, 3, 4, 5, 6, 7}
	times, err := SquareKernelSweep(dev, 0, candidates)
	if err != nil {
		t.Fatal(err)
	}
	ratio := stats.Max(times) / stats.Min(times)
	if ratio < 1.3 || ratio > 2.2 {
		t.Errorf("square-kernel placement spread %.2fx outside [1.3, 2.2] (paper: up to 1.7x)", ratio)
	}
	// Same-partition placements differ only modestly (paper: ~12%).
	samePart := times[:3] // SMs 8, 16, 24 share partition 0 with SM 0
	if spread := stats.Max(samePart)/stats.Min(samePart) - 1; spread > 0.25 {
		t.Errorf("same-partition spread %.0f%%, want modest", spread*100)
	}
	if _, err := SquareKernelSweep(dev, 0, nil); err == nil {
		t.Error("empty candidates should fail")
	}
}
