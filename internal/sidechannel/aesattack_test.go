package sidechannel

import (
	"math/rand"
	"testing"

	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
)

var testKey = []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

func victim(t *testing.T, sched kernel.Scheduler) *AESVictim {
	t.Helper()
	m, err := kernel.NewMachine(gpu.MustNew(gpu.V100()), sched, kernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewAESVictim(m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewAESVictimValidation(t *testing.T) {
	if _, err := NewAESVictim(nil, testKey); err == nil {
		t.Error("nil machine should fail")
	}
	m, err := kernel.NewMachine(gpu.MustNew(gpu.V100()), nil, kernel.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAESVictim(m, []byte("short")); err == nil {
		t.Error("bad key should fail")
	}
}

func TestEncryptWarpProducesValidCiphertexts(t *testing.T) {
	v := victim(t, nil)
	var pts [kernel.WarpSize][]byte
	for lane := range pts {
		pt := make([]byte, 16)
		pt[0] = byte(lane)
		pts[lane] = pt
	}
	s, err := v.EncryptWarp(pts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles <= 0 {
		t.Error("sample needs positive timing")
	}
	// Functional check: ciphertexts decrypt back to the plaintexts.
	for lane, ct := range s.Ciphertexts {
		back, err := v.Key().Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if back[0] != byte(lane) {
			t.Fatalf("lane %d round trip failed", lane)
		}
	}
}

func TestCollectAESSamplesValidation(t *testing.T) {
	v := victim(t, nil)
	if _, err := CollectAESSamples(v, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestRecoverAESKeyByteValidation(t *testing.T) {
	v := victim(t, nil)
	samples, err := CollectAESSamples(v, 16, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverAESKeyByte(samples[:4], 0, 32); err == nil {
		t.Error("too few samples should fail")
	}
	if _, err := RecoverAESKeyByte(samples, 16, 32); err == nil {
		t.Error("bad byte index should fail")
	}
	if _, err := RecoverAESKeyByte(samples, 0, 0); err == nil {
		t.Error("bad sector size should fail")
	}
	if _, err := RecoverAESKeyByte(samples, 0, 1); err == nil {
		t.Error("sub-word sectors should fail")
	}
	if _, _, err := RecoverAESKey(samples, 0, 32); err == nil {
		t.Error("zero bytes should fail")
	}
	if _, _, err := RecoverAESKey(samples, 17, 32); err == nil {
		t.Error("too many bytes should fail")
	}
}

// Fig. 18(a): under static thread-block scheduling the correlation attack
// recovers the last-round key bytes - the correct guess's correlation
// peaks clearly above the wrong guesses. Fig. 18(b): random(-seed)
// scheduling injects SM-placement timing noise that flattens the
// correlation landscape and defeats the recovery. This is the paper's
// Implication #3 end to end.
func TestAESAttackStaticVsRandomScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("full attack needs thousands of samples")
	}
	const (
		nBytes  = 4
		samples = 15000
	)
	// Static scheduling: attack succeeds on every byte.
	vs := victim(t, kernel.StaticScheduler{})
	staticSamples, err := CollectAESSamples(vs, samples, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	truth := vs.Key().LastRoundKey()
	recovered, results, err := RecoverAESKey(staticSamples, nBytes, 32)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < nBytes; j++ {
		if recovered[j] != truth[j] {
			t.Errorf("static scheduling: byte %d recovered %02x, truth %02x", j, recovered[j], truth[j])
		}
		if results[j].Margin <= 0 {
			t.Errorf("static scheduling: byte %d margin %.4f not positive", j, results[j].Margin)
		}
	}

	// Random-seed scheduling: same attacker, same budget, recovery fails.
	schedRng := rand.New(rand.NewSource(9))
	vr := victim(t, kernel.RandomScheduler{Rand: schedRng.Uint64})
	randomSamples, err := CollectAESSamples(vr, samples, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for j := 0; j < nBytes; j++ {
		r, err := RecoverAESKeyByte(randomSamples, j, 32)
		if err != nil {
			t.Fatal(err)
		}
		if r.Best == truth[j] {
			hits++
		}
	}
	if hits > 1 {
		t.Errorf("random scheduling: attack still recovered %d/%d bytes; defence failed", hits, nBytes)
	}
}

// The correct guess's correlation must exceed the bulk of wrong guesses
// even at a modest sample budget (a cheaper smoke version of Fig. 18a).
func TestAESCorrectGuessCorrelationRank(t *testing.T) {
	v := victim(t, kernel.StaticScheduler{})
	samples, err := CollectAESSamples(v, 3000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	truth := v.Key().LastRoundKey()
	r, err := RecoverAESKeyByte(samples, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	rank := 0
	for g := 0; g < 256; g++ {
		if r.Correlations[g] > r.Correlations[truth[0]] {
			rank++
		}
	}
	if rank > 12 {
		t.Errorf("correct guess ranked %d of 256; signal too weak", rank+1)
	}
}

func TestPopcount(t *testing.T) {
	cases := []struct {
		in   uint64
		want int
	}{{0, 0}, {1, 1}, {0b1011, 3}, {^uint64(0), 64}}
	for _, c := range cases {
		if got := popcount(c.in); got != c.want {
			t.Errorf("popcount(%b) = %d, want %d", c.in, got, c.want)
		}
	}
}
