package sidechannel

import (
	"errors"
	"fmt"

	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/microbench"
	"gpunoc/internal/stats"
)

// ClusterSMsByLatency reverse-engineers SM placement from timing alone
// (Implication #1): it measures each SM's L2-latency profile with
// Algorithm 1 and greedily groups SMs whose profiles correlate above the
// threshold. On the modelled GPUs the resulting clusters recover the
// physical column/CPC groups - the co-location information an attacker
// needs now that placement-revealing performance counters are gone.
func ClusterSMsByLatency(dev *gpu.Device, sms []int, iters int, threshold float64) ([][]int, error) {
	if len(sms) == 0 {
		return nil, fmt.Errorf("sidechannel: no SMs to cluster")
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("sidechannel: threshold %v outside (0, 1)", threshold)
	}
	profiles := make([][]float64, len(sms))
	for i, sm := range sms {
		p, err := microbench.LatencyProfile(dev, sm, iters)
		if err != nil {
			return nil, err
		}
		profiles[i] = p
	}
	var clusters [][]int     // SM ids
	var representative []int // index into profiles for each cluster
	for i, sm := range sms {
		placed := false
		for c := range clusters {
			r, err := stats.Pearson(profiles[representative[c]], profiles[i])
			if errors.Is(err, stats.ErrZeroVariance) {
				// A flat profile correlates with nothing; the SM cannot
				// be co-located with this cluster by timing evidence.
				continue
			}
			if err != nil {
				return nil, err
			}
			if r >= threshold {
				clusters[c] = append(clusters[c], sm)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, []int{sm})
			representative = append(representative, i)
		}
	}
	return clusters, nil
}

// TimingVsUniqueLines measures warp latency as a function of the number of
// unique memory sectors the warp access touches, on a given SM - the
// Fig. 17(a) sweep. The returned slice is indexed by unique-sector count
// (1-based: out[0] is 1 sector).
func TimingVsUniqueLines(dev *gpu.Device, sm int, maxSectors, repeats int) ([]float64, error) {
	if maxSectors <= 0 || maxSectors > kernel.WarpSize {
		return nil, fmt.Errorf("sidechannel: maxSectors %d out of range", maxSectors)
	}
	if repeats <= 0 {
		return nil, fmt.Errorf("sidechannel: repeats must be positive")
	}
	opts := kernel.DefaultOptions()
	m, err := kernel.NewMachine(dev, kernel.PinnedScheduler{SM: sm}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxSectors)
	sector := uint64(opts.SectorBytes)
	for n := 1; n <= maxSectors; n++ {
		var total float64
		_, err := m.Launch(1, kernel.WarpSize, func(w *kernel.Warp) {
			addrs := make([]uint64, kernel.WarpSize)
			for rep := 0; rep < repeats; rep++ {
				// Rotate which sectors are touched each repeat so the
				// reported point is the average over slice placements,
				// as the paper's Fig. 17(a) averages its timings.
				base := uint64(rep*maxSectors) * sector
				for lane := range addrs {
					addrs[lane] = base + uint64(lane%n)*sector
				}
				t0 := w.Clock()
				w.LoadCG(addrs)
				total += w.Clock() - t0
			}
		})
		if err != nil {
			return nil, err
		}
		out[n-1] = total / float64(repeats)
	}
	return out, nil
}
