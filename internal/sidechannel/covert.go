package sidechannel

import (
	"fmt"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/stats"
)

// The paper's Sec. V-A notes that once SM and slice placement are known
// (via the latency correlations of Implication #1), "SM placement can
// establish a covert channel at the GPU NoC input but if a covert channel
// is desired at the output of the GPU NoC (or at the input of the L2),
// the L2 slice placement can potentially be exploited as well." This file
// implements that output-side channel: a trojan modulates contention on
// one L2 slice; a spy measuring its own bandwidth to the same slice
// decodes the bits. It also implements the related access-pattern attack
// sketched in the paper's closing discussion of [51]: locating which
// slice a victim is hammering by probing for contention.

// CovertChannel is a one-slice contention channel between a trojan and a
// spy that share no memory.
type CovertChannel struct {
	eng *bandwidth.Engine
	// Slice is the agreed-upon dead-drop L2 slice.
	Slice int
	// TrojanSMs hammer the slice to signal a 1 bit.
	TrojanSMs []int
	// SpySMs probe the slice's bandwidth every bit period.
	SpySMs []int
	// threshold separates 0 (solo bandwidth) from 1 (contended); set by
	// Calibrate.
	threshold float64
}

// NewCovertChannel builds a channel; trojan and spy SM sets must be
// disjoint and non-empty.
func NewCovertChannel(eng *bandwidth.Engine, slice int, trojanSMs, spySMs []int) (*CovertChannel, error) {
	cfg := eng.Device().Config()
	if slice < 0 || slice >= cfg.L2Slices {
		return nil, fmt.Errorf("sidechannel: slice %d out of range", slice)
	}
	if len(trojanSMs) == 0 || len(spySMs) == 0 {
		return nil, fmt.Errorf("sidechannel: covert channel needs trojan and spy SMs")
	}
	used := map[int]bool{}
	for _, sm := range trojanSMs {
		used[sm] = true
	}
	for _, sm := range spySMs {
		if used[sm] {
			return nil, fmt.Errorf("sidechannel: SM %d is both trojan and spy", sm)
		}
	}
	return &CovertChannel{eng: eng, Slice: slice, TrojanSMs: trojanSMs, SpySMs: spySMs}, nil
}

// spyBandwidth measures the spy group's achieved bandwidth on the slice,
// with or without the trojan hammering it.
func (c *CovertChannel) spyBandwidth(trojanActive bool) (float64, error) {
	var flows []bandwidth.Flow
	for _, sm := range c.SpySMs {
		flows = append(flows, bandwidth.Flow{SM: sm, Slices: []int{c.Slice}})
	}
	nSpy := len(flows)
	if trojanActive {
		for _, sm := range c.TrojanSMs {
			flows = append(flows, bandwidth.Flow{SM: sm, Slices: []int{c.Slice}})
		}
	}
	res, err := c.eng.Solve(flows)
	if err != nil {
		return 0, err
	}
	var spy float64
	for i := 0; i < nSpy; i++ {
		spy += float64(res.PerFlowGBs[i])
	}
	return spy, nil
}

// Calibrate measures the idle and contended spy bandwidths and places the
// decision threshold between them. It returns the channel's margin (idle
// minus contended, GB/s); a non-positive margin means the chosen SM/slice
// combination cannot carry bits.
func (c *CovertChannel) Calibrate() (float64, error) {
	idle, err := c.spyBandwidth(false)
	if err != nil {
		return 0, err
	}
	busy, err := c.spyBandwidth(true)
	if err != nil {
		return 0, err
	}
	c.threshold = (idle + busy) / 2
	return idle - busy, nil
}

// Transmit sends the bits through the channel and returns what the spy
// decodes: one bandwidth probe per bit, thresholded against the
// calibration. Calibrate must have been called.
func (c *CovertChannel) Transmit(bits []bool) ([]bool, error) {
	if c.threshold == 0 {
		return nil, fmt.Errorf("sidechannel: covert channel not calibrated")
	}
	out := make([]bool, len(bits))
	for i, bit := range bits {
		bw, err := c.spyBandwidth(bit)
		if err != nil {
			return nil, err
		}
		// Contention (low bandwidth) encodes 1.
		out[i] = bw < c.threshold
	}
	return out, nil
}

// BitErrorRate transmits a pseudo-random pattern of n bits and returns
// the fraction decoded incorrectly.
func (c *CovertChannel) BitErrorRate(n int, seed uint64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sidechannel: need positive bit count")
	}
	bits := make([]bool, n)
	state := seed
	for i := range bits {
		state = state*6364136223846793005 + 1442695040888963407
		bits[i] = state>>63 == 1
	}
	got, err := c.Transmit(bits)
	if err != nil {
		return 0, err
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	return float64(errs) / float64(n), nil
}

// LocateVictimSlice is the access-pattern attack the paper's discussion
// of [51] anticipates: a victim is streaming to some secret L2 slice; the
// attacker probes its own bandwidth to every slice and returns the one
// where contention (a bandwidth dip) appears. victimFlows describes the
// victim's (unknown to the attacker) traffic; the attacker only controls
// probeSMs.
func LocateVictimSlice(eng *bandwidth.Engine, victimFlows []bandwidth.Flow, probeSMs []int) (int, error) {
	if len(probeSMs) == 0 {
		return 0, fmt.Errorf("sidechannel: need probe SMs")
	}
	cfg := eng.Device().Config()
	dips := make([]float64, cfg.L2Slices)
	for s := 0; s < cfg.L2Slices; s++ {
		var solo []bandwidth.Flow
		for _, sm := range probeSMs {
			solo = append(solo, bandwidth.Flow{SM: sm, Slices: []int{s}})
		}
		base, err := eng.Solve(solo)
		if err != nil {
			return 0, err
		}
		contended, err := eng.Solve(append(append([]bandwidth.Flow{}, solo...), victimFlows...))
		if err != nil {
			return 0, err
		}
		var probe float64
		for i := range probeSMs {
			probe += float64(contended.PerFlowGBs[i])
		}
		dips[s] = float64(base.TotalGBs) - probe
	}
	// The victim's slice shows the largest dip.
	best := stats.Argsort(dips)
	return best[len(best)-1], nil
}
