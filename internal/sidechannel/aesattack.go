// Package sidechannel reproduces the paper's Section V: GPU timing
// side-channel attacks whose signal rides on memory coalescing and on the
// non-uniform NoC latency, the random thread-block scheduling defence, and
// the NoC-based co-location/placement reverse engineering of
// Implication #1.
package sidechannel

import (
	"errors"
	"fmt"
	"math/rand"

	"gpunoc/internal/aes"
	"gpunoc/internal/kernel"
	"gpunoc/internal/stats"
)

// AESVictim is the attacked encryption service: a GPU kernel that
// encrypts one block per warp lane, its final-round table lookups issued
// as one warp load per byte position. Its wall-clock time therefore grows
// with the number of unique table sectors those lookups coalesce into -
// and shifts with the SM the thread block lands on.
type AESVictim struct {
	machine *kernel.Machine
	key     *aes.Key
	// tableBase is the device address of the final-round table.
	tableBase uint64
	// wordBytes is the per-entry table stride (4-byte T-table words).
	wordBytes uint64
}

// NewAESVictim builds a victim on the given machine with a secret key.
func NewAESVictim(m *kernel.Machine, key []byte) (*AESVictim, error) {
	if m == nil {
		return nil, fmt.Errorf("sidechannel: nil machine")
	}
	k, err := aes.NewKey(key)
	if err != nil {
		return nil, err
	}
	return &AESVictim{machine: m, key: k, tableBase: 0x40000, wordBytes: 4}, nil
}

// Key exposes the victim's key schedule to tests (ground truth).
func (v *AESVictim) Key() *aes.Key { return v.key }

// AESSample is one attacker observation: the warp's 32 ciphertexts and
// the measured kernel time.
type AESSample struct {
	Ciphertexts [kernel.WarpSize][]byte
	Cycles      float64
}

// EncryptWarp encrypts 32 plaintexts as one warp and returns the sample
// the attacker sees. The thread block's SM comes from the machine's
// scheduler: static scheduling lands it on the same SM every time, the
// random-seed defence does not.
func (v *AESVictim) EncryptWarp(pts [kernel.WarpSize][]byte) (AESSample, error) {
	var sample AESSample
	var traces [kernel.WarpSize]aes.Trace
	for lane, pt := range pts {
		ct, tr, err := v.key.Encrypt(pt)
		if err != nil {
			return sample, err
		}
		sample.Ciphertexts[lane] = ct
		traces[lane] = tr
	}
	res, err := v.machine.Launch(1, kernel.WarpSize, func(w *kernel.Warp) {
		addrs := make([]uint64, kernel.WarpSize)
		// Every round performs 16 warp-wide T-table lookups; the inner
		// rounds contribute plaintext-dependent timing the attacker
		// treats as noise, the final round carries the key-recoverable
		// signal.
		for r := 0; r < aes.Rounds; r++ {
			for j := 0; j < aes.BlockSize; j++ {
				for lane := range addrs {
					addrs[lane] = v.tableBase + uint64(traces[lane].RoundIndices[r][j])*v.wordBytes
				}
				w.LoadCG(addrs)
			}
		}
	})
	if err != nil {
		return sample, err
	}
	sample.Cycles = res.Cycles
	return sample, nil
}

// CollectAESSamples gathers n observations with random plaintexts.
func CollectAESSamples(v *AESVictim, n int, rng *rand.Rand) ([]AESSample, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sidechannel: need positive sample count")
	}
	samples := make([]AESSample, 0, n)
	for i := 0; i < n; i++ {
		var pts [kernel.WarpSize][]byte
		for lane := range pts {
			pt := make([]byte, aes.BlockSize)
			rng.Read(pt)
			pts[lane] = pt
		}
		s, err := v.EncryptWarp(pts)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// AESGuessResult holds the attack's correlation series for one key byte:
// the Fig. 18 plot.
type AESGuessResult struct {
	// Correlations[g] is the Pearson correlation between measured timing
	// and the unique-sector count predicted under guess g.
	Correlations [256]float64
	// Best is the argmax guess.
	Best byte
	// Margin is the gap between the best and second-best correlation in
	// standard-error units of sqrt(n); higher means a more confident
	// recovery.
	Margin float64
}

// RecoverAESKeyByte attacks last-round key byte j: for every guess it
// predicts, per sample, how many unique table sectors the final-round
// lookups of byte j coalesced into (InvSBox(C[j]^guess) names the index),
// then correlates the prediction with the measured timing. The correct
// guess reconstructs the true indices and peaks.
func RecoverAESKeyByte(samples []AESSample, j int, sectorBytes int) (AESGuessResult, error) {
	var res AESGuessResult
	if len(samples) < 8 {
		return res, fmt.Errorf("sidechannel: %d samples are too few", len(samples))
	}
	if j < 0 || j >= aes.BlockSize {
		return res, fmt.Errorf("sidechannel: key byte index %d out of range", j)
	}
	if sectorBytes <= 0 {
		return res, fmt.Errorf("sidechannel: sector size must be positive")
	}
	times := make([]float64, len(samples))
	for i, s := range samples {
		times[i] = s.Cycles
	}
	predicted := make([]float64, len(samples))
	// A 256-entry table of 4-byte words spans at most 64 sectors, so a
	// 64-bit occupancy mask counts unique sectors exactly.
	const wordBytes = 4
	entriesPerSector := sectorBytes / wordBytes
	if entriesPerSector <= 0 || 256/entriesPerSector > 64 {
		return res, fmt.Errorf("sidechannel: sector size %d unsupported", sectorBytes)
	}
	for g := 0; g < 256; g++ {
		for i, s := range samples {
			var mask uint64
			for lane := 0; lane < kernel.WarpSize; lane++ {
				idx := aes.InvSBox(s.Ciphertexts[lane][j] ^ byte(g))
				mask |= 1 << (int(idx) / entriesPerSector)
			}
			predicted[i] = float64(popcount(mask))
		}
		r, err := stats.Pearson(predicted, times)
		if errors.Is(err, stats.ErrZeroVariance) {
			// A constant prediction (or flat timing) carries no signal
			// for this guess; score it as uncorrelated rather than
			// failing the whole key byte.
			r = 0
		} else if err != nil {
			return res, err
		}
		res.Correlations[g] = r
	}
	best, second := 0, -1.0
	for g, r := range res.Correlations {
		if r > res.Correlations[best] {
			best = g
		}
	}
	for g, r := range res.Correlations {
		if g != best && r > second {
			second = r
		}
	}
	res.Best = byte(best)
	res.Margin = res.Correlations[best] - second
	return res, nil
}

// popcount counts set bits.
func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// RecoverAESKey attacks the first nBytes of the last-round key.
func RecoverAESKey(samples []AESSample, nBytes, sectorBytes int) ([]byte, []AESGuessResult, error) {
	if nBytes <= 0 || nBytes > aes.BlockSize {
		return nil, nil, fmt.Errorf("sidechannel: nBytes %d out of range", nBytes)
	}
	key := make([]byte, nBytes)
	results := make([]AESGuessResult, nBytes)
	for j := 0; j < nBytes; j++ {
		r, err := RecoverAESKeyByte(samples, j, sectorBytes)
		if err != nil {
			return nil, nil, err
		}
		key[j] = r.Best
		results[j] = r
	}
	return key, results, nil
}
