package sidechannel

import (
	"testing"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
)

func covertEngine(t *testing.T) *bandwidth.Engine {
	t.Helper()
	eng, err := bandwidth.NewEngine(gpu.MustNew(gpu.V100()))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewCovertChannelValidation(t *testing.T) {
	eng := covertEngine(t)
	if _, err := NewCovertChannel(eng, 99, []int{0}, []int{1}); err == nil {
		t.Error("bad slice should fail")
	}
	if _, err := NewCovertChannel(eng, 0, nil, []int{1}); err == nil {
		t.Error("empty trojan should fail")
	}
	if _, err := NewCovertChannel(eng, 0, []int{0}, []int{0}); err == nil {
		t.Error("overlapping SM sets should fail")
	}
}

func TestCovertChannelRequiresCalibration(t *testing.T) {
	eng := covertEngine(t)
	c, err := NewCovertChannel(eng, 3, []int{0, 6, 12, 18}, []int{1, 7, 13, 19})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transmit([]bool{true}); err == nil {
		t.Error("uncalibrated transmit should fail")
	}
}

// The output-side covert channel of Sec. V-A: with enough trojan SMs to
// contend the slice, the spy decodes a random message error-free.
func TestCovertChannelTransfersBits(t *testing.T) {
	eng := covertEngine(t)
	// 4 spy SMs saturate the slice alone; 4 trojans halve their share.
	c, err := NewCovertChannel(eng, 3, []int{0, 6, 12, 18}, []int{1, 7, 13, 19})
	if err != nil {
		t.Fatal(err)
	}
	margin, err := c.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if margin < 10 {
		t.Fatalf("channel margin %.1f GB/s too small to signal", margin)
	}
	ber, err := c.BitErrorRate(64, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	if ber != 0 {
		t.Errorf("bit error rate %.2f, want 0 in the noiseless steady-state model", ber)
	}
}

func TestCovertChannelSelectivity(t *testing.T) {
	// A trojan hammering a DIFFERENT slice must not flip the spy's bits:
	// the channel is slice-selective, which is what makes it a placement-
	// dependent covert channel rather than global noise.
	eng := covertEngine(t)
	c, err := NewCovertChannel(eng, 3, []int{0, 6, 12, 18}, []int{1, 7, 13, 19})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Calibrate(); err != nil {
		t.Fatal(err)
	}
	// Manually build the "trojan on another slice" scenario.
	var flows []bandwidth.Flow
	for _, sm := range c.SpySMs {
		flows = append(flows, bandwidth.Flow{SM: sm, Slices: []int{c.Slice}})
	}
	for _, sm := range c.TrojanSMs {
		flows = append(flows, bandwidth.Flow{SM: sm, Slices: []int{20}})
	}
	res, err := eng.Solve(flows)
	if err != nil {
		t.Fatal(err)
	}
	var spy float64
	for i := range c.SpySMs {
		spy += float64(res.PerFlowGBs[i])
	}
	if spy < c.threshold {
		t.Errorf("off-slice trojan dropped spy bandwidth to %.1f (threshold %.1f); channel not selective", spy, c.threshold)
	}
}

func TestBitErrorRateValidation(t *testing.T) {
	eng := covertEngine(t)
	c, err := NewCovertChannel(eng, 0, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BitErrorRate(0, 1); err == nil {
		t.Error("zero bits should fail")
	}
}

// The access-pattern attack: the attacker recovers which slice the victim
// streams to, for every possible victim slice.
func TestLocateVictimSlice(t *testing.T) {
	eng := covertEngine(t)
	dev := eng.Device()
	probe := []int{1, 7, 13, 19}
	for _, secret := range []int{0, 5, 17, 31} {
		victim := []bandwidth.Flow{}
		for _, sm := range []int{0, 6, 12, 18} {
			victim = append(victim, bandwidth.Flow{SM: sm, Slices: []int{secret}})
		}
		got, err := LocateVictimSlice(eng, victim, probe)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Errorf("victim on slice %d located at %d", secret, got)
		}
	}
	_ = dev
	if _, err := LocateVictimSlice(eng, nil, nil); err == nil {
		t.Error("empty probe set should fail")
	}
}
