package floorplan

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{-1, -1}, Point{1, 1}, 4},
		{Point{5, 2}, Point{1, 2}, 4},
	}
	for _, c := range cases {
		if got := Manhattan(c.a, c.b); float64(got) != c.want {
			t.Errorf("Manhattan(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: Manhattan distance is a metric (symmetric, non-negative,
// triangle inequality, identity of indiscernibles).
func TestManhattanPropertyMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coord := func() float64 { return rng.Float64()*200 - 100 }
		a := Point{coord(), coord()}
		b := Point{coord(), coord()}
		c := Point{coord(), coord()}
		dab := Manhattan(a, b)
		if dab < 0 || dab != Manhattan(b, a) {
			return false
		}
		if Manhattan(a, a) != 0 {
			return false
		}
		return Manhattan(a, c) <= dab+Manhattan(b, c)+1e-9
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(7)), MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuildV100Layout(t *testing.T) {
	p := MustBuild(V100Spec())
	if len(p.GPCPos) != 6 || len(p.MPPos) != 8 || len(p.HubPos) != 1 {
		t.Fatalf("unexpected counts: %d GPCs, %d MPs, %d hubs", len(p.GPCPos), len(p.MPPos), len(p.HubPos))
	}
	// Consecutive GPC pairs share a column (GPCRows = 2).
	for g := 0; g < 6; g += 2 {
		if p.GPCPos[g].X != p.GPCPos[g+1].X {
			t.Errorf("GPC%d and GPC%d should share a column: %v vs %v", g, g+1, p.GPCPos[g], p.GPCPos[g+1])
		}
		if p.GPCPos[g].Y == p.GPCPos[g+1].Y {
			t.Errorf("GPC%d and GPC%d should be on different rows", g, g+1)
		}
	}
	// All in one partition.
	for g, part := range p.GPCPartition {
		if part != 0 {
			t.Errorf("GPC%d partition = %d, want 0", g, part)
		}
	}
	// MPs are strictly ordered along x within the die.
	for m := 1; m < len(p.MPPos); m++ {
		if p.MPPos[m].X <= p.MPPos[m-1].X {
			t.Errorf("MP%d.X = %v not > MP%d.X = %v", m, p.MPPos[m].X, m-1, p.MPPos[m-1].X)
		}
	}
	if p.CPCPos != nil {
		t.Error("V100 should not have a CPC level")
	}
}

func TestBuildA100PartitionSplit(t *testing.T) {
	p := MustBuild(A100Spec())
	for g := 0; g < 4; g++ {
		if p.GPCPartition[g] != 0 {
			t.Errorf("GPC%d partition = %d, want 0", g, p.GPCPartition[g])
		}
	}
	for g := 4; g < 8; g++ {
		if p.GPCPartition[g] != 1 {
			t.Errorf("GPC%d partition = %d, want 1", g, p.GPCPartition[g])
		}
	}
	for m := 0; m < 5; m++ {
		if p.MPPartition[m] != 0 {
			t.Errorf("MP%d partition = %d, want 0", m, p.MPPartition[m])
		}
	}
	for m := 5; m < 10; m++ {
		if p.MPPartition[m] != 1 {
			t.Errorf("MP%d partition = %d, want 1", m, p.MPPartition[m])
		}
	}
	// Every GPC has its own column on A100 (GPCRows = 1).
	seen := map[float64]bool{}
	for _, pos := range p.GPCPos {
		if seen[pos.X] {
			t.Errorf("duplicate GPC column at x=%v", pos.X)
		}
		seen[pos.X] = true
	}
	// Partition 1 blocks lie strictly to the right of partition 0 blocks.
	maxLeft, minRight := 0.0, p.Width
	for g, pos := range p.GPCPos {
		if p.GPCPartition[g] == 0 && pos.X > maxLeft {
			maxLeft = pos.X
		}
		if p.GPCPartition[g] == 1 && pos.X < minRight {
			minRight = pos.X
		}
	}
	if maxLeft >= minRight {
		t.Errorf("partitions overlap: maxLeft=%v minRight=%v", maxLeft, minRight)
	}
}

func TestBuildH100CPCs(t *testing.T) {
	p := MustBuild(H100Spec())
	if len(p.CPCPos) != 8 {
		t.Fatalf("CPCPos rows = %d, want 8", len(p.CPCPos))
	}
	for g, cpcs := range p.CPCPos {
		if len(cpcs) != 3 {
			t.Fatalf("GPC%d has %d CPCs, want 3", g, len(cpcs))
		}
		// CPCs spread along x and stay ordered.
		if !(cpcs[0].X < cpcs[1].X && cpcs[1].X < cpcs[2].X) {
			t.Errorf("GPC%d CPC x positions not ordered: %v", g, cpcs)
		}
		// Centered on the GPC.
		mid := (cpcs[0].X + cpcs[2].X) / 2
		if diff := mid - p.GPCPos[g].X; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("GPC%d CPCs not centered: mid=%v gpc=%v", g, mid, p.GPCPos[g].X)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	bad := []Spec{
		{Name: "p0", Partitions: 0, GPCs: 4, GPCRows: 1, MPs: 4},
		{Name: "gpcdiv", Partitions: 2, GPCs: 5, GPCRows: 1, MPs: 4},
		{Name: "mpdiv", Partitions: 2, GPCs: 4, GPCRows: 1, MPs: 5},
		{Name: "rows", Partitions: 1, GPCs: 4, GPCRows: 3, MPs: 4},
		{Name: "rowdiv", Partitions: 1, GPCs: 5, GPCRows: 2, MPs: 4},
		{Name: "gpc0", Partitions: 1, GPCs: 0, GPCRows: 1, MPs: 4},
	}
	for _, spec := range bad {
		if _, err := Build(spec); err == nil {
			t.Errorf("Build(%s) should fail", spec.Name)
		}
	}
}

func TestMustBuildPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid spec")
		}
	}()
	MustBuild(Spec{Name: "bad", Partitions: 0})
}

func TestGPCDistanceToMPMonotoneInColumns(t *testing.T) {
	p := MustBuild(V100Spec())
	// From the leftmost GPC column, distance to MPs grows with MP index.
	for m := 1; m < 8; m++ {
		if p.GPCDistanceToMP(0, -1, m) < p.GPCDistanceToMP(0, -1, m-1) &&
			p.MPPos[m].X > p.GPCPos[0].X && p.MPPos[m-1].X > p.GPCPos[0].X {
			t.Errorf("distance from GPC0 should not shrink past its column: MP%d", m)
		}
	}
	// Center-column GPCs (2,3) have a narrower distance spread than edge
	// GPCs (0,1) - the mechanism behind Fig. 2's narrow GPC2 histogram.
	spread := func(g int) float64 {
		lo, hi := p.GPCDistanceToMP(g, -1, 0), p.GPCDistanceToMP(g, -1, 0)
		for m := 1; m < 8; m++ {
			d := p.GPCDistanceToMP(g, -1, m)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		return float64(hi - lo)
	}
	if spread(2) >= spread(0) {
		t.Errorf("center GPC spread %v should be < edge GPC spread %v", spread(2), spread(0))
	}
}

func TestCPCDistanceDiffersWithinGPC(t *testing.T) {
	p := MustBuild(H100Spec())
	d0 := p.GPCDistanceToMP(0, 0, 0)
	d2 := p.GPCDistanceToMP(0, 2, 0)
	if d0 == d2 {
		t.Error("different CPCs in the same GPC should have different MP distances")
	}
}

func TestCrossesPartition(t *testing.T) {
	p := MustBuild(A100Spec())
	if p.CrossesPartition(0, 0) {
		t.Error("GPC0 -> MP0 is intra-partition")
	}
	if !p.CrossesPartition(0, 9) {
		t.Error("GPC0 -> MP9 should cross partitions")
	}
	v := MustBuild(V100Spec())
	for g := 0; g < 6; g++ {
		for m := 0; m < 8; m++ {
			if v.CrossesPartition(g, m) {
				t.Fatal("V100 has a single partition; nothing crosses")
			}
		}
	}
}

func TestHubDistanceToMPSymmetricOnV100(t *testing.T) {
	p := MustBuild(V100Spec())
	// V100's hub sits at die center, so hub->MP distances are symmetric
	// around the middle MP pair.
	for m := 0; m < 4; m++ {
		l := p.HubDistanceToMP(0, m)
		r := p.HubDistanceToMP(0, 7-m)
		if diff := l - r; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("hub distance asymmetric: MP%d=%v MP%d=%v", m, l, 7-m, r)
		}
	}
}

func TestRenderContainsBlocks(t *testing.T) {
	for _, spec := range []Spec{V100Spec(), A100Spec(), H100Spec()} {
		p := MustBuild(spec)
		out := p.Render()
		if !strings.Contains(out, "G0") {
			t.Errorf("%s render missing GPC0:\n%s", spec.Name, out)
		}
		if !strings.Contains(out, "M0") {
			t.Errorf("%s render missing MP0:\n%s", spec.Name, out)
		}
		if !strings.Contains(out, spec.Name) {
			t.Errorf("%s render missing name", spec.Name)
		}
	}
}

// Property: any valid spec builds a plan whose blocks all lie within the
// die bounds and whose partition assignments are contiguous.
func TestBuildPropertyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := 1 + rng.Intn(2)
		rows := 1 + rng.Intn(2)
		gpcPerPart := rows * (1 + rng.Intn(4))
		spec := Spec{
			Name:       "prop",
			Partitions: parts,
			GPCs:       parts * gpcPerPart,
			GPCRows:    rows,
			MPs:        parts * (1 + rng.Intn(6)),
			ColPitch:   1 + rng.Float64()*5,
		}
		p, err := Build(spec)
		if err != nil {
			return false
		}
		for _, pos := range p.GPCPos {
			if pos.X < 0 || pos.X > p.Width || pos.Y < 0 || pos.Y > p.Height {
				return false
			}
		}
		for _, pos := range p.MPPos {
			if pos.X < 0 || pos.X > p.Width {
				return false
			}
		}
		for g := 1; g < len(p.GPCPartition); g++ {
			if p.GPCPartition[g] < p.GPCPartition[g-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
