// Package floorplan models the approximate logical floorplan of a GPU die
// (the paper's Fig. 4): the 2-D placement of GPCs (and, on H100, CPCs),
// the memory partitions with their L2 slices, and the per-partition
// crossbar hub. On-chip latency in this reproduction is derived from these
// positions, which is exactly the mechanism the paper identifies behind
// Observations #1-#5 ("the non-uniform L2 latency is determined by the
// physical location of the SM within the GPC and the L2 slice within the
// memory partition").
//
// Distances are expressed in abstract grid units ("gu"); the gpu package
// converts them to cycles with a wire-delay coefficient.
package floorplan

import (
	"fmt"
	"sort"
	"strings"

	"gpunoc/internal/units"
)

// Point is a 2-D die coordinate in grid units.
type Point struct {
	X, Y float64
}

// Manhattan returns the Manhattan (L1) distance between a and b. On-chip
// wires are routed rectilinearly, so L1 distance is the natural wire-length
// proxy.
func Manhattan(a, b Point) units.GridUnits {
	return units.GridUnits(abs(a.X-b.X) + abs(a.Y-b.Y))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Spec describes the hierarchy geometry of one GPU generation.
type Spec struct {
	Name string

	// Partitions is the number of GPU "partitions" (1 on V100, 2 on
	// A100/H100). Partitions are placed side by side along the x axis.
	Partitions int

	// GPCs is the total number of GPCs, split evenly across partitions.
	GPCs int

	// GPCRows controls how a partition's GPCs are stacked: with 2 rows
	// (V100) consecutive GPC pairs share a column (explaining the paper's
	// GPC0&1 / GPC4&5 correlation pairs); with 1 row every GPC has its own
	// column (A100/H100, where neighbour-GPC similarity is reduced).
	GPCRows int

	// CPCsPerGPC is the number of Compute Processing Clusters per GPC
	// (H100 only; 0 disables the level). CPCs are offset along x within
	// their GPC so that different CPCs see measurably different L2-slice
	// latency profiles (Fig. 6c).
	CPCsPerGPC int

	// MPs is the total number of memory partitions, split evenly across
	// GPU partitions and spread across each partition's width.
	MPs int

	// ColPitch is the horizontal spacing between GPC columns in gu.
	ColPitch float64

	// MPPitch is the horizontal spacing between memory partitions in gu.
	// The MP band (L2 slices plus PHYs) extends along the die periphery
	// and is typically wider than the GPC array, which sits centered
	// within it - matching die photos where HBM PHYs flank the compute
	// clusters. When zero it defaults to ColPitch.
	MPPitch float64

	// PartitionGap is the dead space between GPU partitions in gu.
	PartitionGap float64
}

// Plan is a realized floorplan: positions for every placement-relevant
// block plus partition membership.
type Plan struct {
	Spec Spec

	// GPCPos[g] is the centroid of GPC g. GPCPartition[g] is the GPU
	// partition that hosts it.
	GPCPos       []Point
	GPCPartition []int

	// CPCPos[g][c] is the centroid of CPC c within GPC g (empty when the
	// generation has no CPC level).
	CPCPos [][]Point

	// MPPos[m] is the centroid of memory partition m; MPPartition[m] is
	// its GPU partition.
	MPPos       []Point
	MPPartition []int

	// HubPos[p] is the crossbar-hub location of GPU partition p. The
	// latency model mixes direct wiring with hub routing (hierarchical
	// crossbar), which is what keeps far-GPC correlation moderate instead
	// of perfectly negative.
	HubPos []Point

	// SpineDrop is the fixed vertical distance (gu) from a GPC row down to
	// the central interconnect spine.
	SpineDrop float64

	// Width and Height are the die extents in gu.
	Width, Height float64
}

// Build lays out a floorplan from spec. It validates divisibility of GPCs
// and MPs across partitions and returns a descriptive error otherwise.
func Build(spec Spec) (*Plan, error) {
	if spec.Partitions <= 0 {
		return nil, fmt.Errorf("floorplan: %s: partitions must be positive, got %d", spec.Name, spec.Partitions)
	}
	if spec.GPCs <= 0 || spec.GPCs%spec.Partitions != 0 {
		return nil, fmt.Errorf("floorplan: %s: %d GPCs not divisible across %d partitions", spec.Name, spec.GPCs, spec.Partitions)
	}
	if spec.MPs <= 0 || spec.MPs%spec.Partitions != 0 {
		return nil, fmt.Errorf("floorplan: %s: %d MPs not divisible across %d partitions", spec.Name, spec.MPs, spec.Partitions)
	}
	if spec.GPCRows != 1 && spec.GPCRows != 2 {
		return nil, fmt.Errorf("floorplan: %s: GPCRows must be 1 or 2, got %d", spec.Name, spec.GPCRows)
	}
	gpcPerPart := spec.GPCs / spec.Partitions
	if gpcPerPart%spec.GPCRows != 0 {
		return nil, fmt.Errorf("floorplan: %s: %d GPCs per partition not divisible into %d rows", spec.Name, gpcPerPart, spec.GPCRows)
	}
	colPitch := spec.ColPitch
	if colPitch <= 0 {
		colPitch = 4
	}
	mpPitch := spec.MPPitch
	if mpPitch <= 0 {
		mpPitch = colPitch
	}
	cols := gpcPerPart / spec.GPCRows
	mpPerPart := spec.MPs / spec.Partitions
	gpcArrayWidth := float64(cols) * colPitch
	partWidth := gpcArrayWidth
	if w := float64(mpPerPart) * mpPitch; w > partWidth {
		partWidth = w
	}
	// Center the GPC array within the partition so that the MP band can
	// extend past it on both sides.
	gpcInset := (partWidth - gpcArrayWidth) / 2
	const (
		topRowY    = 1.0
		bottomRowY = 7.0
		midY       = 4.0
		height     = 8.0
	)

	p := &Plan{
		Spec:         spec,
		GPCPos:       make([]Point, spec.GPCs),
		GPCPartition: make([]int, spec.GPCs),
		MPPos:        make([]Point, spec.MPs),
		MPPartition:  make([]int, spec.MPs),
		HubPos:       make([]Point, spec.Partitions),
		SpineDrop:    midY - topRowY,
		Height:       height,
	}
	p.Width = float64(spec.Partitions)*partWidth + float64(spec.Partitions-1)*spec.PartitionGap

	for g := 0; g < spec.GPCs; g++ {
		part := g / gpcPerPart
		local := g % gpcPerPart
		col := local / spec.GPCRows
		row := local % spec.GPCRows
		x := float64(part)*(partWidth+spec.PartitionGap) + gpcInset + colPitch*(float64(col)+0.5)
		y := topRowY
		if spec.GPCRows == 2 && row == 1 {
			y = bottomRowY
		}
		p.GPCPos[g] = Point{X: x, Y: y}
		p.GPCPartition[g] = part
	}

	if spec.CPCsPerGPC > 0 {
		p.CPCPos = make([][]Point, spec.GPCs)
		// CPC centroids fan out along x inside the GPC; the spread is a
		// large fraction of the column pitch so that CPC identity shifts
		// the whole slice-distance profile, not just a constant.
		spread := colPitch * 0.8
		for g := range p.CPCPos {
			p.CPCPos[g] = make([]Point, spec.CPCsPerGPC)
			for c := 0; c < spec.CPCsPerGPC; c++ {
				frac := 0.0
				if spec.CPCsPerGPC > 1 {
					frac = float64(c)/float64(spec.CPCsPerGPC-1)*2 - 1 // -1..1
				}
				p.CPCPos[g][c] = Point{X: p.GPCPos[g].X + frac*spread, Y: p.GPCPos[g].Y}
			}
		}
	}

	for m := 0; m < spec.MPs; m++ {
		part := m / mpPerPart
		local := m % mpPerPart
		x := float64(part)*(partWidth+spec.PartitionGap) + partWidth*(float64(local)+0.5)/float64(mpPerPart)
		p.MPPos[m] = Point{X: x, Y: midY}
		p.MPPartition[m] = part
	}

	for part := 0; part < spec.Partitions; part++ {
		x := float64(part)*(partWidth+spec.PartitionGap) + partWidth/2
		p.HubPos[part] = Point{X: x, Y: midY}
	}
	return p, nil
}

// MustBuild is Build but panics on error; for the package-level canonical
// plans whose specs are correct by construction.
func MustBuild(spec Spec) *Plan {
	p, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// V100Spec is the modelled Volta floorplan: one monolithic die, 6 GPCs in
// a 2x3 arrangement (pairs share columns), 8 memory partitions along the
// central band.
func V100Spec() Spec {
	return Spec{Name: "V100", Partitions: 1, GPCs: 6, GPCRows: 2, MPs: 8, ColPitch: 2, MPPitch: 1.5}
}

// A100Spec is the modelled Ampere floorplan: two GPU partitions of 4 GPCs
// each (one row, so every GPC has a distinct column), 10 memory partitions.
func A100Spec() Spec {
	return Spec{Name: "A100", Partitions: 2, GPCs: 8, GPCRows: 1, MPs: 10, ColPitch: 2, MPPitch: 2.4, PartitionGap: 4}
}

// H100Spec is the modelled Hopper floorplan: two GPU partitions of 4 GPCs,
// 3 CPCs per GPC, 10 memory partitions.
func H100Spec() Spec {
	return Spec{Name: "H100", Partitions: 2, GPCs: 8, GPCRows: 1, CPCsPerGPC: 3, MPs: 10, ColPitch: 2, MPPitch: 2.4, PartitionGap: 4}
}

// GPCDistanceToMP returns the Manhattan distance from GPC g (or, when the
// plan has CPCs and cpc >= 0, from CPC cpc of GPC g) to memory partition m,
// ignoring hub routing. Pass cpc = -1 to use the GPC centroid.
func (p *Plan) GPCDistanceToMP(g, cpc, m int) units.GridUnits {
	src := p.GPCPos[g]
	if cpc >= 0 && len(p.CPCPos) > 0 {
		src = p.CPCPos[g][cpc]
	}
	return Manhattan(src, p.MPPos[m])
}

// HubDistanceToMP returns the distance from GPU partition part's hub to
// memory partition m.
func (p *Plan) HubDistanceToMP(part, m int) units.GridUnits {
	return Manhattan(p.HubPos[part], p.MPPos[m])
}

// CrossesPartition reports whether traffic from GPC g to MP m crosses the
// central inter-partition interconnect.
func (p *Plan) CrossesPartition(g, m int) bool {
	return p.GPCPartition[g] != p.MPPartition[m]
}

// Render draws a coarse ASCII floorplan (the reproduction's Fig. 4): GPC
// boxes on their rows, the MP band in the middle, hubs marked with '+'.
func (p *Plan) Render() string {
	const cell = 0.5 // gu per character column
	widthCh := int(p.Width/cell) + 4
	rows := map[float64]string{}
	place := func(y float64, x float64, label string) {
		row := rows[y]
		col := int(x / cell)
		if col < 0 {
			col = 0
		}
		for len(row) < col+len(label) {
			row += " "
		}
		row = row[:col] + label + row[col+len(label):]
		rows[y] = row
	}
	for g, pos := range p.GPCPos {
		place(pos.Y, pos.X, fmt.Sprintf("G%d", g))
	}
	for m, pos := range p.MPPos {
		place(pos.Y+0.5, pos.X, fmt.Sprintf("M%d", m))
	}
	for _, pos := range p.HubPos {
		place(pos.Y, pos.X, "+")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s die, %.0fx%.0f gu\n", p.Spec.Name, p.Width, p.Height)
	b.WriteString(strings.Repeat("-", widthCh) + "\n")
	for _, y := range sortedKeys(rows) {
		b.WriteString(rows[y] + "\n")
	}
	b.WriteString(strings.Repeat("-", widthCh) + "\n")
	return b.String()
}

func sortedKeys(m map[float64]string) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}
