package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema is the report and baseline document version. Bump it only for
// incompatible shape changes; consumers hard-fail on a mismatch rather
// than misreading fields.
const Schema = 1

// Measurement is one benchmark's condensed result: the median-of-K
// numbers described in the package comment. Field names are part of the
// BENCH_<label>.json contract — tests pin them.
type Measurement struct {
	Name string `json:"name"`
	// N is the iteration count of the last rep, a sanity signal that
	// the benchmark actually ran long enough to mean something.
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is one measurement run: what nocbench -json writes.
type Report struct {
	Schema     int           `json:"schema"`
	Label      string        `json:"label,omitempty"`
	Benchmarks []Measurement `json:"benchmarks"`
}

// BaselineEntry is one accepted measurement plus the noise budget its
// future runs are checked against.
type BaselineEntry struct {
	Measurement
	Budget Budget `json:"budget"`
}

// Baseline is the committed accepted-performance document
// (bench.baseline.json).
type Baseline struct {
	Schema     int             `json:"schema"`
	Benchmarks []BaselineEntry `json:"benchmarks"`
}

// find returns the entry named name, or nil.
func (b *Baseline) find(name string) *BaselineEntry {
	for i := range b.Benchmarks {
		if b.Benchmarks[i].Name == name {
			return &b.Benchmarks[i]
		}
	}
	return nil
}

// WriteJSON marshals the report with stable two-space indentation.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report file, rejecting schema mismatches.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perfbench: %s: schema %d, this binary speaks %d", path, r.Schema, Schema)
	}
	return &r, nil
}

// LoadBaseline reads a baseline file, rejecting schema mismatches.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perfbench: %s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("perfbench: %s: schema %d, this binary speaks %d", path, b.Schema, Schema)
	}
	return &b, nil
}

// WriteBaseline writes the baseline sorted by name.
func (b *Baseline) WriteBaseline(path string) error {
	sort.Slice(b.Benchmarks, func(i, j int) bool {
		return b.Benchmarks[i].Name < b.Benchmarks[j].Name
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NewBaseline folds a fresh report into a baseline: measurements come
// from the report, budgets from the previous baseline when the entry
// already existed (a re-measurement must not silently loosen or tighten
// a hand-tuned budget), and from the suite's defaults otherwise. prev
// may be nil.
func NewBaseline(prev *Baseline, rep *Report, defaults map[string]Budget) *Baseline {
	out := &Baseline{Schema: Schema}
	for _, m := range rep.Benchmarks {
		e := BaselineEntry{Measurement: m}
		if prev != nil {
			if old := prev.find(m.Name); old != nil {
				e.Budget = old.Budget
			}
		}
		if e.Budget == (Budget{}) {
			e.Budget = defaults[m.Name]
		}
		if e.Budget.MaxNsRatio <= 0 {
			e.Budget.MaxNsRatio = DefaultMaxNsRatio
		}
		out.Benchmarks = append(out.Benchmarks, e)
	}
	return out
}

// Delta is one benchmark's old-vs-new comparison row.
type Delta struct {
	Name     string
	OldNs    float64
	NewNs    float64
	OldOnly  bool // present in old, missing in new
	NewOnly  bool // present in new, missing in old
	OldAlloc int64
	NewAlloc int64
}

// Ratio returns new/old ns-per-op; 0 when either side is missing.
func (d Delta) Ratio() float64 {
	if d.OldOnly || d.NewOnly || d.OldNs == 0 {
		return 0
	}
	return d.NewNs / d.OldNs
}

// Compare matches two reports by benchmark name and returns one delta
// per name seen on either side, sorted by name.
func Compare(old, cur *Report) []Delta {
	byName := map[string]*Delta{}
	for _, m := range old.Benchmarks {
		byName[m.Name] = &Delta{Name: m.Name, OldNs: m.NsPerOp, OldAlloc: m.AllocsPerOp, OldOnly: true}
	}
	for _, m := range cur.Benchmarks {
		d, ok := byName[m.Name]
		if !ok {
			d = &Delta{Name: m.Name}
			byName[m.Name] = d
		}
		d.NewNs, d.NewAlloc, d.NewOnly = m.NsPerOp, m.AllocsPerOp, !ok
		d.OldOnly = false
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Delta, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

// Problem is one -check failure.
type Problem struct {
	Name string
	Msg  string
}

func (p Problem) String() string { return fmt.Sprintf("%s: %s", p.Name, p.Msg) }

// Check ratchets a fresh report against the committed baseline.
// suiteNames is the full suite's name set (before any -bench filter);
// it distinguishes "filtered out this run" from "benchmark no longer
// exists". The rules, mirroring noclint's baseline:
//
//   - A measured benchmark over its ns budget or allocation budget is a
//     regression: fail.
//   - A measured benchmark absent from the baseline is unaccounted
//     performance surface: fail (run -write-baseline in the same
//     change).
//   - A baseline entry whose name is not in the full suite is stale:
//     fail, so a renamed or deleted benchmark shrinks the baseline in
//     the same commit.
//   - A baseline entry merely filtered out of this run is skipped.
func Check(base *Baseline, rep *Report, suiteNames []string) []Problem {
	inSuite := map[string]bool{}
	for _, n := range suiteNames {
		inSuite[n] = true
	}
	var problems []Problem
	for _, m := range rep.Benchmarks {
		e := base.find(m.Name)
		if e == nil {
			problems = append(problems, Problem{m.Name,
				"not in the baseline; run nocbench -write-baseline and commit the result"})
			continue
		}
		ratio := e.Budget.MaxNsRatio
		if ratio <= 0 {
			ratio = DefaultMaxNsRatio
		}
		if e.NsPerOp > 0 && m.NsPerOp > e.NsPerOp*ratio {
			problems = append(problems, Problem{m.Name, fmt.Sprintf(
				"ns/op regressed: %.1f vs baseline %.1f (%.2fx > budget %.2fx)",
				m.NsPerOp, e.NsPerOp, m.NsPerOp/e.NsPerOp, ratio)})
		}
		if m.AllocsPerOp > e.AllocsPerOp+e.Budget.MaxAllocsDelta {
			problems = append(problems, Problem{m.Name, fmt.Sprintf(
				"allocs/op regressed: %d vs baseline %d (budget +%d)",
				m.AllocsPerOp, e.AllocsPerOp, e.Budget.MaxAllocsDelta)})
		}
	}
	for _, e := range base.Benchmarks {
		if !inSuite[e.Name] {
			problems = append(problems, Problem{e.Name,
				"stale baseline entry: no such benchmark in the suite; shrink the baseline"})
		}
	}
	sort.Slice(problems, func(i, j int) bool {
		if problems[i].Name != problems[j].Name {
			return problems[i].Name < problems[j].Name
		}
		return problems[i].Msg < problems[j].Msg
	})
	return problems
}
