// Package perfbench is the repository's curated performance-benchmark
// set and the measurement harness behind cmd/nocbench. The paper's
// method is measuring opaque hardware with microbenchmarks; this
// package points the same discipline back at the simulators themselves,
// so a hot-path regression (a Step loop that starts allocating, a
// renderer that doubles its time) is caught by CI instead of by a user
// with a stopwatch.
//
// The suite covers one representative of each hot path: the mesh and
// crossbar Step loops, the gpusim many-to-few-to-many pipeline, the
// obs histogram observe path, the result store's cold-fill and warm-hit
// GetContext, the Result renderers, and an end-to-end quick experiment.
// Each benchmark runs through testing.Benchmark K times; the reported
// ns/op is the median of the reps that survive IQR outlier rejection,
// because a CI box's first rep regularly eats a page-fault or
// frequency-scaling spike that has nothing to do with the code under
// test. Bytes, allocations, and figure-of-merit metrics take plain
// medians.
//
// Reports serialize to a schema-versioned JSON document; a committed
// baseline adds a per-benchmark noise budget (a maximum ns/op ratio and
// a maximum allocation delta) that cmd/nocbench -check enforces as a
// ratchet, exactly parallel to noclint's finding baseline: regressions
// fail, and so do stale baseline entries whose benchmark no longer
// exists — a rename must update the baseline in the same commit.
package perfbench

import (
	"flag"
	"fmt"
	"regexp"
	"sort"
	"testing"
)

// Benchmark is one suite entry: a stable name (the baseline key), the
// function to measure, and the noise budget a fresh baseline starts
// with.
type Benchmark struct {
	// Name is the stable identifier ("mesh_step"); it keys baseline
	// entries and the -bench filter, so renaming one is a baseline
	// change.
	Name string
	// Doc is a one-line description for nocbench's table output.
	Doc string
	// Fn is the benchmark body, written exactly like a testing
	// benchmark. It must call b.ReportAllocs so allocation budgets have
	// data to check.
	Fn func(b *testing.B)
	// DefaultBudget seeds the baseline entry written for a benchmark
	// that has none yet; existing baselines keep their budgets.
	DefaultBudget Budget
}

// Budget is one benchmark's tolerated noise envelope.
type Budget struct {
	// MaxNsRatio is the largest tolerated current/baseline ns-per-op
	// ratio; <= 0 means DefaultMaxNsRatio. It is deliberately generous
	// (shared CI boxes are noisy) but must stay below the 3x factor the
	// CI smoke seeds, or the gate cannot prove it bites.
	MaxNsRatio float64 `json:"max_ns_ratio"`
	// MaxAllocsDelta is how many allocations per op the current run may
	// add over the baseline. Zero pins a zero-alloc hot path at exactly
	// zero.
	MaxAllocsDelta int64 `json:"max_allocs_delta"`
}

// DefaultMaxNsRatio tolerates a 2.5x slowdown before -check fails:
// loose enough for timer noise and CPU contention on a shared runner,
// tight enough to catch the seeded 3x regression smoke and any real
// algorithmic slip.
const DefaultMaxNsRatio = 2.5

// Config controls one measurement run.
type Config struct {
	// BenchTime is the per-rep measurement target in testing
	// -benchtime syntax ("1s", "100ms", "200x"); empty keeps the
	// testing default.
	BenchTime string
	// Reps is the median-of-K repetition count; <= 0 means 5.
	Reps int
	// Filter, when non-nil, restricts the run to benchmarks whose name
	// matches.
	Filter *regexp.Regexp
	// SlowBy multiplies the measured ns/op of the named benchmarks
	// after measurement. It exists solely so CI can seed a known
	// regression and prove -check fails; it is surfaced as the
	// -slow-by flag and has no other use.
	SlowBy map[string]float64
	// Logf, when non-nil, receives one progress line per benchmark.
	Logf func(format string, args ...any)
}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 5
	}
	return c.Reps
}

// Run measures the given benchmarks and returns a report with one
// measurement per benchmark, sorted by name. Benchmarks run strictly
// sequentially — timing two at once would corrupt both.
func Run(cfg Config, benches []Benchmark) (*Report, error) {
	// Outside a test binary the testing flags do not exist until
	// testing.Init registers them; inside one they are already parsed.
	// Init is idempotent, so calling it unconditionally covers both.
	testing.Init()
	if cfg.BenchTime != "" {
		f := flag.Lookup("test.benchtime")
		if f == nil {
			return nil, fmt.Errorf("perfbench: test.benchtime flag not registered")
		}
		prev := f.Value.String()
		if err := flag.Set("test.benchtime", cfg.BenchTime); err != nil {
			return nil, fmt.Errorf("perfbench: bad bench time %q: %w", cfg.BenchTime, err)
		}
		defer func() { _ = flag.Set("test.benchtime", prev) }()
	}

	rep := &Report{Schema: Schema}
	for _, bm := range benches {
		if cfg.Filter != nil && !cfg.Filter.MatchString(bm.Name) {
			continue
		}
		m, err := measure(cfg, bm)
		if err != nil {
			return nil, err
		}
		if factor, ok := cfg.SlowBy[bm.Name]; ok {
			m.NsPerOp *= factor
		}
		if cfg.Logf != nil {
			cfg.Logf("%-18s %12.1f ns/op %8d B/op %6d allocs/op", m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		}
		rep.Benchmarks = append(rep.Benchmarks, m)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// measure runs one benchmark cfg.reps() times and condenses the reps
// into a single Measurement.
func measure(cfg Config, bm Benchmark) (Measurement, error) {
	reps := cfg.reps()
	var (
		ns      = make([]float64, 0, reps)
		bytesPO = make([]float64, 0, reps)
		allocs  = make([]float64, 0, reps)
		metrics = map[string][]float64{}
		lastN   int
	)
	for i := 0; i < reps; i++ {
		r := testing.Benchmark(bm.Fn)
		if r.N <= 0 {
			return Measurement{}, fmt.Errorf("perfbench: %s ran zero iterations (did Fn skip or fail?)", bm.Name)
		}
		lastN = r.N
		ns = append(ns, float64(r.T.Nanoseconds())/float64(r.N))
		bytesPO = append(bytesPO, float64(r.AllocedBytesPerOp()))
		allocs = append(allocs, float64(r.AllocsPerOp()))
		for k, v := range r.Extra {
			metrics[k] = append(metrics[k], v)
		}
	}
	m := Measurement{
		Name:        bm.Name,
		N:           lastN,
		NsPerOp:     Median(RejectOutliersIQR(ns)),
		BytesPerOp:  int64(Median(bytesPO)),
		AllocsPerOp: int64(Median(allocs)),
	}
	if len(metrics) > 0 {
		m.Metrics = map[string]float64{}
		for k, vs := range metrics {
			m.Metrics[k] = Median(vs)
		}
	}
	return m, nil
}

// Median returns the middle value of xs (the mean of the middle two for
// even lengths); 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// quantile returns the q-quantile of sorted xs with linear
// interpolation between order statistics.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// RejectOutliersIQR drops values outside [Q1 - 1.5*IQR, Q3 + 1.5*IQR] —
// the standard Tukey fence. It never returns an empty slice: with fewer
// than 4 samples the fence is meaningless and xs is returned as-is.
// The typical victim is a first rep inflated by cold caches or a
// background process stealing the core mid-measurement.
func RejectOutliersIQR(xs []float64) []float64 {
	if len(xs) < 4 {
		return xs
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q1, q3 := quantile(s, 0.25), quantile(s, 0.75)
	iqr := q3 - q1
	lo, hi := q1-1.5*iqr, q3+1.5*iqr
	kept := s[:0]
	for _, v := range s {
		if v >= lo && v <= hi {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return xs
	}
	return kept
}
