package perfbench

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestRejectOutliersIQR(t *testing.T) {
	// A single wild rep — the classic cold-cache first run — must be
	// dropped; the tight cluster survives.
	xs := []float64{100, 102, 98, 101, 99, 5000}
	kept := RejectOutliersIQR(xs)
	for _, v := range kept {
		if v == 5000 {
			t.Fatalf("outlier 5000 survived IQR rejection: %v", kept)
		}
	}
	if len(kept) != 5 {
		t.Errorf("kept %d values, want 5: %v", len(kept), kept)
	}
	// Median after rejection is the cluster's, not dragged by the spike.
	if m := Median(kept); m < 98 || m > 102 {
		t.Errorf("median after rejection = %v, want within the cluster", m)
	}
	// Fewer than 4 samples: no fence, input unchanged.
	small := []float64{1, 1000, 2}
	if got := RejectOutliersIQR(small); !reflect.DeepEqual(got, small) {
		t.Errorf("small-sample rejection modified input: %v", got)
	}
	// All-identical values (IQR = 0) keep everything.
	same := []float64{5, 5, 5, 5}
	if got := RejectOutliersIQR(same); len(got) != 4 {
		t.Errorf("identical values were rejected: %v", got)
	}
}

// fakeBench returns a benchmark whose body spins a tiny deterministic
// loop and reports a metric, so harness tests run in microseconds.
func fakeBench(name string, metric float64) Benchmark {
	return Benchmark{
		Name:          name,
		Doc:           "test fixture",
		DefaultBudget: Budget{MaxNsRatio: 2, MaxAllocsDelta: 0},
		Fn: func(b *testing.B) {
			b.ReportAllocs()
			x := 0
			for i := 0; i < b.N; i++ {
				x += i
			}
			_ = x
			b.ReportMetric(metric, "fom")
		},
	}
}

func TestRunMeasuresAndSorts(t *testing.T) {
	benches := []Benchmark{fakeBench("zeta", 2), fakeBench("alpha", 1)}
	// "50x" pins the iteration count: fast and timer-independent.
	rep, err := Run(Config{BenchTime: "50x", Reps: 3}, benches)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("measured %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Name != "alpha" || rep.Benchmarks[1].Name != "zeta" {
		t.Errorf("report not sorted by name: %v, %v", rep.Benchmarks[0].Name, rep.Benchmarks[1].Name)
	}
	for _, m := range rep.Benchmarks {
		if m.N != 50 {
			t.Errorf("%s ran N=%d, want the pinned 50", m.Name, m.N)
		}
		if m.NsPerOp < 0 {
			t.Errorf("%s ns/op = %v, want >= 0", m.Name, m.NsPerOp)
		}
		if m.AllocsPerOp != 0 {
			t.Errorf("%s allocs/op = %d, want 0", m.Name, m.AllocsPerOp)
		}
	}
	if got := rep.Benchmarks[0].Metrics["fom"]; got != 1 {
		t.Errorf("alpha fom metric = %v, want 1", got)
	}
	if rep.Schema != Schema {
		t.Errorf("report schema = %d, want %d", rep.Schema, Schema)
	}
}

func TestRunFilterAndSlowBy(t *testing.T) {
	benches := []Benchmark{fakeBench("keep_me", 0), fakeBench("drop_me", 0)}
	rep, err := Run(Config{
		BenchTime: "10x",
		Reps:      1,
		Filter:    regexp.MustCompile("^keep"),
		SlowBy:    map[string]float64{"keep_me": 1e6},
	}, benches)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "keep_me" {
		t.Fatalf("filter kept %v, want only keep_me", rep.Benchmarks)
	}
	// A tiny loop multiplied by 1e6 cannot plausibly stay under 1000
	// ns/op unless the factor was ignored.
	if rep.Benchmarks[0].NsPerOp < 1000 {
		t.Errorf("slow-by factor not applied: ns/op = %v", rep.Benchmarks[0].NsPerOp)
	}
}

func baselineOf(entries ...BaselineEntry) *Baseline {
	return &Baseline{Schema: Schema, Benchmarks: entries}
}

func entry(name string, ns float64, allocs int64, budget Budget) BaselineEntry {
	return BaselineEntry{
		Measurement: Measurement{Name: name, N: 100, NsPerOp: ns, AllocsPerOp: allocs},
		Budget:      budget,
	}
}

func reportOf(ms ...Measurement) *Report {
	return &Report{Schema: Schema, Benchmarks: ms}
}

func TestCheckPassesWithinBudget(t *testing.T) {
	base := baselineOf(entry("a", 100, 0, Budget{MaxNsRatio: 2.5}))
	rep := reportOf(Measurement{Name: "a", NsPerOp: 200, AllocsPerOp: 0})
	if ps := Check(base, rep, []string{"a"}); len(ps) != 0 {
		t.Errorf("within-budget run failed: %v", ps)
	}
}

func TestCheckFailsOnNsRegression(t *testing.T) {
	base := baselineOf(entry("a", 100, 0, Budget{MaxNsRatio: 2.5}))
	rep := reportOf(Measurement{Name: "a", NsPerOp: 300, AllocsPerOp: 0})
	ps := Check(base, rep, []string{"a"})
	if len(ps) != 1 || !strings.Contains(ps[0].Msg, "ns/op regressed") {
		t.Errorf("3x slowdown against a 2.5x budget should fail: %v", ps)
	}
}

func TestCheckFailsOnAllocRegression(t *testing.T) {
	base := baselineOf(entry("hot", 100, 0, Budget{MaxNsRatio: 2.5, MaxAllocsDelta: 0}))
	rep := reportOf(Measurement{Name: "hot", NsPerOp: 100, AllocsPerOp: 1})
	ps := Check(base, rep, []string{"hot"})
	if len(ps) != 1 || !strings.Contains(ps[0].Msg, "allocs/op regressed") {
		t.Errorf("a zero-alloc hot path gaining an alloc should fail: %v", ps)
	}
}

func TestCheckFailsOnMissingAndStaleEntries(t *testing.T) {
	base := baselineOf(entry("renamed_away", 100, 0, Budget{MaxNsRatio: 2.5}))
	rep := reportOf(Measurement{Name: "brand_new", NsPerOp: 50})
	ps := Check(base, rep, []string{"brand_new"})
	if len(ps) != 2 {
		t.Fatalf("want 2 problems (missing + stale), got %v", ps)
	}
	if ps[0].Name != "brand_new" || !strings.Contains(ps[0].Msg, "not in the baseline") {
		t.Errorf("missing-entry problem wrong: %v", ps[0])
	}
	if ps[1].Name != "renamed_away" || !strings.Contains(ps[1].Msg, "stale") {
		t.Errorf("stale-entry problem wrong: %v", ps[1])
	}
}

func TestCheckSkipsFilteredOutBaselineEntries(t *testing.T) {
	// "b" is in the baseline and the suite but filtered out of this
	// run: not a problem.
	base := baselineOf(
		entry("a", 100, 0, Budget{MaxNsRatio: 2.5}),
		entry("b", 100, 0, Budget{MaxNsRatio: 2.5}),
	)
	rep := reportOf(Measurement{Name: "a", NsPerOp: 100})
	if ps := Check(base, rep, []string{"a", "b"}); len(ps) != 0 {
		t.Errorf("filtered-out baseline entry reported: %v", ps)
	}
}

func TestCheckDefaultsZeroNsRatio(t *testing.T) {
	// A hand-edited baseline with a zero ratio falls back to the
	// default instead of failing every run.
	base := baselineOf(entry("a", 100, 0, Budget{}))
	rep := reportOf(Measurement{Name: "a", NsPerOp: 100 * DefaultMaxNsRatio * 0.9})
	if ps := Check(base, rep, []string{"a"}); len(ps) != 0 {
		t.Errorf("zero-ratio budget should default to %vx: %v", DefaultMaxNsRatio, ps)
	}
}

func TestCompareMatchesByName(t *testing.T) {
	old := reportOf(
		Measurement{Name: "both", NsPerOp: 100, AllocsPerOp: 2},
		Measurement{Name: "gone", NsPerOp: 50},
	)
	cur := reportOf(
		Measurement{Name: "both", NsPerOp: 150, AllocsPerOp: 3},
		Measurement{Name: "fresh", NsPerOp: 10},
	)
	ds := Compare(old, cur)
	if len(ds) != 3 {
		t.Fatalf("want 3 deltas, got %v", ds)
	}
	byName := map[string]Delta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["both"]; d.Ratio() != 1.5 || d.OldAlloc != 2 || d.NewAlloc != 3 {
		t.Errorf("both delta wrong: %+v", d)
	}
	if !byName["gone"].OldOnly || byName["gone"].Ratio() != 0 {
		t.Errorf("gone delta wrong: %+v", byName["gone"])
	}
	if !byName["fresh"].NewOnly {
		t.Errorf("fresh delta wrong: %+v", byName["fresh"])
	}
}

func TestNewBaselinePreservesBudgetsAndSeedsDefaults(t *testing.T) {
	prev := baselineOf(entry("kept", 100, 0, Budget{MaxNsRatio: 9, MaxAllocsDelta: 7}))
	rep := reportOf(
		Measurement{Name: "kept", NsPerOp: 120},
		Measurement{Name: "added", NsPerOp: 10},
	)
	next := NewBaseline(prev, rep, map[string]Budget{"added": {MaxNsRatio: 3, MaxAllocsDelta: 1}})
	if len(next.Benchmarks) != 2 {
		t.Fatalf("baseline has %d entries, want 2", len(next.Benchmarks))
	}
	kept := next.find("kept")
	if kept == nil || kept.Budget.MaxNsRatio != 9 || kept.Budget.MaxAllocsDelta != 7 {
		t.Errorf("hand-tuned budget not preserved: %+v", kept)
	}
	if kept.NsPerOp != 120 {
		t.Errorf("measurement not refreshed: %+v", kept)
	}
	added := next.find("added")
	if added == nil || added.Budget.MaxNsRatio != 3 || added.Budget.MaxAllocsDelta != 1 {
		t.Errorf("default budget not seeded: %+v", added)
	}
}

func TestReportRoundTripAndSchemaGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	rep := reportOf(Measurement{Name: "a", N: 10, NsPerOp: 1.5, BytesPerOp: 8, AllocsPerOp: 1,
		Metrics: map[string]float64{"fom": 2}})
	rep.Label = "t"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip changed the report:\n%+v\n%+v", got, rep)
	}
	// A future-schema file must be refused, not misread.
	rep.Schema = Schema + 1
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestReportJSONFieldNamesStable pins the exact serialized field names:
// BENCH_<label>.json is an interface for external tooling, so a struct
// tag rename is a schema break and must bump Schema.
func TestReportJSONFieldNamesStable(t *testing.T) {
	rep := reportOf(Measurement{Name: "a", N: 10, NsPerOp: 1.5, BytesPerOp: 8, AllocsPerOp: 1,
		Metrics: map[string]float64{"fom": 2}})
	rep.Label = "pin"
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":1,"label":"pin","benchmarks":[{"name":"a","n":10,"ns_per_op":1.5,"bytes_per_op":8,"allocs_per_op":1,"metrics":{"fom":2}}]}`
	if string(data) != want {
		t.Errorf("report JSON drifted:\n got %s\nwant %s", data, want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	b := baselineOf(
		entry("z", 10, 1, Budget{MaxNsRatio: 2, MaxAllocsDelta: 3}),
		entry("a", 20, 0, Budget{MaxNsRatio: 2.5}),
	)
	if err := b.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks[0].Name != "a" || got.Benchmarks[1].Name != "z" {
		t.Errorf("baseline not sorted on write: %+v", got.Benchmarks)
	}
	if got.Benchmarks[1].Budget.MaxAllocsDelta != 3 {
		t.Errorf("budget lost in round trip: %+v", got.Benchmarks[1])
	}
}

func TestSuiteNamesSortedUniqueAndBudgeted(t *testing.T) {
	names := SuiteNames()
	if len(names) == 0 {
		t.Fatal("empty suite")
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("suite not sorted by name: %v", names)
	}
	seen := map[string]bool{}
	budgets := DefaultBudgets()
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate suite name %q", n)
		}
		seen[n] = true
		b, ok := budgets[n]
		if !ok {
			t.Errorf("no default budget for %q", n)
			continue
		}
		// Every ns budget must stay below the 3x regression the CI
		// smoke seeds, or the gate cannot prove it bites.
		if b.MaxNsRatio <= 0 || b.MaxNsRatio >= 3 {
			t.Errorf("%s MaxNsRatio = %v, want in (0, 3)", n, b.MaxNsRatio)
		}
	}
	for _, bm := range Suite() {
		if bm.Fn == nil || bm.Doc == "" {
			t.Errorf("suite entry %q missing Fn or Doc", bm.Name)
		}
	}
}

// TestSuiteFastPathsRun executes the cheap suite entries end to end
// with a pinned iteration count, proving the definitions hold together
// without paying for the simulator-heavy ones in every test run.
func TestSuiteFastPathsRun(t *testing.T) {
	rep, err := Run(Config{
		BenchTime: "30x",
		Reps:      1,
		Filter:    regexp.MustCompile("hist_observe|resultstore_warm|resultstore_cold"),
	}, Suite())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("ran %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	for _, m := range rep.Benchmarks {
		if m.N != 30 {
			t.Errorf("%s N = %d, want pinned 30", m.Name, m.N)
		}
	}
}
