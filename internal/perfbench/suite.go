package perfbench

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/noc"
	"gpunoc/internal/obs"
	"gpunoc/internal/resultstore"
)

// ExperimentLoop runs registry experiment id against cfg once per
// iteration, building a fresh core.Context inside the timed region each
// time. The fresh context is deliberate twice over: it is the cost a
// nocserve cold fill actually pays (device + engine construction, then
// the run), and it keeps iterations independent — the old root-package
// benchmarks shared one Context across all b.N iterations, so any
// state the first run warmed (engine solver scratch, device tables)
// made every later iteration measure a different, cheaper code path
// than the one production takes.
func ExperimentLoop(b *testing.B, id string, cfg gpu.Config) {
	b.Helper()
	e, err := core.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, err := core.NewContext(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// droppingSink counts delivered packets so the mesh benchmark can
// report a delivery figure of merit without retaining payloads.
type droppingSink struct{ packets int64 }

func (s *droppingSink) Accept(_ *noc.Packet, lastFlit bool, _ int64) bool {
	if lastFlit {
		s.packets++
	}
	return true
}

// Suite returns the curated benchmark set, sorted by name. Names are
// baseline keys: renaming one is a baseline change, and -check fails on
// the stale entry until the baseline is regenerated.
func Suite() []Benchmark {
	return []Benchmark{
		{
			Name:          "experiment_quick",
			Doc:           "end-to-end quick fig1 run incl. fresh Context (the nocserve cold-fill path)",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 4096},
			Fn: func(b *testing.B) {
				ExperimentLoop(b, "fig1", gpu.V100())
			},
		},
		{
			Name:          "gpusim_quick",
			Doc:           "many-to-few-to-many gpusim pipeline, reduced cycle count",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 64},
			Fn: func(b *testing.B) {
				cfg := noc.DefaultGPUSimConfig(1)
				cfg.Cycles, cfg.Warmup = 6000, 600
				b.ReportAllocs()
				b.ResetTimer()
				var memUtil float64
				for i := 0; i < b.N; i++ {
					res, err := noc.RunGPUSim(cfg)
					if err != nil {
						b.Fatal(err)
					}
					memUtil = res.MemUtilization
				}
				b.ReportMetric(memUtil, "mem_util")
			},
		},
		{
			Name:          "hist_observe",
			Doc:           "obs.Histogram.Observe across the depth-bucket layout incl. overflow",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 0},
			Fn: func(b *testing.B) {
				h := obs.New().Histogram("perfbench/occupancy", obs.DepthBounds())
				b.ReportAllocs()
				b.ResetTimer()
				v := int64(0)
				for i := 0; i < b.N; i++ {
					h.Observe(v)
					v = (v + 137) % 2048
				}
			},
		},
		{
			Name:          "mesh_step",
			Doc:           "8x8 mesh steady-state Step under uniform-random 4-flit traffic",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 0},
			Fn: func(b *testing.B) {
				m, err := noc.NewMesh(noc.MeshConfig{Width: 8, Height: 8, BufferFlits: 8, Arbiter: noc.RoundRobin})
				if err != nil {
					b.Fatal(err)
				}
				n := m.Nodes()
				sinks := make([]droppingSink, n)
				for node := 0; node < n; node++ {
					m.SetSink(node, &sinks[node])
				}
				rng := rand.New(rand.NewSource(1))
				// A mesh ejects at most one packet per node per cycle;
				// b.N+warmup packets keep every router busy to the end.
				for i := 0; i < b.N+1000; i++ {
					src := rng.Intn(n)
					dst := rng.Intn(n - 1)
					if dst >= src {
						dst++
					}
					if _, err := m.Inject(src, dst, 4, nil); err != nil {
						b.Fatal(err)
					}
				}
				m.Run(100)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Step()
				}
				b.StopTimer()
				var delivered int64
				for i := range sinks {
					delivered += sinks[i].packets
				}
				b.ReportMetric(float64(delivered)/float64(m.Cycle()), "pkts_per_cycle")
			},
		},
		{
			Name:          "result_render",
			Doc:           "Result renderers (JSON+CSV+text+markdown) over a warm fig1 quick result",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 64},
			Fn: func(b *testing.B) {
				ctx, err := core.NewContext(gpu.V100(), true)
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.Lookup("fig1")
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.RunResult(ctx, e)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := res.JSONBytes(); err != nil {
						b.Fatal(err)
					}
					_ = res.CSVBytes()
					_ = res.TextBytes()
					_ = res.MarkdownBytes()
				}
			},
		},
		{
			Name:          "resultstore_cold",
			Doc:           "resultstore GetContext cold fill (singleflight spawn + insert) per op",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 16},
			Fn: func(b *testing.B) {
				entry := &resultstore.Entry{JSON: []byte(`{"ok":true}`), Text: []byte("ok")}
				s, err := resultstore.New(resultstore.Options{
					Compute: func(context.Context, resultstore.Key) (*resultstore.Entry, error) {
						return entry, nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				keys := make([]resultstore.Key, b.N)
				for i := range keys {
					keys[i] = resultstore.Key{GPU: gpu.GenV100, Exp: fmt.Sprintf("bench%07d", i), Quick: true}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := s.Get(keys[i]); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name:          "resultstore_warm",
			Doc:           "resultstore GetContext warm hit (lock + map lookup + recency bump) per op",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 0},
			Fn: func(b *testing.B) {
				entry := &resultstore.Entry{JSON: []byte(`{"ok":true}`), Text: []byte("ok")}
				s, err := resultstore.New(resultstore.Options{
					Compute: func(context.Context, resultstore.Key) (*resultstore.Entry, error) {
						return entry, nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				k := resultstore.Key{GPU: gpu.GenV100, Exp: "fig1", Quick: true}
				if _, _, err := s.Get(k); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := s.Get(k); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name:          "xbar_step",
			Doc:           "hierarchical crossbar steady-state Step at the default ext1 topology",
			DefaultBudget: Budget{MaxNsRatio: DefaultMaxNsRatio, MaxAllocsDelta: 0},
			Fn: func(b *testing.B) {
				cfg := noc.DefaultXbarFairnessConfig(noc.RoundRobin, 1).Xbar
				x, err := noc.NewXbar(cfg)
				if err != nil {
					b.Fatal(err)
				}
				n := x.Nodes()
				rng := rand.New(rand.NewSource(1))
				// Ports drain up to MemPorts*PortCapacity flits per cycle;
				// keep the source queues fed for the whole measurement.
				for i := 0; i < b.N+1000; i++ {
					if _, err := x.Inject(rng.Intn(n), rng.Intn(cfg.MemPorts), 4); err != nil {
						b.Fatal(err)
					}
				}
				x.Run(100)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x.Step()
				}
			},
		},
	}
}

// SuiteNames returns the full suite's benchmark names, the reference
// set Check uses to detect stale baseline entries.
func SuiteNames() []string {
	benches := Suite()
	names := make([]string, len(benches))
	for i, bm := range benches {
		names[i] = bm.Name
	}
	return names
}

// DefaultBudgets maps each suite benchmark to its seed budget, for
// NewBaseline.
func DefaultBudgets() map[string]Budget {
	out := map[string]Budget{}
	for _, bm := range Suite() {
		out[bm.Name] = bm.DefaultBudget
	}
	return out
}
