// Package core is the characterization engine: it ties the substrates
// (gpu, bandwidth, kernel, microbench, noc, sidechannel, workload)
// together into a registry of runnable experiments - one per table and
// figure of the paper - plus programmatic checks for the paper's twelve
// observations. The cmd/nocchar binary and the repository's benchmark
// harness are thin wrappers over this package.
package core

import (
	"fmt"
	"math"
	"strings"
)

// Artifact is one renderable experiment output (a figure panel or table).
type Artifact interface {
	// Title names the artifact, e.g. "Fig 1(a): L2 latency from SM 24".
	Title() string
	// Render returns a human-readable text rendering.
	Render() string
	// CSV returns the artifact as comma-separated values for plotting.
	CSV() string
}

// Series is an (x, y) line or bar series.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Title implements Artifact.
func (s *Series) Title() string { return s.Name }

// Render implements Artifact with an ASCII column plot.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s vs %s\n", s.Name, s.YLabel, s.XLabel)
	lo, hi := minmax(s.Y)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	const width = 50
	for i := range s.X {
		bar := int(float64(width) * (s.Y[i] - lo) / span)
		fmt.Fprintf(&b, "%10.2f | %-*s %.3f\n", s.X[i], width, strings.Repeat("*", bar), s.Y[i])
	}
	return b.String()
}

// CSV implements Artifact.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,%s\n", csvEscape(s.XLabel), csvEscape(s.YLabel))
	for i := range s.X {
		fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// MultiSeries is several named y-series over a shared x axis.
type MultiSeries struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Lines  []NamedLine
}

// NamedLine is one line of a MultiSeries.
type NamedLine struct {
	Label string
	Y     []float64
}

// Title implements Artifact.
func (m *MultiSeries) Title() string { return m.Name }

// Render implements Artifact.
func (m *MultiSeries) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s vs %s\n", m.Name, m.YLabel, m.XLabel)
	fmt.Fprintf(&b, "%10s", m.XLabel)
	for _, l := range m.Lines {
		fmt.Fprintf(&b, " %14s", l.Label)
	}
	b.WriteString("\n")
	for i := range m.X {
		fmt.Fprintf(&b, "%10.2f", m.X[i])
		for _, l := range m.Lines {
			if i < len(l.Y) {
				fmt.Fprintf(&b, " %14.3f", l.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV implements Artifact.
func (m *MultiSeries) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(m.XLabel))
	for _, l := range m.Lines {
		b.WriteString("," + csvEscape(l.Label))
	}
	b.WriteString("\n")
	for i := range m.X {
		fmt.Fprintf(&b, "%g", m.X[i])
		for _, l := range m.Lines {
			if i < len(l.Y) {
				fmt.Fprintf(&b, ",%g", l.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table is a labelled grid of strings.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
}

// Title implements Artifact.
func (t *Table) Title() string { return t.Name }

// Render implements Artifact.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Name + "\n")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV implements Artifact.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(escapeAll(t.Columns), ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(escapeAll(row), ",") + "\n")
	}
	return b.String()
}

// Heatmap is a labelled value grid (e.g. the Fig. 6 Pearson heatmaps).
type Heatmap struct {
	Name    string
	XLabels []string
	YLabels []string
	Values  [][]float64
	// Lo and Hi clamp the rendering scale; equal values auto-scale.
	Lo, Hi float64
}

// Title implements Artifact.
func (h *Heatmap) Title() string { return h.Name }

// shades maps intensity to glyphs, light to dark.
var shades = []byte(" .:-=+*#%@")

// Render implements Artifact.
func (h *Heatmap) Render() string {
	lo, hi := h.Lo, h.Hi
	if lo == hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, row := range h.Values {
			for _, v := range row {
				if math.IsNaN(v) {
					continue
				}
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if lo > hi {
			lo, hi = 0, 1
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (scale %.2f..%.2f, light..dark)\n", h.Name, lo, hi)
	labelW := 0
	for _, l := range h.YLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for y, row := range h.Values {
		label := ""
		if y < len(h.YLabels) {
			label = h.YLabels[y]
		}
		fmt.Fprintf(&b, "%-*s |", labelW, label)
		for _, v := range row {
			if math.IsNaN(v) {
				// Undefined cells (e.g. a Pearson pair with a constant
				// series) render distinctly from every real shade.
				b.WriteString("??")
				continue
			}
			f := (v - lo) / span
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			idx := int(f * float64(len(shades)-1))
			b.WriteByte(shades[idx])
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// CSV implements Artifact.
func (h *Heatmap) CSV() string {
	var b strings.Builder
	b.WriteString("," + strings.Join(escapeAll(h.XLabels), ",") + "\n")
	for y, row := range h.Values {
		label := ""
		if y < len(h.YLabels) {
			label = h.YLabels[y]
		}
		b.WriteString(csvEscape(label))
		for _, v := range row {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Text is a free-form artifact (diagrams, commentary).
type Text struct {
	Name string
	Body string
}

// Title implements Artifact.
func (t *Text) Title() string { return t.Name }

// Render implements Artifact.
func (t *Text) Render() string { return t.Name + "\n" + t.Body }

// CSV implements Artifact.
func (t *Text) CSV() string { return csvEscape(t.Body) + "\n" }

func minmax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func escapeAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = csvEscape(s)
	}
	return out
}
