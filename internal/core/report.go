package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gpunoc/internal/gpu"
)

// WriteReport runs every experiment applicable to the given generations
// and writes a self-contained Markdown report: per experiment, the
// paper's claim and the model's artifacts. It is the one-command
// regeneration of the paper's evaluation section.
func WriteReport(w io.Writer, cfgs []gpu.Config, quick bool, now time.Time) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("core: no generations to report on")
	}
	pw := &printer{w: w}
	pw.printf("# gpunoc characterization report\n\n")
	pw.printf("Generated %s; quick mode: %v.\n\n", now.Format("2006-01-02 15:04 MST"), quick)

	ctxs := map[gpu.Generation]*Context{}
	for _, cfg := range cfgs {
		ctx, err := NewContext(cfg, quick)
		if err != nil {
			return err
		}
		ctxs[cfg.Name] = ctx
	}

	for _, e := range All() {
		pw.printf("## %s — %s\n\n", e.ID, e.Title)
		pw.printf("*Paper:* %s\n\n", e.Paper)
		ran := false
		for _, cfg := range cfgs {
			if !e.SupportsGPU(cfg.Name) {
				continue
			}
			arts, err := e.Run(ctxs[cfg.Name])
			if err != nil {
				pw.printf("`%s` on %s: not applicable (%v)\n\n", e.ID, cfg.Name, err)
				continue
			}
			ran = true
			for _, a := range arts {
				pw.printf("```\n%s```\n\n", ensureTrailingNewline(a.Render()))
			}
		}
		if !ran {
			pw.printf("_No selected generation supports this experiment._\n\n")
		}
	}

	// Close with the observation checklist.
	pw.printf("## Observations #1–#12\n\n")
	obs, err := CheckObservations()
	if err != nil {
		return err
	}
	for _, o := range obs {
		mark := "x"
		if !o.Pass {
			mark = " "
		}
		pw.printf("- [%s] #%d %s — %s\n", mark, o.ID, o.Text, o.Detail)
	}
	return pw.err
}

// printer wraps an io.Writer and remembers the first write error, so
// report generation can print unconditionally and report failure once.
type printer struct {
	w   io.Writer
	err error
}

// printf formats into the underlying writer unless a write already
// failed; later calls become no-ops so the first error is preserved.
func (p *printer) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func ensureTrailingNewline(s string) string {
	if len(s) == 0 || s[len(s)-1] != '\n' {
		return s + "\n"
	}
	return s
}

// ArtifactJSON is the portable encoding of one artifact.
type ArtifactJSON struct {
	Title string `json:"title"`
	Kind  string `json:"kind"`
	// CSV carries the tabular payload; Body carries free text.
	CSV  string `json:"csv,omitempty"`
	Body string `json:"body,omitempty"`
}

// MarshalArtifacts encodes artifacts as JSON for programmatic consumers.
func MarshalArtifacts(arts []Artifact) ([]byte, error) {
	out := make([]ArtifactJSON, 0, len(arts))
	for _, a := range arts {
		j := ArtifactJSON{Title: a.Title()}
		switch v := a.(type) {
		case *Series:
			j.Kind = "series"
			j.CSV = v.CSV()
		case *MultiSeries:
			j.Kind = "multiseries"
			j.CSV = v.CSV()
		case *Table:
			j.Kind = "table"
			j.CSV = v.CSV()
		case *Heatmap:
			j.Kind = "heatmap"
			j.CSV = v.CSV()
		case *Text:
			j.Kind = "text"
			j.Body = v.Body
		default:
			j.Kind = "unknown"
			j.CSV = a.CSV()
		}
		out = append(out, j)
	}
	return json.MarshalIndent(out, "", "  ")
}
