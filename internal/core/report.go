package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
	"gpunoc/internal/parallel"
)

// ReportOptions configures WriteReportOptions.
type ReportOptions struct {
	// Quick trades statistical depth for speed.
	Quick bool
	// Now stamps the report header.
	Now time.Time
	// Workers bounds the (experiment, generation) fan-out pool and each
	// experiment's internal sweeps; <= 0 selects the GOMAXPROCS-derived
	// default. The report bytes are identical for every value.
	Workers int
	// Stopwatch, when non-nil, returns elapsed wall time since an origin
	// of the caller's choosing and enables the per-experiment timing
	// footer. Callers inject it (cmd/nocchar passes a time.Since
	// closure) so this package never reads the clock itself and reports
	// stay byte-comparable whenever Stopwatch is nil.
	Stopwatch func() time.Duration
	// Obs, when non-nil, collects simulator instruments during the run -
	// each (experiment, generation) job observes into its own
	// "<id>/<gpu>/" scope - and enables the metrics-summary footer. The
	// instruments are atomic and rendered in sorted order, so the footer
	// is byte-identical for every worker count. A nil Obs leaves the
	// report bytes exactly as before.
	Obs *obs.Registry
	// Cancel, when non-nil, aborts report generation early: undispatched
	// (experiment, generation) jobs are skipped at the runner's claim
	// boundaries, running experiments stop at their next sweep-row
	// checkpoint, and WriteReportOptions returns the context's error
	// instead of a partial report. A nil Cancel changes nothing.
	Cancel context.Context
}

// WriteReport runs every experiment applicable to the given generations
// and writes a self-contained Markdown report: per experiment, the
// paper's claim and the model's artifacts. It is the one-command
// regeneration of the paper's evaluation section.
func WriteReport(w io.Writer, cfgs []gpu.Config, quick bool, now time.Time) error {
	return WriteReportOptions(w, cfgs, ReportOptions{Quick: quick, Now: now})
}

// WriteReportOptions is WriteReport with explicit options. The
// (experiment, generation) pairs run concurrently on the deterministic
// parallel runner; results land in index-addressed slots and are
// rendered in registry order, so the output is byte-identical to a
// sequential run for every pool size.
func WriteReportOptions(w io.Writer, cfgs []gpu.Config, opts ReportOptions) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("core: no generations to report on")
	}
	pw := &printer{w: w}
	pw.printf("# gpunoc characterization report\n\n")
	pw.printf("Generated %s; quick mode: %v.\n\n", opts.Now.Format("2006-01-02 15:04 MST"), opts.Quick)

	ctxs := map[gpu.Generation]*Context{}
	for _, cfg := range cfgs {
		ctx, err := NewContext(cfg, opts.Quick)
		if err != nil {
			return err
		}
		ctx.Workers = opts.Workers
		ctx.Cancel = opts.Cancel
		ctxs[cfg.Name] = ctx
	}

	// Fan the (experiment, generation) pairs out across the pool. An
	// experiment's own error is part of its result (it renders as "not
	// applicable"), so a worker never fails and no pair is skipped.
	type job struct {
		e   *Experiment
		cfg gpu.Config
	}
	var jobs []job
	for _, e := range All() {
		for _, cfg := range cfgs {
			if e.SupportsGPU(cfg.Name) {
				jobs = append(jobs, job{e: e, cfg: cfg})
			}
		}
	}
	type outcome struct {
		arts []Artifact
		err  error
		dur  time.Duration
	}
	results, err := parallel.MapContext(opts.Cancel, opts.Workers, len(jobs), func(i int) (outcome, error) {
		j := jobs[i]
		var start time.Duration
		if opts.Stopwatch != nil {
			start = opts.Stopwatch()
		}
		ctx := ctxs[j.cfg.Name]
		if opts.Obs != nil {
			// Shallow-copy the shared context so each concurrent job
			// observes into its own scope.
			c := *ctx
			c.Obs = opts.Obs.Scope(j.e.ID).Scope(string(j.cfg.Name))
			ctx = &c
		}
		res, err := RunResult(ctx, j.e)
		o := outcome{err: err}
		if err == nil {
			o.arts = res.Artifacts
		} else if ctx.Interrupted() != nil {
			// An experiment abandoned at a sweep-row checkpoint is a
			// cancelled report, not a "not applicable" section.
			return o, err
		}
		if opts.Stopwatch != nil {
			o.dur = opts.Stopwatch() - start
		}
		return o, nil
	})
	if err != nil {
		return err
	}

	// Render in registry order; jobs were built in the same order.
	k := 0
	for _, e := range All() {
		pw.printf("## %s — %s\n\n", e.ID, e.Title)
		pw.printf("*Paper:* %s\n\n", e.Paper)
		ran := false
		for _, cfg := range cfgs {
			if !e.SupportsGPU(cfg.Name) {
				continue
			}
			r := results[k]
			k++
			if r.err != nil {
				pw.printf("`%s` on %s: not applicable (%v)\n\n", e.ID, cfg.Name, r.err)
				continue
			}
			ran = true
			for _, a := range r.arts {
				pw.printf("```\n%s```\n\n", ensureTrailingNewline(a.Render()))
			}
		}
		if !ran {
			pw.printf("_No selected generation supports this experiment._\n\n")
		}
	}

	// Close with the observation checklist.
	pw.printf("## Observations #1–#12\n\n")
	checks, err := CheckObservations()
	if err != nil {
		return err
	}
	for _, o := range checks {
		mark := "x"
		if !o.Pass {
			mark = " "
		}
		pw.printf("- [%s] #%d %s — %s\n", mark, o.ID, o.Text, o.Detail)
	}

	// Metrics-summary footer, only when the caller enabled collection:
	// the instrument values are deterministic at fixed seeds, so this
	// section stays byte-comparable across runs and worker counts.
	if opts.Obs != nil {
		pw.printf("\n## Metrics summary\n\n")
		rows := opts.Obs.SummaryRows()
		if len(rows) == 0 {
			pw.printf("_No instruments recorded._\n")
		}
		for _, r := range rows {
			pw.printf("- %s: %s\n", r.Name, r.Value)
		}
	}

	// Wall-time footer, only when the caller injected a clock: timings
	// are inherently nondeterministic, so they must never appear in a
	// byte-compared report.
	if opts.Stopwatch != nil {
		pw.printf("\n## Experiment wall times\n\n")
		k = 0
		for _, e := range All() {
			var total time.Duration
			any := false
			for _, cfg := range cfgs {
				if !e.SupportsGPU(cfg.Name) {
					continue
				}
				total += results[k].dur
				k++
				any = true
			}
			if any {
				pw.printf("- %s: %s\n", e.ID, total.Round(time.Millisecond))
			}
		}
		pw.printf("- total elapsed: %s\n", opts.Stopwatch().Round(time.Millisecond))
	}
	return pw.err
}

// printer wraps an io.Writer and remembers the first write error, so
// report generation can print unconditionally and report failure once.
type printer struct {
	w   io.Writer
	err error
}

// printf formats into the underlying writer unless a write already
// failed; later calls become no-ops so the first error is preserved.
func (p *printer) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func ensureTrailingNewline(s string) string {
	if len(s) == 0 || s[len(s)-1] != '\n' {
		return s + "\n"
	}
	return s
}

// ArtifactJSON is the portable encoding of one artifact.
type ArtifactJSON struct {
	Title string `json:"title"`
	Kind  string `json:"kind"`
	// CSV carries the tabular payload; Body carries free text.
	CSV  string `json:"csv,omitempty"`
	Body string `json:"body,omitempty"`
}

// MarshalArtifacts encodes artifacts as JSON for programmatic consumers.
func MarshalArtifacts(arts []Artifact) ([]byte, error) {
	out := make([]ArtifactJSON, 0, len(arts))
	for _, a := range arts {
		j := ArtifactJSON{Title: a.Title()}
		switch v := a.(type) {
		case *Series:
			j.Kind = "series"
			j.CSV = v.CSV()
		case *MultiSeries:
			j.Kind = "multiseries"
			j.CSV = v.CSV()
		case *Table:
			j.Kind = "table"
			j.CSV = v.CSV()
		case *Heatmap:
			j.Kind = "heatmap"
			j.CSV = v.CSV()
		case *Text:
			j.Kind = "text"
			j.Body = v.Body
		default:
			j.Kind = "unknown"
			j.CSV = a.CSV()
		}
		out = append(out, j)
	}
	return json.MarshalIndent(out, "", "  ")
}
