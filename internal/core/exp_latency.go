package core

import (
	"fmt"

	"gpunoc/internal/gpu"
	"gpunoc/internal/microbench"
	"gpunoc/internal/stats"
)

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Table I: Microarchitecture comparison of modelled NVIDIA GPUs",
		Paper: "V100/A100/H100 headline parameters",
		Run:   runTable1,
	})
	register(&Experiment{
		ID:    "fig1",
		Title: "Fig 1: Non-uniform L2 access latency and per-GPC statistics",
		Paper: "V100: SM24 sees 175-248 cycles across slices, mean ~212; GPC averages similar, variation differs",
		GPUs:  []gpu.Generation{gpu.GenV100},
		Run:   runFig1,
	})
	register(&Experiment{
		ID:    "fig2",
		Title: "Fig 2: L2 latency histograms of two GPCs",
		Paper: "GPC0 mu=213 sigma=13.9; GPC2 mu=209 sigma=7.5 on V100",
		GPUs:  []gpu.Generation{gpu.GenV100},
		Run:   runFig2,
	})
	register(&Experiment{
		ID:    "fig3",
		Title: "Fig 3: Latency-sorted slice order grouped by MP, across SMs",
		Paper: "Sorted slice order within each MP identical from every SM",
		Run:   runFig3,
	})
	register(&Experiment{
		ID:    "fig4",
		Title: "Fig 4: Approximate logical floorplan",
		Paper: "V100 die: GPC columns with the MP/L2 band; closely placed SM/slice pairs have lowest latency",
		Run:   runFig4,
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "Fig 5: Latency between one GPC's SMs and one MP's slices",
		Paper: "Physically closer SM/slice pairs have lower latency (GPC4 x MP3, 180..217 cycles)",
		Run:   runFig5,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Fig 6: Pearson correlation heatmap of SM latency profiles",
		Paper: "V100: GPC pairs correlate; A100: partition structure; H100: CPC sub-blocks",
		Run:   runFig6,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Fig 7: H100 SM-to-SM latency across CPC pairs",
		Paper: "196 cycles within CPC0 up to ~213 within CPC2",
		GPUs:  []gpu.Generation{gpu.GenH100},
		Run:   runFig7,
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Fig 8: GPC-to-MP hit latency and miss penalty",
		Paper: "V100 flat ~212; A100 near ~212 far ~400; H100 hits uniform but miss penalty varies",
		Run:   runFig8,
	})
}

func runTable1(ctx *Context) ([]Artifact, error) {
	t := &Table{
		Name:    "Table I (modelled)",
		Columns: []string{"Parameter", "V100", "A100", "H100"},
	}
	cfgs := gpu.AllConfigs()
	row := func(name string, f func(c gpu.Config) string) {
		r := []string{name}
		for _, c := range cfgs {
			r = append(r, f(c))
		}
		t.Rows = append(t.Rows, r)
	}
	row("GPCs", func(c gpu.Config) string { return fmt.Sprint(c.GPCs) })
	row("TPCs/GPC", func(c gpu.Config) string { return fmt.Sprint(c.TPCsPerGPC) })
	row("CPCs/GPC", func(c gpu.Config) string { return fmt.Sprint(c.CPCsPerGPC) })
	row("SMs", func(c gpu.Config) string { return fmt.Sprint(c.SMs()) })
	row("GPU partitions", func(c gpu.Config) string { return fmt.Sprint(c.Partitions) })
	row("L2 slices", func(c gpu.Config) string { return fmt.Sprint(c.L2Slices) })
	row("Memory partitions", func(c gpu.Config) string { return fmt.Sprint(c.MPs) })
	row("L2 size (MiB)", func(c gpu.Config) string { return fmt.Sprint(c.L2SizeMiB) })
	row("Memory BW (GB/s)", func(c gpu.Config) string { return fmt.Sprintf("%.0f", c.MemBWGBs) })
	row("Core clock (MHz)", func(c gpu.Config) string { return fmt.Sprint(c.CoreClockMHz) })
	row("Partition-local L2", func(c gpu.Config) string { return fmt.Sprint(c.LocalL2Caching) })
	return []Artifact{t}, nil
}

func runFig1(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	iters := ctx.iters(16, 4)
	b := microbench.NewBench(ctx.Obs)

	// (a) one SM's latency to every slice, x-axis = profiler slice ID.
	const probeSM = 24
	profile, err := b.LatencyProfile(dev, probeSM, iters)
	if err != nil {
		return nil, err
	}
	sa := &Series{
		Name:   fmt.Sprintf("Fig 1(a): L2 latency from SM %d to each slice", probeSM),
		XLabel: "L2 slice ID", YLabel: "cycles",
		X: make([]float64, len(profile)), Y: profile,
	}
	for i := range sa.X {
		sa.X[i] = float64(i)
	}

	// (b) per-GPC average and spread.
	tb := &Table{
		Name:    "Fig 1(b): per-GPC latency statistics",
		Columns: []string{"GPC", "mean", "sigma", "min", "max"},
	}
	for g := 0; g < cfg.GPCs; g++ {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		var xs []float64
		for _, sm := range dev.SMsOfGPC(g) {
			// Sampling a subset of SMs keeps the quick mode fast while
			// covering the whole GPC in full mode.
			if ctx.Quick && sm > 2*cfg.GPCs {
				continue
			}
			p, err := b.LatencyProfile(dev, sm, iters)
			if err != nil {
				return nil, err
			}
			xs = append(xs, p...)
		}
		sum := stats.Summarize(xs)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(g),
			fmt.Sprintf("%.1f", sum.Mean), fmt.Sprintf("%.1f", sum.StdDev),
			fmt.Sprintf("%.1f", sum.Min), fmt.Sprintf("%.1f", sum.Max),
		})
	}
	return []Artifact{sa, tb}, nil
}

func runFig2(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	iters := ctx.iters(8, 2)
	b := microbench.NewBench(ctx.Obs)
	var arts []Artifact
	for _, g := range []int{0, 2} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		var xs []float64
		for _, sm := range dev.SMsOfGPC(g) {
			p, err := b.LatencyProfile(dev, sm, iters)
			if err != nil {
				return nil, err
			}
			xs = append(xs, p...)
		}
		h := stats.HistogramOf(xs, 24)
		sum := stats.Summarize(xs)
		arts = append(arts, &Text{
			Name: fmt.Sprintf("Fig 2: GPC%d latency histogram (mu=%.1f sigma=%.1f)", g, sum.Mean, sum.StdDev),
			Body: h.Render(40),
		})
	}
	return arts, nil
}

func runFig3(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	iters := ctx.iters(16, 4)
	// Two SMs each from two GPCs, as in the paper's four panels.
	sms := []int{
		dev.SMsOfGPC(0)[0], dev.SMsOfGPC(0)[4],
		dev.SMsOfGPC(cfg.GPCs / 2)[0], dev.SMsOfGPC(cfg.GPCs / 2)[4],
	}
	ms := &MultiSeries{
		Name:   "Fig 3: slice latencies grouped by MP, sorted by SM0's order",
		XLabel: "slice (grouped by MP, sorted)", YLabel: "cycles",
	}
	// Build the reference ordering from the first SM: group by MP, sort
	// within each group by its latency.
	b := microbench.NewBench(ctx.Obs)
	ref, err := b.LatencyProfile(dev, sms[0], iters)
	if err != nil {
		return nil, err
	}
	var order []int
	for mp := 0; mp < cfg.MPs; mp++ {
		slices := dev.SlicesOfMP(mp)
		lat := make([]float64, len(slices))
		for i, s := range slices {
			lat[i] = ref[s]
		}
		for _, idx := range stats.Argsort(lat) {
			order = append(order, slices[idx])
		}
	}
	ms.X = make([]float64, len(order))
	for i := range ms.X {
		ms.X[i] = float64(i)
	}
	for _, sm := range sms {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		p, err := b.LatencyProfile(dev, sm, iters)
		if err != nil {
			return nil, err
		}
		y := make([]float64, len(order))
		for i, s := range order {
			y[i] = p[s]
		}
		ms.Lines = append(ms.Lines, NamedLine{Label: fmt.Sprintf("SM%d(GPC%d)", sm, dev.GPCOf(sm)), Y: y})
	}
	return []Artifact{ms}, nil
}

func runFig4(ctx *Context) ([]Artifact, error) {
	return []Artifact{&Text{
		Name: "Fig 4: approximate logical floorplan",
		Body: ctx.Device.Plan().Render(),
	}}, nil
}

func runFig5(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	iters := ctx.iters(16, 4)
	gpc := cfg.GPCs - 2 // an edge GPC, like the paper's GPC4
	if gpc < 0 {
		gpc = 0
	}
	mp := cfg.MPs / 2
	b := microbench.NewBench(ctx.Obs)
	hm := &Heatmap{Name: fmt.Sprintf("Fig 5: latency from GPC%d SMs to MP%d slices", gpc, mp)}
	for _, s := range dev.SlicesOfMP(mp) {
		hm.XLabels = append(hm.XLabels, fmt.Sprintf("s%d", s))
	}
	for _, sm := range dev.SMsOfGPC(gpc) {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		hm.YLabels = append(hm.YLabels, fmt.Sprintf("SM%d", sm))
		row := make([]float64, 0, cfg.SlicesPerMP())
		for _, s := range dev.SlicesOfMP(mp) {
			r, err := b.MeasureL2Latency(dev, sm, s, iters)
			if err != nil {
				return nil, err
			}
			row = append(row, r.Summary.Mean)
		}
		hm.Values = append(hm.Values, row)
	}
	return []Artifact{hm}, nil
}

func runFig6(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	// Sample SMs: full mode uses 4 SMs per GPC, quick uses 2.
	perGPC := 4
	if ctx.Quick {
		perGPC = 2
	}
	var sms []int
	for g := 0; g < cfg.GPCs; g++ {
		gsms := dev.SMsOfGPC(g)
		step := len(gsms) / perGPC
		if step == 0 {
			step = 1
		}
		for i := 0; i < perGPC && i*step < len(gsms); i++ {
			sms = append(sms, gsms[i*step])
		}
	}
	m, err := microbench.NewBench(ctx.Obs).CorrelationHeatmap(dev, sms, ctx.iters(8, 2), ctx.Workers)
	if err != nil {
		return nil, err
	}
	hm := &Heatmap{
		Name: fmt.Sprintf("Fig 6 (%s): Pearson correlation of SM latency profiles", cfg.Name),
		Lo:   -1, Hi: 1,
		Values: m,
	}
	for _, sm := range sms {
		label := fmt.Sprintf("SM%d/G%d", sm, dev.GPCOf(sm))
		hm.XLabels = append(hm.XLabels, label)
		hm.YLabels = append(hm.YLabels, label)
	}
	return []Artifact{hm}, nil
}

func runFig7(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	m, err := microbench.SMToSMLatencyMatrix(dev, 0, ctx.iters(16, 4))
	if err != nil {
		return nil, err
	}
	hm := &Heatmap{Name: "Fig 7(b): SM-to-SM latency by (src, dst) CPC pair", Values: m}
	for c := range m {
		hm.XLabels = append(hm.XLabels, fmt.Sprintf("CPC%d", c))
		hm.YLabels = append(hm.YLabels, fmt.Sprintf("CPC%d", c))
	}
	return []Artifact{hm}, nil
}

func runFig8(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	iters := ctx.iters(4, 1)
	b := microbench.NewBench(ctx.Obs)
	hit, err := b.GPCToMPLatency(dev, 0, iters, ctx.Workers)
	if err != nil {
		return nil, err
	}
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	pen, err := b.GPCToMPMissPenalty(dev, 0, iters, ctx.Workers)
	if err != nil {
		return nil, err
	}
	x := make([]float64, cfg.GPCs)
	for i := range x {
		x[i] = float64(i)
	}
	top := &Series{
		Name:   fmt.Sprintf("Fig 8 top (%s): avg L2 hit latency from each GPC to MP0", cfg.Name),
		XLabel: "GPC", YLabel: "cycles", X: x, Y: hit,
	}
	bottom := &Series{
		Name:   fmt.Sprintf("Fig 8 bottom (%s): avg L2 miss penalty from each GPC for MP0-homed lines", cfg.Name),
		XLabel: "GPC", YLabel: "cycles", X: x, Y: pen,
	}
	return []Artifact{top, bottom}, nil
}
