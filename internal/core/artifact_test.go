package core

import (
	"strings"
	"testing"
)

func TestSeriesRenderAndCSV(t *testing.T) {
	s := &Series{Name: "test", XLabel: "x", YLabel: "y", X: []float64{1, 2}, Y: []float64{3, 4}}
	if s.Title() != "test" {
		t.Error("title")
	}
	out := s.Render()
	if !strings.Contains(out, "test") || !strings.Contains(out, "*") {
		t.Errorf("render missing content:\n%s", out)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,y\n") || !strings.Contains(csv, "1,3") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestSeriesRenderConstant(t *testing.T) {
	s := &Series{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}
	if s.Render() == "" {
		t.Error("flat series should still render")
	}
}

func TestMultiSeries(t *testing.T) {
	m := &MultiSeries{
		Name: "multi", XLabel: "n", YLabel: "v",
		X: []float64{1, 2, 3},
		Lines: []NamedLine{
			{Label: "a", Y: []float64{1, 2, 3}},
			{Label: "b", Y: []float64{4, 5}}, // short line
		},
	}
	out := m.Render()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") || !strings.Contains(out, "-") {
		t.Errorf("render:\n%s", out)
	}
	csv := m.CSV()
	if !strings.HasPrefix(csv, "n,a,b\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "3,3,\n") {
		t.Errorf("short line should leave empty cell:\n%s", csv)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{
		Name:    "tbl",
		Columns: []string{"k", "value"},
		Rows:    [][]string{{"a", "1"}, {"b,c", "2"}},
	}
	out := tb.Render()
	if !strings.Contains(out, "value") || !strings.Contains(out, "b,c") {
		t.Errorf("render:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"b,c",2`) {
		t.Errorf("csv escaping wrong:\n%s", csv)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Name:    "hm",
		XLabels: []string{"a", "b"},
		YLabels: []string{"r1", "r2"},
		Values:  [][]float64{{0, 1}, {0.5, 0.25}},
	}
	out := h.Render()
	if !strings.Contains(out, "r1") || !strings.Contains(out, "@") {
		t.Errorf("render:\n%s", out)
	}
	csv := h.CSV()
	if !strings.HasPrefix(csv, ",a,b\n") || !strings.Contains(csv, "r1,0,1") {
		t.Errorf("csv:\n%s", csv)
	}
	// Fixed scale clamps out-of-range values.
	h.Lo, h.Hi = 0, 0.5
	if h.Render() == "" {
		t.Error("fixed-scale render failed")
	}
	// Degenerate constant heatmap.
	flat := &Heatmap{Name: "flat", Values: [][]float64{{2, 2}}}
	if flat.Render() == "" {
		t.Error("constant heatmap should render")
	}
	empty := &Heatmap{Name: "empty"}
	if empty.Render() == "" {
		t.Error("empty heatmap should render its header")
	}
}

func TestTextArtifact(t *testing.T) {
	x := &Text{Name: "n", Body: "body, with comma"}
	if x.Title() != "n" || !strings.Contains(x.Render(), "body") {
		t.Error("text artifact broken")
	}
	if !strings.HasPrefix(x.CSV(), `"body, with comma"`) {
		t.Errorf("csv escaping: %s", x.CSV())
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"a,b":        `"a,b"`,
		`quote"here`: `"quote""here"`,
		"line\nfeed": "\"line\nfeed\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	register(&Experiment{ID: "table1"})
}
