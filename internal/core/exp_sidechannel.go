package core

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/kernel"
	"gpunoc/internal/rsa"
	"gpunoc/internal/sidechannel"
	"gpunoc/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "fig16",
		Title: "Fig 16: per-slice traffic over time for bfs and gaussian",
		Paper: "Traffic volume varies over time but the hash keeps slices balanced",
		Run:   runFig16,
	})
	register(&Experiment{
		ID:    "fig17",
		Title: "Fig 17: timing vs unique lines per SM; square-kernel placement sweep",
		Paper: "Linear in unique lines with per-SM shifts; square kernel up to 1.7x across partitions",
		Run:   runFig17,
	})
	register(&Experiment{
		ID:    "fig18",
		Title: "Fig 18: AES key recovery under static vs random scheduling",
		Paper: "Static: correct key byte's correlation peaks; random scheduling flattens it",
		Run:   runFig18,
	})
	register(&Experiment{
		ID:    "fig19",
		Title: "Fig 19: RSA ones-count recovery under static vs random scheduling",
		Paper: "Static: clean line, accurate inference; random: noisy, inference fails",
		Run:   runFig19,
	})
}

func runFig16(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	nodes, matSize := 20000, 512
	if ctx.Quick {
		nodes, matSize = 4000, 128
	}
	bfs, err := workload.NewBFS(nodes, 6, 3)
	if err != nil {
		return nil, err
	}
	gauss, err := workload.NewGaussian(matSize, 1)
	if err != nil {
		return nil, err
	}
	var arts []Artifact
	for _, g := range []workload.Generator{bfs, gauss} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		matrix, err := workload.TrafficMatrix(dev, g)
		if err != nil {
			return nil, err
		}
		balance := workload.AnalyzeBalance(matrix, 500)
		t := &Table{
			Name:    fmt.Sprintf("Fig 16 (%s): per-step traffic volume and slice balance", g.Name()),
			Columns: []string{"step", "transactions", "slice CV"},
		}
		step := len(balance) / 16
		if step == 0 {
			step = 1
		}
		for s := 0; s < len(balance); s += step {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(s),
				fmt.Sprintf("%.0f", balance[s].Total),
				fmt.Sprintf("%.3f", balance[s].CV),
			})
		}
		arts = append(arts, t)
	}
	return arts, nil
}

func runFig17(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	repeats := ctx.iters(16, 4)

	// (a) timing vs unique lines, a few SMs.
	ms := &MultiSeries{
		Name:   "Fig 17(a): warp latency vs unique sectors, per SM",
		XLabel: "unique 32B sectors", YLabel: "cycles",
	}
	for n := 1; n <= 32; n++ {
		ms.X = append(ms.X, float64(n))
	}
	for _, sm := range []int{0, cfg.GPCs, 4 * cfg.GPCs} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		curve, err := sidechannel.TimingVsUniqueLines(dev, sm, 32, repeats)
		if err != nil {
			return nil, err
		}
		ms.Lines = append(ms.Lines, NamedLine{Label: fmt.Sprintf("SM%d", sm), Y: curve})
	}
	arts := []Artifact{ms}

	// (b) square-kernel placement sweep (partitioned GPUs only).
	if cfg.Partitions > 1 {
		candidates := []int{}
		for i := 1; i < cfg.SMs() && len(candidates) < 12; i += cfg.GPCs/2 + 1 {
			candidates = append(candidates, i)
		}
		times, err := sidechannel.SquareKernelSweep(dev, 0, candidates)
		if err != nil {
			return nil, err
		}
		s := &Series{
			Name:   "Fig 17(b): square-kernel time vs second-SM placement",
			XLabel: "candidate SM", YLabel: "cycles",
		}
		for i, sm := range candidates {
			s.X = append(s.X, float64(sm))
			s.Y = append(s.Y, times[i])
		}
		arts = append(arts, s)
	}
	return arts, nil
}

func runFig18(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	samples := 15000
	nBytes := 4
	if ctx.Quick {
		samples = 2500
		nBytes = 1
	}
	var arts []Artifact
	for _, mode := range []string{"static", "random"} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		var sched kernel.Scheduler = kernel.StaticScheduler{}
		if mode == "random" {
			rng := rand.New(rand.NewSource(99))
			sched = kernel.RandomScheduler{Rand: rng.Uint64}
		}
		m, err := kernel.NewMachine(dev, sched, kernel.DefaultOptions())
		if err != nil {
			return nil, err
		}
		victim, err := sidechannel.NewAESVictim(m, key)
		if err != nil {
			return nil, err
		}
		obs, err := sidechannel.CollectAESSamples(victim, samples, rand.New(rand.NewSource(5)))
		if err != nil {
			return nil, err
		}
		truth := victim.Key().LastRoundKey()
		t := &Table{
			Name:    fmt.Sprintf("Fig 18 (%s scheduling): AES last-round key recovery", mode),
			Columns: []string{"byte", "truth", "recovered", "corr(best)", "margin", "hit"},
		}
		for j := 0; j < nBytes; j++ {
			r, err := sidechannel.RecoverAESKeyByte(obs, j, 32)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(j),
				fmt.Sprintf("%02x", truth[j]),
				fmt.Sprintf("%02x", r.Best),
				fmt.Sprintf("%.3f", r.Correlations[r.Best]),
				fmt.Sprintf("%.3f", r.Margin),
				fmt.Sprint(r.Best == truth[j]),
			})
		}
		arts = append(arts, t)
	}
	return arts, nil
}

func runFig19(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	if dev.Config().Partitions < 2 {
		return nil, fmt.Errorf("core: fig19 models the partitioned-GPU RSA kernel; run on A100 or H100")
	}
	ones := []int{8, 16, 24, 32, 40, 48, 56}
	repeats := ctx.iters(4, 2)
	rng := rand.New(rand.NewSource(3))
	gpc := dev.Config().GPCs

	mkTimer := func(sched kernel.Scheduler) (*rsa.GPUTimer, error) {
		opts := kernel.DefaultOptions()
		opts.GridSync = true
		m, err := kernel.NewMachine(dev, sched, opts)
		if err != nil {
			return nil, err
		}
		return rsa.NewGPUTimer(m), nil
	}

	t := &Table{
		Name:    "Fig 19: RSA ones-count inference",
		Columns: []string{"scheduling", "fit R", "slope cyc/one", "inference MAE (bits)"},
	}
	// Static: calibrate and test on the same fixed SM pair.
	static, err := mkTimer(kernel.ListScheduler{SMs: []int{0, gpc}})
	if err != nil {
		return nil, err
	}
	calib, err := sidechannel.CollectRSATimings(static, 64, ones, repeats, rng)
	if err != nil {
		return nil, err
	}
	test, err := sidechannel.CollectRSATimings(static, 64, ones, 2, rng)
	if err != nil {
		return nil, err
	}
	fit, mae, err := sidechannel.EvaluateRSAAttack(calib, test)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"static", fmt.Sprintf("%.4f", fit.R), fmt.Sprintf("%.0f", fit.Slope), fmt.Sprintf("%.2f", mae)})

	// Random scheduling: calibration no longer predicts execution.
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	schedRng := rand.New(rand.NewSource(7))
	random, err := mkTimer(kernel.RandomScheduler{Rand: schedRng.Uint64})
	if err != nil {
		return nil, err
	}
	calibR, err := sidechannel.CollectRSATimings(random, 64, ones, repeats, rng)
	if err != nil {
		return nil, err
	}
	testR, err := sidechannel.CollectRSATimings(random, 64, ones, 2, rng)
	if err != nil {
		return nil, err
	}
	fitR, maeR, err := sidechannel.EvaluateRSAAttack(calibR, testR)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"random", fmt.Sprintf("%.4f", fitR.R), fmt.Sprintf("%.0f", fitR.Slope), fmt.Sprintf("%.2f", maeR)})
	return []Artifact{t}, nil
}
