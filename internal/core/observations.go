package core

import (
	"fmt"

	"gpunoc/internal/gpu"
	"gpunoc/internal/microbench"
	"gpunoc/internal/stats"
	"gpunoc/internal/workload"
)

// ObservationResult is one of the paper's numbered observations evaluated
// against the model.
type ObservationResult struct {
	ID     int
	Text   string
	Pass   bool
	Detail string
}

// CheckObservations evaluates the paper's Observations #1-#12 against a
// V100-class device (plus the partitioned generations where an
// observation is specific to them). It is the repository's end-to-end
// consistency check: if the model drifts away from the paper's findings,
// these fail.
func CheckObservations() ([]ObservationResult, error) {
	v100, err := NewContext(gpu.V100(), true)
	if err != nil {
		return nil, err
	}
	a100, err := NewContext(gpu.A100(), true)
	if err != nil {
		return nil, err
	}
	h100, err := NewContext(gpu.H100(), true)
	if err != nil {
		return nil, err
	}

	var out []ObservationResult
	add := func(id int, text string, pass bool, detail string) {
		out = append(out, ObservationResult{ID: id, Text: text, Pass: pass, Detail: detail})
	}

	// #1: non-uniform latency.
	prof, err := microbench.LatencyProfile(v100.Device, 24, 4)
	if err != nil {
		return nil, err
	}
	sum := stats.Summarize(prof)
	add(1, "SM-to-slice latency is non-uniform",
		sum.Max-sum.Min > 30,
		fmt.Sprintf("SM24 spread %.0f..%.0f cycles", sum.Min, sum.Max))

	// #2: per-GPC averages similar, variation differs.
	var gpcMeans, gpcSigmas []float64
	for g := 0; g < 6; g++ {
		var xs []float64
		for _, sm := range v100.Device.SMsOfGPC(g)[:4] {
			p, err := microbench.LatencyProfile(v100.Device, sm, 2)
			if err != nil {
				return nil, err
			}
			xs = append(xs, p...)
		}
		s := stats.Summarize(xs)
		gpcMeans = append(gpcMeans, s.Mean)
		gpcSigmas = append(gpcSigmas, s.StdDev)
	}
	add(2, "GPC averages similar; within-GPC variation differs",
		stats.Max(gpcMeans)-stats.Min(gpcMeans) < 10 && stats.Max(gpcSigmas) > 1.2*stats.Min(gpcSigmas),
		fmt.Sprintf("mean spread %.1f, sigma %.1f..%.1f", stats.Max(gpcMeans)-stats.Min(gpcMeans), stats.Min(gpcSigmas), stats.Max(gpcSigmas)))

	// #3: placement determines latency; slice order universal.
	dev := v100.Device
	slices := dev.SlicesOfMP(0)
	order0 := orderOf(dev, 0, slices)
	order60 := orderOf(dev, 60, slices)
	same := true
	for i := range order0 {
		if order0[i] != order60[i] {
			same = false
		}
	}
	add(3, "Non-uniform latency determined by physical placement", same,
		fmt.Sprintf("MP0 slice order from SM0 %v == from SM60 %v", order0, order60))

	// #4: Pearson correlation reveals placement.
	p0, err := microbench.LatencyProfile(dev, 0, 4)
	if err != nil {
		return nil, err
	}
	p1, err := microbench.LatencyProfile(dev, 1, 4)
	if err != nil {
		return nil, err
	}
	p4, err := microbench.LatencyProfile(dev, 4, 4)
	if err != nil {
		return nil, err
	}
	rNear := stats.MustPearson(p0, p1)
	rFar := stats.MustPearson(p0, p4)
	add(4, "Latency-profile correlation exposes SM placement",
		rNear > 0.9 && rFar < 0.3,
		fmt.Sprintf("r(GPC0,GPC1)=%.2f r(GPC0,GPC4)=%.2f", rNear, rFar))

	// #5: larger GPUs add hierarchy-driven non-uniformity (H100 CPC).
	hm, err := microbench.SMToSMLatencyMatrix(h100.Device, 0, 4)
	if err != nil {
		return nil, err
	}
	add(5, "H100 CPC hierarchy shapes SM-to-SM latency",
		hm[2][2] > hm[0][0]+10,
		fmt.Sprintf("CPC0-CPC0 %.0f vs CPC2-CPC2 %.0f cycles", hm[0][0], hm[2][2]))

	// #6: partition crossing and L2 policy.
	aLat, err := microbench.GPCToMPLatency(a100.Device, 0, 1, 0)
	if err != nil {
		return nil, err
	}
	hLat, err := microbench.GPCToMPLatency(h100.Device, 0, 1, 0)
	if err != nil {
		return nil, err
	}
	add(6, "Partitions add non-uniformity; H100 local caching restores hit uniformity",
		stats.Max(aLat)-stats.Min(aLat) > 100 && stats.Max(hLat)-stats.Min(hLat) < 60,
		fmt.Sprintf("A100 GPC spread %.0f, H100 %.0f cycles", stats.Max(aLat)-stats.Min(aLat), stats.Max(hLat)-stats.Min(hLat)))

	// #7: aggregate L2 fabric exceeds memory bandwidth.
	fabric, err := microbench.AggregateFabricBandwidth(v100.Engine)
	if err != nil {
		return nil, err
	}
	mem, err := microbench.MemoryBandwidth(v100.Engine)
	if err != nil {
		return nil, err
	}
	add(7, "L2 fabric bandwidth exceeds off-chip bandwidth",
		fabric > 2*mem,
		fmt.Sprintf("fabric %.0f vs memory %.0f GB/s", fabric, mem))

	// #8: bandwidth to slices is uniform despite non-uniform latency.
	var bws []float64
	for sm := 0; sm < 84; sm += 12 {
		for s := 0; s < 32; s += 8 {
			bw, err := microbench.SliceBandwidth(v100.Engine, []int{sm}, s)
			if err != nil {
				return nil, err
			}
			bws = append(bws, bw)
		}
	}
	bsum := stats.Summarize(bws)
	add(8, "Per-slice bandwidth is (mostly) uniform",
		bsum.StdDev/bsum.Mean < 0.1,
		fmt.Sprintf("1SM->slice %.1f GB/s CV %.1f%%", bsum.Mean, 100*bsum.StdDev/bsum.Mean))

	// #9: input speedup exists at every level.
	tpcSpeed, err := microbench.Speedup(v100.Engine, v100.Device.SMsOfTPC(0, 0), false)
	if err != nil {
		return nil, err
	}
	add(9, "Hierarchical input speedup is provisioned",
		tpcSpeed > 1.8,
		fmt.Sprintf("TPC read speedup %.2f", tpcSpeed))

	// #10: newer GPUs have more bandwidth but non-uniform across partitions.
	near, err := microbench.SliceBandwidth(a100.Engine, []int{0}, 0)
	if err != nil {
		return nil, err
	}
	far, err := microbench.SliceBandwidth(a100.Engine, []int{0}, 9)
	if err != nil {
		return nil, err
	}
	add(10, "Partitioned GPUs: more bandwidth, but near/far asymmetry",
		far < 0.8*near,
		fmt.Sprintf("near %.1f vs far %.1f GB/s", near, far))

	// #11: SM load balancing matters more than slice load balancing.
	allSMs := make([]int, 84)
	for i := range allSMs {
		allSMs[i] = i
	}
	contigSM := append(append([]int{}, v100.Device.SMsOfGPC(0)...), v100.Device.SMsOfGPC(1)...)
	mp0 := v100.Device.SlicesOfMP(0)
	cb, err := microbench.SetBandwidth(v100.Engine, contigSM, mp0, false)
	if err != nil {
		return nil, err
	}
	db, err := microbench.SetBandwidth(v100.Engine, allSMs[:28], mp0, false)
	if err != nil {
		return nil, err
	}
	add(11, "SM placement dominates slice placement",
		cb < 0.7*db,
		fmt.Sprintf("28 SMs to MP0: contiguous %.0f vs distributed %.0f GB/s", cb, db))

	// #12: hashed addresses keep NoC traffic balanced.
	gauss, err := workload.NewGaussian(256, 1)
	if err != nil {
		return nil, err
	}
	matrix, err := workload.TrafficMatrix(v100.Device, gauss)
	if err != nil {
		return nil, err
	}
	balance := workload.AnalyzeBalance(matrix, 1000)
	worst := 0.0
	for _, b := range balance {
		if b.Total >= 1000 && b.CV > worst {
			worst = b.CV
		}
	}
	add(12, "Hashing load-balances NoC traffic",
		worst < 0.35,
		fmt.Sprintf("worst substantial-step slice CV %.2f", worst))

	return out, nil
}

func orderOf(dev *gpu.Device, sm int, slices []int) []int {
	lat := make([]float64, len(slices))
	for i, s := range slices {
		lat[i] = float64(dev.L2HitLatencyMean(sm, s))
	}
	return stats.Argsort(lat)
}
