package core

import (
	"context"
	"fmt"
	"sort"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
)

// Context carries the resources an experiment needs.
type Context struct {
	// Device is the GPU under test.
	Device *gpu.Device
	// Engine solves bandwidth for the device.
	Engine *bandwidth.Engine
	// Quick trades statistical depth for speed (used by `go test -bench`
	// wrappers); experiments reduce sample counts under it.
	Quick bool
	// Workers bounds the worker pool of the experiment's internal sweeps
	// (parallel.Map shards); <= 0 selects the GOMAXPROCS-derived
	// default. Results are index-addressed, so any value yields
	// byte-identical artifacts.
	Workers int
	// Cancel, when non-nil, lets the caller abort the run early: a
	// timed-out HTTP request, a draining server, an interrupted sweep.
	// Experiments consult it only between sweep rows — via Interrupted
	// and the parallel runner's claim-boundary checks — never inside
	// simulator Step loops, so the hot paths stay context-free and a
	// never-cancelled run produces byte-identical artifacts to a nil
	// Cancel. A partially complete run returns the wrapped context
	// error and no artifacts.
	Cancel context.Context
	// Obs receives the experiment's instruments. Callers that enable
	// collection (nocchar -metrics/-trace, ReportOptions.Obs) hand each
	// experiment run its own scope; the nil default runs unobserved at
	// zero cost and leaves all stdout byte-identical.
	Obs *obs.Registry
}

// Interrupted reports whether the run's Cancel context has fired,
// wrapping its error for the experiment to return as-is. It is the
// sweep-row cancellation checkpoint: experiments call it between rows
// and between major phases, and a nil Cancel answers at zero cost, so
// sprinkling checkpoints is free for every non-serving caller.
func (c *Context) Interrupted() error {
	if c.Cancel == nil {
		return nil
	}
	if err := c.Cancel.Err(); err != nil {
		return fmt.Errorf("core: run canceled: %w", err)
	}
	return nil
}

// NewContext builds a context for a generation config.
func NewContext(cfg gpu.Config, quick bool) (*Context, error) {
	dev, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := bandwidth.NewEngine(dev)
	if err != nil {
		return nil, err
	}
	return &Context{Device: dev, Engine: eng, Quick: quick}, nil
}

// iters returns full when not in quick mode, otherwise quick.
func (c *Context) iters(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment reproduces one table or figure of the paper.
type Experiment struct {
	// ID is the registry key, e.g. "fig1", "table1".
	ID string
	// Title is the figure caption.
	Title string
	// Paper summarizes what the paper reports, for EXPERIMENTS.md-style
	// comparisons.
	Paper string
	// GPUs lists applicable generations; empty means generation-neutral.
	GPUs []gpu.Generation
	// Run executes the experiment.
	Run func(ctx *Context) ([]Artifact, error)
}

// SupportsGPU reports whether the experiment applies to a generation.
func (e *Experiment) SupportsGPU(g gpu.Generation) bool {
	if len(e.GPUs) == 0 {
		return true
	}
	for _, x := range e.GPUs {
		if x == g {
			return true
		}
	}
	return false
}

// registry holds all experiments by ID.
var registry = map[string]*Experiment{}

// register adds an experiment; duplicate IDs are programming errors.
func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %q", e.ID))
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q (use All to list)", id)
	}
	return e, nil
}

// All returns every experiment ordered by ID with tables first, then
// figures in numeric order.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts "table1" before "fig1" and figures numerically.
func orderKey(id string) string {
	var kind string
	var n int
	if _, err := fmt.Sscanf(id, "table%d", &n); err == nil {
		kind = "a"
	} else if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		kind = "b"
	} else {
		return "z" + id
	}
	return fmt.Sprintf("%s%04d", kind, n)
}
