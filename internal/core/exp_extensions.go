package core

import (
	"fmt"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/bottleneck"
	"gpunoc/internal/microbench"
	"gpunoc/internal/noc"
	"gpunoc/internal/sidechannel"
	"gpunoc/internal/workload"
)

// Extension experiments go beyond the paper's figures into its discussion
// sections: the hierarchical-crossbar alternative of Sec. VI-C, the
// covert channel sketched in Sec. V-A, and the series-bottleneck design
// rule of Sec. VI-B.

func init() {
	register(&Experiment{
		ID:    "ext1",
		Title: "Extension: hierarchical crossbar vs 2-D mesh bandwidth fairness",
		Paper: "Sec VI-C: hierarchical crossbars 'do not necessarily have the same limitations' as meshes",
		Run:   runExt1,
	})
	register(&Experiment{
		ID:    "ext2",
		Title: "Extension: L2-slice contention covert channel and access-pattern attack",
		Paper: "Sec V-A: slice placement 'can potentially be exploited' as an output-side covert channel; closing discussion of [51]",
		Run:   runExt2,
	})
	register(&Experiment{
		ID:    "ext3",
		Title: "Extension: series-bottleneck audit of the bandwidth hierarchy",
		Paper: "Sec VI-B: max throughput of K subsystems in series is the minimum subsystem throughput",
		Run:   runExt3,
	})
	register(&Experiment{
		ID:    "ext5",
		Title: "Extension: memory camping vs address hashing on the flit-level NoC",
		Paper: "Sec IV-C: without hashing, 'one memory channel being over-utilized' degrades throughput (memory camping [41])",
		Run:   runExt5,
	})
	register(&Experiment{
		ID:    "ext4",
		Title: "Extension: working-set latency sweep across the L2 capacity",
		Paper: "Methodology: 'the working set fits within the L2' and warm-up guarantees hits - here the regime boundary is measured",
		Run:   runExt4,
	})
}

func runExt1(ctx *Context) ([]Artifact, error) {
	cycles, warmup := 20000, 2000
	if ctx.Quick {
		cycles, warmup = 5000, 1000
	}
	t := &Table{
		Name:    "Extension 1: max/min per-core throughput at identical offered load",
		Columns: []string{"topology", "arbitration", "max/min ratio"},
	}
	for _, arb := range []noc.Arbiter{noc.RoundRobin, noc.AgeBased} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		mcfg := noc.DefaultFairnessConfig(arb, 42)
		mcfg.Cycles, mcfg.Warmup = cycles, warmup
		mcfg.Obs = ctx.Obs.Scope("mesh-" + arb.String())
		mesh, err := noc.RunFairness(mcfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"6x6 mesh", arb.String(), fmt.Sprintf("%.2f", mesh.MaxMinRatio)})

		xcfg := noc.DefaultXbarFairnessConfig(arb, 42)
		xcfg.Cycles, xcfg.Warmup = cycles, warmup
		xcfg.Obs = ctx.Obs.Scope("xbar-" + arb.String())
		xbar, err := noc.RunXbarFairness(xcfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"hier. crossbar", arb.String(), fmt.Sprintf("%.2f", xbar.MaxMinRatio)})
	}
	return []Artifact{t}, nil
}

func runExt2(ctx *Context) ([]Artifact, error) {
	cfg := ctx.Device.Config()
	gpcs := cfg.GPCs
	trojan := []int{0, gpcs, 2 * gpcs, 3 * gpcs}
	spy := []int{1, gpcs + 1, 2*gpcs + 1, 3*gpcs + 1}
	ch, err := sidechannel.NewCovertChannel(ctx.Engine, 3, trojan, spy)
	if err != nil {
		return nil, err
	}
	margin, err := ch.Calibrate()
	if err != nil {
		return nil, err
	}
	bits := 64
	if ctx.Quick {
		bits = 16
	}
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	ber, err := ch.BitErrorRate(bits, 0xfeed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    fmt.Sprintf("Extension 2 (%s): covert channel over L2 slice 3", cfg.Name),
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"signal margin (GB/s)", fmt.Sprintf("%.1f", margin)},
			{"bits transmitted", fmt.Sprint(bits)},
			{"bit error rate", fmt.Sprintf("%.3f", ber)},
		},
	}

	// Access-pattern attack: locate the victim's secret slice.
	secret := cfg.L2Slices / 2
	var victim []bandwidth.Flow
	for _, sm := range trojan {
		victim = append(victim, bandwidth.Flow{SM: sm, Slices: []int{secret}})
	}
	located, err := sidechannel.LocateVictimSlice(ctx.Engine, victim, spy)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"victim's secret slice", fmt.Sprint(secret)},
		[]string{"attacker located slice", fmt.Sprint(located)},
	)
	return []Artifact{t}, nil
}

func runExt3(ctx *Context) ([]Artifact, error) {
	cfg := ctx.Device.Config()
	prof := ctx.Engine.Profile()
	stages, err := bottleneck.Hierarchy(cfg, prof)
	if err != nil {
		return nil, err
	}
	max, _, err := bottleneck.SeriesThroughput(stages)
	if err != nil {
		return nil, err
	}
	reports, err := bottleneck.Analyze(stages, max)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    fmt.Sprintf("Extension 3 (%s): bandwidth hierarchy at saturation", cfg.Name),
		Columns: []string{"stage", "capacity GB/s", "utilization", "bottleneck"},
	}
	for _, r := range reports {
		t.Rows = append(t.Rows, []string{
			r.Stage.Name,
			fmt.Sprintf("%.0f", r.Stage.CapacityGBs),
			fmt.Sprintf("%.0f%%", 100*r.Utilization),
			fmt.Sprint(r.Binding),
		})
	}
	ok, binding, err := bottleneck.MemoryBound(stages)
	if err != nil {
		return nil, err
	}
	verdict := fmt.Sprintf("memory bound: %v (bottleneck: %s) - Implication #5 %s",
		ok, binding.Name, map[bool]string{true: "satisfied", false: "VIOLATED"}[ok])
	return []Artifact{t, &Text{Name: "Extension 3 verdict", Body: verdict}}, nil
}

func runExt4(ctx *Context) ([]Artifact, error) {
	cfg := ctx.Device.Config()
	l2 := cfg.L2SizeMiB << 20
	sizes := []int{l2 / 8, l2 / 4, l2 / 2, 3 * l2 / 4, l2, 3 * l2 / 2, 2 * l2}
	if ctx.Quick {
		sizes = []int{l2 / 8, l2 / 2, 2 * l2}
	}
	pts, err := microbench.WorkingSetSweep(ctx.Device, 0, sizes)
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:   fmt.Sprintf("Extension 4 (%s): pointer-chase latency vs working set (L2 = %d MiB)", cfg.Name, cfg.L2SizeMiB),
		XLabel: "working set (MiB)", YLabel: "cycles",
	}
	t := &Table{
		Name:    "Extension 4: sweep detail",
		Columns: []string{"size (MiB)", "mean cycles", "L2 hit rate"},
	}
	for _, p := range pts {
		mib := float64(p.SizeBytes) / (1 << 20)
		s.X = append(s.X, mib)
		s.Y = append(s.Y, p.MeanCycles)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", mib),
			fmt.Sprintf("%.1f", p.MeanCycles),
			fmt.Sprintf("%.2f", p.L2HitRate),
		})
	}
	return []Artifact{s, t}, nil
}

func runExt5(ctx *Context) ([]Artifact, error) {
	// Replay a BFS trace's transactions through the flit-level mesh under
	// the GPU's hashed address mapping and under a camped (contiguously
	// interleaved) mapping - Sec. IV-C's justification for the hash.
	nodes := 20000
	if ctx.Quick {
		nodes = 6000
	}
	bfs, err := workload.NewBFS(nodes, 6, 3)
	if err != nil {
		return nil, err
	}
	var steps [][]uint64
	for s := 0; s < bfs.Steps(); s++ {
		if addrs := bfs.Step(s); len(addrs) >= 200 && len(addrs) <= 4000 {
			steps = append(steps, addrs)
		}
	}
	if len(steps) > 4 {
		steps = steps[:4]
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("core: BFS trace produced no replayable steps")
	}
	mesh := noc.MeshConfig{Width: 6, Height: 6, BufferFlits: 8, Arbiter: noc.RoundRobin}
	hashed, err := noc.ReplayTrace(noc.ReplayConfig{Mesh: mesh, PortOf: noc.HashedPortMapping(6)}, steps)
	if err != nil {
		return nil, err
	}
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	camped, err := noc.ReplayTrace(noc.ReplayConfig{Mesh: mesh, PortOf: noc.CampedPortMapping(6, 1<<22)}, steps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "Extension 5: bfs trace replayed through the mesh",
		Columns: []string{"step", "transactions", "hashed makespan", "hashed port CV", "camped makespan", "camped port CV"},
	}
	for s := range steps {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(s),
			fmt.Sprint(hashed[s].Transactions),
			fmt.Sprint(hashed[s].Makespan),
			fmt.Sprintf("%.2f", hashed[s].PortCV),
			fmt.Sprint(camped[s].Makespan),
			fmt.Sprintf("%.2f", camped[s].PortCV),
		})
	}
	return []Artifact{t}, nil
}
