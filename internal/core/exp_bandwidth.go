package core

import (
	"fmt"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/microbench"
	"gpunoc/internal/parallel"
	"gpunoc/internal/stats"
)

func init() {
	register(&Experiment{
		ID:    "fig9",
		Title: "Fig 9: Aggregate fabric vs memory BW; per-slice BW distributions",
		Paper: "L2 fabric 2.4-3.5x memory BW; 1 SM->slice ~34 GB/s (V100); GPC->slice ~85 GB/s; >=4 SMs saturate a slice",
		Run:   runFig9,
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "Fig 10: Interconnect input speedups (TPC, GPCl, GPCg, CPC; R/W)",
		Paper: "TPC reads 2x everywhere; V100 TPC writes 1.09x; H100 GPCl ~8 of 9; CPC writes ~4.6x",
		Run:   runFig10,
	})
	register(&Experiment{
		ID:    "fig11",
		Title: "Fig 11: Bandwidth-hierarchy block diagram (link capacities)",
		Paper: "Speedup stages between SM, TPC, GPC, NoC, MP, L2",
		Run:   runFig11,
	})
	register(&Experiment{
		ID:    "fig12",
		Title: "Fig 12: Per-slice bandwidth from SMs on each partition (A100)",
		Paper: "Near ~39.5 GB/s, far ~26 GB/s, swapped across partitions",
		GPUs:  []gpu.Generation{gpu.GenA100},
		Run:   runFig12,
	})
	register(&Experiment{
		ID:    "fig13",
		Title: "Fig 13: Slice-bandwidth distribution over SMs",
		Paper: "A100 bimodal, H100 unimodal (partition-local caching)",
		GPUs:  []gpu.Generation{gpu.GenA100, gpu.GenH100},
		Run:   runFig13,
	})
	register(&Experiment{
		ID:    "fig14",
		Title: "Fig 14: Slice bandwidth vs number of SMs (near vs far)",
		Paper: "A100 saturates at ~8 SMs; far up to ~28% lower at 1-2 SMs (Little's law)",
		GPUs:  []gpu.Generation{gpu.GenA100},
		Run:   runFig14,
	})
	register(&Experiment{
		ID:    "fig15",
		Title: "Fig 15: Contiguous vs distributed MP and SM placements (V100)",
		Paper: "MP placement: minimal difference. SM placement: -62% contiguous; +218% widening 1->4 MPs",
		GPUs:  []gpu.Generation{gpu.GenV100},
		Run:   runFig15,
	})
}

func runFig9(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	fabric, err := microbench.AggregateFabricBandwidth(ctx.Engine)
	if err != nil {
		return nil, err
	}
	mem, err := microbench.MemoryBandwidth(ctx.Engine)
	if err != nil {
		return nil, err
	}
	ta := &Table{
		Name:    fmt.Sprintf("Fig 9(a) (%s): aggregate bandwidth", cfg.Name),
		Columns: []string{"metric", "GB/s", "vs peak mem"},
		Rows: [][]string{
			{"L2 fabric (all hits)", fmt.Sprintf("%.0f", fabric), fmt.Sprintf("%.2fx", fabric/float64(cfg.MemBWGBs))},
			{"memory (all misses)", fmt.Sprintf("%.0f", mem), fmt.Sprintf("%.0f%%", 100*mem/float64(cfg.MemBWGBs))},
		},
	}

	// (b) single SM -> single slice distribution. The (SM, slice) pair
	// list is fixed up front and sharded across the pool; slot order
	// keeps the histogram identical to the sequential sweep.
	step := 6
	if ctx.Quick {
		step = 12
	}
	type pair struct{ sm, s int }
	var pairs []pair
	for sm := 0; sm < cfg.SMs(); sm += step {
		for s := 0; s < cfg.L2Slices; s += 4 {
			pairs = append(pairs, pair{sm: sm, s: s})
		}
	}
	single, err := parallel.MapContext(ctx.Cancel, ctx.Workers, len(pairs), func(i int) (float64, error) {
		return microbench.SliceBandwidth(ctx.Engine, []int{pairs[i].sm}, pairs[i].s)
	})
	if err != nil {
		return nil, err
	}
	sumB := stats.Summarize(single)
	hb := &Text{
		Name: fmt.Sprintf("Fig 9(b): 1 SM -> 1 slice bandwidth (mu=%.1f GB/s sigma=%.2f)", sumB.Mean, sumB.StdDev),
		Body: stats.HistogramOf(single, 16).Render(40),
	}

	// (c) whole GPC -> single slice, one worker per GPC.
	gpcBW, err := parallel.MapContext(ctx.Cancel, ctx.Workers, cfg.GPCs, func(g int) (float64, error) {
		return microbench.SliceBandwidth(ctx.Engine, dev.SMsOfGPC(g), 5)
	})
	if err != nil {
		return nil, err
	}
	sumC := stats.Summarize(gpcBW)
	hc := &Text{
		Name: fmt.Sprintf("Fig 9(c): GPC -> 1 slice bandwidth (mu=%.1f GB/s sigma=%.2f)", sumC.Mean, sumC.StdDev),
		Body: stats.HistogramOf(gpcBW, 8).Render(40),
	}
	return []Artifact{ta, hb, hc}, nil
}

func runFig10(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	t := &Table{
		Name:    fmt.Sprintf("Fig 10 (%s): input speedups", cfg.Name),
		Columns: []string{"stage", "SMs", "read speedup", "write speedup", "full"},
	}
	add := func(stage string, sms []int) error {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		r, err := microbench.Speedup(ctx.Engine, sms, false)
		if err != nil {
			return err
		}
		w, err := microbench.Speedup(ctx.Engine, sms, true)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			stage, fmt.Sprint(len(sms)),
			fmt.Sprintf("%.2f", r), fmt.Sprintf("%.2f", w),
			fmt.Sprint(len(sms)),
		})
		return nil
	}
	if err := add("TPC", dev.SMsOfTPC(0, 0)); err != nil {
		return nil, err
	}
	if cfg.CPCsPerGPC > 0 {
		if err := add("CPC", dev.SMsOfCPC(0, 0)); err != nil {
			return nil, err
		}
	}
	var local []int
	for tpc := 0; tpc < cfg.TPCsPerGPC; tpc++ {
		local = append(local, dev.SMsOfTPC(0, tpc)[0])
	}
	if err := add("GPC_l (1 SM/TPC)", local); err != nil {
		return nil, err
	}
	if err := add("GPC_g (all SMs)", dev.SMsOfGPC(0)); err != nil {
		return nil, err
	}
	return []Artifact{t}, nil
}

func runFig11(ctx *Context) ([]Artifact, error) {
	p := ctx.Engine.Profile()
	cfg := ctx.Device.Config()
	body := fmt.Sprintf(`            %s bandwidth hierarchy (GB/s per link)

  SM  --%.0f(r)/%.0f(w)-->  TPC  --%.0f(r)/%.0f(w)-->  [CPC %.0f(r)/%.0f(w)]
      --slot bus %.0f(r)/%.0f(w)-->  GPC trunk %.0f
      --per-MP spatial port %.0f-->  [partition link %.0f]
      --MP input port %.0f-->  L2 slice %.0f  --mem channel %.0f--> DRAM

  MLP: %d lines/SM (%d per slice target)`,
		cfg.Name,
		p.SMReadGBs, p.SMWriteGBs, p.TPCReadGBs, p.TPCWriteGBs, p.CPCReadGBs, p.CPCWriteGBs,
		p.SlotBusGBs, p.SlotBusWriteGBs, p.GPCTrunkGBs,
		p.GPCMPPortGBs, p.PartitionLinkGBs,
		p.MPPortGBs, p.SliceGBs, p.MemChannelGBs,
		p.MLPLines, p.MLPPerSliceLines)
	return []Artifact{&Text{Name: "Fig 11: interconnect speedup stages", Body: body}}, nil
}

func runFig12(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	// Two SMs on opposite partitions, per-slice bandwidth across all
	// slices. SM0 is in GPC0 (partition 0), SM4 in GPC4 (partition 1).
	ms := &MultiSeries{
		Name:   "Fig 12: per-slice bandwidth from SMs on opposite partitions",
		XLabel: "L2 slice", YLabel: "GB/s",
	}
	step := 1
	if ctx.Quick {
		step = 8
	}
	var slices []int
	for s := 0; s < cfg.L2Slices; s += step {
		ms.X = append(ms.X, float64(s))
		slices = append(slices, s)
	}
	for _, sm := range []int{0, cfg.GPCs / 2} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		y, err := microbench.PerSliceBandwidth(ctx.Engine, sm, slices, ctx.Workers)
		if err != nil {
			return nil, err
		}
		ms.Lines = append(ms.Lines, NamedLine{
			Label: fmt.Sprintf("SM%d(part%d)", sm, dev.PartitionOfSM(sm)), Y: y,
		})
	}
	return []Artifact{ms}, nil
}

func runFig13(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	step := 2
	if ctx.Quick {
		step = 8
	}
	var sms []int
	for sm := 0; sm < cfg.SMs(); sm += step {
		sms = append(sms, sm)
	}
	xs, err := microbench.PerSMSliceBandwidth(ctx.Engine, sms, 0, ctx.Workers)
	if err != nil {
		return nil, err
	}
	h := stats.HistogramOf(xs, 20)
	peaks := h.Peaks(0.3)
	_ = dev
	return []Artifact{&Text{
		Name: fmt.Sprintf("Fig 13 (%s): slice-0 bandwidth over SMs (%d peak(s))", cfg.Name, len(peaks)),
		Body: h.Render(40),
	}}, nil
}

func runFig14(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	sms := dev.SMsOfGPC(0)
	maxN := 14
	if ctx.Quick {
		maxN = 10
	}
	ms := &MultiSeries{
		Name:   "Fig 14: slice bandwidth vs SM count, near vs far partition",
		XLabel: "SMs", YLabel: "GB/s",
	}
	nearSlice, farSlice := 0, dev.Config().MPs-1 // MP0 vs the last MP (other partition)
	for n := 1; n <= maxN; n++ {
		ms.X = append(ms.X, float64(n))
	}
	// One worker per SM-count point; each point solves its near and far
	// flows together so the pair stays adjacent in the cache.
	type point struct{ near, far float64 }
	pts, err := parallel.MapContext(ctx.Cancel, ctx.Workers, maxN, func(i int) (point, error) {
		n := i + 1
		bwN, err := microbench.SliceBandwidth(ctx.Engine, sms[:n], nearSlice)
		if err != nil {
			return point{}, err
		}
		bwF, err := microbench.SliceBandwidth(ctx.Engine, sms[:n], farSlice)
		if err != nil {
			return point{}, err
		}
		return point{near: bwN, far: bwF}, nil
	})
	if err != nil {
		return nil, err
	}
	near := make([]float64, maxN)
	far := make([]float64, maxN)
	for i, p := range pts {
		near[i] = p.near
		far[i] = p.far
	}
	ms.Lines = []NamedLine{{Label: "near", Y: near}, {Label: "far", Y: far}}
	return []Artifact{ms}, nil
}

func runFig15(ctx *Context) ([]Artifact, error) {
	dev := ctx.Device
	cfg := dev.Config()
	eng := ctx.Engine

	run := func(sms []int, slices []int) (float64, error) {
		flows := make([]bandwidth.Flow, len(sms))
		for i, sm := range sms {
			flows[i] = bandwidth.Flow{SM: sm, Slices: slices}
		}
		r, err := eng.Solve(flows)
		if err != nil {
			return 0, err
		}
		return float64(r.TotalGBs), nil
	}
	allSMs := make([]int, cfg.SMs())
	for i := range allSMs {
		allSMs[i] = i
	}
	mpSlices := func(n int) []int {
		var s []int
		for mp := 0; mp < n; mp++ {
			s = append(s, dev.SlicesOfMP(mp)...)
		}
		return s
	}

	// (a) all SMs to N slices, contiguous (one MP) vs distributed.
	ta := &Table{Name: "Fig 15(a): all SMs, slice placement", Columns: []string{"slices", "contiguous MP GB/s", "distributed MP GB/s"}}
	for _, n := range []int{1, 2, 4} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		contig := dev.SlicesOfMP(0)[:n]
		distrib := make([]int, n)
		for i := range distrib {
			distrib[i] = i // slice i lives in MP i
		}
		c, err := run(allSMs, contig)
		if err != nil {
			return nil, err
		}
		d, err := run(allSMs, distrib)
		if err != nil {
			return nil, err
		}
		ta.Rows = append(ta.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.0f", c), fmt.Sprintf("%.0f", d)})
	}

	// (b) N SMs to one MP: contiguous GPCs vs distributed SMs.
	tb := &Table{Name: "Fig 15(b): SM placement, one MP", Columns: []string{"SMs", "contiguous GB/s", "distributed GB/s"}}
	oneMP := dev.SlicesOfMP(0)
	for _, n := range []int{14, 28} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		contig := append(append([]int{}, dev.SMsOfGPC(0)...), dev.SMsOfGPC(1)...)[:n]
		distrib := allSMs[:n]
		c, err := run(contig, oneMP)
		if err != nil {
			return nil, err
		}
		d, err := run(distrib, oneMP)
		if err != nil {
			return nil, err
		}
		tb.Rows = append(tb.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.0f", c), fmt.Sprintf("%.0f", d)})
	}

	// (c) 14 SMs to 1..4 MPs.
	tc := &Table{Name: "Fig 15(c): 14 SMs, widening MP set", Columns: []string{"MPs", "contiguous SM GB/s", "distributed SM GB/s"}}
	for _, n := range []int{1, 2, 4} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		c, err := run(dev.SMsOfGPC(0), mpSlices(n))
		if err != nil {
			return nil, err
		}
		d, err := run(allSMs[:14], mpSlices(n))
		if err != nil {
			return nil, err
		}
		tc.Rows = append(tc.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.0f", c), fmt.Sprintf("%.0f", d)})
	}
	return []Artifact{ta, tb, tc}, nil
}
