package core

import (
	"fmt"
	"strings"

	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
)

// Result is the structured outcome of one experiment run on one GPU
// generation: the artifacts themselves plus renderers that produce the
// exact bytes cmd/nocchar prints for each output mode. Every consumer —
// the CLI, the nocserve result cache, the report writer — renders from
// the same Result, so a cached response is byte-identical to a freshly
// printed one by construction rather than by convention.
type Result struct {
	// GPU is the generation the experiment ran on.
	GPU gpu.Generation
	// Exp identifies the experiment (registry entry; immutable).
	Exp *Experiment
	// Artifacts are the experiment's outputs in emission order.
	Artifacts []Artifact
	// Obs is the metrics scope the run observed into; nil when
	// collection was disabled. SummaryRows condenses it.
	Obs *obs.Registry
}

// RunResult executes e under ctx and wraps the artifacts in a Result.
// It refuses generations the experiment does not support, so callers
// holding untrusted (gpu, exp) tuples — the HTTP serving layer — get a
// typed refusal instead of an experiment-specific panic or nonsense run.
func RunResult(ctx *Context, e *Experiment) (*Result, error) {
	name := ctx.Device.Config().Name
	if !e.SupportsGPU(name) {
		return nil, fmt.Errorf("core: experiment %s does not apply to %s (supported: %v)", e.ID, name, e.GPUs)
	}
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	arts, err := e.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{GPU: name, Exp: e, Artifacts: arts, Obs: ctx.Obs}, nil
}

// JSONBytes renders the artifacts as the MarshalArtifacts document plus
// a trailing newline: exactly the bytes `nocchar -json` writes to stdout
// for one experiment.
func (r *Result) JSONBytes() ([]byte, error) {
	data, err := MarshalArtifacts(r.Artifacts)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// CSVBytes renders every artifact as "# <title>\n<csv>\n": exactly the
// bytes `nocchar -csv` writes to stdout for one experiment.
func (r *Result) CSVBytes() []byte {
	var b strings.Builder
	for _, a := range r.Artifacts {
		fmt.Fprintf(&b, "# %s\n%s\n", a.Title(), a.CSV())
	}
	return []byte(b.String())
}

// TextBytes renders every artifact as its text rendering plus a newline:
// exactly the bytes nocchar's default mode writes to stdout for one
// experiment.
func (r *Result) TextBytes() []byte {
	var b strings.Builder
	for _, a := range r.Artifacts {
		b.WriteString(a.Render())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// MarkdownBytes renders the run as a self-contained Markdown report
// fragment in the shape WriteReportOptions gives one experiment section,
// scoped to this result's single generation.
func (r *Result) MarkdownBytes() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s [%s]\n\n", r.Exp.ID, r.Exp.Title, r.GPU)
	fmt.Fprintf(&b, "*Paper:* %s\n\n", r.Exp.Paper)
	for _, a := range r.Artifacts {
		fmt.Fprintf(&b, "```\n%s```\n\n", ensureTrailingNewline(a.Render()))
	}
	return []byte(b.String())
}

// SummaryRows condenses the run's metrics scope; nil when the run was
// unobserved.
func (r *Result) SummaryRows() []obs.SummaryRow {
	return r.Obs.SummaryRows()
}
