package core

import (
	"fmt"
	"math/rand"

	"gpunoc/internal/bottleneck"
	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/noc"
	"gpunoc/internal/rsa"
	"gpunoc/internal/sidechannel"
	"gpunoc/internal/stats"
)

// ImplicationResult is one of the paper's numbered implications evaluated
// against the model.
type ImplicationResult struct {
	ID     int
	Text   string
	Pass   bool
	Detail string
}

// CheckImplications evaluates the paper's Implications #1-#6. Like
// CheckObservations it is an end-to-end consistency check, but for the
// paper's *consequences* rather than its raw measurements.
func CheckImplications() ([]ImplicationResult, error) {
	var out []ImplicationResult
	add := func(id int, text string, pass bool, detail string) {
		out = append(out, ImplicationResult{ID: id, Text: text, Pass: pass, Detail: detail})
	}

	v100, err := NewContext(gpu.V100(), true)
	if err != nil {
		return nil, err
	}
	a100, err := NewContext(gpu.A100(), true)
	if err != nil {
		return nil, err
	}

	// #1: NoC characterization reveals core/slice placement.
	clusters, err := sidechannel.ClusterSMsByLatency(v100.Device, []int{0, 6, 2, 8, 4, 10}, 8, 0.9)
	if err != nil {
		return nil, err
	}
	add(1, "NoC characterization leaks placement for co-location",
		len(clusters) == 3,
		fmt.Sprintf("6 probed SMs -> %d placement groups (want the 3 column pairs)", len(clusters)))

	// #2: non-uniform latency shifts side-channel timing across cores:
	// an attacker calibrated on one SM mis-reads a kernel running on an
	// SM placed elsewhere in the GPC (a different TPC position).
	nearSM := v100.Device.SMsOfGPC(0)[0]
	farSM := v100.Device.SMsOfGPC(0)[13]
	c0, err := sidechannel.TimingVsUniqueLines(v100.Device, nearSM, 16, 8)
	if err != nil {
		return nil, err
	}
	c1, err := sidechannel.TimingVsUniqueLines(v100.Device, farSM, 16, 8)
	if err != nil {
		return nil, err
	}
	shift := stats.Mean(c1) - stats.Mean(c0)
	if shift < 0 {
		shift = -shift
	}
	add(2, "Core placement shifts timing-channel calibration",
		shift > 2,
		fmt.Sprintf("mean warp-timing shift between SM%d and SM%d: %.1f cycles", nearSM, farSM, shift))

	// #3: random thread-block scheduling degrades the RSA channel.
	opts := kernel.DefaultOptions()
	opts.GridSync = true
	staticM, err := kernel.NewMachine(a100.Device, kernel.ListScheduler{SMs: []int{0, 8}}, opts)
	if err != nil {
		return nil, err
	}
	schedRng := rand.New(rand.NewSource(7))
	randomM, err := kernel.NewMachine(a100.Device, kernel.RandomScheduler{Rand: schedRng.Uint64}, opts)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(3))
	mae := func(m *kernel.Machine) (float64, error) {
		timer := rsa.NewGPUTimer(m)
		ones := []int{8, 24, 40, 56}
		calib, err := sidechannel.CollectRSATimings(timer, 64, ones, 3, rng)
		if err != nil {
			return 0, err
		}
		test, err := sidechannel.CollectRSATimings(timer, 64, ones, 2, rng)
		if err != nil {
			return 0, err
		}
		_, e, err := sidechannel.EvaluateRSAAttack(calib, test)
		return e, err
	}
	sMAE, err := mae(staticM)
	if err != nil {
		return nil, err
	}
	rMAE, err := mae(randomM)
	if err != nil {
		return nil, err
	}
	add(3, "Random thread-block scheduling blunts timing attacks",
		rMAE > 5*sMAE+1,
		fmt.Sprintf("ones-count inference MAE: static %.2f vs random %.2f bits", sMAE, rMAE))

	// #4: a properly provisioned NoC does not bottleneck memory or L2.
	stages, err := bottleneck.Hierarchy(v100.Device.Config(), v100.Engine.Profile())
	if err != nil {
		return nil, err
	}
	memBound, binding, err := bottleneck.MemoryBound(stages)
	if err != nil {
		return nil, err
	}
	add(4, "Real-GPU NoC does not bottleneck memory or L2 bandwidth",
		memBound,
		fmt.Sprintf("series bottleneck: %s", binding.Name))

	// #5: interface bandwidth, not just bisection, must be provisioned.
	starved := v100.Engine.Profile()
	starved.MPPortGBs = 40
	sStages, err := bottleneck.Hierarchy(v100.Device.Config(), starved)
	if err != nil {
		return nil, err
	}
	factor, err := bottleneck.NetworkWallFactor(sStages)
	if err != nil {
		return nil, err
	}
	add(5, "Insufficient interface bandwidth creates a network wall",
		factor > 1.5,
		fmt.Sprintf("starving the NoC-MEM interface yields wall factor %.1fx", factor))

	// #6: multi-hop meshes struggle to provide uniform bandwidth; a
	// hierarchical organization does not.
	mesh, err := noc.RunFairness(fastFairness(noc.RoundRobin))
	if err != nil {
		return nil, err
	}
	xbar, err := noc.RunXbarFairness(fastXbarFairness(noc.RoundRobin))
	if err != nil {
		return nil, err
	}
	add(6, "Multi-hop meshes are non-uniform; hierarchical crossbars are not",
		mesh.MaxMinRatio > 2 && xbar.MaxMinRatio < 1.3,
		fmt.Sprintf("round-robin max/min ratio: mesh %.2fx vs crossbar %.2fx", mesh.MaxMinRatio, xbar.MaxMinRatio))

	return out, nil
}

func fastFairness(arb noc.Arbiter) noc.FairnessConfig {
	cfg := noc.DefaultFairnessConfig(arb, 42)
	cfg.Cycles, cfg.Warmup = 6000, 1000
	return cfg
}

func fastXbarFairness(arb noc.Arbiter) noc.XbarFairnessConfig {
	cfg := noc.DefaultXbarFairnessConfig(arb, 42)
	cfg.Cycles, cfg.Warmup = 6000, 1000
	return cfg
}
