package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
)

// TestRunResultRendersCLIBytes pins the Result renderers to the exact
// byte shapes cmd/nocchar prints: text mode is Render()+"\n" per
// artifact, CSV mode is "# title\ncsv\n" per artifact, and JSON mode is
// the MarshalArtifacts document plus a trailing newline. The nocserve
// cache serves these bytes verbatim, so this equivalence is what makes
// cached responses byte-identical to CLI output.
func TestRunResultRendersCLIBytes(t *testing.T) {
	ctx, err := NewContext(gpu.V100(), true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Lookup("fig1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResult(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPU != gpu.GenV100 || res.Exp != e {
		t.Errorf("result identity = (%s, %s), want (V100, fig1)", res.GPU, res.Exp.ID)
	}
	if len(res.Artifacts) == 0 {
		t.Fatal("fig1 produced no artifacts")
	}

	var text, csv bytes.Buffer
	for _, a := range res.Artifacts {
		fmt.Fprintln(&text, a.Render())
		fmt.Fprintf(&csv, "# %s\n%s\n", a.Title(), a.CSV())
	}
	if !bytes.Equal(res.TextBytes(), text.Bytes()) {
		t.Error("TextBytes differs from the per-artifact Println rendering")
	}
	if !bytes.Equal(res.CSVBytes(), csv.Bytes()) {
		t.Error("CSVBytes differs from the per-artifact CSV rendering")
	}

	data, err := MarshalArtifacts(res.Artifacts)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := append(data, '\n')
	gotJSON, err := res.JSONBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("JSONBytes differs from MarshalArtifacts plus newline")
	}

	md := string(res.MarkdownBytes())
	if !strings.HasPrefix(md, "## fig1 — ") || !strings.Contains(md, "*Paper:*") || !strings.Contains(md, "```\n") {
		t.Errorf("MarkdownBytes fragment malformed:\n%s", md[:120])
	}
}

// TestRunResultRefusesUnsupportedGPU: the serving layer hands RunResult
// untrusted tuples; an unsupported pair must be a typed error.
func TestRunResultRefusesUnsupportedGPU(t *testing.T) {
	ctx, err := NewContext(gpu.V100(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if e.SupportsGPU(gpu.GenV100) {
			continue
		}
		if _, err := RunResult(ctx, e); err == nil {
			t.Errorf("RunResult(V100, %s) = nil error, want unsupported-generation refusal", e.ID)
		}
		return
	}
	t.Skip("every experiment supports V100; nothing to refuse")
}

// TestRunResultDeterministic: two runs of the same (gpu, exp, quick)
// tuple produce byte-identical renderings — the property that makes the
// result cacheable at all.
func TestRunResultDeterministic(t *testing.T) {
	e, err := Lookup("fig1")
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		ctx, err := NewContext(gpu.V100(), true)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunResult(ctx, e)
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.JSONBytes()
		if err != nil {
			t.Fatal(err)
		}
		return append(append(j, res.CSVBytes()...), res.TextBytes()...)
	}
	if !bytes.Equal(render(), render()) {
		t.Error("identical (gpu, exp, quick) tuples rendered different bytes")
	}
}

// TestRunResultSummaryRows: an observed run exposes its scope's summary;
// an unobserved run exposes none.
func TestRunResultSummaryRows(t *testing.T) {
	ctx, err := NewContext(gpu.V100(), true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Lookup("fig21")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResult(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	if rows := res.SummaryRows(); rows != nil {
		t.Errorf("unobserved run has %d summary rows, want none", len(rows))
	}

	reg := obs.New()
	ctx2, err := NewContext(gpu.V100(), true)
	if err != nil {
		t.Fatal(err)
	}
	ctx2.Obs = reg.Scope("fig21")
	res2, err := RunResult(ctx2, e)
	if err != nil {
		t.Fatal(err)
	}
	rows := res2.SummaryRows()
	if len(rows) == 0 {
		t.Fatal("observed fig21 run produced no summary rows")
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.Name, "fig21/") {
			t.Errorf("summary row %q outside the run's scope", r.Name)
		}
	}
}
