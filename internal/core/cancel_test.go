package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"gpunoc/internal/gpu"
)

// TestRunResultByteIdenticalUnderLiveCancel is the acceptance pin for
// the cancellation plumbing: a run whose Cancel context exists but never
// fires must render byte-identically to a run with no Cancel at all, for
// experiments exercising every checkpoint flavour — MapContext sweeps
// (fig9), sequential Interrupted row loops (fig15), and simulator phase
// boundaries (fig23).
func TestRunResultByteIdenticalUnderLiveCancel(t *testing.T) {
	for _, id := range []string{"fig9", "fig15", "fig23"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		render := func(cancel context.Context) []byte {
			ctx, err := NewContext(gpu.V100(), true)
			if err != nil {
				t.Fatal(err)
			}
			ctx.Cancel = cancel
			res, err := RunResult(ctx, e)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			j, err := res.JSONBytes()
			if err != nil {
				t.Fatal(err)
			}
			return append(append(j, res.CSVBytes()...), res.TextBytes()...)
		}
		if !bytes.Equal(render(nil), render(context.Background())) {
			t.Errorf("%s: a never-cancelled Cancel context changed the rendered bytes", id)
		}
	}
}

// TestRunResultDeadContextReturnsWrappedError: a dead Cancel context
// stops the run before any artifact is produced, and the returned error
// unwraps to the context's own sentinel so HTTP callers can classify it
// (504 for deadlines, silent drop for disconnects).
func TestRunResultDeadContextReturnsWrappedError(t *testing.T) {
	e, err := Lookup("fig9")
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Time{})
	defer cancel2()
	for _, tc := range []struct {
		name string
		ctx  context.Context
		want error
	}{
		{"canceled", canceled, context.Canceled},
		{"deadline", expired, context.DeadlineExceeded},
	} {
		ctx, err := NewContext(gpu.V100(), true)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Cancel = tc.ctx
		res, err := RunResult(ctx, e)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: RunResult err = %v, want errors.Is %v", tc.name, err, tc.want)
		}
		if res != nil {
			t.Errorf("%s: a cancelled run returned a partial result", tc.name)
		}
	}
}

// TestInterruptedNilCancelIsFree: the zero-value Context never reports
// an interruption, so every pre-existing caller is unaffected.
func TestInterruptedNilCancelIsFree(t *testing.T) {
	var c Context
	if err := c.Interrupted(); err != nil {
		t.Fatalf("Interrupted() on zero Context = %v, want nil", err)
	}
}

// TestWriteReportCancel: a dead ReportOptions.Cancel aborts report
// generation with the context error instead of emitting a partial
// report full of "not applicable" sections.
func TestWriteReportCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := WriteReportOptions(io.Discard, []gpu.Config{gpu.V100()}, ReportOptions{
		Quick:  true,
		Now:    time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		Cancel: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteReportOptions err = %v, want context.Canceled", err)
	}
}
