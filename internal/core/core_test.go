package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gpunoc/internal/gpu"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must be registered.
	want := []string{"table1"}
	for i := 1; i <= 23; i++ {
		want = append(want, "fig"+itoa(i))
	}
	want = append(want, "ext1", "ext2", "ext3", "ext4", "ext5")
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry holds %d experiments, want %d", len(All()), len(want))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestAllOrdering(t *testing.T) {
	all := All()
	if all[0].ID != "table1" {
		t.Errorf("first experiment %s, want table1", all[0].ID)
	}
	if all[1].ID != "fig1" || all[23].ID != "fig23" {
		t.Errorf("figure ordering wrong: %s .. %s", all[1].ID, all[23].ID)
	}
	if all[len(all)-1].ID != "ext5" {
		t.Errorf("extensions should sort last, got %s", all[len(all)-1].ID)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestSupportsGPU(t *testing.T) {
	e, err := Lookup("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if !e.SupportsGPU(gpu.GenV100) || e.SupportsGPU(gpu.GenA100) {
		t.Error("fig1 is a V100 experiment")
	}
	tab, err := Lookup("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !tab.SupportsGPU(gpu.GenH100) {
		t.Error("table1 is generation-neutral")
	}
}

// Every experiment runs successfully in quick mode on each generation it
// supports and produces renderable, CSV-exportable artifacts.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry")
	}
	ctxs := map[gpu.Generation]*Context{}
	for _, cfg := range gpu.AllConfigs() {
		ctx, err := NewContext(cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		ctxs[cfg.Name] = ctx
	}
	for _, e := range All() {
		for gen, ctx := range ctxs {
			if !e.SupportsGPU(gen) {
				continue
			}
			// fig19 needs partitions; its registry entry is
			// generation-neutral but errors helpfully on V100.
			arts, err := e.Run(ctx)
			if err != nil {
				if e.ID == "fig19" && gen == gpu.GenV100 {
					continue
				}
				t.Errorf("%s on %s: %v", e.ID, gen, err)
				continue
			}
			if len(arts) == 0 {
				t.Errorf("%s on %s produced no artifacts", e.ID, gen)
			}
			for _, a := range arts {
				if a.Title() == "" {
					t.Errorf("%s on %s: artifact without title", e.ID, gen)
				}
				if strings.TrimSpace(a.Render()) == "" {
					t.Errorf("%s (%s): empty rendering", e.ID, a.Title())
				}
				if strings.TrimSpace(a.CSV()) == "" {
					t.Errorf("%s (%s): empty CSV", e.ID, a.Title())
				}
			}
		}
	}
}

// The paper's twelve observations all hold in the model.
func TestObservationsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-generation sweep")
	}
	obs, err := CheckObservations()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 12 {
		t.Fatalf("%d observations checked, want 12", len(obs))
	}
	for _, o := range obs {
		if !o.Pass {
			t.Errorf("Observation #%d (%s) failed: %s", o.ID, o.Text, o.Detail)
		}
	}
}

// The paper's six implications all hold in the model.
func TestImplicationsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-generation sweep")
	}
	imps, err := CheckImplications()
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 6 {
		t.Fatalf("%d implications checked, want 6", len(imps))
	}
	for _, im := range imps {
		if !im.Pass {
			t.Errorf("Implication #%d (%s) failed: %s", im.ID, im.Text, im.Detail)
		}
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry")
	}
	var buf strings.Builder
	err := WriteReport(&buf, []gpu.Config{gpu.V100()}, true, time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# gpunoc characterization report", "## fig1", "## fig23", "## ext5", "Observations #1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every observation passes, so every checkbox is ticked.
	if strings.Contains(out, "- [ ]") {
		t.Error("report contains a failed observation")
	}
	if err := WriteReport(&buf, nil, true, time.Time{}); err == nil {
		t.Error("empty generation list should fail")
	}
}

func TestMarshalArtifacts(t *testing.T) {
	arts := []Artifact{
		&Series{Name: "s", XLabel: "x", YLabel: "y", X: []float64{1}, Y: []float64{2}},
		&Table{Name: "t", Columns: []string{"a"}, Rows: [][]string{{"1"}}},
		&Heatmap{Name: "h", Values: [][]float64{{1}}},
		&Text{Name: "x", Body: "hello"},
		&MultiSeries{Name: "m", X: []float64{1}, Lines: []NamedLine{{Label: "l", Y: []float64{1}}}},
	}
	data, err := MarshalArtifacts(arts)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []ArtifactJSON
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 5 {
		t.Fatalf("decoded %d artifacts", len(decoded))
	}
	kinds := map[string]bool{}
	for _, d := range decoded {
		kinds[d.Kind] = true
		if d.Title == "" {
			t.Error("artifact without title")
		}
	}
	for _, k := range []string{"series", "table", "heatmap", "text", "multiseries"} {
		if !kinds[k] {
			t.Errorf("kind %s missing", k)
		}
	}
	if decoded[3].Body != "hello" {
		t.Error("text body lost")
	}
}
