package core

import (
	"fmt"

	"gpunoc/internal/noc"
)

func init() {
	register(&Experiment{
		ID:    "fig20",
		Title: "Fig 20: many-to-few-to-many communication pattern",
		Paper: "Request network (many cores -> few MCs) and reply network; interface BW highlighted",
		Run:   runFig20,
	})
	register(&Experiment{
		ID:    "fig21",
		Title: "Fig 21: memory-channel utilization under the reply bottleneck",
		Paper: "Simulated baseline reaches max briefly but averages ~20% from reply backpressure",
		Run:   runFig21,
	})
	register(&Experiment{
		ID:    "fig22",
		Title: "Fig 22: memory BW vs NoC-MEM interface BW in prior-work configs",
		Paper: "Several simulation baselines sit below the line, creating a network wall",
		Run:   runFig22,
	})
	register(&Experiment{
		ID:    "fig23",
		Title: "Fig 23: mesh throughput fairness, round-robin vs age-based",
		Paper: "6x6 mesh, 30 cores, 6 MCs: RR up to 2.4x unfair; age-based near-fair",
		Run:   runFig23,
	})
}

func runFig20(ctx *Context) ([]Artifact, error) {
	body := `
  many cores                 few MCs                many cores
  [C][C][C]...[C]           [MC]..[MC]            [C][C][C]...[C]
       \\  |  //   request      ||       reply        \\  |  //
      ==============>  BW(NoC-MEM)  ==============>
        bisection BW(NoC-Bc)       interface BW is the
        matters only if sources    series bottleneck when
        can saturate it            replies carry cache lines`
	return []Artifact{&Text{Name: "Fig 20: many-to-few-to-many", Body: body}}, nil
}

func runFig21(ctx *Context) ([]Artifact, error) {
	cfg := noc.DefaultGPUSimConfig(1)
	if ctx.Quick {
		cfg.Cycles = 6000
		cfg.Warmup = 1000
	}
	cfg.Obs = ctx.Obs.Scope("narrow")
	narrow, err := noc.RunGPUSim(cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Interrupted(); err != nil {
		return nil, err
	}
	wideCfg := cfg
	wideCfg.ReplyFlits = 1
	wideCfg.Obs = ctx.Obs.Scope("wide")
	wide, err := noc.RunGPUSim(wideCfg)
	if err != nil {
		return nil, err
	}
	series := &Series{
		Name:   "Fig 21: memory-channel utilization over time (cache-line replies)",
		XLabel: fmt.Sprintf("window (%d cycles)", cfg.UtilWindow), YLabel: "utilization",
	}
	for i, u := range narrow.UtilSeries {
		series.X = append(series.X, float64(i))
		series.Y = append(series.Y, u)
	}
	summary := &Table{
		Name:    "Fig 21 summary",
		Columns: []string{"reply size (flits)", "avg mem utilization", "reply-interface util", "requests served"},
		Rows: [][]string{
			{fmt.Sprint(cfg.ReplyFlits), fmt.Sprintf("%.1f%%", 100*narrow.MemUtilization),
				fmt.Sprintf("%.1f%%", 100*narrow.ReplyInterfaceUtilization), fmt.Sprint(narrow.RequestsServed)},
			{"1 (matched)", fmt.Sprintf("%.1f%%", 100*wide.MemUtilization),
				fmt.Sprintf("%.1f%%", 100*wide.ReplyInterfaceUtilization), fmt.Sprint(wide.RequestsServed)},
		},
	}
	return []Artifact{series, summary}, nil
}

func runFig22(ctx *Context) ([]Artifact, error) {
	reports, walled, err := noc.AnalyzeNetworkWall(noc.PriorWorkPoints())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    fmt.Sprintf("Fig 22: network-wall analysis (%d of %d configurations walled)", walled, len(reports)),
		Columns: []string{"configuration", "BW_mem GB/s", "BW_NoC-MEM GB/s", "network wall"},
	}
	for _, r := range reports {
		t.Rows = append(t.Rows, []string{
			r.Point.Name,
			fmt.Sprintf("%.0f", r.Point.MemBWGBs),
			fmt.Sprintf("%.0f", r.NoCMem),
			fmt.Sprint(r.Walled),
		})
	}
	return []Artifact{t}, nil
}

func runFig23(ctx *Context) ([]Artifact, error) {
	var arts []Artifact
	for _, arb := range []noc.Arbiter{noc.RoundRobin, noc.AgeBased} {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		cfg := noc.DefaultFairnessConfig(arb, 42)
		if ctx.Quick {
			cfg.Cycles = 5000
			cfg.Warmup = 1000
		}
		cfg.Obs = ctx.Obs.Scope(arb.String())
		res, err := noc.RunFairness(cfg)
		if err != nil {
			return nil, err
		}
		s := &Series{
			Name:   fmt.Sprintf("Fig 23 (%s): per-node accepted throughput (max/min %.2fx)", arb, res.MaxMinRatio),
			XLabel: "compute node", YLabel: "packets/cycle",
		}
		for i, node := range res.ComputeNodes {
			s.X = append(s.X, float64(node))
			s.Y = append(s.Y, res.Throughput[i])
		}
		arts = append(arts, s)
	}
	return arts, nil
}
