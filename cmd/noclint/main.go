// Command noclint runs the gpunoc static-analysis suite: the
// per-package analyzers (determinism, seedflow, unit safety, ordered
// output, registry completeness, error hygiene) plus the
// interprocedural analyzers built on a module-local call graph
// (hotpathalloc, transitive determinism, atomicmix, staleignore; see
// internal/lint). It exits non-zero when any finding survives
// suppression, making it suitable as a CI gate.
//
// Usage:
//
//	noclint ./...
//	noclint -json ./internal/core
//	noclint -list
//	noclint -baseline noclint.baseline.json ./...
//	noclint -write-baseline noclint.baseline.json ./...
//
// Findings print as file:line: [analyzer] message. Suppress one with a
// `//lint:ignore <analyzer> <reason>` comment on or directly above the
// offending line.
//
// The -baseline mode is a ratchet: findings are compared against a
// committed, position-normalized baseline, and the run fails both on
// findings missing from the baseline (regressions) and on baseline
// entries no finding matched (stale entries — the fix must be locked in
// by shrinking the baseline). -write-baseline records the current
// findings as the new accepted set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gpunoc/internal/lint"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array")
		list      = flag.Bool("list", false, "list analyzers and exit")
		baseline  = flag.String("baseline", "", "compare findings against this baseline file; fail on regressions and stale entries")
		writeBase = flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.ProgramAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *baseline != "" && *writeBase != "" {
		fatal(fmt.Errorf("-baseline and -write-baseline are mutually exclusive"))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modulePath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root, modulePath)
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", dir, err))
		}
		pkgs = append(pkgs, pkg)
	}
	prog := lint.NewProgram(pkgs)
	prog.FullModule, err = coversModule(root, dirs)
	if err != nil {
		fatal(err)
	}
	diags := lint.CheckProgram(prog)

	if *writeBase != "" {
		entries := lint.BaselineFromDiagnostics(root, diags)
		if err := lint.WriteBaseline(*writeBase, entries); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "noclint: wrote %d baseline entr%s to %s\n",
			len(entries), plural(len(entries), "y", "ies"), *writeBase)
		return
	}

	var stale []lint.BaselineEntry
	if *baseline != "" {
		entries, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		diags, stale = lint.CompareBaseline(root, diags, entries)
		if !prog.FullModule {
			// A partial load cannot see the whole accepted set; stale
			// detection would misfire on every entry outside the load.
			stale = nil
		}
	}

	// Report paths relative to the working directory, like go vet.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	lint.SortDiagnostics(diags)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, e := range stale {
		fmt.Printf("%s: [%s] stale baseline entry (%d unmatched): the finding was fixed — remove it from the baseline: %s\n",
			e.File, e.Analyzer, e.Count, e.Message)
	}
	if len(diags) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}

// coversModule reports whether the loaded directory set includes every
// package directory of the module — the precondition for whole-program
// verdicts (staleignore, stale-baseline detection).
func coversModule(root string, dirs []string) (bool, error) {
	all, err := expandPatterns([]string{root + "/..."})
	if err != nil {
		return false, err
	}
	loaded := map[string]bool{}
	for _, d := range dirs {
		loaded[d] = true
	}
	for _, d := range all {
		if !loaded[d] {
			return false, nil
		}
	}
	return true, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// expandPatterns resolves CLI arguments into package directories. A
// trailing /... walks the tree; testdata, vendor and hidden directories
// are skipped (lint fixtures are intentionally broken).
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	addIfPackage := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if seen[abs] {
			return nil
		}
		entries, err := os.ReadDir(abs)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				seen[abs] = true
				dirs = append(dirs, abs)
				return nil
			}
		}
		return nil
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && path != base) {
					return filepath.SkipDir
				}
				return addIfPackage(path)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := addIfPackage(pat); err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "noclint:", err)
	os.Exit(2)
}
