// Command noclint runs the gpunoc static-analysis suite: determinism,
// unit safety, ordered output, registry completeness and error hygiene
// (see internal/lint). It exits non-zero when any finding survives
// suppression, making it suitable as a CI gate.
//
// Usage:
//
//	noclint ./...
//	noclint -json ./internal/core
//	noclint -list
//
// Findings print as file:line: [analyzer] message. Suppress one with a
// `//lint:ignore <analyzer> <reason>` comment on or directly above the
// offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gpunoc/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modulePath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(root, modulePath)
	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", dir, err))
		}
		diags = append(diags, lint.Check(pkg)...)
	}
	// Report paths relative to the working directory, like go vet.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	lint.SortDiagnostics(diags)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// expandPatterns resolves CLI arguments into package directories. A
// trailing /... walks the tree; testdata, vendor and hidden directories
// are skipped (lint fixtures are intentionally broken).
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	addIfPackage := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if seen[abs] {
			return nil
		}
		entries, err := os.ReadDir(abs)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				seen[abs] = true
				dirs = append(dirs, abs)
				return nil
			}
		}
		return nil
	}
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "/..."); ok {
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && path != base) {
					return filepath.SkipDir
				}
				return addIfPackage(path)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := addIfPackage(pat); err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "noclint:", err)
	os.Exit(2)
}
