package main

import (
	"errors"
	"fmt"
)

// validateFlags rejects flag combinations whose precedence used to be
// silently undefined: -csv and -json name two different renderings of
// the same artifacts, and -exp with -all both try to choose the
// experiment set. A long-lived consumer (scripts, the nocserve cache
// warmers) must get a loud non-zero exit, not whichever flag the switch
// statement happened to test first.
func validateFlags(csv, json, all bool, exp string) error {
	if csv && json {
		return errors.New("-csv and -json are mutually exclusive: pick one output encoding")
	}
	if all && exp != "" {
		return fmt.Errorf("-all and -exp %q are mutually exclusive: -all runs every experiment, -exp runs one", exp)
	}
	return nil
}
