package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name           string
		csv, json, all bool
		exp            string
		wantErr        bool
	}{
		{name: "defaults", exp: ""},
		{name: "csv alone", csv: true},
		{name: "json alone", json: true},
		{name: "exp alone", exp: "fig1"},
		{name: "all alone", all: true},
		{name: "csv with exp", csv: true, exp: "fig1"},
		{name: "json with all", json: true, all: true},
		{name: "csv and json", csv: true, json: true, wantErr: true},
		{name: "all and exp", all: true, exp: "fig1", wantErr: true},
		{name: "everything wrong", csv: true, json: true, all: true, exp: "fig1", wantErr: true},
	}
	for _, c := range cases {
		err := validateFlags(c.csv, c.json, c.all, c.exp)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags(csv=%v, json=%v, all=%v, exp=%q) = %v, wantErr=%v",
				c.name, c.csv, c.json, c.all, c.exp, err, c.wantErr)
		}
	}
}

// TestCLIFlagConflicts runs the real binary: conflicting flags must
// print to stderr, write nothing to stdout, and exit non-zero before
// any simulation starts.
func TestCLIFlagConflicts(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "nocchar")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	for _, args := range [][]string{
		{"-gpu", "v100", "-exp", "fig1", "-csv", "-json"},
		{"-gpu", "v100", "-exp", "fig1", "-all"},
	} {
		cmd := exec.Command(bin, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		if err == nil {
			t.Errorf("nocchar %v: want non-zero exit", args)
			continue
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
			t.Errorf("nocchar %v: exit error = %v, want non-zero exit code", args, err)
		}
		if !strings.Contains(stderr.String(), "mutually exclusive") {
			t.Errorf("nocchar %v: stderr = %q, want a mutually-exclusive diagnostic", args, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("nocchar %v: stdout = %q, want empty (fail before any output)", args, stdout.String())
		}
	}
}
