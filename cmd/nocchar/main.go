// Command nocchar runs the GPU NoC characterization experiments: every
// table and figure of the reproduced paper, on any modelled GPU
// generation.
//
// Usage:
//
//	nocchar -list
//	nocchar -gpu v100 -exp fig1
//	nocchar -gpu a100 -exp fig12 -csv
//	nocchar -gpu h100 -all
//	nocchar -gpu h100 -all -parallel 8
//	nocchar -gpu v100 -all -quick -metrics metrics.json -trace trace.json
//	nocchar -observations
//
// -parallel N sizes the deterministic worker pool (default GOMAXPROCS):
// experiments of an -all run and the row sweeps inside each experiment
// fan out across it, with results landing in index-addressed slots, so
// the output is byte-identical for every N.
//
// -metrics FILE dumps every simulator instrument (counters, gauges,
// histograms) as sorted-key JSON; -trace FILE dumps the cycle-stamped
// event trace as Chrome trace-event JSON (load it in chrome://tracing or
// Perfetto). Both files are byte-identical across runs at a fixed seed
// and across -parallel values, and neither flag changes stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
	"gpunoc/internal/parallel"
)

func main() {
	var (
		gpuName      = flag.String("gpu", "v100", "GPU generation: v100, a100, h100")
		expID        = flag.String("exp", "", "experiment id (fig1..fig23, table1)")
		runAll       = flag.Bool("all", false, "run every experiment supported by the GPU")
		list         = flag.Bool("list", false, "list experiments and exit")
		csv          = flag.Bool("csv", false, "emit CSV instead of text renderings")
		outDir       = flag.String("out", "", "also write each artifact as CSV into this directory")
		quick        = flag.Bool("quick", false, "reduce sample counts for a fast pass")
		observations = flag.Bool("observations", false, "check the paper's 12 observations")
		implications = flag.Bool("implications", false, "check the paper's 6 implications")
		report       = flag.String("report", "", "write a full Markdown report of every experiment to this file")
		jsonOut      = flag.Bool("json", false, "emit artifacts as JSON")
		workers      = flag.Int("parallel", 0, "worker-pool size for experiment fan-out and sweep sharding; 0 means GOMAXPROCS (output is byte-identical for every value)")
		metricsOut   = flag.String("metrics", "", "write collected instruments (counters, gauges, histograms) as deterministic JSON to this file")
		traceOut     = flag.String("trace", "", "write the cycle-stamped event trace as Chrome trace-event JSON to this file")
	)
	flag.Parse()

	if err := validateFlags(*csv, *jsonOut, *runAll, *expID); err != nil {
		fatal(err)
	}

	if *workers > 0 {
		// One knob drives both levels of parallelism: the explicit pool
		// arguments below and parallel.DefaultWorkers(), which reads
		// GOMAXPROCS for every sweep that is not handed a pool size.
		runtime.GOMAXPROCS(*workers)
	}

	if *list {
		for _, e := range core.All() {
			gpus := "all GPUs"
			if len(e.GPUs) > 0 {
				gpus = fmt.Sprint(e.GPUs)
			}
			fmt.Printf("%-8s %-10s %s\n         paper: %s\n", e.ID, gpus, e.Title, e.Paper)
		}
		return
	}

	if *observations {
		checks, err := core.CheckObservations()
		if err != nil {
			fatal(err)
		}
		failed := 0
		for _, o := range checks {
			status := "PASS"
			if !o.Pass {
				status = "FAIL"
				failed++
			}
			fmt.Printf("[%s] Observation #%d: %s\n       %s\n", status, o.ID, o.Text, o.Detail)
		}
		if failed > 0 {
			fatal(fmt.Errorf("%d observation(s) failed", failed))
		}
		return
	}

	if *implications {
		imps, err := core.CheckImplications()
		if err != nil {
			fatal(err)
		}
		failed := 0
		for _, im := range imps {
			status := "PASS"
			if !im.Pass {
				status = "FAIL"
				failed++
			}
			fmt.Printf("[%s] Implication #%d: %s\n       %s\n", status, im.ID, im.Text, im.Detail)
		}
		if failed > 0 {
			fatal(fmt.Errorf("%d implication(s) failed", failed))
		}
		return
	}

	cfg, err := gpu.ByName(*gpuName)
	if err != nil {
		fatal(err)
	}

	// Collection is opt-in: without -metrics/-trace the registry stays
	// nil, every hook is a nil-safe no-op, and stdout is byte-identical
	// to an unobserved run.
	var reg *obs.Registry
	if *metricsOut != "" || *traceOut != "" {
		reg = obs.New()
	}

	if *report != "" {
		cfgs := []gpu.Config{cfg}
		if *runAll {
			cfgs = gpu.AllConfigs()
		}
		if err := writeReportFile(*report, cfgs, *quick, *workers, reg); err != nil {
			fatal(err)
		}
		fmt.Println("report written to", *report)
		if err := writeObsFiles(reg, *metricsOut, *traceOut); err != nil {
			fatal(err)
		}
		return
	}

	ctx, err := core.NewContext(cfg, *quick)
	if err != nil {
		fatal(err)
	}
	ctx.Workers = *workers

	var exps []*core.Experiment
	switch {
	case *runAll:
		for _, e := range core.All() {
			if e.SupportsGPU(cfg.Name) {
				exps = append(exps, e)
			}
		}
	case *expID != "":
		e, err := core.Lookup(*expID)
		if err != nil {
			fatal(err)
		}
		if !e.SupportsGPU(cfg.Name) {
			fatal(fmt.Errorf("experiment %s does not apply to %s (supported: %v)", e.ID, cfg.Name, e.GPUs))
		}
		exps = append(exps, e)
	default:
		fatal(fmt.Errorf("pass -exp <id>, -all, -list, or -observations"))
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	// Fan the experiments out across the pool; results land in
	// index-addressed slots and are printed below in registry order, so
	// stdout is byte-identical to a sequential run. Wall times go to
	// stderr to keep it that way. The same core.RunResult path backs the
	// nocserve cache, whose responses are therefore byte-identical to
	// this stdout (the renderers are shared, not reimplemented).
	type outcome struct {
		res *core.Result
		err error
		dur time.Duration
	}
	t0 := time.Now()
	results, err := parallel.Map(*workers, len(exps), func(i int) (outcome, error) {
		start := time.Since(t0)
		c := ctx
		if reg != nil {
			// Shallow-copy the shared context so each concurrent
			// experiment observes into its own scope.
			cc := *ctx
			cc.Obs = reg.Scope(exps[i].ID)
			c = &cc
		}
		res, err := core.RunResult(c, exps[i])
		return outcome{res: res, err: err, dur: time.Since(t0) - start}, nil
	})
	if err != nil {
		fatal(err)
	}
	for i, e := range exps {
		fmt.Printf("=== %s: %s [%s]\n", e.ID, e.Title, cfg.Name)
		fmt.Printf("    paper: %s\n\n", e.Paper)
		res, runErr := results[i].res, results[i].err
		fmt.Fprintf(os.Stderr, "nocchar: %s wall time %s\n", e.ID, results[i].dur.Round(time.Millisecond))
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "    error: %v\n\n", runErr)
			continue
		}
		switch {
		case *jsonOut:
			data, err := res.JSONBytes()
			if err != nil {
				fatal(err)
			}
			mustWrite(os.Stdout.Write(data))
			continue
		case *csv:
			mustWrite(os.Stdout.Write(res.CSVBytes()))
		default:
			mustWrite(os.Stdout.Write(res.TextBytes()))
		}
		if *outDir != "" {
			for i, a := range res.Artifacts {
				name := fmt.Sprintf("%s_%s_%d.csv", e.ID, strings.ToLower(string(cfg.Name)), i)
				if err := os.WriteFile(filepath.Join(*outDir, name), []byte(a.CSV()), 0o644); err != nil {
					fatal(err)
				}
			}
		}
	}
	if err := writeObsFiles(reg, *metricsOut, *traceOut); err != nil {
		fatal(err)
	}
}

// writeReportFile writes the full Markdown report to path, surfacing
// Close errors (a buffered flush can fail even when every write
// succeeded).
func writeReportFile(path string, cfgs []gpu.Config, quick bool, workers int, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// The stopwatch is injected here: internal/core never reads the
	// clock itself, keeping its output byte-comparable when no clock is
	// supplied (noclint's determinism analyzer enforces this split).
	t0 := time.Now()
	opts := core.ReportOptions{
		Quick:     quick,
		Now:       t0,
		Workers:   workers,
		Stopwatch: func() time.Duration { return time.Since(t0) },
		Obs:       reg,
	}
	if err := core.WriteReportOptions(f, cfgs, opts); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// writeObsFiles dumps the collected instruments and trace to the paths
// the user asked for; a nil registry or empty path is a no-op, and
// nothing is printed to stdout so observed and unobserved runs stay
// byte-comparable there.
func writeObsFiles(reg *obs.Registry, metricsPath, tracePath string) error {
	if reg == nil {
		return nil
	}
	write := func(path string, emit func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "nocchar: wrote", path)
		return nil
	}
	if err := write(metricsPath, func(f *os.File) error { return reg.WriteMetrics(f) }); err != nil {
		return err
	}
	return write(tracePath, func(f *os.File) error { return reg.WriteTrace(f) })
}

// mustWrite surfaces stdout write failures (a closed pipe, a full disk
// behind a redirect) as a fatal exit instead of silently truncating.
func mustWrite(_ int, err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocchar:", err)
	os.Exit(1)
}
