// Command meshsim drives the flit-level 2-D mesh NoC simulator: the
// fairness study of the paper's Fig. 23 and the request/reply GPU traffic
// study of Fig. 21, with every parameter overridable.
//
// Usage:
//
//	meshsim -mode fairness -arbiter age -rate 0.25
//	meshsim -mode gpusim -replyflits 3 -cycles 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpunoc/internal/noc"
	"gpunoc/internal/stats"
)

func main() {
	var (
		mode       = flag.String("mode", "fairness", "fairness | gpusim | loadlat")
		width      = flag.Int("width", 6, "mesh width")
		height     = flag.Int("height", 6, "mesh height")
		buffers    = flag.Int("buffers", 8, "input buffer depth in flits")
		arbiter    = flag.String("arbiter", "rr", "rr | age")
		rate       = flag.Float64("rate", 0.25, "fairness: injection rate (packets/cycle/node)")
		replyFlits = flag.Int("replyflits", 3, "gpusim: reply packet size in flits")
		cycles     = flag.Int("cycles", 20000, "measured cycles")
		warmup     = flag.Int("warmup", 2000, "warmup cycles")
		seed       = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	arb := noc.RoundRobin
	switch strings.ToLower(*arbiter) {
	case "rr", "round-robin":
		arb = noc.RoundRobin
	case "age", "age-based":
		arb = noc.AgeBased
	default:
		fatal(fmt.Errorf("unknown arbiter %q", *arbiter))
	}
	mesh := noc.MeshConfig{Width: *width, Height: *height, BufferFlits: *buffers, Arbiter: arb}

	switch *mode {
	case "fairness":
		cfg := noc.DefaultFairnessConfig(arb, *seed)
		cfg.Mesh = mesh
		cfg.InjectRate = *rate
		cfg.Cycles = *cycles
		cfg.Warmup = *warmup
		res, err := noc.RunFairness(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mesh %dx%d, %s arbitration, rate %.2f: %d compute nodes -> %d MCs\n",
			*width, *height, arb, *rate, len(res.ComputeNodes), len(res.MCs))
		for i, node := range res.ComputeNodes {
			fmt.Printf("  node %2d: %.4f packets/cycle\n", node, res.Throughput[i])
		}
		fmt.Printf("max/min throughput ratio: %.2fx (paper Fig 23: RR up to 2.4x, age-based ~1)\n", res.MaxMinRatio)
		fmt.Printf("aggregate accepted: %.2f packets/cycle\n", stats.Sum(res.Throughput))

	case "gpusim":
		cfg := noc.DefaultGPUSimConfig(*seed)
		cfg.Mesh = mesh
		cfg.ReplyFlits = *replyFlits
		cfg.Cycles = *cycles
		cfg.Warmup = *warmup
		res, err := noc.RunGPUSim(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("request/reply mesh %dx%d, %d-flit replies:\n", *width, *height, *replyFlits)
		fmt.Printf("  avg memory utilization: %.1f%% (paper Fig 21: ~20%% under the reply bottleneck)\n",
			100*res.MemUtilization)
		fmt.Printf("  reply interface utilization: %.1f%%\n", 100*res.ReplyInterfaceUtilization)
		fmt.Printf("  requests served: %d\n", res.RequestsServed)
		fmt.Println("  utilization over time:")
		for i, u := range res.UtilSeries {
			bar := strings.Repeat("#", int(u*60))
			fmt.Printf("  w%03d |%-60s| %.2f\n", i, bar, u)
		}

	case "loadlat":
		cfg := noc.DefaultLoadLatencyConfig(arb, *seed)
		cfg.Mesh = mesh
		cfg.Cycles = *cycles
		cfg.Warmup = *warmup
		points, err := noc.RunLoadLatency(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("load-latency sweep, mesh %dx%d, %s arbitration:\n", *width, *height, arb)
		fmt.Printf("  %-10s %-10s %s\n", "offered", "accepted", "avg latency (cycles)")
		for _, p := range points {
			fmt.Printf("  %-10.3f %-10.3f %.1f\n", p.OfferedRate, p.AcceptedRate, p.AvgLatency)
		}
		fmt.Printf("saturation throughput: %.3f packets/cycle/node\n", noc.SaturationRate(points))

	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshsim:", err)
	os.Exit(1)
}
