// Command nocbench runs the curated performance-benchmark suite
// (internal/perfbench) against the simulators and serving layer, and
// ratchets the results against a committed baseline the same way
// noclint ratchets static findings.
//
// Usage:
//
//	nocbench                               run the suite, print a table
//	nocbench -quick                        short benchtime, 3 reps
//	nocbench -json -label pr               write BENCH_pr.json
//	nocbench -compare old.json new.json    print per-benchmark deltas
//	nocbench -check                        measure and fail on regressions
//	nocbench -write-baseline               refresh bench.baseline.json
//	nocbench -bench 'mesh|xbar'            restrict to matching names
//
// Each benchmark runs through testing.Benchmark -reps times; the
// reported ns/op is the median of the reps surviving IQR outlier
// rejection, so one cold-cache or noisy-neighbour rep cannot fail CI.
//
// -check compares against -baseline (default bench.baseline.json) under
// each entry's noise budget: a max ns/op ratio (default 2.5x — generous
// because CI boxes are shared, but below the 3x regression the CI smoke
// seeds via -slow-by) and a max allocs/op delta (0 pins the zero-alloc
// hot paths at exactly zero). It fails on regressions, on measured
// benchmarks missing from the baseline, and on stale baseline entries
// naming benchmarks the suite no longer has. -write-baseline refreshes
// the measurements while preserving existing budgets.
//
// -slow-by name=factor multiplies a benchmark's measured ns/op after
// measurement. It exists so CI can prove the gate bites: a seeded
// 3x slowdown must make -check exit non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"gpunoc/internal/perfbench"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "short per-rep benchtime (100ms) and 3 reps")
		reps      = flag.Int("reps", 0, "median-of-K repetitions per benchmark; 0 means 5 (3 under -quick)")
		benchtime = flag.String("benchtime", "", "per-rep measurement target in testing -benchtime syntax; empty means 1s (100ms under -quick)")
		jsonOut   = flag.Bool("json", false, "write the report to BENCH_<label>.json instead of printing a table")
		label     = flag.String("label", "local", "report label; names the -json output file")
		compare   = flag.Bool("compare", false, "compare two report files (nocbench -compare old.json new.json) and exit")
		check     = flag.Bool("check", false, "measure and ratchet against -baseline; exit non-zero on any problem")
		baseline  = flag.String("baseline", "bench.baseline.json", "baseline file for -check / -write-baseline")
		writeBase = flag.Bool("write-baseline", false, "measure the full suite and rewrite -baseline, preserving existing budgets")
		benchRe   = flag.String("bench", "", "regexp restricting which suite benchmarks run")
		slowBy    = flag.String("slow-by", "", "self-test hook: name=factor[,name=factor] multiplying measured ns/op")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two report files, got %d args", flag.NArg()))
		}
		old, err := perfbench.LoadReport(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := perfbench.LoadReport(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		printDeltas(perfbench.Compare(old, cur))
		return
	}

	cfg := perfbench.Config{
		Reps:      *reps,
		BenchTime: *benchtime,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *quick {
		if cfg.BenchTime == "" {
			cfg.BenchTime = "100ms"
		}
		if cfg.Reps <= 0 {
			cfg.Reps = 3
		}
	}
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			fatal(fmt.Errorf("-bench: %w", err))
		}
		cfg.Filter = re
	}
	var err error
	if cfg.SlowBy, err = parseSlowBy(*slowBy); err != nil {
		fatal(err)
	}
	if *writeBase && cfg.Filter != nil {
		// A filtered baseline write would drop every other entry and
		// then fail -check as stale; force the full suite instead.
		fatal(fmt.Errorf("-write-baseline measures the full suite; drop -bench"))
	}

	suite := perfbench.Suite()
	rep, err := perfbench.Run(cfg, suite)
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("-bench %q matched no suite benchmark", *benchRe))
	}

	switch {
	case *writeBase:
		prev, err := perfbench.LoadBaseline(*baseline)
		if err != nil && !os.IsNotExist(err) {
			fatal(err)
		}
		next := perfbench.NewBaseline(prev, rep, perfbench.DefaultBudgets())
		if err := next.WriteBaseline(*baseline); err != nil {
			fatal(err)
		}
		fmt.Printf("nocbench: wrote %d benchmarks to %s\n", len(next.Benchmarks), *baseline)
	case *check:
		base, err := perfbench.LoadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		problems := perfbench.Check(base, rep, perfbench.SuiteNames())
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "nocbench: FAIL %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Printf("nocbench: %d benchmarks within budget of %s\n", len(rep.Benchmarks), *baseline)
	case *jsonOut:
		path := "BENCH_" + sanitizeLabel(*label) + ".json"
		if err := rep.WriteJSON(path); err != nil {
			fatal(err)
		}
		fmt.Printf("nocbench: wrote %s\n", path)
	default:
		printReport(rep, suite)
	}
}

// parseSlowBy parses "name=factor[,name=factor]".
func parseSlowBy(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-slow-by: %q is not name=factor", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("-slow-by: bad factor in %q", part)
		}
		out[name] = f
	}
	return out, nil
}

// sanitizeLabel keeps the -json filename shell-safe.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, label)
}

func printReport(rep *perfbench.Report, suite []perfbench.Benchmark) {
	docs := map[string]string{}
	for _, bm := range suite {
		docs[bm.Name] = bm.Doc
	}
	fmt.Printf("%-18s %14s %10s %10s  %s\n", "benchmark", "ns/op", "B/op", "allocs/op", "metrics")
	for _, m := range rep.Benchmarks {
		fmt.Printf("%-18s %14.1f %10d %10d  %s\n", m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, metricsString(m.Metrics))
	}
	fmt.Println()
	for _, m := range rep.Benchmarks {
		fmt.Printf("  %-18s %s\n", m.Name, docs[m.Name])
	}
}

func metricsString(metrics map[string]float64) string {
	if len(metrics) == 0 {
		return ""
	}
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.3f", k, metrics[k]))
	}
	return strings.Join(parts, " ")
}

func printDeltas(deltas []perfbench.Delta) {
	fmt.Printf("%-18s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, d := range deltas {
		switch {
		case d.OldOnly:
			fmt.Printf("%-18s %14.1f %14s %8s\n", d.Name, d.OldNs, "-", "gone")
		case d.NewOnly:
			fmt.Printf("%-18s %14s %14.1f %8s\n", d.Name, "-", d.NewNs, "new")
		default:
			fmt.Printf("%-18s %14.1f %14.1f %7.2fx  allocs %d -> %d\n",
				d.Name, d.OldNs, d.NewNs, d.Ratio(), d.OldAlloc, d.NewAlloc)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocbench:", err)
	os.Exit(1)
}
