package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpunoc/internal/obs"
	"gpunoc/internal/resultstore"
)

// gatedComputer is a fault-injection stub: every compute blocks on the
// gate channel (close it to release all fills at once) and counts its
// invocations. The compute deliberately ignores its context — it models
// a wedged simulation that cannot be interrupted, the worst case the
// deadline machinery must absorb.
type gatedComputer struct {
	gate  chan struct{}
	calls atomic.Int64
}

func newGatedComputer() *gatedComputer {
	return &gatedComputer{gate: make(chan struct{})}
}

func (g *gatedComputer) compute(_ context.Context, key resultstore.Key) (*resultstore.Entry, error) {
	g.calls.Add(1)
	<-g.gate
	body := []byte(fmt.Sprintf("{\"key\":%q}\n", key))
	return &resultstore.Entry{JSON: body, CSV: body, Text: body, Markdown: body}, nil
}

// Test504OnRequestTimeout is the tentpole's acceptance path: a request
// against a wedged cold key times out with 504 WITHOUT killing the
// fill; once the fill unwedges it populates the cache, so the retry is
// a 200 hit with zero extra simulations, and /metricz records the
// timeout.
func Test504OnRequestTimeout(t *testing.T) {
	g := newGatedComputer()
	ts, store, _ := newConfiguredServer(t, serverConfig{requestTimeout: 30 * time.Millisecond}, g.compute)

	status, _, body := get(t, ts.URL+"/v1/v100/fig1?quick=1")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("wedged cold key: status %d (%s), want 504", status, bytes.TrimSpace(body))
	}
	if !strings.Contains(string(body), "deadline exceeded") {
		t.Errorf("504 body %q does not explain the deadline", bytes.TrimSpace(body))
	}

	// The server must not be wedged: an unrelated cached path answers.
	if status, _, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz during a wedged fill: status %d", status)
	}

	// Release the fill; it must complete, cache, and leave no goroutine
	// behind (Wait returns). The retry is then a hit, and the single
	// compute call proves the 504'd request's work was reused, not
	// redone.
	close(g.gate)
	store.Wait()
	status2, cache, body2 := get(t, ts.URL+"/v1/v100/fig1?quick=1")
	if status2 != http.StatusOK || cache != "hit" {
		t.Fatalf("retry after fill completed: (status %d, X-Cache %q), want (200, hit)", status2, cache)
	}
	if !bytes.Contains(body2, []byte("fig1")) {
		t.Errorf("retry body %q lost the entry", bytes.TrimSpace(body2))
	}
	if n := g.calls.Load(); n != 1 {
		t.Errorf("%d simulations for one key across timeout and retry, want 1", n)
	}

	status3, _, metricz := get(t, ts.URL+"/metricz")
	if status3 != http.StatusOK {
		t.Fatalf("/metricz: status %d", status3)
	}
	for _, want := range []string{`"http/timed_out": 1`, `"resultstore/canceled": 1`} {
		if !strings.Contains(string(metricz), want) {
			t.Errorf("/metricz missing %q:\n%s", want, metricz)
		}
	}
}

// TestClientDisconnectDetachesWaiter: a client that hangs up mid-request
// (no server-side deadline configured) detaches its waiter via
// r.Context(), is counted as canceled rather than as a server error,
// and the fill still completes and caches.
func TestClientDisconnectDetachesWaiter(t *testing.T) {
	g := newGatedComputer()
	ts, store, reg := newConfiguredServer(t, serverConfig{}, g.compute)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/v100/fig1?quick=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	// Wait until the request has reached the compute before hanging up,
	// so the cancellation exercises a parked waiter, not a pre-dispatch
	// refusal.
	deadline := time.Now().Add(5 * time.Second)
	for g.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client Do returned nil error after its context was cancelled")
	}
	// While the fill is still wedged, detaching on ctx.Done is the
	// waiter's only exit; once the counter ticks, the handler has
	// classified the hang-up. (Releasing the gate first would race the
	// detach against normal completion.)
	h := reg.Scope("http")
	for h.Counter("canceled").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never recorded the disconnect")
		}
		time.Sleep(time.Millisecond)
	}

	close(g.gate)
	store.Wait()
	status, cache, _ := get(t, ts.URL+"/v1/v100/fig1?quick=1")
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("after disconnect: (status %d, X-Cache %q), want (200, hit)", status, cache)
	}
	if n := g.calls.Load(); n != 1 {
		t.Errorf("%d simulations across disconnect and retry, want 1", n)
	}
	if got := h.Counter("errors").Value(); got != 0 {
		t.Errorf("http/errors = %d after a client disconnect, want 0", got)
	}
}

// TestQueueOverflowSheds429: with one slot and no queue, a second
// request during a busy fill is shed immediately with 429 and a
// Retry-After header; after the fill drains, requests are admitted
// again.
func TestQueueOverflowSheds429(t *testing.T) {
	g := newGatedComputer()
	ts, store, reg := newConfiguredServer(t, serverConfig{maxInflight: 1, queueDepth: 0}, g.compute)

	// Occupy the single slot with a wedged fill.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		status, _, _ := get(t, ts.URL+"/v1/v100/fig1?quick=1")
		if status != http.StatusOK {
			t.Errorf("slot-holding request: status %d, want 200", status)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compute never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/v100/fig2?quick=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("429 Retry-After = %q, want \"1\"", got)
	}
	if got := reg.Scope("http").Counter("shed").Value(); got != 1 {
		t.Errorf("http/shed = %d, want 1", got)
	}

	close(g.gate)
	<-firstDone
	store.Wait()
	if status, _, _ := get(t, ts.URL+"/v1/v100/fig2?quick=1"); status != http.StatusOK {
		t.Errorf("post-drain request: status %d, want 200", status)
	}
}

// TestQueuedRequestAdmittedAfterRelease: a request that finds every
// slot busy but queue room available parks, then completes normally
// once the slot frees — queueing delays, it never drops.
func TestQueuedRequestAdmittedAfterRelease(t *testing.T) {
	g := newGatedComputer()
	ts, store, _ := newConfiguredServer(t, serverConfig{maxInflight: 1, queueDepth: 4}, g.compute)

	results := make(chan int, 2)
	for _, exp := range []string{"fig1", "fig2"} {
		go func(exp string) {
			status, _, _ := get(t, ts.URL+"/v1/v100/"+exp+"?quick=1")
			results <- status
		}(exp)
	}
	// Only one compute may start: the other request is parked in the
	// admission queue, not computing.
	deadline := time.Now().Add(5 * time.Second)
	for g.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no compute started")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if n := g.calls.Load(); n != 1 {
		t.Fatalf("%d computes running with maxInflight=1, want 1", n)
	}

	close(g.gate)
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("queued request %d: status %d, want 200", i, status)
		}
	}
	store.Wait()
}

// TestIngressConfigPreservesBytes is the satellite byte-identity pin:
// the same (gpu, exp) tuple served with no ingress config and with a
// generous deadline + admission bound yields byte-identical bodies —
// the knobs shape scheduling, never content.
func TestIngressConfigPreservesBytes(t *testing.T) {
	fetch := func(cfg serverConfig) []byte {
		ts, _, _ := newConfiguredServer(t, cfg, newComputer(0))
		status, _, body := get(t, ts.URL+"/v1/v100/fig1?quick=1")
		if status != http.StatusOK {
			t.Fatalf("cfg %+v: status %d", cfg, status)
		}
		return body
	}
	plain := fetch(serverConfig{})
	guarded := fetch(serverConfig{requestTimeout: time.Minute, maxInflight: 4, queueDepth: 16})
	if !bytes.Equal(plain, guarded) {
		t.Error("ingress config changed the served bytes")
	}
}

// TestNegativeWindowServedAsError: a key whose compute fails inside the
// negative window is refused without re-simulating; the X-Cache-less
// 500 carries the original error both times but only one simulation
// ran.
func TestNegativeWindowServedAsError(t *testing.T) {
	var calls atomic.Int64
	reg := obs.New()
	t0 := time.Now()
	store, err := resultstore.New(resultstore.Options{
		Compute: func(_ context.Context, key resultstore.Key) (*resultstore.Entry, error) {
			calls.Add(1)
			return nil, fmt.Errorf("simulation exploded")
		},
		NegativeTTL: time.Hour,
		Obs:         reg.Scope("resultstore"),
		Clock:       func() time.Duration { return time.Since(t0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, reg, serverConfig{}).handler())
	t.Cleanup(ts.Close)
	for i := 0; i < 3; i++ {
		status, _, body := get(t, ts.URL+"/v1/v100/fig1?quick=1")
		if status != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status %d, want 500", i, status)
		}
		if !bytes.Contains(body, []byte("simulation exploded")) {
			t.Errorf("attempt %d: body %q lost the original error", i, bytes.TrimSpace(body))
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("%d simulations inside the negative window, want 1", n)
	}
}
